//! Configuration selection (paper §6.4): for one core, print the full
//! latency / jitter / area / f_max / power trade-off per configuration so
//! a designer can pick a point in the design space.
//!
//! Run with: `cargo run --example config_explorer --release [core]`
//! where `core` is one of `cv32e40p` (default), `cva6`, `naxriscv`.

use rtosunit_suite::asic::{area_report, fmax_report, power_report};
use rtosunit_suite::bench::run_suite;
use rtosunit_suite::cores::CoreKind;
use rtosunit_suite::unit::Preset;

fn main() {
    let kind = match std::env::args().nth(1).as_deref() {
        None | Some("cv32e40p") => CoreKind::Cv32e40p,
        Some("cva6") => CoreKind::Cva6,
        Some("naxriscv") => CoreKind::NaxRiscv,
        Some(other) => panic!("unknown core `{other}`"),
    };
    println!("# {kind}: configuration trade-offs (paper §6.4)\n");
    println!(
        "{:<10} {:>8} {:>8} {:>9} {:>10} {:>9}",
        "config", "µ (cyc)", "Δ (cyc)", "area ovh", "fmax (MHz)", "power(mW)"
    );
    for preset in Preset::LATENCY_SET {
        let row = run_suite(kind, preset);
        let area = area_report(kind, preset);
        let fmax = fmax_report(kind, preset);
        let power = power_report(kind, preset);
        println!(
            "{:<10} {:>8.1} {:>8} {:>8.1}% {:>10.0} {:>9.2}",
            preset.label(),
            row.mean(),
            row.jitter(),
            area.overhead() * 100.0,
            fmax.fmax_mhz,
            power.total_mw()
        );
    }
    println!("\nGuidance from the paper: (SLT) is the all-rounder, (SPLIT) minimises");
    println!("mean latency at the highest cost, (T) is near-free silicon, and (SL)");
    println!("sits between (T) and (SLT).");
}
