//! Static WCET analysis (paper §6.2): analyse the generated ISR of each
//! configuration on the CV32E40P timing model and print the bound next to
//! the worst observed latency from the benchmark suite.
//!
//! Run with: `cargo run --example wcet_analysis --release`

use rtosunit_suite::bench::{run_workload, WORKLOADS};
use rtosunit_suite::cores::CoreKind;
use rtosunit_suite::unit::Preset;
use rtosunit_suite::wcet::analyze_preset;

fn main() {
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>14}",
        "config", "sw cycles", "fsm stalls", "WCET", "worst measured"
    );
    for preset in [
        Preset::Vanilla,
        Preset::S,
        Preset::Sl,
        Preset::T,
        Preset::St,
        Preset::Slt,
    ] {
        let r = analyze_preset(preset);
        let measured = WORKLOADS
            .iter()
            .flat_map(|w| run_workload(CoreKind::Cv32e40p, preset, w).latencies)
            .max()
            .unwrap_or(0);
        println!(
            "{:<10} {:>10} {:>12} {:>10} {:>14}",
            preset.label(),
            r.software_cycles,
            r.fsm_stall_cycles,
            r.total_cycles,
            measured
        );
        assert!(measured <= r.total_cycles, "{preset}: bound violated!");
    }
    println!("\nEvery measured switch is dominated by its static bound; the bound");
    println!("collapses from hundreds of cycles (software scheduling, 8 delayed");
    println!("tasks) to the ~62-cycle FSM drain for (SLT) — paper §6.2.");
}
