//! A realistic embedded scenario (the paper's motivating case, §1): an
//! external sensor raises an interrupt; complex processing is *deferred*
//! to a high-priority handler task, so the response time includes a full
//! context switch. A periodic control task and a background task share
//! the processor.
//!
//! The example measures sensor-to-handler response time on an unmodified
//! core and on the same core with the RTOSUnit in (SLT) mode.
//!
//! Run with: `cargo run --example sensor_control_loop --release`

use rtosunit_suite::cores::CoreKind;
use rtosunit_suite::kernel::KernelBuilder;
use rtosunit_suite::unit::{Preset, System};

const SENSOR_PERIOD: u64 = 7_919; // co-prime with the tick: triggers drift

fn response_times(preset: Preset) -> Vec<u64> {
    let mut k = KernelBuilder::new(preset);
    k.tick_period(4000);
    k.semaphore("sensor_evt", 0);
    k.ext_irq_gives("sensor_evt");
    // Deferred interrupt handling: the handler task owns the complex part.
    k.task("sensor_handler", 7, |t| {
        t.sem_take("sensor_evt");
        t.trace_mark(0x5E);
        t.compute(12); // filtering / feature extraction
    });
    // A periodic control loop.
    k.task("control", 5, |t| {
        t.compute(30);
        t.delay(1);
    });
    // Best-effort background work.
    k.task("background", 2, |t| {
        t.compute(60);
        t.yield_now();
    });
    let image = k.build().expect("kernel builds");
    let mut sys = System::new(CoreKind::Cv32e40p, preset);
    image.install(&mut sys);
    let mut at = SENSOR_PERIOD;
    let mut triggers = Vec::new();
    while at < 600_000 {
        sys.schedule_external_irq(at);
        triggers.push(at);
        at += SENSOR_PERIOD;
    }
    sys.run(620_000);
    // Response time: external trigger -> handler's trace mark.
    let marks: Vec<u64> = sys
        .platform
        .mmio
        .trace_marks
        .iter()
        .filter(|m| m.code == 0x5E)
        .map(|m| m.cycle)
        .collect();
    triggers
        .iter()
        .filter_map(|t| marks.iter().find(|m| *m > t).map(|m| m - t))
        .collect()
}

fn main() {
    for preset in [Preset::Vanilla, Preset::Slt, Preset::Split] {
        let rt = response_times(preset);
        let n = rt.len().max(1) as f64;
        let mean = rt.iter().sum::<u64>() as f64 / n;
        let max = rt.iter().max().copied().unwrap_or(0);
        println!(
            "{:<10} sensor->handler response: mean {:>7.1} cycles, worst {:>5} cycles ({} events)",
            preset.label(),
            mean,
            max,
            rt.len()
        );
    }
    println!("\nDeferred handling requires a full context switch; the RTOSUnit");
    println!("shortens exactly that path (paper §1, §6.1).");
}
