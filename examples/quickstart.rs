//! Quickstart: build a two-task guest kernel, attach an RTOSUnit in the
//! (SLT) configuration to a CV32E40P-class core, run it, and print the
//! measured context-switch latencies.
//!
//! Run with: `cargo run --example quickstart`

use rtosunit_suite::cores::CoreKind;
use rtosunit_suite::kernel::KernelBuilder;
use rtosunit_suite::unit::{Preset, System};

fn main() {
    // 1. Describe the application: two equal-priority tasks handing a
    //    token back and forth through semaphores.
    let mut kernel = KernelBuilder::new(Preset::Slt);
    kernel.semaphore("ping", 0);
    kernel.semaphore("pong", 0);
    kernel.task("producer", 5, |t| {
        t.compute(10);
        t.sem_give("ping");
        t.sem_take("pong");
    });
    kernel.task("consumer", 5, |t| {
        t.sem_take("ping");
        t.compute(10);
        t.sem_give("pong");
    });
    let image = kernel.build().expect("kernel builds");

    // 2. Build the system: core model + RTOSUnit configuration.
    let mut sys = System::new(CoreKind::Cv32e40p, Preset::Slt);
    image.install(&mut sys);

    // 3. Run and inspect.
    sys.run(200_000);
    let stats = sys.latency_stats().expect("context switches happened");
    println!("core:            {}", sys.kind());
    println!("configuration:   {}", sys.preset());
    println!("context switches: {}", stats.count);
    println!("mean latency:     {:.1} cycles", stats.mean);
    println!("min/max:          {} / {} cycles", stats.min, stats.max);
    println!("jitter (max-min): {} cycles", stats.jitter());
    let unit = sys.unit_stats().expect("unit attached");
    println!(
        "unit activity:    {} stores, {} loads over {} interrupts",
        unit.store_words, unit.load_words, unit.interrupts
    );
}
