//! Umbrella crate for the RTOSUnit reproduction workspace.
//!
//! Re-exports the member crates so integration tests and examples can use a
//! single dependency. See `README.md` for the project overview and
//! `DESIGN.md` for the system inventory.

pub use asic_model as asic;
pub use freertos_lite as kernel;
pub use rtosbench as bench;
pub use rtosunit as unit;
pub use rvsim_check as check;
pub use rvsim_cores as cores;
pub use rvsim_isa as isa;
pub use rvsim_mem as mem;
pub use rvsim_snapshot as snapshot;
pub use rvsim_wcet as wcet;
