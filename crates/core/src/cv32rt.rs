//! Re-implementation of the comparison design **CV32RT** (Balas et al.
//! \[3\], as re-built by the paper for all three cores, §6).
//!
//! At interrupt entry the design *snapshots* half the register file —
//! x16..x31, 16 registers — into an internal buffer within a single cycle,
//! then drains the buffer to the task's stack frame through a **dedicated
//! second memory port** (one word per cycle, no arbitration with the
//! core). The other half of the context (13 registers + `mstatus` +
//! `mepc`) is saved by software; restore is entirely software.
//!
//! On the write-back-cache core (NaxRiscv) the dedicated port bypasses the
//! cache, so the cache line(s) covering the bypassed words are explicitly
//! invalidated — the paper reports this as the source of CV32RT's poor
//! fit there (§6).

use rvsim_cores::{ArchState, Coprocessor, CoreKind, DataBus};
use rvsim_isa::{CustomOp, Reg};
use rvsim_snapshot::{self as snap, Json, SnapError};

/// The 16 snapshot registers (x16..x31).
pub const SNAPSHOT_REGS: [Reg; 16] = [
    Reg::A6,
    Reg::A7,
    Reg::S2,
    Reg::S3,
    Reg::S4,
    Reg::S5,
    Reg::S6,
    Reg::S7,
    Reg::S8,
    Reg::S9,
    Reg::S10,
    Reg::S11,
    Reg::T3,
    Reg::T4,
    Reg::T5,
    Reg::T6,
];

/// Size of the CV32RT stack frame in bytes: 31 context words padded to
/// 128 so the hardware-written half occupies one 64-byte-aligned block.
pub const FRAME_BYTES: u32 = 128;
/// Frame offset of the hardware-written snapshot block.
pub const HW_BLOCK_OFF: u32 = 64;

/// Activity counters of the CV32RT model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Cv32rtStats {
    /// Interrupt entries (snapshots taken).
    pub interrupts: u64,
    /// Words written through the dedicated port.
    pub snapshot_words: u64,
    /// Cache lines invalidated after bypassing writes.
    pub invalidations: u64,
}

/// The CV32RT comparison unit. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Cv32rtUnit {
    bypass_invalidate: bool,
    buf: [u32; 16],
    frame_base: u32,
    remaining: usize,
    invalidated_lines: Vec<u32>,
    /// Activity counters.
    pub stats: Cv32rtStats,
}

impl Cv32rtUnit {
    /// Creates the unit for `kind` (cache-line invalidation is only
    /// needed on the write-back-cache core).
    pub fn new(kind: CoreKind) -> Cv32rtUnit {
        Cv32rtUnit {
            bypass_invalidate: kind.unit_shares_cache(),
            buf: [0; 16],
            frame_base: 0,
            remaining: 0,
            invalidated_lines: Vec::new(),
            stats: Cv32rtStats::default(),
        }
    }

    /// Whether the snapshot drain is still in progress.
    pub fn snapshot_busy(&self) -> bool {
        self.remaining > 0
    }

    /// Stack-frame offset (bytes) of snapshot register index `i`: the
    /// snapshot block is contiguous and line-aligned.
    fn frame_offset(i: usize) -> u32 {
        HW_BLOCK_OFF + (i as u32) * 4
    }

    /// Serializes the unit (snapshot buffer, drain cursor, invalidated
    /// lines, counters) for a machine-state snapshot.
    pub fn to_snap(&self) -> Json {
        Json::object()
            .with("bypass_invalidate", self.bypass_invalidate)
            .with("buf", snap::words_to_json(&self.buf))
            .with("frame_base", self.frame_base)
            .with("remaining", self.remaining)
            .with("lines_len", self.invalidated_lines.len())
            .with("lines", snap::words_to_json(&self.invalidated_lines))
            .with("interrupts", self.stats.interrupts)
            .with("snapshot_words", self.stats.snapshot_words)
            .with("invalidations", self.stats.invalidations)
    }

    /// Rebuilds the unit from [`to_snap`](Self::to_snap) output.
    ///
    /// # Errors
    ///
    /// Fails on malformed fields or a drain cursor beyond the buffer.
    pub fn from_snap(value: &Json) -> Result<Cv32rtUnit, SnapError> {
        let remaining = snap::get_usize(value, "remaining")?;
        if remaining > SNAPSHOT_REGS.len() {
            return Err(SnapError::new(format!(
                "cv32rt: drain cursor {remaining} beyond the snapshot buffer"
            )));
        }
        let words = snap::words_from_json(snap::field(value, "buf")?, 16)?;
        let mut buf = [0u32; 16];
        buf.copy_from_slice(&words);
        let lines_len = snap::get_usize(value, "lines_len")?;
        Ok(Cv32rtUnit {
            bypass_invalidate: snap::get_bool(value, "bypass_invalidate")?,
            buf,
            frame_base: snap::get_u32(value, "frame_base")?,
            remaining,
            invalidated_lines: snap::words_from_json(snap::field(value, "lines")?, lines_len)?,
            stats: Cv32rtStats {
                interrupts: snap::get_u64(value, "interrupts")?,
                snapshot_words: snap::get_u64(value, "snapshot_words")?,
                invalidations: snap::get_u64(value, "invalidations")?,
            },
        })
    }
}

impl Coprocessor for Cv32rtUnit {
    fn on_interrupt_entry(&mut self, state: &mut ArchState, _cause: u32) {
        self.stats.interrupts += 1;
        // Single-cycle parallel snapshot of 16 registers (this is the
        // wiring-heavy part the paper's sparse-MUX design avoids).
        for (i, r) in SNAPSHOT_REGS.iter().enumerate() {
            self.buf[i] = state.read_reg(*r);
        }
        // The software ISR allocates its frame at sp - FRAME_BYTES; the
        // hardware writes the snapshot half into that frame.
        self.frame_base = state.read_reg(Reg::Sp).wrapping_sub(FRAME_BYTES);
        self.remaining = SNAPSHOT_REGS.len();
        self.invalidated_lines.clear();
    }

    fn mret_stall(&self) -> bool {
        false
    }

    fn on_mret(&mut self, _state: &mut ArchState) {
        debug_assert_eq!(self.remaining, 0, "mret before the snapshot drained");
    }

    fn custom_stall(&self, _op: CustomOp) -> bool {
        false
    }

    fn exec_custom(&mut self, op: CustomOp, _rs1: u32, _rs2: u32, _state: &mut ArchState) -> u32 {
        panic!("CV32RT does not implement custom instruction {op}")
    }

    fn step(&mut self, _state: &mut ArchState, bus: &mut dyn DataBus) {
        if self.remaining == 0 {
            return;
        }
        let i = SNAPSHOT_REGS.len() - self.remaining;
        let addr = self.frame_base + Self::frame_offset(i);
        bus.dedicated_access(addr, Some(self.buf[i]));
        self.stats.snapshot_words += 1;
        if self.bypass_invalidate {
            // The dedicated port bypassed the write-back cache: the stale
            // line must be dropped — once per 64-byte line, matching the
            // paper's "single cache line containing the bypassed 16
            // words" (§6).
            let line = addr & !63;
            if self.invalidated_lines.iter().all(|&l| l != line) {
                bus.invalidate_line(addr);
                self.invalidated_lines.push(line);
                self.stats.invalidations += 1;
            }
        }
        self.remaining -= 1;
    }

    fn is_idle(&self) -> bool {
        self.remaining == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{ctx_reg, DMEM_BASE, DMEM_SIZE};
    use crate::platform::Platform;
    use rvsim_isa::csr;

    #[test]
    fn snapshot_covers_x16_to_x31() {
        for r in SNAPSHOT_REGS {
            assert!(r.number() >= 16);
        }
        assert_eq!(SNAPSHOT_REGS.len(), 16);
    }

    #[test]
    fn snapshot_drains_to_the_stack_frame() {
        let mut u = Cv32rtUnit::new(CoreKind::Cv32e40p);
        let mut state = ArchState::new(0);
        let mut p = Platform::new(CoreKind::Cv32e40p, 1000);
        let sp = DMEM_BASE + DMEM_SIZE / 2;
        state.write_reg(Reg::Sp, sp);
        for (i, r) in SNAPSHOT_REGS.iter().enumerate() {
            state.write_reg(*r, 0xC0DE_0000 + i as u32);
        }
        u.on_interrupt_entry(&mut state, csr::CAUSE_TIMER);
        assert!(u.snapshot_busy());
        for _ in 0..16 {
            p.begin_cycle();
            u.step(&mut state, &mut p);
        }
        assert!(!u.snapshot_busy());
        let frame = sp - FRAME_BYTES;
        // a6 is the first word of the hardware snapshot block.
        assert_eq!(p.dmem.read_word(frame + HW_BLOCK_OFF), 0xC0DE_0000);
        // The snapshot region covers context words 13..=28.
        for w in 13..29 {
            let _ = ctx_reg(w); // all indices valid
        }
        assert_eq!(u.stats.snapshot_words, 16);
    }

    #[test]
    fn invalidation_only_on_shared_cache_core() {
        let mut nax = Cv32rtUnit::new(CoreKind::NaxRiscv);
        let mut cv = Cv32rtUnit::new(CoreKind::Cv32e40p);
        let mut state = ArchState::new(0);
        state.write_reg(Reg::Sp, DMEM_BASE + 0x1000);
        let mut p = Platform::new(CoreKind::NaxRiscv, 1000);
        nax.on_interrupt_entry(&mut state, csr::CAUSE_TIMER);
        cv.on_interrupt_entry(&mut state, csr::CAUSE_TIMER);
        for _ in 0..16 {
            p.begin_cycle();
            nax.step(&mut state, &mut p);
            cv.step(&mut state, &mut p);
        }
        // The aligned snapshot block occupies a single 64-byte line.
        assert_eq!(nax.stats.invalidations, 1);
        assert_eq!(cv.stats.invalidations, 0);
    }

    #[test]
    fn snapshot_drain_does_not_contend_with_core_port() {
        // The dedicated port always succeeds, even when the core hogs the
        // shared port every cycle.
        let mut u = Cv32rtUnit::new(CoreKind::Cv32e40p);
        let mut state = ArchState::new(0);
        state.write_reg(Reg::Sp, DMEM_BASE + 0x1000);
        let mut p = Platform::new(CoreKind::Cv32e40p, 1000);
        u.on_interrupt_entry(&mut state, csr::CAUSE_TIMER);
        for _ in 0..16 {
            p.begin_cycle();
            p.core_access(DMEM_BASE, rvsim_mem::AccessSize::Word, Some(1));
            u.step(&mut state, &mut p);
        }
        assert!(!u.snapshot_busy());
    }
}
