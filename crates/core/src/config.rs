//! RTOSUnit configuration and the paper's named presets.

use std::fmt;

/// Fine-grained feature selection for the RTOSUnit (paper §4).
///
/// The letter scheme matches the paper: **S**tore, **L**oad, **T**ask
/// scheduling, **D**irty bits, load **O**mission, **P**reloading.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RtosUnitConfig {
    /// (S) hardware context storing with register-bank switching.
    pub store: bool,
    /// (L) hardware context loading; requires `store`.
    pub load: bool,
    /// (T) hardware ready/delay lists and `GET_HW_SCHED`.
    pub sched: bool,
    /// (D) dirty bits: store only modified registers.
    pub dirty_bits: bool,
    /// (O) load omission: skip loading when the next task is the previous
    /// one; requires `load`.
    pub load_omission: bool,
    /// (P) speculative context preloading; requires S, L and T and is
    /// incompatible with dirty bits (§4.7).
    pub preload: bool,
    /// Hardware semaphores (`SEM_TAKE`/`SEM_GIVE`) — this reproduction's
    /// implementation of the synchronisation-primitive acceleration the
    /// paper lists as future work (§7). Requires `sched`.
    pub hw_sync: bool,
    /// Capacity of the hardware ready and delay lists (paper default: 8).
    pub list_len: usize,
}

impl Default for RtosUnitConfig {
    fn default() -> Self {
        RtosUnitConfig {
            store: false,
            load: false,
            sched: false,
            dirty_bits: false,
            load_omission: false,
            preload: false,
            hw_sync: false,
            list_len: 8,
        }
    }
}

/// Configuration-validation errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// (L) only works in conjunction with (S) (paper §4.3).
    LoadRequiresStore,
    /// (O) is an optimisation of hardware loading.
    OmissionRequiresLoad,
    /// (P) requires full (SLT) acceleration (paper §4.7).
    PreloadRequiresSlt,
    /// Preloading operates in lockstep with full-context storing and is
    /// incompatible with dirty bits (paper §4.7).
    PreloadConflictsDirty,
    /// The hardware lists need at least one slot.
    EmptyLists,
    /// The context region bounds the number of task ids.
    ListTooLong,
    /// Hardware semaphores build on the hardware scheduler's lists.
    HwSyncRequiresSched,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            ConfigError::LoadRequiresStore => "context loading (L) requires context storing (S)",
            ConfigError::OmissionRequiresLoad => "load omission (O) requires context loading (L)",
            ConfigError::PreloadRequiresSlt => "preloading (P) requires store, load and scheduling",
            ConfigError::PreloadConflictsDirty => {
                "preloading (P) is incompatible with dirty bits (D)"
            }
            ConfigError::EmptyLists => "hardware list length must be at least 1",
            ConfigError::ListTooLong => "hardware list length exceeds the context region capacity",
            ConfigError::HwSyncRequiresSched => {
                "hardware semaphores (extension) require hardware scheduling (T)"
            }
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ConfigError {}

impl RtosUnitConfig {
    /// Checks the feature-dependency rules of §4.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.load && !self.store {
            return Err(ConfigError::LoadRequiresStore);
        }
        if self.load_omission && !self.load {
            return Err(ConfigError::OmissionRequiresLoad);
        }
        if self.preload {
            if !(self.store && self.load && self.sched) {
                return Err(ConfigError::PreloadRequiresSlt);
            }
            if self.dirty_bits {
                return Err(ConfigError::PreloadConflictsDirty);
            }
        }
        if self.hw_sync && !self.sched {
            return Err(ConfigError::HwSyncRequiresSched);
        }
        if self.list_len == 0 {
            return Err(ConfigError::EmptyLists);
        }
        if self.list_len > crate::layout::CTX_MAX_TASKS as usize {
            return Err(ConfigError::ListTooLong);
        }
        Ok(())
    }

    /// The unit configuration of a named preset; `None` for presets
    /// without an RTOSUnit ([`Preset::Vanilla`] and [`Preset::Cv32rt`]).
    pub fn from_preset(p: Preset) -> Option<RtosUnitConfig> {
        let mut c = RtosUnitConfig::default();
        match p {
            Preset::Vanilla | Preset::Cv32rt => return None,
            Preset::S => c.store = true,
            Preset::Sl => {
                c.store = true;
                c.load = true;
            }
            Preset::T => c.sched = true,
            Preset::St => {
                c.store = true;
                c.sched = true;
            }
            Preset::Slt => {
                c.store = true;
                c.load = true;
                c.sched = true;
            }
            Preset::Sd => {
                c.store = true;
                c.dirty_bits = true;
            }
            Preset::Sdt => {
                c.store = true;
                c.dirty_bits = true;
                c.sched = true;
            }
            Preset::Sdlo => {
                c.store = true;
                c.dirty_bits = true;
                c.load = true;
                c.load_omission = true;
            }
            Preset::Sdlot => {
                c.store = true;
                c.dirty_bits = true;
                c.load = true;
                c.load_omission = true;
                c.sched = true;
            }
            Preset::Split => {
                c.store = true;
                c.load = true;
                c.sched = true;
                c.preload = true;
                c.load_omission = true;
            }
            Preset::SltHs => {
                c.store = true;
                c.load = true;
                c.sched = true;
                c.hw_sync = true;
            }
        }
        debug_assert!(c.validate().is_ok());
        Some(c)
    }
}

/// The named configurations evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Preset {
    /// Unmodified core, everything in software.
    Vanilla,
    /// The comparison design by Balas et al. (re-implemented, §6).
    Cv32rt,
    /// Hardware context storing.
    S,
    /// Storing + loading.
    Sl,
    /// Hardware scheduling only.
    T,
    /// Storing + scheduling.
    St,
    /// Storing + loading + scheduling — the paper's all-round choice.
    Slt,
    /// Storing with dirty bits (area study only).
    Sd,
    /// Storing with dirty bits + scheduling (area study only).
    Sdt,
    /// Storing + dirty bits + loading + load omission.
    Sdlo,
    /// SDLO + hardware scheduling.
    Sdlot,
    /// SLT + preloading (+ load omission) — lowest mean latency.
    Split,
    /// **Extension** (paper §7 future work): SLT plus hardware semaphores
    /// (`SEM_TAKE`/`SEM_GIVE`). Not part of the paper's evaluated set.
    SltHs,
}

impl Preset {
    /// The configurations of the latency evaluation (paper Fig. 9).
    pub const LATENCY_SET: [Preset; 10] = [
        Preset::Vanilla,
        Preset::Cv32rt,
        Preset::S,
        Preset::Sl,
        Preset::T,
        Preset::St,
        Preset::Slt,
        Preset::Sdlo,
        Preset::Sdlot,
        Preset::Split,
    ];

    /// The configurations of the ASIC studies (paper Figs. 10/11/13).
    pub const ASIC_SET: [Preset; 12] = [
        Preset::Vanilla,
        Preset::Cv32rt,
        Preset::S,
        Preset::Sd,
        Preset::Sl,
        Preset::Sdlo,
        Preset::T,
        Preset::St,
        Preset::Sdt,
        Preset::Slt,
        Preset::Sdlot,
        Preset::Split,
    ];

    /// The paper's parenthesised label, e.g. `"(SLT)"`.
    pub fn label(self) -> &'static str {
        match self {
            Preset::Vanilla => "(vanilla)",
            Preset::Cv32rt => "(CV32RT)",
            Preset::S => "(S)",
            Preset::Sl => "(SL)",
            Preset::T => "(T)",
            Preset::St => "(ST)",
            Preset::Slt => "(SLT)",
            Preset::Sd => "(SD)",
            Preset::Sdt => "(SDT)",
            Preset::Sdlo => "(SDLO)",
            Preset::Sdlot => "(SDLOT)",
            Preset::Split => "(SPLIT)",
            Preset::SltHs => "(SLT+HS)",
        }
    }

    /// A stable lowercase identifier, e.g. `"slt"` — used by snapshot
    /// self-description and CLI argument parsing.
    pub fn tag(self) -> &'static str {
        match self {
            Preset::Vanilla => "vanilla",
            Preset::Cv32rt => "cv32rt",
            Preset::S => "s",
            Preset::Sl => "sl",
            Preset::T => "t",
            Preset::St => "st",
            Preset::Slt => "slt",
            Preset::Sd => "sd",
            Preset::Sdt => "sdt",
            Preset::Sdlo => "sdlo",
            Preset::Sdlot => "sdlot",
            Preset::Split => "split",
            Preset::SltHs => "slt_hs",
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub fn from_tag(tag: &str) -> Option<Preset> {
        [
            Preset::Vanilla,
            Preset::Cv32rt,
            Preset::S,
            Preset::Sl,
            Preset::T,
            Preset::St,
            Preset::Slt,
            Preset::Sd,
            Preset::Sdt,
            Preset::Sdlo,
            Preset::Sdlot,
            Preset::Split,
            Preset::SltHs,
        ]
        .into_iter()
        .find(|p| p.tag() == tag)
    }

    /// Whether context storing is hardware-accelerated (register banking).
    pub fn has_store(self) -> bool {
        RtosUnitConfig::from_preset(self).is_some_and(|c| c.store)
    }

    /// Whether scheduling is hardware-accelerated.
    pub fn has_sched(self) -> bool {
        RtosUnitConfig::from_preset(self).is_some_and(|c| c.sched)
    }

    /// Whether context loading is hardware-accelerated.
    pub fn has_load(self) -> bool {
        RtosUnitConfig::from_preset(self).is_some_and(|c| c.load)
    }
}

impl fmt::Display for Preset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for p in Preset::ASIC_SET {
            if let Some(c) = RtosUnitConfig::from_preset(p) {
                assert_eq!(c.validate(), Ok(()), "{p} must validate");
            }
        }
    }

    #[test]
    fn dependency_rules() {
        let mut c = RtosUnitConfig {
            load: true,
            ..Default::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::LoadRequiresStore));
        c.store = true;
        assert_eq!(c.validate(), Ok(()));
        c.preload = true;
        assert_eq!(c.validate(), Err(ConfigError::PreloadRequiresSlt));
        c.sched = true;
        assert_eq!(c.validate(), Ok(()));
        c.dirty_bits = true;
        assert_eq!(c.validate(), Err(ConfigError::PreloadConflictsDirty));
    }

    #[test]
    fn list_bounds() {
        let mut c = RtosUnitConfig {
            sched: true,
            list_len: 0,
            ..Default::default()
        };
        assert_eq!(c.validate(), Err(ConfigError::EmptyLists));
        c.list_len = 1000;
        assert_eq!(c.validate(), Err(ConfigError::ListTooLong));
        c.list_len = 64;
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Preset::Slt.label(), "(SLT)");
        assert_eq!(Preset::Vanilla.label(), "(vanilla)");
        assert_eq!(Preset::Cv32rt.label(), "(CV32RT)");
        assert_eq!(Preset::Split.label(), "(SPLIT)");
    }

    #[test]
    fn latency_set_matches_fig9() {
        assert_eq!(Preset::LATENCY_SET.len(), 10);
        assert!(Preset::LATENCY_SET.contains(&Preset::Sdlo));
        assert!(!Preset::LATENCY_SET.contains(&Preset::Sd));
    }
}
