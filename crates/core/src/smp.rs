//! SMP composition: N single-hart [`System`]s in per-cycle lockstep on a
//! shared memory bus, with inter-processor interrupts.
//!
//! ## Topology
//!
//! Each hart keeps its own [`Platform`] — private instruction memory, a
//! private functional data-memory bank, per-hart caches and a per-hart
//! RTOSUnit on its dedicated SRAM ports. What the harts *share* is the
//! **timing** of the downstream memory bus: every core-side DMEM
//! transaction (every access on uncached cores, refill/write-through
//! traffic on cached ones) must win a [`BusArbiter`] grant, so harts
//! pounding memory stretch each other's switch latencies without
//! perturbing functional state. This mirrors the cache model itself,
//! which is timing-only (`DESIGN.md` §5).
//!
//! ## IPIs
//!
//! A hart writes `(target << 8) | code` to `MMIO_IPI_SEND`; the code lands
//! in the target's mailbox and the target's `mip.MSIP` line rises (cause
//! `CAUSE_SOFTWARE`). The target's software ISR drains `MMIO_IPI_RECV`
//! until it reads 0. A code that arrives between the drain loop and the
//! `mret` keeps `MSIP` asserted, so the ISR re-enters immediately and no
//! wakeup is lost — the scheduler oracle asserts exactly this.

use crate::config::Preset;
use crate::system::{RunExit, System};
use rvsim_cores::CoreKind;
use rvsim_isa::Program;
use rvsim_mem::{BusArbiter, BusMasterStats};
use rvsim_snapshot::{self as snap, Json, SnapError};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// State shared by all harts of an [`SmpSystem`]: the bus arbiter and the
/// IPI mailboxes. Lives behind `Rc<RefCell<..>>` so each hart's
/// [`Platform`] can reach it from inside a bus access.
#[derive(Debug)]
pub struct SmpShared {
    /// Shared-bus arbiter; master index = hart id.
    pub bus: BusArbiter,
    mailboxes: Vec<VecDeque<u32>>,
    sends: Vec<u64>,
    recvs: Vec<u64>,
}

impl SmpShared {
    /// Creates shared state for `harts` harts.
    pub fn new(harts: usize) -> SmpShared {
        SmpShared {
            bus: BusArbiter::new(harts),
            mailboxes: vec![VecDeque::new(); harts],
            sends: vec![0; harts],
            recvs: vec![0; harts],
        }
    }

    /// Number of harts sharing this state.
    pub fn harts(&self) -> usize {
        self.mailboxes.len()
    }

    /// Pushes an IPI `code` into `target`'s mailbox (the
    /// `MMIO_IPI_SEND` device). Out-of-range targets are dropped, like a
    /// write to an unmapped device register.
    pub fn send_ipi(&mut self, target: usize, code: u32) {
        if let Some(mb) = self.mailboxes.get_mut(target) {
            mb.push_back(code);
            self.sends[target] += 1;
        }
    }

    /// Pops the oldest pending IPI code for `hart`, or 0 when none is
    /// pending (the `MMIO_IPI_RECV` device).
    pub fn recv_ipi(&mut self, hart: usize) -> u32 {
        match self.mailboxes[hart].pop_front() {
            Some(code) => {
                self.recvs[hart] += 1;
                code
            }
            None => 0,
        }
    }

    /// Whether `hart` has an undelivered IPI (drives its `mip.MSIP`).
    pub fn ipi_pending(&self, hart: usize) -> bool {
        !self.mailboxes[hart].is_empty()
    }

    /// Undelivered IPI codes currently queued for `hart`.
    pub fn mailbox_depth(&self, hart: usize) -> usize {
        self.mailboxes[hart].len()
    }

    /// `(sent-to, received-by)` IPI counters for `hart`. Conservation —
    /// `sent == received + mailbox_depth` — is the oracle's
    /// no-lost-wakeups invariant.
    pub fn ipi_counts(&self, hart: usize) -> (u64, u64) {
        (self.sends[hart], self.recvs[hart])
    }

    /// Per-hart shared-bus statistics.
    pub fn bus_stats(&self, hart: usize) -> BusMasterStats {
        self.bus.master_stats(hart)
    }

    /// Serializes the shared bus and IPI mailboxes for a machine-state
    /// snapshot.
    pub fn to_snap(&self) -> Json {
        let mailboxes: Vec<Json> = self
            .mailboxes
            .iter()
            .map(|mb| {
                let codes: Vec<u32> = mb.iter().copied().collect();
                Json::object()
                    .with("len", codes.len())
                    .with("codes", snap::words_to_json(&codes))
            })
            .collect();
        Json::object()
            .with("harts", self.harts())
            .with("bus", self.bus.to_snap())
            .with("mailboxes", mailboxes)
            .with("sends", snap::longs_to_json(&self.sends))
            .with("recvs", snap::longs_to_json(&self.recvs))
    }

    /// Rebuilds the shared state from [`to_snap`](Self::to_snap) output.
    ///
    /// # Errors
    ///
    /// Fails on malformed fields or mailbox/counter counts that disagree
    /// with the recorded hart count.
    pub fn from_snap(value: &Json) -> Result<SmpShared, SnapError> {
        let harts = snap::get_usize(value, "harts")?;
        if harts == 0 {
            return Err(SnapError::new("smp: zero harts"));
        }
        let boxes = snap::get_array(value, "mailboxes")?;
        if boxes.len() != harts {
            return Err(SnapError::new(format!(
                "smp: {} mailboxes for {harts} harts",
                boxes.len()
            )));
        }
        let mut mailboxes = Vec::with_capacity(harts);
        for mb in boxes {
            let len = snap::get_usize(mb, "len")?;
            let codes = snap::words_from_json(snap::field(mb, "codes")?, len)?;
            mailboxes.push(codes.into_iter().collect());
        }
        let bus = BusArbiter::from_snap(snap::field(value, "bus")?)?;
        if bus.masters() != harts {
            return Err(SnapError::new("smp: bus master count disagrees"));
        }
        Ok(SmpShared {
            bus,
            mailboxes,
            sends: snap::longs_from_json(snap::field(value, "sends")?, harts)?,
            recvs: snap::longs_from_json(snap::field(value, "recvs")?, harts)?,
        })
    }
}

/// N homogeneous harts in per-cycle lockstep.
///
/// Stepping is strictly cycle-interleaved (hart 0 first each cycle) so
/// cross-hart interactions — bus grants, IPI delivery — resolve at cycle
/// granularity, never reordered by batching. Hart 0 is the *measured*
/// hart by convention: [`run`](Self::run) stops when it halts.
pub struct SmpSystem {
    harts: Vec<System>,
    shared: Rc<RefCell<SmpShared>>,
}

impl SmpSystem {
    /// Builds `n` identical `(kind, preset)` harts on one shared bus.
    /// Hart ids are 0..n; each guest reads its own via `mhartid`.
    pub fn new(kind: CoreKind, preset: Preset, n: usize) -> SmpSystem {
        assert!(n >= 1, "an SMP system needs at least one hart");
        let shared = Rc::new(RefCell::new(SmpShared::new(n)));
        let harts = (0..n)
            .map(|hart| {
                let mut sys = System::new(kind, preset);
                sys.attach_smp(hart, Rc::clone(&shared));
                sys
            })
            .collect();
        SmpSystem { harts, shared }
    }

    /// Number of harts.
    pub fn harts(&self) -> usize {
        self.harts.len()
    }

    /// Shared-state handle (bus stats, mailboxes, IPI counters).
    pub fn shared(&self) -> Rc<RefCell<SmpShared>> {
        Rc::clone(&self.shared)
    }

    /// One hart's system, immutably.
    pub fn hart(&self, hart: usize) -> &System {
        &self.harts[hart]
    }

    /// One hart's system, mutably (program load, overrides, IRQ
    /// schedules).
    pub fn hart_mut(&mut self, hart: usize) -> &mut System {
        &mut self.harts[hart]
    }

    /// Loads a guest image into one hart's instruction memory.
    pub fn load_program(&mut self, hart: usize, program: &Program) {
        self.harts[hart].load_program(program);
    }

    /// Turns the guest PC profiler on or off on *every* hart. Per-hart
    /// profiles come back through [`take_profiles`](Self::take_profiles),
    /// so SMP runs get per-hart cycle attribution.
    pub fn set_profiling(&mut self, on: bool) {
        for sys in &mut self.harts {
            sys.set_profiling(on);
        }
    }

    /// Takes every hart's accumulated profile (index = hart id), turning
    /// profiling off. Harts that were not profiling yield `None`.
    pub fn take_profiles(&mut self) -> Vec<Option<rvsim_cores::PcProfile>> {
        self.harts.iter_mut().map(System::take_profile).collect()
    }

    /// Whether the measured hart (hart 0) has halted.
    pub fn halted(&self) -> bool {
        self.harts[0].halted()
    }

    /// Advances every hart by one cycle, in hart order. Halted harts
    /// stay parked (their platforms stop advancing, which also stops
    /// their bus traffic).
    pub fn step(&mut self) {
        for sys in &mut self.harts {
            if !sys.halted() {
                sys.step();
            }
        }
    }

    /// Serializes the whole composition — every hart plus the shared
    /// bus/mailbox state — into a sealed snapshot document.
    pub fn snapshot(&self) -> Json {
        let systems: Vec<Json> = self.harts.iter().map(System::state_snap).collect();
        snap::seal(
            Json::object()
                .with("harts", self.harts.len())
                .with("shared", self.shared.borrow().to_snap())
                .with("systems", systems),
        )
    }

    /// Rebuilds a composition from a sealed snapshot document. Wiring
    /// (the per-hart `Rc` links to the shared state) is re-established by
    /// construction; only state is read from the snapshot.
    ///
    /// # Errors
    ///
    /// Fails on a broken envelope, hart-count disagreements, or any
    /// malformed per-hart state.
    pub fn from_snapshot(doc: &Json) -> Result<SmpSystem, SnapError> {
        let state = snap::open(&doc.render())?;
        let n = snap::get_usize(&state, "harts")?;
        let systems = snap::get_array(&state, "systems")?;
        if n == 0 || systems.len() != n {
            return Err(SnapError::new(format!(
                "smp: {} hart states for {n} harts",
                systems.len()
            )));
        }
        let shared = SmpShared::from_snap(snap::field(&state, "shared")?)?;
        if shared.harts() != n {
            return Err(SnapError::new("smp: shared state hart count disagrees"));
        }
        // Hart 0's payload self-describes kind and preset; `restore_snap`
        // re-validates them per hart, so a mixed snapshot is rejected.
        let kind_name = snap::get_str(&systems[0], "kind")?;
        let kind = CoreKind::from_name(kind_name)
            .ok_or_else(|| SnapError::new(format!("smp: unknown core kind `{kind_name}`")))?;
        let preset_tag = snap::get_str(&systems[0], "preset")?;
        let preset = Preset::from_tag(preset_tag)
            .ok_or_else(|| SnapError::new(format!("smp: unknown preset `{preset_tag}`")))?;
        let mut smp = SmpSystem::new(kind, preset, n);
        for (hart, sys_state) in systems.iter().enumerate() {
            smp.harts[hart].restore_snap(sys_state)?;
        }
        *smp.shared.borrow_mut() = shared;
        Ok(smp)
    }

    /// Runs in lockstep until hart 0 halts or `max_cycles` elapse.
    pub fn run(&mut self, max_cycles: u64) -> RunExit {
        for _ in 0..max_cycles {
            if self.halted() {
                return RunExit::Halted;
            }
            self.step();
        }
        if self.halted() {
            RunExit::Halted
        } else {
            RunExit::CyclesExhausted
        }
    }
}

impl std::fmt::Debug for SmpSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SmpSystem")
            .field("harts", &self.harts.len())
            .field("cycle", &self.harts[0].platform.cycle())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{DMEM_BASE, IMEM_BASE, MMIO_HALT, MMIO_IPI_RECV, MMIO_IPI_SEND};
    use rvsim_isa::{csr, Asm, Reg};

    /// Store `mhartid` to DMEM, then halt.
    fn hartid_program() -> Program {
        let mut a = Asm::new(IMEM_BASE);
        a.csrr(Reg::A0, csr::MHARTID);
        a.li(Reg::T0, DMEM_BASE as i32);
        a.sw(Reg::A0, 0, Reg::T0);
        a.li(Reg::T0, MMIO_HALT as i32);
        a.sw(Reg::Zero, 0, Reg::T0);
        a.label("spin");
        a.j("spin");
        a.finish().expect("assemble")
    }

    #[test]
    fn each_hart_sees_its_own_id_and_memory() {
        let mut smp = SmpSystem::new(CoreKind::Cv32e40p, Preset::Vanilla, 4);
        let prog = hartid_program();
        for h in 0..4 {
            smp.load_program(h, &prog);
        }
        for _ in 0..200 {
            smp.step();
        }
        for h in 0..4 {
            assert!(smp.hart(h).halted(), "hart {h} did not halt");
            assert_eq!(
                smp.hart(h).platform.dmem.read_word(DMEM_BASE),
                h as u32,
                "hart {h} stored a foreign hartid — DMEM banks must be private"
            );
        }
    }

    /// Hart 1 sends an IPI to hart 0; hart 0's software ISR reads the
    /// mailbox, stores the code, and halts.
    #[test]
    fn ipi_raises_software_interrupt_on_the_target() {
        let mut smp = SmpSystem::new(CoreKind::Cv32e40p, Preset::Vanilla, 2);

        let mut rx = Asm::new(IMEM_BASE);
        rx.la(Reg::T0, "isr");
        rx.csrw(csr::MTVEC, Reg::T0);
        rx.li(Reg::T0, csr::MIP_MSIP as i32);
        rx.csrw(csr::MIE, Reg::T0);
        rx.enable_interrupts();
        rx.label("spin");
        // Halt from the main loop once the ISR has stored the code, so
        // the mret retires and the episode is recorded.
        rx.li(Reg::T0, DMEM_BASE as i32);
        rx.lw(Reg::T1, 0, Reg::T0);
        rx.beq(Reg::T1, Reg::Zero, "spin");
        rx.li(Reg::T0, MMIO_HALT as i32);
        rx.sw(Reg::Zero, 0, Reg::T0);
        rx.j("spin");
        rx.label("isr");
        rx.li(Reg::T0, MMIO_IPI_RECV as i32);
        rx.lw(Reg::A0, 0, Reg::T0);
        rx.li(Reg::T0, DMEM_BASE as i32);
        rx.sw(Reg::A0, 0, Reg::T0);
        rx.mret();
        smp.load_program(0, &rx.finish().expect("assemble rx"));

        let mut tx = Asm::new(IMEM_BASE);
        // Send code 7 to hart 0: (0 << 8) | 7.
        tx.li(Reg::T0, MMIO_IPI_SEND as i32);
        tx.li(Reg::T1, 7);
        tx.sw(Reg::T1, 0, Reg::T0);
        tx.li(Reg::T0, MMIO_HALT as i32);
        tx.sw(Reg::Zero, 0, Reg::T0);
        tx.label("spin");
        tx.j("spin");
        smp.load_program(1, &tx.finish().expect("assemble tx"));

        assert_eq!(smp.run(5_000), RunExit::Halted);
        assert_eq!(smp.hart(0).platform.dmem.read_word(DMEM_BASE), 7);
        let shared = smp.shared();
        let shared = shared.borrow();
        assert_eq!(shared.ipi_counts(0), (1, 1), "one IPI sent, one drained");
        assert_eq!(shared.mailbox_depth(0), 0);
        // The delivery shows up as a recorded software-interrupt episode.
        let recs = smp.hart(0).records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].cause, csr::CAUSE_SOFTWARE);
    }

    #[test]
    fn contending_harts_stretch_latency_but_not_state() {
        // Hart 0 runs a fixed load/store loop; measure its halt cycle
        // alone, then with a memory-pounding neighbour. Timing must grow
        // under contention; the functional result must not change.
        fn worker(iters: i32) -> Program {
            let mut a = Asm::new(IMEM_BASE);
            a.li(Reg::A0, 0);
            a.li(Reg::A1, iters);
            a.li(Reg::T0, DMEM_BASE as i32);
            a.label("loop");
            a.sw(Reg::A0, 4, Reg::T0);
            a.lw(Reg::T1, 4, Reg::T0);
            a.add(Reg::A0, Reg::T1, Reg::Zero);
            a.addi(Reg::A0, Reg::A0, 1);
            a.addi(Reg::A1, Reg::A1, -1);
            a.bne(Reg::A1, Reg::Zero, "loop");
            a.sw(Reg::A0, 0, Reg::T0);
            a.li(Reg::T0, MMIO_HALT as i32);
            a.sw(Reg::Zero, 0, Reg::T0);
            a.label("spin");
            a.j("spin");
            a.finish().expect("assemble")
        }

        let run = |n: usize| -> (u64, u32) {
            let mut smp = SmpSystem::new(CoreKind::Cv32e40p, Preset::Vanilla, n);
            for h in 0..n {
                smp.load_program(h, &worker(200));
            }
            assert_eq!(smp.run(100_000), RunExit::Halted);
            (
                smp.hart(0).platform.cycle(),
                smp.hart(0).platform.dmem.read_word(DMEM_BASE),
            )
        };

        let (alone, value_alone) = run(1);
        let (contended, value_contended) = run(4);
        assert_eq!(value_alone, 200);
        assert_eq!(value_contended, 200, "contention must be timing-only");
        assert!(
            contended > alone,
            "4-hart run ({contended}) not slower than solo ({alone})"
        );
    }

    #[test]
    fn smp_snapshot_roundtrip_preserves_lockstep() {
        // Snapshot a 2-hart system mid-flight — between hart 1's IPI send
        // and hart 0's delivery, so a queued mailbox entry and live bus
        // state cross the snapshot — and check the restored composition
        // finishes identically to the uninterrupted one.
        let build = || {
            let mut smp = SmpSystem::new(CoreKind::Cv32e40p, Preset::Vanilla, 2);
            let mut rx = Asm::new(IMEM_BASE);
            rx.la(Reg::T0, "isr");
            rx.csrw(csr::MTVEC, Reg::T0);
            rx.li(Reg::T0, csr::MIP_MSIP as i32);
            rx.csrw(csr::MIE, Reg::T0);
            rx.enable_interrupts();
            rx.label("spin");
            rx.li(Reg::T0, DMEM_BASE as i32);
            rx.lw(Reg::T1, 0, Reg::T0);
            rx.beq(Reg::T1, Reg::Zero, "spin");
            rx.li(Reg::T0, MMIO_HALT as i32);
            rx.sw(Reg::Zero, 0, Reg::T0);
            rx.j("spin");
            rx.label("isr");
            rx.li(Reg::T0, MMIO_IPI_RECV as i32);
            rx.lw(Reg::A0, 0, Reg::T0);
            rx.li(Reg::T0, DMEM_BASE as i32);
            rx.sw(Reg::A0, 0, Reg::T0);
            rx.mret();
            smp.load_program(0, &rx.finish().expect("assemble rx"));
            let mut tx = Asm::new(IMEM_BASE);
            // Busy-wait, then send code 9 to hart 0 and halt.
            tx.li(Reg::A1, 20);
            tx.label("wait");
            tx.addi(Reg::A1, Reg::A1, -1);
            tx.bne(Reg::A1, Reg::Zero, "wait");
            tx.li(Reg::T0, MMIO_IPI_SEND as i32);
            tx.li(Reg::T1, 9);
            tx.sw(Reg::T1, 0, Reg::T0);
            tx.li(Reg::T0, MMIO_HALT as i32);
            tx.sw(Reg::Zero, 0, Reg::T0);
            tx.label("spin");
            tx.j("spin");
            smp.load_program(1, &tx.finish().expect("assemble tx"));
            smp
        };

        let mut a = build();
        for _ in 0..45 {
            a.step();
        }
        let doc = a.snapshot();
        assert_eq!(doc.render(), a.snapshot().render(), "digest-stable");
        let mut b = SmpSystem::from_snapshot(&doc).expect("restore");
        assert_eq!(a.run(5_000), b.run(5_000));
        assert_eq!(a.hart(0).platform.dmem.read_word(DMEM_BASE), 9);
        assert_eq!(
            a.snapshot().render(),
            b.snapshot().render(),
            "continuations must stay bit-identical"
        );
    }

    #[test]
    fn one_hart_smp_is_cycle_identical_to_a_plain_system() {
        let prog = hartid_program();
        let mut plain = System::new(CoreKind::Cva6, Preset::Vanilla);
        plain.load_program(&prog);
        plain.run(10_000);

        let mut smp = SmpSystem::new(CoreKind::Cva6, Preset::Vanilla, 1);
        smp.load_program(0, &prog);
        smp.run(10_000);

        assert_eq!(plain.platform.cycle(), smp.hart(0).platform.cycle());
        assert_eq!(plain.core.retired(), smp.hart(0).core.retired());
        let stats = smp.shared().borrow().bus_stats(0);
        assert_eq!(stats.wait_cycles, 0, "a lone master never waits");
    }
}
