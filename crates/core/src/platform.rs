//! The simulated platform: data memory, optional cache, MMIO devices and
//! the shared-port arbitration.
//!
//! Implements [`DataBus`] for the core engine and routes RTOSUnit
//! accesses:
//!
//! * on **CV32E40P** there is no cache: unit accesses use idle cycles of
//!   the single tightly coupled SRAM port (§5.1);
//! * on **CVA6** the unit arbitrates at the **bus level**, bypassing the
//!   write-through cache; core misses/write-throughs occupy the bus and
//!   block the unit (§5.2);
//! * on **NaxRiscv** the unit sits **inside the LSU** (ctxQueue, §5.3) and
//!   shares the write-back cache — its accesses see hit/miss latency but
//!   also warm the cache for the core.

use crate::ctxqueue::CtxQueue;
use crate::events::{EventTrace, PhaseCode, TraceEvent, TraceMark, TraceSink};
use crate::layout::*;
use crate::smp::SmpShared;
use rvsim_cores::engine::{BusResponse, DataBus};
use rvsim_cores::CoreKind;
use rvsim_isa::csr;
use rvsim_mem::{AccessSize, Arbiter, Cache, Mem};
use rvsim_snapshot::{self as snap, Json, SnapError};
use std::cell::RefCell;
use std::rc::Rc;

/// This platform's attachment to an SMP composition: its hart id (= bus
/// master index) and the shared bus/mailbox state.
#[derive(Debug)]
struct SmpLink {
    hart: usize,
    shared: Rc<RefCell<SmpShared>>,
}

/// Memory-mapped devices: CLINT-like timer/software-interrupt block plus
/// simulation conveniences (console, halt, trace markers).
#[derive(Debug, Clone)]
pub struct Mmio {
    /// Machine time, incremented every cycle.
    pub mtime: u32,
    /// Timer compare value; MTIP is raised when `mtime - mtimecmp`
    /// (modular) is non-negative.
    pub mtimecmp: u32,
    /// Software-interrupt pending line.
    pub msip: bool,
    /// External-interrupt pending line.
    pub ext_pending: bool,
    /// When set, the platform re-arms `mtimecmp += period` on timer-ISR
    /// entry — the auto-reset timer modification of (T), §4.4.
    pub auto_timer_reset: bool,
    /// Tick period in cycles.
    pub timer_period: u32,
    /// Set when the guest writes the HALT register.
    pub halted: bool,
    /// Attention latch: a guest MMIO write changed interrupt/halt state,
    /// so any precomputed quiescence horizon is stale. Consumed (cleared)
    /// by [`DataBus::take_attention`] during batched execution.
    attention: bool,
    /// Typed TRACE writes: benchmark marks and kernel phase marks.
    pub trace_marks: Vec<TraceMark>,
    /// Values written to the console register.
    pub console: Vec<u32>,
}

impl Mmio {
    fn new(timer_period: u32) -> Mmio {
        Mmio {
            mtime: 0,
            mtimecmp: timer_period,
            msip: false,
            ext_pending: false,
            auto_timer_reset: false,
            timer_period,
            halted: false,
            attention: false,
            trace_marks: Vec::new(),
            console: Vec::new(),
        }
    }

    fn timer_pending(&self) -> bool {
        // Modular comparison tolerates mtime wrap-around.
        self.mtime.wrapping_sub(self.mtimecmp) as i32 >= 0
    }

    /// Cycles until MTIP first rises, or `None` when it is already
    /// pending — the line then only changes through an MMIO write, which
    /// raises the attention latch. Used to bound quiescent batches.
    pub fn cycles_until_timer_fire(&self) -> Option<u64> {
        if self.timer_pending() {
            None
        } else {
            Some(u64::from(self.mtimecmp.wrapping_sub(self.mtime)))
        }
    }

    /// The `mip` bit mask implied by the current device state.
    pub fn pending_mask(&self) -> u32 {
        let mut mask = 0;
        if self.timer_pending() {
            mask |= csr::MIP_MTIP;
        }
        if self.msip {
            mask |= csr::MIP_MSIP;
        }
        if self.ext_pending {
            mask |= csr::MIP_MEIP;
        }
        mask
    }

    fn read(&self, addr: u32) -> u32 {
        match addr & !0x3 {
            MMIO_MTIME => self.mtime,
            MMIO_MTIMECMP => self.mtimecmp,
            MMIO_MSIP => u32::from(self.msip),
            _ => 0,
        }
    }

    /// Serializes the device block for a machine-state snapshot.
    pub fn to_snap(&self) -> Json {
        let marks: Vec<Json> = self
            .trace_marks
            .iter()
            .map(|m| Json::object().with("cycle", m.cycle).with("code", m.code))
            .collect();
        Json::object()
            .with("mtime", self.mtime)
            .with("mtimecmp", self.mtimecmp)
            .with("msip", self.msip)
            .with("ext_pending", self.ext_pending)
            .with("auto_timer_reset", self.auto_timer_reset)
            .with("timer_period", self.timer_period)
            .with("halted", self.halted)
            .with("attention", self.attention)
            .with("trace_marks", marks)
            .with("console_len", self.console.len())
            .with("console", snap::words_to_json(&self.console))
    }

    /// Rebuilds the device block from [`to_snap`](Self::to_snap) output.
    ///
    /// # Errors
    ///
    /// Fails on malformed fields.
    pub fn from_snap(value: &Json) -> Result<Mmio, SnapError> {
        let mut trace_marks = Vec::new();
        for m in snap::get_array(value, "trace_marks")? {
            trace_marks.push(TraceMark {
                cycle: snap::get_u64(m, "cycle")?,
                code: snap::get_u32(m, "code")?,
            });
        }
        let console_len = snap::get_usize(value, "console_len")?;
        Ok(Mmio {
            mtime: snap::get_u32(value, "mtime")?,
            mtimecmp: snap::get_u32(value, "mtimecmp")?,
            msip: snap::get_bool(value, "msip")?,
            ext_pending: snap::get_bool(value, "ext_pending")?,
            auto_timer_reset: snap::get_bool(value, "auto_timer_reset")?,
            timer_period: snap::get_u32(value, "timer_period")?,
            halted: snap::get_bool(value, "halted")?,
            attention: snap::get_bool(value, "attention")?,
            trace_marks,
            console: snap::words_from_json(snap::field(value, "console")?, console_len)?,
        })
    }

    fn write(&mut self, addr: u32, value: u32, cycle: u64) {
        match addr & !0x3 {
            MMIO_MTIMECMP => {
                self.mtimecmp = value;
                self.attention = true;
            }
            MMIO_MSIP => {
                self.msip = value & 1 != 0;
                self.attention = true;
            }
            MMIO_EXT_ACK => {
                self.ext_pending = false;
                self.attention = true;
            }
            MMIO_CONSOLE => self.console.push(value),
            MMIO_HALT => {
                self.halted = true;
                self.attention = true;
            }
            MMIO_TRACE => self.trace_marks.push(TraceMark { cycle, code: value }),
            _ => {}
        }
    }
}

/// The data-side platform for one simulated system. See the
/// [module docs](self).
#[derive(Debug)]
pub struct Platform {
    /// Data memory (also backs cached accesses — the cache model is
    /// timing-only).
    pub dmem: Mem,
    dcache: Option<Cache>,
    unit_shares_cache: bool,
    /// ctxQueue (paper §5.3): present when the unit arbitrates inside the
    /// LSU and shares the cache.
    ctx_queue: Option<CtxQueue>,
    arb: Arbiter,
    /// Cycles the downstream bus stays busy from a core access.
    bus_busy: u32,
    core_used_this_cycle: bool,
    cycle: u64,
    /// MMIO devices.
    pub mmio: Mmio,
    /// Event sink; `None` (the default) makes every record site a single
    /// `Option` check and nothing else.
    trace: Option<EventTrace>,
    /// SMP attachment; `None` (the default) keeps the single-hart fast
    /// path byte-identical to the pre-SMP platform.
    smp: Option<SmpLink>,
    /// Armed bus-error latch (fault injection): the next data-memory load
    /// returns the all-ones poison pattern instead of the stored word.
    bus_error_armed: bool,
}

impl Platform {
    /// Creates the platform for `kind` with the default memory map and
    /// tick period.
    pub fn new(kind: CoreKind, timer_period: u32) -> Platform {
        Platform {
            dmem: Mem::new(DMEM_BASE, DMEM_SIZE),
            dcache: kind.dcache().map(Cache::new),
            unit_shares_cache: kind.unit_shares_cache(),
            ctx_queue: kind.unit_shares_cache().then(|| CtxQueue::new(8)),
            arb: Arbiter::new(),
            bus_busy: 0,
            core_used_this_cycle: false,
            cycle: 0,
            mmio: Mmio::new(timer_period),
            trace: None,
            smp: None,
            bus_error_armed: false,
        }
    }

    /// Arms a bus-error response: the next core data-memory *load*
    /// returns `0xFFFF_FFFF` instead of the stored word (fault
    /// injection). Consumed by that load; idempotent until then.
    pub fn arm_bus_error(&mut self) {
        self.bus_error_armed = true;
    }

    /// Attaches this platform to an SMP composition as bus master `hart`.
    /// From here on, core-side DMEM traffic competes for the shared bus
    /// and the IPI doorbell registers become live.
    pub fn attach_smp(&mut self, hart: usize, shared: Rc<RefCell<SmpShared>>) {
        self.smp = Some(SmpLink { hart, shared });
    }

    /// This platform's hart id within its SMP composition (0 standalone).
    pub fn hart_id(&self) -> usize {
        self.smp.as_ref().map_or(0, |link| link.hart)
    }

    /// Whether an IPI is queued for this hart (drives `mip.MSIP` in
    /// addition to the local `msip` latch).
    pub fn ipi_pending(&self) -> bool {
        match &self.smp {
            Some(link) => link.shared.borrow().ipi_pending(link.hart),
            None => false,
        }
    }

    /// Charges the shared bus for a `beats`-cycle transaction, returning
    /// the arbitration wait in cycles. Zero when standalone.
    fn shared_bus_wait(&mut self, beats: u32) -> u32 {
        match &self.smp {
            Some(link) => link
                .shared
                .borrow_mut()
                .bus
                .acquire(link.hart, self.cycle, beats) as u32,
            None => 0,
        }
    }

    /// Enables event tracing with a ring retaining the most recent
    /// `capacity` events. Off by default.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace = Some(EventTrace::new(capacity));
    }

    /// The event trace, when tracing is enabled.
    pub fn trace(&self) -> Option<&EventTrace> {
        self.trace.as_ref()
    }

    /// Takes the trace out (disabling further tracing).
    pub fn take_trace(&mut self) -> Option<EventTrace> {
        self.trace.take()
    }

    /// Records an event at the current cycle when tracing is enabled.
    pub(crate) fn record(&mut self, event: TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.record(self.cycle, event);
        }
    }

    /// Overrides the ctxQueue depth (ablation for §5.3's Pareto claim).
    /// Only meaningful when the unit shares the cache.
    pub fn set_ctx_queue_depth(&mut self, depth: usize) {
        if self.unit_shares_cache {
            self.ctx_queue = Some(CtxQueue::new(depth));
        }
    }

    /// Overrides the arbitration level (§5's integration decision):
    /// `true` = inside the LSU, sharing the cache through a ctxQueue;
    /// `false` = at the bus, bypassing the cache.
    pub fn set_unit_arbitration(&mut self, shares_cache: bool) {
        self.unit_shares_cache = shares_cache;
        self.ctx_queue = shares_cache.then(|| CtxQueue::new(8));
    }

    /// `(issued, full-stall)` counters of the ctxQueue, if present.
    pub fn ctx_queue_stats(&self) -> Option<(u64, u64)> {
        self.ctx_queue.as_ref().map(|q| q.stats())
    }

    /// Starts a new cycle: advances time and decays busy counters. Must be
    /// called once per cycle before the core steps.
    pub fn begin_cycle(&mut self) {
        self.arb.end_cycle();
        self.cycle += 1;
        self.mmio.mtime = self.mmio.mtime.wrapping_add(1);
        self.bus_busy = self.bus_busy.saturating_sub(1);
        self.core_used_this_cycle = false;
    }

    /// Current platform cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Raises the external interrupt line (cleared by a guest write to
    /// `MMIO_EXT_ACK`).
    pub fn raise_external_irq(&mut self) {
        self.mmio.ext_pending = true;
    }

    /// Re-arms the timer after an auto-reset entry (called by the system
    /// when (T) is enabled and a timer interrupt is taken, §4.4).
    pub fn auto_reset_timer(&mut self) {
        self.mmio.mtimecmp = self.mmio.mtimecmp.wrapping_add(self.mmio.timer_period);
    }

    /// The data cache, if the core has one.
    pub fn dcache(&self) -> Option<&Cache> {
        self.dcache.as_ref()
    }

    /// Port occupancy `(total, core, unit)` counters.
    pub fn port_occupancy(&self) -> (u64, u64, u64) {
        self.arb.occupancy()
    }

    fn is_mmio(addr: u32) -> bool {
        (MMIO_BASE..MMIO_END).contains(&addr)
    }

    /// Serializes the full platform state (memory, cache, queues,
    /// arbitration, devices, trace ring) for a machine-state snapshot.
    ///
    /// The SMP attachment is deliberately **not** captured: it is wiring,
    /// not state, and is re-established by the restoring composition
    /// (per-hart shared-bus state lives in [`SmpShared`]).
    pub fn to_snap(&self) -> Json {
        Json::object()
            .with("dmem", self.dmem.to_snap())
            .with(
                "dcache",
                self.dcache.as_ref().map_or(Json::Null, |c| c.to_snap()),
            )
            .with("unit_shares_cache", self.unit_shares_cache)
            .with(
                "ctx_queue",
                self.ctx_queue.as_ref().map_or(Json::Null, |q| q.to_snap()),
            )
            .with("arb", self.arb.to_snap())
            .with("bus_busy", self.bus_busy)
            .with("core_used_this_cycle", self.core_used_this_cycle)
            .with("cycle", self.cycle)
            .with("mmio", self.mmio.to_snap())
            .with(
                "trace",
                self.trace.as_ref().map_or(Json::Null, |t| t.to_snap()),
            )
            .with("bus_error_armed", self.bus_error_armed)
    }

    /// Restores the platform in place from [`to_snap`](Self::to_snap)
    /// output. The SMP attachment (if any) is left untouched. Every field
    /// is parsed before anything is committed, so a failed restore leaves
    /// the platform unchanged.
    ///
    /// # Errors
    ///
    /// Fails on malformed fields or nested component errors.
    pub fn restore_snap(&mut self, value: &Json) -> Result<(), SnapError> {
        let dmem = Mem::from_snap(snap::field(value, "dmem")?)?;
        let dcache = match snap::field(value, "dcache")? {
            Json::Null => None,
            v => Some(Cache::from_snap(v)?),
        };
        let ctx_queue = match snap::field(value, "ctx_queue")? {
            Json::Null => None,
            v => Some(CtxQueue::from_snap(v)?),
        };
        let arb = Arbiter::from_snap(snap::field(value, "arb")?)?;
        let mmio = Mmio::from_snap(snap::field(value, "mmio")?)?;
        let trace = match snap::field(value, "trace")? {
            Json::Null => None,
            v => Some(EventTrace::from_snap(v)?),
        };
        let unit_shares_cache = snap::get_bool(value, "unit_shares_cache")?;
        let bus_busy = snap::get_u32(value, "bus_busy")?;
        let core_used_this_cycle = snap::get_bool(value, "core_used_this_cycle")?;
        let cycle = snap::get_u64(value, "cycle")?;
        let bus_error_armed = snap::get_bool(value, "bus_error_armed")?;
        self.dmem = dmem;
        self.dcache = dcache;
        self.unit_shares_cache = unit_shares_cache;
        self.ctx_queue = ctx_queue;
        self.arb = arb;
        self.bus_busy = bus_busy;
        self.core_used_this_cycle = core_used_this_cycle;
        self.cycle = cycle;
        self.mmio = mmio;
        self.trace = trace;
        self.bus_error_armed = bus_error_armed;
        Ok(())
    }
}

impl DataBus for Platform {
    fn core_access(&mut self, addr: u32, size: AccessSize, write: Option<u32>) -> BusResponse {
        self.core_used_this_cycle = true;
        self.arb.core_request();

        if Self::is_mmio(addr) {
            // IPI doorbell registers, live only with an SMP attachment;
            // intercepted here so `Mmio` itself stays single-hart.
            if let Some(link) = &self.smp {
                match (addr & !0x3, write) {
                    (MMIO_IPI_SEND, Some(v)) => {
                        link.shared
                            .borrow_mut()
                            .send_ipi((v >> 8) as usize, v & 0xFF);
                        return BusResponse {
                            data: 0,
                            extra_latency: 0,
                        };
                    }
                    (MMIO_IPI_RECV, None) => {
                        let hart = link.hart;
                        let code = link.shared.borrow_mut().recv_ipi(hart);
                        return BusResponse {
                            data: code,
                            extra_latency: 1,
                        };
                    }
                    _ => {}
                }
            }
            return match write {
                Some(v) => {
                    self.mmio.write(addr, v, self.cycle);
                    if self.trace.is_some() {
                        match addr & !0x3 {
                            MMIO_TRACE => self.record(match PhaseCode::decode(v) {
                                Some(p) => TraceEvent::Phase(p),
                                None => match crate::events::decode_fault_mark(v) {
                                    Some(detector) => TraceEvent::FaultDetected { detector },
                                    None => TraceEvent::GuestMark { value: v },
                                },
                            }),
                            MMIO_HALT => self.record(TraceEvent::Halted),
                            _ => {}
                        }
                    }
                    BusResponse {
                        data: 0,
                        extra_latency: 0,
                    }
                }
                None => BusResponse {
                    data: self.mmio.read(addr),
                    extra_latency: 1,
                },
            };
        }

        let data = match write {
            Some(v) => {
                self.dmem.write(addr, size, v);
                0
            }
            None if self.bus_error_armed => {
                // Poisoned response: the slave still performs the read
                // (timing is unchanged) but the returned beats are junk.
                self.dmem.read(addr, size);
                self.bus_error_armed = false;
                0xFFFF_FFFF
            }
            None => self.dmem.read(addr, size),
        };

        match self.dcache.as_mut() {
            Some(cache) => {
                let out = cache.access(addr, write.is_some());
                self.bus_busy = self.bus_busy.max(out.bus_cycles);
                if self.trace.is_some() {
                    self.record(TraceEvent::CacheAccess {
                        hit: out.hit,
                        write: write.is_some(),
                    });
                }
                let mut extra = if write.is_some() {
                    out.latency.saturating_sub(1)
                } else {
                    out.latency
                };
                // Only traffic that leaves the cache (refills,
                // write-throughs) crosses the shared SMP bus.
                if out.bus_cycles > 0 {
                    extra += self.shared_bus_wait(out.bus_cycles);
                }
                BusResponse {
                    data,
                    extra_latency: extra,
                }
            }
            None => {
                // Tightly coupled single-cycle SRAM (§6.1). Uncached
                // cores put every access on the shared SMP bus.
                let extra = if write.is_some() { 0 } else { 1 };
                BusResponse {
                    data,
                    extra_latency: extra + self.shared_bus_wait(1),
                }
            }
        }
    }

    fn unit_access(&mut self, addr: u32, write: Option<u32>) -> Option<u32> {
        // The processor always has priority (§4.2 (2)); the bus must also
        // be free of refill/write-through traffic.
        if self.core_used_this_cycle || self.bus_busy > 0 {
            return None;
        }
        if self.unit_shares_cache {
            // LSU-level arbitration: the access goes through the cache and
            // a ctxQueue entry (§5.3). A full queue stalls the FSM.
            let latency = match self.dcache.as_mut() {
                Some(cache) => cache.access(addr, write.is_some()).latency,
                None => 1,
            };
            let now = self.cycle;
            if let Some(q) = self.ctx_queue.as_mut() {
                if !q.try_issue(now, latency) {
                    return None;
                }
            }
        }
        if !self.arb.unit_try_acquire() {
            return None;
        }
        let data = match write {
            Some(v) => {
                self.dmem.write_word(addr, v);
                0
            }
            None => self.dmem.read_word(addr),
        };
        if self.trace.is_some() {
            self.record(TraceEvent::UnitOp {
                write: write.is_some(),
            });
        }
        Some(data)
    }

    fn dedicated_access(&mut self, addr: u32, write: Option<u32>) -> u32 {
        // CV32RT's second memory port: no arbitration, bypasses the cache.
        match write {
            Some(v) => {
                self.dmem.write_word(addr, v);
                0
            }
            None => self.dmem.read_word(addr),
        }
    }

    fn invalidate_line(&mut self, addr: u32) {
        if let Some(cache) = self.dcache.as_mut() {
            cache.invalidate_line(addr);
        }
    }

    fn unit_pending(&self) -> u32 {
        match &self.ctx_queue {
            Some(q) => q.pending_at(self.cycle) as u32,
            None => 0,
        }
    }

    fn advance_cycles(&mut self, cycles: u64) {
        if cycles == 0 {
            return;
        }
        // First closure also settles the previous cycle's grant, exactly
        // like `begin_cycle`; the remaining cycles are guaranteed idle.
        self.arb.end_cycle();
        self.arb.skip_idle_cycles(cycles - 1);
        self.cycle += cycles;
        self.mmio.mtime = self.mmio.mtime.wrapping_add(cycles as u32);
        self.bus_busy = self
            .bus_busy
            .saturating_sub(cycles.min(u64::from(u32::MAX)) as u32);
        self.core_used_this_cycle = false;
    }

    fn take_attention(&mut self) -> bool {
        std::mem::take(&mut self.mmio.attention)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mmio_timer_fires_and_rearm_clears() {
        let mut p = Platform::new(CoreKind::Cv32e40p, 100);
        for _ in 0..99 {
            p.begin_cycle();
        }
        assert_eq!(p.mmio.pending_mask(), 0);
        p.begin_cycle();
        assert_eq!(p.mmio.pending_mask(), csr::MIP_MTIP);
        // Guest re-arms the comparator.
        p.core_access(MMIO_MTIMECMP, AccessSize::Word, Some(p.mmio.mtime + 100));
        assert_eq!(p.mmio.pending_mask(), 0);
    }

    #[test]
    fn msip_and_ext_lines() {
        let mut p = Platform::new(CoreKind::Cv32e40p, 1000);
        p.core_access(MMIO_MSIP, AccessSize::Word, Some(1));
        assert_eq!(p.mmio.pending_mask() & csr::MIP_MSIP, csr::MIP_MSIP);
        p.core_access(MMIO_MSIP, AccessSize::Word, Some(0));
        assert_eq!(p.mmio.pending_mask(), 0);
        p.raise_external_irq();
        assert_eq!(p.mmio.pending_mask(), csr::MIP_MEIP);
        p.core_access(MMIO_EXT_ACK, AccessSize::Word, Some(1));
        assert_eq!(p.mmio.pending_mask(), 0);
    }

    #[test]
    fn unit_blocked_while_core_uses_port() {
        let mut p = Platform::new(CoreKind::Cv32e40p, 1000);
        p.begin_cycle();
        p.core_access(DMEM_BASE, AccessSize::Word, Some(5));
        assert_eq!(p.unit_access(DMEM_BASE + 4, Some(7)), None);
        p.begin_cycle();
        assert_eq!(p.unit_access(DMEM_BASE + 4, Some(7)), Some(0));
        assert_eq!(p.dmem.read_word(DMEM_BASE + 4), 7);
    }

    #[test]
    fn cache_miss_refill_blocks_the_bus_for_the_unit() {
        let mut p = Platform::new(CoreKind::Cva6, 1000);
        p.begin_cycle();
        let resp = p.core_access(DMEM_BASE, AccessSize::Word, None);
        assert!(resp.extra_latency > 1, "first access must miss");
        // Refill traffic occupies the bus for the following cycles.
        p.begin_cycle();
        assert_eq!(p.unit_access(DMEM_BASE + 64, None), None);
        // After the refill drains, the unit gets through.
        for _ in 0..8 {
            p.begin_cycle();
        }
        assert!(p.unit_access(DMEM_BASE + 64, None).is_some());
    }

    #[test]
    fn ctx_queue_pipelines_misses_until_full() {
        let mut p = Platform::new(CoreKind::NaxRiscv, 1000);
        // Eight accesses to distinct lines (all misses) pipeline into the
        // queue back-to-back...
        for i in 0..8 {
            p.begin_cycle();
            assert!(
                p.unit_access(DMEM_BASE + i * 64, None).is_some(),
                "miss {i} must pipeline"
            );
        }
        // ...the ninth stalls on the full queue.
        p.begin_cycle();
        assert_eq!(p.unit_access(DMEM_BASE + 8 * 64, None), None, "queue full");
        assert!(p.unit_pending() > 0);
        // After the oldest miss drains, issuing resumes.
        for _ in 0..25 {
            p.begin_cycle();
        }
        assert!(p.unit_access(DMEM_BASE + 8 * 64, None).is_some());
    }

    #[test]
    fn arbitration_override_switches_models() {
        let mut p = Platform::new(CoreKind::NaxRiscv, 1000);
        p.set_unit_arbitration(false); // bus level: no queue, bypass cache
        assert!(p.ctx_queue_stats().is_none());
        p.begin_cycle();
        assert!(p.unit_access(DMEM_BASE, None).is_some());
        assert_eq!(p.unit_pending(), 0);
    }

    #[test]
    fn halt_trace_console_devices() {
        let mut p = Platform::new(CoreKind::Cv32e40p, 1000);
        p.begin_cycle();
        p.core_access(MMIO_CONSOLE, AccessSize::Word, Some(42));
        p.core_access(MMIO_TRACE, AccessSize::Word, Some(7));
        assert!(!p.mmio.halted);
        p.core_access(MMIO_HALT, AccessSize::Word, Some(1));
        assert!(p.mmio.halted);
        assert_eq!(p.mmio.console, vec![42]);
        assert_eq!(p.mmio.trace_marks, vec![TraceMark { cycle: 1, code: 7 }]);
    }

    #[test]
    fn tracing_records_typed_events_when_enabled() {
        let mut p = Platform::new(CoreKind::Cva6, 1000);
        assert!(p.trace().is_none(), "tracing defaults off");
        p.enable_tracing(64);
        p.begin_cycle();
        p.core_access(DMEM_BASE, AccessSize::Word, None); // miss
        p.begin_cycle();
        p.core_access(DMEM_BASE, AccessSize::Word, None); // hit
        p.core_access(MMIO_TRACE, AccessSize::Word, Some(0xE1));
        p.core_access(
            MMIO_TRACE,
            AccessSize::Word,
            Some(PhaseCode::SaveDone.encode()),
        );
        p.core_access(MMIO_HALT, AccessSize::Word, Some(1));
        let t = p.take_trace().expect("trace present");
        let kinds: Vec<&str> = t.iter().map(|(_, e)| e.kind()).collect();
        assert_eq!(
            kinds,
            vec!["cache", "cache", "guest_mark", "phase", "halted"]
        );
        let hits: Vec<bool> = t
            .of_kind("cache")
            .map(|(_, e)| match e {
                TraceEvent::CacheAccess { hit, .. } => hit,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(hits, vec![false, true]);
        assert!(p.trace().is_none(), "take_trace disables tracing");
    }

    #[test]
    fn bulk_advance_matches_per_cycle_begin() {
        let mut a = Platform::new(CoreKind::Cv32e40p, 100);
        let mut b = Platform::new(CoreKind::Cv32e40p, 100);
        for _ in 0..73 {
            a.begin_cycle();
        }
        b.advance_cycles(73);
        assert_eq!(a.cycle(), b.cycle());
        assert_eq!(a.mmio.mtime, b.mmio.mtime);
        assert_eq!(a.port_occupancy(), b.port_occupancy());
        assert_eq!(a.mmio.pending_mask(), b.mmio.pending_mask());
        assert_eq!(a.mmio.cycles_until_timer_fire(), Some(27));
    }

    #[test]
    fn mmio_writes_raise_attention() {
        let mut p = Platform::new(CoreKind::Cv32e40p, 100);
        assert!(!p.take_attention());
        p.begin_cycle();
        p.core_access(MMIO_MTIMECMP, AccessSize::Word, Some(500));
        assert!(p.take_attention());
        assert!(!p.take_attention(), "attention is consumed on read");
        p.core_access(MMIO_CONSOLE, AccessSize::Word, Some(1));
        assert!(!p.take_attention(), "console writes do not raise attention");
    }

    #[test]
    fn auto_reset_rearm_advances_by_period() {
        let mut p = Platform::new(CoreKind::Cv32e40p, 50);
        for _ in 0..50 {
            p.begin_cycle();
        }
        assert!(p.mmio.pending_mask() & csr::MIP_MTIP != 0);
        p.auto_reset_timer();
        assert_eq!(p.mmio.pending_mask() & csr::MIP_MTIP, 0);
        assert_eq!(p.mmio.mtimecmp, 100);
    }
}
