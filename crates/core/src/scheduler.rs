//! The hardware scheduler: ready and delay lists (paper §4.4, Fig. 5).
//!
//! Both lists are fixed-capacity arrays kept sorted by an iterative
//! (bubble) sorting network — one compare-swap wave per cycle. The model
//! keeps the arrays *functionally* sorted at all times and tracks a
//! `sort_busy` cycle counter for the time hardware would still be sorting;
//! `GET_HW_SCHED` stalls while that counter is non-zero.

use rvsim_snapshot::{self as snap, Json, SnapError};

/// One slot of a hardware list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedEntry {
    /// Task id (index into the context region and the software lookup
    /// table).
    pub task_id: u8,
    /// Task priority; higher runs first.
    pub prio: u8,
    /// Remaining delay in ticks (delay list only).
    pub delay: u32,
    /// Insertion sequence, used to keep sorting stable (FIFO within a
    /// priority).
    pub seq: u64,
}

/// Hardware ready + delay lists.
///
/// ```
/// use rtosunit::HwScheduler;
/// let mut s = HwScheduler::new(8);
/// s.add_ready(1, 5);
/// s.add_ready(2, 7);
/// s.add_ready(3, 5);
/// assert_eq!(s.pop_rotate(), Some(2)); // highest priority wins
/// assert_eq!(s.pop_rotate(), Some(2)); // and keeps winning after rotation
/// s.rm_task(2);
/// assert_eq!(s.pop_rotate(), Some(1)); // round-robin within priority 5
/// assert_eq!(s.pop_rotate(), Some(3));
/// ```
#[derive(Debug, Clone)]
pub struct HwScheduler {
    ready: Vec<SchedEntry>,
    delay: Vec<SchedEntry>,
    capacity: usize,
    seq: u64,
    sort_busy: u32,
    /// Set once an insertion was attempted beyond capacity; the system
    /// must fall back to software scheduling (paper §4.4).
    overflowed: bool,
}

impl HwScheduler {
    /// Creates empty lists with `capacity` slots each.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> HwScheduler {
        assert!(capacity > 0, "list capacity must be at least 1");
        HwScheduler {
            ready: Vec::with_capacity(capacity),
            delay: Vec::with_capacity(capacity),
            capacity,
            seq: 0,
            sort_busy: 0,
            overflowed: false,
        }
    }

    /// Capacity of each list.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of valid ready entries.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Number of valid delay entries.
    pub fn delay_len(&self) -> usize {
        self.delay.len()
    }

    /// Whether an insertion ever exceeded the capacity.
    pub fn overflowed(&self) -> bool {
        self.overflowed
    }

    /// Cycles of iterative sorting still outstanding.
    pub fn sort_busy(&self) -> u32 {
        self.sort_busy
    }

    /// Advances the sorting network by one cycle.
    pub fn step(&mut self) {
        self.sort_busy = self.sort_busy.saturating_sub(1);
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn charge_sort(&mut self) {
        // One bubble pass moves an entry at most `len` positions; the
        // hardware performs one compare-swap wave per cycle.
        let len = self.ready.len().max(self.delay.len()) as u32;
        self.sort_busy = self.sort_busy.max(len);
    }

    fn sort_ready(&mut self) {
        // Priority descending, then insertion order (stable round-robin).
        self.ready
            .sort_by(|a, b| b.prio.cmp(&a.prio).then(a.seq.cmp(&b.seq)));
    }

    fn sort_delay(&mut self) {
        // Remaining delay ascending, ties broken by priority (Fig. 5 (f)).
        self.delay.sort_by(|a, b| {
            a.delay
                .cmp(&b.delay)
                .then(b.prio.cmp(&a.prio))
                .then(a.seq.cmp(&b.seq))
        });
    }

    /// `ADD_READY`: inserts a task into the ready list (Fig. 5 (a)).
    ///
    /// Returns `false` (and latches the overflow flag) when the list is
    /// full.
    pub fn add_ready(&mut self, task_id: u8, prio: u8) -> bool {
        if self.ready.len() == self.capacity {
            self.overflowed = true;
            return false;
        }
        let seq = self.next_seq();
        self.ready.push(SchedEntry {
            task_id,
            prio,
            delay: 0,
            seq,
        });
        self.sort_ready();
        self.charge_sort();
        true
    }

    /// `ADD_DELAY`: inserts the *running* task into the delay list
    /// (Fig. 5 (d)).
    pub fn add_delay(&mut self, task_id: u8, prio: u8, ticks: u32) -> bool {
        if self.delay.len() == self.capacity {
            self.overflowed = true;
            return false;
        }
        let seq = self.next_seq();
        self.delay.push(SchedEntry {
            task_id,
            prio,
            delay: ticks,
            seq,
        });
        self.sort_delay();
        self.charge_sort();
        true
    }

    /// `RM_TASK`: removes every entry with `task_id` from both lists
    /// (Fig. 5 (c)).
    ///
    /// Returns the number of entries removed.
    pub fn rm_task(&mut self, task_id: u8) -> usize {
        let before = self.ready.len() + self.delay.len();
        self.ready.retain(|e| e.task_id != task_id);
        self.delay.retain(|e| e.task_id != task_id);
        let removed = before - (self.ready.len() + self.delay.len());
        if removed > 0 {
            self.charge_sort();
        }
        removed
    }

    /// `GET_HW_SCHED`: returns the head of the ready list and rotates it
    /// to the tail of its priority class (Fig. 5 (h)).
    pub fn pop_rotate(&mut self) -> Option<u8> {
        if self.ready.is_empty() {
            return None;
        }
        let head = self.ready[0];
        let seq = self.next_seq();
        self.ready[0].seq = seq;
        self.sort_ready();
        self.charge_sort();
        Some(head.task_id)
    }

    /// The current head of the ready list without rotating (used by the
    /// preloader, §4.7).
    pub fn head(&self) -> Option<(u8, u8)> {
        self.ready.first().map(|e| (e.task_id, e.prio))
    }

    /// Timer tick (Fig. 5 (e)/(g)): decrements delay counters and moves
    /// expired tasks to the ready list. Returns the ids woken.
    pub fn tick(&mut self) -> Vec<u8> {
        for e in &mut self.delay {
            e.delay = e.delay.saturating_sub(1);
        }
        let mut woken = Vec::new();
        let mut i = 0;
        while i < self.delay.len() {
            if self.delay[i].delay == 0 {
                let e = self.delay.remove(i);
                woken.push(e.task_id);
                if self.ready.len() == self.capacity {
                    self.overflowed = true;
                } else {
                    let seq = self.next_seq();
                    self.ready.push(SchedEntry { seq, ..e });
                }
            } else {
                i += 1;
            }
        }
        if !woken.is_empty() {
            self.sort_ready();
        }
        self.sort_delay();
        self.charge_sort();
        woken
    }

    /// Snapshot of the ready list, highest priority first (test support).
    pub fn ready_snapshot(&self) -> Vec<SchedEntry> {
        self.ready.clone()
    }

    /// Snapshot of the delay list, soonest first (test support).
    pub fn delay_snapshot(&self) -> Vec<SchedEntry> {
        self.delay.clone()
    }

    /// Serializes both lists and the sorting-network state for a
    /// machine-state snapshot.
    pub fn to_snap(&self) -> Json {
        let list = |entries: &[SchedEntry]| -> Json {
            entries
                .iter()
                .map(|e| {
                    Json::object()
                        .with("task", u32::from(e.task_id))
                        .with("prio", u32::from(e.prio))
                        .with("delay", e.delay)
                        .with("seq", e.seq)
                })
                .collect::<Vec<Json>>()
                .into()
        };
        Json::object()
            .with("capacity", self.capacity)
            .with("seq", self.seq)
            .with("sort_busy", self.sort_busy)
            .with("overflowed", self.overflowed)
            .with("ready", list(&self.ready))
            .with("delay", list(&self.delay))
    }

    /// Rebuilds the scheduler from [`to_snap`](Self::to_snap) output.
    ///
    /// # Errors
    ///
    /// Fails on malformed fields, a zero capacity, or a list longer than
    /// the capacity.
    pub fn from_snap(value: &Json) -> Result<HwScheduler, SnapError> {
        let capacity = snap::get_usize(value, "capacity")?;
        if capacity == 0 {
            return Err(SnapError::new("scheduler: zero capacity"));
        }
        let list = |key: &str| -> Result<Vec<SchedEntry>, SnapError> {
            let entries = snap::get_array(value, key)?;
            if entries.len() > capacity {
                return Err(SnapError::new(format!(
                    "scheduler: {key} list of {} exceeds capacity {capacity}",
                    entries.len()
                )));
            }
            entries
                .iter()
                .map(|e| {
                    Ok(SchedEntry {
                        task_id: snap::get_u8(e, "task")?,
                        prio: snap::get_u8(e, "prio")?,
                        delay: snap::get_u32(e, "delay")?,
                        seq: snap::get_u64(e, "seq")?,
                    })
                })
                .collect()
        };
        Ok(HwScheduler {
            ready: list("ready")?,
            delay: list("delay")?,
            capacity,
            seq: snap::get_u64(value, "seq")?,
            sort_busy: snap::get_u32(value, "sort_busy")?,
            overflowed: snap::get_bool(value, "overflowed")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_is_priority_ordered_and_stable() {
        let mut s = HwScheduler::new(8);
        s.add_ready(1, 3);
        s.add_ready(2, 5);
        s.add_ready(3, 3);
        s.add_ready(4, 5);
        let order: Vec<u8> = s.ready_snapshot().iter().map(|e| e.task_id).collect();
        assert_eq!(order, [2, 4, 1, 3]);
    }

    #[test]
    fn rotation_is_round_robin_within_priority() {
        let mut s = HwScheduler::new(8);
        s.add_ready(1, 5);
        s.add_ready(2, 5);
        s.add_ready(3, 5);
        assert_eq!(s.pop_rotate(), Some(1));
        assert_eq!(s.pop_rotate(), Some(2));
        assert_eq!(s.pop_rotate(), Some(3));
        assert_eq!(s.pop_rotate(), Some(1));
    }

    #[test]
    fn higher_priority_preempts_rotation() {
        let mut s = HwScheduler::new(8);
        s.add_ready(1, 5);
        s.add_ready(2, 5);
        s.add_ready(9, 7);
        assert_eq!(s.pop_rotate(), Some(9));
        assert_eq!(s.pop_rotate(), Some(9), "priority 7 stays ahead of 5");
    }

    #[test]
    fn tick_moves_expired_tasks_to_ready() {
        let mut s = HwScheduler::new(8);
        s.add_delay(1, 5, 2);
        s.add_delay(2, 6, 1);
        assert_eq!(s.tick(), vec![2]);
        assert_eq!(s.head(), Some((2, 6)));
        assert_eq!(s.tick(), vec![1]);
        assert_eq!(s.delay_len(), 0);
        assert_eq!(s.ready_len(), 2);
    }

    #[test]
    fn delay_list_sorted_by_remaining_then_priority() {
        let mut s = HwScheduler::new(8);
        s.add_delay(1, 2, 5);
        s.add_delay(2, 9, 5);
        s.add_delay(3, 4, 1);
        let order: Vec<u8> = s.delay_snapshot().iter().map(|e| e.task_id).collect();
        assert_eq!(order, [3, 2, 1]);
    }

    #[test]
    fn rm_task_clears_both_lists() {
        let mut s = HwScheduler::new(8);
        s.add_ready(1, 5);
        s.add_delay(1, 5, 10);
        s.add_ready(2, 5);
        assert_eq!(s.rm_task(1), 2);
        assert_eq!(s.ready_len(), 1);
        assert_eq!(s.delay_len(), 0);
        assert_eq!(s.rm_task(42), 0);
    }

    #[test]
    fn overflow_is_latched() {
        let mut s = HwScheduler::new(2);
        assert!(s.add_ready(1, 1));
        assert!(s.add_ready(2, 1));
        assert!(!s.add_ready(3, 1));
        assert!(s.overflowed());
    }

    #[test]
    fn sorting_takes_cycles() {
        let mut s = HwScheduler::new(8);
        for i in 0..6 {
            s.add_ready(i, i);
        }
        assert!(s.sort_busy() > 0);
        while s.sort_busy() > 0 {
            s.step();
        }
        assert_eq!(s.sort_busy(), 0);
    }

    #[test]
    fn empty_pop_returns_none() {
        let mut s = HwScheduler::new(4);
        assert_eq!(s.pop_rotate(), None);
        assert_eq!(s.head(), None);
    }
}
