//! The RTOSUnit hardware model (paper §4).
//!
//! The unit attaches to a core through the
//! [`Coprocessor`] trait. Its behaviour per
//! cycle:
//!
//! * the **store FSM** drains the frozen application register bank to the
//!   task's fixed context chunk, one word per *idle* data-port cycle
//!   (processor priority, §4.2 (2)); with dirty bits (§4.5) only modified
//!   registers are written;
//! * the **restore FSM** loads the next context once the store finished,
//!   stalling `mret` until done (§4.3);
//! * the **preloader** (§4.7) speculatively fills a 31-word buffer with
//!   the context of the ready-list head outside ISRs; on a correct
//!   prediction the restore happens in lockstep with the store — each
//!   saved register is immediately overwritten with its preloaded value —
//!   so loading costs no extra memory cycles;
//! * the **hardware scheduler** (§4.4) executes `ADD_READY`/`ADD_DELAY`/
//!   `RM_TASK`/`GET_HW_SCHED` and reacts to timer interrupts.

use crate::config::RtosUnitConfig;
use crate::layout::{ctx_reg, ctx_word_addr, CTX_MEPC_IDX, CTX_MSTATUS_IDX, CTX_WORDS};
use crate::scheduler::HwScheduler;
use rvsim_cores::{ArchState, Bank, Coprocessor, DataBus};
use rvsim_isa::{csr, CustomOp};
use rvsim_snapshot::{self as snap, Json, SnapError};

/// Activity counters used by the tests and the power model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UnitStats {
    /// Interrupt entries observed.
    pub interrupts: u64,
    /// Context words written by the store FSM.
    pub store_words: u64,
    /// Context words read by the restore FSM.
    pub load_words: u64,
    /// Context words speculatively preloaded.
    pub preload_words: u64,
    /// Switches where the preloaded context matched the scheduled task.
    pub preload_hits: u64,
    /// Switches where the preload was wrong (or incomplete).
    pub preload_misses: u64,
    /// Context loads skipped because next == previous (§4.6).
    pub omitted_loads: u64,
    /// Custom instructions executed.
    pub custom_instrs: u64,
    /// Cycles the store FSM waited for the port.
    pub store_stall_cycles: u64,
    /// Cycles the restore FSM waited for the port.
    pub load_stall_cycles: u64,
    /// Hardware semaphore takes that succeeded immediately (extension).
    pub sem_takes: u64,
    /// Hardware semaphore takes that blocked the caller (extension).
    pub sem_blocks: u64,
    /// Hardware semaphore gives (extension).
    pub sem_gives: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RestoreMode {
    /// No restore required (no (L), or nothing scheduled yet).
    None,
    /// Normal restore from the context region, after the store completes.
    Memory,
    /// Preload hit: swap preloaded values in lockstep with the store.
    Lockstep,
    /// Load omission (§4.6): next task == previous task.
    Omitted,
}

/// One hardware semaphore of the §7-extension synchronisation unit:
/// a counter plus a priority-ordered wait list (FIFO within a priority —
/// `Vec` order is insertion order and the scan picks the first maximum).
#[derive(Debug, Clone, Default)]
struct HwSemaphore {
    count: u32,
    waiters: Vec<(u8, u8)>, // (task id, priority), insertion-ordered
}

impl HwSemaphore {
    fn pop_waiter(&mut self) -> Option<(u8, u8)> {
        let best = self
            .waiters
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.1.cmp(&b.1).then(ib.cmp(ia)))?
            .0;
        Some(self.waiters.remove(best))
    }
}

/// The RTOSUnit. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct RtosUnit {
    cfg: RtosUnitConfig,
    sched: Option<HwScheduler>,
    sems: Vec<HwSemaphore>,
    current_id: u8,
    pending_next: Option<u8>,
    in_isr: bool,

    store_active: bool,
    /// All words issued, waiting for the bus/ctxQueue to drain (§5.3:
    /// "SWITCH_RF waits for all pending stores in the ctxQueue").
    store_draining: bool,
    store_word: usize,
    store_mask: u32,

    restore_mode: RestoreMode,
    restore_pending: bool,
    restore_active: bool,
    restore_draining: bool,
    restore_word: usize,
    restore_id: u8,

    preload_buf: [u32; CTX_WORDS],
    preload_id: Option<u8>,
    preload_word: usize,

    /// Activity counters.
    pub stats: UnitStats,
}

impl RtosUnit {
    /// Creates a unit for a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` violates the dependency rules of §4
    /// (use [`RtosUnitConfig::validate`] to check first).
    pub fn new(cfg: RtosUnitConfig) -> RtosUnit {
        cfg.validate().expect("invalid RTOSUnit configuration");
        RtosUnit {
            sched: cfg.sched.then(|| HwScheduler::new(cfg.list_len)),
            sems: if cfg.hw_sync {
                vec![HwSemaphore::default(); 8]
            } else {
                Vec::new()
            },
            cfg,
            current_id: 0,
            pending_next: None,
            in_isr: false,
            store_active: false,
            store_draining: false,
            store_word: 0,
            store_mask: 0,
            restore_mode: RestoreMode::None,
            restore_pending: false,
            restore_active: false,
            restore_draining: false,
            restore_word: 0,
            restore_id: 0,
            preload_buf: [0; CTX_WORDS],
            preload_id: None,
            preload_word: 0,
            stats: UnitStats::default(),
        }
    }

    /// The configuration this unit was built with.
    pub fn config(&self) -> &RtosUnitConfig {
        &self.cfg
    }

    /// The task id whose context currently occupies the application bank.
    pub fn current_task(&self) -> u8 {
        self.current_id
    }

    /// Hardware scheduler, when (T) is enabled.
    pub fn scheduler(&self) -> Option<&HwScheduler> {
        self.sched.as_ref()
    }

    /// Whether the store FSM is still storing or draining a context.
    pub fn store_busy(&self) -> bool {
        self.store_active || self.store_draining
    }

    /// Whether a context restore is pending or in flight.
    pub fn restore_busy(&self) -> bool {
        match self.restore_mode {
            RestoreMode::Memory => {
                self.restore_pending || self.restore_active || self.restore_draining
            }
            RestoreMode::Lockstep => self.store_busy() || self.restore_word < CTX_WORDS,
            RestoreMode::None | RestoreMode::Omitted => false,
        }
    }

    fn sched_mut(&mut self) -> &mut HwScheduler {
        self.sched
            .as_mut()
            .expect("hardware scheduling instruction without (T) enabled")
    }

    /// Restarts the preloader for the current ready-list head if the
    /// buffered prediction no longer matches.
    fn preload_refresh(&mut self) {
        if !self.cfg.preload {
            return;
        }
        let head = self.sched.as_ref().and_then(|s| s.head()).map(|(id, _)| id);
        if head != self.preload_id {
            self.preload_id = head;
            self.preload_word = 0;
        }
    }

    fn preload_complete_for(&self, id: u8) -> bool {
        self.preload_id == Some(id) && self.preload_word == CTX_WORDS
    }

    fn begin_restore(&mut self, id: u8) {
        debug_assert!(self.cfg.load);
        if self.cfg.load_omission && id == self.current_id {
            self.restore_mode = RestoreMode::Omitted;
            self.stats.omitted_loads += 1;
            return;
        }
        if self.cfg.preload {
            if self.preload_complete_for(id) {
                self.restore_mode = RestoreMode::Lockstep;
                self.restore_word = 0;
                self.restore_id = id;
                self.stats.preload_hits += 1;
                return;
            }
            self.stats.preload_misses += 1;
        }
        self.restore_mode = RestoreMode::Memory;
        self.restore_pending = true;
        self.restore_active = false;
        self.restore_word = 0;
        self.restore_id = id;
    }

    fn ctx_word_value(state: &ArchState, word: usize) -> u32 {
        match word {
            CTX_MSTATUS_IDX => state.csrs.mstatus,
            CTX_MEPC_IDX => state.csrs.mepc,
            w => state.bank_read(Bank::App, ctx_reg(w)),
        }
    }

    fn write_ctx_word(state: &mut ArchState, word: usize, value: u32) {
        match word {
            CTX_MSTATUS_IDX => state.csrs.mstatus = value,
            CTX_MEPC_IDX => state.csrs.mepc = value,
            w => state.bank_write_clean(Bank::App, ctx_reg(w), value),
        }
    }

    /// Advances `store_word` to the next masked word at or after `from`.
    fn next_store_word(&self, from: usize) -> usize {
        let mut w = from;
        while w < CTX_WORDS && self.store_mask & (1 << w) == 0 {
            w += 1;
        }
        w
    }

    /// Arms the restore FSM once the store has drained (the restore may
    /// be requested before or after the store finishes, depending on how
    /// long the scheduler runs).
    fn maybe_start_restore(&mut self) {
        if !self.store_busy() && self.restore_pending && self.restore_mode == RestoreMode::Memory {
            self.restore_pending = false;
            self.restore_active = true;
            self.restore_word = 0;
        }
    }

    /// Serializes the unit — configuration, scheduler, semaphores, every
    /// FSM cursor, the preload buffer and the counters — for a
    /// machine-state snapshot.
    pub fn to_snap(&self) -> Json {
        let cfg = Json::object()
            .with("store", self.cfg.store)
            .with("load", self.cfg.load)
            .with("sched", self.cfg.sched)
            .with("dirty_bits", self.cfg.dirty_bits)
            .with("load_omission", self.cfg.load_omission)
            .with("preload", self.cfg.preload)
            .with("hw_sync", self.cfg.hw_sync)
            .with("list_len", self.cfg.list_len);
        let sems: Vec<Json> = self
            .sems
            .iter()
            .map(|s| {
                let waiters: Vec<Json> = s
                    .waiters
                    .iter()
                    .map(|&(task, prio)| {
                        Json::object()
                            .with("task", u32::from(task))
                            .with("prio", u32::from(prio))
                    })
                    .collect();
                Json::object()
                    .with("count", s.count)
                    .with("waiters", waiters)
            })
            .collect();
        let mut stats = Json::object();
        for (name, value) in self.stats_named() {
            stats.push(name, value);
        }
        Json::object()
            .with("cfg", cfg)
            .with(
                "sched",
                self.sched.as_ref().map_or(Json::Null, |s| s.to_snap()),
            )
            .with("sems", sems)
            .with("current_id", u32::from(self.current_id))
            .with(
                "pending_next",
                match self.pending_next {
                    None => Json::Int(-1),
                    Some(id) => Json::UInt(u64::from(id)),
                },
            )
            .with("in_isr", self.in_isr)
            .with("store_active", self.store_active)
            .with("store_draining", self.store_draining)
            .with("store_word", self.store_word)
            .with("store_mask", self.store_mask)
            .with(
                "restore_mode",
                match self.restore_mode {
                    RestoreMode::None => "none",
                    RestoreMode::Memory => "memory",
                    RestoreMode::Lockstep => "lockstep",
                    RestoreMode::Omitted => "omitted",
                },
            )
            .with("restore_pending", self.restore_pending)
            .with("restore_active", self.restore_active)
            .with("restore_draining", self.restore_draining)
            .with("restore_word", self.restore_word)
            .with("restore_id", u32::from(self.restore_id))
            .with("preload_buf", snap::words_to_json(&self.preload_buf))
            .with(
                "preload_id",
                match self.preload_id {
                    None => Json::Int(-1),
                    Some(id) => Json::UInt(u64::from(id)),
                },
            )
            .with("preload_word", self.preload_word)
            .with("stats", stats)
    }

    /// `(name, value)` pairs of the activity counters in a stable order.
    fn stats_named(&self) -> [(&'static str, u64); 13] {
        let s = &self.stats;
        [
            ("interrupts", s.interrupts),
            ("store_words", s.store_words),
            ("load_words", s.load_words),
            ("preload_words", s.preload_words),
            ("preload_hits", s.preload_hits),
            ("preload_misses", s.preload_misses),
            ("omitted_loads", s.omitted_loads),
            ("custom_instrs", s.custom_instrs),
            ("store_stall_cycles", s.store_stall_cycles),
            ("load_stall_cycles", s.load_stall_cycles),
            ("sem_takes", s.sem_takes),
            ("sem_blocks", s.sem_blocks),
            ("sem_gives", s.sem_gives),
        ]
    }

    /// Rebuilds the unit from [`to_snap`](Self::to_snap) output,
    /// configuration included.
    ///
    /// # Errors
    ///
    /// Fails on malformed fields, an invalid configuration, or cursors
    /// beyond the context size.
    pub fn from_snap(value: &Json) -> Result<RtosUnit, SnapError> {
        let c = snap::field(value, "cfg")?;
        let cfg = RtosUnitConfig {
            store: snap::get_bool(c, "store")?,
            load: snap::get_bool(c, "load")?,
            sched: snap::get_bool(c, "sched")?,
            dirty_bits: snap::get_bool(c, "dirty_bits")?,
            load_omission: snap::get_bool(c, "load_omission")?,
            preload: snap::get_bool(c, "preload")?,
            hw_sync: snap::get_bool(c, "hw_sync")?,
            list_len: snap::get_usize(c, "list_len")?,
        };
        cfg.validate()
            .map_err(|e| SnapError::new(format!("unit: invalid configuration: {e}")))?;
        let sched = match snap::field(value, "sched")? {
            Json::Null => None,
            v => Some(HwScheduler::from_snap(v)?),
        };
        if sched.is_some() != cfg.sched {
            return Err(SnapError::new(
                "unit: scheduler presence disagrees with cfg",
            ));
        }
        if let Some(s) = &sched {
            if s.capacity() != cfg.list_len {
                return Err(SnapError::new(
                    "unit: scheduler capacity disagrees with cfg",
                ));
            }
        }
        let mut sems = Vec::new();
        for s in snap::get_array(value, "sems")? {
            let mut waiters = Vec::new();
            for w in snap::get_array(s, "waiters")? {
                waiters.push((snap::get_u8(w, "task")?, snap::get_u8(w, "prio")?));
            }
            sems.push(HwSemaphore {
                count: snap::get_u32(s, "count")?,
                waiters,
            });
        }
        if cfg.hw_sync != (sems.len() == 8) {
            return Err(SnapError::new("unit: semaphore bank disagrees with cfg"));
        }
        let opt_id = |key: &str| -> Result<Option<u8>, SnapError> {
            match snap::field(value, key)? {
                Json::Int(-1) => Ok(None),
                j => j
                    .as_u64()
                    .and_then(|v| u8::try_from(v).ok())
                    .map(Some)
                    .ok_or_else(|| SnapError::new(format!("unit: bad task id in `{key}`"))),
            }
        };
        let restore_mode = match snap::get_str(value, "restore_mode")? {
            "none" => RestoreMode::None,
            "memory" => RestoreMode::Memory,
            "lockstep" => RestoreMode::Lockstep,
            "omitted" => RestoreMode::Omitted,
            other => {
                return Err(SnapError::new(format!(
                    "unit: unknown restore mode `{other}`"
                )))
            }
        };
        let bounded = |key: &str| -> Result<usize, SnapError> {
            let w = snap::get_usize(value, key)?;
            if w > CTX_WORDS {
                return Err(SnapError::new(format!(
                    "unit: `{key}` cursor {w} beyond context"
                )));
            }
            Ok(w)
        };
        let words = snap::words_from_json(snap::field(value, "preload_buf")?, CTX_WORDS)?;
        let mut preload_buf = [0u32; CTX_WORDS];
        preload_buf.copy_from_slice(&words);
        let st = snap::field(value, "stats")?;
        Ok(RtosUnit {
            cfg,
            sched,
            sems,
            current_id: snap::get_u8(value, "current_id")?,
            pending_next: opt_id("pending_next")?,
            in_isr: snap::get_bool(value, "in_isr")?,
            store_active: snap::get_bool(value, "store_active")?,
            store_draining: snap::get_bool(value, "store_draining")?,
            store_word: bounded("store_word")?,
            store_mask: snap::get_u32(value, "store_mask")?,
            restore_mode,
            restore_pending: snap::get_bool(value, "restore_pending")?,
            restore_active: snap::get_bool(value, "restore_active")?,
            restore_draining: snap::get_bool(value, "restore_draining")?,
            restore_word: bounded("restore_word")?,
            restore_id: snap::get_u8(value, "restore_id")?,
            preload_buf,
            preload_id: opt_id("preload_id")?,
            preload_word: bounded("preload_word")?,
            stats: UnitStats {
                interrupts: snap::get_u64(st, "interrupts")?,
                store_words: snap::get_u64(st, "store_words")?,
                load_words: snap::get_u64(st, "load_words")?,
                preload_words: snap::get_u64(st, "preload_words")?,
                preload_hits: snap::get_u64(st, "preload_hits")?,
                preload_misses: snap::get_u64(st, "preload_misses")?,
                omitted_loads: snap::get_u64(st, "omitted_loads")?,
                custom_instrs: snap::get_u64(st, "custom_instrs")?,
                store_stall_cycles: snap::get_u64(st, "store_stall_cycles")?,
                load_stall_cycles: snap::get_u64(st, "load_stall_cycles")?,
                sem_takes: snap::get_u64(st, "sem_takes")?,
                sem_blocks: snap::get_u64(st, "sem_blocks")?,
                sem_gives: snap::get_u64(st, "sem_gives")?,
            },
        })
    }
}

impl Coprocessor for RtosUnit {
    fn on_interrupt_entry(&mut self, state: &mut ArchState, cause: u32) {
        self.in_isr = true;
        self.stats.interrupts += 1;
        if let Some(s) = self.sched.as_mut() {
            if cause == csr::CAUSE_TIMER {
                s.tick();
            }
        }
        if self.cfg.store {
            // Switch to the ISR bank; the old bank is drained in the
            // background (§4.2).
            state.set_active_bank(Bank::Isr);
            let mut mask: u32 = (1 << CTX_MSTATUS_IDX) | (1 << CTX_MEPC_IDX);
            for w in 0..29 {
                if !self.cfg.dirty_bits || state.is_dirty(ctx_reg(w)) {
                    mask |= 1 << w;
                }
            }
            self.store_mask = mask;
            self.store_word = self.next_store_word(0);
            self.store_active = self.store_word < CTX_WORDS;
            self.store_draining = false;
        }
        self.restore_mode = RestoreMode::None;
        self.restore_pending = false;
        self.restore_active = false;
        self.restore_draining = false;
        // A tick may have woken a task and changed the ready head,
        // invalidating the speculative preload (§4.7).
        self.preload_refresh();
    }

    fn mret_stall(&self) -> bool {
        self.restore_busy()
    }

    fn on_mret(&mut self, state: &mut ArchState) {
        debug_assert!(!self.restore_busy(), "mret retired with restore in flight");
        if self.cfg.store && self.cfg.load {
            // Automatic bank switch on mret (§4.3).
            state.set_active_bank(Bank::App);
        }
        debug_assert_eq!(
            state.active_bank(),
            Bank::App,
            "mret retired while still on the ISR bank — missing SWITCH_RF?"
        );
        if let Some(next) = self.pending_next.take() {
            self.current_id = next;
        }
        if self.cfg.dirty_bits {
            // All dirty bits are cleared after ISR completion (§4.5): the
            // application bank now mirrors the restored context memory.
            state.clear_dirty();
        }
        self.in_isr = false;
        self.restore_mode = RestoreMode::None;
        self.preload_refresh();
    }

    fn custom_stall(&self, op: CustomOp) -> bool {
        match op {
            // SWITCH_RF is delayed while storing is in progress (§4.2),
            // including while issued stores drain from the ctxQueue (§5.3).
            CustomOp::SwitchRf => self.store_busy(),
            // The head is only trustworthy once iterative sorting settled.
            CustomOp::GetHwSched => self.sched.as_ref().is_some_and(|s| s.sort_busy() > 0),
            _ => false,
        }
    }

    fn exec_custom(&mut self, op: CustomOp, rs1: u32, rs2: u32, state: &mut ArchState) -> u32 {
        self.stats.custom_instrs += 1;
        match op {
            CustomOp::AddReady => {
                let ok = self.sched_mut().add_ready(rs1 as u8, rs2 as u8);
                assert!(
                    ok,
                    "hardware ready list overflow (task {rs1}); size the workload within list_len"
                );
                self.preload_refresh();
                0
            }
            CustomOp::AddDelay => {
                let id = self.current_id;
                let ok = self.sched_mut().add_delay(id, rs1 as u8, rs2);
                assert!(ok, "hardware delay list overflow (task {id})");
                self.preload_refresh();
                0
            }
            CustomOp::RmTask => {
                self.sched_mut().rm_task(rs1 as u8);
                self.preload_refresh();
                0
            }
            CustomOp::SetContextId => {
                let id = rs1 as u8;
                self.pending_next = Some(id);
                // Outside an ISR this only latches the id (boot-time
                // initialisation); a restore would clobber live registers.
                if self.cfg.load && self.in_isr {
                    self.begin_restore(id);
                }
                0
            }
            CustomOp::GetHwSched => {
                let id = self
                    .sched_mut()
                    .pop_rotate()
                    .expect("GET_HW_SCHED on an empty ready list — no idle task?");
                self.pending_next = Some(id);
                if self.cfg.load && self.in_isr {
                    self.begin_restore(id);
                }
                u32::from(id)
            }
            CustomOp::SwitchRf => {
                debug_assert!(
                    !self.store_active,
                    "SWITCH_RF executed while store FSM busy"
                );
                state.set_active_bank(Bank::App);
                0
            }
            CustomOp::SemTake => {
                assert!(self.cfg.hw_sync, "SEM_TAKE without the hw_sync extension");
                let id = (rs1 as usize) % self.sems.len();
                let prio = rs2 as u8;
                let current = self.current_id;
                let sem = &mut self.sems[id];
                if sem.count > 0 {
                    sem.count -= 1;
                    self.stats.sem_takes += 1;
                    1
                } else {
                    // Block in hardware: leave the ready list and join
                    // this semaphore's wait list.
                    sem.waiters.push((current, prio));
                    self.sched_mut().rm_task(current);
                    self.preload_refresh();
                    self.stats.sem_blocks += 1;
                    0
                }
            }
            CustomOp::SemGive => {
                assert!(self.cfg.hw_sync, "SEM_GIVE without the hw_sync extension");
                let id = (rs1 as usize) % self.sems.len();
                self.stats.sem_gives += 1;
                match self.sems[id].pop_waiter() {
                    Some((task, prio)) => {
                        // Direct hand-off: the waiter gets the token and
                        // becomes ready.
                        let ok = self.sched_mut().add_ready(task, prio);
                        assert!(ok, "ready list overflow waking semaphore waiter");
                        self.preload_refresh();
                        u32::from(prio) + 1
                    }
                    None => {
                        self.sems[id].count += 1;
                        0
                    }
                }
            }
        }
    }

    fn step(&mut self, state: &mut ArchState, bus: &mut dyn DataBus) {
        if let Some(s) = self.sched.as_mut() {
            s.step();
        }
        // Drain tracking: issued work completes when the bus reports no
        // pending ctxQueue entries (instantaneous on queue-less buses).
        if self.store_draining && bus.unit_pending() == 0 {
            self.store_draining = false;
        }
        if self.restore_draining && bus.unit_pending() == 0 {
            self.restore_draining = false;
        }
        self.maybe_start_restore();

        // Lockstep restore consumes no memory port: it writes the
        // register file directly from the preload buffer, trailing the
        // store FSM (§4.7).
        if self.restore_mode == RestoreMode::Lockstep && self.restore_word < CTX_WORDS {
            let store_pos = if self.store_active {
                self.store_word
            } else {
                CTX_WORDS
            };
            if self.restore_word < store_pos {
                Self::write_ctx_word(
                    state,
                    self.restore_word,
                    self.preload_buf[self.restore_word],
                );
                self.restore_word += 1;
            }
        }

        // One shared-port access per cycle, priority: store > restore >
        // preload.
        if self.store_active {
            let w = self.store_word;
            let value = Self::ctx_word_value(state, w);
            let addr = ctx_word_addr(u32::from(self.current_id), w);
            if bus.unit_access(addr, Some(value)).is_some() {
                self.stats.store_words += 1;
                self.store_word = self.next_store_word(w + 1);
                if self.store_word >= CTX_WORDS {
                    self.store_active = false;
                    self.store_draining = bus.unit_pending() > 0;
                    self.maybe_start_restore();
                }
            } else {
                self.stats.store_stall_cycles += 1;
            }
            return;
        }

        if self.restore_active {
            let w = self.restore_word;
            let addr = ctx_word_addr(u32::from(self.restore_id), w);
            if let Some(v) = bus.unit_access(addr, None) {
                Self::write_ctx_word(state, w, v);
                self.stats.load_words += 1;
                self.restore_word += 1;
                if self.restore_word >= CTX_WORDS {
                    self.restore_active = false;
                    self.restore_draining = bus.unit_pending() > 0;
                }
            } else {
                self.stats.load_stall_cycles += 1;
            }
            return;
        }

        // Speculative preloading only runs outside ISRs and never
        // interferes with computation (lowest priority, §4.7).
        if self.cfg.preload && !self.in_isr && self.preload_word < CTX_WORDS {
            if let Some(id) = self.preload_id {
                let addr = ctx_word_addr(u32::from(id), self.preload_word);
                if let Some(v) = bus.unit_access(addr, None) {
                    self.preload_buf[self.preload_word] = v;
                    self.preload_word += 1;
                    self.stats.preload_words += 1;
                }
            }
        }
    }

    fn is_idle(&self) -> bool {
        // Every branch of `step` must be a no-op for the batched run to
        // skip the per-cycle polling: no store/restore FSM activity, no
        // scheduler sort in flight, and no preload wanting port cycles.
        let preload_wants_port = self.cfg.preload
            && !self.in_isr
            && self.preload_id.is_some()
            && self.preload_word < CTX_WORDS;
        !self.store_busy()
            && !self.restore_busy()
            && !self.store_draining
            && !self.restore_draining
            && self.sched.as_ref().is_none_or(|s| s.sort_busy() == 0)
            && !preload_wants_port
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Preset;
    use rvsim_cores::engine::BusResponse;
    use rvsim_mem::{AccessSize, Mem};

    /// A bus where the unit is granted every cycle (fully idle core).
    struct IdleBus {
        mem: Mem,
    }

    impl DataBus for IdleBus {
        fn core_access(&mut self, addr: u32, size: AccessSize, write: Option<u32>) -> BusResponse {
            match write {
                Some(v) => {
                    self.mem.write(addr, size, v);
                    BusResponse {
                        data: 0,
                        extra_latency: 0,
                    }
                }
                None => BusResponse {
                    data: self.mem.read(addr, size),
                    extra_latency: 1,
                },
            }
        }

        fn unit_access(&mut self, addr: u32, write: Option<u32>) -> Option<u32> {
            Some(match write {
                Some(v) => {
                    self.mem.write_word(addr, v);
                    0
                }
                None => self.mem.read_word(addr),
            })
        }
    }

    fn idle_bus() -> IdleBus {
        IdleBus {
            mem: Mem::new(crate::layout::DMEM_BASE, crate::layout::DMEM_SIZE),
        }
    }

    fn unit(preset: Preset) -> RtosUnit {
        RtosUnit::new(RtosUnitConfig::from_preset(preset).expect("preset with unit"))
    }

    fn fill_regs(state: &mut ArchState) {
        for (i, r) in rvsim_isa::Reg::CONTEXT_REGS.iter().enumerate() {
            state.write_reg(*r, 0x100 + i as u32);
        }
        state.csrs.mstatus = 0x88;
        state.csrs.mepc = 0x4242;
    }

    #[test]
    fn store_fsm_drains_full_context() {
        let mut u = unit(Preset::S);
        let mut state = ArchState::new(0);
        let mut bus = idle_bus();
        fill_regs(&mut state);
        u.on_interrupt_entry(&mut state, csr::CAUSE_TIMER);
        assert_eq!(state.active_bank(), Bank::Isr);
        assert!(u.store_busy());
        for _ in 0..CTX_WORDS {
            u.step(&mut state, &mut bus);
        }
        assert!(!u.store_busy());
        assert_eq!(u.stats.store_words, CTX_WORDS as u64);
        // Word 0 is ra, word 30 is mepc, for task id 0.
        assert_eq!(bus.mem.read_word(ctx_word_addr(0, 0)), 0x100);
        assert_eq!(bus.mem.read_word(ctx_word_addr(0, CTX_MEPC_IDX)), 0x4242);
        assert_eq!(bus.mem.read_word(ctx_word_addr(0, CTX_MSTATUS_IDX)), 0x88);
    }

    #[test]
    fn switch_rf_stalls_until_store_done() {
        let mut u = unit(Preset::S);
        let mut state = ArchState::new(0);
        let mut bus = idle_bus();
        u.on_interrupt_entry(&mut state, csr::CAUSE_TIMER);
        assert!(u.custom_stall(CustomOp::SwitchRf));
        for _ in 0..CTX_WORDS {
            u.step(&mut state, &mut bus);
        }
        assert!(!u.custom_stall(CustomOp::SwitchRf));
        u.exec_custom(CustomOp::SwitchRf, 0, 0, &mut state);
        assert_eq!(state.active_bank(), Bank::App);
    }

    #[test]
    fn restore_waits_for_store_and_loads_context() {
        let mut u = unit(Preset::Sl);
        let mut state = ArchState::new(0);
        let mut bus = idle_bus();
        // Pre-place task 2's context in memory.
        for w in 0..CTX_WORDS {
            bus.mem.write_word(ctx_word_addr(2, w), 0x9000 + w as u32);
        }
        u.on_interrupt_entry(&mut state, csr::CAUSE_TIMER);
        u.exec_custom(CustomOp::SetContextId, 2, 0, &mut state);
        assert!(u.mret_stall());
        // Store (31) + restore (31) cycles on a fully idle port.
        for _ in 0..(2 * CTX_WORDS) {
            u.step(&mut state, &mut bus);
        }
        assert!(!u.mret_stall());
        u.on_mret(&mut state);
        assert_eq!(state.active_bank(), Bank::App);
        assert_eq!(state.read_reg(rvsim_isa::Reg::Ra), 0x9000);
        assert_eq!(state.csrs.mepc, 0x9000 + CTX_MEPC_IDX as u32);
        assert_eq!(u.current_task(), 2);
    }

    #[test]
    fn dirty_bits_reduce_store_traffic() {
        let mut u = unit(Preset::Sdlo);
        let mut state = ArchState::new(0);
        let mut bus = idle_bus();
        // Only two registers dirtied.
        state.write_reg(rvsim_isa::Reg::A0, 1);
        state.write_reg(rvsim_isa::Reg::Sp, 2);
        u.on_interrupt_entry(&mut state, csr::CAUSE_TIMER);
        for _ in 0..CTX_WORDS {
            u.step(&mut state, &mut bus);
        }
        // 2 dirty registers + mstatus + mepc.
        assert_eq!(u.stats.store_words, 4);
    }

    #[test]
    fn load_omission_skips_same_task_restore() {
        let mut u = unit(Preset::Sdlo);
        let mut state = ArchState::new(0);
        // current task is 0; schedule 0 again.
        u.on_interrupt_entry(&mut state, csr::CAUSE_TIMER);
        u.exec_custom(CustomOp::SetContextId, 0, 0, &mut state);
        assert_eq!(u.stats.omitted_loads, 1);
        let mut bus = idle_bus();
        for _ in 0..CTX_WORDS {
            u.step(&mut state, &mut bus);
        }
        assert!(!u.mret_stall());
        assert_eq!(u.stats.load_words, 0);
    }

    #[test]
    fn hw_sched_rotates_and_updates_current() {
        let mut u = unit(Preset::T);
        let mut state = ArchState::new(0);
        u.exec_custom(CustomOp::AddReady, 1, 5, &mut state);
        u.exec_custom(CustomOp::AddReady, 2, 5, &mut state);
        let id = u.exec_custom(CustomOp::GetHwSched, 0, 0, &mut state);
        assert_eq!(id, 1);
        u.on_mret(&mut state);
        assert_eq!(u.current_task(), 1);
        let id2 = u.exec_custom(CustomOp::GetHwSched, 0, 0, &mut state);
        assert_eq!(id2, 2);
    }

    #[test]
    fn get_hw_sched_stalls_while_sorting() {
        let mut u = unit(Preset::T);
        let mut state = ArchState::new(0);
        u.exec_custom(CustomOp::AddReady, 1, 1, &mut state);
        u.exec_custom(CustomOp::AddReady, 2, 9, &mut state);
        assert!(u.custom_stall(CustomOp::GetHwSched));
        let mut bus = idle_bus();
        for _ in 0..8 {
            u.step(&mut state, &mut bus);
        }
        assert!(!u.custom_stall(CustomOp::GetHwSched));
    }

    #[test]
    fn timer_tick_wakes_delayed_tasks() {
        let mut u = unit(Preset::T);
        let mut state = ArchState::new(0);
        u.exec_custom(CustomOp::AddReady, 1, 1, &mut state);
        // current task (0) delays itself 2 ticks.
        u.exec_custom(CustomOp::AddDelay, 7, 2, &mut state);
        u.on_interrupt_entry(&mut state, csr::CAUSE_TIMER); // tick 1
        assert_eq!(u.scheduler().unwrap().delay_len(), 1);
        u.on_interrupt_entry(&mut state, csr::CAUSE_TIMER); // tick 2 -> wake
        assert_eq!(u.scheduler().unwrap().delay_len(), 0);
        // Task 0 (prio 7) must now beat task 1 (prio 1).
        let id = u.exec_custom(CustomOp::GetHwSched, 0, 0, &mut state);
        assert_eq!(id, 0);
    }

    #[test]
    fn preload_hit_restores_in_lockstep() {
        let mut u = unit(Preset::Split);
        let mut state = ArchState::new(0);
        let mut bus = idle_bus();
        // Two tasks: current 0, ready head 1 with a stored context.
        for w in 0..CTX_WORDS {
            bus.mem.write_word(ctx_word_addr(1, w), 0x7000 + w as u32);
        }
        u.exec_custom(CustomOp::AddReady, 1, 5, &mut state);
        // Let the preloader fill its buffer (outside the ISR).
        for _ in 0..(CTX_WORDS + u.scheduler().unwrap().capacity()) {
            u.step(&mut state, &mut bus);
        }
        assert_eq!(u.stats.preload_words, CTX_WORDS as u64);

        u.on_interrupt_entry(&mut state, csr::CAUSE_SOFTWARE);
        let id = u.exec_custom(CustomOp::GetHwSched, 0, 0, &mut state);
        assert_eq!(id, 1);
        assert_eq!(u.stats.preload_hits, 1);
        // Lockstep: finishing the store also finishes the restore shortly
        // after; no load words from memory.
        let mut cycles = 0;
        while u.mret_stall() {
            u.step(&mut state, &mut bus);
            cycles += 1;
            assert!(cycles < 3 * CTX_WORDS, "lockstep restore did not converge");
        }
        assert_eq!(u.stats.load_words, 0);
        u.on_mret(&mut state);
        assert_eq!(state.read_reg(rvsim_isa::Reg::Ra), 0x7000);
        assert!(
            cycles <= CTX_WORDS + 2,
            "lockstep should track the store: {cycles}"
        );
    }

    #[test]
    fn preload_miss_falls_back_to_memory_restore() {
        let mut u = unit(Preset::Split);
        let mut state = ArchState::new(0);
        let mut bus = idle_bus();
        for w in 0..CTX_WORDS {
            bus.mem.write_word(ctx_word_addr(1, w), 0xAA00 + w as u32);
            bus.mem.write_word(ctx_word_addr(2, w), 0xBB00 + w as u32);
        }
        u.exec_custom(CustomOp::AddReady, 1, 5, &mut state);
        for _ in 0..(2 * CTX_WORDS) {
            u.step(&mut state, &mut bus);
        }
        // A higher-priority task becomes ready right at the interrupt —
        // the preloaded head (1) is no longer the winner.
        u.on_interrupt_entry(&mut state, csr::CAUSE_SOFTWARE);
        u.exec_custom(CustomOp::AddReady, 2, 9, &mut state);
        while u.custom_stall(CustomOp::GetHwSched) {
            u.step(&mut state, &mut bus);
        }
        let id = u.exec_custom(CustomOp::GetHwSched, 0, 0, &mut state);
        assert_eq!(id, 2);
        assert_eq!(u.stats.preload_misses, 1);
        while u.mret_stall() {
            u.step(&mut state, &mut bus);
        }
        assert!(u.stats.load_words >= CTX_WORDS as u64);
        u.on_mret(&mut state);
        assert_eq!(state.read_reg(rvsim_isa::Reg::Ra), 0xBB00);
    }

    #[test]
    #[should_panic(expected = "empty ready list")]
    fn get_hw_sched_on_empty_list_panics() {
        let mut u = unit(Preset::T);
        let mut state = ArchState::new(0);
        u.exec_custom(CustomOp::GetHwSched, 0, 0, &mut state);
    }
}
