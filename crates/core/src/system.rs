//! System composition: core + RTOSUnit + memory + interrupt sources, plus
//! the latency instrumentation of §6.1.

use crate::config::{Preset, RtosUnitConfig};
use crate::cv32rt::Cv32rtUnit;
use crate::events::TraceEvent;
use crate::layout::{IMEM_BASE, IMEM_SIZE};
use crate::platform::Platform;
use crate::stats::{LatencyStats, SwitchRecord};
use crate::unit::{RtosUnit, UnitStats};
use rvsim_cores::{
    make_engine, stop_events, Coprocessor, CoreEngine, CoreEvent, CoreKind, DataBus, FaultKind,
    FaultPlan, NullCoprocessor,
};
use rvsim_isa::{csr, Program};
use rvsim_snapshot::{self as snap, Json, SnapError};

/// Default timer-tick period in cycles.
pub const DEFAULT_TICK_PERIOD: u32 = 2000;

/// Why [`System::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// The guest halted (HALT MMIO write or `ebreak`).
    Halted,
    /// The cycle budget was exhausted first.
    CyclesExhausted,
}

// The Rtos variant dominates runtime use; boxing would only add
// indirection to the hot per-cycle dispatch.
#[allow(clippy::large_enum_variant)]
enum UnitBox {
    None(NullCoprocessor),
    Rtos(RtosUnit),
    Cv32rt(Cv32rtUnit),
}

impl UnitBox {
    fn as_coproc(&mut self) -> &mut dyn Coprocessor {
        match self {
            UnitBox::None(u) => u,
            UnitBox::Rtos(u) => u,
            UnitBox::Cv32rt(u) => u,
        }
    }
}

/// A complete simulated system for one `(core, configuration)` pair.
///
/// ```
/// use rtosunit::{System, Preset};
/// use rvsim_cores::CoreKind;
/// use rvsim_isa::{Asm, Reg};
///
/// # fn main() -> Result<(), rvsim_isa::AsmError> {
/// let mut a = Asm::new(rtosunit::layout::IMEM_BASE);
/// a.li(Reg::A0, 7);
/// a.ebreak();
/// let mut sys = System::new(CoreKind::Cv32e40p, Preset::Vanilla);
/// sys.load_program(&a.finish()?);
/// sys.run(1_000);
/// assert_eq!(sys.core.state.read_reg(Reg::A0), 7);
/// # Ok(())
/// # }
/// ```
pub struct System {
    /// The core engine.
    pub core: CoreEngine,
    /// Memory, caches, MMIO and arbitration.
    pub platform: Platform,
    unit: UnitBox,
    kind: CoreKind,
    preset: Preset,
    records: Vec<SwitchRecord>,
    prev_mask: u32,
    pending_triggers: [Option<u64>; 3],
    open_episode: Option<(u64, u64, u32)>,
    ext_schedule: Vec<u64>,
    /// Fault-injection schedule; `None` (the default) costs nothing.
    fault_plan: Option<FaultPlan>,
}

fn cause_slot(cause: u32) -> usize {
    match cause {
        csr::CAUSE_TIMER => 0,
        csr::CAUSE_SOFTWARE => 1,
        csr::CAUSE_EXTERNAL => 2,
        _ => panic!("unknown interrupt cause {cause:#x}"),
    }
}

impl System {
    /// Builds a system for `kind` running the given `preset`, with the
    /// default memory map and tick period.
    pub fn new(kind: CoreKind, preset: Preset) -> System {
        let mut platform = Platform::new(kind, DEFAULT_TICK_PERIOD);
        let unit = match preset {
            Preset::Vanilla => UnitBox::None(NullCoprocessor),
            Preset::Cv32rt => UnitBox::Cv32rt(Cv32rtUnit::new(kind)),
            p => UnitBox::Rtos(RtosUnit::new(
                RtosUnitConfig::from_preset(p).expect("preset with unit config"),
            )),
        };
        // The auto-reset timer is part of the (T) modification (§4.4).
        platform.mmio.auto_timer_reset = preset.has_sched();
        System {
            core: make_engine(kind, IMEM_BASE, IMEM_SIZE),
            platform,
            unit,
            kind,
            preset,
            records: Vec::new(),
            prev_mask: 0,
            pending_triggers: [None; 3],
            open_episode: None,
            ext_schedule: Vec::new(),
            fault_plan: None,
        }
    }

    /// The core kind this system was built for.
    pub fn kind(&self) -> CoreKind {
        self.kind
    }

    /// The configuration preset in use.
    pub fn preset(&self) -> Preset {
        self.preset
    }

    /// Loads a guest program into instruction memory.
    pub fn load_program(&mut self, program: &Program) {
        self.core.load_program(program);
    }

    /// Rebuilds the attached RTOSUnit with a different hardware list
    /// capacity (only before the guest boots; used by the task-count
    /// scaling studies).
    ///
    /// # Panics
    ///
    /// Panics if this system has no RTOSUnit or the length is invalid.
    pub fn set_unit_list_len(&mut self, list_len: usize) {
        match &mut self.unit {
            UnitBox::Rtos(u) => {
                let mut cfg = *u.config();
                cfg.list_len = list_len;
                *u = RtosUnit::new(cfg);
            }
            _ => panic!("system has no RTOSUnit to resize"),
        }
    }

    /// Overrides the timer-tick period (cycles).
    pub fn set_timer_period(&mut self, period: u32) {
        self.platform.mmio.timer_period = period;
        self.platform.mmio.mtimecmp = self.platform.mmio.mtime.wrapping_add(period);
    }

    /// Schedules the external interrupt line to rise at an absolute cycle.
    pub fn schedule_external_irq(&mut self, cycle: u64) {
        self.ext_schedule.push(cycle);
        self.ext_schedule.sort_unstable_by(|a, b| b.cmp(a)); // pop from the back
    }

    /// Attaches a deterministic fault-injection schedule. The quiescence
    /// horizon is bounded one cycle short of every due fault, so batched
    /// and stepwise execution stay bit-identical with a plan attached.
    pub fn attach_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// The attached fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Number of faults injected so far.
    pub fn faults_applied(&self) -> usize {
        self.fault_plan.as_ref().map_or(0, |p| p.applied())
    }

    /// Applies one due fault. Register flips land on the *active* bank
    /// without marking the register dirty (a silent upset); memory flips
    /// go straight to the DMEM backing store (the cache model is
    /// timing-only, so stored bits live there).
    fn apply_fault(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::RegFlip { reg, bit } => {
                let bank = self.core.state.active_bank();
                let v = self.core.state.bank_read(bank, reg);
                self.core.state.bank_write_clean(bank, reg, v ^ (1 << bit));
            }
            FaultKind::CsrFlip { csr, bit } => {
                let v = self.core.state.csrs.read(csr);
                self.core.state.csrs.write(csr, v ^ (1 << bit));
            }
            FaultKind::MemFlip { addr, bit } => {
                let addr = addr & !0x3;
                if self.platform.dmem.contains(addr) {
                    let w = self.platform.dmem.read_word(addr);
                    self.platform.dmem.write_word(addr, w ^ (1 << bit));
                }
            }
            FaultKind::CacheUpset { addr } => self.platform.invalidate_line(addr),
            FaultKind::BusError => self.platform.arm_bus_error(),
            FaultKind::SpuriousIrq => self.platform.raise_external_irq(),
            FaultKind::DropIrq => {
                self.ext_schedule.pop();
            }
            FaultKind::DelayIrq { delay } => {
                if let Some(next) = self.ext_schedule.pop() {
                    self.schedule_external_irq(next + u64::from(delay));
                }
            }
            FaultKind::SpuriousIpi => self.platform.mmio.msip = true,
            FaultKind::ImemFlip { addr, bit } => {
                // Through the coherent IMEM write path: the cached decode
                // and any live block translation covering the word die
                // with the old bits.
                if let Some(word) = self.core.imem_word(addr) {
                    self.core.write_imem_word(addr, word ^ (1 << bit));
                }
            }
        }
        self.platform
            .record(TraceEvent::FaultInjected { code: kind.code() });
    }

    /// Attaches this system to an SMP composition as `hart`: the guest
    /// reads the id via `mhartid`, DMEM traffic arbitrates on the shared
    /// bus, and queued IPIs raise `mip.MSIP`.
    pub fn attach_smp(
        &mut self,
        hart: usize,
        shared: std::rc::Rc<std::cell::RefCell<crate::smp::SmpShared>>,
    ) {
        self.core.state.csrs.mhartid = hart as u32;
        self.platform.attach_smp(hart, shared);
    }

    /// The RTOSUnit attached to this system, if any.
    pub fn rtos_unit(&self) -> Option<&RtosUnit> {
        match &self.unit {
            UnitBox::Rtos(u) => Some(u),
            _ => None,
        }
    }

    /// Activity counters of the RTOSUnit, if one is attached.
    pub fn unit_stats(&self) -> Option<UnitStats> {
        self.rtos_unit().map(|u| u.stats)
    }

    /// The CV32RT comparison unit, if attached.
    pub fn cv32rt_unit(&self) -> Option<&Cv32rtUnit> {
        match &self.unit {
            UnitBox::Cv32rt(u) => Some(u),
            _ => None,
        }
    }

    /// All completed switch episodes so far.
    pub fn records(&self) -> &[SwitchRecord] {
        &self.records
    }

    /// Removes and returns the recorded episodes.
    pub fn take_records(&mut self) -> Vec<SwitchRecord> {
        std::mem::take(&mut self.records)
    }

    /// Aggregate latency statistics over all recorded episodes.
    pub fn latency_stats(&self) -> Option<LatencyStats> {
        LatencyStats::from_records(&self.records)
    }

    /// The `mcause` of the open interrupt episode — the ISR was entered
    /// but its `mret` has not retired yet — or `None` between episodes.
    /// Checkers use this to stop a run at a consistent point instead of
    /// mid-ISR.
    pub fn isr_cause(&self) -> Option<u32> {
        self.open_episode.map(|(_, _, cause)| cause)
    }

    /// Whether the guest has halted.
    pub fn halted(&self) -> bool {
        self.core.halted() || self.platform.mmio.halted
    }

    /// Enables typed event tracing with a ring of `capacity` events (see
    /// [`Platform::enable_tracing`]). Off by default; retrieve the trace
    /// through `self.platform.trace()` / `take_trace()`.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.platform.enable_tracing(capacity);
    }

    /// Turns the guest PC profiler on or off (see
    /// [`CoreEngine::set_profiling`]). Off by default; profiling never
    /// changes timing. Retrieve the result through
    /// [`take_profile`](Self::take_profile).
    pub fn set_profiling(&mut self, on: bool) {
        self.core.set_profiling(on);
    }

    /// Takes the accumulated cycle-per-PC profile, turning profiling off.
    pub fn take_profile(&mut self) -> Option<rvsim_cores::PcProfile> {
        self.core.take_profile()
    }

    /// Attaches or detaches the core's basic-block translation cache (see
    /// [`CoreEngine::set_block_cache`]). Off by default; simulated timing,
    /// state, counters and artifacts are bit-identical either way — the
    /// cache only accelerates batched host execution.
    pub fn set_block_cache(&mut self, on: bool) {
        self.core.set_block_cache(on);
    }

    /// Block-translation statistics for blocks entered in `[start, end]`
    /// (see [`CoreEngine::block_stats_in`]).
    pub fn block_stats_in(&self, start: u32, end: u32) -> rvsim_cores::BlockStats {
        self.core.block_stats_in(start, end)
    }

    /// Advances the system by one cycle.
    pub fn step(&mut self) {
        self.platform.begin_cycle();
        let now = self.platform.cycle();

        // Faults strike before interrupt sampling, so a spurious /
        // dropped / delayed IRQ due this cycle shapes this cycle's mask.
        if self.fault_plan.is_some() {
            while let Some(ev) = self.fault_plan.as_mut().and_then(|p| p.take_due(now)) {
                self.apply_fault(ev.kind);
            }
        }

        while self.ext_schedule.last().is_some_and(|&c| c <= now) {
            self.ext_schedule.pop();
            self.platform.raise_external_irq();
        }

        // Refresh mip and record rising edges as trigger timestamps. A
        // queued IPI asserts MSIP alongside the local doorbell latch.
        let mut mask = self.platform.mmio.pending_mask();
        if self.platform.ipi_pending() {
            mask |= csr::MIP_MSIP;
        }
        let rising = mask & !self.prev_mask;
        for (bit, cause) in [
            (csr::MIP_MTIP, csr::CAUSE_TIMER),
            (csr::MIP_MSIP, csr::CAUSE_SOFTWARE),
            (csr::MIP_MEIP, csr::CAUSE_EXTERNAL),
        ] {
            if rising & bit != 0 {
                self.pending_triggers[cause_slot(cause)] = Some(now);
                self.platform.record(TraceEvent::IrqRaised { cause });
            }
        }
        self.prev_mask = mask;
        self.core.state.csrs.mip = mask;

        let out = self.core.step(&mut self.platform, self.unit.as_coproc());
        match out.event {
            Some(CoreEvent::InterruptEntered { cause }) => {
                let trigger = self.pending_triggers[cause_slot(cause)]
                    .take()
                    .unwrap_or(now);
                self.open_episode = Some((trigger, now, cause));
                self.platform.record(TraceEvent::IsrEntry { cause });
                if cause == csr::CAUSE_TIMER && self.platform.mmio.auto_timer_reset {
                    self.platform.auto_reset_timer();
                }
            }
            Some(CoreEvent::MretRetired) => {
                self.platform.record(TraceEvent::MretRetired);
                if let Some((trigger, entry, cause)) = self.open_episode.take() {
                    self.records.push(SwitchRecord {
                        trigger_cycle: trigger,
                        entry_cycle: entry,
                        mret_cycle: now,
                        cause,
                    });
                }
            }
            _ => {}
        }

        self.unit
            .as_coproc()
            .step(&mut self.core.state, &mut self.platform);
    }

    /// How many upcoming cycles can run batched, and in which mode.
    ///
    /// `(n, false)` with `n > 0`: the stretch is fully *quiescent* — the
    /// attached unit has no background work, the interrupt lines already
    /// match what the core sees, and no timer fire, scheduled external
    /// IRQ or planned fault lands inside the window. Over such a stretch
    /// the per-cycle `System` bookkeeping is provably a no-op, so the
    /// engine may run batched. Guest actions that could break the
    /// assumption mid-batch (MMIO writes to the interrupt devices, custom
    /// unit instructions) stop the batch via the bus attention latch and
    /// the engine's custom-instruction stop.
    ///
    /// `(n, true)`: the lines are quiescent but the unit has background
    /// work (context store/restore, preload, a scheduler sort) — the
    /// engine may still run batched provided it steps the coprocessor
    /// every cycle ([`CoreEngine::run_costep`](rvsim_cores::CoreEngine)).
    ///
    /// `(0, _)`: something needs the full per-cycle path this cycle.
    fn batch_budget(&mut self, now: u64, end: u64) -> (u64, bool) {
        // A queued IPI needs the per-cycle path to assert MSIP.
        if self.platform.ipi_pending() {
            return (0, false);
        }
        let mask = self.platform.mmio.pending_mask();
        if mask != self.prev_mask || self.core.state.csrs.mip != mask {
            return (0, false);
        }
        let mut horizon = end;
        if let Some(delta) = self.platform.mmio.cycles_until_timer_fire() {
            // Stop one cycle short of the rising edge so the per-cycle
            // path records the trigger timestamp exactly at the edge.
            horizon = horizon.min((now + delta).saturating_sub(1));
        }
        if let Some(&next) = self.ext_schedule.last() {
            horizon = horizon.min(next.saturating_sub(1));
        }
        // Stop short of the next planned fault: injection needs the
        // per-cycle path, keeping batched == stepwise with a plan.
        if let Some(next) = self.fault_plan.as_ref().and_then(|p| p.next_cycle()) {
            horizon = horizon.min(next.saturating_sub(1));
        }
        (
            horizon.saturating_sub(now),
            !self.unit.as_coproc().is_idle(),
        )
    }

    /// Runs until the guest halts or `max_cycles` elapse.
    ///
    /// Quiescent stretches execute through the engine's batched
    /// [`run_until`](CoreEngine::run_until) — cycle-exact with
    /// [`run_stepwise`](Self::run_stepwise) (the differential tests assert
    /// identical records and counters) but without one dynamic dispatch
    /// per cycle.
    pub fn run(&mut self, max_cycles: u64) -> RunExit {
        let end = self.platform.cycle() + max_cycles;
        loop {
            if self.halted() {
                return RunExit::Halted;
            }
            let now = self.platform.cycle();
            if now >= end {
                return RunExit::CyclesExhausted;
            }

            let (budget, costep) = self.batch_budget(now, end);
            if budget == 0 {
                self.step();
                continue;
            }

            let exit = if costep {
                // Unit-active batch: the engine co-steps the coprocessor
                // every consumed cycle, including the exit cycle.
                self.core.run_costep(
                    &mut self.platform,
                    self.unit.as_coproc(),
                    stop_events::ALL,
                    budget,
                )
            } else {
                self.core.run_until(
                    &mut self.platform,
                    self.unit.as_coproc(),
                    stop_events::ALL,
                    budget,
                )
            };
            let now = self.platform.cycle();
            match exit.event {
                Some(CoreEvent::InterruptEntered { cause }) => {
                    let trigger = self.pending_triggers[cause_slot(cause)]
                        .take()
                        .unwrap_or(now);
                    self.open_episode = Some((trigger, now, cause));
                    self.platform.record(TraceEvent::IsrEntry { cause });
                    if cause == csr::CAUSE_TIMER && self.platform.mmio.auto_timer_reset {
                        self.platform.auto_reset_timer();
                    }
                }
                Some(CoreEvent::MretRetired) => {
                    self.platform.record(TraceEvent::MretRetired);
                    if let Some((trigger, entry, cause)) = self.open_episode.take() {
                        self.records.push(SwitchRecord {
                            trigger_cycle: trigger,
                            entry_cycle: entry,
                            mret_cycle: now,
                            cause,
                        });
                    }
                }
                _ => {}
            }
            // The exit cycle's unit step: a no-op unless the final cycle
            // entered an interrupt or executed a custom instruction —
            // exactly the cycles where the per-cycle path steps a
            // newly-active unit. A co-stepped batch already took it.
            if !costep && exit.cycles > 0 {
                self.unit
                    .as_coproc()
                    .step(&mut self.core.state, &mut self.platform);
            }
        }
    }

    /// Serializes the complete system — core, platform, attached unit,
    /// interrupt bookkeeping, episode records and fault-plan cursor —
    /// into a sealed, self-describing snapshot document.
    ///
    /// The contract: a system rebuilt with
    /// [`from_snapshot`](Self::from_snapshot) continues cycle-for-cycle,
    /// counter-for-counter and trace-for-trace identically to one that
    /// never stopped.
    pub fn snapshot(&self) -> Json {
        snap::seal(self.state_snap())
    }

    /// The unsealed state payload of [`snapshot`](Self::snapshot).
    pub fn state_snap(&self) -> Json {
        let records: Vec<Json> = self
            .records
            .iter()
            .map(|r| {
                Json::object()
                    .with("trigger", r.trigger_cycle)
                    .with("entry", r.entry_cycle)
                    .with("mret", r.mret_cycle)
                    .with("cause", r.cause)
            })
            .collect();
        let triggers: Vec<Json> = self
            .pending_triggers
            .iter()
            .map(|t| match t {
                None => Json::Int(-1),
                Some(c) => Json::UInt(*c),
            })
            .collect();
        let open = match self.open_episode {
            None => Json::Null,
            Some((trigger, entry, cause)) => Json::object()
                .with("trigger", trigger)
                .with("entry", entry)
                .with("cause", cause),
        };
        let unit = match &self.unit {
            UnitBox::None(_) => Json::object().with("model", "none"),
            UnitBox::Rtos(u) => Json::object()
                .with("model", "rtos")
                .with("state", u.to_snap()),
            UnitBox::Cv32rt(u) => Json::object()
                .with("model", "cv32rt")
                .with("state", u.to_snap()),
        };
        Json::object()
            .with("kind", self.kind.name())
            .with("preset", self.preset.tag())
            .with("core", self.core.to_snap())
            .with("platform", self.platform.to_snap())
            .with("unit", unit)
            .with("records", records)
            .with("prev_mask", self.prev_mask)
            .with("pending_triggers", triggers)
            .with("open_episode", open)
            .with("ext_len", self.ext_schedule.len())
            .with("ext_schedule", snap::longs_to_json(&self.ext_schedule))
            .with(
                "fault_plan",
                self.fault_plan.as_ref().map_or(Json::Null, |p| p.to_snap()),
            )
    }

    /// Rebuilds a system from a sealed snapshot document (the output of
    /// [`snapshot`](Self::snapshot), parsed). The document is fully
    /// self-describing: core kind and preset are read from the payload.
    ///
    /// # Errors
    ///
    /// Fails on a broken envelope, unknown kind/preset tags, or any
    /// malformed state field.
    pub fn from_snapshot(doc: &Json) -> Result<System, SnapError> {
        let state = snap::open(&doc.render())?;
        Self::from_state_snap(&state)
    }

    /// Rebuilds a system from an **unsealed** state payload.
    ///
    /// # Errors
    ///
    /// Fails on unknown kind/preset tags or malformed state fields.
    pub fn from_state_snap(state: &Json) -> Result<System, SnapError> {
        let kind_name = snap::get_str(state, "kind")?;
        let kind = CoreKind::from_name(kind_name)
            .ok_or_else(|| SnapError::new(format!("system: unknown core kind `{kind_name}`")))?;
        let preset_tag = snap::get_str(state, "preset")?;
        let preset = Preset::from_tag(preset_tag)
            .ok_or_else(|| SnapError::new(format!("system: unknown preset `{preset_tag}`")))?;
        let mut sys = System::new(kind, preset);
        sys.restore_snap(state)?;
        Ok(sys)
    }

    /// Restores this system in place from a state payload. The snapshot
    /// must describe the same core kind and preset this system was built
    /// for. The SMP attachment (if any) is left untouched — per-hart
    /// shared-bus state is restored by the composition.
    ///
    /// # Errors
    ///
    /// Fails on kind/preset mismatch or malformed state; the system is
    /// left unchanged on error.
    pub fn restore_snap(&mut self, state: &Json) -> Result<(), SnapError> {
        let kind_name = snap::get_str(state, "kind")?;
        if kind_name != self.kind.name() {
            return Err(SnapError::new(format!(
                "system: snapshot is for core `{kind_name}`, this system is `{}`",
                self.kind.name()
            )));
        }
        let preset_tag = snap::get_str(state, "preset")?;
        if preset_tag != self.preset.tag() {
            return Err(SnapError::new(format!(
                "system: snapshot is for preset `{preset_tag}`, this system is `{}`",
                self.preset.tag()
            )));
        }

        let unit_doc = snap::field(state, "unit")?;
        let unit = match snap::get_str(unit_doc, "model")? {
            "none" => UnitBox::None(NullCoprocessor),
            "rtos" => UnitBox::Rtos(RtosUnit::from_snap(snap::field(unit_doc, "state")?)?),
            "cv32rt" => UnitBox::Cv32rt(Cv32rtUnit::from_snap(snap::field(unit_doc, "state")?)?),
            m => return Err(SnapError::new(format!("system: unknown unit model `{m}`"))),
        };
        match (&unit, self.preset) {
            (UnitBox::None(_), Preset::Vanilla) | (UnitBox::Cv32rt(_), Preset::Cv32rt) => {}
            (UnitBox::Rtos(_), p) if RtosUnitConfig::from_preset(p).is_some() => {}
            _ => {
                return Err(SnapError::new(
                    "system: unit model disagrees with the preset",
                ))
            }
        }

        let mut records = Vec::new();
        for r in snap::get_array(state, "records")? {
            records.push(SwitchRecord {
                trigger_cycle: snap::get_u64(r, "trigger")?,
                entry_cycle: snap::get_u64(r, "entry")?,
                mret_cycle: snap::get_u64(r, "mret")?,
                cause: snap::get_u32(r, "cause")?,
            });
        }
        let triggers_doc = snap::get_array(state, "pending_triggers")?;
        if triggers_doc.len() != 3 {
            return Err(SnapError::new("system: pending_triggers must have 3 slots"));
        }
        let mut pending_triggers = [None; 3];
        for (slot, t) in pending_triggers.iter_mut().zip(triggers_doc) {
            *slot = match t {
                Json::Int(-1) => None,
                v => Some(
                    v.as_u64()
                        .ok_or_else(|| SnapError::new("system: malformed pending-trigger entry"))?,
                ),
            };
        }
        let open_episode = match snap::field(state, "open_episode")? {
            Json::Null => None,
            v => Some((
                snap::get_u64(v, "trigger")?,
                snap::get_u64(v, "entry")?,
                snap::get_u32(v, "cause")?,
            )),
        };
        let ext_len = snap::get_usize(state, "ext_len")?;
        let ext_schedule = snap::longs_from_json(snap::field(state, "ext_schedule")?, ext_len)?;
        let fault_plan = match snap::field(state, "fault_plan")? {
            Json::Null => None,
            v => Some(FaultPlan::from_snap(v)?),
        };
        let prev_mask = snap::get_u32(state, "prev_mask")?;

        // Stage the two restore-in-place components on scratch copies so
        // a failure below this point cannot leave `self` half-written.
        let mut core = make_engine(self.kind, IMEM_BASE, IMEM_SIZE);
        core.restore_snap(snap::field(state, "core")?)?;
        let mut platform = Platform::new(self.kind, DEFAULT_TICK_PERIOD);
        platform.restore_snap(snap::field(state, "platform")?)?;

        // Commit. The platform's SMP attachment survives by restoring the
        // staged platform's state *into* the live one field-by-field —
        // `Platform::restore_snap` already does exactly that, so run it
        // against `self.platform` now that it is known to succeed.
        self.platform
            .restore_snap(snap::field(state, "platform")?)
            .expect("platform restore succeeded on the staged copy");
        self.core = core;
        self.unit = unit;
        self.records = records;
        self.prev_mask = prev_mask;
        self.pending_triggers = pending_triggers;
        self.open_episode = open_episode;
        self.ext_schedule = ext_schedule;
        self.fault_plan = fault_plan;
        // mhartid is wiring, not snapshot state: keep the live value.
        self.core.state.csrs.mhartid = self.platform.hart_id() as u32;
        Ok(())
    }

    /// Cycle-by-cycle reference path: semantically identical to
    /// [`run`](Self::run) but calls [`step`](Self::step) once per cycle.
    /// Kept for differential testing and throughput comparisons.
    pub fn run_stepwise(&mut self, max_cycles: u64) -> RunExit {
        for _ in 0..max_cycles {
            if self.halted() {
                return RunExit::Halted;
            }
            self.step();
        }
        if self.halted() {
            RunExit::Halted
        } else {
            RunExit::CyclesExhausted
        }
    }
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("kind", &self.kind)
            .field("preset", &self.preset.label())
            .field("cycle", &self.platform.cycle())
            .field("records", &self.records.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{MMIO_HALT, MMIO_MTIMECMP, MMIO_TRACE};
    use rvsim_isa::{Asm, Reg};

    fn simple_isr_program() -> Program {
        // Boot: install ISR, enable timer irq, loop. ISR: re-arm timer,
        // count in a0, mret; after 3 ISRs, halt.
        let mut a = Asm::new(IMEM_BASE);
        a.la(Reg::T0, "isr");
        a.csrw(csr::MTVEC, Reg::T0);
        a.li(Reg::T0, csr::MIP_MTIP as i32);
        a.csrw(csr::MIE, Reg::T0);
        a.enable_interrupts();
        a.label("spin");
        a.li(Reg::T1, 3);
        a.bge(Reg::A0, Reg::T1, "done");
        a.j("spin");
        a.label("done");
        a.li(Reg::T2, MMIO_HALT as i32);
        a.sw(Reg::Zero, 0, Reg::T2);
        a.j("done");
        a.label("isr");
        // Re-arm mtimecmp = mtime + 1000.
        a.li(Reg::T0, crate::layout::MMIO_MTIME as i32);
        a.lw(Reg::T1, 0, Reg::T0);
        a.addi(Reg::T1, Reg::T1, 1000);
        a.li(Reg::T0, MMIO_MTIMECMP as i32);
        a.sw(Reg::T1, 0, Reg::T0);
        a.addi(Reg::A0, Reg::A0, 1);
        a.mret();
        a.finish().expect("assemble")
    }

    #[test]
    fn timer_interrupts_are_recorded() {
        let mut sys = System::new(CoreKind::Cv32e40p, Preset::Vanilla);
        sys.set_timer_period(500);
        sys.load_program(&simple_isr_program());
        assert_eq!(sys.run(50_000), RunExit::Halted);
        assert_eq!(sys.records().len(), 3);
        for r in sys.records() {
            assert_eq!(r.cause, csr::CAUSE_TIMER);
            assert!(
                r.latency() > 0 && r.latency() < 200,
                "latency {}",
                r.latency()
            );
        }
        // A deterministic core and identical episodes: zero jitter.
        let stats = sys.latency_stats().expect("records");
        assert_eq!(stats.count, 3);
    }

    #[test]
    fn trace_marks_capture_cycles() {
        let mut a = Asm::new(IMEM_BASE);
        a.li(Reg::T0, MMIO_TRACE as i32);
        a.li(Reg::T1, 11);
        a.sw(Reg::T1, 0, Reg::T0);
        a.ebreak();
        let mut sys = System::new(CoreKind::Cv32e40p, Preset::Vanilla);
        sys.load_program(&a.finish().expect("assemble"));
        sys.run(1000);
        assert_eq!(sys.platform.mmio.trace_marks.len(), 1);
        assert_eq!(sys.platform.mmio.trace_marks[0].code, 11);
    }

    #[test]
    fn external_irq_schedule_fires() {
        let mut a = Asm::new(IMEM_BASE);
        a.la(Reg::T0, "isr");
        a.csrw(csr::MTVEC, Reg::T0);
        a.li(Reg::T0, csr::MIP_MEIP as i32);
        a.csrw(csr::MIE, Reg::T0);
        a.enable_interrupts();
        a.label("spin");
        a.j("spin");
        a.label("isr");
        a.li(Reg::T0, MMIO_HALT as i32);
        a.sw(Reg::Zero, 0, Reg::T0);
        a.mret();
        let mut sys = System::new(CoreKind::Cv32e40p, Preset::Vanilla);
        sys.load_program(&a.finish().expect("assemble"));
        sys.schedule_external_irq(300);
        assert_eq!(sys.run(5000), RunExit::Halted);
        // The trigger cycle must match the scheduled assertion.
        assert!(sys.platform.cycle() >= 300);
    }

    fn isr_program_with_stack() -> Program {
        // `simple_isr_program` plus a stack pointer inside DMEM, so the
        // CV32RT hardware drain has a valid frame to write into.
        let mut a = Asm::new(IMEM_BASE);
        a.li(
            Reg::Sp,
            (crate::layout::DMEM_BASE + crate::layout::DMEM_SIZE / 2) as i32,
        );
        a.la(Reg::T0, "isr");
        a.csrw(csr::MTVEC, Reg::T0);
        a.li(Reg::T0, csr::MIP_MTIP as i32);
        a.csrw(csr::MIE, Reg::T0);
        a.enable_interrupts();
        a.label("spin");
        a.li(Reg::T1, 3);
        a.bge(Reg::A0, Reg::T1, "done");
        a.j("spin");
        a.label("done");
        a.li(Reg::T2, MMIO_HALT as i32);
        a.sw(Reg::Zero, 0, Reg::T2);
        a.j("done");
        a.label("isr");
        a.li(Reg::T0, crate::layout::MMIO_MTIME as i32);
        a.lw(Reg::T1, 0, Reg::T0);
        a.addi(Reg::T1, Reg::T1, 1000);
        a.li(Reg::T0, MMIO_MTIMECMP as i32);
        a.sw(Reg::T1, 0, Reg::T0);
        a.addi(Reg::A0, Reg::A0, 1);
        a.mret();
        a.finish().expect("assemble")
    }

    #[test]
    fn snapshot_roundtrip_mid_isr_workload() {
        for preset in [Preset::Vanilla, Preset::Slt, Preset::Cv32rt] {
            // Cv32rt has no software restore in this tiny ISR; it still
            // exercises the snapshot of a drained unit.
            let build = || {
                let mut s = System::new(CoreKind::Cva6, preset);
                s.set_timer_period(500);
                s.enable_tracing(64);
                s.load_program(&isr_program_with_stack());
                s.schedule_external_irq(100_000); // stays pending state
                s
            };
            let mut a = build();
            a.run(1_200); // past the first ISR entry
            let doc = a.snapshot();
            assert_eq!(
                doc.render(),
                a.snapshot().render(),
                "snapshot must be digest-stable ({preset:?})"
            );
            let mut b = System::from_snapshot(&doc).expect("restore");
            assert_eq!(a.run(50_000), b.run(50_000), "{preset:?}");
            assert_eq!(a.platform.cycle(), b.platform.cycle(), "{preset:?}");
            assert_eq!(a.records(), b.records(), "{preset:?}");
            assert_eq!(
                a.state_snap().render(),
                b.state_snap().render(),
                "continuations must stay bit-identical ({preset:?})"
            );
        }
    }

    #[test]
    fn snapshot_restore_rejects_wrong_identity() {
        let mut sys = System::new(CoreKind::Cv32e40p, Preset::Vanilla);
        sys.load_program(&simple_isr_program());
        sys.run(200);
        let state = sys.state_snap();
        let mut other = System::new(CoreKind::Cva6, Preset::Vanilla);
        assert!(other.restore_snap(&state).is_err(), "core kind mismatch");
        let mut other = System::new(CoreKind::Cv32e40p, Preset::Slt);
        assert!(other.restore_snap(&state).is_err(), "preset mismatch");
        assert_eq!(other.platform.cycle(), 0, "failed restore left it alone");

        // A corrupted sealed document must fail the digest check.
        let doc = sys.snapshot();
        let text = doc.render().replace("\"prev_mask\": 0", "\"prev_mask\": 1");
        assert_ne!(text, doc.render(), "tamper target present");
        assert!(rvsim_snapshot::open(&text).is_err(), "tamper detected");
    }

    #[test]
    fn preset_selects_unit_kind() {
        let v = System::new(CoreKind::Cv32e40p, Preset::Vanilla);
        assert!(v.rtos_unit().is_none() && v.cv32rt_unit().is_none());
        let r = System::new(CoreKind::Cv32e40p, Preset::Slt);
        assert!(r.rtos_unit().is_some());
        let c = System::new(CoreKind::Cva6, Preset::Cv32rt);
        assert!(c.cv32rt_unit().is_some());
        // Auto-reset timer only with hardware scheduling.
        assert!(r.platform.mmio.auto_timer_reset);
        assert!(!v.platform.mmio.auto_timer_reset);
    }
}
