//! Latency waterfalls: per-phase decomposition of switch episodes.
//!
//! The paper's Fig. 9 reports *total* trigger→`mret` latency; its analysis
//! sections explain the totals by where the cycles go — entry stall,
//! context save, scheduling, restore. This module reproduces that
//! breakdown: each [`SwitchRecord`] is split into four phases using the
//! hardware-visible trigger/entry/`mret` timestamps plus the typed
//! [`PhaseCode`] marks the instrumented kernel emits
//! (see [`events`](crate::events)):
//!
//! ```text
//! trigger ──entry──▶ isr ──save──▶ SaveDone ──sched──▶ SchedDone ──restore──▶ mret
//! ```
//!
//! Phase boundaries are clamped into the episode window, so the phase
//! durations always partition the episode exactly:
//! `sum(phases) == record.latency()`. Missing marks collapse their phase
//! to zero width (e.g. an uninstrumented kernel yields
//! `entry + sched` only).

use crate::events::{PhaseCode, TraceMark};
use crate::stats::{LatencyStats, SwitchRecord};

/// Number of waterfall phases.
pub const PHASE_COUNT: usize = 4;

/// Phase names, in episode order (stable; used in artifacts).
pub const PHASE_NAMES: [&str; PHASE_COUNT] = ["entry", "save", "sched", "restore"];

/// One decomposed switch episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpisodeWaterfall {
    /// The underlying episode.
    pub record: SwitchRecord,
    /// Phase durations in cycles, [`PHASE_NAMES`] order. Their sum equals
    /// [`SwitchRecord::latency`] exactly.
    pub phases: [u64; PHASE_COUNT],
}

impl EpisodeWaterfall {
    /// Absolute cycle of each phase boundary: `[trigger, entry, save_done,
    /// sched_done, mret]` (clamped boundaries for missing marks).
    pub fn boundaries(&self) -> [u64; PHASE_COUNT + 1] {
        let mut b = [self.record.trigger_cycle; PHASE_COUNT + 1];
        for (i, d) in self.phases.iter().enumerate() {
            b[i + 1] = b[i] + d;
        }
        b
    }
}

/// Decomposes episodes into waterfalls using the phase marks of one run.
///
/// Marks are matched to the first episode window (`entry..=mret`) that
/// contains them, in mark order; out-of-order or duplicate marks are
/// tolerated (the first of each code inside the window wins) and marks
/// past the last episode are ignored.
pub fn decompose(records: &[SwitchRecord], marks: &[TraceMark]) -> Vec<EpisodeWaterfall> {
    // Only phase marks matter; sort once so scanning a window is cheap
    // even when the source was out of order.
    let mut phase_marks: Vec<(u64, PhaseCode)> = marks
        .iter()
        .filter_map(|m| m.phase().map(|p| (m.cycle, p)))
        .collect();
    phase_marks.sort_by_key(|&(cycle, _)| cycle);

    records
        .iter()
        .map(|r| {
            let lo = r.entry_cycle.min(r.mret_cycle);
            let hi = r.mret_cycle.max(r.entry_cycle);
            let in_window = phase_marks
                .iter()
                .skip_while(|&&(c, _)| c < lo)
                .take_while(|&&(c, _)| c <= hi);
            let mut save_done = None;
            let mut sched_done = None;
            for &(cycle, code) in in_window {
                match code {
                    PhaseCode::SaveDone if save_done.is_none() => save_done = Some(cycle),
                    PhaseCode::SchedDone if sched_done.is_none() => sched_done = Some(cycle),
                    _ => {}
                }
            }
            // Clamped boundaries: b1 <= b2 <= b3 <= mret by construction,
            // so the four phase durations partition the episode exactly.
            let b1 = lo;
            let b2 = save_done.unwrap_or(b1).clamp(b1, hi);
            let b3 = sched_done.unwrap_or(hi).clamp(b2, hi);
            EpisodeWaterfall {
                record: *r,
                phases: [
                    lo.saturating_sub(r.trigger_cycle),
                    b2 - b1,
                    b3 - b2,
                    hi - b3,
                ],
            }
        })
        .collect()
}

/// Per-phase latency statistics over a set of decomposed episodes, in
/// [`PHASE_NAMES`] order. Empty input yields an empty vector.
pub fn phase_stats(episodes: &[EpisodeWaterfall]) -> Vec<(&'static str, LatencyStats)> {
    if episodes.is_empty() {
        return Vec::new();
    }
    PHASE_NAMES
        .iter()
        .enumerate()
        .filter_map(|(i, name)| {
            let durations: Vec<u64> = episodes.iter().map(|e| e.phases[i]).collect();
            LatencyStats::from_latencies(&durations).map(|s| (*name, s))
        })
        .collect()
}

/// Renders the mean per-phase breakdown as an ASCII waterfall table —
/// the textual form of the paper's cycle-attribution analysis.
pub fn render(episodes: &[EpisodeWaterfall]) -> String {
    let stats = phase_stats(episodes);
    let total_mean: f64 = stats.iter().map(|(_, s)| s.mean).sum();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>8} {:>6} {:>6} {:>6}  share\n",
        "phase", "mean", "min", "max", "jitter"
    ));
    for (name, s) in &stats {
        let share = if total_mean > 0.0 {
            s.mean / total_mean
        } else {
            0.0
        };
        let bar_len = (share * 30.0).round() as usize;
        out.push_str(&format!(
            "{:<10} {:>8.1} {:>6} {:>6} {:>6}  {}\n",
            name,
            s.mean,
            s.min,
            s.max,
            s.jitter(),
            "#".repeat(bar_len),
        ));
    }
    out.push_str(&format!(
        "{:<10} {:>8.1}  ({} episodes)\n",
        "total",
        total_mean,
        episodes.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvsim_isa::csr;

    fn rec(trigger: u64, entry: u64, mret: u64) -> SwitchRecord {
        SwitchRecord {
            trigger_cycle: trigger,
            entry_cycle: entry,
            mret_cycle: mret,
            cause: csr::CAUSE_TIMER,
        }
    }

    fn mark(cycle: u64, code: PhaseCode) -> TraceMark {
        TraceMark {
            cycle,
            code: code.encode(),
        }
    }

    #[test]
    fn full_marks_split_into_four_phases() {
        let records = [rec(100, 110, 200)];
        let marks = [
            mark(140, PhaseCode::SaveDone),
            mark(170, PhaseCode::SchedDone),
        ];
        let w = decompose(&records, &marks);
        assert_eq!(w[0].phases, [10, 30, 30, 30]);
        assert_eq!(w[0].phases.iter().sum::<u64>(), records[0].latency());
        assert_eq!(w[0].boundaries(), [100, 110, 140, 170, 200]);
    }

    #[test]
    fn missing_marks_collapse_phases() {
        // No marks at all: everything between entry and mret lands in the
        // sched phase; save and restore are zero-width.
        let records = [rec(0, 5, 80)];
        let w = decompose(&records, &[]);
        assert_eq!(w[0].phases, [5, 0, 75, 0]);
        assert_eq!(w[0].phases.iter().sum::<u64>(), records[0].latency());
        // Only SchedDone (banked kernels may skip SaveDone).
        let w = decompose(&records, &[mark(60, PhaseCode::SchedDone)]);
        assert_eq!(w[0].phases, [5, 0, 55, 20]);
    }

    #[test]
    fn out_of_order_and_duplicate_marks_are_tolerated() {
        let records = [rec(0, 10, 100)];
        // SchedDone before SaveDone in the source slice, plus a duplicate
        // SaveDone: first-of-each-code (by cycle) wins.
        let marks = [
            mark(70, PhaseCode::SchedDone),
            mark(30, PhaseCode::SaveDone),
            mark(50, PhaseCode::SaveDone),
        ];
        let w = decompose(&records, &marks);
        assert_eq!(w[0].phases, [10, 20, 40, 30]);
    }

    #[test]
    fn sched_mark_before_save_mark_clamps_monotonically() {
        // A SchedDone that precedes the (first) SaveDone is clamped so the
        // boundaries stay ordered and the sum stays exact.
        let records = [rec(0, 10, 100)];
        let marks = [
            mark(30, PhaseCode::SchedDone),
            mark(60, PhaseCode::SaveDone),
        ];
        let w = decompose(&records, &marks);
        assert_eq!(w[0].phases.iter().sum::<u64>(), 100);
        let b = w[0].boundaries();
        assert!(b.windows(2).all(|p| p[0] <= p[1]), "boundaries {b:?}");
    }

    #[test]
    fn marks_outside_the_window_are_ignored() {
        let records = [rec(100, 110, 200)];
        let marks = [
            mark(50, PhaseCode::SaveDone),   // before the episode
            mark(150, PhaseCode::SaveDone),  // inside
            mark(999, PhaseCode::SchedDone), // past the horizon
        ];
        let w = decompose(&records, &marks);
        assert_eq!(w[0].phases, [10, 40, 50, 0]);
    }

    #[test]
    fn overlapping_episodes_each_claim_their_marks() {
        // Two episodes sharing a stretch of cycles (cannot happen in a
        // real run, but the analysis must not panic or mis-assign).
        let records = [rec(0, 10, 100), rec(50, 60, 150)];
        let marks = [
            mark(70, PhaseCode::SaveDone),
            mark(120, PhaseCode::SchedDone),
        ];
        let w = decompose(&records, &marks);
        for e in &w {
            assert_eq!(e.phases.iter().sum::<u64>(), e.record.latency());
        }
        assert_eq!(w[0].phases[1], 60); // mark 70 inside episode 0
        assert_eq!(w[1].phases[1], 10); // and inside episode 1
    }

    #[test]
    fn phase_stats_aggregate_per_phase() {
        let records = [rec(0, 10, 100), rec(200, 220, 300)];
        let marks = [
            mark(40, PhaseCode::SaveDone),
            mark(70, PhaseCode::SchedDone),
            mark(240, PhaseCode::SaveDone),
            mark(280, PhaseCode::SchedDone),
        ];
        let w = decompose(&records, &marks);
        let stats = phase_stats(&w);
        assert_eq!(stats.len(), PHASE_COUNT);
        assert_eq!(stats[0].0, "entry");
        assert_eq!(stats[0].1.min, 10);
        assert_eq!(stats[0].1.max, 20);
        assert!(phase_stats(&[]).is_empty());
        let rendered = render(&w);
        assert!(rendered.contains("entry"));
        assert!(rendered.contains("restore"));
        assert!(rendered.contains("2 episodes"));
    }
}
