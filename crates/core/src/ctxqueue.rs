//! The **ctxQueue** (paper §5.3, Fig. 8).
//!
//! On the out-of-order core the RTOSUnit's memory requests go through a
//! dedicated queue inside the LSU. Entries are allocated and freed
//! **in order** (which is what makes aliasing impossible below 32
//! entries); each entry completes after its cache latency, and the
//! queue's depth bounds how many unit accesses may be in flight — the
//! paper found **eight** entries Pareto-optimal.

use rvsim_snapshot::{self as snap, Json, SnapError};
use std::collections::VecDeque;

/// Timing model of the ctxQueue. Entries hold only completion times: the
/// simulator keeps data functionally coherent elsewhere.
#[derive(Debug, Clone)]
pub struct CtxQueue {
    capacity: usize,
    /// Completion cycles in allocation order; monotone because freeing is
    /// in-order (a fast hit behind a slow miss frees after it).
    inflight: VecDeque<u64>,
    issued: u64,
    full_stalls: u64,
}

impl CtxQueue {
    /// Creates an empty queue with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or ≥ 32 (at 32 entries a load and a
    /// store to the same address could coexist, which this model — like
    /// the paper's design — does not handle).
    pub fn new(capacity: usize) -> CtxQueue {
        assert!(
            (1..32).contains(&capacity),
            "ctxQueue depth must be in 1..32"
        );
        CtxQueue {
            capacity,
            inflight: VecDeque::with_capacity(capacity),
            issued: 0,
            full_stalls: 0,
        }
    }

    /// Queue capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn drain(&mut self, now: u64) {
        while self.inflight.front().is_some_and(|&r| r <= now) {
            self.inflight.pop_front();
        }
    }

    /// Attempts to allocate an entry completing after `latency` cycles.
    /// Fails (and counts a stall) when the queue is full.
    pub fn try_issue(&mut self, now: u64, latency: u32) -> bool {
        self.drain(now);
        if self.inflight.len() == self.capacity {
            self.full_stalls += 1;
            return false;
        }
        let ready = (now + u64::from(latency)).max(self.inflight.back().copied().unwrap_or(0));
        self.inflight.push_back(ready);
        self.issued += 1;
        true
    }

    /// Entries still in flight at `now`.
    pub fn pending(&mut self, now: u64) -> usize {
        self.drain(now);
        self.inflight.len()
    }

    /// Entries still in flight at `now`, without draining. Completion
    /// times are monotone, so the in-flight entries form the queue's
    /// tail.
    pub fn pending_at(&self, now: u64) -> usize {
        self.inflight.iter().rev().take_while(|&&r| r > now).count()
    }

    /// `(issued, stalled-because-full)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.issued, self.full_stalls)
    }

    /// Serializes the queue (in-flight completion times and counters)
    /// for a machine-state snapshot.
    pub fn to_snap(&self) -> Json {
        let inflight: Vec<u64> = self.inflight.iter().copied().collect();
        Json::object()
            .with("capacity", self.capacity)
            .with("inflight_len", inflight.len())
            .with("inflight", snap::longs_to_json(&inflight))
            .with("issued", self.issued)
            .with("full_stalls", self.full_stalls)
    }

    /// Rebuilds the queue from [`to_snap`](Self::to_snap) output.
    ///
    /// # Errors
    ///
    /// Fails on malformed fields, an out-of-range capacity, or more
    /// in-flight entries than the capacity allows.
    pub fn from_snap(value: &Json) -> Result<CtxQueue, SnapError> {
        let capacity = snap::get_usize(value, "capacity")?;
        if !(1..32).contains(&capacity) {
            return Err(SnapError::new("ctxqueue: capacity out of 1..32"));
        }
        let len = snap::get_usize(value, "inflight_len")?;
        if len > capacity {
            return Err(SnapError::new(format!(
                "ctxqueue: {len} in flight exceeds capacity {capacity}"
            )));
        }
        let inflight = snap::longs_from_json(snap::field(value, "inflight")?, len)?;
        Ok(CtxQueue {
            capacity,
            inflight: inflight.into_iter().collect(),
            issued: snap::get_u64(value, "issued")?,
            full_stalls: snap::get_u64(value, "full_stalls")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelines_up_to_capacity() {
        let mut q = CtxQueue::new(4);
        for i in 0..4 {
            assert!(q.try_issue(i, 20), "entry {i} must fit");
        }
        assert!(!q.try_issue(4, 20), "fifth entry must stall");
        assert_eq!(q.stats().1, 1);
        // After the first completes, space frees in order.
        assert!(q.try_issue(21, 20));
    }

    #[test]
    fn frees_in_order_even_when_later_entries_finish_first() {
        let mut q = CtxQueue::new(2);
        assert!(q.try_issue(0, 30)); // ready at 30
        assert!(q.try_issue(1, 1)); // would be ready at 2, but frees at 30
        assert_eq!(q.pending(10), 2);
        assert_eq!(q.pending(30), 0);
    }

    #[test]
    fn hits_stream_one_per_cycle() {
        let mut q = CtxQueue::new(8);
        for i in 0..31 {
            assert!(q.try_issue(i, 1), "hit {i} must issue");
        }
        assert!(q.pending(33) == 0);
    }

    #[test]
    #[should_panic(expected = "1..32")]
    fn depth_32_would_allow_aliasing() {
        CtxQueue::new(32);
    }
}
