//! Typed, cycle-stamped event tracing — the observability backbone.
//!
//! The paper's headline claim is *where cycles go* during a context
//! switch, so the reproduction needs more than three timestamps per
//! episode. This module provides:
//!
//! * [`TraceEvent`] — the typed event vocabulary (interrupt edges, ISR
//!   entry, guest phase marks, `mret`, cache and unit activity),
//! * [`TraceSink`] — the recording interface the platform and system
//!   drive,
//! * [`EventTrace`] — a bounded ring-buffer sink (oldest events are
//!   dropped first, with a drop counter so truncation is never silent),
//! * [`TraceMark`] / [`PhaseCode`] — the typed guest→host instrumentation
//!   channel: the kernel writes encoded phase codes to the TRACE MMIO
//!   register at ISR phase boundaries and the host decodes them back.
//!
//! Tracing is **off by default and zero-cost when off**: the platform
//! holds an `Option<EventTrace>` and every record site is gated on one
//! `is_some` check; the batched execution fast path is untouched.

use rvsim_snapshot::{self as snap, Json, SnapError};
use std::collections::VecDeque;

/// High half-word tagging a TRACE write as a kernel phase mark (`"PH"` in
/// ASCII). Guest benchmark marks use small values, so the ranges cannot
/// collide.
pub const PHASE_MARK_BASE: u32 = 0x5048_0000;

/// Mask selecting the phase-mark tag bits of a TRACE value.
pub const PHASE_MARK_MASK: u32 = 0xffff_0000;

/// High half-word tagging a TRACE write as a kernel *fault detection*
/// mark (`"FD"` in ASCII): the self-protecting kernel announces canary,
/// watchdog and checksum hits through this namespace. Disjoint from the
/// phase (`"PH"`), probe (`'k'`) and task-mark namespaces.
pub const FAULT_MARK_BASE: u32 = 0x4644_0000;

/// Detector code: a per-task stack canary was clobbered.
pub const DETECT_CANARY: u32 = 1;
/// Detector code: the guest watchdog expired (idle never petted it).
pub const DETECT_WATCHDOG: u32 = 2;
/// Detector code: the TCB checksum self-check failed.
pub const DETECT_CHECKSUM: u32 = 3;
/// Detector code: the degradation path killed the corrupted task and
/// rescheduled (emitted after the triggering detection mark).
pub const DETECT_TASK_KILLED: u32 = 4;

/// Encodes a detector code as a TRACE-register fault-detection mark.
pub fn fault_mark(detector: u32) -> u32 {
    FAULT_MARK_BASE | (detector & !PHASE_MARK_MASK)
}

/// Decodes a TRACE value as a fault-detection mark, if it is one.
pub fn decode_fault_mark(value: u32) -> Option<u32> {
    (value & PHASE_MARK_MASK == FAULT_MARK_BASE).then_some(value & !PHASE_MARK_MASK)
}

/// Stable short name of a detector code (artifact/trace naming).
pub fn detector_name(detector: u32) -> &'static str {
    match detector {
        DETECT_CANARY => "canary",
        DETECT_WATCHDOG => "watchdog",
        DETECT_CHECKSUM => "checksum",
        DETECT_TASK_KILLED => "task_killed",
        _ => "unknown",
    }
}

/// ISR phase boundaries the instrumented kernel announces (paper Fig. 4:
/// the save, schedule and restore sections of the ISR). Together with the
/// hardware-visible trigger/entry/`mret` timestamps these decompose one
/// [`SwitchRecord`](crate::SwitchRecord) into a latency waterfall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum PhaseCode {
    /// The software context save finished (emitted immediately on entry by
    /// banked configurations, whose save happens in hardware).
    SaveDone = 1,
    /// The next task has been selected and `currentTCB` updated; the
    /// restore path starts after this mark.
    SchedDone = 2,
}

impl PhaseCode {
    /// All phase codes, in ISR order.
    pub const ALL: [PhaseCode; 2] = [PhaseCode::SaveDone, PhaseCode::SchedDone];

    /// The TRACE-register encoding of this code.
    pub fn encode(self) -> u32 {
        PHASE_MARK_BASE | self as u32
    }

    /// Decodes a TRACE value back into a phase code; `None` for ordinary
    /// benchmark marks or unknown phase numbers.
    pub fn decode(value: u32) -> Option<PhaseCode> {
        if value & PHASE_MARK_MASK != PHASE_MARK_BASE {
            return None;
        }
        match value & !PHASE_MARK_MASK {
            1 => Some(PhaseCode::SaveDone),
            2 => Some(PhaseCode::SchedDone),
            _ => None,
        }
    }

    /// Short lower-case name (stable; used in artifacts).
    pub fn name(self) -> &'static str {
        match self {
            PhaseCode::SaveDone => "save_done",
            PhaseCode::SchedDone => "sched_done",
        }
    }
}

/// One guest TRACE-register write, typed: the cycle it landed and the raw
/// value written. Replaces the old untyped `(u64, u32)` tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceMark {
    /// Platform cycle of the write.
    pub cycle: u64,
    /// The value written (possibly a [`PhaseCode`] encoding).
    pub code: u32,
}

impl TraceMark {
    /// The phase code, if this mark is a kernel phase boundary.
    pub fn phase(&self) -> Option<PhaseCode> {
        PhaseCode::decode(self.code)
    }
}

/// A typed simulation event. Stamped with its cycle by the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// An interrupt line rose (`mip` rising edge).
    IrqRaised {
        /// The `mcause` value of the line.
        cause: u32,
    },
    /// The core entered the ISR.
    IsrEntry {
        /// The `mcause` value taken.
        cause: u32,
    },
    /// The kernel announced an ISR phase boundary.
    Phase(PhaseCode),
    /// `mret` retired (the paper's latency end-point).
    MretRetired,
    /// The guest wrote an ordinary (non-phase) trace mark.
    GuestMark {
        /// The value written.
        value: u32,
    },
    /// A core data access went through the cache.
    CacheAccess {
        /// Whether it hit.
        hit: bool,
        /// Whether it was a store.
        write: bool,
    },
    /// The RTOSUnit used an idle port cycle for a context word.
    UnitOp {
        /// Whether it was a store.
        write: bool,
    },
    /// The guest halted the simulation.
    Halted,
    /// A planned fault was injected this cycle (see
    /// [`rvsim_cores::FaultKind::code`]).
    FaultInjected {
        /// The fault-kind code (`1..=9`).
        code: u32,
    },
    /// The self-protecting kernel detected a fault (canary / watchdog /
    /// checksum; see [`detector_name`]).
    FaultDetected {
        /// The detector code.
        detector: u32,
    },
}

impl TraceEvent {
    /// Stable short label of the event kind (artifact/trace naming).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::IrqRaised { .. } => "irq_raised",
            TraceEvent::IsrEntry { .. } => "isr_entry",
            TraceEvent::Phase(_) => "phase",
            TraceEvent::MretRetired => "mret",
            TraceEvent::GuestMark { .. } => "guest_mark",
            TraceEvent::CacheAccess { .. } => "cache",
            TraceEvent::UnitOp { .. } => "unit_op",
            TraceEvent::Halted => "halted",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::FaultDetected { .. } => "fault_detected",
        }
    }
}

/// Receives cycle-stamped events. The platform and system drive a sink
/// when tracing is enabled; [`EventTrace`] is the standard implementation.
pub trait TraceSink {
    /// Records one event at `cycle`.
    fn record(&mut self, cycle: u64, event: TraceEvent);
}

/// A bounded ring-buffered event trace: the most recent `capacity` events
/// are retained; older ones are dropped (counted, never silently).
#[derive(Debug, Clone)]
pub struct EventTrace {
    events: VecDeque<(u64, TraceEvent)>,
    capacity: usize,
    dropped: u64,
}

impl EventTrace {
    /// Creates an empty trace retaining at most `capacity` events.
    pub fn new(capacity: usize) -> EventTrace {
        EventTrace {
            events: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity,
            dropped: 0,
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained `(cycle, event)` pairs, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (u64, TraceEvent)> + '_ {
        self.events.iter().copied()
    }

    /// Retained events of one kind (see [`TraceEvent::kind`]).
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = (u64, TraceEvent)> + 'a {
        self.iter().filter(move |(_, e)| e.kind() == kind)
    }

    /// Drops all retained events and resets the drop counter.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }

    /// Serializes the ring (every retained event, typed) for a
    /// machine-state snapshot.
    pub fn to_snap(&self) -> Json {
        let events: Vec<Json> = self
            .events
            .iter()
            .map(|&(cycle, ev)| trace_event_to_snap(cycle, ev))
            .collect();
        Json::object()
            .with("capacity", self.capacity)
            .with("dropped", self.dropped)
            .with("events", events)
    }

    /// Rebuilds the trace from [`to_snap`](Self::to_snap) output.
    ///
    /// # Errors
    ///
    /// Fails on malformed fields, an unknown event kind, or more
    /// retained events than the capacity allows.
    pub fn from_snap(value: &Json) -> Result<EventTrace, SnapError> {
        let capacity = snap::get_usize(value, "capacity")?;
        let entries = snap::get_array(value, "events")?;
        if entries.len() > capacity {
            return Err(SnapError::new(format!(
                "trace: {} events exceed capacity {capacity}",
                entries.len()
            )));
        }
        let mut events = VecDeque::with_capacity(capacity.min(1 << 16));
        for e in entries {
            events.push_back(trace_event_from_snap(e)?);
        }
        Ok(EventTrace {
            events,
            capacity,
            dropped: snap::get_u64(value, "dropped")?,
        })
    }
}

/// Serializes one cycle-stamped [`TraceEvent`] as a tagged object.
fn trace_event_to_snap(cycle: u64, event: TraceEvent) -> Json {
    let obj = Json::object()
        .with("cycle", cycle)
        .with("kind", event.kind());
    match event {
        TraceEvent::IrqRaised { cause } | TraceEvent::IsrEntry { cause } => {
            obj.with("cause", cause)
        }
        TraceEvent::Phase(code) => obj.with("code", code as u32),
        TraceEvent::GuestMark { value } => obj.with("value", value),
        TraceEvent::CacheAccess { hit, write } => obj.with("hit", hit).with("write", write),
        TraceEvent::UnitOp { write } => obj.with("write", write),
        TraceEvent::FaultInjected { code } => obj.with("code", code),
        TraceEvent::FaultDetected { detector } => obj.with("detector", detector),
        TraceEvent::MretRetired | TraceEvent::Halted => obj,
    }
}

/// Parses one cycle-stamped [`TraceEvent`] back from its tagged object.
fn trace_event_from_snap(value: &Json) -> Result<(u64, TraceEvent), SnapError> {
    let cycle = snap::get_u64(value, "cycle")?;
    let event = match snap::get_str(value, "kind")? {
        "irq_raised" => TraceEvent::IrqRaised {
            cause: snap::get_u32(value, "cause")?,
        },
        "isr_entry" => TraceEvent::IsrEntry {
            cause: snap::get_u32(value, "cause")?,
        },
        "phase" => match snap::get_u32(value, "code")? {
            1 => TraceEvent::Phase(PhaseCode::SaveDone),
            2 => TraceEvent::Phase(PhaseCode::SchedDone),
            other => {
                return Err(SnapError::new(format!("trace: unknown phase code {other}")));
            }
        },
        "mret" => TraceEvent::MretRetired,
        "guest_mark" => TraceEvent::GuestMark {
            value: snap::get_u32(value, "value")?,
        },
        "cache" => TraceEvent::CacheAccess {
            hit: snap::get_bool(value, "hit")?,
            write: snap::get_bool(value, "write")?,
        },
        "unit_op" => TraceEvent::UnitOp {
            write: snap::get_bool(value, "write")?,
        },
        "halted" => TraceEvent::Halted,
        "fault_injected" => TraceEvent::FaultInjected {
            code: snap::get_u32(value, "code")?,
        },
        "fault_detected" => TraceEvent::FaultDetected {
            detector: snap::get_u32(value, "detector")?,
        },
        other => {
            return Err(SnapError::new(format!(
                "trace: unknown event kind `{other}`"
            )));
        }
    };
    Ok((cycle, event))
}

impl TraceSink for EventTrace {
    fn record(&mut self, cycle: u64, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((cycle, event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_codes_roundtrip_and_reject_plain_marks() {
        for code in PhaseCode::ALL {
            assert_eq!(PhaseCode::decode(code.encode()), Some(code));
        }
        assert_eq!(PhaseCode::decode(7), None);
        assert_eq!(PhaseCode::decode(0xE1), None);
        assert_eq!(PhaseCode::decode(PHASE_MARK_BASE | 0xff), None);
    }

    #[test]
    fn trace_mark_exposes_its_phase() {
        let phase = TraceMark {
            cycle: 10,
            code: PhaseCode::SchedDone.encode(),
        };
        assert_eq!(phase.phase(), Some(PhaseCode::SchedDone));
        let plain = TraceMark { cycle: 11, code: 3 };
        assert_eq!(plain.phase(), None);
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let mut t = EventTrace::new(3);
        for i in 0..5u64 {
            t.record(i, TraceEvent::MretRetired);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        let cycles: Vec<u64> = t.iter().map(|(c, _)| c).collect();
        assert_eq!(cycles, vec![2, 3, 4]);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut t = EventTrace::new(0);
        t.record(1, TraceEvent::Halted);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn of_kind_filters() {
        let mut t = EventTrace::new(8);
        t.record(1, TraceEvent::IrqRaised { cause: 7 });
        t.record(2, TraceEvent::IsrEntry { cause: 7 });
        t.record(
            3,
            TraceEvent::CacheAccess {
                hit: true,
                write: false,
            },
        );
        assert_eq!(t.of_kind("irq_raised").count(), 1);
        assert_eq!(t.of_kind("cache").count(), 1);
        assert_eq!(t.of_kind("mret").count(), 0);
    }
}
