//! Streaming latency histograms and SLO accounting (ROADMAP item 4).
//!
//! [`LatencyHistogram`] is an HDR-style log-linear histogram: values below
//! [`SUB_BUCKETS`] are counted exactly, every higher octave is split into
//! [`SUB_BUCKETS`] equal sub-buckets, so the relative quantisation error is
//! bounded by `1 / SUB_BUCKETS` (~3.1%) at a fixed ~15 KiB footprint —
//! small enough to keep one histogram per waterfall phase per campaign
//! cell at full campaign scale. Recording is O(1), merging is an array
//! add (exactly associative and commutative — per-worker histograms
//! combine into the same aggregate regardless of worker count or merge
//! order), and percentile queries walk the counts once.
//!
//! [`SwitchMetrics`] bundles the per-switch latency histogram with one
//! histogram per waterfall phase (`entry`/`save`/`sched`/`restore`) and an
//! optional exact [`SloCounter`]: misses are counted at record time
//! against the configured threshold, so the miss rate is exact even though
//! bucket boundaries never align with an arbitrary SLO.

use crate::waterfall::{EpisodeWaterfall, PHASE_COUNT, PHASE_NAMES};

/// Sub-buckets per octave: 32 ⇒ ≤ 1/32 relative quantisation error.
pub const SUB_BUCKETS: usize = 32;

/// Number of value bits resolved exactly (`log2(SUB_BUCKETS)`).
const SUB_BITS: u32 = 5;

/// Total bucket count covering the full `u64` range: `SUB_BUCKETS` exact
/// low buckets (octave 0) plus `SUB_BUCKETS` for each of the
/// `64 - SUB_BITS` octaves above (msb 5..=63 → octave 1..=59).
pub const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS;

/// The percentiles every artifact and figure reports, in display order.
pub const REPORTED_PERCENTILES: [(&str, f64); 5] = [
    ("p50", 50.0),
    ("p90", 90.0),
    ("p99", 99.0),
    ("p99.9", 99.9),
    ("p99.99", 99.99),
];

/// A mergeable log-linear (HDR-style) histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: Box<[u64]>,
    count: u64,
    min: u64,
    max: u64,
    total: u64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

/// Bucket index of `v` — monotone non-decreasing in `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let octave = msb - (SUB_BITS - 1);
    let sub = (v >> (msb - SUB_BITS)) as usize & (SUB_BUCKETS - 1);
    octave as usize * SUB_BUCKETS + sub
}

/// Smallest value mapping to bucket `i` (the bucket's inclusive lower
/// bound).
fn bucket_lower(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        return i as u64;
    }
    let octave = (i / SUB_BUCKETS) as u32;
    let sub = (i % SUB_BUCKETS) as u64;
    (SUB_BUCKETS as u64 + sub) << (octave - 1)
}

/// Largest value mapping to bucket `i` (inclusive upper bound).
fn bucket_upper(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_lower(i + 1) - 1
}

impl LatencyHistogram {
    /// An empty histogram. Allocates its full fixed-size count array
    /// (`BUCKETS` × 8 bytes ≈ 15 KiB).
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; BUCKETS].into_boxed_slice(),
            count: 0,
            min: u64::MAX,
            max: 0,
            total: 0,
        }
    }

    /// Records one sample. O(1).
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.total = self.total.wrapping_add(v.wrapping_mul(n));
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest recorded sample (`None` when empty) — exact, not
    /// bucket-quantised.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty) — exact.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded samples (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.total as f64 / self.count as f64)
    }

    /// The `p`-th percentile (0 < p ≤ 100): an upper bound of the bucket
    /// holding the sample of rank `ceil(p/100 × count)`, clamped to the
    /// exact recorded min/max. `None` when empty.
    ///
    /// Because the bucket index is monotone in the value, the reported
    /// figure always lands in the *same bucket* as the exact order
    /// statistic — i.e. within one bucket width (≤ 1/32 relative error).
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// The standard report: `(name, value)` for each of
    /// [`REPORTED_PERCENTILES`]. `None` when empty.
    pub fn report(&self) -> Option<[(&'static str, u64); REPORTED_PERCENTILES.len()]> {
        if self.count == 0 {
            return None;
        }
        let mut out = [("", 0u64); REPORTED_PERCENTILES.len()];
        for (slot, (name, p)) in out.iter_mut().zip(REPORTED_PERCENTILES) {
            *slot = (name, self.percentile(p).expect("non-empty"));
        }
        Some(out)
    }

    /// Exact number of samples strictly above `threshold`, computable
    /// from buckets alone only when the threshold is a bucket boundary —
    /// use [`SloCounter`] for arbitrary thresholds.
    pub fn count_above_boundary(&self, threshold: u64) -> u64 {
        let first = bucket_index(threshold) + 1;
        self.counts[first.min(BUCKETS)..].iter().sum()
    }

    /// Merges `other` into `self`: plain array addition plus min/max/total
    /// folds, so the operation is exactly associative and commutative and
    /// conserves the recorded count.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.total = self.total.wrapping_add(other.total);
    }

    /// Non-empty `(lower_bound, upper_bound, count)` buckets, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower(i), bucket_upper(i), c))
    }
}

/// Exact SLO accounting: samples are compared against the threshold at
/// record time, so misses are precise for any threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloCounter {
    /// Latency budget in cycles; a sample `> threshold` is a miss.
    pub threshold: u64,
    /// Samples recorded.
    pub total: u64,
    /// Samples above the threshold.
    pub misses: u64,
}

impl SloCounter {
    /// A fresh counter for the given budget.
    pub fn new(threshold: u64) -> SloCounter {
        SloCounter {
            threshold,
            total: 0,
            misses: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.total += 1;
        if v > self.threshold {
            self.misses += 1;
        }
    }

    /// Fraction of samples that missed the budget (0 when empty).
    pub fn miss_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.misses as f64 / self.total as f64
        }
    }

    /// Merges another counter tracking the *same* threshold.
    ///
    /// # Panics
    ///
    /// Panics when the thresholds differ — merging those would silently
    /// produce a meaningless miss rate.
    pub fn merge(&mut self, other: &SloCounter) {
        assert_eq!(
            self.threshold, other.threshold,
            "merging SLO counters with different budgets"
        );
        self.total += other.total;
        self.misses += other.misses;
    }
}

/// Per-switch metrics: the latency histogram, one histogram per waterfall
/// phase, and optional exact SLO accounting. One instance per campaign
/// cell; mergeable across cells/workers.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchMetrics {
    /// End-to-end switch latency (trigger → `mret`).
    pub latency: LatencyHistogram,
    /// Per-phase histograms, indexed like
    /// [`PHASE_NAMES`](crate::waterfall::PHASE_NAMES).
    pub phases: [LatencyHistogram; PHASE_COUNT],
    /// Exact SLO accounting, when a budget is configured.
    pub slo: Option<SloCounter>,
}

impl SwitchMetrics {
    /// Fresh metrics; `slo` is the optional latency budget in cycles.
    pub fn new(slo: Option<u64>) -> SwitchMetrics {
        SwitchMetrics {
            latency: LatencyHistogram::new(),
            phases: std::array::from_fn(|_| LatencyHistogram::new()),
            slo: slo.map(SloCounter::new),
        }
    }

    /// Records one decomposed switch episode.
    pub fn record_episode(&mut self, e: &EpisodeWaterfall) {
        let latency = e.record.latency();
        self.latency.record(latency);
        for (hist, &width) in self.phases.iter_mut().zip(e.phases.iter()) {
            hist.record(width);
        }
        if let Some(slo) = &mut self.slo {
            slo.record(latency);
        }
    }

    /// Builds metrics over a whole run's episodes.
    pub fn from_episodes(episodes: &[EpisodeWaterfall], slo: Option<u64>) -> SwitchMetrics {
        let mut m = SwitchMetrics::new(slo);
        for e in episodes {
            m.record_episode(e);
        }
        m
    }

    /// Merges another cell's metrics (same SLO configuration).
    ///
    /// # Panics
    ///
    /// Panics when exactly one side tracks an SLO, or the thresholds
    /// differ (see [`SloCounter::merge`]).
    pub fn merge(&mut self, other: &SwitchMetrics) {
        self.latency.merge(&other.latency);
        for (a, b) in self.phases.iter_mut().zip(other.phases.iter()) {
            a.merge(b);
        }
        match (&mut self.slo, &other.slo) {
            (None, None) => {}
            (Some(a), Some(b)) => a.merge(b),
            _ => panic!("merging SLO-tracked metrics with untracked metrics"),
        }
    }

    /// `(phase name, histogram)` pairs in waterfall order.
    pub fn named_phases(&self) -> [(&'static str, &LatencyHistogram); PHASE_COUNT] {
        std::array::from_fn(|i| (PHASE_NAMES[i], &self.phases[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvsim_isa::rng::Rng64;

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
            assert_eq!(bucket_lower(bucket_index(v)), v);
            assert_eq!(bucket_upper(bucket_index(v)), v);
        }
        assert_eq!(h.count(), SUB_BUCKETS as u64);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(SUB_BUCKETS as u64 - 1));
    }

    #[test]
    fn bucket_bounds_tile_the_u64_range() {
        // Lower bounds are strictly increasing past the exact region and
        // every bucket contains its own bounds.
        for i in 0..BUCKETS {
            let (lo, hi) = (bucket_lower(i), bucket_upper(i));
            assert!(lo <= hi, "bucket {i}: {lo} > {hi}");
            assert_eq!(bucket_index(lo), i, "lower bound of {i} maps elsewhere");
            assert_eq!(bucket_index(hi), i, "upper bound of {i} maps elsewhere");
            if i + 1 < BUCKETS {
                assert_eq!(bucket_lower(i + 1), hi + 1, "gap after bucket {i}");
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded_by_one_part_in_32() {
        let mut rng = Rng64::new(7);
        for _ in 0..10_000 {
            let v = rng.next_u64() >> (rng.next_u64() % 64);
            let hi = bucket_upper(bucket_index(v));
            let width = hi - bucket_lower(bucket_index(v));
            if v >= SUB_BUCKETS as u64 {
                assert!(
                    (width as f64) <= v as f64 / (SUB_BUCKETS as f64 - 1.0),
                    "bucket width {width} too wide for value {v}"
                );
            } else {
                assert_eq!(width, 0);
            }
        }
    }

    /// Exact order statistic matching `percentile`'s rank definition.
    fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
        let rank = ((p / 100.0 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn percentiles_land_in_the_exact_oracles_bucket() {
        let mut rng = Rng64::new(42);
        for trial in 0..50 {
            let n = 1 + rng.below(2_000) as usize;
            let mut samples: Vec<u64> = (0..n)
                .map(|_| rng.next_u64() >> (32 + rng.next_u64() % 28))
                .collect();
            let mut h = LatencyHistogram::new();
            for &s in &samples {
                h.record(s);
            }
            samples.sort_unstable();
            for (_, p) in REPORTED_PERCENTILES {
                let exact = exact_percentile(&samples, p);
                let reported = h.percentile(p).expect("non-empty");
                assert_eq!(
                    bucket_index(reported),
                    bucket_index(exact),
                    "trial {trial} p{p}: reported {reported} not in exact {exact}'s bucket"
                );
                assert!(reported >= exact, "upper-bound convention violated");
            }
            assert_eq!(h.percentile(100.0), Some(*samples.last().unwrap()));
        }
    }

    #[test]
    fn merge_is_associative_commutative_and_conserves_counts() {
        let mut rng = Rng64::new(9);
        let mut parts: Vec<LatencyHistogram> = Vec::new();
        let mut grand_total = 0u64;
        for _ in 0..8 {
            let mut h = LatencyHistogram::new();
            for _ in 0..rng.below(500) {
                h.record(rng.below(1 << 20));
                grand_total += 1;
            }
            parts.push(h);
        }
        // Left fold, right fold and a shuffled fold must agree exactly.
        let fold = |order: &[usize]| {
            let mut acc = LatencyHistogram::new();
            for &i in order {
                acc.merge(&parts[i]);
            }
            acc
        };
        let forward = fold(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let backward = fold(&[7, 6, 5, 4, 3, 2, 1, 0]);
        let shuffled = fold(&[3, 0, 7, 1, 5, 2, 6, 4]);
        // Nested grouping: ((a+b)+(c+d)) vs (a+(b+(c+d))).
        let mut ab = parts[0].clone();
        ab.merge(&parts[1]);
        let mut cd = parts[2].clone();
        cd.merge(&parts[3]);
        let mut grouped = ab.clone();
        grouped.merge(&cd);
        let mut nested = parts[0].clone();
        let mut bcd = parts[1].clone();
        bcd.merge(&cd);
        nested.merge(&bcd);
        assert_eq!(forward, backward);
        assert_eq!(forward, shuffled);
        assert_eq!(grouped, nested);
        assert_eq!(forward.count(), grand_total, "count conservation");
        assert_eq!(
            forward.count(),
            parts.iter().map(LatencyHistogram::count).sum::<u64>()
        );
    }

    #[test]
    fn slo_counter_is_exact_for_arbitrary_thresholds() {
        let mut rng = Rng64::new(3);
        let threshold = 1234; // not a bucket boundary
        let mut slo = SloCounter::new(threshold);
        let mut expected = 0u64;
        for _ in 0..5_000 {
            let v = rng.below(4_000);
            slo.record(v);
            if v > threshold {
                expected += 1;
            }
        }
        assert_eq!(slo.misses, expected);
        assert_eq!(slo.total, 5_000);
        let rate = slo.miss_rate();
        assert!((rate - expected as f64 / 5_000.0).abs() < 1e-12);
    }

    #[test]
    fn switch_metrics_record_phases_and_merge() {
        use crate::stats::SwitchRecord;
        let episode = |trigger: u64, latency: u64| EpisodeWaterfall {
            record: SwitchRecord {
                trigger_cycle: trigger,
                entry_cycle: trigger + 1,
                mret_cycle: trigger + latency,
                cause: 7,
            },
            phases: [1, latency - 1, 0, 0],
        };
        let mut a = SwitchMetrics::new(Some(100));
        let mut b = SwitchMetrics::new(Some(100));
        for i in 0..50 {
            a.record_episode(&episode(i * 1000, 50 + i));
            b.record_episode(&episode(i * 1000, 80 + i));
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.latency.count(), 100);
        assert_eq!(merged.phases[0].count(), 100);
        assert_eq!(merged.phases[0].max(), Some(1));
        let slo = merged.slo.expect("slo configured");
        // a: latencies 50..=99 → 0 misses; b: 80..=129 → 29 misses
        // (81..=129 above 100 → 29 values 101..=129).
        assert_eq!(slo.misses, 29);
        assert_eq!(slo.total, 100);
    }

    #[test]
    fn empty_histogram_reports_nothing() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.percentile(99.0), None);
        assert!(h.report().is_none());
    }
}
