//! The simulated platform's memory map and context-region layout.
//!
//! These constants are shared between the RTOSUnit hardware model, the
//! `freertos-lite` guest kernel and the WCET analyser, so they live here
//! in the contribution crate.

use rvsim_isa::Reg;

/// Base of instruction memory (reset PC).
pub const IMEM_BASE: u32 = 0x0000_0000;
/// Size of instruction memory in bytes.
pub const IMEM_SIZE: u32 = 0x0004_0000;

/// Base of data memory.
pub const DMEM_BASE: u32 = 0x2000_0000;
/// Size of data memory in bytes.
pub const DMEM_SIZE: u32 = 0x0008_0000;

/// Base of the fixed context region inside DMEM (paper §4.2 (3)). Each
/// task owns one 32-word chunk indexed by its task id, so the store
/// address is `CTX_REGION_BASE + (id << CTX_SHIFT)`.
pub const CTX_REGION_BASE: u32 = DMEM_BASE + 0x0007_0000;
/// log2 of the per-task chunk size in bytes (32 words).
pub const CTX_SHIFT: u32 = 7;
/// Maximum number of task ids the context region can hold.
pub const CTX_MAX_TASKS: u32 = 64;

/// Number of words in a saved context: 29 GPRs + `mstatus` + `mepc`
/// (paper §3).
pub const CTX_WORDS: usize = 31;
/// Context-word index holding `mstatus`.
pub const CTX_MSTATUS_IDX: usize = 29;
/// Context-word index holding `mepc`.
pub const CTX_MEPC_IDX: usize = 30;

/// MMIO base (CLINT-like block plus simulation devices).
pub const MMIO_BASE: u32 = 0x4000_0000;
/// Machine time counter, low 32 bits (read-only).
pub const MMIO_MTIME: u32 = MMIO_BASE;
/// Timer compare register.
pub const MMIO_MTIMECMP: u32 = MMIO_BASE + 0x4;
/// Software-interrupt pending bit (write 1 to raise, 0 to clear).
pub const MMIO_MSIP: u32 = MMIO_BASE + 0x8;
/// External-interrupt acknowledge (any write clears the line).
pub const MMIO_EXT_ACK: u32 = MMIO_BASE + 0xC;
/// Debug console (stores are collected by the platform).
pub const MMIO_CONSOLE: u32 = MMIO_BASE + 0x10;
/// Halt the simulation (any write).
pub const MMIO_HALT: u32 = MMIO_BASE + 0x14;
/// Trace marker used by the benchmarks to delimit iterations.
pub const MMIO_TRACE: u32 = MMIO_BASE + 0x18;
/// Inter-processor interrupt doorbell (SMP only): writing
/// `(target_hart << 8) | code` pushes `code` into the target hart's
/// mailbox and raises its software-interrupt line.
pub const MMIO_IPI_SEND: u32 = MMIO_BASE + 0x1C;
/// IPI mailbox head (SMP only): reading pops the oldest pending code for
/// this hart, or 0 when the mailbox is empty.
pub const MMIO_IPI_RECV: u32 = MMIO_BASE + 0x20;
/// One past the last MMIO byte.
pub const MMIO_END: u32 = MMIO_BASE + 0x100;

/// Byte address of context word `word` of task `id`.
///
/// ```
/// use rtosunit::layout::{ctx_word_addr, CTX_REGION_BASE};
/// assert_eq!(ctx_word_addr(0, 0), CTX_REGION_BASE);
/// assert_eq!(ctx_word_addr(1, 0), CTX_REGION_BASE + 128);
/// assert_eq!(ctx_word_addr(1, 30), CTX_REGION_BASE + 128 + 120);
/// ```
pub fn ctx_word_addr(id: u32, word: usize) -> u32 {
    debug_assert!(id < CTX_MAX_TASKS);
    debug_assert!(word < 32);
    CTX_REGION_BASE + (id << CTX_SHIFT) + (word as u32) * 4
}

/// The register saved at context word `word` (`word < 29`), in the fixed
/// order used by both the FSMs and the software save/restore paths.
pub fn ctx_reg(word: usize) -> Reg {
    Reg::CONTEXT_REGS[word]
}

/// The context-word index of register `r`.
///
/// # Panics
///
/// Panics if `r` is not part of a context (`zero`, `gp`, `tp`).
pub fn ctx_index_of(r: Reg) -> usize {
    Reg::CONTEXT_REGS
        .iter()
        .position(|&c| c == r)
        .unwrap_or_else(|| panic!("{r} is not part of a task context"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_region_fits_in_dmem() {
        let end = ctx_word_addr(CTX_MAX_TASKS - 1, 31) + 4;
        assert!(end <= DMEM_BASE + DMEM_SIZE);
    }

    #[test]
    fn chunk_addressing_is_shift_based() {
        // §4.2 (3): address generation is just a shift plus the base.
        for id in 0..CTX_MAX_TASKS {
            assert_eq!(ctx_word_addr(id, 0), CTX_REGION_BASE + id * 128);
        }
    }

    #[test]
    fn reg_index_roundtrip() {
        for w in 0..29 {
            assert_eq!(ctx_index_of(ctx_reg(w)), w);
        }
    }

    #[test]
    #[should_panic(expected = "not part of a task context")]
    fn gp_has_no_slot() {
        ctx_index_of(Reg::Gp);
    }
}
