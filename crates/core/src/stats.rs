//! Context-switch latency instrumentation.
//!
//! The paper measures latency "from interrupt trigger to the execution of
//! the `mret` instruction" and reports jitter as max − min (§6.1). The
//! [`System`](crate::System) records one [`SwitchRecord`] per ISR episode;
//! [`LatencyStats`] aggregates them.

/// One measured interrupt → `mret` episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchRecord {
    /// Cycle at which the interrupt line was asserted.
    pub trigger_cycle: u64,
    /// Cycle at which the core entered the ISR.
    pub entry_cycle: u64,
    /// Cycle at which `mret` finished executing.
    pub mret_cycle: u64,
    /// The `mcause` value of the episode.
    pub cause: u32,
}

impl SwitchRecord {
    /// Total context-switch latency in cycles (the paper's metric).
    pub fn latency(&self) -> u64 {
        self.mret_cycle - self.trigger_cycle
    }

    /// Latency spent before the first ISR instruction.
    pub fn entry_latency(&self) -> u64 {
        self.entry_cycle - self.trigger_cycle
    }
}

/// Aggregate latency statistics over a set of switches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of switches measured.
    pub count: usize,
    /// Minimum observed latency.
    pub min: u64,
    /// Maximum observed latency.
    pub max: u64,
    /// Mean latency (µ in Fig. 9).
    pub mean: f64,
}

impl LatencyStats {
    /// Computes statistics from individual latencies.
    ///
    /// Returns `None` for an empty input.
    pub fn from_latencies(lat: &[u64]) -> Option<LatencyStats> {
        if lat.is_empty() {
            return None;
        }
        let min = *lat.iter().min().expect("non-empty");
        let max = *lat.iter().max().expect("non-empty");
        let mean = lat.iter().sum::<u64>() as f64 / lat.len() as f64;
        Some(LatencyStats {
            count: lat.len(),
            min,
            max,
            mean,
        })
    }

    /// Computes statistics from switch records.
    pub fn from_records(records: &[SwitchRecord]) -> Option<LatencyStats> {
        let lat: Vec<u64> = records.iter().map(SwitchRecord::latency).collect();
        Self::from_latencies(&lat)
    }

    /// Jitter: max − min (Δ in Fig. 9).
    pub fn jitter(&self) -> u64 {
        self.max - self.min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic() {
        let s = LatencyStats::from_latencies(&[70, 70, 70]).expect("some");
        assert_eq!(s.mean, 70.0);
        assert_eq!(s.jitter(), 0);
        let s2 = LatencyStats::from_latencies(&[100, 150, 350]).expect("some");
        assert_eq!(s2.min, 100);
        assert_eq!(s2.max, 350);
        assert_eq!(s2.jitter(), 250);
        assert!((s2.mean - 200.0).abs() < 1e-9);
    }

    #[test]
    fn empty_yields_none() {
        assert_eq!(LatencyStats::from_latencies(&[]), None);
        assert_eq!(LatencyStats::from_records(&[]), None);
    }

    #[test]
    fn record_latency_spans_trigger_to_mret() {
        let r = SwitchRecord {
            trigger_cycle: 100,
            entry_cycle: 105,
            mret_cycle: 170,
            cause: 7,
        };
        assert_eq!(r.latency(), 70);
        assert_eq!(r.entry_latency(), 5);
    }
}
