//! Switch-episode analysis and timeline rendering.
//!
//! Helpers over the [`SwitchRecord`] stream: per-cause
//! latency breakdowns (the cause-dispatch paths of the ISR differ in
//! length, which is where the last cycles of (SLT) jitter come from) and
//! an ASCII timeline for eyeballing a run.

use crate::stats::{LatencyStats, SwitchRecord};
use rvsim_isa::csr;

/// Human-readable name of an interrupt cause.
pub fn cause_name(cause: u32) -> &'static str {
    match cause {
        csr::CAUSE_TIMER => "timer",
        csr::CAUSE_SOFTWARE => "yield",
        csr::CAUSE_EXTERNAL => "external",
        _ => "unknown",
    }
}

/// Splits the records by cause and computes per-cause statistics, in a
/// stable order (timer, yield, external). Causes with no episodes are
/// omitted.
pub fn per_cause_stats(records: &[SwitchRecord]) -> Vec<(&'static str, LatencyStats)> {
    [csr::CAUSE_TIMER, csr::CAUSE_SOFTWARE, csr::CAUSE_EXTERNAL]
        .into_iter()
        .filter_map(|cause| {
            let lat: Vec<u64> = records
                .iter()
                .filter(|r| r.cause == cause)
                .map(SwitchRecord::latency)
                .collect();
            LatencyStats::from_latencies(&lat).map(|s| (cause_name(cause), s))
        })
        .collect()
}

/// Fraction of cycles spent inside ISR episodes over `total_cycles`
/// (the RTOS overhead the paper's acceleration reclaims).
pub fn isr_overhead(records: &[SwitchRecord], total_cycles: u64) -> f64 {
    if total_cycles == 0 {
        return 0.0;
    }
    let busy: u64 = records.iter().map(|r| r.mret_cycle - r.entry_cycle).sum();
    busy as f64 / total_cycles as f64
}

/// Renders an ASCII timeline of `width` columns: `#` where an ISR was
/// executing, `.` where tasks ran, `^` marking trigger points.
pub fn render_timeline(records: &[SwitchRecord], total_cycles: u64, width: usize) -> String {
    assert!(width > 0, "timeline width must be positive");
    if total_cycles == 0 {
        return String::new();
    }
    let mut cols = vec!['.'; width];
    let scale = |cycle: u64| -> usize {
        // Clamp in u128 *before* narrowing: a past-horizon cycle could
        // otherwise wrap the cast and land anywhere in the row.
        let raw = (cycle as u128) * (width as u128) / (total_cycles as u128);
        raw.min((width - 1) as u128) as usize
    };
    for r in records {
        // Clamp both endpoints into the row and keep start <= end, so
        // past-horizon or inverted records degrade instead of panicking.
        let start = scale(r.entry_cycle);
        let end = scale(r.mret_cycle.min(total_cycles)).max(start);
        for c in &mut cols[start..=end] {
            *c = '#';
        }
    }
    for r in records {
        let t = scale(r.trigger_cycle);
        if cols[t] == '.' {
            cols[t] = '^';
        }
    }
    cols.into_iter().collect()
}

/// One line per cause: count, mean, min/max, jitter — the textual
/// equivalent of a Fig. 9 bar with its Δ whisker.
pub fn summary_table(records: &[SwitchRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10} {:>6} {:>8} {:>6} {:>6} {:>7}\n",
        "cause", "count", "mean", "min", "max", "jitter"
    ));
    for (name, s) in per_cause_stats(records) {
        out.push_str(&format!(
            "{:<10} {:>6} {:>8.1} {:>6} {:>6} {:>7}\n",
            name,
            s.count,
            s.mean,
            s.min,
            s.max,
            s.jitter()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trigger: u64, entry: u64, mret: u64, cause: u32) -> SwitchRecord {
        SwitchRecord {
            trigger_cycle: trigger,
            entry_cycle: entry,
            mret_cycle: mret,
            cause,
        }
    }

    #[test]
    fn per_cause_separates_distributions() {
        let records = vec![
            rec(0, 4, 70, csr::CAUSE_SOFTWARE),
            rec(100, 104, 170, csr::CAUSE_SOFTWARE),
            rec(200, 204, 400, csr::CAUSE_TIMER),
        ];
        let stats = per_cause_stats(&records);
        assert_eq!(stats.len(), 2);
        assert_eq!(stats[0].0, "timer");
        assert_eq!(stats[0].1.count, 1);
        assert_eq!(stats[1].0, "yield");
        assert_eq!(stats[1].1.count, 2);
        assert_eq!(stats[1].1.min, 70);
    }

    #[test]
    fn overhead_fraction() {
        let records = vec![
            rec(0, 10, 60, csr::CAUSE_TIMER),
            rec(100, 110, 160, csr::CAUSE_TIMER),
        ];
        let ov = isr_overhead(&records, 1000);
        assert!((ov - 0.1).abs() < 1e-9);
        assert_eq!(isr_overhead(&records, 0), 0.0);
    }

    #[test]
    fn timeline_marks_isr_and_triggers() {
        let records = vec![rec(100, 200, 400, csr::CAUSE_TIMER)];
        let t = render_timeline(&records, 1000, 10);
        assert_eq!(t.len(), 10);
        assert_eq!(&t[2..=4], "###");
        assert_eq!(t.as_bytes()[1], b'^');
        assert!(t.starts_with('.'));
    }

    #[test]
    fn timeline_tolerates_past_horizon_records() {
        // Regression: an episode past the analysis horizon used to make
        // the slice range start > end and panic.
        let records = vec![
            rec(900, 1500, 1600, csr::CAUSE_TIMER),
            rec(0, u64::MAX - 7, u64::MAX, csr::CAUSE_TIMER),
        ];
        let t = render_timeline(&records, 1000, 10);
        assert_eq!(t.len(), 10);
        assert_eq!(t.as_bytes()[9], b'#', "clamped to the last column");
        // Inverted record (mret before entry) degrades rather than panics.
        let bad = vec![rec(0, 700, 300, csr::CAUSE_TIMER)];
        assert_eq!(render_timeline(&bad, 1000, 10).len(), 10);
    }

    #[test]
    fn summary_table_lists_causes() {
        let records = vec![rec(0, 4, 70, csr::CAUSE_EXTERNAL)];
        let table = summary_table(&records);
        assert!(table.contains("external"));
        assert!(table.contains("70"));
    }

    #[test]
    fn cause_names() {
        assert_eq!(cause_name(csr::CAUSE_TIMER), "timer");
        assert_eq!(cause_name(0xdead), "unknown");
    }
}
