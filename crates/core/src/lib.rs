//! **RTOSUnit** — a configurable hardware acceleration unit for RTOS
//! scheduling and context switching, reproduced from:
//!
//! > Scheck, Mürmann, Koch. *Co-Exploration of RISC-V Processor
//! > Microarchitectures and FreeRTOS Extensions for Lower Context-Switch
//! > Latency.* ASPLOS '26.
//!
//! The unit integrates with the cycle-stepped cores of `rvsim-cores`
//! through the [`Coprocessor`](rvsim_cores::Coprocessor) trait and
//! accelerates, depending on its [`RtosUnitConfig`]:
//!
//! * **(S)** context **S**toring — an alternate register bank is switched
//!   in on interrupt entry while a store FSM drains the old bank to a
//!   fixed context region in memory using idle data-port cycles (§4.2),
//! * **(L)** context **L**oading — a restore FSM loads the next task's
//!   context in the background and `mret` stalls until it completes (§4.3),
//! * **(T)** **T**ask scheduling — the FreeRTOS ready and delay lists move
//!   into hardware with iterative sorting (§4.4),
//! * **(D)** dirty bits, **(O)** load omission, **(P)** preloading —
//!   optional mean-latency optimisations (§4.5–§4.7).
//!
//! The crate also provides the re-implemented comparison design
//! [`Cv32rtUnit`] (Balas et al., CV32RT), the [`Platform`] (memory, MMIO,
//! timer, shared-port arbitration) and the [`System`] composition that the
//! benchmarks drive.
//!
//! # Example
//!
//! ```
//! use rtosunit::{Preset, RtosUnitConfig};
//!
//! let cfg = RtosUnitConfig::from_preset(Preset::Slt).expect("SLT has a unit config");
//! assert!(cfg.store && cfg.load && cfg.sched);
//! assert!(cfg.validate().is_ok());
//! ```

pub mod config;
pub mod ctxqueue;
pub mod cv32rt;
pub mod events;
pub mod hist;
pub mod layout;
pub mod platform;
pub mod scheduler;
pub mod smp;
pub mod stats;
pub mod system;
pub mod trace;
pub mod unit;
pub mod waterfall;

pub use config::{ConfigError, Preset, RtosUnitConfig};
pub use cv32rt::Cv32rtUnit;
pub use events::{EventTrace, PhaseCode, TraceEvent, TraceMark, TraceSink};
pub use hist::{LatencyHistogram, SloCounter, SwitchMetrics, REPORTED_PERCENTILES};
pub use platform::{Mmio, Platform};
pub use rvsim_mem::BusMasterStats;
pub use rvsim_snapshot as snap;
pub use scheduler::{HwScheduler, SchedEntry};
pub use smp::{SmpShared, SmpSystem};
pub use stats::{LatencyStats, SwitchRecord};
pub use system::System;
pub use unit::{RtosUnit, UnitStats};
pub use waterfall::EpisodeWaterfall;
