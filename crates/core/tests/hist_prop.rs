//! Property tests for the streaming latency histogram (`rtosunit::hist`):
//! merge is associative/commutative, percentiles stay within one bucket of
//! an exact oracle, and recorded counts are conserved under merge.
//!
//! The deterministic (Rng64-seeded) versions of these properties run
//! unconditionally inside `hist.rs`; this file re-states them over
//! proptest-generated inputs for wider coverage.

#![cfg(feature = "proptest")]
// Default-off: requires the external `proptest` crate (network). See the
// crate's Cargo.toml for how to enable.

use proptest::collection::vec;
use proptest::prelude::*;
use rtosunit::hist::REPORTED_PERCENTILES;
use rtosunit::LatencyHistogram;

fn hist_of(samples: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

proptest! {
    #[test]
    fn merge_is_commutative(a in vec(any::<u64>(), 0..200), b in vec(any::<u64>(), 0..200)) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn merge_is_associative(
        a in vec(any::<u64>(), 0..150),
        b in vec(any::<u64>(), 0..150),
        c in vec(any::<u64>(), 0..150),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn merge_conserves_counts(parts in vec(vec(any::<u64>(), 0..100), 1..8)) {
        let mut acc = LatencyHistogram::new();
        for part in &parts {
            acc.merge(&hist_of(part));
        }
        let expected: usize = parts.iter().map(Vec::len).sum();
        prop_assert_eq!(acc.count(), expected as u64);
    }

    #[test]
    fn percentiles_stay_within_one_bucket_of_the_oracle(
        mut samples in vec(0u64..1 << 40, 1..500),
    ) {
        let h = hist_of(&samples);
        samples.sort_unstable();
        for (_, p) in REPORTED_PERCENTILES {
            let rank = ((p / 100.0 * samples.len() as f64).ceil() as usize)
                .clamp(1, samples.len());
            let exact = samples[rank - 1];
            let reported = h.percentile(p).expect("non-empty");
            // Upper-bound convention, clamped to the recorded max: the
            // report can only exceed the oracle by the bucket width
            // (≤ exact/31), never undershoot it.
            prop_assert!(reported >= exact);
            prop_assert!(
                reported - exact <= exact / 31 + 1,
                "p{}: {} vs exact {}", p, reported, exact
            );
        }
    }
}
