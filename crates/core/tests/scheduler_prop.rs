//! Property tests: the hardware scheduler against an executable
//! reference model of FreeRTOS's scheduling rules (Fig. 2 / Fig. 5).

#![cfg(feature = "proptest")]
// Default-off: requires the external `proptest` crate (network). See the
// crate's Cargo.toml for how to enable.

use proptest::prelude::*;
use rtosunit::HwScheduler;

/// Straightforward reference model: explicit priority buckets.
#[derive(Debug, Default, Clone)]
struct RefSched {
    /// FIFO per priority; index 0 popped first.
    ready: Vec<Vec<u8>>, // indexed by priority 0..=255 (sparse via sort)
    delay: Vec<(u8, u8, u32)>, // (id, prio, remaining)
}

impl RefSched {
    fn new() -> RefSched {
        RefSched {
            ready: vec![Vec::new(); 256],
            delay: Vec::new(),
        }
    }

    fn add_ready(&mut self, id: u8, prio: u8) {
        self.ready[prio as usize].push(id);
    }

    fn add_delay(&mut self, id: u8, prio: u8, ticks: u32) {
        self.delay.push((id, prio, ticks.max(1)));
    }

    fn rm_task(&mut self, id: u8) {
        for q in &mut self.ready {
            q.retain(|&t| t != id);
        }
        self.delay.retain(|&(t, _, _)| t != id);
    }

    fn pop_rotate(&mut self) -> Option<u8> {
        let q = self.ready.iter_mut().rev().find(|q| !q.is_empty())?;
        let head = q.remove(0);
        q.push(head);
        Some(head)
    }

    fn tick(&mut self) -> Vec<u8> {
        let mut woken = Vec::new();
        let mut i = 0;
        while i < self.delay.len() {
            self.delay[i].2 -= 1;
            if self.delay[i].2 == 0 {
                let (id, prio, _) = self.delay.remove(i);
                self.ready[prio as usize].push(id);
                woken.push(id);
            } else {
                i += 1;
            }
        }
        woken
    }

    fn counts(&self) -> (usize, usize) {
        (self.ready.iter().map(Vec::len).sum(), self.delay.len())
    }
}

#[derive(Debug, Clone)]
enum SchedOp {
    AddReady(u8, u8),
    AddDelay(u8, u8, u32),
    RmTask(u8),
    PopRotate,
    Tick,
}

fn arb_op() -> impl Strategy<Value = SchedOp> {
    prop_oneof![
        (0u8..32, 0u8..8).prop_map(|(id, p)| SchedOp::AddReady(id, p)),
        (0u8..32, 0u8..8, 1u32..6).prop_map(|(id, p, t)| SchedOp::AddDelay(id, p, t)),
        (0u8..32).prop_map(SchedOp::RmTask),
        Just(SchedOp::PopRotate),
        Just(SchedOp::Tick),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn hw_scheduler_matches_reference(ops in proptest::collection::vec(arb_op(), 1..60)) {
        let mut hw = HwScheduler::new(31);
        let mut reference = RefSched::new();
        // Unique-id discipline as in the kernel: a task id is in at most
        // one list at a time. Track membership to skip invalid inserts.
        let mut present = [false; 32];
        for op in ops {
            match op {
                SchedOp::AddReady(id, prio) => {
                    if !present[id as usize] {
                        prop_assert!(hw.add_ready(id, prio));
                        reference.add_ready(id, prio);
                        present[id as usize] = true;
                    }
                }
                SchedOp::AddDelay(id, prio, t) => {
                    if !present[id as usize] {
                        prop_assert!(hw.add_delay(id, prio, t));
                        reference.add_delay(id, prio, t);
                        present[id as usize] = true;
                    }
                }
                SchedOp::RmTask(id) => {
                    hw.rm_task(id);
                    reference.rm_task(id);
                    present[id as usize] = false;
                }
                SchedOp::PopRotate => {
                    prop_assert_eq!(hw.pop_rotate(), reference.pop_rotate());
                }
                SchedOp::Tick => {
                    let mut got = hw.tick();
                    let mut want = reference.tick();
                    got.sort_unstable();
                    want.sort_unstable();
                    prop_assert_eq!(got, want, "tick woke different tasks");
                }
            }
            let (r, d) = reference.counts();
            prop_assert_eq!(hw.ready_len(), r);
            prop_assert_eq!(hw.delay_len(), d);
            // Head must always agree after every operation.
            let hw_head = hw.head().map(|(id, _)| id);
            let ref_head = {
                let mut clone = reference.clone();
                clone.pop_rotate()
            };
            prop_assert_eq!(hw_head, ref_head, "heads diverged");
        }
    }

    #[test]
    fn ready_snapshot_is_always_sorted_and_stable(
        adds in proptest::collection::vec((0u8..31, 0u8..8), 1..31)
    ) {
        let mut hw = HwScheduler::new(31);
        let mut inserted = std::collections::HashSet::new();
        for (id, prio) in adds {
            if inserted.insert(id) {
                hw.add_ready(id, prio);
            }
        }
        let snap = hw.ready_snapshot();
        for w in snap.windows(2) {
            prop_assert!(
                w[0].prio > w[1].prio || (w[0].prio == w[1].prio && w[0].seq < w[1].seq),
                "order violated: {:?}",
                snap
            );
        }
    }

    #[test]
    fn sort_busy_is_bounded_by_list_length(
        adds in proptest::collection::vec((0u8..31, 0u8..8), 1..31)
    ) {
        let mut hw = HwScheduler::new(31);
        let mut seen = std::collections::HashSet::new();
        for (id, prio) in adds {
            if seen.insert(id) {
                hw.add_ready(id, prio);
                prop_assert!(hw.sort_busy() as usize <= hw.ready_len().max(hw.delay_len()));
            }
        }
    }
}
