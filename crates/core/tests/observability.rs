//! End-to-end observability: a phase-instrumented kernel on a live
//! simulated system must produce (a) typed phase marks the waterfall can
//! decode, (b) a complete typed event trace, and (c) zero perturbation
//! of the simulation itself when tracing is enabled.

use freertos_lite::KernelBuilder;
use rtosunit::waterfall;
use rtosunit::{PhaseCode, Preset, System};
use rvsim_cores::CoreKind;

fn run_system(kind: CoreKind, preset: Preset, trace_phases: bool, tracing: bool) -> System {
    let mut k = KernelBuilder::new(preset);
    k.tick_period(3000);
    k.trace_phases(trace_phases);
    k.task("a", 5, |t| {
        t.compute(10);
        t.yield_now();
    });
    k.task("b", 5, |t| {
        t.compute(14);
        t.yield_now();
    });
    let img = k.build().expect("kernel builds");
    let mut sys = System::new(kind, preset);
    img.install(&mut sys);
    if tracing {
        sys.enable_tracing(1 << 20);
    }
    sys.run(120_000);
    sys
}

#[test]
fn waterfall_phases_partition_every_episode_exactly() {
    // The acceptance bar: for real kernel runs, the per-episode phase
    // durations must sum to `SwitchRecord::latency()` *exactly* — no
    // cycle may be lost or double-counted by the decomposition.
    for (kind, preset) in [
        (CoreKind::Cv32e40p, Preset::Vanilla),
        (CoreKind::Cv32e40p, Preset::Slt),
        (CoreKind::Cva6, Preset::Slt),
        (CoreKind::NaxRiscv, Preset::T),
    ] {
        let sys = run_system(kind, preset, true, false);
        let episodes = waterfall::decompose(sys.records(), &sys.platform.mmio.trace_marks);
        assert!(
            episodes.len() > 10,
            "{kind:?}/{preset}: too few episodes ({})",
            episodes.len()
        );
        for e in &episodes {
            assert_eq!(
                e.phases.iter().sum::<u64>(),
                e.record.latency(),
                "{kind:?}/{preset}: phases must partition the episode: {e:?}"
            );
            let b = e.boundaries();
            assert!(b.windows(2).all(|p| p[0] <= p[1]), "boundaries {b:?}");
        }
        // The marks were really decoded: the scheduling phase is bounded
        // by a SchedDone mark, so a nonzero restore phase must appear.
        assert!(
            episodes.iter().any(|e| e.phases[3] > 0),
            "{kind:?}/{preset}: no episode shows a restore phase"
        );
    }
}

#[test]
fn instrumented_kernel_emits_both_phase_codes() {
    let sys = run_system(CoreKind::Cv32e40p, Preset::Vanilla, true, false);
    for code in PhaseCode::ALL {
        assert!(
            sys.platform
                .mmio
                .trace_marks
                .iter()
                .any(|m| m.phase() == Some(code)),
            "missing {code:?} marks"
        );
    }
    // And without instrumentation, no phase marks at all.
    let plain = run_system(CoreKind::Cv32e40p, Preset::Vanilla, false, false);
    assert!(plain
        .platform
        .mmio
        .trace_marks
        .iter()
        .all(|m| m.phase().is_none()));
}

#[test]
fn event_trace_captures_the_switch_vocabulary() {
    // A cached core with an (SLT) unit exercises every event source.
    let sys = run_system(CoreKind::Cva6, Preset::Slt, true, true);
    let trace = sys.platform.trace().expect("tracing enabled");
    assert_eq!(trace.dropped(), 0, "ring too small for the run");
    for kind in [
        "irq_raised",
        "isr_entry",
        "phase",
        "mret",
        "cache",
        "unit_op",
    ] {
        assert!(
            trace.of_kind(kind).count() > 0,
            "no `{kind}` events in the trace"
        );
    }
    // Edges precede entries, entries precede mrets — spot-check ordering
    // via the first of each.
    let first = |kind: &str| trace.of_kind(kind).next().expect("present").0;
    assert!(first("irq_raised") <= first("isr_entry"));
    assert!(first("isr_entry") < first("mret"));
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    let traced = run_system(CoreKind::Cv32e40p, Preset::Slt, true, true);
    let silent = run_system(CoreKind::Cv32e40p, Preset::Slt, true, false);
    assert_eq!(traced.records(), silent.records());
    assert_eq!(traced.platform.cycle(), silent.platform.cycle());
    assert_eq!(traced.core.retired(), silent.core.retired());
    assert!(silent.platform.trace().is_none(), "tracing defaults off");
}
