//! Property tests for the switch-episode analyses: per-cause statistics,
//! ISR overhead, timeline rendering and waterfall reconstruction must
//! tolerate overlapping, out-of-order and past-horizon records without
//! panicking or losing cycles.

#![cfg(feature = "proptest")]
// Default-off: requires the external `proptest` crate (network). See the
// crate's Cargo.toml for how to enable.

use proptest::prelude::*;
use rtosunit::waterfall;
use rtosunit::{trace, PhaseCode, SwitchRecord, TraceMark};
use rvsim_isa::csr;

/// Well-formed episodes (`trigger <= entry <= mret`, as the simulator
/// guarantees) at arbitrary positions — including far past any analysis
/// horizon — so consecutive records may overlap arbitrarily.
fn arb_record() -> impl Strategy<Value = SwitchRecord> {
    (
        0u64..2_000_000,
        0u64..500,
        1u64..5_000,
        prop_oneof![
            Just(csr::CAUSE_TIMER),
            Just(csr::CAUSE_SOFTWARE),
            Just(csr::CAUSE_EXTERNAL),
            Just(0xdead_u32),
        ],
    )
        .prop_map(|(trigger, entry_delay, isr_len, cause)| SwitchRecord {
            trigger_cycle: trigger,
            entry_cycle: trigger + entry_delay,
            mret_cycle: trigger + entry_delay + isr_len,
            cause,
        })
}

/// Trace marks anywhere on the timeline: kernel phase codes mixed with
/// plain benchmark marks, unsorted and with duplicates.
fn arb_marks() -> impl Strategy<Value = Vec<TraceMark>> {
    proptest::collection::vec(
        (
            0u64..2_200_000,
            prop_oneof![
                Just(PhaseCode::SaveDone.encode()),
                Just(PhaseCode::SchedDone.encode()),
                0u32..100,
            ],
        )
            .prop_map(|(cycle, code)| TraceMark { cycle, code }),
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn per_cause_stats_are_internally_consistent(
        records in proptest::collection::vec(arb_record(), 0..50)
    ) {
        let stats = trace::per_cause_stats(&records);
        let known = records
            .iter()
            .filter(|r| trace::cause_name(r.cause) != "unknown")
            .count();
        prop_assert_eq!(stats.iter().map(|(_, s)| s.count).sum::<usize>(), known);
        for (name, s) in stats {
            prop_assert!(s.count > 0, "{} listed with no episodes", name);
            prop_assert!(s.min <= s.max);
            prop_assert!(s.mean >= s.min as f64 && s.mean <= s.max as f64);
            prop_assert_eq!(s.jitter(), s.max - s.min);
        }
    }

    #[test]
    fn isr_overhead_is_finite_and_non_negative(
        records in proptest::collection::vec(arb_record(), 0..50),
        total in 1u64..3_000_000,
    ) {
        let ov = trace::isr_overhead(&records, total);
        prop_assert!(ov.is_finite());
        prop_assert!(ov >= 0.0);
        prop_assert_eq!(trace::isr_overhead(&records, 0), 0.0);
    }

    #[test]
    fn timeline_never_panics_and_keeps_its_width(
        records in proptest::collection::vec(arb_record(), 0..50),
        total in 1u64..1_000_000,
        width in 1usize..200,
    ) {
        // Records can lie entirely past `total` — the regression case.
        let t = trace::render_timeline(&records, total, width);
        prop_assert_eq!(t.chars().count(), width);
        prop_assert!(t.chars().all(|c| matches!(c, '.' | '#' | '^')));
    }

    #[test]
    fn waterfall_partitions_every_episode(
        records in proptest::collection::vec(arb_record(), 0..50),
        marks in arb_marks(),
    ) {
        let episodes = waterfall::decompose(&records, &marks);
        prop_assert_eq!(episodes.len(), records.len());
        for e in &episodes {
            prop_assert_eq!(
                e.phases.iter().sum::<u64>(),
                e.record.latency(),
                "phases must sum to the latency: {:?}", e
            );
            let b = e.boundaries();
            prop_assert!(b.windows(2).all(|p| p[0] <= p[1]), "boundaries {:?}", b);
            prop_assert_eq!(b[0], e.record.trigger_cycle);
            prop_assert_eq!(b[4], e.record.mret_cycle);
        }
        // Aggregation must cover all phases present.
        let stats = waterfall::phase_stats(&episodes);
        if !episodes.is_empty() {
            prop_assert_eq!(stats.len(), waterfall::PHASE_COUNT);
        }
    }
}
