//! Behavioural tests for the RTOSUnit at the System level: configuration
//! semantics that only show up when the unit, core and kernel interact
//! over thousands of cycles.

use freertos_lite::KernelBuilder;
use rtosunit::{Preset, System};
use rvsim_cores::CoreKind;

fn yield_pair(preset: Preset, kind: CoreKind, cycles: u64) -> System {
    let mut k = KernelBuilder::new(preset);
    k.tick_period(3000);
    k.task("a", 5, |t| {
        t.compute(10);
        t.yield_now();
    });
    k.task("b", 5, |t| {
        t.compute(10);
        t.yield_now();
    });
    let img = k.build().expect("builds");
    let mut sys = System::new(kind, preset);
    img.install(&mut sys);
    sys.run(cycles);
    sys
}

#[test]
fn store_traffic_scales_with_dirty_bits() {
    // (SDLO) stores only dirty registers: fewer words per interrupt than
    // the full 31 of (SL).
    let full = yield_pair(Preset::Sl, CoreKind::Cv32e40p, 200_000);
    let dirty = yield_pair(Preset::Sdlo, CoreKind::Cv32e40p, 200_000);
    let f = full.unit_stats().expect("unit");
    let d = dirty.unit_stats().expect("unit");
    let full_rate = f.store_words as f64 / f.interrupts as f64;
    let dirty_rate = d.store_words as f64 / d.interrupts as f64;
    assert!(
        (30.9..=31.1).contains(&full_rate),
        "SL must store 31 words: {full_rate}"
    );
    assert!(
        dirty_rate < 25.0,
        "dirty bits should cut store traffic: {dirty_rate} words/interrupt"
    );
}

#[test]
fn preload_traffic_exists_only_with_p() {
    let slt = yield_pair(Preset::Slt, CoreKind::Cv32e40p, 200_000);
    assert_eq!(slt.unit_stats().expect("unit").preload_words, 0);
    let split = yield_pair(Preset::Split, CoreKind::Cv32e40p, 200_000);
    assert!(split.unit_stats().expect("unit").preload_words > 0);
}

#[test]
fn t_only_never_touches_the_port() {
    // (T) has no context FSMs: the unit must make zero memory accesses.
    let sys = yield_pair(Preset::T, CoreKind::Cv32e40p, 200_000);
    let u = sys.unit_stats().expect("unit");
    assert_eq!(u.store_words + u.load_words + u.preload_words, 0);
    assert_eq!(
        sys.platform.port_occupancy().2,
        0,
        "no unit port cycles in (T)"
    );
    assert!(u.custom_instrs > 10, "GET_HW_SCHED must run");
}

#[test]
fn load_omission_fires_when_a_task_is_reselected() {
    // Single user task + idle: most timer ticks re-select the same task.
    let mut k = KernelBuilder::new(Preset::Sdlo);
    k.tick_period(1500);
    k.task("solo", 5, |t| {
        t.compute(40);
    });
    let img = k.build().expect("builds");
    let mut sys = System::new(CoreKind::Cv32e40p, Preset::Sdlo);
    img.install(&mut sys);
    sys.run(200_000);
    let u = sys.unit_stats().expect("unit");
    assert!(
        u.omitted_loads as f64 > u.interrupts as f64 * 0.8,
        "reselecting the same task should omit loads: {u:?}"
    );
}

#[test]
fn switch_latency_breaks_down_into_entry_and_isr() {
    let sys = yield_pair(Preset::Slt, CoreKind::Cv32e40p, 150_000);
    // Voluntary yields are taken promptly; timer triggers may land while
    // another ISR runs and legitimately wait it out.
    for r in sys
        .records()
        .iter()
        .skip(2)
        .filter(|r| r.cause == rvsim_isa::csr::CAUSE_SOFTWARE)
    {
        let entry = r.entry_latency();
        assert!(entry <= 16, "entry wait too long for a yield: {r:?}");
        assert!(r.latency() >= entry + 40, "ISR phase missing: {r:?}");
    }
}

#[test]
fn trace_module_summarises_a_real_run() {
    use rtosunit::trace;
    // A sparse workload (one computing task, timer-only switches) so the
    // timeline shows both task time and ISR time.
    let mut k = KernelBuilder::new(Preset::Slt);
    k.tick_period(1500);
    k.task("solo", 5, |t| t.compute(60));
    let img = k.build().expect("builds");
    let mut sys = System::new(CoreKind::Cv32e40p, Preset::Slt);
    img.install(&mut sys);
    sys.run(150_000);
    let per_cause = trace::per_cause_stats(sys.records());
    assert!(!per_cause.is_empty());
    let overhead = trace::isr_overhead(sys.records(), sys.platform.cycle());
    assert!(
        overhead > 0.01 && overhead < 0.5,
        "ISR overhead fraction out of range: {overhead}"
    );
    let line = trace::render_timeline(sys.records(), sys.platform.cycle(), 120);
    assert_eq!(line.len(), 120);
    assert!(line.contains('#') && line.contains('.'));
}

#[test]
fn rtos_overhead_shrinks_with_acceleration() {
    use rtosunit::trace;
    let vanilla = yield_pair(Preset::Vanilla, CoreKind::Cv32e40p, 200_000);
    let slt = yield_pair(Preset::Slt, CoreKind::Cv32e40p, 200_000);
    let ov_v = trace::isr_overhead(vanilla.records(), vanilla.platform.cycle());
    let ov_s = trace::isr_overhead(slt.records(), slt.platform.cycle());
    // Careful: faster switches mean *more* switches fit in the budget, so
    // compare overhead per switch instead of per run.
    let per_v = ov_v * vanilla.platform.cycle() as f64 / vanilla.records().len() as f64;
    let per_s = ov_s * slt.platform.cycle() as f64 / slt.records().len() as f64;
    assert!(
        per_s < per_v * 0.5,
        "per-switch ISR occupancy must halve: vanilla {per_v:.1}, slt {per_s:.1}"
    );
}

#[test]
fn cva6_and_nax_units_work_with_their_memory_hierarchies() {
    for kind in [CoreKind::Cva6, CoreKind::NaxRiscv] {
        let sys = yield_pair(Preset::Slt, kind, 200_000);
        let u = sys.unit_stats().expect("unit");
        assert!(u.interrupts > 20, "{kind}: {u:?}");
        assert_eq!(u.store_words, u.interrupts * 31, "{kind}: store accounting");
        // The cache must have seen traffic on cached platforms.
        let (hits, misses) = sys.platform.dcache().expect("cache").stats();
        assert!(hits + misses > 0, "{kind}: cache untouched");
    }
}
