//! Delta-debugging shrink for failing lockstep episodes and oracle
//! scenarios.
//!
//! The generator's item-index branch targets make [`ProgramSpec`]s closed
//! under deletion: removing any subset of items still emits a valid
//! program (dangling targets clamp to the final `ebreak`). Shrinking is
//! therefore plain ddmin over the op list — remove chunks, keep the
//! removal when the episode still diverges, halve the chunk size — and a
//! final pass dropping interrupt-plan events one at a time. The result is
//! the minimal counterexample that CI failures arrive as.
//!
//! Scenario specs are likewise deletion-closed: tasks, script steps and
//! external interrupts can be removed independently (task ids are
//! positional, scripts reference only semaphores), so
//! [`shrink_scenario`] applies the same strategy across those three axes.

use crate::lockstep::{run_episode, EpisodeSpec};
use crate::scenario::{run_scenario, ScenarioSpec};
use rvsim_isa::progen::ProgramSpec;

/// Upper bound on candidate episodes one shrink may run (keeps a
/// pathological failure from stalling the fuzz loop).
const MAX_CANDIDATES: usize = 3000;

/// Shrinks a failing episode to a (locally) minimal one that still fails.
/// The input must fail; the output is guaranteed to fail.
///
/// # Panics
///
/// Panics if `ep` does not fail — shrinking a passing episode is a
/// harness bug.
pub fn shrink_episode(ep: &EpisodeSpec) -> EpisodeSpec {
    assert!(
        run_episode(ep).is_err(),
        "shrink_episode called on a passing episode"
    );
    let mut budget = MAX_CANDIDATES;
    let mut fails = |cand: &EpisodeSpec| -> bool {
        if budget == 0 {
            return false;
        }
        budget -= 1;
        run_episode(cand).is_err()
    };

    let mut cur = ep.clone();

    // ddmin over the program items.
    let mut chunk = (cur.spec.ops.len() / 2).max(1);
    loop {
        let mut reduced = false;
        let mut start = 0;
        while start < cur.spec.ops.len() {
            let end = (start + chunk).min(cur.spec.ops.len());
            let mut ops = cur.spec.ops.clone();
            ops.drain(start..end);
            if ops.is_empty() {
                start = end;
                continue;
            }
            let cand = EpisodeSpec {
                spec: ProgramSpec::from_parts(cur.spec.cfg, ops),
                ..cur.clone()
            };
            if fails(&cand) {
                cur = cand;
                reduced = true;
                // The next chunk slid into `start`; retry the same window.
            } else {
                start = end;
            }
        }
        if chunk == 1 && !reduced {
            break;
        }
        if !reduced {
            chunk = (chunk / 2).max(1);
        }
    }

    // Drop interrupt events that are not needed for the failure.
    let mut i = 0;
    while i < cur.irqs.len() {
        let mut cand = cur.clone();
        cand.irqs.remove(i);
        if fails(&cand) {
            cur = cand;
        } else {
            i += 1;
        }
    }

    cur
}

/// Shrinks a failing oracle scenario to a (locally) minimal one that
/// still fails: drops whole tasks, then ddmin over each surviving task's
/// script, then drops external interrupts.
///
/// # Panics
///
/// Panics if `spec` does not fail.
pub fn shrink_scenario(spec: &ScenarioSpec) -> ScenarioSpec {
    assert!(
        run_scenario(spec).is_err(),
        "shrink_scenario called on a passing scenario"
    );
    let mut budget = 400usize; // scenario runs are ~ms each
    shrink_scenario_with(spec, |cand| {
        if budget == 0 {
            return false;
        }
        budget -= 1;
        run_scenario(cand).is_err()
    })
}

/// The shrink strategy of [`shrink_scenario`] against an arbitrary
/// failure predicate (`true` = still fails, keep the reduction).
pub fn shrink_scenario_with(
    spec: &ScenarioSpec,
    mut fails: impl FnMut(&ScenarioSpec) -> bool,
) -> ScenarioSpec {
    let mut cur = spec.clone();

    // Drop whole tasks (at least one must remain).
    let mut i = 0;
    while i < cur.tasks.len() && cur.tasks.len() > 1 {
        let mut cand = cur.clone();
        cand.tasks.remove(i);
        if fails(&cand) {
            cur = cand;
        } else {
            i += 1;
        }
    }

    // ddmin over each task's script (scripts may not become empty: the
    // oracle needs at least one mark per loop iteration).
    for t in 0..cur.tasks.len() {
        let mut chunk = (cur.tasks[t].script.len() / 2).max(1);
        loop {
            let mut reduced = false;
            let mut start = 0;
            while start < cur.tasks[t].script.len() {
                let end = (start + chunk).min(cur.tasks[t].script.len());
                let mut cand = cur.clone();
                cand.tasks[t].script.drain(start..end);
                if cand.tasks[t].script.is_empty() {
                    start = end;
                    continue;
                }
                if fails(&cand) {
                    cur = cand;
                    reduced = true;
                } else {
                    start = end;
                }
            }
            if chunk == 1 && !reduced {
                break;
            }
            if !reduced {
                chunk = (chunk / 2).max(1);
            }
        }
    }

    // Drop external interrupts.
    let mut i = 0;
    while i < cur.ext_irqs.len() {
        let mut cand = cur.clone();
        cand.ext_irqs.remove(i);
        if cand.ext_irqs.is_empty() {
            cand.ext_sem = None;
        }
        if fails(&cand) {
            cur = cand;
        } else {
            i += 1;
        }
    }

    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockstep::{episode_for_seed, Fault};
    use rvsim_cores::CoreKind;
    use rvsim_isa::instr::AluOp;
    use rvsim_isa::progen::{GenConfig, GenOp};

    #[test]
    fn shrinks_injected_fault_to_a_minimal_sltu_witness() {
        let cfg = GenConfig {
            len: 200,
            ..GenConfig::default()
        };
        let failing = (0..20).find_map(|seed| {
            let mut ep = episode_for_seed(CoreKind::Cv32e40p, seed, cfg);
            ep.fault = Some(Fault::GoldenSltuFlip);
            run_episode(&ep).is_err().then_some(ep)
        });
        let ep = failing.expect("no failing seed found");
        let small = shrink_episode(&ep);
        assert!(run_episode(&small).is_err(), "shrunk episode must fail");
        assert!(
            small.spec.ops.len() < ep.spec.ops.len() / 4,
            "shrink barely reduced: {} -> {}",
            ep.spec.ops.len(),
            small.spec.ops.len()
        );
        // The witness must still contain an unsigned set-less-than.
        assert!(
            small.spec.ops.iter().any(|op| matches!(
                op,
                GenOp::Alu {
                    op: AluOp::Sltu,
                    ..
                } | GenOp::AluImm {
                    op: AluOp::Sltu,
                    ..
                }
            )),
            "minimal counterexample lost the sltu: {:?}",
            small.spec.ops
        );
    }

    #[test]
    fn scenario_shrink_finds_the_guilty_step() {
        use crate::scenario::{scenario_for_seed, Action};
        use rtosunit::Preset;

        // Find a generated scenario containing a SemGive and shrink it
        // against a synthetic predicate ("fails while any SemGive
        // survives") — exercises all three reduction axes without
        // needing a real kernel bug.
        let spec = (0..50)
            .map(|seed| scenario_for_seed(CoreKind::Cva6, Preset::Slt, seed))
            .find(|s| {
                s.tasks
                    .iter()
                    .any(|t| t.script.iter().any(|a| matches!(a, Action::SemGive(_))))
                    && s.tasks.len() > 1
            })
            .expect("some scenario contains a give");
        let has_give = |s: &crate::scenario::ScenarioSpec| {
            s.tasks
                .iter()
                .any(|t| t.script.iter().any(|a| matches!(a, Action::SemGive(_))))
        };
        let small = crate::shrink::shrink_scenario_with(&spec, has_give);
        assert!(has_give(&small), "shrink lost the failure");
        assert_eq!(small.tasks.len(), 1, "only the giving task survives");
        assert_eq!(small.tasks[0].script.len(), 1, "only the give survives");
        assert!(small.ext_irqs.is_empty(), "irqs dropped");
    }
}
