//! Randomized kernel scenarios for the scheduler oracle.
//!
//! A scenario is a small multitasking workload drawn from a seed: a handful
//! of tasks with *distinct* priorities (so every scheduling decision has a
//! unique correct answer), each running a short cyclic script of syscalls
//! (`busy_work`, `delay`, semaphore take/give, `yield`), plus an optional
//! external-interrupt schedule feeding a deferred `sem_give` in the ISR.
//!
//! The generated image is built with [`KernelBuilder::probe`] on, so the
//! kernel announces every scheduler-relevant transition on the TRACE
//! register from inside its critical sections, and each task marks the top
//! of every script step ([`probe::task_mark`]). [`run_scenario`] executes
//! the image on the full timing simulator and feeds the resulting event
//! trace to the host-side model in [`crate::oracle`].

use freertos_lite::{probe, KernelBuilder};
use rtosunit::{Preset, System};
use rvsim_cores::CoreKind;
use rvsim_isa::rng::Rng64;

use crate::oracle::{self, OracleStats, Violation};

/// The ISR variants the oracle exercises: software-heaviest to
/// hardware-heaviest, skipping pure latency ablations. The §7 hw-sync
/// preset is excluded — its semaphore paths bypass the probed software
/// lists entirely.
pub const ORACLE_PRESETS: [Preset; 6] = [
    Preset::Vanilla,
    Preset::S,
    Preset::T,
    Preset::Slt,
    Preset::Sdlot,
    Preset::Split,
];

/// One step of a task script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Burn roughly this many loop iterations.
    Busy(u32),
    /// `k_delay(ticks)`.
    Delay(u32),
    /// Blocking `k_sem_take` of semaphore `.0`.
    SemTake(usize),
    /// `k_sem_give` of semaphore `.0`.
    SemGive(usize),
    /// Voluntary `k_yield`.
    Yield,
    /// Cross-hart give (SMP scenarios only, see [`crate::smp`]): ring
    /// hart `target`'s doorbell with the code of semaphore `sem`; the
    /// target's ISR drain performs the give against its local copy.
    IpiGive {
        /// Destination hart id.
        target: usize,
        /// Semaphore index the IPI code resolves to on the target.
        sem: usize,
    },
}

/// One generated task: a distinct priority and a cyclic script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskScript {
    /// Task priority (`1..NUM_PRIOS`, unique within the scenario).
    pub prio: u8,
    /// Script steps, repeated forever (task bodies never return).
    pub script: Vec<Action>,
}

/// A complete randomized scenario; self-contained and replayable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Timing engine to run on.
    pub core: CoreKind,
    /// ISR variant under test.
    pub preset: Preset,
    /// Timer tick period in cycles.
    pub tick_period: u32,
    /// User tasks; index is the task id (idle gets the next id).
    pub tasks: Vec<TaskScript>,
    /// Initial counts of the declared semaphores.
    pub sems: Vec<u32>,
    /// Semaphore given by the ISR on external interrupts, if bound.
    pub ext_sem: Option<usize>,
    /// Cycles at which to raise the external interrupt line.
    pub ext_irqs: Vec<u64>,
    /// Simulation budget.
    pub max_cycles: u64,
}

/// Draws a scenario for `(core, preset, seed)`. Deterministic.
pub fn scenario_for_seed(core: CoreKind, preset: Preset, seed: u64) -> ScenarioSpec {
    let mut rng = Rng64::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5C3A_11DA);
    let n_tasks = 2 + (rng.next_u64() % 3) as usize; // 2..=4
    let n_sems = 1 + (rng.next_u64() % 2) as usize; // 1..=2

    // Distinct priorities: partial Fisher-Yates over 1..=7.
    let mut prios: Vec<u8> = (1..8).collect();
    for i in 0..n_tasks {
        let j = i + (rng.next_u64() as usize) % (prios.len() - i);
        prios.swap(i, j);
    }

    let sems: Vec<u32> = (0..n_sems).map(|_| (rng.next_u64() % 3) as u32).collect();
    let tasks = (0..n_tasks)
        .map(|i| {
            let len = 3 + (rng.next_u64() % 4) as usize; // 3..=6 steps
            let script = (0..len)
                .map(|_| match rng.next_u64() % 10 {
                    0..=2 => Action::Busy(10 + (rng.next_u64() % 150) as u32),
                    3..=4 => Action::Delay(1 + (rng.next_u64() % 3) as u32),
                    5..=6 => Action::SemTake((rng.next_u64() as usize) % n_sems),
                    7..=8 => Action::SemGive((rng.next_u64() as usize) % n_sems),
                    _ => Action::Yield,
                })
                .collect();
            TaskScript {
                prio: prios[i],
                script,
            }
        })
        .collect();

    let max_cycles = 6_000;
    let (ext_sem, ext_irqs) = if rng.next_u64().is_multiple_of(2) {
        let n_irqs = 1 + (rng.next_u64() % 3);
        let irqs = (0..n_irqs)
            .map(|_| 200 + rng.next_u64() % (max_cycles - 1_000))
            .collect();
        (Some(0), irqs)
    } else {
        (None, Vec::new())
    };

    ScenarioSpec {
        core,
        preset,
        tick_period: 400,
        tasks,
        sems,
        ext_sem,
        ext_irqs,
        max_cycles,
    }
}

/// Emits one task body: a loop-top mark per script step, then the step's
/// action. The builder wraps the body in an endless loop, so the script
/// repeats cyclically. Shared with the SMP scenario runner, hence
/// `pub(crate)`.
pub(crate) fn emit_task(ctx: &mut freertos_lite::TaskCtx, task_id: u32, script: &[Action]) {
    for (step, act) in script.iter().enumerate() {
        ctx.trace_mark(probe::task_mark(task_id, step as u32));
        match *act {
            Action::Busy(iters) => ctx.busy_work(iters),
            Action::Delay(ticks) => ctx.delay(ticks),
            Action::SemTake(s) => ctx.sem_take(&format!("s{s}")),
            Action::SemGive(s) => ctx.sem_give(&format!("s{s}")),
            Action::Yield => ctx.yield_now(),
            Action::IpiGive { target, sem } => ctx.ipi_give(target as u32, &format!("s{sem}")),
        }
    }
}

/// Builds one scenario into a ready-to-run [`System`]: kernel generated
/// and installed, probes on, tracing enabled, external interrupts
/// scheduled — but not yet run a single cycle. [`trace_scenario`] runs
/// it to the budget; the time-travel harness instead drives it in
/// checkpointed slices.
///
/// # Panics
///
/// Panics if the generated kernel fails to build — a harness bug, not a
/// kernel bug.
pub fn scenario_system(spec: &ScenarioSpec) -> System {
    let mut k = KernelBuilder::new(spec.preset);
    k.tick_period(spec.tick_period).probe(true);
    for (j, initial) in spec.sems.iter().enumerate() {
        k.semaphore(&format!("s{j}"), *initial);
    }
    if let Some(j) = spec.ext_sem {
        k.ext_irq_gives(&format!("s{j}"));
    }
    for (i, t) in spec.tasks.iter().enumerate() {
        let script = t.script.clone();
        k.task(&format!("t{i}"), t.prio, move |ctx| {
            emit_task(ctx, i as u32, &script);
        });
    }
    let image = k.build().expect("generated scenario builds");

    let mut sys = System::new(spec.core, spec.preset);
    image.install(&mut sys);
    sys.enable_tracing(1 << 15);
    for &cycle in &spec.ext_irqs {
        sys.schedule_external_irq(cycle);
    }
    sys
}

/// Builds and runs one scenario on the timing simulator, returning the
/// probed event trace.
///
/// # Panics
///
/// Panics if the generated kernel fails to build or the event-trace ring
/// overflows — both harness bugs, not kernel bugs.
pub fn trace_scenario(spec: &ScenarioSpec) -> rtosunit::EventTrace {
    let mut sys = scenario_system(spec);
    sys.run(spec.max_cycles);

    let trace = sys.platform.take_trace().expect("tracing was enabled");
    assert_eq!(trace.dropped(), 0, "event ring too small for scenario");
    trace
}

/// Builds, runs and checks one scenario against the oracle model.
///
/// # Panics
///
/// See [`trace_scenario`].
pub fn run_scenario(spec: &ScenarioSpec) -> Result<OracleStats, Violation> {
    oracle::check(spec, &trace_scenario(spec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic() {
        let a = scenario_for_seed(CoreKind::Cva6, Preset::Slt, 42);
        let b = scenario_for_seed(CoreKind::Cva6, Preset::Slt, 42);
        assert_eq!(a, b);
        let c = scenario_for_seed(CoreKind::Cva6, Preset::Slt, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn priorities_are_distinct() {
        for seed in 0..50 {
            let s = scenario_for_seed(CoreKind::Cv32e40p, Preset::Vanilla, seed);
            let mut prios: Vec<u8> = s.tasks.iter().map(|t| t.prio).collect();
            prios.sort_unstable();
            prios.dedup();
            assert_eq!(prios.len(), s.tasks.len(), "seed {seed}: duplicate prio");
        }
    }
}
