//! Differential fuzzing and invariant harness for the RTOSUnit
//! reproduction.
//!
//! Every number the experiment stack produces is a cycle count measured on
//! the simulated cores running the simulated kernel — a silent
//! architectural or scheduling bug shifts results without failing a
//! latency test. This crate is the verification substrate (DESIGN.md §9):
//!
//! * [`lockstep`] — each timing engine runs constrained random programs
//!   (from [`rvsim_isa::progen`]) in lockstep with the golden architectural
//!   executor ([`rvsim_cores::GoldenCore`]), diffing registers, PC and CSRs
//!   at every retire boundary and all of data memory at episode end.
//! * [`oracle`] — randomized kernel scenarios run on the full system
//!   simulator while a host-side model of ready/delay/event-list semantics
//!   checks scheduling invariants from the emitted event trace.
//! * [`smp`] — multi-hart scenarios run in per-cycle lockstep on the
//!   shared bus; every hart's trace is checked against its own scheduler
//!   model (per-core ready lists) and the shared IPI mailboxes must
//!   conserve every cross-core wakeup.
//! * [`timetravel`] — full-system snapshots taken on a periodic cadence
//!   let any previously visited cycle be revisited exactly: rewind is
//!   restore-nearest-checkpoint plus deterministic re-execution, verified
//!   byte-for-byte against cold runs.
//! * [`shrink`] + [`artifact`] — failures are delta-debugged to minimal
//!   counterexamples and serialized as self-contained JSON replay files
//!   under `results/repro/`, re-runnable via the `checkfuzz` bin.

pub mod artifact;
pub mod coproc;
pub mod faultcamp;
pub mod lockstep;
pub mod oracle;
pub mod scenario;
pub mod shrink;
pub mod smp;
pub mod timetravel;

pub use coproc::{ScratchCoproc, ScratchUnit};
pub use faultcamp::{
    classify_fault_events, classify_with_reference, oracle_reference, run_fault_campaign,
    shrink_fault_events, FaultCampaign, FaultOutcome, FaultRunRecord, FaultRunReport,
};
pub use lockstep::{
    default_irq_plan, episode_for_seed, run_episode, EpisodeSpec, EpisodeStats, Fault, IrqEvent,
    Mismatch,
};
pub use oracle::{OracleStats, Violation};
pub use scenario::{
    run_scenario, scenario_for_seed, scenario_system, trace_scenario, Action, ScenarioSpec,
    TaskScript, ORACLE_PRESETS,
};
pub use shrink::{shrink_episode, shrink_scenario, shrink_scenario_with};
pub use smp::{
    run_smp_scenario, smp_scenario_for_seed, smp_scenario_system, trace_smp_scenario,
    SmpScenarioSpec,
};
pub use timetravel::{travel_selfcheck, TimeTravel, TravelReport};
