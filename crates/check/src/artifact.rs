//! Self-contained replay artifacts for failing episodes.
//!
//! A failure serializes everything needed to re-run it — core kind,
//! generation config, the (shrunk) op list, the interrupt plan, budgets,
//! any injected fault, and the observed mismatch — as one JSON document
//! under `results/repro/`. The `checkfuzz` bin re-runs such files
//! byte-for-byte; nothing references generator internals except the stable
//! numeric [`GenOp`] field encoding, so artifacts survive generator
//! *distribution* changes (new probability tables) though not op-format
//! changes.

use crate::lockstep::{EpisodeSpec, Fault, IrqEvent, Mismatch};
use crate::oracle::Violation;
use crate::scenario::{Action, ScenarioSpec, TaskScript};
use rtosbench::json::Json;
use rtosunit::Preset;
use rvsim_cores::CoreKind;
use rvsim_isa::progen::{GenConfig, GenOp, ProgramSpec};

/// Artifact format version (bump on incompatible `GenOp` changes).
pub const VERSION: u64 = 1;

fn core_name(core: CoreKind) -> &'static str {
    match core {
        CoreKind::Cv32e40p => "cv32e40p",
        CoreKind::Cva6 => "cva6",
        CoreKind::NaxRiscv => "naxriscv",
    }
}

fn core_from_name(name: &str) -> Option<CoreKind> {
    match name {
        "cv32e40p" => Some(CoreKind::Cv32e40p),
        "cva6" => Some(CoreKind::Cva6),
        "naxriscv" => Some(CoreKind::NaxRiscv),
        _ => None,
    }
}

const PRESET_NAMES: [(Preset, &str); 13] = [
    (Preset::Vanilla, "vanilla"),
    (Preset::Cv32rt, "cv32rt"),
    (Preset::S, "s"),
    (Preset::Sl, "sl"),
    (Preset::T, "t"),
    (Preset::St, "st"),
    (Preset::Slt, "slt"),
    (Preset::Sd, "sd"),
    (Preset::Sdt, "sdt"),
    (Preset::Sdlo, "sdlo"),
    (Preset::Sdlot, "sdlot"),
    (Preset::Split, "split"),
    (Preset::SltHs, "slths"),
];

/// Stable lower-case artifact name of a preset.
pub fn preset_name(p: Preset) -> &'static str {
    PRESET_NAMES
        .iter()
        .find(|(q, _)| *q == p)
        .map(|(_, n)| *n)
        .expect("every preset is named")
}

/// Inverse of [`preset_name`].
pub fn preset_from_name(name: &str) -> Option<Preset> {
    PRESET_NAMES
        .iter()
        .find(|(_, n)| *n == name)
        .map(|(p, _)| *p)
}

/// Serializes a failing lockstep episode (plus the mismatch it produced
/// and the seed it came from) to JSON.
pub fn lockstep_to_json(ep: &EpisodeSpec, seed: u64, mismatch: &Mismatch) -> Json {
    let cfg = ep.spec.cfg;
    let ops = ep
        .spec
        .ops
        .iter()
        .map(|op| Json::Array(op.encode_fields().into_iter().map(Json::Int).collect()))
        .collect();
    let irqs = ep
        .irqs
        .iter()
        .map(|e| Json::Array(vec![Json::UInt(e.at_retire), Json::UInt(u64::from(e.mask))]))
        .collect();
    Json::object()
        .with("kind", Json::Str("lockstep".into()))
        .with("version", Json::UInt(VERSION))
        .with("core", Json::Str(core_name(ep.core).into()))
        .with("seed", Json::UInt(seed))
        .with(
            "fault",
            match ep.fault {
                Some(f) => Json::Str(f.name().into()),
                None => Json::Null,
            },
        )
        .with("max_retires", Json::UInt(ep.max_retires))
        .with("max_cycles", Json::UInt(ep.max_cycles))
        .with("blocks", Json::Bool(ep.blocks))
        .with("snap", Json::Bool(ep.snap))
        .with(
            "gen",
            Json::object()
                .with("base", Json::UInt(u64::from(cfg.base)))
                .with("data_base", Json::UInt(u64::from(cfg.data_base)))
                .with("data_len", Json::UInt(u64::from(cfg.data_len)))
                .with("len", Json::UInt(cfg.len as u64))
                .with("custom_ops", Json::Bool(cfg.custom_ops))
                .with("misaligned", Json::Bool(cfg.misaligned))
                .with("allow_wfi", Json::Bool(cfg.allow_wfi)),
        )
        .with("ops", Json::Array(ops))
        .with("irqs", Json::Array(irqs))
        .with(
            "mismatch",
            Json::object()
                .with("field", Json::Str(mismatch.field.clone()))
                .with("engine", Json::UInt(u64::from(mismatch.engine)))
                .with("golden", Json::UInt(u64::from(mismatch.golden)))
                .with("retired", Json::UInt(mismatch.retired))
                .with("cycle", Json::UInt(mismatch.cycle)),
        )
}

fn get_u64(j: &Json, key: &str) -> Option<u64> {
    j.get(key)?.as_u64()
}

fn get_bool(j: &Json, key: &str) -> Option<bool> {
    match j.get(key)? {
        Json::Bool(b) => Some(*b),
        _ => None,
    }
}

fn num_i64(j: &Json) -> Option<i64> {
    match j {
        Json::Int(v) => Some(*v),
        Json::UInt(v) => i64::try_from(*v).ok(),
        _ => None,
    }
}

/// Deserializes a lockstep artifact back into a runnable episode.
/// Returns `None` for malformed or incompatible documents.
pub fn lockstep_from_json(j: &Json) -> Option<EpisodeSpec> {
    if j.get("kind")?.as_str()? != "lockstep" || get_u64(j, "version")? != VERSION {
        return None;
    }
    let core = core_from_name(j.get("core")?.as_str()?)?;
    let fault = match j.get("fault") {
        Some(Json::Str(name)) => Some(Fault::from_name(name)?),
        _ => None,
    };
    let g = j.get("gen")?;
    let cfg = GenConfig {
        base: get_u64(g, "base")? as u32,
        data_base: get_u64(g, "data_base")? as u32,
        data_len: get_u64(g, "data_len")? as u32,
        len: get_u64(g, "len")? as usize,
        custom_ops: get_bool(g, "custom_ops")?,
        misaligned: get_bool(g, "misaligned")?,
        allow_wfi: get_bool(g, "allow_wfi")?,
    };
    let ops = j
        .get("ops")?
        .as_array()?
        .iter()
        .map(|rec| {
            let fields: Option<Vec<i64>> = rec.as_array()?.iter().map(num_i64).collect();
            GenOp::decode_fields(&fields?)
        })
        .collect::<Option<Vec<GenOp>>>()?;
    let irqs = j
        .get("irqs")?
        .as_array()?
        .iter()
        .map(|rec| {
            let pair = rec.as_array()?;
            match pair {
                [a, b] => Some(IrqEvent {
                    at_retire: a.as_u64()?,
                    mask: b.as_u64()? as u32,
                }),
                _ => None,
            }
        })
        .collect::<Option<Vec<IrqEvent>>>()?;
    Some(EpisodeSpec {
        core,
        spec: ProgramSpec::from_parts(cfg, ops),
        irqs,
        max_retires: get_u64(j, "max_retires")?,
        max_cycles: get_u64(j, "max_cycles")?,
        fault,
        // Absent in artifacts written before the block-cache mode existed;
        // those replayed per-cycle and still do.
        blocks: get_bool(j, "blocks").unwrap_or(false),
        // Likewise absent before snapshot stress existed.
        snap: get_bool(j, "snap").unwrap_or(false),
    })
}

fn action_to_json(a: Action) -> Json {
    let fields = match a {
        Action::Busy(n) => vec![0, u64::from(n)],
        Action::Delay(n) => vec![1, u64::from(n)],
        Action::SemTake(s) => vec![2, s as u64],
        Action::SemGive(s) => vec![3, s as u64],
        Action::Yield => vec![4],
        Action::IpiGive { target, sem } => vec![5, target as u64, sem as u64],
    };
    Json::Array(fields.into_iter().map(Json::UInt).collect())
}

fn action_from_json(j: &Json) -> Option<Action> {
    let fields: Option<Vec<u64>> = j.as_array()?.iter().map(Json::as_u64).collect();
    match fields?[..] {
        [0, n] => Some(Action::Busy(u32::try_from(n).ok()?)),
        [1, n] => Some(Action::Delay(u32::try_from(n).ok()?)),
        [2, s] => Some(Action::SemTake(s as usize)),
        [3, s] => Some(Action::SemGive(s as usize)),
        [4] => Some(Action::Yield),
        [5, target, sem] => Some(Action::IpiGive {
            target: target as usize,
            sem: sem as usize,
        }),
        _ => None,
    }
}

/// Serializes a failing oracle scenario (plus the violation it produced
/// and the seed it came from) to JSON.
pub fn oracle_to_json(spec: &ScenarioSpec, seed: u64, violation: &Violation) -> Json {
    let tasks = spec
        .tasks
        .iter()
        .map(|t| {
            Json::object()
                .with("prio", Json::UInt(u64::from(t.prio)))
                .with(
                    "script",
                    Json::Array(t.script.iter().copied().map(action_to_json).collect()),
                )
        })
        .collect();
    Json::object()
        .with("kind", Json::Str("oracle".into()))
        .with("version", Json::UInt(VERSION))
        .with("core", Json::Str(core_name(spec.core).into()))
        .with("preset", Json::Str(preset_name(spec.preset).into()))
        .with("seed", Json::UInt(seed))
        .with("tick_period", Json::UInt(u64::from(spec.tick_period)))
        .with("max_cycles", Json::UInt(spec.max_cycles))
        .with("tasks", Json::Array(tasks))
        .with(
            "sems",
            Json::Array(
                spec.sems
                    .iter()
                    .map(|&c| Json::UInt(u64::from(c)))
                    .collect(),
            ),
        )
        .with(
            "ext_sem",
            match spec.ext_sem {
                Some(s) => Json::UInt(s as u64),
                None => Json::Null,
            },
        )
        .with(
            "ext_irqs",
            Json::Array(spec.ext_irqs.iter().map(|&c| Json::UInt(c)).collect()),
        )
        .with(
            "violation",
            Json::object()
                .with("cycle", Json::UInt(violation.cycle))
                .with("message", Json::Str(violation.message.clone())),
        )
}

/// Deserializes an oracle artifact back into a runnable scenario.
/// Returns `None` for malformed or incompatible documents.
pub fn oracle_from_json(j: &Json) -> Option<ScenarioSpec> {
    if j.get("kind")?.as_str()? != "oracle" || get_u64(j, "version")? != VERSION {
        return None;
    }
    let tasks = j
        .get("tasks")?
        .as_array()?
        .iter()
        .map(|t| {
            let script = t
                .get("script")?
                .as_array()?
                .iter()
                .map(action_from_json)
                .collect::<Option<Vec<Action>>>()?;
            Some(TaskScript {
                prio: u8::try_from(get_u64(t, "prio")?).ok()?,
                script,
            })
        })
        .collect::<Option<Vec<TaskScript>>>()?;
    let sems = j
        .get("sems")?
        .as_array()?
        .iter()
        .map(|c| Some(c.as_u64()? as u32))
        .collect::<Option<Vec<u32>>>()?;
    let ext_irqs = j
        .get("ext_irqs")?
        .as_array()?
        .iter()
        .map(Json::as_u64)
        .collect::<Option<Vec<u64>>>()?;
    Some(ScenarioSpec {
        core: core_from_name(j.get("core")?.as_str()?)?,
        preset: preset_from_name(j.get("preset")?.as_str()?)?,
        tick_period: get_u64(j, "tick_period")? as u32,
        tasks,
        sems,
        ext_sem: match j.get("ext_sem") {
            Some(Json::Null) | None => None,
            Some(v) => Some(v.as_u64()? as usize),
        },
        ext_irqs,
        max_cycles: get_u64(j, "max_cycles")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lockstep::episode_for_seed;

    #[test]
    fn lockstep_artifact_roundtrip() {
        let mut ep = episode_for_seed(
            CoreKind::Cva6,
            7,
            GenConfig {
                len: 40,
                ..GenConfig::default()
            },
        );
        ep.fault = Some(Fault::GoldenSltuFlip);
        ep.blocks = true;
        ep.snap = true;
        let mismatch = Mismatch {
            field: "x13".into(),
            engine: 1,
            golden: 0,
            retired: 99,
            cycle: 321,
        };
        let doc = lockstep_to_json(&ep, 7, &mismatch);
        let text = doc.render();
        let parsed = Json::parse(&text).expect("rendered artifact parses");
        let back = lockstep_from_json(&parsed).expect("artifact decodes");
        assert_eq!(back, ep);
    }

    #[test]
    fn malformed_artifacts_are_rejected() {
        assert!(lockstep_from_json(&Json::Null).is_none());
        let wrong_kind = Json::object().with("kind", Json::Str("oracle".into()));
        assert!(lockstep_from_json(&wrong_kind).is_none());
        assert!(oracle_from_json(&Json::Null).is_none());
        let wrong_kind = Json::object().with("kind", Json::Str("lockstep".into()));
        assert!(oracle_from_json(&wrong_kind).is_none());
    }

    #[test]
    fn oracle_artifact_roundtrip() {
        use crate::scenario::scenario_for_seed;
        use rtosunit::Preset;

        let spec = scenario_for_seed(CoreKind::NaxRiscv, Preset::Sdlot, 17);
        let v = Violation {
            cycle: 1234,
            message: "sched selected task 2, expected task 0".into(),
        };
        let doc = oracle_to_json(&spec, 17, &v);
        let text = doc.render();
        let parsed = Json::parse(&text).expect("rendered artifact parses");
        let back = oracle_from_json(&parsed).expect("artifact decodes");
        assert_eq!(back, spec);
    }

    #[test]
    fn preset_names_roundtrip() {
        for (p, _) in PRESET_NAMES {
            assert_eq!(preset_from_name(preset_name(p)), Some(p));
        }
        assert_eq!(preset_from_name("bogus"), None);
    }
}
