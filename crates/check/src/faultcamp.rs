//! Fault-injection campaigns: run kernel scenarios under a seeded
//! [`FaultPlan`] and classify what each injection did.
//!
//! The classification lattice (DESIGN.md §12) is evaluated in strict
//! priority order per run:
//!
//! 1. **Crashed** — the simulation itself panicked (wild pointer left
//!    DMEM, PC left IMEM, a harness assert tripped). Caught with
//!    `catch_unwind`; no fault is ever lost to a raw panic.
//! 2. **Detected by the guest** — the self-protecting kernel announced a
//!    canary, watchdog or checksum hit on the TRACE register before
//!    responding (kill or halt).
//! 3. **Detected by the oracle** — the guest noticed nothing, but the
//!    host-side scheduler model ([`crate::oracle`]) rejects the probe
//!    stream: the corruption changed *scheduling semantics*.
//! 4. **Silent corruption** — guest and oracle are both happy, yet the
//!    run's observable behaviour (every guest mark, with its cycle)
//!    differs from the fault-free reference run. Only the differential
//!    layer sees these.
//! 5. **Masked** — bit-identical observable behaviour; the fault landed
//!    in dead state.
//!
//! Reference and faulted runs are both built with
//! [`KernelBuilder::protect`] on, so the protection overhead is part of
//! the baseline and a timing difference always means the *fault* caused
//! it.

use crate::oracle;
use crate::scenario::{self, ScenarioSpec};
use freertos_lite::klayout::{canary_addr, tcb, KernelLayout, NUM_PRIOS};
use freertos_lite::KernelBuilder;
use rtosunit::events::{DETECT_CANARY, DETECT_CHECKSUM, DETECT_WATCHDOG};
use rtosunit::{EventTrace, System, TraceEvent};
use rvsim_cores::{CoreKind, FaultEvent, FaultPlan, FaultTargets};
use rvsim_isa::csr;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// What one injected fault (plan) did to one scenario run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOutcome {
    /// No observable difference from the fault-free reference run.
    Masked,
    /// A stack canary check fired in the guest.
    DetectedCanary,
    /// The guest watchdog expired (idle starved / counter corrupted).
    DetectedWatchdog,
    /// The TCB checksum self-check fired in the guest.
    DetectedChecksum,
    /// The host scheduler oracle rejected the probe stream.
    DetectedOracle,
    /// Observable behaviour changed and *nothing* noticed.
    SilentCorruption,
    /// The simulation panicked (caught; the campaign keeps going).
    Crashed,
}

impl FaultOutcome {
    /// Every outcome, in lattice order.
    pub const ALL: [FaultOutcome; 7] = [
        FaultOutcome::Masked,
        FaultOutcome::DetectedCanary,
        FaultOutcome::DetectedWatchdog,
        FaultOutcome::DetectedChecksum,
        FaultOutcome::DetectedOracle,
        FaultOutcome::SilentCorruption,
        FaultOutcome::Crashed,
    ];

    /// Stable short name (artifacts, regression seeds, figures).
    pub fn name(self) -> &'static str {
        match self {
            FaultOutcome::Masked => "masked",
            FaultOutcome::DetectedCanary => "detected_canary",
            FaultOutcome::DetectedWatchdog => "detected_watchdog",
            FaultOutcome::DetectedChecksum => "detected_checksum",
            FaultOutcome::DetectedOracle => "detected_oracle",
            FaultOutcome::SilentCorruption => "silent_corruption",
            FaultOutcome::Crashed => "crashed",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<FaultOutcome> {
        Self::ALL.into_iter().find(|o| o.name() == name)
    }

    /// Whether some layer (guest, oracle or differential) observed the
    /// fault — everything except a clean mask.
    pub fn is_detected(self) -> bool {
        !matches!(self, FaultOutcome::Masked)
    }
}

/// Full result of classifying one faulted run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRunReport {
    /// The lattice verdict.
    pub outcome: FaultOutcome,
    /// Guest detector codes seen on the trace, in order (see
    /// [`rtosunit::events::detector_name`]).
    pub detections: Vec<u32>,
    /// How many planned faults were actually applied before the run
    /// ended (a halt can cut a plan short).
    pub faults_applied: usize,
    /// Human-readable detail: the oracle violation, panic message, or
    /// first signature divergence.
    pub detail: String,
}

/// One guest run with protection on and an optional fault plan attached:
/// the probed event trace, the number of faults applied, and whether the
/// guest halted itself.
pub fn trace_protected(spec: &ScenarioSpec, plan: Option<FaultPlan>) -> (EventTrace, usize, bool) {
    let mut k = KernelBuilder::new(spec.preset);
    k.tick_period(spec.tick_period).probe(true).protect(true);
    for (j, initial) in spec.sems.iter().enumerate() {
        k.semaphore(&format!("s{j}"), *initial);
    }
    if let Some(j) = spec.ext_sem {
        k.ext_irq_gives(&format!("s{j}"));
    }
    for (i, t) in spec.tasks.iter().enumerate() {
        let script = t.script.clone();
        k.task(&format!("t{i}"), t.prio, move |ctx| {
            scenario::emit_task(ctx, i as u32, &script);
        });
    }
    let image = k.build().expect("protected scenario builds");

    let mut sys = System::new(spec.core, spec.preset);
    image.install(&mut sys);
    sys.enable_tracing(1 << 15);
    for &cycle in &spec.ext_irqs {
        sys.schedule_external_irq(cycle);
    }
    if let Some(p) = plan {
        sys.attach_fault_plan(p);
    }
    sys.run(spec.max_cycles);
    let halted = sys.halted();
    let applied = sys.faults_applied();
    let trace = sys.platform.take_trace().expect("tracing was enabled");
    (trace, applied, halted)
}

/// The observable behaviour of a run: every guest mark with its cycle.
/// Probe marks, task marks and benchmark marks all land here; host-side
/// events (fault injections, cache activity) are excluded so a faulted
/// run is compared purely on what the *guest* did and when.
pub fn signature(trace: &EventTrace) -> Vec<(u64, u32)> {
    trace
        .iter()
        .filter_map(|(c, e)| match e {
            TraceEvent::GuestMark { value } => Some((c, value)),
            _ => None,
        })
        .collect()
}

/// Guest detector codes on a trace, in order.
pub fn detections(trace: &EventTrace) -> Vec<u32> {
    trace
        .iter()
        .filter_map(|(_, e)| match e {
            TraceEvent::FaultDetected { detector } => Some(detector),
            _ => None,
        })
        .collect()
}

fn first_divergence(reference: &[(u64, u32)], got: &[(u64, u32)]) -> Option<String> {
    for (i, (r, g)) in reference.iter().zip(got.iter()).enumerate() {
        if r != g {
            return Some(format!(
                "mark {i}: reference ({}, {:#x}) vs faulted ({}, {:#x})",
                r.0, r.1, g.0, g.1
            ));
        }
    }
    if reference.len() != got.len() {
        return Some(format!(
            "mark count: reference {} vs faulted {}",
            reference.len(),
            got.len()
        ));
    }
    None
}

fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Classifies one faulted run against a precomputed reference signature
/// (from a fault-free [`trace_protected`] run of the same spec). Never
/// panics for in-run failures: simulation panics classify as
/// [`FaultOutcome::Crashed`].
pub fn classify_with_reference(
    spec: &ScenarioSpec,
    reference: &[(u64, u32)],
    events: Vec<FaultEvent>,
) -> FaultRunReport {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let (trace, applied, _halted) = trace_protected(spec, Some(FaultPlan::new(events)));
        let dets = detections(&trace);
        if let Some(&first) = dets.first() {
            let outcome = match first {
                DETECT_CANARY => FaultOutcome::DetectedCanary,
                DETECT_WATCHDOG => FaultOutcome::DetectedWatchdog,
                DETECT_CHECKSUM => FaultOutcome::DetectedChecksum,
                // A kill mark can only follow a canary mark, so an
                // unknown-first code is a harness bug worth surfacing.
                other => panic!("unexpected leading detector code {other}"),
            };
            return FaultRunReport {
                outcome,
                detail: format!(
                    "guest detector `{}` fired",
                    rtosunit::events::detector_name(first)
                ),
                detections: dets,
                faults_applied: applied,
            };
        }
        // The oracle sees scheduling semantics; a violation means the
        // corruption produced *wrong* decisions, not just different
        // timing.
        if let Err(v) = oracle::check(spec, &trace) {
            return FaultRunReport {
                outcome: FaultOutcome::DetectedOracle,
                detections: dets,
                faults_applied: applied,
                detail: format!("oracle violation at cycle {}: {}", v.cycle, v.message),
            };
        }
        match first_divergence(reference, &signature(&trace)) {
            Some(d) => FaultRunReport {
                outcome: FaultOutcome::SilentCorruption,
                detections: dets,
                faults_applied: applied,
                detail: d,
            },
            None => FaultRunReport {
                outcome: FaultOutcome::Masked,
                detections: dets,
                faults_applied: applied,
                detail: String::new(),
            },
        }
    }));
    result.unwrap_or_else(|e| FaultRunReport {
        outcome: FaultOutcome::Crashed,
        detections: Vec::new(),
        faults_applied: 0,
        detail: panic_message(e),
    })
}

/// The fault-free reference signature for `spec`: one protected run,
/// verified against the scheduler oracle.
///
/// # Panics
///
/// Panics if the *fault-free* run fails the oracle — that is a harness
/// bug, not an injection outcome.
pub fn oracle_reference(spec: &ScenarioSpec) -> Vec<(u64, u32)> {
    let (trace, _, _) = trace_protected(spec, None);
    oracle::check(spec, &trace).expect("fault-free protected run passes the oracle");
    signature(&trace)
}

/// Convenience wrapper computing the reference run itself. Campaigns
/// should compute the reference once per scenario
/// ([`oracle_reference`]) and use [`classify_with_reference`].
///
/// # Panics
///
/// Panics if the *fault-free* reference run fails — that is a harness
/// bug, not an injection outcome.
pub fn classify_fault_events(spec: &ScenarioSpec, events: Vec<FaultEvent>) -> FaultRunReport {
    classify_with_reference(spec, &oracle_reference(spec), events)
}

/// Fault targets covering the kernel's interesting state for `spec`:
/// globals, ready/delay lists, lookup table, TCB fields, semaphore
/// control blocks, stack canaries and the protection globals themselves.
pub fn fault_targets(spec: &ScenarioSpec) -> FaultTargets {
    let n = spec.tasks.len() + 1; // + idle
    let layout = KernelLayout::new(n, spec.sems.len().max(1));
    let mut mem = vec![
        KernelLayout::CURRENT_TCB,
        KernelLayout::TICK_COUNT,
        KernelLayout::DELAY_HEAD,
        KernelLayout::WATCHDOG,
        KernelLayout::TCB_CHECKSUM,
    ];
    for p in 0..NUM_PRIOS {
        mem.push(KernelLayout::ready_head_addr(p));
    }
    for i in 0..n {
        mem.push(KernelLayout::lookup_addr(i));
        let t = layout.tcb_addr(i);
        for off in [tcb::SAVED_SP, tcb::ID, tcb::PRIO, tcb::NEXT, tcb::WAKE_TICK] {
            mem.push(t.wrapping_add(off as u32));
        }
        mem.push(canary_addr(i));
        // A word in the live frame region near the stack top.
        mem.push(layout.stack_top(i) - 32);
    }
    for j in 0..spec.sems.len() {
        mem.push(layout.sem_addr(j));
        mem.push(layout.sem_addr(j) + 4);
    }
    FaultTargets {
        mem_words: mem,
        csrs: vec![csr::MSTATUS, csr::MTVEC, csr::MSCRATCH, csr::MEPC],
    }
}

/// Draws the fault plan for `(spec, seed)`: `count` faults over the
/// middle of the run window, aimed at [`fault_targets`]. Deterministic.
pub fn fault_plan_for(spec: &ScenarioSpec, seed: u64, count: usize) -> FaultPlan {
    let lo = 300.min(spec.max_cycles / 4);
    let hi = spec.max_cycles.saturating_sub(500).max(lo + 1);
    FaultPlan::generate(seed, count, lo..hi, &fault_targets(spec))
}

/// One campaign run: which configuration, which seeds, what happened.
#[derive(Debug, Clone)]
pub struct FaultRunRecord {
    /// Timing engine.
    pub core: CoreKind,
    /// ISR variant.
    pub preset: rtosunit::Preset,
    /// Seed of the scenario the fault was injected into.
    pub scenario_seed: u64,
    /// Seed of the fault plan.
    pub fault_seed: u64,
    /// The injected events (replayable without the generator).
    pub events: Vec<FaultEvent>,
    /// The classification.
    pub report: FaultRunReport,
}

/// A completed fault campaign.
#[derive(Debug, Clone, Default)]
pub struct FaultCampaign {
    /// Every classified run.
    pub runs: Vec<FaultRunRecord>,
}

impl FaultCampaign {
    /// Outcome tally in lattice order (only non-zero entries).
    pub fn tally(&self) -> Vec<(FaultOutcome, usize)> {
        FaultOutcome::ALL
            .into_iter()
            .filter_map(|o| {
                let n = self.runs.iter().filter(|r| r.report.outcome == o).count();
                (n > 0).then_some((o, n))
            })
            .collect()
    }

    /// Tally restricted to one `(core, preset)` cell.
    pub fn tally_for(
        &self,
        core: CoreKind,
        preset: rtosunit::Preset,
    ) -> Vec<(FaultOutcome, usize)> {
        FaultOutcome::ALL
            .into_iter()
            .filter_map(|o| {
                let n = self
                    .runs
                    .iter()
                    .filter(|r| r.core == core && r.preset == preset && r.report.outcome == o)
                    .count();
                (n > 0).then_some((o, n))
            })
            .collect()
    }
}

/// Runs a seeded fault campaign: for every `(core, preset)` cell, one
/// scenario (from `scenario_seed`) is run fault-free as the reference,
/// then `fault_seeds` plans of `faults_per_run` injections each are
/// classified against it. Total runs = cells × `fault_seeds`.
pub fn run_fault_campaign(
    cores: &[CoreKind],
    presets: &[rtosunit::Preset],
    scenario_seed: u64,
    fault_seeds: u64,
    faults_per_run: usize,
) -> FaultCampaign {
    let mut campaign = FaultCampaign::default();
    for &core in cores {
        for &preset in presets {
            let spec = scenario::scenario_for_seed(core, preset, scenario_seed);
            let reference = oracle_reference(&spec);
            for fault_seed in 0..fault_seeds {
                let plan = fault_plan_for(&spec, fault_seed, faults_per_run);
                let events = plan.events().to_vec();
                let report = classify_with_reference(&spec, &reference, events.clone());
                campaign.runs.push(FaultRunRecord {
                    core,
                    preset,
                    scenario_seed,
                    fault_seed,
                    events,
                    report,
                });
            }
        }
    }
    campaign
}

/// Delta-debugs a fault event list to a (locally) minimal one whose
/// classification still matches `target`: plain ddmin over the event
/// list, using `classify` against the caller's reference. The input must
/// already classify as `target`.
pub fn shrink_fault_events(
    spec: &ScenarioSpec,
    reference: &[(u64, u32)],
    events: &[FaultEvent],
    target: FaultOutcome,
) -> Vec<FaultEvent> {
    let still = |cand: &[FaultEvent]| {
        classify_with_reference(spec, reference, cand.to_vec()).outcome == target
    };
    assert!(still(events), "shrink input must classify as {target:?}");
    let mut cur = events.to_vec();
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut reduced = false;
        let mut start = 0;
        while start < cur.len() {
            let end = (start + chunk).min(cur.len());
            let mut cand = cur.clone();
            cand.drain(start..end);
            if cand.is_empty() && target != FaultOutcome::Masked {
                start = end;
                continue;
            }
            if still(&cand) {
                cur = cand;
                reduced = true;
            } else {
                start = end;
            }
        }
        if chunk == 1 && !reduced {
            break;
        }
        if !reduced {
            chunk = (chunk / 2).max(1);
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtosunit::Preset;

    #[test]
    fn outcome_names_roundtrip() {
        for o in FaultOutcome::ALL {
            assert_eq!(FaultOutcome::from_name(o.name()), Some(o));
        }
        assert_eq!(FaultOutcome::from_name("bogus"), None);
    }

    #[test]
    fn clean_protected_run_is_masked_with_empty_plan() {
        let spec = scenario::scenario_for_seed(CoreKind::Cv32e40p, Preset::Vanilla, 3);
        let report = classify_fault_events(&spec, Vec::new());
        assert_eq!(report.outcome, FaultOutcome::Masked);
        assert!(report.detections.is_empty());
    }
}
