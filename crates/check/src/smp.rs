//! Randomized multi-hart scenarios for the SMP scheduler oracle.
//!
//! An SMP scenario pins a small task set to each hart of an
//! [`SmpSystem`]: every hart `h` owns an "inbox" semaphore (declared on
//! all harts at index `h`), a receiver task blocking on it, and a sender
//! task that posts [`Action::IpiGive`]s at other harts' inboxes. Each
//! hart runs its own kernel image with its own ready lists, so the trace
//! of every hart is checked against its *own* [`crate::oracle`] model —
//! per-core ready lists fall out of the partitioned design — while the
//! cross-hart edges are closed by a conservation check over the shared
//! IPI mailboxes:
//!
//! * every `IpiSend` probe observed on any hart's trace reached the
//!   target's mailbox (trace sends == mailbox send counter),
//! * every mailbox pop was announced by an `IpiRecv` probe and followed
//!   by a deferred give on the right semaphore (model-checked),
//! * sends == receives + residual mailbox depth for every hart — **no
//!   cross-core wakeup is ever lost**.
//!
//! Senders always follow an `IpiGive` with a `Delay`: task bodies loop
//! forever, and an unthrottled IPI flood whose period matches the
//! receiver's ISR episode re-enters the interrupt at every `mret`,
//! starving the woken task of cycles — the livelock real cores exhibit,
//! not a scheduling bug, so the generator must not produce it.

use freertos_lite::probe::Probe;
use freertos_lite::SmpKernelBuilder;
use rtosunit::{EventTrace, Preset, SmpSystem, TraceEvent};
use rvsim_cores::CoreKind;
use rvsim_isa::csr;
use rvsim_isa::rng::Rng64;

use crate::oracle::{self, OracleStats, Violation};
use crate::scenario::{emit_task, Action, ScenarioSpec, TaskScript};

/// A complete randomized SMP scenario; self-contained and replayable.
///
/// Hart `h`'s inbox is the semaphore at index `h` (initial count 0 on
/// every hart), so an IPI code `h + 1` always resolves to the target's
/// inbox.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmpScenarioSpec {
    /// Timing engine every hart runs on.
    pub core: CoreKind,
    /// ISR variant under test.
    pub preset: Preset,
    /// Timer tick period in cycles (same on every hart).
    pub tick_period: u32,
    /// Per-hart task sets; outer index is the hart id, inner index the
    /// hart-local task id.
    pub harts: Vec<Vec<TaskScript>>,
    /// Simulation budget (lockstep cycles).
    pub max_cycles: u64,
}

impl SmpScenarioSpec {
    /// The single-hart oracle spec hart `h`'s trace is checked against.
    pub fn hart_spec(&self, h: usize) -> ScenarioSpec {
        ScenarioSpec {
            core: self.core,
            preset: self.preset,
            tick_period: self.tick_period,
            tasks: self.harts[h].clone(),
            sems: vec![0; self.harts.len()],
            ext_sem: None,
            ext_irqs: Vec::new(),
            max_cycles: self.max_cycles,
        }
    }
}

/// Draws an SMP scenario for `(core, preset, harts, seed)`. Deterministic.
///
/// Each hart gets a receiver (blocking-take on its inbox, then busy) and
/// a sender (throttled `IpiGive`s at other harts, mixed with busy work
/// and yields) with distinct priorities.
pub fn smp_scenario_for_seed(
    core: CoreKind,
    preset: Preset,
    harts: usize,
    seed: u64,
) -> SmpScenarioSpec {
    assert!(harts >= 1, "an SMP scenario needs at least one hart");
    let mut rng =
        Rng64::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x51AB_711E ^ ((harts as u64) << 40));
    let hart_tasks = (0..harts)
        .map(|h| {
            // Two distinct priorities per hart: partial Fisher-Yates.
            let mut prios: Vec<u8> = (1..8).collect();
            for i in 0..2 {
                let j = i + (rng.next_u64() as usize) % (prios.len() - i);
                prios.swap(i, j);
            }

            let receiver = TaskScript {
                prio: prios[0],
                script: vec![
                    Action::SemTake(h),
                    Action::Busy(10 + (rng.next_u64() % 80) as u32),
                ],
            };

            let mut script = Vec::new();
            let n_sends = 1 + (rng.next_u64() % 2) as usize;
            for _ in 0..n_sends {
                if rng.next_u64().is_multiple_of(2) {
                    script.push(Action::Busy(10 + (rng.next_u64() % 120) as u32));
                }
                // A lone hart rings its own doorbell; otherwise pick a peer.
                let target = if harts == 1 {
                    h
                } else {
                    let mut t = (rng.next_u64() as usize) % (harts - 1);
                    if t >= h {
                        t += 1;
                    }
                    t
                };
                script.push(Action::IpiGive {
                    target,
                    sem: target,
                });
                // Mandatory throttle between sends (see module docs).
                script.push(Action::Delay(1 + (rng.next_u64() % 3) as u32));
            }
            if rng.next_u64().is_multiple_of(3) {
                script.push(Action::Yield);
            }
            let sender = TaskScript {
                prio: prios[1],
                script,
            };
            vec![receiver, sender]
        })
        .collect();

    SmpScenarioSpec {
        core,
        preset,
        tick_period: 400,
        harts: hart_tasks,
        max_cycles: 6_000,
    }
}

/// Builds one SMP scenario into a ready-to-run [`SmpSystem`]: per-hart
/// kernels generated and installed, probes on, tracing enabled — but not
/// yet run a single cycle. [`trace_smp_scenario`] runs it to the budget;
/// the snapshot battery instead snapshots it mid-flight.
///
/// # Panics
///
/// Panics if the generated kernels fail to build — a harness bug, not a
/// kernel bug.
pub fn smp_scenario_system(spec: &SmpScenarioSpec) -> SmpSystem {
    let n = spec.harts.len();
    let mut b = SmpKernelBuilder::new(spec.preset, n);
    b.tick_period(spec.tick_period).probe(true);
    for h in 0..n {
        b.semaphore(&format!("s{h}"), 0);
    }
    for (h, tasks) in spec.harts.iter().enumerate() {
        for (i, t) in tasks.iter().enumerate() {
            let script = t.script.clone();
            b.task_on(&format!("h{h}t{i}"), t.prio, 1 << h, move |ctx| {
                emit_task(ctx, i as u32, &script);
            });
        }
    }
    let image = b.build().expect("generated SMP scenario builds");

    let mut smp = SmpSystem::new(spec.core, spec.preset, n);
    image.install(&mut smp);
    for h in 0..n {
        smp.hart_mut(h).enable_tracing(1 << 15);
    }
    smp
}

/// Builds and runs one SMP scenario in per-cycle lockstep, returning one
/// probed event trace per hart plus the final shared state (mailbox
/// counters, bus stats).
///
/// # Panics
///
/// Panics if the generated kernels fail to build or an event-trace ring
/// overflows — harness bugs, not kernel bugs.
pub fn trace_smp_scenario(spec: &SmpScenarioSpec) -> (Vec<EventTrace>, SmpSystem) {
    let n = spec.harts.len();
    let mut smp = smp_scenario_system(spec);
    smp.run(spec.max_cycles);

    // Quiesce: the cycle budget can expire mid-drain — between a mailbox
    // pop (which bumps the shared drain counter) and the `IpiRecv` probe
    // that accounts for it, or between an MMIO send and its `IpiSend`
    // probe (emitted right after the doorbell write, long before the
    // target can drain). Step on until no mailbox holds an undrained
    // code and no hart is inside a *software* interrupt episode, so the
    // conservation tally below sees a consistent snapshot. Only software
    // windows matter — timer/external ISRs never touch the mailbox, and
    // requiring all-cause quiet would not converge (staggered tick ISRs
    // across harts can tile the timeline). Throttled senders guarantee
    // software-quiet windows within a couple of tick periods.
    let mut grace = 0u64;
    while (0..n).any(|h| {
        smp.shared().borrow().ipi_pending(h)
            || smp.hart(h).isr_cause() == Some(csr::CAUSE_SOFTWARE)
            || smp.hart(h).platform.ipi_pending()
    }) {
        grace += 1;
        assert!(
            grace <= 16 * spec.tick_period as u64,
            "SMP scenario never quiesced after the cycle budget"
        );
        smp.step();
    }

    let traces: Vec<EventTrace> = (0..n)
        .map(|h| {
            let trace = smp
                .hart_mut(h)
                .platform
                .take_trace()
                .expect("tracing was enabled");
            assert_eq!(trace.dropped(), 0, "hart {h}: event ring too small");
            trace
        })
        .collect();
    (traces, smp)
}

/// Builds, runs and checks one SMP scenario: every hart's trace against
/// its own scheduler model, then IPI conservation across harts. Returns
/// coverage summed over all harts.
pub fn run_smp_scenario(spec: &SmpScenarioSpec) -> Result<OracleStats, Violation> {
    let (traces, smp) = trace_smp_scenario(spec);
    let n = spec.harts.len();

    // Per-hart model check; also tally IpiSend probes by destination.
    let mut total = OracleStats::default();
    let mut per_hart_recvs = vec![0u64; n];
    let mut trace_sends_to = vec![0u64; n];
    for (h, trace) in traces.iter().enumerate() {
        let stats = oracle::check(&spec.hart_spec(h), trace).map_err(|v| Violation {
            cycle: v.cycle,
            message: format!("hart {h}: {}", v.message),
        })?;
        per_hart_recvs[h] = stats.ipi_recvs;
        total.merge(&stats);
        for (_, ev) in trace.iter() {
            if let TraceEvent::GuestMark { value } = ev {
                if let Some(Probe::IpiSend { target, .. }) = Probe::decode(value) {
                    trace_sends_to[target as usize] += 1;
                }
            }
        }
    }

    // No lost wakeups: every probed send landed in a mailbox, every
    // mailbox pop was probed, and the difference is still queued.
    let final_cycle = smp.hart(0).platform.cycle();
    let shared = smp.shared();
    let shared = shared.borrow();
    for h in 0..n {
        let (sent, recvd) = shared.ipi_counts(h);
        let depth = shared.mailbox_depth(h) as u64;
        if sent != trace_sends_to[h] {
            return Err(Violation {
                cycle: final_cycle,
                message: format!(
                    "hart {h}: mailbox saw {sent} sends but traces probed {} — an IPI \
                     was posted outside the probed path",
                    trace_sends_to[h]
                ),
            });
        }
        if recvd != per_hart_recvs[h] {
            return Err(Violation {
                cycle: final_cycle,
                message: format!(
                    "hart {h}: mailbox drained {recvd} codes but the ISR probed {} — \
                     a drained IPI bypassed the deferred give",
                    per_hart_recvs[h]
                ),
            });
        }
        if sent != recvd + depth {
            return Err(Violation {
                cycle: final_cycle,
                message: format!(
                    "hart {h}: IPI conservation broken — {sent} sent, {recvd} received, \
                     {depth} still queued (a cross-core wakeup was lost)"
                ),
            });
        }
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ORACLE_PRESETS;

    #[test]
    fn smp_scenarios_are_deterministic() {
        let a = smp_scenario_for_seed(CoreKind::Cva6, Preset::Slt, 2, 42);
        let b = smp_scenario_for_seed(CoreKind::Cva6, Preset::Slt, 2, 42);
        assert_eq!(a, b);
        let c = smp_scenario_for_seed(CoreKind::Cva6, Preset::Slt, 2, 43);
        assert_ne!(a, c);
        let d = smp_scenario_for_seed(CoreKind::Cva6, Preset::Slt, 4, 42);
        assert_ne!(a.harts.len(), d.harts.len());
    }

    #[test]
    fn senders_always_throttle_after_an_ipi() {
        for seed in 0..50 {
            let s = smp_scenario_for_seed(CoreKind::Cv32e40p, Preset::Vanilla, 2, seed);
            for tasks in &s.harts {
                for t in tasks {
                    for (i, a) in t.script.iter().enumerate() {
                        if matches!(a, Action::IpiGive { .. }) {
                            assert!(
                                matches!(t.script.get(i + 1), Some(Action::Delay(_))),
                                "seed {seed}: IpiGive without a throttling delay"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn a_two_hart_schedule_passes_and_covers_ipis() {
        // One fixed seed end-to-end in the unit suite; the ≥500-schedule
        // sweep lives in the tier-1 gate (tests/verification.rs).
        let spec = smp_scenario_for_seed(CoreKind::Cv32e40p, Preset::Vanilla, 2, 7);
        let stats = run_smp_scenario(&spec).unwrap_or_else(|v| panic!("{v}"));
        assert!(stats.ipi_sends >= 1, "no IPI was posted: {stats:?}");
        assert!(stats.scheds >= 2, "no scheduling happened");
    }

    #[test]
    fn every_oracle_preset_survives_one_smp_schedule() {
        for preset in ORACLE_PRESETS {
            let spec = smp_scenario_for_seed(CoreKind::Cv32e40p, preset, 2, 11);
            run_smp_scenario(&spec).unwrap_or_else(|v| panic!("{preset}: {v}"));
        }
    }

    #[test]
    fn a_lost_wakeup_is_flagged() {
        // Forge a trace pair where hart 1 sends but hart 0's ISR never
        // drains: conservation must name the lost wakeup. Build the real
        // system for its mailbox state by sending one raw IPI that no
        // kernel is running to drain.
        let spec = smp_scenario_for_seed(CoreKind::Cv32e40p, Preset::Vanilla, 2, 3);
        let (traces, smp) = trace_smp_scenario(&spec);
        drop(traces);
        // Inject an extra undrained send: counters now disagree with any
        // trace-derived tally of zero-extra sends.
        smp.shared().borrow_mut().send_ipi(0, 1);
        let shared = smp.shared();
        let shared = shared.borrow();
        let (sent, recvd) = shared.ipi_counts(0);
        assert_eq!(sent, recvd + shared.mailbox_depth(0) as u64);
        assert!(shared.mailbox_depth(0) >= 1, "the forged send is queued");
    }
}
