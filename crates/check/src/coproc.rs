//! A deterministic functional model of the RTOSUnit custom instructions,
//! shared by both sides of the lockstep.
//!
//! The lockstep harness compares *architectural* state, so the custom
//! instructions need semantics that are a pure function of their operand
//! values — no background FSMs, no bank switches, no timing. This unit
//! defines such semantics: a small priority ready list, a delay list and
//! counting semaphores, with every operand masked into range so arbitrary
//! fuzzed register values are total inputs. One instance is wrapped as the
//! engine-side [`Coprocessor`]; an identical clone answers the golden
//! model's custom callback. Identical op/operand sequences keep the two in
//! sync by construction, so the *engine's* operand resolution, `rd`
//! write-back and custom-instruction plumbing are what the diff actually
//! checks.
//!
//! This is intentionally **not** the real `rtosunit::RtosUnit`: that unit
//! switches register banks and runs store/restore FSMs over the bus —
//! timing machinery the golden model deliberately lacks. Its kernel-level
//! behaviour is covered by the scheduler oracle instead.

use rvsim_cores::engine::DataBus;
use rvsim_cores::{ArchState, Coprocessor};
use rvsim_isa::CustomOp;

const MAX_TASKS: u32 = 16;
const NUM_PRIOS: u32 = 8;
const NUM_SEMS: usize = 8;
const LIST_CAPACITY: usize = 8;

/// The shared functional model. `Clone` + `PartialEq` so the two sides can
/// be duplicated and cross-checked.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScratchUnit {
    /// Ready entries `(task, prio)` in insertion order.
    ready: Vec<(u8, u8)>,
    /// Delayed entries `(task, prio, wake)`.
    delayed: Vec<(u8, u8, u32)>,
    /// Current hardware context id (`SET_CONTEXT_ID`).
    ctx_id: u32,
    /// Counting semaphores.
    sems: [u32; NUM_SEMS],
}

impl ScratchUnit {
    /// A fresh, empty unit.
    pub fn new() -> ScratchUnit {
        ScratchUnit::default()
    }

    fn push_ready(&mut self, task: u8, prio: u8) {
        // Bounded like the hardware list; overflow drops the entry (a
        // deterministic outcome both sides share).
        if self.ready.len() < LIST_CAPACITY && !self.ready.iter().any(|&(t, _)| t == task) {
            self.ready.push((task, prio));
        }
    }

    /// Executes one custom instruction on resolved operand values and
    /// returns the `rd` result (zero for ops that write none).
    pub fn exec(&mut self, op: CustomOp, rs1: u32, rs2: u32) -> u32 {
        match op {
            CustomOp::AddReady => {
                let (task, prio) = ((rs1 % MAX_TASKS) as u8, (rs2 % NUM_PRIOS) as u8);
                self.push_ready(task, prio);
                0
            }
            CustomOp::AddDelay => {
                let prio = (rs1 % NUM_PRIOS) as u8;
                let task = (self.ctx_id % MAX_TASKS) as u8;
                if self.delayed.len() < LIST_CAPACITY
                    && !self.delayed.iter().any(|&(t, _, _)| t == task)
                {
                    self.delayed.push((task, prio, rs2 & 0xffff));
                }
                0
            }
            CustomOp::RmTask => {
                let task = (rs1 % MAX_TASKS) as u8;
                self.ready.retain(|&(t, _)| t != task);
                self.delayed.retain(|&(t, _, _)| t != task);
                0
            }
            CustomOp::SetContextId => {
                self.ctx_id = rs1 % MAX_TASKS;
                0
            }
            CustomOp::GetHwSched => {
                // Pop the highest-priority ready entry (FIFO within a
                // priority); empty list reads all-ones.
                let best = self
                    .ready
                    .iter()
                    .enumerate()
                    .max_by_key(|&(i, &(_, p))| (p, usize::MAX - i));
                match best {
                    Some((i, _)) => {
                        let (task, _) = self.ready.remove(i);
                        u32::from(task)
                    }
                    None => u32::MAX,
                }
            }
            CustomOp::SwitchRf => 0,
            CustomOp::SemTake => {
                let sem = rs1 as usize % NUM_SEMS;
                if self.sems[sem] > 0 {
                    self.sems[sem] -= 1;
                    1
                } else {
                    0
                }
            }
            CustomOp::SemGive => {
                let sem = rs1 as usize % NUM_SEMS;
                self.sems[sem] = self.sems[sem].saturating_add(1);
                self.sems[sem]
            }
        }
    }
}

/// Engine-side adapter: a [`Coprocessor`] with no stalls, no background
/// work and no bank switches, so engine and golden stay on the same
/// (application) register file.
#[derive(Debug, Clone, Default)]
pub struct ScratchCoproc(pub ScratchUnit);

impl Coprocessor for ScratchCoproc {
    fn on_interrupt_entry(&mut self, _state: &mut ArchState, _cause: u32) {}

    fn mret_stall(&self) -> bool {
        false
    }

    fn on_mret(&mut self, _state: &mut ArchState) {}

    fn custom_stall(&self, _op: CustomOp) -> bool {
        false
    }

    fn exec_custom(&mut self, op: CustomOp, rs1: u32, rs2: u32, _state: &mut ArchState) -> u32 {
        self.0.exec(op, rs1, rs2)
    }

    fn step(&mut self, _state: &mut ArchState, _bus: &mut dyn DataBus) {}

    fn is_idle(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_list_pops_highest_priority_fifo() {
        let mut u = ScratchUnit::new();
        u.exec(CustomOp::AddReady, 1, 3);
        u.exec(CustomOp::AddReady, 2, 5);
        u.exec(CustomOp::AddReady, 3, 5);
        assert_eq!(u.exec(CustomOp::GetHwSched, 0, 0), 2);
        assert_eq!(u.exec(CustomOp::GetHwSched, 0, 0), 3);
        assert_eq!(u.exec(CustomOp::GetHwSched, 0, 0), 1);
        assert_eq!(u.exec(CustomOp::GetHwSched, 0, 0), u32::MAX);
    }

    #[test]
    fn operands_are_total() {
        let mut u = ScratchUnit::new();
        // Wild values must not panic and must be deterministic.
        u.exec(CustomOp::AddReady, 0xffff_ffff, 0xffff_ffff);
        u.exec(CustomOp::AddDelay, 0xdead_beef, 0xffff_ffff);
        u.exec(CustomOp::RmTask, 0x1234_5678, 0);
        u.exec(CustomOp::SetContextId, u32::MAX, 0);
        let mut v = u.clone();
        assert_eq!(
            u.exec(CustomOp::SemGive, u32::MAX, 0),
            v.exec(CustomOp::SemGive, u32::MAX, 0)
        );
        assert_eq!(u, v);
    }

    #[test]
    fn sem_take_give_roundtrip() {
        let mut u = ScratchUnit::new();
        assert_eq!(u.exec(CustomOp::SemTake, 2, 0), 0);
        assert_eq!(u.exec(CustomOp::SemGive, 2, 0), 1);
        assert_eq!(u.exec(CustomOp::SemTake, 2, 0), 1);
        assert_eq!(u.exec(CustomOp::SemTake, 2, 0), 0);
    }
}
