//! Host-side scheduler model and invariant checker.
//!
//! [`check`] replays a probed event trace (see [`freertos_lite::probe`])
//! against an exact model of the kernel's scheduling state: per-task
//! ready/delayed/blocked status, semaphore counts and priority-ordered
//! waiter queues, and the tick counter. Because every probe is emitted
//! inside the kernel's IRQ-disabled critical section, the trace is a
//! faithful serialization of kernel state evolution and the model never
//! has to guess about interleavings.
//!
//! Checked invariants:
//!
//! * **Highest-ready-priority runs** — every `Sched` probe must name the
//!   unique maximum-priority ready task (scenario priorities are
//!   distinct).
//! * **No lost wakeups** — a woken or delay-expired task is ready in the
//!   model; if the kernel stops scheduling it, the next `Sched` naming a
//!   lower-priority task fails.
//! * **Semaphore accounting** — a successful take requires a positive
//!   modeled count, a blocking take a zero count; gives wake exactly the
//!   highest-priority modeled waiter.
//! * **Delay expiry** — a delayed task never runs (marks) before the tick
//!   its delay expires at, and timer ticks wake it exactly on time.
//! * **Script order** — each task's loop-top marks appear in script
//!   order, only while the model says that task is the one running, and
//!   never from inside an ISR window.
//! * **IPI delivery** (SMP scenarios, see [`crate::smp`]) — an `IpiSend`
//!   probe must match the sending task's scripted target and code; every
//!   `IpiRecv` drained inside a software-interrupt window must name a
//!   declared semaphore and be followed by exactly one deferred give on
//!   it before the window closes.
//!
//! Priority *inheritance* is not modeled: the kernel's mutexes are plain
//! binary semaphores without an inheritance protocol, so the oracle checks
//! them under base-priority semantics only (see DESIGN.md §9).

use freertos_lite::probe::{self, Probe};
use rtosunit::{EventTrace, TraceEvent};
use rvsim_isa::csr;
use std::fmt;

use crate::scenario::{Action, ScenarioSpec};

/// An invariant violation: where in the trace, and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Platform cycle of the offending event.
    pub cycle: u64,
    /// Human-readable description of the violated invariant.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}: {}", self.cycle, self.message)
    }
}

/// Coverage counters for one checked scenario.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Scheduling decisions checked (`Sched` probes).
    pub scheds: u64,
    /// Task loop-top marks checked.
    pub task_marks: u64,
    /// Successful semaphore takes.
    pub takes_ok: u64,
    /// Blocking takes (waiter enqueued).
    pub takes_blocked: u64,
    /// Task-context gives (with or without a wakeup).
    pub gives: u64,
    /// ISR-context deferred gives.
    pub isr_gives: u64,
    /// Delay-list registrations.
    pub delays: u64,
    /// Timer ticks observed.
    pub ticks: u64,
    /// Cross-hart IPI posts (`IpiSend` probes, SMP scenarios).
    pub ipi_sends: u64,
    /// Mailbox codes drained in software ISRs (`IpiRecv` probes).
    pub ipi_recvs: u64,
}

impl OracleStats {
    /// Accumulates `other` into `self` (coverage aggregation across
    /// schedules or harts).
    pub fn merge(&mut self, other: &OracleStats) {
        self.scheds += other.scheds;
        self.task_marks += other.task_marks;
        self.takes_ok += other.takes_ok;
        self.takes_blocked += other.takes_blocked;
        self.gives += other.gives;
        self.isr_gives += other.isr_gives;
        self.delays += other.delays;
        self.ticks += other.ticks;
        self.ipi_sends += other.ipi_sends;
        self.ipi_recvs += other.ipi_recvs;
    }

    /// `(name, value)` pairs in declaration order — the stable export
    /// used by campaign telemetry sections and reports.
    pub fn named(&self) -> [(&'static str, u64); 10] {
        [
            ("scheds", self.scheds),
            ("task_marks", self.task_marks),
            ("takes_ok", self.takes_ok),
            ("takes_blocked", self.takes_blocked),
            ("gives", self.gives),
            ("isr_gives", self.isr_gives),
            ("delays", self.delays),
            ("ticks", self.ticks),
            ("ipi_sends", self.ipi_sends),
            ("ipi_recvs", self.ipi_recvs),
        ]
    }
}

struct Model<'a> {
    spec: &'a ScenarioSpec,
    /// Per-task priority, idle (id `n`) last with priority 0.
    prio: Vec<u8>,
    /// Ready-list membership (includes the running task).
    ready: Vec<bool>,
    /// Wake tick of a delayed task.
    wake: Vec<Option<u64>>,
    /// Modeled semaphore counts.
    counts: Vec<u32>,
    /// Waiter queues, highest priority first.
    waiters: Vec<Vec<usize>>,
    /// Next expected script step per user task (cyclic).
    next_step: Vec<usize>,
    /// Probe-bearing action each user task is currently performing.
    action: Vec<Option<Action>>,
    tick: u64,
    current: usize,
    in_isr: Option<u32>,
    /// Task selected by the `Sched` probe of the open ISR window.
    sched: Option<usize>,
    /// Semaphore named by an `IpiRecv` whose deferred give is still due.
    ipi_give: Option<usize>,
    stats: OracleStats,
}

impl<'a> Model<'a> {
    fn new(spec: &'a ScenarioSpec) -> Model<'a> {
        let n = spec.tasks.len();
        let mut prio: Vec<u8> = spec.tasks.iter().map(|t| t.prio).collect();
        prio.push(0); // idle
        Model {
            spec,
            prio,
            ready: vec![true; n + 1],
            wake: vec![None; n + 1],
            counts: spec.sems.clone(),
            waiters: vec![Vec::new(); spec.sems.len()],
            next_step: vec![0; n],
            action: vec![None; n],
            tick: 0,
            current: 0,
            in_isr: None,
            sched: None,
            ipi_give: None,
            stats: OracleStats::default(),
        }
    }

    fn idle(&self) -> usize {
        self.spec.tasks.len()
    }

    /// The unique highest-priority ready task (priorities are distinct,
    /// idle is always ready).
    fn expected_next(&self) -> usize {
        (0..self.ready.len())
            .filter(|&t| self.ready[t])
            .max_by_key(|&t| self.prio[t])
            .expect("idle is always ready")
    }

    fn current_give(&self, cycle: u64, what: &str) -> Result<usize, Violation> {
        match self.action.get(self.current).copied().flatten() {
            Some(Action::SemGive(s)) => Ok(s),
            other => Err(Violation {
                cycle,
                message: format!(
                    "{what} from task {} whose pending action is {other:?}",
                    self.current
                ),
            }),
        }
    }

    fn give(&mut self, cycle: u64, s: usize, woke: Option<u32>) -> Result<(), Violation> {
        self.counts[s] += 1;
        match woke {
            None => {
                if let Some(&w) = self.waiters[s].first() {
                    return Err(Violation {
                        cycle,
                        message: format!(
                            "give on sem {s} woke nobody but task {w} is modeled waiting"
                        ),
                    });
                }
            }
            Some(id) => {
                let Some(&w) = self.waiters[s].first() else {
                    return Err(Violation {
                        cycle,
                        message: format!("give on sem {s} woke task {id} but none is waiting"),
                    });
                };
                if w != id as usize {
                    return Err(Violation {
                        cycle,
                        message: format!(
                            "give on sem {s} woke task {id}, expected highest-priority \
                             waiter {w}"
                        ),
                    });
                }
                self.waiters[s].remove(0);
                self.ready[w] = true;
            }
        }
        Ok(())
    }

    fn on_probe(&mut self, cycle: u64, p: Probe) -> Result<(), Violation> {
        let fail = |message: String| Err(Violation { cycle, message });
        match p {
            Probe::TakeOk => {
                if self.in_isr.is_some() {
                    return fail("take_ok inside an ISR window".into());
                }
                let Some(Action::SemTake(s)) = self.action.get(self.current).copied().flatten()
                else {
                    return fail(format!("take_ok from task {} not taking", self.current));
                };
                if self.counts[s] == 0 {
                    return fail(format!("take_ok on sem {s} with modeled count 0"));
                }
                self.counts[s] -= 1;
                self.action[self.current] = None;
                self.stats.takes_ok += 1;
            }
            Probe::TakeBlock => {
                if self.in_isr.is_some() {
                    return fail("take_block inside an ISR window".into());
                }
                let Some(Action::SemTake(s)) = self.action.get(self.current).copied().flatten()
                else {
                    return fail(format!("take_block from task {} not taking", self.current));
                };
                if self.counts[s] != 0 {
                    return fail(format!(
                        "task {} blocked on sem {s} with modeled count {}",
                        self.current, self.counts[s]
                    ));
                }
                self.ready[self.current] = false;
                // Priority-descending insert (prios are distinct).
                let me = self.current;
                let pos = self.waiters[s]
                    .iter()
                    .position(|&w| self.prio[w] < self.prio[me])
                    .unwrap_or(self.waiters[s].len());
                self.waiters[s].insert(pos, me);
                self.stats.takes_blocked += 1;
            }
            Probe::GiveNoWake => {
                if self.in_isr.is_some() {
                    return fail("give probe inside an ISR window".into());
                }
                let s = self.current_give(cycle, "give_nowake")?;
                self.give(cycle, s, None)?;
                self.action[self.current] = None;
                self.stats.gives += 1;
            }
            Probe::GiveWoke { id } => {
                if self.in_isr.is_some() {
                    return fail("give probe inside an ISR window".into());
                }
                let s = self.current_give(cycle, "give_woke")?;
                self.give(cycle, s, Some(id))?;
                self.action[self.current] = None;
                self.stats.gives += 1;
            }
            Probe::DelayDone => {
                if self.in_isr.is_some() {
                    return fail("delay probe inside an ISR window".into());
                }
                let Some(Action::Delay(ticks)) = self.action.get(self.current).copied().flatten()
                else {
                    return fail(format!(
                        "delay probe from task {} not delaying",
                        self.current
                    ));
                };
                self.wake[self.current] = Some(self.tick + u64::from(ticks));
                self.ready[self.current] = false;
                self.action[self.current] = None;
                self.stats.delays += 1;
            }
            Probe::IsrGiveNoWake | Probe::IsrGiveWoke { .. } => {
                let s = match self.in_isr {
                    Some(csr::CAUSE_EXTERNAL) => {
                        let Some(s) = self.spec.ext_sem else {
                            return fail("ISR give probe with no bound external semaphore".into());
                        };
                        s
                    }
                    Some(csr::CAUSE_SOFTWARE) => {
                        let Some(s) = self.ipi_give.take() else {
                            return fail(
                                "ISR give in a software window without a drained IPI code".into(),
                            );
                        };
                        s
                    }
                    _ => {
                        return fail("ISR give probe outside an interrupt window".into());
                    }
                };
                let woke = match p {
                    Probe::IsrGiveWoke { id } => Some(id),
                    _ => None,
                };
                self.give(cycle, s, woke)?;
                self.stats.isr_gives += 1;
            }
            Probe::IpiSend { target, code } => {
                if self.in_isr.is_some() {
                    return fail("ipi_send inside an ISR window".into());
                }
                let Some(Action::IpiGive { target: t, sem }) =
                    self.action.get(self.current).copied().flatten()
                else {
                    return fail(format!(
                        "ipi_send from task {} not posting an IPI",
                        self.current
                    ));
                };
                if target as usize != t || code as usize != sem + 1 {
                    return fail(format!(
                        "ipi_send (target {target}, code {code}) does not match scripted \
                         IpiGive (target {t}, sem {sem})"
                    ));
                }
                self.action[self.current] = None;
                self.stats.ipi_sends += 1;
            }
            Probe::IpiRecv { code } => {
                if self.in_isr != Some(csr::CAUSE_SOFTWARE) {
                    return fail("ipi_recv outside a software-interrupt window".into());
                }
                let Some(s) = (code as usize).checked_sub(1) else {
                    return fail("ipi_recv drained the reserved code 0".into());
                };
                if s >= self.counts.len() {
                    return fail(format!("ipi_recv code {code} names no declared semaphore"));
                }
                if let Some(p) = self.ipi_give {
                    return fail(format!(
                        "ipi_recv with the give for sem {p} still outstanding"
                    ));
                }
                self.ipi_give = Some(s);
                self.stats.ipi_recvs += 1;
            }
            Probe::Sched { id } => {
                if self.in_isr.is_none() {
                    return fail("sched probe outside an ISR window".into());
                }
                if self.sched.is_some() {
                    return fail("two sched probes in one ISR window".into());
                }
                let id = id as usize;
                if id >= self.ready.len() {
                    return fail(format!("sched selected unknown task {id}"));
                }
                let expect = self.expected_next();
                if id != expect {
                    return fail(format!(
                        "sched selected task {id} (prio {}, ready={}), expected task \
                         {expect} (prio {})",
                        self.prio[id], self.ready[id], self.prio[expect]
                    ));
                }
                self.sched = Some(id);
                self.stats.scheds += 1;
            }
        }
        Ok(())
    }

    fn on_task_mark(&mut self, cycle: u64, task: u32, step: u32) -> Result<(), Violation> {
        let fail = |message: String| Err(Violation { cycle, message });
        let t = task as usize;
        if t >= self.spec.tasks.len() {
            return fail(format!("mark from unknown task {t}"));
        }
        if self.in_isr.is_some() {
            return fail(format!("task {t} marked inside an ISR window"));
        }
        if t != self.current {
            return fail(format!(
                "task {t} marked step {step} while task {} is modeled running",
                self.current
            ));
        }
        if let Some(w) = self.wake[t] {
            return fail(format!(
                "task {t} ran at tick {} but is delayed until tick {w}",
                self.tick
            ));
        }
        if let Some(a) = self.action[t] {
            return fail(format!(
                "task {t} reached step {step} with action {a:?} still pending"
            ));
        }
        if step as usize != self.next_step[t] {
            return fail(format!(
                "task {t} marked step {step}, expected step {}",
                self.next_step[t]
            ));
        }
        let script = &self.spec.tasks[t].script;
        self.action[t] = match script[step as usize] {
            a @ (Action::Delay(_)
            | Action::SemTake(_)
            | Action::SemGive(_)
            | Action::IpiGive { .. }) => Some(a),
            Action::Busy(_) | Action::Yield => None,
        };
        self.next_step[t] = (step as usize + 1) % script.len();
        self.stats.task_marks += 1;
        Ok(())
    }

    fn on_event(&mut self, cycle: u64, ev: TraceEvent) -> Result<(), Violation> {
        let fail = |message: String| Err(Violation { cycle, message });
        match ev {
            TraceEvent::IsrEntry { cause } => {
                if self.in_isr.is_some() {
                    return fail("nested ISR entry".into());
                }
                self.in_isr = Some(cause);
                if cause == csr::CAUSE_TIMER {
                    self.tick += 1;
                    self.stats.ticks += 1;
                    for t in 0..self.ready.len() {
                        if self.wake[t].is_some_and(|w| w <= self.tick) {
                            self.wake[t] = None;
                            self.ready[t] = true;
                        }
                    }
                }
            }
            TraceEvent::MretRetired => {
                if self.in_isr.is_none() {
                    return fail("mret outside an ISR window".into());
                }
                if let Some(s) = self.ipi_give {
                    return fail(format!(
                        "ISR returned with the drained IPI give for sem {s} never applied"
                    ));
                }
                let Some(id) = self.sched.take() else {
                    return fail("ISR returned without a sched probe".into());
                };
                self.current = id;
                self.in_isr = None;
            }
            TraceEvent::GuestMark { value } => {
                if let Some(p) = Probe::decode(value) {
                    self.on_probe(cycle, p)?;
                } else if let Some((task, step)) = probe::decode_task_mark(value) {
                    self.on_task_mark(cycle, task, step)?;
                } else {
                    return fail(format!("unexpected guest mark {value:#010x}"));
                }
            }
            // Edge timestamps, cache/unit activity and phase marks carry
            // no scheduling state.
            _ => {}
        }
        Ok(())
    }
}

/// Replays `trace` against the model of `spec`. Returns coverage counters
/// on success, the first invariant violation otherwise.
pub fn check(spec: &ScenarioSpec, trace: &EventTrace) -> Result<OracleStats, Violation> {
    let mut m = Model::new(spec);
    debug_assert!(m.idle() == spec.tasks.len());
    for (cycle, ev) in trace.iter() {
        m.on_event(cycle, ev)?;
    }
    Ok(m.stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::TaskScript;
    use rtosunit::Preset;
    use rtosunit::TraceSink;
    use rvsim_cores::CoreKind;

    fn two_task_spec() -> ScenarioSpec {
        ScenarioSpec {
            core: CoreKind::Cv32e40p,
            preset: Preset::Vanilla,
            tick_period: 400,
            tasks: vec![
                TaskScript {
                    prio: 5,
                    script: vec![Action::Busy(10), Action::Delay(1)],
                },
                TaskScript {
                    prio: 3,
                    script: vec![Action::Busy(10)],
                },
            ],
            sems: vec![0],
            ext_sem: None,
            ext_irqs: Vec::new(),
            max_cycles: 6_000,
        }
    }

    fn trace_of(events: &[(u64, TraceEvent)]) -> EventTrace {
        let mut t = EventTrace::new(64);
        for &(c, e) in events {
            t.record(c, e);
        }
        t
    }

    fn mark(task: u32, step: u32) -> TraceEvent {
        TraceEvent::GuestMark {
            value: probe::task_mark(task, step),
        }
    }

    fn sched(id: u32) -> TraceEvent {
        TraceEvent::GuestMark {
            value: Probe::Sched { id }.encode(),
        }
    }

    #[test]
    fn a_consistent_trace_passes() {
        // t0 (prio 5) runs, delays one tick; t1 (prio 3) runs; the timer
        // wakes t0 which preempts back.
        let spec = two_task_spec();
        let events = [
            (10, mark(0, 0)),
            (20, mark(0, 1)),
            (
                25,
                TraceEvent::GuestMark {
                    value: Probe::DelayDone.encode(),
                },
            ),
            (
                30,
                TraceEvent::IsrEntry {
                    cause: csr::CAUSE_SOFTWARE,
                },
            ),
            (40, sched(1)),
            (50, TraceEvent::MretRetired),
            (60, mark(1, 0)),
            (
                400,
                TraceEvent::IsrEntry {
                    cause: csr::CAUSE_TIMER,
                },
            ),
            (410, sched(0)),
            (420, TraceEvent::MretRetired),
            (430, mark(0, 0)),
        ];
        let stats = check(&spec, &trace_of(&events)).expect("trace is consistent");
        assert_eq!(stats.scheds, 2);
        assert_eq!(stats.task_marks, 4);
        assert_eq!(stats.delays, 1);
        assert_eq!(stats.ticks, 1);
    }

    #[test]
    fn wrong_sched_choice_is_flagged() {
        // Both tasks ready, but the scheduler picks the lower-priority one.
        let spec = two_task_spec();
        let events = [
            (
                10,
                TraceEvent::IsrEntry {
                    cause: csr::CAUSE_TIMER,
                },
            ),
            (20, sched(1)),
        ];
        let v = check(&spec, &trace_of(&events)).expect_err("prio inversion");
        assert!(v.message.contains("expected task 0"), "{v}");
    }

    #[test]
    fn early_delay_wakeup_is_flagged() {
        // t0 delays one tick but marks again without any timer tick.
        let spec = two_task_spec();
        let events = [
            (10, mark(0, 0)),
            (20, mark(0, 1)),
            (
                25,
                TraceEvent::GuestMark {
                    value: Probe::DelayDone.encode(),
                },
            ),
            (
                30,
                TraceEvent::IsrEntry {
                    cause: csr::CAUSE_SOFTWARE,
                },
            ),
            (40, sched(0)), // lost the delay: t0 still scheduled
        ];
        let v = check(&spec, &trace_of(&events)).expect_err("delayed task ran");
        assert!(v.message.contains("expected task 1"), "{v}");
    }

    #[test]
    fn take_without_tokens_is_flagged() {
        let mut spec = two_task_spec();
        spec.tasks[0].script = vec![Action::SemTake(0)];
        let events = [
            (10, mark(0, 0)),
            (
                20,
                TraceEvent::GuestMark {
                    value: Probe::TakeOk.encode(),
                },
            ),
        ];
        let v = check(&spec, &trace_of(&events)).expect_err("count was zero");
        assert!(v.message.contains("count 0"), "{v}");
    }

    #[test]
    fn out_of_order_marks_are_flagged() {
        let spec = two_task_spec();
        let events = [(10, mark(0, 1))];
        let v = check(&spec, &trace_of(&events)).expect_err("skipped step 0");
        assert!(v.message.contains("expected step 0"), "{v}");
    }

    #[test]
    fn mret_without_sched_probe_is_flagged() {
        let spec = two_task_spec();
        let events = [
            (
                10,
                TraceEvent::IsrEntry {
                    cause: csr::CAUSE_TIMER,
                },
            ),
            (20, TraceEvent::MretRetired),
        ];
        let v = check(&spec, &trace_of(&events)).expect_err("no sched probe");
        assert!(v.message.contains("without a sched probe"), "{v}");
    }
}
