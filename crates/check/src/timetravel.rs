//! Time-travel execution: periodic auto-checkpoints plus deterministic
//! rewind.
//!
//! The simulator is fully deterministic and its entire machine state
//! round-trips through the snapshot codec, so "running backwards" needs
//! no reverse semantics: [`TimeTravel`] drives a [`System`] forward in
//! checkpointed slices, and [`rewind`](TimeTravel::rewind) restores the
//! nearest checkpoint at or before the target cycle and re-executes the
//! remainder. The rewound system is cycle-for-cycle, counter-for-counter
//! and trace-for-trace identical to a cold run stopped at the same cycle
//! — [`travel_selfcheck`] proves exactly that, and the `checkfuzz travel`
//! verb runs it from the command line.

use crate::scenario::{scenario_for_seed, scenario_system};
use rtosunit::{Preset, System};
use rvsim_cores::CoreKind;
use rvsim_snapshot::Json;

/// A [`System`] under time-travel supervision: every `interval` cycles of
/// forward progress deposits an automatic checkpoint (a full state
/// snapshot), and any previously visited cycle can be revisited exactly.
pub struct TimeTravel {
    sys: System,
    interval: u64,
    /// `(cycle, state)` pairs, strictly increasing in cycle. The first
    /// entry is taken at construction, so every cycle from there on is
    /// reachable.
    checkpoints: Vec<(u64, Json)>,
}

impl TimeTravel {
    /// Starts supervising `sys`, checkpointing it immediately and then
    /// every `interval` cycles of [`run`](Self::run).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(sys: System, interval: u64) -> TimeTravel {
        assert!(interval > 0, "checkpoint interval must be positive");
        let first = (sys.platform.cycle(), sys.state_snap());
        TimeTravel {
            sys,
            interval,
            checkpoints: vec![first],
        }
    }

    /// The supervised system, at its furthest point of forward progress.
    pub fn system(&self) -> &System {
        &self.sys
    }

    /// Cycles at which checkpoints exist, in increasing order.
    pub fn checkpoint_cycles(&self) -> Vec<u64> {
        self.checkpoints.iter().map(|(c, _)| *c).collect()
    }

    /// Runs forward by up to `cycles`, depositing a checkpoint every
    /// `interval` cycles. Stops early if the guest halts.
    pub fn run(&mut self, cycles: u64) {
        let target = self.sys.platform.cycle() + cycles;
        while self.sys.platform.cycle() < target && !self.sys.halted() {
            let last = self.checkpoints.last().expect("first checkpoint exists").0;
            let stop = (last + self.interval).min(target);
            let budget = stop - self.sys.platform.cycle();
            self.sys.run(budget);
            if self.sys.platform.cycle() == last + self.interval {
                let cp = (self.sys.platform.cycle(), self.sys.state_snap());
                self.checkpoints.push(cp);
            }
        }
    }

    /// Produces a fresh [`System`] positioned exactly at `target` cycles:
    /// the nearest checkpoint at or before `target` is restored and the
    /// gap re-executed deterministically. The supervised system itself is
    /// untouched, so the result is a fork from the past.
    pub fn rewind(&self, target: u64) -> Result<System, String> {
        let (cycle, state) = self
            .checkpoints
            .iter()
            .rev()
            .find(|(c, _)| *c <= target)
            .ok_or_else(|| format!("no checkpoint at or before cycle {target}"))?;
        let mut sys = System::from_state_snap(state).map_err(|e| e.to_string())?;
        sys.run(target - cycle);
        Ok(sys)
    }
}

/// Summary of a passing [`travel_selfcheck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TravelReport {
    /// Checkpoints deposited during the forward run.
    pub checkpoints: usize,
    /// Rewind targets verified against cold execution.
    pub rewinds: usize,
    /// Cycle the forward run finished at.
    pub final_cycle: u64,
}

/// End-to-end time-travel verification on one generated kernel scenario:
/// runs it forward under checkpoint supervision, then rewinds to a spread
/// of intermediate cycles and demands each rewound system's full state
/// snapshot render byte-identically to a cold run stopped at the same
/// cycle. Any divergence — a cycle, a counter, a trace event — is an
/// error naming the offending target.
pub fn travel_selfcheck(
    core: CoreKind,
    preset: Preset,
    seed: u64,
    total: u64,
    interval: u64,
) -> Result<TravelReport, String> {
    let spec = scenario_for_seed(core, preset, seed);
    let mut tt = TimeTravel::new(scenario_system(&spec), interval);
    tt.run(total);

    // Targets straddle checkpoint boundaries: exactly on one, just after
    // one, mid-slice, and the final cycle.
    let targets = [
        interval,
        interval + 1,
        interval + interval / 2,
        total / 2,
        total,
    ];
    let mut rewinds = 0;
    for &target in &targets {
        if target > tt.system().platform.cycle() {
            continue;
        }
        let rewound = tt.rewind(target)?;
        let mut cold = scenario_system(&spec);
        cold.run(target);
        if rewound.state_snap().render() != cold.state_snap().render() {
            return Err(format!(
                "rewind to cycle {target} diverged from cold execution \
                 ({core} {preset:?} seed {seed})"
            ));
        }
        rewinds += 1;
    }
    if rewinds == 0 {
        return Err("no rewind target was reachable".into());
    }
    Ok(TravelReport {
        checkpoints: tt.checkpoint_cycles().len(),
        rewinds,
        final_cycle: tt.system().platform.cycle(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rewind_matches_cold_execution() {
        let report = travel_selfcheck(CoreKind::Cva6, Preset::Slt, 42, 60_000, 10_000)
            .expect("time travel is exact");
        assert!(report.checkpoints >= 2, "{report:?}");
        assert!(report.rewinds >= 4, "{report:?}");
    }

    #[test]
    fn rewind_before_the_first_checkpoint_is_an_error() {
        let spec = scenario_for_seed(CoreKind::Cv32e40p, Preset::Vanilla, 7);
        let mut sys = scenario_system(&spec);
        sys.run(5_000);
        let tt = TimeTravel::new(sys, 10_000);
        assert!(
            tt.rewind(1_000).is_err(),
            "the past before supervision is gone"
        );
        assert!(
            tt.rewind(5_000).is_ok(),
            "the supervision start is reachable"
        );
    }

    #[test]
    fn rewound_forks_are_independent() {
        let spec = scenario_for_seed(CoreKind::NaxRiscv, Preset::Sdlot, 9);
        let mut tt = TimeTravel::new(scenario_system(&spec), 8_000);
        tt.run(40_000);
        let before = tt.system().state_snap().render();
        // Rewinding and running a fork forward must not disturb the
        // supervised system.
        let mut fork = tt.rewind(12_345).expect("rewind");
        fork.run(10_000);
        assert_eq!(tt.system().state_snap().render(), before);
    }
}
