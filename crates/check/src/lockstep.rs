//! Golden-model lockstep execution.
//!
//! Runs one constrained random program on a timing engine
//! ([`rvsim_cores::CoreEngine`]) and on the golden architectural executor
//! ([`rvsim_cores::GoldenCore`]) simultaneously, diffing the full
//! architectural state — registers, PC, CSRs, and at the end of the
//! episode every word of data memory — at **every retire boundary**.
//!
//! Synchronisation works on retire counts, not cycles: the engine is
//! stepped cycle by cycle, and whenever a cycle retires `n` instructions
//! (0 while draining stalls, 1 normally, 2 for a dual-issue pair) the
//! golden core is stepped `n` times and the states compared. Interrupts
//! are timing, so the driver owns `mip` on both sides: a seed-derived plan
//! raises lines at chosen retire counts, and when the engine takes the
//! interrupt the driver demands the golden core take one too — with the
//! cause recomputed independently from the golden core's own CSRs.
//! Synchronous exceptions need no plan: the golden core discovers the same
//! misaligned access itself, and the driver merely checks cause equality.
//!
//! With [`EpisodeSpec::blocks`] set the engine instead runs through
//! batched [`run_until`](rvsim_cores::CoreEngine::run_until) calls with
//! the block translation cache enabled — same program, same golden model,
//! but the translated fast path does the executing. State is diffed at
//! every batch boundary and event, so a block that retires a wrong value,
//! mis-orders a trap or survives an imem write diverges within one chunk.
//! Interrupt lines rise at batch granularity (`at_retire` is a lower
//! bound there), which keeps episodes deterministic while letting blocks
//! chain freely inside a batch.
//!
//! With [`EpisodeSpec::snap`] set the engine is additionally round-tripped
//! through the snapshot codec ([`CoreEngine::to_snap`] →
//! [`restore_snap`](rvsim_cores::CoreEngine::restore_snap) into a fresh
//! engine, which then replaces the original) at pseudo-random retire
//! points. The round-trip must be invisible: any micro-architectural
//! state the codec fails to carry desynchronises the swapped-in engine
//! from the golden model and is caught by the ordinary lockstep diff.

use crate::coproc::{ScratchCoproc, ScratchUnit};
use rvsim_cores::engine::{BusResponse, DataBus};
use rvsim_cores::{make_engine, stop_events, CoreEvent, CoreKind, GoldenCore, GoldenStep};
use rvsim_isa::progen::{generate, GenConfig, ProgramSpec};
use rvsim_isa::{csr, Reg, Rng64};
use rvsim_mem::{AccessSize, Mem};

/// Instruction-memory window used by every episode.
pub const IMEM_BASE: u32 = 0;
/// Instruction-memory size in bytes.
pub const IMEM_SIZE: u32 = 0x1_0000;

/// One planned interrupt: raise `mask` once the engine has retired
/// `at_retire` instructions. The line stays up until taken (or the episode
/// ends); entry clears it, modelling an acknowledged edge interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IrqEvent {
    /// Retire count at which the line rises.
    pub at_retire: u64,
    /// `mip` bits to raise (`MIP_MSIP`/`MIP_MTIP`/`MIP_MEIP`).
    pub mask: u32,
}

/// A deliberately injected bug for harness self-tests: proves a real
/// divergence is caught, shrunk and replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Flip the low result bit of every `sltu`/`sltiu` the golden core
    /// retires — the classic "flipped carry" comparator bug.
    GoldenSltuFlip,
}

impl Fault {
    /// Stable artifact name.
    pub fn name(self) -> &'static str {
        match self {
            Fault::GoldenSltuFlip => "golden_sltu_flip",
        }
    }

    /// Parses an artifact name.
    pub fn from_name(name: &str) -> Option<Fault> {
        match name {
            "golden_sltu_flip" => Some(Fault::GoldenSltuFlip),
            _ => None,
        }
    }
}

/// Everything one lockstep episode needs — self-contained, serializable,
/// shrinkable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpisodeSpec {
    /// Engine under test.
    pub core: CoreKind,
    /// The generated program.
    pub spec: ProgramSpec,
    /// Interrupt plan, sorted by retire count.
    pub irqs: Vec<IrqEvent>,
    /// Stop after this many retired instructions.
    pub max_retires: u64,
    /// Hard cycle budget (guards against park/stall loops).
    pub max_cycles: u64,
    /// Injected bug, if any (self-test only).
    pub fault: Option<Fault>,
    /// Drive the engine through batched `run_until` calls with the block
    /// translation cache enabled, instead of per-cycle stepping.
    pub blocks: bool,
    /// Round-trip the engine through the snapshot codec at pseudo-random
    /// retire points mid-episode: serialize, restore into a fresh engine,
    /// and swap it in. The round-trip must be invisible — state the
    /// snapshot fails to carry diverges from the golden model within a
    /// few retires of the swap.
    pub snap: bool,
}

/// A state divergence between engine and golden model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// What diverged (e.g. `"x13"`, `"pc"`, `"mstatus"`, `"mem[0x...]"`).
    pub field: String,
    /// Engine-side value.
    pub engine: u32,
    /// Golden-side value.
    pub golden: u32,
    /// Retired-instruction count at the diff point.
    pub retired: u64,
    /// Engine cycle at the diff point.
    pub cycle: u64,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} diverged at retire {} (cycle {}): engine {:#010x}, golden {:#010x}",
            self.field, self.retired, self.cycle, self.engine, self.golden
        )
    }
}

/// Summary of a passing episode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpisodeStats {
    /// Instructions retired by the engine.
    pub retired: u64,
    /// Engine cycles consumed.
    pub cycles: u64,
    /// Synchronous exceptions taken (misaligned fetch/load/store).
    pub exceptions: u64,
    /// Interrupts taken.
    pub interrupts: u64,
    /// Whether the guest halted (vs running out of budget).
    pub halted: bool,
    /// Translated-block dispatches (zero unless the episode ran with
    /// [`EpisodeSpec::blocks`]).
    pub block_hits: u64,
    /// Mid-episode snapshot round-trips performed (zero unless the
    /// episode ran with [`EpisodeSpec::snap`]).
    pub snap_roundtrips: u64,
}

/// The engine-side data bus: flat SRAM, one extra cycle per load (enough
/// to exercise multi-cycle drains without a cache model).
struct SramBus {
    mem: Mem,
}

impl DataBus for SramBus {
    fn core_access(&mut self, addr: u32, size: AccessSize, write: Option<u32>) -> BusResponse {
        match write {
            Some(v) => {
                self.mem.write(addr, size, v);
                BusResponse {
                    data: 0,
                    extra_latency: 0,
                }
            }
            None => BusResponse {
                data: self.mem.read(addr, size),
                extra_latency: 1,
            },
        }
    }

    fn unit_access(&mut self, _addr: u32, _write: Option<u32>) -> Option<u32> {
        None
    }
}

const CSR_FIELDS: [(&str, u16); 6] = [
    ("mstatus", csr::MSTATUS),
    ("mie", csr::MIE),
    ("mtvec", csr::MTVEC),
    ("mepc", csr::MEPC),
    ("mcause", csr::MCAUSE),
    ("mscratch", csr::MSCRATCH),
];

/// Derives the default interrupt plan for a seed: a handful of lines
/// raised at random retire counts.
pub fn default_irq_plan(seed: u64, max_retires: u64) -> Vec<IrqEvent> {
    let mut rng = Rng64::new(seed ^ 0x1234_5678_9abc_def0);
    let n = rng.below(7);
    let mut plan: Vec<IrqEvent> = (0..n)
        .map(|_| IrqEvent {
            at_retire: 1 + rng.below(max_retires.max(2) - 1),
            mask: *rng.pick(&[csr::MIP_MSIP, csr::MIP_MTIP, csr::MIP_MEIP]),
        })
        .collect();
    plan.sort_by_key(|e| e.at_retire);
    plan
}

/// Builds the full episode spec for `(core, seed)` under the default
/// budgets.
pub fn episode_for_seed(core: CoreKind, seed: u64, cfg: GenConfig) -> EpisodeSpec {
    let max_retires = 4 * cfg.len as u64 + 200;
    EpisodeSpec {
        core,
        spec: generate(seed, cfg),
        irqs: default_irq_plan(seed, max_retires),
        max_retires,
        max_cycles: 40 * max_retires,
        fault: None,
        blocks: false,
        snap: false,
    }
}

/// Tracks the pseudo-random retire points at which a `snap` episode
/// round-trips its engine through the snapshot codec. Gaps are
/// xorshift-derived from the episode's retire budget, so snapshot points
/// vary across episodes but are identical on replay.
struct SnapPlan {
    seq: u64,
    next: u64,
}

impl SnapPlan {
    fn new(ep: &EpisodeSpec) -> SnapPlan {
        let mut plan = SnapPlan {
            seq: 0x5eed_ca11_0dd5_ee1f ^ ep.max_retires,
            next: u64::MAX,
        };
        if ep.snap {
            plan.next = plan.gap();
        }
        plan
    }

    fn gap(&mut self) -> u64 {
        self.seq ^= self.seq << 13;
        self.seq ^= self.seq >> 7;
        self.seq ^= self.seq << 17;
        40 + self.seq % 200
    }

    /// Round-trips the engine (and its SRAM bus) through the snapshot
    /// codec if a snapshot point is due at the current retire count. The
    /// serialized form must be stable, restore bit-exactly into a fresh
    /// engine, and re-serialize identically; the restored engine then
    /// *replaces* the original, so any state the codec drops shows up as
    /// an ordinary lockstep divergence downstream.
    fn maybe_roundtrip(
        &mut self,
        engine: &mut rvsim_cores::CoreEngine,
        bus: &mut SramBus,
        core: CoreKind,
        stats: &mut EpisodeStats,
    ) -> Result<(), Mismatch> {
        if engine.retired() < self.next {
            return Ok(());
        }
        let fail = |field: String, e: &rvsim_cores::CoreEngine| Mismatch {
            field,
            engine: 0,
            golden: 0,
            retired: e.retired(),
            cycle: e.cycle(),
        };
        let doc = engine.to_snap();
        if doc.render() != engine.to_snap().render() {
            return Err(fail(
                "snapshot digest (unstable serialization)".into(),
                engine,
            ));
        }
        let mut fresh = make_engine(core, IMEM_BASE, IMEM_SIZE);
        fresh
            .restore_snap(&doc)
            .map_err(|e| fail(format!("snapshot restore: {e}"), engine))?;
        if fresh.to_snap().render() != doc.render() {
            return Err(fail(
                "snapshot re-serialization after restore".into(),
                engine,
            ));
        }
        *engine = fresh;
        let bus_doc = bus.mem.to_snap();
        bus.mem = Mem::from_snap(&bus_doc)
            .map_err(|e| fail(format!("bus snapshot restore: {e}"), engine))?;
        stats.snap_roundtrips += 1;
        self.next = engine.retired() + self.gap();
        Ok(())
    }
}

/// One episode's freshly loaded execution harness: the engine under test
/// with its bus and coprocessor, and the golden core with its own unit.
struct Rig {
    engine: rvsim_cores::CoreEngine,
    bus: SramBus,
    coproc: ScratchCoproc,
    golden: GoldenCore,
    golden_unit: ScratchUnit,
    data_base: u32,
    data_len: u32,
}

fn build_rig(ep: &EpisodeSpec) -> Rig {
    let mut program = ep.spec.emit();
    // Fill the unused remainder of imem with `ebreak`: control flow that
    // escapes the program (e.g. a controlled mret whose target register
    // was perturbed by a mid-sequence trap) halts both sides cleanly
    // instead of fetching undecodable zeros.
    const EBREAK: u32 = 0x0010_0073;
    let imem_words = ((IMEM_BASE + IMEM_SIZE - program.base) / 4) as usize;
    program.words.resize(imem_words, EBREAK);
    let data_base = ep.spec.cfg.data_base;
    let data_len = ep.spec.cfg.data_len;

    let mut engine = make_engine(ep.core, IMEM_BASE, IMEM_SIZE);
    engine.load_program(&program);
    let mut golden = GoldenCore::new(IMEM_BASE, IMEM_SIZE, data_base, data_len);
    golden.load_program(&program);

    Rig {
        engine,
        bus: SramBus {
            mem: Mem::new(data_base, data_len),
        },
        coproc: ScratchCoproc(ScratchUnit::new()),
        golden,
        golden_unit: ScratchUnit::new(),
        data_base,
        data_len,
    }
}

/// Runs one lockstep episode to completion, returning stats on agreement
/// or the first divergence. Per-cycle by default; with
/// [`EpisodeSpec::blocks`] set the engine runs through the batched block
/// translation cache path instead.
pub fn run_episode(ep: &EpisodeSpec) -> Result<EpisodeStats, Mismatch> {
    if ep.blocks {
        run_episode_batched(ep)
    } else {
        run_episode_cycle(ep)
    }
}

/// The per-cycle reference driver: golden catch-up and full state diff at
/// every retire boundary.
fn run_episode_cycle(ep: &EpisodeSpec) -> Result<EpisodeStats, Mismatch> {
    let Rig {
        mut engine,
        mut bus,
        mut coproc,
        mut golden,
        mut golden_unit,
        data_base,
        data_len,
    } = build_rig(ep);

    let mut stats = EpisodeStats::default();
    let mut snap_plan = SnapPlan::new(ep);
    let mut mip: u32 = 0;
    let mut next_irq = 0usize;

    loop {
        if engine.retired() >= ep.max_retires || engine.cycle() >= ep.max_cycles {
            break;
        }
        // Raise planned lines that are due at this retire count.
        while let Some(ev) = ep.irqs.get(next_irq) {
            if engine.retired() >= ev.at_retire {
                mip |= ev.mask;
                next_irq += 1;
            } else {
                break;
            }
        }
        // A parked core with nothing pending never wakes: jump the plan
        // forward, or end the episode once it is exhausted.
        if engine.waiting_for_interrupt() && mip & engine.state.csrs.mie == 0 {
            match ep.irqs.get(next_irq) {
                Some(ev) => {
                    mip |= ev.mask;
                    next_irq += 1;
                    continue;
                }
                None => break,
            }
        }

        engine.state.csrs.mip = mip;
        let before = engine.retired();
        let out = engine.step(&mut bus, &mut coproc);
        let retires = engine.retired() - before;

        // Mirror the engine's view of the lines onto the golden core for
        // exactly the instructions that retired this cycle.
        golden.mip = mip;
        for _ in 0..retires {
            step_golden(&mut golden, &mut golden_unit, ep.fault, &mut stats)?;
        }

        match out.event {
            Some(CoreEvent::InterruptEntered { cause }) => {
                stats.interrupts += 1;
                match golden.take_interrupt() {
                    Some(gc) if gc == cause => {}
                    other => {
                        return Err(Mismatch {
                            field: "interrupt cause".into(),
                            engine: cause,
                            golden: other.unwrap_or(0),
                            retired: engine.retired(),
                            cycle: engine.cycle(),
                        });
                    }
                }
                mip = 0;
                golden.mip = 0;
            }
            Some(CoreEvent::ExceptionEntered { cause }) => {
                stats.exceptions += 1;
                match step_golden(&mut golden, &mut golden_unit, ep.fault, &mut stats)? {
                    GoldenStep::Trap(gc) if gc == cause => {}
                    other => {
                        return Err(Mismatch {
                            field: format!("exception cause ({other:?} on golden side)"),
                            engine: cause,
                            golden: golden.mcause,
                            retired: engine.retired(),
                            cycle: engine.cycle(),
                        });
                    }
                }
            }
            _ => {}
        }

        if retires > 0 || out.event.is_some() {
            diff_state(&engine, &golden)?;
        }
        snap_plan.maybe_roundtrip(&mut engine, &mut bus, ep.core, &mut stats)?;
        if engine.halted() {
            stats.halted = true;
            break;
        }
    }

    stats.retired = engine.retired();
    stats.cycles = engine.cycle();
    if golden.retired() != engine.retired() {
        return Err(Mismatch {
            field: "retire count".into(),
            engine: engine.retired() as u32,
            golden: golden.retired() as u32,
            retired: engine.retired(),
            cycle: engine.cycle(),
        });
    }
    diff_memory(&engine, &bus, &golden, data_base, data_len)?;
    Ok(stats)
}

/// The batched driver: the block translation cache is enabled and the
/// engine runs in `CHUNK`-cycle `run_until` batches; the golden core
/// catches up by the batch's retire delta and the full state is diffed at
/// every batch boundary. Events surface on the batch's final cycle, so
/// interrupt and exception causes are checked exactly as in the per-cycle
/// driver.
fn run_episode_batched(ep: &EpisodeSpec) -> Result<EpisodeStats, Mismatch> {
    // Big enough for blocks to chain several times per batch, small
    // enough that a planned interrupt line is never starved for long.
    const CHUNK: u64 = 64;

    let Rig {
        mut engine,
        mut bus,
        mut coproc,
        mut golden,
        mut golden_unit,
        data_base,
        data_len,
    } = build_rig(ep);
    engine.set_block_cache(true);

    let mut stats = EpisodeStats::default();
    let mut snap_plan = SnapPlan::new(ep);
    let mut mip: u32 = 0;
    let mut next_irq = 0usize;

    loop {
        if engine.retired() >= ep.max_retires || engine.cycle() >= ep.max_cycles {
            break;
        }
        // Raise planned lines that are due at this retire count. Inside a
        // batch the count runs ahead unobserved, so a line rises at the
        // first batch boundary at or after its `at_retire`.
        while let Some(ev) = ep.irqs.get(next_irq) {
            if engine.retired() >= ev.at_retire {
                mip |= ev.mask;
                next_irq += 1;
            } else {
                break;
            }
        }
        // A parked core with nothing pending never wakes: jump the plan
        // forward, or end the episode once it is exhausted.
        if engine.waiting_for_interrupt() && mip & engine.state.csrs.mie == 0 {
            match ep.irqs.get(next_irq) {
                Some(ev) => {
                    mip |= ev.mask;
                    next_irq += 1;
                    continue;
                }
                None => break,
            }
        }

        // `mip` is constant for the whole batch — exactly the `run_until`
        // batching contract.
        engine.state.csrs.mip = mip;
        let before = engine.retired();
        let budget = CHUNK.min(ep.max_cycles - engine.cycle());
        let exit = engine.run_until(&mut bus, &mut coproc, stop_events::ALL, budget);
        let retires = engine.retired() - before;

        golden.mip = mip;
        for _ in 0..retires {
            step_golden(&mut golden, &mut golden_unit, ep.fault, &mut stats)?;
        }

        match exit.event {
            Some(CoreEvent::InterruptEntered { cause }) => {
                stats.interrupts += 1;
                match golden.take_interrupt() {
                    Some(gc) if gc == cause => {}
                    other => {
                        return Err(Mismatch {
                            field: "interrupt cause".into(),
                            engine: cause,
                            golden: other.unwrap_or(0),
                            retired: engine.retired(),
                            cycle: engine.cycle(),
                        });
                    }
                }
                mip = 0;
                golden.mip = 0;
            }
            Some(CoreEvent::ExceptionEntered { cause }) => {
                stats.exceptions += 1;
                match step_golden(&mut golden, &mut golden_unit, ep.fault, &mut stats)? {
                    GoldenStep::Trap(gc) if gc == cause => {}
                    other => {
                        return Err(Mismatch {
                            field: format!("exception cause ({other:?} on golden side)"),
                            engine: cause,
                            golden: golden.mcause,
                            retired: engine.retired(),
                            cycle: engine.cycle(),
                        });
                    }
                }
            }
            _ => {}
        }

        diff_state(&engine, &golden)?;
        snap_plan.maybe_roundtrip(&mut engine, &mut bus, ep.core, &mut stats)?;
        if engine.halted() {
            stats.halted = true;
            break;
        }
    }

    stats.retired = engine.retired();
    stats.cycles = engine.cycle();
    stats.block_hits = engine.counters().block_hits;
    if golden.retired() != engine.retired() {
        return Err(Mismatch {
            field: "retire count".into(),
            engine: engine.retired() as u32,
            golden: golden.retired() as u32,
            retired: engine.retired(),
            cycle: engine.cycle(),
        });
    }
    diff_memory(&engine, &bus, &golden, data_base, data_len)?;
    Ok(stats)
}

/// Steps the golden core once, applying the injected fault and asserting
/// that a step demanded for a retire really retires.
fn step_golden(
    golden: &mut GoldenCore,
    unit: &mut ScratchUnit,
    fault: Option<Fault>,
    stats: &mut EpisodeStats,
) -> Result<GoldenStep, Mismatch> {
    let fault_target = match fault {
        Some(Fault::GoldenSltuFlip) => sltu_rd_at(golden),
        None => None,
    };
    let mut model = |op, a, b| unit.exec(op, a, b);
    let step = golden.step(&mut model);
    if step == GoldenStep::Retired {
        if let Some(rd) = fault_target {
            let v = golden.reg(rd);
            golden.write_reg(rd, v ^ 1);
        }
    }
    let _ = stats;
    Ok(step)
}

/// If the golden core's next instruction is `sltu`/`sltiu` with a real
/// destination, returns that destination (fault-injection helper).
fn sltu_rd_at(golden: &GoldenCore) -> Option<Reg> {
    use rvsim_isa::instr::{AluOp, Instr};
    let i = golden.peek()?;
    match i {
        Instr::Op {
            op: AluOp::Sltu,
            rd,
            ..
        }
        | Instr::OpImm {
            op: AluOp::Sltu,
            rd,
            ..
        } if rd != Reg::Zero => Some(rd),
        _ => None,
    }
}

fn diff_state(engine: &rvsim_cores::CoreEngine, golden: &GoldenCore) -> Result<(), Mismatch> {
    let at = |field: &str, e: u32, g: u32| -> Result<(), Mismatch> {
        if e != g {
            Err(Mismatch {
                field: field.to_string(),
                engine: e,
                golden: g,
                retired: engine.retired(),
                cycle: engine.cycle(),
            })
        } else {
            Ok(())
        }
    };
    for r in Reg::ALL {
        at(
            &format!("x{}", r.number()),
            engine.state.read_reg(r),
            golden.reg(r),
        )?;
    }
    at("pc", engine.state.pc, golden.pc)?;
    for (name, addr) in CSR_FIELDS {
        at(name, engine.state.csrs.read(addr), golden.csr(addr))?;
    }
    Ok(())
}

fn diff_memory(
    engine: &rvsim_cores::CoreEngine,
    bus: &SramBus,
    golden: &GoldenCore,
    data_base: u32,
    data_len: u32,
) -> Result<(), Mismatch> {
    for off in (0..data_len).step_by(4) {
        let addr = data_base + off;
        let e = bus.mem.read_word(addr);
        let g = golden.mem.read_word(addr);
        if e != g {
            return Err(Mismatch {
                field: format!("mem[{addr:#010x}]"),
                engine: e,
                golden: g,
                retired: engine.retired(),
                cycle: engine.cycle(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn episodes_are_deterministic() {
        let cfg = GenConfig {
            len: 64,
            ..GenConfig::default()
        };
        let a = run_episode(&episode_for_seed(CoreKind::Cv32e40p, 11, cfg));
        let b = run_episode(&episode_for_seed(CoreKind::Cv32e40p, 11, cfg));
        assert_eq!(a, b);
    }

    #[test]
    fn small_episode_agrees_on_all_cores() {
        let cfg = GenConfig {
            len: 96,
            ..GenConfig::default()
        };
        for core in CoreKind::ALL {
            let ep = episode_for_seed(core, 42, cfg);
            let stats = run_episode(&ep).unwrap_or_else(|m| panic!("{core}: {m}"));
            assert!(stats.retired > 0);
        }
    }

    #[test]
    fn blocks_episodes_agree_and_engage_on_all_cores() {
        let cfg = GenConfig {
            len: 96,
            ..GenConfig::default()
        };
        for core in CoreKind::ALL {
            let mut hits = 0;
            for seed in [7, 42, 99] {
                let mut ep = episode_for_seed(core, seed, cfg);
                ep.blocks = true;
                let stats = run_episode(&ep).unwrap_or_else(|m| panic!("{core} seed {seed}: {m}"));
                assert!(stats.retired > 0);
                hits += stats.block_hits;
            }
            assert!(hits > 0, "{core}: block cache never engaged");
        }
    }

    #[test]
    fn blocks_episodes_are_deterministic() {
        let cfg = GenConfig {
            len: 64,
            ..GenConfig::default()
        };
        let mut ep = episode_for_seed(CoreKind::NaxRiscv, 11, cfg);
        ep.blocks = true;
        assert_eq!(run_episode(&ep), run_episode(&ep.clone()));
    }

    #[test]
    fn blocks_episodes_catch_the_injected_sltu_fault() {
        let cfg = GenConfig {
            len: 200,
            ..GenConfig::default()
        };
        let caught = (0..20).any(|seed| {
            let mut ep = episode_for_seed(CoreKind::Cv32e40p, seed, cfg);
            ep.fault = Some(Fault::GoldenSltuFlip);
            ep.blocks = true;
            run_episode(&ep).is_err()
        });
        assert!(
            caught,
            "no seed in 0..20 tripped the injected sltu fault under blocks"
        );
    }

    #[test]
    fn snapshot_roundtrips_are_invisible_mid_episode() {
        // Every engine, both execution paths: the episode's outcome with
        // mid-run snapshot/restore swaps must equal the undisturbed
        // outcome field for field, and the combined corpus must clear
        // the tier-1 floor of 1 000 instructions under snapshot stress.
        let cfg = GenConfig {
            len: 256,
            ..GenConfig::default()
        };
        let mut total = 0u64;
        let mut roundtrips = 0u64;
        for core in CoreKind::ALL {
            for blocks in [false, true] {
                for seed in [11, 42, 99] {
                    let mut ep = episode_for_seed(core, seed, cfg);
                    ep.blocks = blocks;
                    let base = run_episode(&ep)
                        .unwrap_or_else(|m| panic!("{core} seed {seed} blocks={blocks}: {m}"));
                    ep.snap = true;
                    let snapped = run_episode(&ep)
                        .unwrap_or_else(|m| panic!("{core} seed {seed} blocks={blocks} snap: {m}"));
                    assert_eq!(
                        base,
                        EpisodeStats {
                            snap_roundtrips: 0,
                            ..snapped
                        },
                        "{core} seed {seed} blocks={blocks}: snapshot round-trip \
                         perturbed the episode"
                    );
                    total += snapped.retired;
                    roundtrips += snapped.snap_roundtrips;
                }
            }
        }
        assert!(
            total >= 1_000,
            "only {total} instructions executed under snapshot stress"
        );
        assert!(roundtrips > 0, "no snapshot point was ever reached");
    }

    #[test]
    fn snap_episodes_are_deterministic() {
        let cfg = GenConfig {
            len: 64,
            ..GenConfig::default()
        };
        let mut ep = episode_for_seed(CoreKind::Cva6, 11, cfg);
        ep.snap = true;
        assert_eq!(run_episode(&ep), run_episode(&ep.clone()));
    }

    #[test]
    fn injected_sltu_fault_is_caught() {
        let cfg = GenConfig {
            len: 200,
            ..GenConfig::default()
        };
        // Not every seed retires an sltu; scan a few until one diverges.
        let caught = (0..20).any(|seed| {
            let mut ep = episode_for_seed(CoreKind::Cv32e40p, seed, cfg);
            ep.fault = Some(Fault::GoldenSltuFlip);
            run_episode(&ep).is_err()
        });
        assert!(caught, "no seed in 0..20 tripped the injected sltu fault");
    }
}
