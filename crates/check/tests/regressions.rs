//! Replays the checked-in regression seeds (tier-1).
//!
//! `regression_seeds.txt` pins seeds that once exposed a bug — in an
//! engine, the kernel, or the harness itself — so fixes stay covered
//! deterministically after the nightly fuzz range moves past them.

use rvsim_check::faultcamp::{classify_fault_events, fault_plan_for, FaultOutcome};
use rvsim_check::{episode_for_seed, run_episode, run_scenario, scenario_for_seed, ORACLE_PRESETS};
use rvsim_cores::CoreKind;
use rvsim_isa::progen::GenConfig;

const SEEDS: &str = include_str!("regression_seeds.txt");

fn core_from_name(name: &str) -> CoreKind {
    CoreKind::ALL
        .into_iter()
        .find(|c| c.name().eq_ignore_ascii_case(name))
        .unwrap_or_else(|| panic!("unknown core {name:?}"))
}

fn preset_from_lower(name: &str) -> rtosunit::Preset {
    ORACLE_PRESETS
        .into_iter()
        .find(|p| rvsim_check::artifact::preset_name(*p) == name)
        .unwrap_or_else(|| panic!("unknown oracle preset {name:?}"))
}

#[test]
fn regression_seeds_stay_clean() {
    let mut ran = 0;
    for line in SEEDS.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split_whitespace().collect();
        match fields.as_slice() {
            ["lockstep", core, seed] => {
                let core = core_from_name(core);
                let seed: u64 = seed.parse().expect("seed");
                let cfg = GenConfig {
                    len: 256,
                    ..GenConfig::default()
                };
                let ep = episode_for_seed(core, seed, cfg);
                if let Err(m) = run_episode(&ep) {
                    panic!("regression lockstep {core} seed={seed}: {m}");
                }
            }
            ["lockstep-snap", core, seed] => {
                let core = core_from_name(core);
                let seed: u64 = seed.parse().expect("seed");
                let cfg = GenConfig {
                    len: 256,
                    ..GenConfig::default()
                };
                let mut ep = episode_for_seed(core, seed, cfg);
                ep.snap = true;
                if let Err(m) = run_episode(&ep) {
                    panic!("regression lockstep-snap {core} seed={seed}: {m}");
                }
            }
            ["oracle", preset, core, seed] => {
                let preset = preset_from_lower(preset);
                let core = core_from_name(core);
                let seed: u64 = seed.parse().expect("seed");
                let spec = scenario_for_seed(core, preset, seed);
                if let Err(v) = run_scenario(&spec) {
                    panic!("regression oracle {preset} {core} seed={seed}: {v}");
                }
            }
            ["faultcamp", preset, core, scenario_seed, fault_seed, outcome] => {
                let preset = preset_from_lower(preset);
                let core = core_from_name(core);
                let scenario_seed: u64 = scenario_seed.parse().expect("scenario seed");
                let fault_seed: u64 = fault_seed.parse().expect("fault seed");
                let expected = FaultOutcome::from_name(outcome)
                    .unwrap_or_else(|| panic!("unknown fault outcome {outcome:?}"));
                let spec = scenario_for_seed(core, preset, scenario_seed);
                let plan = fault_plan_for(&spec, fault_seed, 2);
                let report = classify_fault_events(&spec, plan.events().to_vec());
                assert_eq!(
                    report.outcome, expected,
                    "regression faultcamp {preset} {core} scen={scenario_seed} \
                     fault={fault_seed}: {}",
                    report.detail
                );
            }
            _ => panic!("malformed regression line {line:?}"),
        }
        ran += 1;
    }
    assert!(ran >= 10, "regression corpus shrank to {ran} entries");
}
