//! Scheduler-oracle smoke sweep: every ISR variant survives randomized
//! syscall/interrupt schedules, checked event-by-event against the
//! host-side kernel model. Seeds are fixed (deterministic); cores rotate
//! per seed so all three timing engines are exercised. A failure names
//! `(preset, core, seed)` for replay via `checkfuzz`. The full
//! 1000-schedules-per-variant tier-1 gate runs from the root suite
//! (`tests/verification.rs`).

use rvsim_check::{oracle, scenario_for_seed, trace_scenario, ORACLE_PRESETS};
use rvsim_cores::CoreKind;

const SCHEDULES_PER_VARIANT: u64 = 150;

#[test]
fn randomized_schedules_per_isr_variant() {
    for preset in ORACLE_PRESETS {
        let mut total = rvsim_check::OracleStats::default();
        for seed in 0..SCHEDULES_PER_VARIANT {
            let core = CoreKind::ALL[(seed % 3) as usize];
            let spec = scenario_for_seed(core, preset, seed);
            let stats = rvsim_check::run_scenario(&spec)
                .unwrap_or_else(|v| panic!("{preset} core={core} seed={seed}: {v}"));
            total.scheds += stats.scheds;
            total.task_marks += stats.task_marks;
            total.takes_ok += stats.takes_ok;
            total.takes_blocked += stats.takes_blocked;
            total.gives += stats.gives;
            total.isr_gives += stats.isr_gives;
            total.delays += stats.delays;
            total.ticks += stats.ticks;
        }
        // The sweep is only meaningful if the schedules actually
        // exercised the kernel: checked scheduling decisions and every
        // probe kind observed (thresholds scaled to the seed count).
        assert!(total.scheds > 1_500, "{preset}: scheds {}", total.scheds);
        assert!(total.task_marks > 1_500, "{preset}: few marks");
        assert!(total.takes_ok > 15, "{preset}: few takes");
        assert!(total.takes_blocked > 15, "{preset}: few blocking takes");
        assert!(total.gives > 15, "{preset}: few gives");
        assert!(total.isr_gives > 1, "{preset}: few ISR gives");
        assert!(total.delays > 15, "{preset}: few delays");
    }
}

#[test]
fn oracle_rejects_a_trace_checked_against_the_wrong_priorities() {
    // Sanity that the gate above can fail at all: replay a real trace
    // against a model whose task priorities are swapped. Some seeds never
    // make the two tasks contend, so scan a few until the oracle objects.
    let preset = ORACLE_PRESETS[0];
    for seed in 0..50 {
        let spec = scenario_for_seed(CoreKind::Cv32e40p, preset, seed);
        if spec.tasks.len() < 2 {
            continue;
        }
        let trace = trace_scenario(&spec);
        let mut wrong = spec.clone();
        let p0 = wrong.tasks[0].prio;
        wrong.tasks[0].prio = wrong.tasks[1].prio;
        wrong.tasks[1].prio = p0;
        if oracle::check(&wrong, &trace).is_err() {
            return;
        }
    }
    panic!("no seed produced a violation under swapped priorities");
}
