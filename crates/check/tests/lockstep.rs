//! Tier-1 differential gate: every timing engine executes at least ten
//! thousand random instructions in lockstep with the golden executor,
//! with full state diffs at each retire boundary. Seeds are fixed, so
//! the run is deterministic; a failure message names the seed to replay
//! (`checkfuzz fuzz --start-seed N`).

use rvsim_check::{episode_for_seed, run_episode};
use rvsim_cores::CoreKind;
use rvsim_isa::progen::GenConfig;

#[test]
fn ten_thousand_random_instructions_per_engine() {
    let cfg = GenConfig {
        len: 256,
        ..GenConfig::default()
    };
    for core in CoreKind::ALL {
        let mut retired = 0u64;
        let mut seed = 0u64;
        while retired < 10_000 {
            assert!(
                seed < 64,
                "{core}: seed budget exhausted at {retired} retires"
            );
            let ep = episode_for_seed(core, seed, cfg);
            let stats = run_episode(&ep).unwrap_or_else(|m| panic!("{core} seed {seed}: {m}"));
            retired += stats.retired;
            seed += 1;
        }
    }
}

#[test]
fn ten_thousand_random_instructions_per_engine_with_blocks() {
    // Same seeds, same golden model, but the engine executes through the
    // block translation cache: every translated block must retire the
    // exact architectural state the golden core computes.
    let cfg = GenConfig {
        len: 256,
        ..GenConfig::default()
    };
    for core in CoreKind::ALL {
        let mut retired = 0u64;
        let mut block_hits = 0u64;
        let mut seed = 0u64;
        while retired < 10_000 {
            assert!(
                seed < 64,
                "{core}: seed budget exhausted at {retired} retires"
            );
            let mut ep = episode_for_seed(core, seed, cfg);
            ep.blocks = true;
            let stats =
                run_episode(&ep).unwrap_or_else(|m| panic!("{core} seed {seed} (blocks): {m}"));
            retired += stats.retired;
            block_hits += stats.block_hits;
            seed += 1;
        }
        assert!(block_hits > 0, "{core}: block cache never engaged");
    }
}
