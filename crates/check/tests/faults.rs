//! Tier-1 fault-injection coverage (ISSUE 8 acceptance).
//!
//! Directed faults prove each detection layer fires where expected —
//! canary, watchdog (both counter corruption and a genuine runaway
//! guest), TCB checksum, scheduler oracle, and the differential
//! silent-corruption layer — and a seeded random campaign injects 200+
//! faults across every core × {vanilla, SLT} without losing a single
//! run to a raw panic.

use freertos_lite::klayout::{canary_addr, tcb, KernelLayout};
use rtosunit::Preset;
use rvsim_check::faultcamp::{
    classify_fault_events, classify_with_reference, fault_plan_for, oracle_reference,
    shrink_fault_events, FaultOutcome,
};
use rvsim_check::{run_fault_campaign, Action, ScenarioSpec, TaskScript};
use rvsim_cores::{CoreKind, FaultEvent, FaultKind};
use rvsim_isa::Reg;

/// A hand-written scenario with all three interaction kinds (semaphore
/// hand-off, periodic delay, busy compute) whose fault-free protected
/// run passes the oracle on every core. Task layout: t0 (prio 5) blocks
/// on s0, t1 (prio 3) delays then gives s0, t2 (prio 2) computes then
/// delays — so the idle task runs regularly and pets the watchdog.
fn demo_spec(core: CoreKind, preset: Preset) -> ScenarioSpec {
    ScenarioSpec {
        core,
        preset,
        tick_period: 400,
        tasks: vec![
            TaskScript {
                prio: 5,
                script: vec![Action::SemTake(0), Action::Busy(40)],
            },
            TaskScript {
                prio: 3,
                script: vec![Action::Delay(1), Action::SemGive(0)],
            },
            TaskScript {
                prio: 2,
                script: vec![Action::Busy(30), Action::Delay(2)],
            },
        ],
        sems: vec![0],
        ext_sem: None,
        ext_irqs: Vec::new(),
        max_cycles: 6_000,
    }
}

fn flip(at_cycle: u64, addr: u32, bit: u8) -> FaultEvent {
    FaultEvent {
        at_cycle,
        kind: FaultKind::MemFlip { addr, bit },
    }
}

#[test]
fn canary_corruption_is_detected_on_every_core() {
    // Smash task 1's stack-base canary mid-run: the very next context
    // switch must announce it on all three timing engines.
    for core in CoreKind::ALL {
        let spec = demo_spec(core, Preset::Vanilla);
        let report = classify_fault_events(&spec, vec![flip(2_000, canary_addr(1), 3)]);
        assert_eq!(
            report.outcome,
            FaultOutcome::DetectedCanary,
            "{core:?}: {}",
            report.detail
        );
        assert_eq!(report.faults_applied, 1);
    }
}

#[test]
fn watchdog_counter_corruption_is_detected() {
    // Flip a high bit of the watchdog counter: the unsigned limit
    // compare in the next timer ISR must trip immediately.
    let spec = demo_spec(CoreKind::Cv32e40p, Preset::Vanilla);
    let report = classify_fault_events(&spec, vec![flip(2_000, KernelLayout::WATCHDOG, 30)]);
    assert_eq!(
        report.outcome,
        FaultOutcome::DetectedWatchdog,
        "{}",
        report.detail
    );
}

#[test]
fn runaway_guest_is_caught_by_the_watchdog() {
    // A genuine hang, not counter corruption: flip the busy-loop
    // counter's sign bit so a task spins ~2^31 iterations, starving the
    // idle task. The un-pet watchdog must expire within the budget
    // (WATCHDOG_LIMIT ticks) instead of the run silently exhausting its
    // cycles. The exact cycle the flip lands on decides which task (if
    // any) is mid-busy-loop, so search a window for the hang.
    let mut spec = demo_spec(CoreKind::Cv32e40p, Preset::Vanilla);
    spec.max_cycles = 40_000; // > (WATCHDOG_LIMIT + slack) ticks
    let reference = oracle_reference(&spec);
    let caught = (600..3_000).step_by(100).any(|at| {
        let ev = FaultEvent {
            at_cycle: at,
            kind: FaultKind::RegFlip {
                reg: Reg::T0,
                bit: 31,
            },
        };
        let report = classify_with_reference(&spec, &reference, vec![ev]);
        report.outcome == FaultOutcome::DetectedWatchdog
    });
    assert!(caught, "no injection cycle produced a watchdog-caught hang");
}

#[test]
fn tcb_checksum_corruption_is_detected() {
    // Flip a TCB priority field just before a timer tick, so the ISR
    // integrity sweep sees it before any syscall walks the (now wrong)
    // ready queue. The safe cycle depends on core timing, so search the
    // pre-tick slots.
    let spec = demo_spec(CoreKind::Cv32e40p, Preset::Vanilla);
    let layout = KernelLayout::new(spec.tasks.len() + 1, spec.sems.len());
    let prio0 = layout.tcb_addr(0) + tcb::PRIO as u32;
    let reference = oracle_reference(&spec);
    let caught = (4..14).any(|k| {
        let at = u64::from(spec.tick_period) * k - 5;
        let report = classify_with_reference(&spec, &reference, vec![flip(at, prio0, 1)]);
        report.outcome == FaultOutcome::DetectedChecksum
    });
    assert!(caught, "no pre-tick injection tripped the checksum sweep");
}

#[test]
fn tick_count_corruption_is_caught_by_the_oracle() {
    // The kernel tick counter is outside every guest self-check, but
    // warping it rewrites delay wake-ups — scheduling semantics the
    // host-side oracle models. At least one injection point must be
    // caught by the oracle (and by nothing in the guest).
    let spec = demo_spec(CoreKind::Cv32e40p, Preset::Vanilla);
    let reference = oracle_reference(&spec);
    let caught = (600..4_200).step_by(150).any(|at| {
        let report = classify_with_reference(
            &spec,
            &reference,
            vec![flip(at, KernelLayout::TICK_COUNT, 2)],
        );
        assert!(
            report.outcome != FaultOutcome::DetectedOracle || report.detections.is_empty(),
            "oracle verdict implies no guest detector fired"
        );
        report.outcome == FaultOutcome::DetectedOracle
    });
    assert!(caught, "no tick-count warp produced an oracle violation");
}

#[test]
fn register_upsets_can_corrupt_silently() {
    // A busy-loop counter flip below the sign bit shifts timing without
    // touching any checked state: guest checks and oracle both pass,
    // only the differential signature layer can see it.
    let spec = demo_spec(CoreKind::Cv32e40p, Preset::Vanilla);
    let reference = oracle_reference(&spec);
    let caught = (600..3_000).step_by(100).any(|at| {
        let ev = FaultEvent {
            at_cycle: at,
            kind: FaultKind::RegFlip {
                reg: Reg::T0,
                bit: 2,
            },
        };
        let report = classify_with_reference(&spec, &reference, vec![ev]);
        if report.outcome == FaultOutcome::SilentCorruption {
            assert!(report.detections.is_empty(), "silent means no detector");
            return true;
        }
        false
    });
    assert!(caught, "no register upset produced silent corruption");
}

#[test]
fn dead_state_faults_are_masked() {
    // A flip in the unused middle of task 0's stack touches nothing
    // live: bit-identical observable behaviour.
    let spec = demo_spec(CoreKind::Cv32e40p, Preset::Vanilla);
    let report = classify_fault_events(&spec, vec![flip(2_000, KernelLayout::STACKS + 512, 7)]);
    assert_eq!(report.outcome, FaultOutcome::Masked, "{}", report.detail);
    assert_eq!(report.faults_applied, 1);
}

#[test]
fn shrinking_preserves_the_classification() {
    // ddmin on a canary hit padded with masked decoys must reduce to
    // exactly the one causal event.
    let spec = demo_spec(CoreKind::Cv32e40p, Preset::Vanilla);
    let reference = oracle_reference(&spec);
    let causal = flip(2_000, canary_addr(1), 3);
    let events = vec![
        flip(1_000, KernelLayout::STACKS + 512, 7),
        flip(1_500, KernelLayout::STACKS + 516, 3),
        causal,
        flip(2_500, KernelLayout::STACKS + 520, 9),
        flip(3_000, KernelLayout::STACKS + 524, 1),
    ];
    let before = classify_with_reference(&spec, &reference, events.clone());
    assert_eq!(before.outcome, FaultOutcome::DetectedCanary);
    let shrunk = shrink_fault_events(&spec, &reference, &events, FaultOutcome::DetectedCanary);
    assert_eq!(shrunk, vec![causal], "decoys must shrink away");
    let after = classify_with_reference(&spec, &reference, shrunk);
    assert_eq!(after.outcome, FaultOutcome::DetectedCanary);
}

#[test]
fn seeded_campaign_classifies_every_injection() {
    // 3 cores × {vanilla, SLT} × 34 plans × 2 faults = 204 runs, 408
    // injections planned. Every run must come back classified — the
    // executor never loses one to a raw panic — and the outcome spread
    // must exercise more than one lattice level.
    let cores = CoreKind::ALL;
    let presets = [Preset::Vanilla, Preset::Slt];
    let campaign = run_fault_campaign(&cores, &presets, 1, 34, 2);
    assert_eq!(campaign.runs.len(), 204);
    let planned: usize = campaign.runs.iter().map(|r| r.events.len()).sum();
    assert!(planned >= 200, "only {planned} faults planned");
    for r in &campaign.runs {
        // Replayability: the recorded events regenerate from the seeds.
        let spec = rvsim_check::scenario_for_seed(r.core, r.preset, r.scenario_seed);
        assert_eq!(
            fault_plan_for(&spec, r.fault_seed, 2).events(),
            r.events.as_slice(),
            "campaign record is not replayable from its seeds"
        );
    }
    let tally = campaign.tally();
    assert!(tally.len() >= 3, "campaign outcomes too uniform: {tally:?}");
    let detected: usize = tally
        .iter()
        .filter(|(o, _)| o.is_detected())
        .map(|(_, n)| n)
        .sum();
    assert!(detected > 0, "no fault was observable: {tally:?}");
    // Every cell produced a tally (the campaign covered the matrix).
    for core in cores {
        for preset in presets {
            assert!(
                !campaign.tally_for(core, preset).is_empty(),
                "{core:?}/{preset:?} cell is empty"
            );
        }
    }
}
