//! Directed trap edge cases, run through the lockstep harness so the
//! golden model and all three timing engines must agree at every retire:
//! misaligned loads/stores/fetches, `wfi` with a pending-but-masked
//! interrupt, and `mret` with MPIE/MPP corner values.

use rvsim_check::{run_episode, EpisodeSpec, EpisodeStats, IrqEvent};
use rvsim_cores::CoreKind;
use rvsim_isa::csr;
use rvsim_isa::instr::{CsrOp, LoadOp, StoreOp};
use rvsim_isa::progen::{GenConfig, GenOp, ProgramSpec};
use rvsim_isa::Reg;

/// Wraps a handcrafted op sequence in an episode (default windows, no
/// injected fault) and runs it on `core` — once per-cycle and once
/// through the block translation cache. Both modes must agree with the
/// golden model, and on the architectural outcome (retires, traps,
/// halt) with each other.
fn run_directed(core: CoreKind, ops: &[GenOp], irqs: &[IrqEvent]) -> EpisodeStats {
    let cfg = GenConfig {
        len: ops.len(),
        ..GenConfig::default()
    };
    let ep = EpisodeSpec {
        core,
        spec: ProgramSpec::from_parts(cfg, ops.to_vec()),
        irqs: irqs.to_vec(),
        max_retires: 2_000,
        max_cycles: 80_000,
        fault: None,
        blocks: false,
        snap: false,
    };
    let stats = run_episode(&ep).unwrap_or_else(|m| panic!("{core}: {m}"));
    let blocked = run_episode(&EpisodeSpec {
        blocks: true,
        ..ep.clone()
    })
    .unwrap_or_else(|m| panic!("{core} (blocks): {m}"));
    // Cycle counts may differ (a parked wfi sleeps out whole batch
    // budgets; the driver raises interrupt lines at batch granularity),
    // but the architectural outcome must not.
    assert_eq!(
        EpisodeStats {
            cycles: stats.cycles,
            block_hits: 0,
            ..blocked
        },
        stats,
        "{core}: blocks-mode episode outcome diverged from per-cycle"
    );
    stats
}

/// `x9` (`s1`) as a CSR source-register number.
const S1: u8 = 9;

#[test]
fn misaligned_loads_trap_on_every_core() {
    let ops = [
        GenOp::Load {
            op: LoadOp::Lh,
            rd: Reg::T1,
            gp_base: false,
            off: 1,
        },
        GenOp::Load {
            op: LoadOp::Lw,
            rd: Reg::T2,
            gp_base: false,
            off: 2,
        },
        GenOp::Load {
            op: LoadOp::Lhu,
            rd: Reg::T3,
            gp_base: false,
            off: 3,
        },
        // Aligned control: must not trap.
        GenOp::Load {
            op: LoadOp::Lw,
            rd: Reg::A0,
            gp_base: false,
            off: 4,
        },
    ];
    for core in CoreKind::ALL {
        let stats = run_directed(core, &ops, &[]);
        assert_eq!(stats.exceptions, 3, "{core}");
        assert!(stats.halted, "{core}");
    }
}

#[test]
fn misaligned_stores_trap_on_every_core() {
    let ops = [
        GenOp::LoadImm {
            rd: Reg::S1,
            value: 0xDEAD_BEEF,
        },
        GenOp::Store {
            op: StoreOp::Sh,
            rs2: Reg::S1,
            gp_base: false,
            off: 1,
        },
        GenOp::Store {
            op: StoreOp::Sw,
            rs2: Reg::S1,
            gp_base: false,
            off: 2,
        },
        GenOp::Store {
            op: StoreOp::Sw,
            rs2: Reg::S1,
            gp_base: true,
            off: 3,
        },
        // Aligned control: lands and is diffed at episode-end memory sweep.
        GenOp::Store {
            op: StoreOp::Sw,
            rs2: Reg::S1,
            gp_base: false,
            off: 8,
        },
    ];
    for core in CoreKind::ALL {
        let stats = run_directed(core, &ops, &[]);
        assert_eq!(stats.exceptions, 3, "{core}");
        assert!(stats.halted, "{core}");
    }
}

#[test]
fn misaligned_fetch_traps_and_resumes_on_every_core() {
    let ops = [
        GenOp::LoadImm {
            rd: Reg::T1,
            value: 1,
        },
        GenOp::Jalr {
            rd: Reg::Ra,
            delta: 1,
            misalign: true,
        },
        GenOp::LoadImm {
            rd: Reg::T2,
            value: 2,
        },
        GenOp::LoadImm {
            rd: Reg::T3,
            value: 3,
        },
    ];
    for core in CoreKind::ALL {
        let stats = run_directed(core, &ops, &[]);
        assert!(stats.exceptions >= 1, "{core}: no fetch-misaligned trap");
        assert!(stats.halted, "{core}");
    }
}

#[test]
fn wfi_with_pending_but_locally_masked_interrupt_stays_parked() {
    // `mie` is cleared before parking; the driver raises MTIP while the
    // core waits, but a pending-yet-disabled line must not wake it (wake
    // requires mip & mie != 0). The episode ends parked, never halted.
    let ops = [
        GenOp::LoadImm {
            rd: Reg::S1,
            value: 0,
        },
        GenOp::Csr {
            op: CsrOp::Rw,
            csr: csr::MIE,
            rd: Reg::Zero,
            src: S1,
        },
        GenOp::Wfi,
        GenOp::LoadImm {
            rd: Reg::T1,
            value: 0x5678,
        },
    ];
    let irqs = [IrqEvent {
        at_retire: 2_000,
        mask: csr::MIP_MTIP,
    }];
    for core in CoreKind::ALL {
        let stats = run_directed(core, &ops, &irqs);
        assert!(!stats.halted, "{core}: woke through a masked line");
        assert_eq!(stats.interrupts, 0, "{core}");
        assert_eq!(stats.exceptions, 0, "{core}");
    }
}

#[test]
fn wfi_wakes_without_trap_when_globally_masked() {
    // `mstatus.MIE` is cleared but the line stays enabled in `mie`: the
    // core must wake from wfi (pending && locally enabled) yet take no
    // trap, falling through to the final ebreak.
    let ops = [
        GenOp::Csr {
            op: CsrOp::Rci,
            csr: csr::MSTATUS,
            rd: Reg::Zero,
            src: csr::MSTATUS_MIE as u8,
        },
        GenOp::Wfi,
        GenOp::LoadImm {
            rd: Reg::T1,
            value: 0x1234,
        },
    ];
    let irqs = [IrqEvent {
        at_retire: 2_000,
        mask: csr::MIP_MTIP,
    }];
    for core in CoreKind::ALL {
        let stats = run_directed(core, &ops, &irqs);
        assert!(stats.halted, "{core}: never woke from wfi");
        assert_eq!(stats.interrupts, 0, "{core}: trapped while globally masked");
    }
}

#[test]
fn mret_mpie_mpp_corners_agree_on_every_core() {
    let ops = [
        GenOp::LoadImm {
            rd: Reg::S1,
            value: csr::MSTATUS_MPIE,
        },
        // MPIE = 0: mret must clear MIE and re-set MPIE.
        GenOp::Csr {
            op: CsrOp::Rc,
            csr: csr::MSTATUS,
            rd: Reg::Zero,
            src: S1,
        },
        GenOp::Mret { target: 3 },
        // MPIE = 1: mret must restore MIE.
        GenOp::Csr {
            op: CsrOp::Rs,
            csr: csr::MSTATUS,
            rd: Reg::Zero,
            src: S1,
        },
        GenOp::Mret { target: 5 },
        // MPP cleared to U-mode encoding: whatever each side does with
        // the write, the readback and the following mret must agree.
        GenOp::LoadImm {
            rd: Reg::S1,
            value: csr::MSTATUS_MPP,
        },
        GenOp::Csr {
            op: CsrOp::Rc,
            csr: csr::MSTATUS,
            rd: Reg::Zero,
            src: S1,
        },
        GenOp::Mret { target: 8 },
        GenOp::CsrRead {
            csr: csr::MSTATUS,
            rd: Reg::T2,
        },
    ];
    for core in CoreKind::ALL {
        let stats = run_directed(core, &ops, &[]);
        assert!(stats.halted, "{core}");
        assert_eq!(stats.exceptions, 0, "{core}");
    }
}
