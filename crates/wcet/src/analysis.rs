//! Bounded longest-path WCET analysis on the CV32E40P timing model.

use crate::cfg::{Cfg, LoopBounds};
use freertos_lite::KernelBuilder;
use rtosunit::layout::CTX_WORDS;
use rtosunit::{Preset, RtosUnitConfig};
use rvsim_cores::TimingParams;
use rvsim_isa::{CustomOp, Instr, MulDivOp};
use std::collections::HashMap;

/// Result of analysing one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WcetReport {
    /// The configuration analysed.
    pub preset: Preset,
    /// Worst-case software path through the ISR, in cycles (entry flush
    /// included, `mret` execution included).
    pub software_cycles: u64,
    /// Worst-case stall cycles waiting for the RTOSUnit FSMs
    /// (`SWITCH_RF` / `mret` stalls).
    pub fsm_stall_cycles: u64,
    /// Total WCET of a context switch: trigger-to-`mret` upper bound.
    pub total_cycles: u64,
    /// Number of worst-case paths explored.
    pub paths: u64,
}

struct Explorer<'a> {
    cfg: &'a Cfg,
    bounds: &'a LoopBounds,
    timing: TimingParams,
    unit: Option<RtosUnitConfig>,
    best: u64,
    best_sw: u64,
    best_stall: u64,
    paths: u64,
    steps: u64,
}

#[derive(Clone)]
struct PathState {
    pc: u32,
    cycles: u64,
    mem_ops: u64,
    stalls: u64,
    t_announce: Option<u64>,
    backedges: HashMap<u32, u32>,
}

const STEP_BUDGET: u64 = 50_000_000;

/// Worst-case trigger-to-entry wait for a promptly-taken interrupt: the
/// currently retiring instruction plus the interrupt-enable shadow of a
/// voluntary yield (matches the measurement filter in `rtosbench`).
const TRIGGER_SLACK: u64 = 8;

impl Explorer<'_> {
    fn instr_cost(&self, i: &Instr, taken: bool) -> u64 {
        let p = &self.timing;
        u64::from(match i {
            Instr::Branch { .. } if taken => 1 + p.branch_penalty,
            Instr::Jal { .. } => 1 + p.jump_penalty,
            Instr::Jalr { .. } => 1 + p.jalr_penalty,
            Instr::Load { .. } => p.load_base_latency + 1,
            Instr::Store { .. } => p.store_latency,
            Instr::Csr { .. } => p.csr_latency,
            Instr::MulDiv { op, .. } => match op {
                MulDivOp::Mul | MulDivOp::Mulh | MulDivOp::Mulhsu | MulDivOp::Mulhu => {
                    p.mul_latency
                }
                _ => p.div_latency,
            },
            Instr::Custom { .. } => p.custom_latency,
            Instr::Mret => p.mret_latency,
            _ => 1,
        })
    }

    /// Upper bound on when the store FSM completes, given the processor
    /// used `mem_ops` port cycles so far: 31 words, one per idle cycle,
    /// every processor access steals one (§4.2).
    fn store_done(&self, mem_ops: u64) -> u64 {
        u64::from(self.timing.irq_entry_latency) + CTX_WORDS as u64 + mem_ops
    }

    fn explore(&mut self, mut st: PathState) {
        loop {
            self.steps += 1;
            assert!(
                self.steps < STEP_BUDGET,
                "WCET exploration exceeded its step budget — unbounded loop?"
            );
            let instr = *self.cfg.at(st.pc);

            // FSM interaction stalls.
            if let Instr::Custom { op, .. } = instr {
                match op {
                    CustomOp::SwitchRf if self.unit.is_some_and(|u| u.store) => {
                        let done = self.store_done(st.mem_ops);
                        if done > st.cycles {
                            st.stalls += done - st.cycles;
                            st.cycles = done;
                        }
                    }
                    CustomOp::GetHwSched => {
                        // Iterative sorting: a preceding list mutation
                        // (the entry tick or an ADD_READY on this path)
                        // may still be bubbling; worst case is one
                        // compare-swap wave per list slot from now.
                        if let Some(u) = self.unit {
                            st.stalls += u.list_len as u64;
                            st.cycles += u.list_len as u64;
                        }
                    }
                    CustomOp::SetContextId => {
                        st.t_announce = Some(st.cycles);
                    }
                    _ => {}
                }
            }
            if let Instr::Custom {
                op: CustomOp::GetHwSched,
                ..
            } = instr
            {
                st.t_announce = Some(st.cycles);
            }

            if matches!(instr, Instr::Mret) {
                let mut cycles = st.cycles;
                if let Some(u) = self.unit {
                    if u.load {
                        // Restore: 31 words after both the store drained
                        // and the next task was announced (§4.3).
                        let start = self
                            .store_done(st.mem_ops)
                            .max(st.t_announce.unwrap_or(st.cycles));
                        let done = start + CTX_WORDS as u64;
                        if done > cycles {
                            st.stalls += done - cycles;
                            cycles = done;
                        }
                    }
                }
                let total = cycles + self.instr_cost(&instr, false);
                self.paths += 1;
                if total > self.best {
                    self.best = total;
                    self.best_sw = st.cycles + self.instr_cost(&instr, false) - st.stalls;
                    self.best_stall = st.stalls;
                }
                return;
            }

            if instr.is_mem() {
                st.mem_ops += 1;
            }

            let (fall, taken) = self.cfg.successors(st.pc);
            match (fall, taken) {
                (Some(ft), Some(tk)) => {
                    // Branch: explore the taken direction (recursive) if
                    // its back-edge budget allows, continue with
                    // fall-through in place.
                    let is_backedge = tk <= st.pc;
                    let allowed = if is_backedge {
                        let bound = self.bounds.bound_for(self.cfg.label_at(tk));
                        let count = st.backedges.entry(st.pc).or_insert(0);
                        *count < bound
                    } else {
                        true
                    };
                    if allowed {
                        let mut t = st.clone();
                        if is_backedge {
                            *t.backedges.entry(st.pc).or_insert(0) += 1;
                        }
                        t.cycles += self.instr_cost(&instr, true);
                        t.pc = tk;
                        self.explore(t);
                    }
                    st.cycles += self.instr_cost(&instr, false);
                    st.pc = ft;
                }
                (None, Some(tk)) => {
                    // Unconditional jump. Backward jumps close loops
                    // (e.g. the delay-list walk ends in `j scan`) and
                    // consume that loop's iteration budget; once
                    // exhausted the path is infeasible.
                    if tk <= st.pc {
                        let bound = self.bounds.bound_for(self.cfg.label_at(tk));
                        let count = st.backedges.entry(st.pc).or_insert(0);
                        if *count >= bound {
                            return;
                        }
                        *count += 1;
                    }
                    st.cycles += self.instr_cost(&instr, true);
                    st.pc = tk;
                }
                (Some(ft), None) => {
                    st.cycles += self.instr_cost(&instr, false);
                    st.pc = ft;
                }
                (None, None) => return, // ebreak/ecall: dead end
            }
        }
    }
}

/// Analyses the ISR of `preset` under the paper's WCET scenario (timer
/// tick, 8 delayed tasks, 8 priority levels) on the CV32E40P timing
/// model.
///
/// # Panics
///
/// Panics if the kernel fails to build (suite bug) or exploration
/// exceeds its step budget.
pub fn analyze_preset(preset: Preset) -> WcetReport {
    // A representative image: the ISR's code does not depend on the task
    // set, only on the preset. Include an external semaphore so the
    // external-interrupt path exists.
    let mut k = KernelBuilder::new(preset);
    k.semaphore("ev", 0);
    k.ext_irq_gives("ev");
    k.task("t0", 5, |t| t.yield_now());
    k.task("t1", 5, |t| t.yield_now());
    let image = k.build().expect("kernel builds");
    let cfg = Cfg::from_program(&image.program, "isr");
    let bounds = LoopBounds::paper_defaults();
    let timing = TimingParams::cv32e40p();
    let mut ex = Explorer {
        cfg: &cfg,
        bounds: &bounds,
        timing,
        unit: RtosUnitConfig::from_preset(preset),
        best: 0,
        best_sw: 0,
        best_stall: 0,
        paths: 0,
        steps: 0,
    };
    let entry = PathState {
        pc: cfg.entry,
        cycles: TRIGGER_SLACK + u64::from(timing.irq_entry_latency),
        mem_ops: 0,
        stalls: 0,
        t_announce: None,
        backedges: HashMap::new(),
    };
    ex.explore(entry);
    WcetReport {
        preset,
        software_cycles: ex.best_sw,
        fsm_stall_cycles: ex.best_stall,
        total_cycles: ex.best,
        paths: ex.paths,
    }
}

/// The §6.2 table: WCET per configuration on CV32E40P.
pub fn wcet_table() -> Vec<WcetReport> {
    Preset::LATENCY_SET
        .iter()
        .map(|p| analyze_preset(*p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wcet_orderings_match_the_paper() {
        let vanilla = analyze_preset(Preset::Vanilla).total_cycles;
        let sl = analyze_preset(Preset::Sl).total_cycles;
        let t = analyze_preset(Preset::T).total_cycles;
        let slt = analyze_preset(Preset::Slt).total_cycles;
        // §6.2: vanilla 1649 > SL 1442 > T 202 > SLT 70.
        assert!(sl < vanilla, "SL ({sl}) must be below vanilla ({vanilla})");
        assert!(t < sl, "T ({t}) must be far below SL ({sl})");
        assert!(slt < t, "SLT ({slt}) must be the smallest ({t})");
        assert!(
            slt < 110,
            "SLT WCET must be close to the 62-cycle FSM bound, got {slt}"
        );
    }

    #[test]
    fn wcet_upper_bounds_measured_latency() {
        // The static bound must dominate every measured switch.
        use rtosbench::{run_workload, WORKLOADS};
        use rvsim_cores::CoreKind;
        for preset in [Preset::Vanilla, Preset::T, Preset::Slt] {
            let bound = analyze_preset(preset).total_cycles;
            for w in WORKLOADS {
                let r = run_workload(CoreKind::Cv32e40p, preset, &w);
                let max = r.latencies.iter().max().copied().unwrap_or(0);
                assert!(
                    max <= bound,
                    "{preset}/{}: measured {max} exceeds WCET bound {bound}",
                    w.name
                );
            }
        }
    }

    #[test]
    fn exploration_terminates_with_reasonable_path_counts() {
        let r = analyze_preset(Preset::Vanilla);
        assert!(r.paths > 0);
        assert!(r.total_cycles > 100);
    }
}
