//! Static WCET analysis of the ISR (paper §6.2).
//!
//! The paper computes worst-case context-switch latency for CV32E40P by
//! analysing "the longest instruction path, assuming maximum latency for
//! every instruction and accounting for pipeline flushes and stalls",
//! with **eight delayed tasks** that the software scheduler must move to
//! the ready lists. RTOSUnit FSM latency is analysed alongside, including
//! stalls from prioritised processor memory accesses.
//!
//! This crate reproduces that methodology on the generated kernel:
//!
//! 1. extract the ISR's control-flow graph from the assembled image,
//! 2. bound every loop (the bounds are keyed on the kernel's own label
//!    stems: delay-list walk ≤ 8 wakes, priority scan ≤ 8 levels, …),
//! 3. explore all bounded paths from `isr` to `mret`, charging the
//!    CV32E40P worst-case latency per instruction,
//! 4. model the store/restore FSMs: one word per port-idle cycle, the
//!    processor's own accesses steal cycles, `SWITCH_RF` and `mret`
//!    stall until the FSMs finish (§4.2/§4.3).
//!
//! WCET analysis of the out-of-order cores is out of scope, as in the
//! paper.

pub mod analysis;
pub mod cfg;

pub use analysis::{analyze_preset, wcet_table, WcetReport};
pub use cfg::{Cfg, LoopBounds};
