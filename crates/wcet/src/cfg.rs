//! Control-flow extraction and loop bounds for the ISR.

use rvsim_isa::{decode, Instr, Program};
use std::collections::HashMap;

/// Loop bounds keyed by the label *stem* of the loop-header label the
/// kernel generator emitted (e.g. `dtk_scan` for the delay-list walk).
#[derive(Debug, Clone)]
pub struct LoopBounds {
    bounds: Vec<(&'static str, u32)>,
    /// Bound for back-edges whose target has no matching stem.
    pub default_bound: u32,
}

impl LoopBounds {
    /// The paper's WCET scenario: 8 delayed tasks wake in one tick, 8
    /// priority levels are scanned, event lists hold at most 8 waiters.
    pub fn paper_defaults() -> LoopBounds {
        LoopBounds {
            bounds: vec![
                ("dtk_scan", 8), // delay-list walk: 8 expiring tasks
                ("sel_scan", 8), // priority scan: NUM_PRIOS levels
                ("evi_scan", 8), // event-list insert scan
                ("rrm_scan", 8), // ready-queue removal scan
                ("dli_scan", 8), // delay-list insert scan
            ],
            default_bound: 8,
        }
    }

    /// The iteration bound for a back-edge targeting `label`.
    pub fn bound_for(&self, label: Option<&str>) -> u32 {
        if let Some(l) = label {
            for (stem, b) in &self.bounds {
                if l.contains(stem) {
                    return *b;
                }
            }
        }
        self.default_bound
    }
}

/// A decoded program view with label lookup, for path exploration.
#[derive(Debug, Clone)]
pub struct Cfg {
    base: u32,
    instrs: Vec<Instr>,
    labels_by_addr: HashMap<u32, String>,
    /// Entry address of the ISR.
    pub entry: u32,
}

impl Cfg {
    /// Builds the view from an assembled program; `entry_label` is the
    /// analysis start (normally `"isr"`).
    ///
    /// # Panics
    ///
    /// Panics if the entry label is missing or an instruction fails to
    /// decode (the program came from our own assembler).
    pub fn from_program(program: &Program, entry_label: &str) -> Cfg {
        let instrs = program
            .words
            .iter()
            .map(|w| decode(*w).expect("assembled instruction decodes"))
            .collect();
        let mut labels_by_addr = HashMap::new();
        for (name, addr) in program.symbols.iter() {
            labels_by_addr.insert(addr, name.to_string());
        }
        Cfg {
            base: program.base,
            instrs,
            labels_by_addr,
            entry: program.symbols.addr(entry_label),
        }
    }

    /// The instruction at `pc`.
    pub fn at(&self, pc: u32) -> &Instr {
        let idx = ((pc - self.base) / 4) as usize;
        &self.instrs[idx]
    }

    /// The label defined at `pc`, if any.
    pub fn label_at(&self, pc: u32) -> Option<&str> {
        self.labels_by_addr.get(&pc).map(String::as_str)
    }

    /// Successor PCs of the instruction at `pc`:
    /// `(fall_through, taken_target)`. `mret` has no successors.
    pub fn successors(&self, pc: u32) -> (Option<u32>, Option<u32>) {
        match *self.at(pc) {
            Instr::Mret | Instr::Ebreak | Instr::Ecall => (None, None),
            Instr::Jal { offset, .. } => (None, Some(pc.wrapping_add(offset as u32))),
            Instr::Branch { offset, .. } => (Some(pc + 4), Some(pc.wrapping_add(offset as u32))),
            Instr::Jalr { .. } => {
                // The generated ISR is fully inlined: no indirect jumps.
                panic!("indirect jump at {pc:#x} inside the ISR — not analysable")
            }
            _ => (Some(pc + 4), None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvsim_isa::{Asm, Reg};

    fn tiny_program() -> Program {
        let mut a = Asm::new(0x100);
        a.label("isr");
        a.addi(Reg::T0, Reg::Zero, 3);
        a.label("loop");
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, "loop");
        a.mret();
        a.finish().expect("assembles")
    }

    #[test]
    fn successors_of_branch_and_mret() {
        let cfg = Cfg::from_program(&tiny_program(), "isr");
        assert_eq!(cfg.entry, 0x100);
        let (ft, taken) = cfg.successors(0x108); // bnez
        assert_eq!(ft, Some(0x10C));
        assert_eq!(taken, Some(0x104));
        assert_eq!(cfg.successors(0x10C), (None, None)); // mret
    }

    #[test]
    fn labels_resolve() {
        let cfg = Cfg::from_program(&tiny_program(), "isr");
        assert_eq!(cfg.label_at(0x104), Some("loop"));
        assert_eq!(cfg.label_at(0x108), None);
    }

    #[test]
    fn bounds_match_stems() {
        let b = LoopBounds::paper_defaults();
        assert_eq!(b.bound_for(Some(".dtk_scan_7")), 8);
        assert_eq!(b.bound_for(Some("whatever")), 8);
        assert_eq!(b.bound_for(None), 8);
    }
}
