//! Control and Status Register addresses and field constants.
//!
//! Only the machine-mode CSRs needed by the FreeRTOS-style execution
//! scenario of the paper are defined: `mstatus` and `mepc` are part of each
//! task context (§3), the remainder drive trap handling and timing.

/// `mstatus` — machine status (MIE/MPIE/MPP fields).
pub const MSTATUS: u16 = 0x300;
/// `mie` — machine interrupt enable.
pub const MIE: u16 = 0x304;
/// `mtvec` — machine trap vector base.
pub const MTVEC: u16 = 0x305;
/// `mscratch` — machine scratch register.
pub const MSCRATCH: u16 = 0x340;
/// `mepc` — machine exception program counter (part of a task context).
pub const MEPC: u16 = 0x341;
/// `mcause` — machine trap cause.
pub const MCAUSE: u16 = 0x342;
/// `mip` — machine interrupt pending.
pub const MIP: u16 = 0x344;
/// `mcycle` — cycle counter (read-only in this model).
pub const MCYCLE: u16 = 0xB00;
/// `mhartid` — hardware thread id (read-only; nonzero on SMP harts).
pub const MHARTID: u16 = 0xF14;

/// `mstatus.MIE` bit: globally enables machine interrupts.
pub const MSTATUS_MIE: u32 = 1 << 3;
/// `mstatus.MPIE` bit: previous MIE, restored by `mret`.
pub const MSTATUS_MPIE: u32 = 1 << 7;
/// `mstatus.MPP` field (both bits; this model only uses M-mode).
pub const MSTATUS_MPP: u32 = 3 << 11;

/// `mie`/`mip` bit for machine software interrupts.
pub const MIP_MSIP: u32 = 1 << 3;
/// `mie`/`mip` bit for machine timer interrupts.
pub const MIP_MTIP: u32 = 1 << 7;
/// `mie`/`mip` bit for machine external interrupts.
pub const MIP_MEIP: u32 = 1 << 11;

/// `mcause` value for a machine software interrupt.
pub const CAUSE_SOFTWARE: u32 = 0x8000_0003;
/// `mcause` value for a machine timer interrupt.
pub const CAUSE_TIMER: u32 = 0x8000_0007;
/// `mcause` value for a machine external interrupt.
pub const CAUSE_EXTERNAL: u32 = 0x8000_000B;

/// `mcause` value for an instruction-address-misaligned exception.
pub const CAUSE_MISALIGNED_FETCH: u32 = 0;
/// `mcause` value for a load-address-misaligned exception.
pub const CAUSE_MISALIGNED_LOAD: u32 = 4;
/// `mcause` value for a store-address-misaligned exception.
pub const CAUSE_MISALIGNED_STORE: u32 = 6;

/// Human-readable name for a CSR address (used by the disassembler).
pub fn csr_name(addr: u16) -> Option<&'static str> {
    Some(match addr {
        MSTATUS => "mstatus",
        MIE => "mie",
        MTVEC => "mtvec",
        MSCRATCH => "mscratch",
        MEPC => "mepc",
        MCAUSE => "mcause",
        MIP => "mip",
        MCYCLE => "mcycle",
        MHARTID => "mhartid",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_cover_known_csrs() {
        for (addr, name) in [
            (MSTATUS, "mstatus"),
            (MEPC, "mepc"),
            (MCAUSE, "mcause"),
            (MCYCLE, "mcycle"),
        ] {
            assert_eq!(csr_name(addr), Some(name));
        }
        assert_eq!(csr_name(0x7FF), None);
    }

    #[test]
    fn interrupt_causes_have_high_bit() {
        for c in [CAUSE_SOFTWARE, CAUSE_TIMER, CAUSE_EXTERNAL] {
            assert_eq!(c & 0x8000_0000, 0x8000_0000);
        }
    }
}
