//! A small RV32 assembler with labels and pseudo-instructions.
//!
//! Guest software for the simulated cores (the FreeRTOS-workalike kernel,
//! the RTOSBench workloads) is written against this API rather than parsed
//! from text: each method emits one instruction, labels are resolved when
//! [`Asm::finish`] is called.

use crate::csr;
use crate::custom::CustomOp;
use crate::encode::encode;
use crate::instr::{AluOp, BranchOp, CsrOp, Instr, LoadOp, MulDivOp, StoreOp};
use crate::reg::Reg;
use std::collections::HashMap;
use std::fmt;

/// Resolved symbol table of an assembled [`Program`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SymbolTable {
    map: HashMap<String, u32>,
}

impl SymbolTable {
    /// Address of `label`, if defined.
    pub fn get(&self, label: &str) -> Option<u32> {
        self.map.get(label).copied()
    }

    /// Address of `label`.
    ///
    /// # Panics
    ///
    /// Panics if the label is not defined.
    pub fn addr(&self, label: &str) -> u32 {
        self.get(label)
            .unwrap_or_else(|| panic!("undefined symbol: {label}"))
    }

    /// Iterates over `(label, address)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u32)> {
        self.map.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Label defined exactly at `addr`, if any (labels are unique per
    /// address for the programs we assemble; ties pick an arbitrary one).
    pub fn label_at(&self, addr: u32) -> Option<&str> {
        self.map
            .iter()
            .find(|(_, &a)| a == addr)
            .map(|(k, _)| k.as_str())
    }
}

/// An assembled program: a contiguous block of machine words at `base`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Load address of the first word.
    pub base: u32,
    /// Encoded machine words.
    pub words: Vec<u32>,
    /// Labels resolved to absolute addresses.
    pub symbols: SymbolTable,
}

impl Program {
    /// End address (one past the last word).
    pub fn end(&self) -> u32 {
        self.base + (self.words.len() as u32) * 4
    }
}

/// Errors produced at assembly time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// A referenced label was never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A branch target is out of the ±4 KiB B-type range.
    BranchOutOfRange { label: String, offset: i64 },
    /// A jump target is out of the ±1 MiB J-type range.
    JumpOutOfRange { label: String, offset: i64 },
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            AsmError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
            AsmError::BranchOutOfRange { label, offset } => {
                write!(f, "branch to `{label}` out of range ({offset} bytes)")
            }
            AsmError::JumpOutOfRange { label, offset } => {
                write!(f, "jump to `{label}` out of range ({offset} bytes)")
            }
        }
    }
}

impl std::error::Error for AsmError {}

#[derive(Debug, Clone)]
enum Fixup {
    /// Patch a branch offset to `label`.
    Branch(String),
    /// Patch a jal offset to `label`.
    Jal(String),
    /// Patch `lui` with the high part of the absolute address of `label`.
    Hi(String),
    /// Patch the I-immediate with the low part of the address of `label`.
    Lo(String),
}

/// The assembler. See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Asm {
    base: u32,
    instrs: Vec<Instr>,
    fixups: Vec<(usize, Fixup)>,
    labels: HashMap<String, u32>,
    duplicate: Option<String>,
}

impl Asm {
    /// Creates an assembler that places the first instruction at `base`.
    pub fn new(base: u32) -> Asm {
        Asm {
            base,
            instrs: Vec::new(),
            fixups: Vec::new(),
            labels: HashMap::new(),
            duplicate: None,
        }
    }

    /// Address of the *next* instruction to be emitted.
    pub fn here(&self) -> u32 {
        self.base + (self.instrs.len() as u32) * 4
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether no instruction has been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Defines `label` at the current position.
    pub fn label(&mut self, label: &str) {
        if self.labels.insert(label.to_string(), self.here()).is_some() && self.duplicate.is_none()
        {
            self.duplicate = Some(label.to_string());
        }
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, i: Instr) {
        self.instrs.push(i);
    }

    // ---- RV32I ---------------------------------------------------------

    /// `lui rd, imm20` (imm is the final upper-bits value).
    pub fn lui(&mut self, rd: Reg, imm: u32) {
        self.emit(Instr::Lui { rd, imm });
    }
    /// `auipc rd, imm20`.
    pub fn auipc(&mut self, rd: Reg, imm: u32) {
        self.emit(Instr::Auipc { rd, imm });
    }
    /// `jal rd, label`.
    pub fn jal(&mut self, rd: Reg, label: &str) {
        self.fixups
            .push((self.instrs.len(), Fixup::Jal(label.to_string())));
        self.emit(Instr::Jal { rd, offset: 0 });
    }
    /// `jalr rd, offset(rs1)`.
    pub fn jalr(&mut self, rd: Reg, rs1: Reg, offset: i32) {
        self.emit(Instr::Jalr { rd, rs1, offset });
    }

    fn branch(&mut self, op: BranchOp, rs1: Reg, rs2: Reg, label: &str) {
        self.fixups
            .push((self.instrs.len(), Fixup::Branch(label.to_string())));
        self.emit(Instr::Branch {
            op,
            rs1,
            rs2,
            offset: 0,
        });
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchOp::Eq, rs1, rs2, label);
    }
    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchOp::Ne, rs1, rs2, label);
    }
    /// `blt rs1, rs2, label`.
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchOp::Lt, rs1, rs2, label);
    }
    /// `bge rs1, rs2, label`.
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchOp::Ge, rs1, rs2, label);
    }
    /// `bltu rs1, rs2, label`.
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchOp::Ltu, rs1, rs2, label);
    }
    /// `bgeu rs1, rs2, label`.
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, label: &str) {
        self.branch(BranchOp::Geu, rs1, rs2, label);
    }
    /// `beqz rs1, label`.
    pub fn beqz(&mut self, rs1: Reg, label: &str) {
        self.beq(rs1, Reg::Zero, label);
    }
    /// `bnez rs1, label`.
    pub fn bnez(&mut self, rs1: Reg, label: &str) {
        self.bne(rs1, Reg::Zero, label);
    }

    /// `lw rd, offset(rs1)`.
    pub fn lw(&mut self, rd: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Load {
            op: LoadOp::Lw,
            rd,
            rs1,
            offset,
        });
    }
    /// `lb rd, offset(rs1)`.
    pub fn lb(&mut self, rd: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Load {
            op: LoadOp::Lb,
            rd,
            rs1,
            offset,
        });
    }
    /// `lbu rd, offset(rs1)`.
    pub fn lbu(&mut self, rd: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Load {
            op: LoadOp::Lbu,
            rd,
            rs1,
            offset,
        });
    }
    /// `lh rd, offset(rs1)`.
    pub fn lh(&mut self, rd: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Load {
            op: LoadOp::Lh,
            rd,
            rs1,
            offset,
        });
    }
    /// `lhu rd, offset(rs1)`.
    pub fn lhu(&mut self, rd: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Load {
            op: LoadOp::Lhu,
            rd,
            rs1,
            offset,
        });
    }
    /// `sw rs2, offset(rs1)`.
    pub fn sw(&mut self, rs2: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Store {
            op: StoreOp::Sw,
            rs1,
            rs2,
            offset,
        });
    }
    /// `sb rs2, offset(rs1)`.
    pub fn sb(&mut self, rs2: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Store {
            op: StoreOp::Sb,
            rs1,
            rs2,
            offset,
        });
    }
    /// `sh rs2, offset(rs1)`.
    pub fn sh(&mut self, rs2: Reg, offset: i32, rs1: Reg) {
        self.emit(Instr::Store {
            op: StoreOp::Sh,
            rs1,
            rs2,
            offset,
        });
    }

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::OpImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm,
        });
    }
    /// `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::OpImm {
            op: AluOp::And,
            rd,
            rs1,
            imm,
        });
    }
    /// `ori rd, rs1, imm`.
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::OpImm {
            op: AluOp::Or,
            rd,
            rs1,
            imm,
        });
    }
    /// `xori rd, rs1, imm`.
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::OpImm {
            op: AluOp::Xor,
            rd,
            rs1,
            imm,
        });
    }
    /// `slti rd, rs1, imm`.
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::OpImm {
            op: AluOp::Slt,
            rd,
            rs1,
            imm,
        });
    }
    /// `sltiu rd, rs1, imm`.
    pub fn sltiu(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.emit(Instr::OpImm {
            op: AluOp::Sltu,
            rd,
            rs1,
            imm,
        });
    }
    /// `slli rd, rs1, shamt`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, shamt: i32) {
        self.emit(Instr::OpImm {
            op: AluOp::Sll,
            rd,
            rs1,
            imm: shamt,
        });
    }
    /// `srli rd, rs1, shamt`.
    pub fn srli(&mut self, rd: Reg, rs1: Reg, shamt: i32) {
        self.emit(Instr::OpImm {
            op: AluOp::Srl,
            rd,
            rs1,
            imm: shamt,
        });
    }
    /// `srai rd, rs1, shamt`.
    pub fn srai(&mut self, rd: Reg, rs1: Reg, shamt: i32) {
        self.emit(Instr::OpImm {
            op: AluOp::Sra,
            rd,
            rs1,
            imm: shamt,
        });
    }

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op {
            op: AluOp::Add,
            rd,
            rs1,
            rs2,
        });
    }
    /// `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op {
            op: AluOp::Sub,
            rd,
            rs1,
            rs2,
        });
    }
    /// `and rd, rs1, rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op {
            op: AluOp::And,
            rd,
            rs1,
            rs2,
        });
    }
    /// `or rd, rs1, rs2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op {
            op: AluOp::Or,
            rd,
            rs1,
            rs2,
        });
    }
    /// `xor rd, rs1, rs2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op {
            op: AluOp::Xor,
            rd,
            rs1,
            rs2,
        });
    }
    /// `sll rd, rs1, rs2`.
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op {
            op: AluOp::Sll,
            rd,
            rs1,
            rs2,
        });
    }
    /// `srl rd, rs1, rs2`.
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op {
            op: AluOp::Srl,
            rd,
            rs1,
            rs2,
        });
    }
    /// `sltu rd, rs1, rs2`.
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op {
            op: AluOp::Sltu,
            rd,
            rs1,
            rs2,
        });
    }
    /// `slt rd, rs1, rs2`.
    pub fn slt(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::Op {
            op: AluOp::Slt,
            rd,
            rs1,
            rs2,
        });
    }

    /// `mul rd, rs1, rs2`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::MulDiv {
            op: MulDivOp::Mul,
            rd,
            rs1,
            rs2,
        });
    }
    /// `div rd, rs1, rs2`.
    pub fn div(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::MulDiv {
            op: MulDivOp::Div,
            rd,
            rs1,
            rs2,
        });
    }
    /// `divu rd, rs1, rs2`.
    pub fn divu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::MulDiv {
            op: MulDivOp::Divu,
            rd,
            rs1,
            rs2,
        });
    }
    /// `rem rd, rs1, rs2`.
    pub fn rem(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::MulDiv {
            op: MulDivOp::Rem,
            rd,
            rs1,
            rs2,
        });
    }
    /// `remu rd, rs1, rs2`.
    pub fn remu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.emit(Instr::MulDiv {
            op: MulDivOp::Remu,
            rd,
            rs1,
            rs2,
        });
    }

    // ---- Zicsr ---------------------------------------------------------

    /// `csrrw rd, csr, rs1`.
    pub fn csrrw(&mut self, rd: Reg, csr: u16, rs1: Reg) {
        self.emit(Instr::Csr {
            op: CsrOp::Rw,
            rd,
            csr,
            src: rs1.number(),
        });
    }
    /// `csrrs rd, csr, rs1`.
    pub fn csrrs(&mut self, rd: Reg, csr: u16, rs1: Reg) {
        self.emit(Instr::Csr {
            op: CsrOp::Rs,
            rd,
            csr,
            src: rs1.number(),
        });
    }
    /// `csrrc rd, csr, rs1`.
    pub fn csrrc(&mut self, rd: Reg, csr: u16, rs1: Reg) {
        self.emit(Instr::Csr {
            op: CsrOp::Rc,
            rd,
            csr,
            src: rs1.number(),
        });
    }
    /// `csrrsi rd, csr, uimm5`.
    pub fn csrrsi(&mut self, rd: Reg, csr: u16, uimm: u8) {
        self.emit(Instr::Csr {
            op: CsrOp::Rsi,
            rd,
            csr,
            src: uimm & 0x1f,
        });
    }
    /// `csrrci rd, csr, uimm5`.
    pub fn csrrci(&mut self, rd: Reg, csr: u16, uimm: u8) {
        self.emit(Instr::Csr {
            op: CsrOp::Rci,
            rd,
            csr,
            src: uimm & 0x1f,
        });
    }
    /// `csrr rd, csr` (pseudo: `csrrs rd, csr, x0`).
    pub fn csrr(&mut self, rd: Reg, csr: u16) {
        self.csrrs(rd, csr, Reg::Zero);
    }
    /// `csrw csr, rs1` (pseudo: `csrrw x0, csr, rs1`).
    pub fn csrw(&mut self, csr: u16, rs1: Reg) {
        self.csrrw(Reg::Zero, csr, rs1);
    }

    // ---- system --------------------------------------------------------

    /// `mret`.
    pub fn mret(&mut self) {
        self.emit(Instr::Mret);
    }
    /// `wfi`.
    pub fn wfi(&mut self) {
        self.emit(Instr::Wfi);
    }
    /// `ecall`.
    pub fn ecall(&mut self) {
        self.emit(Instr::Ecall);
    }
    /// `ebreak` — the simulator treats this as "halt the guest".
    pub fn ebreak(&mut self) {
        self.emit(Instr::Ebreak);
    }

    // ---- RTOSUnit custom instructions ------------------------------------

    /// `add_ready rs1=task_id, rs2=priority`.
    pub fn add_ready(&mut self, task_id: Reg, priority: Reg) {
        self.emit(Instr::Custom {
            op: CustomOp::AddReady,
            rd: Reg::Zero,
            rs1: task_id,
            rs2: priority,
        });
    }
    /// `add_delay rs1=priority, rs2=delay_ticks`.
    pub fn add_delay(&mut self, priority: Reg, delay: Reg) {
        self.emit(Instr::Custom {
            op: CustomOp::AddDelay,
            rd: Reg::Zero,
            rs1: priority,
            rs2: delay,
        });
    }
    /// `rm_task rs1=task_id`.
    pub fn rm_task(&mut self, task_id: Reg) {
        self.emit(Instr::Custom {
            op: CustomOp::RmTask,
            rd: Reg::Zero,
            rs1: task_id,
            rs2: Reg::Zero,
        });
    }
    /// `set_context_id rs1=task_id`.
    pub fn set_context_id(&mut self, task_id: Reg) {
        self.emit(Instr::Custom {
            op: CustomOp::SetContextId,
            rd: Reg::Zero,
            rs1: task_id,
            rs2: Reg::Zero,
        });
    }
    /// `get_hw_sched rd` — returns the next task id.
    pub fn get_hw_sched(&mut self, rd: Reg) {
        self.emit(Instr::Custom {
            op: CustomOp::GetHwSched,
            rd,
            rs1: Reg::Zero,
            rs2: Reg::Zero,
        });
    }
    /// `switch_rf` — switch back to the application register file.
    pub fn switch_rf(&mut self) {
        self.emit(Instr::Custom {
            op: CustomOp::SwitchRf,
            rd: Reg::Zero,
            rs1: Reg::Zero,
            rs2: Reg::Zero,
        });
    }
    /// `sem_take rd, rs1=sem_id, rs2=priority` (extension, paper §7).
    pub fn hw_sem_take(&mut self, rd: Reg, sem_id: Reg, priority: Reg) {
        self.emit(Instr::Custom {
            op: CustomOp::SemTake,
            rd,
            rs1: sem_id,
            rs2: priority,
        });
    }
    /// `sem_give rd, rs1=sem_id` (extension, paper §7).
    pub fn hw_sem_give(&mut self, rd: Reg, sem_id: Reg) {
        self.emit(Instr::Custom {
            op: CustomOp::SemGive,
            rd,
            rs1: sem_id,
            rs2: Reg::Zero,
        });
    }

    // ---- pseudo-instructions ---------------------------------------------

    /// `nop`.
    pub fn nop(&mut self) {
        self.addi(Reg::Zero, Reg::Zero, 0);
    }
    /// `mv rd, rs`.
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.addi(rd, rs, 0);
    }
    /// `li rd, imm` — one or two instructions depending on the value.
    pub fn li(&mut self, rd: Reg, imm: i32) {
        if (-2048..=2047).contains(&imm) {
            self.addi(rd, Reg::Zero, imm);
        } else {
            let uimm = imm as u32;
            let hi = uimm.wrapping_add(0x800) & 0xfffff000;
            let lo = uimm.wrapping_sub(hi) as i32;
            self.lui(rd, hi);
            if lo != 0 {
                self.addi(rd, rd, lo);
            }
        }
    }
    /// `la rd, label` — always two instructions (`lui`+`addi`) so the
    /// length is independent of where the label ends up.
    pub fn la(&mut self, rd: Reg, label: &str) {
        self.fixups
            .push((self.instrs.len(), Fixup::Hi(label.to_string())));
        self.lui(rd, 0);
        self.fixups
            .push((self.instrs.len(), Fixup::Lo(label.to_string())));
        self.addi(rd, rd, 0);
    }
    /// `j label` (pseudo: `jal x0, label`).
    pub fn j(&mut self, label: &str) {
        self.jal(Reg::Zero, label);
    }
    /// `call label` (pseudo: `jal ra, label`).
    pub fn call(&mut self, label: &str) {
        self.jal(Reg::Ra, label);
    }
    /// `ret` (pseudo: `jalr x0, 0(ra)`).
    pub fn ret(&mut self) {
        self.jalr(Reg::Zero, Reg::Ra, 0);
    }
    /// `jr rs` (pseudo: `jalr x0, 0(rs)`).
    pub fn jr(&mut self, rs: Reg) {
        self.jalr(Reg::Zero, rs, 0);
    }
    /// Convenience: globally enable machine interrupts
    /// (`csrrsi x0, mstatus, MIE`).
    pub fn enable_interrupts(&mut self) {
        self.csrrsi(Reg::Zero, csr::MSTATUS, 8);
    }
    /// Convenience: globally disable machine interrupts
    /// (`csrrci x0, mstatus, MIE`).
    pub fn disable_interrupts(&mut self) {
        self.csrrci(Reg::Zero, csr::MSTATUS, 8);
    }

    /// Resolves all labels and encodes the program.
    ///
    /// # Errors
    ///
    /// Returns an error for undefined/duplicate labels and out-of-range
    /// branch or jump targets.
    pub fn finish(mut self) -> Result<Program, AsmError> {
        if let Some(l) = self.duplicate.take() {
            return Err(AsmError::DuplicateLabel(l));
        }
        for (idx, fixup) in &self.fixups {
            let pc = self.base + (*idx as u32) * 4;
            let resolve = |label: &String| -> Result<u32, AsmError> {
                self.labels
                    .get(label)
                    .copied()
                    .ok_or_else(|| AsmError::UndefinedLabel(label.clone()))
            };
            match fixup {
                Fixup::Branch(label) => {
                    let target = resolve(label)?;
                    let off = i64::from(target) - i64::from(pc);
                    if !(-4096..=4094).contains(&off) {
                        return Err(AsmError::BranchOutOfRange {
                            label: label.clone(),
                            offset: off,
                        });
                    }
                    if let Instr::Branch { offset, .. } = &mut self.instrs[*idx] {
                        *offset = off as i32;
                    } else {
                        unreachable!("branch fixup on non-branch");
                    }
                }
                Fixup::Jal(label) => {
                    let target = resolve(label)?;
                    let off = i64::from(target) - i64::from(pc);
                    if !(-(1 << 20)..(1 << 20)).contains(&off) {
                        return Err(AsmError::JumpOutOfRange {
                            label: label.clone(),
                            offset: off,
                        });
                    }
                    if let Instr::Jal { offset, .. } = &mut self.instrs[*idx] {
                        *offset = off as i32;
                    } else {
                        unreachable!("jal fixup on non-jal");
                    }
                }
                Fixup::Hi(label) => {
                    let target = resolve(label)?;
                    let hi = target.wrapping_add(0x800) & 0xfffff000;
                    if let Instr::Lui { imm, .. } = &mut self.instrs[*idx] {
                        *imm = hi;
                    } else {
                        unreachable!("hi fixup on non-lui");
                    }
                }
                Fixup::Lo(label) => {
                    let target = resolve(label)?;
                    let hi = target.wrapping_add(0x800) & 0xfffff000;
                    let lo = target.wrapping_sub(hi) as i32;
                    if let Instr::OpImm { imm, .. } = &mut self.instrs[*idx] {
                        *imm = lo;
                    } else {
                        unreachable!("lo fixup on non-addi");
                    }
                }
            }
        }
        let words = self.instrs.iter().map(encode).collect();
        Ok(Program {
            base: self.base,
            words,
            symbols: SymbolTable { map: self.labels },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    #[test]
    fn forward_and_backward_branches() {
        let mut a = Asm::new(0x100);
        a.label("top");
        a.beq(Reg::A0, Reg::A1, "done"); // forward
        a.addi(Reg::A0, Reg::A0, 1);
        a.j("top"); // backward
        a.label("done");
        a.ret();
        let p = a.finish().unwrap();
        assert_eq!(p.words.len(), 4);
        let b = decode(p.words[0]).unwrap();
        assert_eq!(
            b,
            Instr::Branch {
                op: BranchOp::Eq,
                rs1: Reg::A0,
                rs2: Reg::A1,
                offset: 12
            }
        );
        let j = decode(p.words[2]).unwrap();
        assert_eq!(
            j,
            Instr::Jal {
                rd: Reg::Zero,
                offset: -8
            }
        );
    }

    #[test]
    fn li_small_and_large() {
        let mut a = Asm::new(0);
        a.li(Reg::A0, 42); // 1 instr
        a.li(Reg::A1, 0x12345); // 2 instrs
        a.li(Reg::A2, -1); // 1 instr
        a.li(Reg::A3, 0x1000); // lui only
        let p = a.finish().unwrap();
        assert_eq!(p.words.len(), 5);
    }

    #[test]
    fn la_resolves_to_absolute_address() {
        let mut a = Asm::new(0x8000_0000);
        a.la(Reg::A0, "data");
        a.ebreak();
        a.label("data");
        a.nop();
        let p = a.finish().unwrap();
        // lui + addi must reconstruct the label address.
        let lui = decode(p.words[0]).unwrap();
        let addi = decode(p.words[1]).unwrap();
        let (hi, lo) = match (lui, addi) {
            (Instr::Lui { imm, .. }, Instr::OpImm { imm: lo, .. }) => (imm, lo),
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(hi.wrapping_add(lo as u32), p.symbols.addr("data"));
    }

    #[test]
    fn undefined_label_is_an_error() {
        let mut a = Asm::new(0);
        a.j("nowhere");
        assert_eq!(
            a.finish().unwrap_err(),
            AsmError::UndefinedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut a = Asm::new(0);
        a.label("x");
        a.nop();
        a.label("x");
        assert_eq!(
            a.finish().unwrap_err(),
            AsmError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn branch_out_of_range() {
        let mut a = Asm::new(0);
        a.beq(Reg::A0, Reg::A0, "far");
        for _ in 0..2000 {
            a.nop();
        }
        a.label("far");
        a.ret();
        assert!(matches!(
            a.finish().unwrap_err(),
            AsmError::BranchOutOfRange { .. }
        ));
    }

    #[test]
    fn custom_instructions_assemble() {
        let mut a = Asm::new(0);
        a.add_ready(Reg::A0, Reg::A1);
        a.add_delay(Reg::A0, Reg::A1);
        a.rm_task(Reg::A0);
        a.set_context_id(Reg::A0);
        a.get_hw_sched(Reg::A0);
        a.switch_rf();
        a.hw_sem_take(Reg::A0, Reg::A1, Reg::A2);
        a.hw_sem_give(Reg::A0, Reg::A1);
        let p = a.finish().unwrap();
        for (w, op) in p.words.iter().zip(CustomOp::ALL) {
            match decode(*w).unwrap() {
                Instr::Custom { op: got, .. } => assert_eq!(got, op),
                other => panic!("expected custom, got {other:?}"),
            }
        }
    }
}
