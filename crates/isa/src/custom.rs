//! The six RTOSUnit custom instructions (paper Table 1).
//!
//! All custom instructions live in the *custom-0* major opcode (`0x0B`) as
//! R-type instructions with `funct3 = 0`; the operation is selected by
//! `funct7`. They update RTOSUnit state and must therefore execute in order
//! and non-speculatively (paper §5).

use std::fmt;

/// One of the RTOSUnit custom instructions.
///
/// | Instruction | Operands | Required for |
/// |---|---|---|
/// | `ADD_READY` | rs1 = task id, rs2 = priority | HW scheduling |
/// | `ADD_DELAY` | rs1 = priority, rs2 = delay (ticks) | HW scheduling |
/// | `RM_TASK` | rs1 = task id | HW scheduling |
/// | `SET_CONTEXT_ID` | rs1 = task id | context acceleration w/o HW scheduling |
/// | `GET_HW_SCHED` | rd = next task id | HW scheduling |
/// | `SWITCH_RF` | — | context storing w/o loading |
/// | `SEM_TAKE` | rs1 = sem id, rs2 = priority; rd = acquired? | HW synchronisation (extension) |
/// | `SEM_GIVE` | rs1 = sem id; rd = woken priority + 1, or 0 | HW synchronisation (extension) |
///
/// `SEM_TAKE`/`SEM_GIVE` implement the hardware-accelerated
/// synchronisation primitives the paper names as future work (§7); they
/// are an extension of this reproduction, not part of the paper's
/// evaluated configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CustomOp {
    /// Insert a task into the hardware ready list.
    AddReady,
    /// Insert the running task into the hardware delay list.
    AddDelay,
    /// Remove a task from both hardware lists.
    RmTask,
    /// Latch the next task id (store-address generation, restore trigger).
    SetContextId,
    /// Pop the head of the hardware ready list (and rotate it to the tail).
    GetHwSched,
    /// Switch back from the ISR register file to the application register
    /// file. Stalls while context storing is in progress.
    SwitchRf,
    /// Acquire a hardware semaphore; on failure the current task leaves
    /// the ready list and joins the hardware wait list (extension, §7).
    SemTake,
    /// Release a hardware semaphore, waking the highest-priority waiter
    /// (extension, §7).
    SemGive,
}

impl CustomOp {
    /// All custom operations, in `funct7` order.
    pub const ALL: [CustomOp; 8] = [
        CustomOp::AddReady,
        CustomOp::AddDelay,
        CustomOp::RmTask,
        CustomOp::SetContextId,
        CustomOp::GetHwSched,
        CustomOp::SwitchRf,
        CustomOp::SemTake,
        CustomOp::SemGive,
    ];

    /// The `funct7` encoding of this operation.
    pub fn funct7(self) -> u32 {
        match self {
            CustomOp::AddReady => 0x00,
            CustomOp::AddDelay => 0x01,
            CustomOp::RmTask => 0x02,
            CustomOp::SetContextId => 0x03,
            CustomOp::GetHwSched => 0x04,
            CustomOp::SwitchRf => 0x05,
            CustomOp::SemTake => 0x06,
            CustomOp::SemGive => 0x07,
        }
    }

    /// Reverse of [`CustomOp::funct7`]; `None` for unassigned values.
    pub fn from_funct7(f: u32) -> Option<CustomOp> {
        CustomOp::ALL.get(f as usize).copied()
    }

    /// Assembly mnemonic used by the disassembler.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CustomOp::AddReady => "add_ready",
            CustomOp::AddDelay => "add_delay",
            CustomOp::RmTask => "rm_task",
            CustomOp::SetContextId => "set_context_id",
            CustomOp::GetHwSched => "get_hw_sched",
            CustomOp::SwitchRf => "switch_rf",
            CustomOp::SemTake => "sem_take",
            CustomOp::SemGive => "sem_give",
        }
    }

    /// Whether the instruction produces a result in `rd`.
    pub fn writes_rd(self) -> bool {
        matches!(
            self,
            CustomOp::GetHwSched | CustomOp::SemTake | CustomOp::SemGive
        )
    }
}

impl fmt::Display for CustomOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn funct7_roundtrip() {
        for op in CustomOp::ALL {
            assert_eq!(CustomOp::from_funct7(op.funct7()), Some(op));
        }
        assert_eq!(CustomOp::from_funct7(8), None);
        assert_eq!(CustomOp::from_funct7(0x7f), None);
    }

    #[test]
    fn rd_writers_are_the_value_returning_ops() {
        for op in CustomOp::ALL {
            let expect = matches!(
                op,
                CustomOp::GetHwSched | CustomOp::SemTake | CustomOp::SemGive
            );
            assert_eq!(op.writes_rd(), expect, "{op}");
        }
    }
}
