//! Instruction decoding: 32-bit machine word → [`Instr`].

use crate::custom::CustomOp;
use crate::encode::OPC_CUSTOM0;
use crate::instr::{AluOp, BranchOp, CsrOp, Instr, LoadOp, MulDivOp, StoreOp};
use crate::reg::Reg;
use std::fmt;

/// Error returned when a word is not a valid RV32IM_Zicsr (+ custom)
/// instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The offending machine word.
    pub word: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid instruction encoding {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

fn rd(w: u32) -> Reg {
    Reg::from_number((w >> 7 & 0x1f) as u8)
}
fn rs1(w: u32) -> Reg {
    Reg::from_number((w >> 15 & 0x1f) as u8)
}
fn rs2(w: u32) -> Reg {
    Reg::from_number((w >> 20 & 0x1f) as u8)
}
fn funct3(w: u32) -> u32 {
    w >> 12 & 0x7
}
fn funct7(w: u32) -> u32 {
    w >> 25
}
fn imm_i(w: u32) -> i32 {
    (w as i32) >> 20
}
fn imm_s(w: u32) -> i32 {
    ((w & 0xfe00_0000) as i32 >> 20) | (w >> 7 & 0x1f) as i32
}
fn imm_b(w: u32) -> i32 {
    let imm = ((w >> 31 & 1) << 12)
        | ((w >> 7 & 1) << 11)
        | ((w >> 25 & 0x3f) << 5)
        | ((w >> 8 & 0xf) << 1);
    ((imm as i32) << 19) >> 19
}
fn imm_j(w: u32) -> i32 {
    let imm = ((w >> 31 & 1) << 20)
        | ((w >> 12 & 0xff) << 12)
        | ((w >> 20 & 1) << 11)
        | ((w >> 21 & 0x3ff) << 1);
    ((imm as i32) << 11) >> 11
}

/// Decodes a 32-bit machine word.
///
/// # Errors
///
/// Returns [`DecodeError`] if the word is not a valid instruction in the
/// supported subset.
///
/// ```
/// use rvsim_isa::{decode, Instr};
/// assert_eq!(decode(0x3020_0073).unwrap(), Instr::Mret);
/// assert!(decode(0xffff_ffff).is_err());
/// ```
pub fn decode(w: u32) -> Result<Instr, DecodeError> {
    let err = Err(DecodeError { word: w });
    let instr = match w & 0x7f {
        0b0110111 => Instr::Lui {
            rd: rd(w),
            imm: w & 0xfffff000,
        },
        0b0010111 => Instr::Auipc {
            rd: rd(w),
            imm: w & 0xfffff000,
        },
        0b1101111 => Instr::Jal {
            rd: rd(w),
            offset: imm_j(w),
        },
        0b1100111 => {
            if funct3(w) != 0 {
                return err;
            }
            Instr::Jalr {
                rd: rd(w),
                rs1: rs1(w),
                offset: imm_i(w),
            }
        }
        0b1100011 => {
            let op = match funct3(w) {
                0b000 => BranchOp::Eq,
                0b001 => BranchOp::Ne,
                0b100 => BranchOp::Lt,
                0b101 => BranchOp::Ge,
                0b110 => BranchOp::Ltu,
                0b111 => BranchOp::Geu,
                _ => return err,
            };
            Instr::Branch {
                op,
                rs1: rs1(w),
                rs2: rs2(w),
                offset: imm_b(w),
            }
        }
        0b0000011 => {
            let op = match funct3(w) {
                0b000 => LoadOp::Lb,
                0b001 => LoadOp::Lh,
                0b010 => LoadOp::Lw,
                0b100 => LoadOp::Lbu,
                0b101 => LoadOp::Lhu,
                _ => return err,
            };
            Instr::Load {
                op,
                rd: rd(w),
                rs1: rs1(w),
                offset: imm_i(w),
            }
        }
        0b0100011 => {
            let op = match funct3(w) {
                0b000 => StoreOp::Sb,
                0b001 => StoreOp::Sh,
                0b010 => StoreOp::Sw,
                _ => return err,
            };
            Instr::Store {
                op,
                rs1: rs1(w),
                rs2: rs2(w),
                offset: imm_s(w),
            }
        }
        0b0010011 => {
            let (op, imm) = match funct3(w) {
                0b000 => (AluOp::Add, imm_i(w)),
                0b001 => {
                    if funct7(w) != 0 {
                        return err;
                    }
                    (AluOp::Sll, (w >> 20 & 0x1f) as i32)
                }
                0b010 => (AluOp::Slt, imm_i(w)),
                0b011 => (AluOp::Sltu, imm_i(w)),
                0b100 => (AluOp::Xor, imm_i(w)),
                0b101 => match funct7(w) {
                    0x00 => (AluOp::Srl, (w >> 20 & 0x1f) as i32),
                    0x20 => (AluOp::Sra, (w >> 20 & 0x1f) as i32),
                    _ => return err,
                },
                0b110 => (AluOp::Or, imm_i(w)),
                0b111 => (AluOp::And, imm_i(w)),
                _ => unreachable!(),
            };
            Instr::OpImm {
                op,
                rd: rd(w),
                rs1: rs1(w),
                imm,
            }
        }
        0b0110011 => match funct7(w) {
            0x00 => {
                let op = match funct3(w) {
                    0b000 => AluOp::Add,
                    0b001 => AluOp::Sll,
                    0b010 => AluOp::Slt,
                    0b011 => AluOp::Sltu,
                    0b100 => AluOp::Xor,
                    0b101 => AluOp::Srl,
                    0b110 => AluOp::Or,
                    0b111 => AluOp::And,
                    _ => unreachable!(),
                };
                Instr::Op {
                    op,
                    rd: rd(w),
                    rs1: rs1(w),
                    rs2: rs2(w),
                }
            }
            0x20 => {
                let op = match funct3(w) {
                    0b000 => AluOp::Sub,
                    0b101 => AluOp::Sra,
                    _ => return err,
                };
                Instr::Op {
                    op,
                    rd: rd(w),
                    rs1: rs1(w),
                    rs2: rs2(w),
                }
            }
            0x01 => {
                let op = match funct3(w) {
                    0b000 => MulDivOp::Mul,
                    0b001 => MulDivOp::Mulh,
                    0b010 => MulDivOp::Mulhsu,
                    0b011 => MulDivOp::Mulhu,
                    0b100 => MulDivOp::Div,
                    0b101 => MulDivOp::Divu,
                    0b110 => MulDivOp::Rem,
                    0b111 => MulDivOp::Remu,
                    _ => unreachable!(),
                };
                Instr::MulDiv {
                    op,
                    rd: rd(w),
                    rs1: rs1(w),
                    rs2: rs2(w),
                }
            }
            _ => return err,
        },
        0b1110011 => match funct3(w) {
            0b000 => match w {
                0x0000_0073 => Instr::Ecall,
                0x0010_0073 => Instr::Ebreak,
                0x3020_0073 => Instr::Mret,
                0x1050_0073 => Instr::Wfi,
                _ => return err,
            },
            f3 => {
                let op = match f3 {
                    0b001 => CsrOp::Rw,
                    0b010 => CsrOp::Rs,
                    0b011 => CsrOp::Rc,
                    0b101 => CsrOp::Rwi,
                    0b110 => CsrOp::Rsi,
                    0b111 => CsrOp::Rci,
                    _ => return err,
                };
                Instr::Csr {
                    op,
                    rd: rd(w),
                    csr: (w >> 20) as u16,
                    src: (w >> 15 & 0x1f) as u8,
                }
            }
        },
        0b0001111 => Instr::Fence,
        opc if opc == OPC_CUSTOM0 => {
            if funct3(w) != 0 {
                return err;
            }
            let Some(op) = CustomOp::from_funct7(funct7(w)) else {
                return err;
            };
            Instr::Custom {
                op,
                rd: rd(w),
                rs1: rs1(w),
                rs2: rs2(w),
            }
        }
        _ => return err,
    };
    Ok(instr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn rejects_garbage() {
        assert!(decode(0x0000_0000).is_err());
        assert!(decode(0xffff_ffff).is_err());
    }

    #[test]
    fn branch_offset_sign_extension() {
        let b = Instr::Branch {
            op: BranchOp::Lt,
            rs1: Reg::T0,
            rs2: Reg::T1,
            offset: -4096,
        };
        assert_eq!(decode(encode(&b)).unwrap(), b);
        let b2 = Instr::Branch {
            op: BranchOp::Geu,
            rs1: Reg::T0,
            rs2: Reg::T1,
            offset: 4094,
        };
        assert_eq!(decode(encode(&b2)).unwrap(), b2);
    }

    #[test]
    fn jal_offset_extremes() {
        for off in [-(1 << 20), (1 << 20) - 2, 0, 2, -2] {
            let j = Instr::Jal {
                rd: Reg::Ra,
                offset: off,
            };
            assert_eq!(decode(encode(&j)).unwrap(), j);
        }
    }

    #[test]
    fn csr_roundtrip() {
        let c = Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::A0,
            csr: crate::csr::MEPC,
            src: 11,
        };
        assert_eq!(decode(encode(&c)).unwrap(), c);
        let ci = Instr::Csr {
            op: CsrOp::Rsi,
            rd: Reg::Zero,
            csr: crate::csr::MSTATUS,
            src: 8,
        };
        assert_eq!(decode(encode(&ci)).unwrap(), ci);
    }
}
