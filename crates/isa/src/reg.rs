//! General-purpose register names.

use std::fmt;

/// One of the 32 RV32 general-purpose registers, named by ABI mnemonic.
///
/// `Zero` is hard-wired to zero. The paper's context format (§3) excludes
/// `Zero`, `Gp` and `Tp` from the saved state, leaving 29 general-purpose
/// registers plus `mstatus` and `mepc` — 31 words total; see
/// [`Reg::CONTEXT_REGS`].
///
/// ```
/// use rvsim_isa::Reg;
/// assert_eq!(Reg::CONTEXT_REGS.len(), 29);
/// assert_eq!(Reg::A0.number(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    /// x0: hard-wired zero.
    Zero = 0,
    /// x1: return address.
    Ra = 1,
    /// x2: stack pointer.
    Sp = 2,
    /// x3: global pointer (static after startup; not part of a context).
    Gp = 3,
    /// x4: thread pointer (static after startup; not part of a context).
    Tp = 4,
    /// x5: temporary.
    T0 = 5,
    /// x6: temporary.
    T1 = 6,
    /// x7: temporary.
    T2 = 7,
    /// x8: saved register / frame pointer.
    S0 = 8,
    /// x9: saved register.
    S1 = 9,
    /// x10: argument / return value.
    A0 = 10,
    /// x11: argument / return value.
    A1 = 11,
    /// x12: argument.
    A2 = 12,
    /// x13: argument.
    A3 = 13,
    /// x14: argument.
    A4 = 14,
    /// x15: argument.
    A5 = 15,
    /// x16: argument.
    A6 = 16,
    /// x17: argument.
    A7 = 17,
    /// x18: saved register.
    S2 = 18,
    /// x19: saved register.
    S3 = 19,
    /// x20: saved register.
    S4 = 20,
    /// x21: saved register.
    S5 = 21,
    /// x22: saved register.
    S6 = 22,
    /// x23: saved register.
    S7 = 23,
    /// x24: saved register.
    S8 = 24,
    /// x25: saved register.
    S9 = 25,
    /// x26: saved register.
    S10 = 26,
    /// x27: saved register.
    S11 = 27,
    /// x28: temporary.
    T3 = 28,
    /// x29: temporary.
    T4 = 29,
    /// x30: temporary.
    T5 = 30,
    /// x31: temporary.
    T6 = 31,
}

impl Reg {
    /// All 32 registers in numeric order.
    pub const ALL: [Reg; 32] = [
        Reg::Zero,
        Reg::Ra,
        Reg::Sp,
        Reg::Gp,
        Reg::Tp,
        Reg::T0,
        Reg::T1,
        Reg::T2,
        Reg::S0,
        Reg::S1,
        Reg::A0,
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::A4,
        Reg::A5,
        Reg::A6,
        Reg::A7,
        Reg::S2,
        Reg::S3,
        Reg::S4,
        Reg::S5,
        Reg::S6,
        Reg::S7,
        Reg::S8,
        Reg::S9,
        Reg::S10,
        Reg::S11,
        Reg::T3,
        Reg::T4,
        Reg::T5,
        Reg::T6,
    ];

    /// The 29 registers that belong to a task context per §3 of the paper:
    /// everything except `Zero` (hard-wired), `Gp` and `Tp` (static).
    pub const CONTEXT_REGS: [Reg; 29] = [
        Reg::Ra,
        Reg::Sp,
        Reg::T0,
        Reg::T1,
        Reg::T2,
        Reg::S0,
        Reg::S1,
        Reg::A0,
        Reg::A1,
        Reg::A2,
        Reg::A3,
        Reg::A4,
        Reg::A5,
        Reg::A6,
        Reg::A7,
        Reg::S2,
        Reg::S3,
        Reg::S4,
        Reg::S5,
        Reg::S6,
        Reg::S7,
        Reg::S8,
        Reg::S9,
        Reg::S10,
        Reg::S11,
        Reg::T3,
        Reg::T4,
        Reg::T5,
        Reg::T6,
    ];

    /// Hardware register number (0–31).
    #[inline]
    pub fn number(self) -> u8 {
        self as u8
    }

    /// Constructs a register from a 5-bit field.
    ///
    /// # Panics
    ///
    /// Panics if `n > 31`.
    #[inline]
    pub fn from_number(n: u8) -> Reg {
        assert!(n < 32, "register number out of range: {n}");
        Reg::ALL[n as usize]
    }

    /// ABI mnemonic, e.g. `"a0"`.
    pub fn name(self) -> &'static str {
        const NAMES: [&str; 32] = [
            "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3",
            "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11",
            "t3", "t4", "t5", "t6",
        ];
        NAMES[self.number() as usize]
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl From<Reg> for u8 {
    fn from(r: Reg) -> u8 {
        r.number()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numbers_roundtrip() {
        for n in 0..32u8 {
            assert_eq!(Reg::from_number(n).number(), n);
        }
    }

    #[test]
    fn context_regs_exclude_static() {
        assert!(!Reg::CONTEXT_REGS.contains(&Reg::Zero));
        assert!(!Reg::CONTEXT_REGS.contains(&Reg::Gp));
        assert!(!Reg::CONTEXT_REGS.contains(&Reg::Tp));
        assert_eq!(Reg::CONTEXT_REGS.len(), 29);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_number_rejects_large() {
        Reg::from_number(32);
    }

    #[test]
    fn display_uses_abi_names() {
        assert_eq!(Reg::A0.to_string(), "a0");
        assert_eq!(Reg::Zero.to_string(), "zero");
        assert_eq!(Reg::S11.to_string(), "s11");
    }
}
