//! Constrained random program generation for differential fuzzing.
//!
//! The lockstep harness (`rvsim-check`) runs the three timing engines
//! against the golden architectural executor on randomized instruction
//! streams. Fully random words would mostly be undecodable or would wander
//! outside memory, so generation works at the level of [`GenOp`] items —
//! one small, always-valid instruction template each — under a register
//! discipline that keeps every load, store and indirect jump inside known
//! windows:
//!
//! * `tp` and `gp` are pinned to the data window (never written by
//!   generated code), so memory accesses alias heavily inside a small
//!   region but can never leave it;
//! * `s10` is pinned to a landing pad inside the program, so `jalr` targets
//!   stay in text (optionally misaligned by 2 to exercise the
//!   instruction-address-misaligned trap);
//! * branch and jump targets are *item indices*, resolved to labels at
//!   emission — deleting items (shrinking) keeps every target valid by
//!   clamping to the final `ebreak`.
//!
//! A fixed trap handler is emitted with every program: interrupts `mret`
//! straight back; exceptions (misaligned accesses) skip the faulting
//! instruction and realign the PC. CSR coverage deliberately excludes
//! `mcycle` (its value is timing-dependent, which a *timing-diverse*
//! differential harness cannot check) and writes to `mepc`/`mtvec` (wild
//! values would leave text; reads are generated).

use crate::csr;
use crate::instr::{AluOp, BranchOp, CsrOp, Instr, LoadOp, MulDivOp, StoreOp};
use crate::rng::Rng64;
use crate::{Asm, CustomOp, Program, Reg};

/// Registers generated code never writes (the discipline above).
pub const PINNED_REGS: [Reg; 3] = [Reg::Tp, Reg::Gp, Reg::S10];

/// CSRs random read-modify-writes may target. `mip`/`mcycle` ignore writes
/// by specification, which is exactly the behaviour worth covering.
const WRITE_CSRS: [u16; 6] = [
    csr::MSCRATCH,
    csr::MCAUSE,
    csr::MIE,
    csr::MSTATUS,
    csr::MIP,
    csr::MCYCLE,
];

/// CSRs plain reads may target (everything modelled except `mcycle`).
const READ_CSRS: [u16; 7] = [
    csr::MSCRATCH,
    csr::MCAUSE,
    csr::MIE,
    csr::MSTATUS,
    csr::MIP,
    csr::MEPC,
    csr::MTVEC,
];

/// Edge-case constants seeded into registers so mul/div/compare operations
/// hit their corner operands far more often than uniform values would.
const EDGE_VALUES: [u32; 8] = [
    0,
    1,
    0xFFFF_FFFF,
    0x8000_0000,
    0x7FFF_FFFF,
    2,
    0x0000_FFFF,
    0xAAAA_5555,
];

const ALU_REG_OPS: [AluOp; 10] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Sll,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Xor,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Or,
    AluOp::And,
];

/// No `Sub` here: RV32 has no `subi`.
const ALU_IMM_OPS: [AluOp; 9] = [
    AluOp::Add,
    AluOp::Sll,
    AluOp::Slt,
    AluOp::Sltu,
    AluOp::Xor,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Or,
    AluOp::And,
];

const MULDIV_OPS: [MulDivOp; 8] = [
    MulDivOp::Mul,
    MulDivOp::Mulh,
    MulDivOp::Mulhsu,
    MulDivOp::Mulhu,
    MulDivOp::Div,
    MulDivOp::Divu,
    MulDivOp::Rem,
    MulDivOp::Remu,
];

const BRANCH_OPS: [BranchOp; 6] = [
    BranchOp::Eq,
    BranchOp::Ne,
    BranchOp::Lt,
    BranchOp::Ge,
    BranchOp::Ltu,
    BranchOp::Geu,
];

const LOAD_OPS: [LoadOp; 5] = [LoadOp::Lb, LoadOp::Lbu, LoadOp::Lh, LoadOp::Lhu, LoadOp::Lw];
const STORE_OPS: [StoreOp; 3] = [StoreOp::Sb, StoreOp::Sh, StoreOp::Sw];
const CSR_OPS: [CsrOp; 6] = [
    CsrOp::Rw,
    CsrOp::Rs,
    CsrOp::Rc,
    CsrOp::Rwi,
    CsrOp::Rsi,
    CsrOp::Rci,
];

/// Generation parameters. The defaults match the lockstep harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenConfig {
    /// Program base (and reset PC).
    pub base: u32,
    /// Base of the data window `tp`/`gp` index into.
    pub data_base: u32,
    /// Data-window length in bytes (≤ 4096 keeps every offset encodable).
    pub data_len: u32,
    /// Number of generated body items.
    pub len: usize,
    /// Include the RTOSUnit custom instructions.
    pub custom_ops: bool,
    /// Generate misaligned loads/stores/jump targets (trap coverage).
    pub misaligned: bool,
    /// Allow `wfi` (the driver must be prepared to unpark the core).
    pub allow_wfi: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            base: 0,
            data_base: 0x2000_0000,
            data_len: 4096,
            len: 256,
            custom_ops: true,
            misaligned: true,
            allow_wfi: true,
        }
    }
}

/// One always-valid instruction template. Branch/jump targets are item
/// indices into the surrounding [`ProgramSpec`]; indices past the end
/// resolve to the final `ebreak`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GenOp {
    /// `li rd, value` (1–2 instructions).
    LoadImm { rd: Reg, value: u32 },
    /// Register-register ALU operation.
    Alu {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Register-immediate ALU operation (shift amounts masked at emit).
    AluImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// M-extension operation.
    MulDiv {
        op: MulDivOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Load through a pinned data-window base register.
    Load {
        op: LoadOp,
        rd: Reg,
        gp_base: bool,
        off: i32,
    },
    /// Store through a pinned data-window base register.
    Store {
        op: StoreOp,
        rs2: Reg,
        gp_base: bool,
        off: i32,
    },
    /// Conditional branch to item `target`.
    Branch {
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        target: u32,
    },
    /// `jal rd, item(target)`.
    Jal { rd: Reg, target: u32 },
    /// `jalr rd, s10, off` — lands `delta` items from the landing pad;
    /// `misalign` adds 2 to exercise the fetch-misaligned trap.
    Jalr { rd: Reg, delta: i32, misalign: bool },
    /// CSR read-modify-write on a [`WRITE_CSRS`] target.
    Csr {
        op: CsrOp,
        csr: u16,
        rd: Reg,
        src: u8,
    },
    /// Plain CSR read (`csrrs rd, csr, x0`).
    CsrRead { csr: u16, rd: Reg },
    /// RTOSUnit custom instruction (operand values taken from registers;
    /// the harness coprocessor masks them into range).
    Custom {
        op: CustomOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// `fence`.
    Fence,
    /// `wfi`.
    Wfi,
    /// Controlled trap return: `la t6, item(target); csrw mepc, t6; mret`.
    /// Returns with stale `mepc` are covered by the handler's own `mret`s;
    /// an uncontrolled one here could land mid-preamble and corrupt
    /// `mtvec` through the clobbered `t0`.
    Mret { target: u32 },
    /// `ecall` (halts the simulation early).
    Ecall,
}

/// A generated program: the config it was generated under plus its items.
/// `emit` assembles it; items may be freely deleted (delta-debugging) and
/// the result re-emitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramSpec {
    /// Generation parameters (memory windows, base).
    pub cfg: GenConfig,
    /// The body items.
    pub ops: Vec<GenOp>,
}

fn pick_rd(rng: &mut Rng64) -> Reg {
    // x0 as destination is legal and worth covering, but rarely.
    loop {
        let r = *rng.pick(&Reg::ALL);
        if r == Reg::Zero && !rng.chance(10) {
            continue;
        }
        if !PINNED_REGS.contains(&r) {
            return r;
        }
    }
}

fn pick_rs(rng: &mut Rng64) -> Reg {
    // Sources may be anything, including the pinned registers and x0.
    *rng.pick(&Reg::ALL)
}

fn gen_mem_off(rng: &mut Rng64, cfg: &GenConfig, gp_base: bool, align: u32, misalign: bool) -> i32 {
    let half = (cfg.data_len / 2) as i64;
    // Bias half the accesses into the first 64 bytes of the window so
    // loads and stores alias each other often.
    let span = if rng.chance(50) { 64 } else { half };
    let raw = if gp_base {
        rng.below(2 * span as u64) as i64 - span
    } else {
        rng.below(span as u64) as i64
    };
    let mut off = (raw / align as i64) * align as i64;
    if misalign && align > 1 {
        // Any non-multiple of `align` is misaligned; +1 suffices.
        off += 1;
    }
    off as i32
}

fn gen_op(rng: &mut Rng64, cfg: &GenConfig, idx: usize) -> GenOp {
    let roll = rng.below(1000);
    let fwd = |rng: &mut Rng64| {
        let lo = idx as u32 + 1;
        lo + rng.below(16) as u32
    };
    let any_target = |rng: &mut Rng64| {
        if rng.chance(25) && idx > 0 {
            // Backward target: possible loops, bounded by the run budget.
            (idx as u32).saturating_sub(rng.below(8) as u32)
        } else {
            fwd(rng)
        }
    };
    match roll {
        0..=79 => GenOp::LoadImm {
            rd: pick_rd(rng),
            value: if rng.chance(60) {
                *rng.pick(&EDGE_VALUES)
            } else {
                rng.next_u32()
            },
        },
        80..=329 => GenOp::AluImm {
            op: *rng.pick(&ALU_IMM_OPS),
            rd: pick_rd(rng),
            rs1: pick_rs(rng),
            imm: rng.below(4096) as i32 - 2048,
        },
        330..=489 => GenOp::Alu {
            op: *rng.pick(&ALU_REG_OPS),
            rd: pick_rd(rng),
            rs1: pick_rs(rng),
            rs2: pick_rs(rng),
        },
        490..=569 => GenOp::MulDiv {
            op: *rng.pick(&MULDIV_OPS),
            rd: pick_rd(rng),
            rs1: pick_rs(rng),
            rs2: pick_rs(rng),
        },
        570..=669 => {
            let op = *rng.pick(&LOAD_OPS);
            let align = match op {
                LoadOp::Lb | LoadOp::Lbu => 1,
                LoadOp::Lh | LoadOp::Lhu => 2,
                LoadOp::Lw => 4,
            };
            let gp_base = rng.chance(50);
            let mis = cfg.misaligned && align > 1 && rng.chance(4);
            GenOp::Load {
                op,
                rd: pick_rd(rng),
                gp_base,
                off: gen_mem_off(rng, cfg, gp_base, align, mis),
            }
        }
        670..=769 => {
            let op = *rng.pick(&STORE_OPS);
            let align = match op {
                StoreOp::Sb => 1,
                StoreOp::Sh => 2,
                StoreOp::Sw => 4,
            };
            let gp_base = rng.chance(50);
            let mis = cfg.misaligned && align > 1 && rng.chance(4);
            GenOp::Store {
                op,
                rs2: pick_rs(rng),
                gp_base,
                off: gen_mem_off(rng, cfg, gp_base, align, mis),
            }
        }
        770..=829 => GenOp::Branch {
            op: *rng.pick(&BRANCH_OPS),
            rs1: pick_rs(rng),
            rs2: pick_rs(rng),
            target: any_target(rng),
        },
        830..=859 => GenOp::Jal {
            rd: pick_rd(rng),
            target: fwd(rng),
        },
        860..=879 => GenOp::Jalr {
            rd: pick_rd(rng),
            delta: rng.below(17) as i32 - 8,
            misalign: cfg.misaligned && rng.chance(10),
        },
        880..=929 => GenOp::Csr {
            op: *rng.pick(&CSR_OPS),
            csr: *rng.pick(&WRITE_CSRS),
            rd: pick_rd(rng),
            src: if rng.chance(50) {
                // Register sources and 5-bit immediates share the field.
                pick_rs(rng).number()
            } else {
                rng.below(32) as u8
            },
        },
        930..=949 => GenOp::CsrRead {
            csr: *rng.pick(&READ_CSRS),
            rd: pick_rd(rng),
        },
        950..=989 => {
            if cfg.custom_ops {
                GenOp::Custom {
                    op: *rng.pick(&CustomOp::ALL),
                    rd: pick_rd(rng),
                    rs1: pick_rs(rng),
                    rs2: pick_rs(rng),
                }
            } else {
                GenOp::Alu {
                    op: *rng.pick(&ALU_REG_OPS),
                    rd: pick_rd(rng),
                    rs1: pick_rs(rng),
                    rs2: pick_rs(rng),
                }
            }
        }
        990..=992 => GenOp::Fence,
        993..=995 => {
            if cfg.allow_wfi {
                GenOp::Wfi
            } else {
                GenOp::Fence
            }
        }
        996..=998 => GenOp::Mret {
            target: any_target(rng),
        },
        _ => GenOp::Ecall,
    }
}

/// Generates a program spec. Equal `(seed, cfg)` pairs generate equal
/// specs forever — replay artifacts rely on this.
pub fn generate(seed: u64, cfg: GenConfig) -> ProgramSpec {
    let mut rng = Rng64::new(seed);
    let ops = (0..cfg.len).map(|i| gen_op(&mut rng, &cfg, i)).collect();
    ProgramSpec { cfg, ops }
}

impl ProgramSpec {
    fn label(i: usize) -> String {
        format!("b_{i}")
    }

    /// The landing-pad item index `jalr` offsets are relative to.
    pub fn landing_index(&self) -> usize {
        self.ops.len() / 2
    }

    /// Assembles the spec: fixed preamble (pinned registers, trap vector,
    /// interrupt enables), the body items, and a terminating `ebreak`.
    ///
    /// # Panics
    ///
    /// Panics if assembly fails — generated specs assemble by
    /// construction, so a failure is a generator bug.
    pub fn emit(&self) -> Program {
        let n = self.ops.len();
        let landing = self.landing_index();
        let mut a = Asm::new(self.cfg.base);

        // ---- preamble -------------------------------------------------
        a.li(Reg::Tp, self.cfg.data_base as i32);
        a.li(Reg::Gp, (self.cfg.data_base + self.cfg.data_len / 2) as i32);
        a.la(Reg::S10, &Self::label(landing));
        a.la(Reg::T0, "handler");
        a.csrw(csr::MTVEC, Reg::T0);
        a.li(
            Reg::T0,
            (csr::MIP_MSIP | csr::MIP_MTIP | csr::MIP_MEIP) as i32,
        );
        a.csrw(csr::MIE, Reg::T0);
        a.enable_interrupts();
        a.j(&Self::label(0));

        // ---- trap handler --------------------------------------------
        // Interrupts resume where they hit; exceptions (misaligned
        // accesses/fetches) skip the faulting instruction and realign.
        a.label("handler");
        a.csrr(Reg::T6, csr::MCAUSE);
        a.blt(Reg::T6, Reg::Zero, "handler_irq");
        a.csrr(Reg::T6, csr::MEPC);
        a.addi(Reg::T6, Reg::T6, 4);
        a.andi(Reg::T6, Reg::T6, -4);
        a.csrw(csr::MEPC, Reg::T6);
        a.label("handler_irq");
        // Leave `t6` holding an in-text address: a trap may interrupt a
        // controlled-mret sequence between its `la t6` and `csrw mepc, t6`,
        // and `t6 = mcause` there would send the resumed `mret` wild.
        a.csrr(Reg::T6, csr::MEPC);
        a.mret();

        // ---- body -----------------------------------------------------
        for (i, op) in self.ops.iter().enumerate() {
            a.label(&Self::label(i));
            self.emit_op(&mut a, *op, n, landing);
        }
        a.label(&Self::label(n));
        // Targets past the end (shrunken specs) all resolve here.
        for i in n + 1..n + 24 {
            a.label(&Self::label(i));
        }
        a.ebreak();
        a.finish().expect("generated program assembles")
    }

    fn emit_op(&self, a: &mut Asm, op: GenOp, n: usize, landing: usize) {
        let clamp = |t: u32| Self::label((t as usize).min(n));
        match op {
            GenOp::LoadImm { rd, value } => a.li(rd, value as i32),
            GenOp::Alu { op, rd, rs1, rs2 } => a.emit(Instr::Op { op, rd, rs1, rs2 }),
            GenOp::AluImm { op, rd, rs1, imm } => {
                let imm = match op {
                    AluOp::Sll | AluOp::Srl | AluOp::Sra => imm & 0x1f,
                    _ => imm,
                };
                a.emit(Instr::OpImm { op, rd, rs1, imm });
            }
            GenOp::MulDiv { op, rd, rs1, rs2 } => a.emit(Instr::MulDiv { op, rd, rs1, rs2 }),
            GenOp::Load {
                op,
                rd,
                gp_base,
                off,
            } => {
                let rs1 = if gp_base { Reg::Gp } else { Reg::Tp };
                a.emit(Instr::Load {
                    op,
                    rd,
                    rs1,
                    offset: off,
                });
            }
            GenOp::Store {
                op,
                rs2,
                gp_base,
                off,
            } => {
                let rs1 = if gp_base { Reg::Gp } else { Reg::Tp };
                a.emit(Instr::Store {
                    op,
                    rs1,
                    rs2,
                    offset: off,
                });
            }
            GenOp::Branch {
                op,
                rs1,
                rs2,
                target,
            } => {
                let label = clamp(target);
                match op {
                    BranchOp::Eq => a.beq(rs1, rs2, &label),
                    BranchOp::Ne => a.bne(rs1, rs2, &label),
                    BranchOp::Lt => a.blt(rs1, rs2, &label),
                    BranchOp::Ge => a.bge(rs1, rs2, &label),
                    BranchOp::Ltu => a.bltu(rs1, rs2, &label),
                    BranchOp::Geu => a.bgeu(rs1, rs2, &label),
                }
            }
            GenOp::Jal { rd, target } => a.jal(rd, &clamp(target)),
            GenOp::Jalr {
                rd,
                delta,
                misalign,
            } => {
                // `s10` holds the landing-pad address; the offset is a
                // small word delta clamped so the target stays inside the
                // body (any word there decodes — mid-`li` is fine). +2
                // exercises the fetch-misaligned trap; the handler resumes
                // at the next aligned word, so the cap leaves room for it.
                let before: i32 = self.ops[..landing].iter().map(Self::op_words).sum();
                let after: i32 = self.ops[landing..].iter().map(Self::op_words).sum::<i32>() + 1;
                let mut off = (delta * 4).clamp(-(before * 4), (after - 1) * 4);
                if misalign && off + 4 <= (after - 1) * 4 {
                    off += 2;
                }
                a.jalr(rd, Reg::S10, off);
            }
            GenOp::Csr { op, csr, rd, src } => {
                // `mcycle` writes are architecturally ignored (the coverage
                // we want), but a read of it observes live timing state —
                // discard the old value so programs stay timing-independent.
                let rd = if csr == csr::MCYCLE { Reg::Zero } else { rd };
                a.emit(Instr::Csr { op, rd, csr, src })
            }
            GenOp::CsrRead { csr, rd } => a.csrr(rd, csr),
            GenOp::Custom { op, rd, rs1, rs2 } => a.emit(Instr::Custom { op, rd, rs1, rs2 }),
            GenOp::Fence => a.emit(Instr::Fence),
            GenOp::Wfi => a.wfi(),
            GenOp::Mret { target } => {
                a.la(Reg::T6, &clamp(target));
                a.csrw(csr::MEPC, Reg::T6);
                a.mret();
            }
            GenOp::Ecall => a.ecall(),
        }
    }

    /// Re-creates a spec from decoded artifact fields.
    pub fn from_parts(cfg: GenConfig, ops: Vec<GenOp>) -> ProgramSpec {
        ProgramSpec { cfg, ops }
    }

    /// Emitted size of one item in words. Mirrors `Asm::li` exactly: one
    /// word for small immediates or when the low 12 bits come out zero,
    /// two otherwise; every other item is a single instruction.
    fn op_words(op: &GenOp) -> i32 {
        match op {
            GenOp::LoadImm { value, .. } => {
                if (-2048..=2047).contains(&(*value as i32)) {
                    1
                } else {
                    let hi = value.wrapping_add(0x800) & 0xffff_f000;
                    if value.wrapping_sub(hi) == 0 {
                        1
                    } else {
                        2
                    }
                }
            }
            GenOp::Mret { .. } => 4,
            _ => 1,
        }
    }
}

fn pos<T: PartialEq>(arr: &[T], x: &T) -> i64 {
    arr.iter().position(|e| e == x).expect("op in table") as i64
}

fn at<T: Copy>(arr: &[T], i: i64) -> Option<T> {
    usize::try_from(i).ok().and_then(|i| arr.get(i)).copied()
}

fn reg(i: i64) -> Option<Reg> {
    at(&Reg::ALL, i)
}

impl GenOp {
    /// Encodes the op as a flat numeric record (tag first) for replay
    /// artifacts. [`GenOp::decode_fields`] is the exact inverse.
    pub fn encode_fields(&self) -> Vec<i64> {
        let r = |x: Reg| i64::from(x.number());
        match *self {
            GenOp::LoadImm { rd, value } => vec![0, r(rd), i64::from(value)],
            GenOp::Alu { op, rd, rs1, rs2 } => {
                vec![1, pos(&ALU_REG_OPS, &op), r(rd), r(rs1), r(rs2)]
            }
            GenOp::AluImm { op, rd, rs1, imm } => {
                vec![2, pos(&ALU_IMM_OPS, &op), r(rd), r(rs1), i64::from(imm)]
            }
            GenOp::MulDiv { op, rd, rs1, rs2 } => {
                vec![3, pos(&MULDIV_OPS, &op), r(rd), r(rs1), r(rs2)]
            }
            GenOp::Load {
                op,
                rd,
                gp_base,
                off,
            } => {
                vec![
                    4,
                    pos(&LOAD_OPS, &op),
                    r(rd),
                    i64::from(gp_base),
                    i64::from(off),
                ]
            }
            GenOp::Store {
                op,
                rs2,
                gp_base,
                off,
            } => vec![
                5,
                pos(&STORE_OPS, &op),
                r(rs2),
                i64::from(gp_base),
                i64::from(off),
            ],
            GenOp::Branch {
                op,
                rs1,
                rs2,
                target,
            } => vec![6, pos(&BRANCH_OPS, &op), r(rs1), r(rs2), i64::from(target)],
            GenOp::Jal { rd, target } => vec![7, r(rd), i64::from(target)],
            GenOp::Jalr {
                rd,
                delta,
                misalign,
            } => vec![8, r(rd), i64::from(delta), i64::from(misalign)],
            GenOp::Csr { op, csr, rd, src } => {
                vec![9, pos(&CSR_OPS, &op), i64::from(csr), r(rd), i64::from(src)]
            }
            GenOp::CsrRead { csr, rd } => vec![10, i64::from(csr), r(rd)],
            GenOp::Custom { op, rd, rs1, rs2 } => {
                vec![11, pos(&CustomOp::ALL, &op), r(rd), r(rs1), r(rs2)]
            }
            GenOp::Fence => vec![12],
            GenOp::Wfi => vec![13],
            GenOp::Mret { target } => vec![14, i64::from(target)],
            GenOp::Ecall => vec![15],
        }
    }

    /// Decodes a record produced by [`GenOp::encode_fields`]. Returns
    /// `None` for malformed records (wrong arity, out-of-range indices).
    pub fn decode_fields(fields: &[i64]) -> Option<GenOp> {
        let csr16 = |v: i64| u16::try_from(v).ok();
        Some(match fields {
            [0, rd, value] => GenOp::LoadImm {
                rd: reg(*rd)?,
                value: u32::try_from(*value).ok()?,
            },
            [1, op, rd, rs1, rs2] => GenOp::Alu {
                op: at(&ALU_REG_OPS, *op)?,
                rd: reg(*rd)?,
                rs1: reg(*rs1)?,
                rs2: reg(*rs2)?,
            },
            [2, op, rd, rs1, imm] => GenOp::AluImm {
                op: at(&ALU_IMM_OPS, *op)?,
                rd: reg(*rd)?,
                rs1: reg(*rs1)?,
                imm: i32::try_from(*imm).ok()?,
            },
            [3, op, rd, rs1, rs2] => GenOp::MulDiv {
                op: at(&MULDIV_OPS, *op)?,
                rd: reg(*rd)?,
                rs1: reg(*rs1)?,
                rs2: reg(*rs2)?,
            },
            [4, op, rd, gp, off] => GenOp::Load {
                op: at(&LOAD_OPS, *op)?,
                rd: reg(*rd)?,
                gp_base: *gp != 0,
                off: i32::try_from(*off).ok()?,
            },
            [5, op, rs2, gp, off] => GenOp::Store {
                op: at(&STORE_OPS, *op)?,
                rs2: reg(*rs2)?,
                gp_base: *gp != 0,
                off: i32::try_from(*off).ok()?,
            },
            [6, op, rs1, rs2, target] => GenOp::Branch {
                op: at(&BRANCH_OPS, *op)?,
                rs1: reg(*rs1)?,
                rs2: reg(*rs2)?,
                target: u32::try_from(*target).ok()?,
            },
            [7, rd, target] => GenOp::Jal {
                rd: reg(*rd)?,
                target: u32::try_from(*target).ok()?,
            },
            [8, rd, delta, mis] => GenOp::Jalr {
                rd: reg(*rd)?,
                delta: i32::try_from(*delta).ok()?,
                misalign: *mis != 0,
            },
            [9, op, csr, rd, src] => GenOp::Csr {
                op: at(&CSR_OPS, *op)?,
                csr: csr16(*csr)?,
                rd: reg(*rd)?,
                src: u8::try_from(*src).ok()?,
            },
            [10, csr, rd] => GenOp::CsrRead {
                csr: csr16(*csr)?,
                rd: reg(*rd)?,
            },
            [11, op, rd, rs1, rs2] => GenOp::Custom {
                op: at(&CustomOp::ALL, *op)?,
                rd: reg(*rd)?,
                rs1: reg(*rs1)?,
                rs2: reg(*rs2)?,
            },
            [12] => GenOp::Fence,
            [13] => GenOp::Wfi,
            [14, target] => GenOp::Mret {
                target: u32::try_from(*target).ok()?,
            },
            [15] => GenOp::Ecall,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = generate(1234, cfg);
        let b = generate(1234, cfg);
        assert_eq!(a, b);
        let c = generate(1235, cfg);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_programs_assemble_and_decode() {
        for seed in 0..50 {
            let spec = generate(seed, GenConfig::default());
            let prog = spec.emit();
            assert!(prog.words.len() > spec.ops.len());
            for (i, w) in prog.words.iter().enumerate() {
                decode(*w).unwrap_or_else(|e| {
                    panic!("seed {seed}, word {i} undecodable: {e}");
                });
            }
        }
    }

    #[test]
    fn shrunken_specs_still_emit() {
        let mut spec = generate(77, GenConfig::default());
        while spec.ops.len() > 1 {
            let keep = spec.ops.len() / 2;
            spec.ops.truncate(keep);
            let prog = spec.emit();
            for w in &prog.words {
                decode(*w).expect("decodable after shrink");
            }
        }
    }

    #[test]
    fn aligned_accesses_stay_in_window() {
        let cfg = GenConfig {
            misaligned: false,
            ..GenConfig::default()
        };
        for seed in 0..20 {
            let spec = generate(seed, cfg);
            for op in &spec.ops {
                let (gp, off, align) = match *op {
                    GenOp::Load {
                        op, gp_base, off, ..
                    } => (
                        gp_base,
                        off,
                        match op {
                            LoadOp::Lb | LoadOp::Lbu => 1,
                            LoadOp::Lh | LoadOp::Lhu => 2,
                            LoadOp::Lw => 4,
                        },
                    ),
                    GenOp::Store {
                        op, gp_base, off, ..
                    } => (
                        gp_base,
                        off,
                        match op {
                            StoreOp::Sb => 1,
                            StoreOp::Sh => 2,
                            StoreOp::Sw => 4,
                        },
                    ),
                    _ => continue,
                };
                assert_eq!(off % align, 0, "misaligned offset with misaligned=false");
                let base = if gp {
                    cfg.data_base + cfg.data_len / 2
                } else {
                    cfg.data_base
                };
                let addr = base.wrapping_add(off as u32);
                assert!(addr >= cfg.data_base);
                assert!(addr + align as u32 <= cfg.data_base + cfg.data_len);
            }
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for seed in 0..20 {
            let spec = generate(seed, GenConfig::default());
            for op in &spec.ops {
                let fields = op.encode_fields();
                assert_eq!(
                    GenOp::decode_fields(&fields),
                    Some(*op),
                    "round-trip failed for {op:?}"
                );
            }
        }
        assert_eq!(GenOp::decode_fields(&[99, 0]), None);
        assert_eq!(GenOp::decode_fields(&[1, 0, 99, 0, 0]), None);
        assert_eq!(GenOp::decode_fields(&[]), None);
    }

    #[test]
    fn pinned_registers_are_never_written() {
        for seed in 0..20 {
            let spec = generate(seed, GenConfig::default());
            let prog = spec.emit();
            // Check the emitted instructions after the fixed preamble
            // (which legitimately initialises the pinned registers).
            let body_start = (prog.symbols.addr("b_0") / 4) as usize;
            for w in &prog.words[body_start..] {
                let i = decode(*w).expect("decodable");
                if let Some(rd) = i.rd() {
                    assert!(
                        !PINNED_REGS.contains(&rd),
                        "pinned register {rd:?} written by {i:?}"
                    );
                }
            }
        }
    }
}
