//! RV32IM_Zicsr instruction set support for the RTOSUnit simulator.
//!
//! This crate provides everything needed to express guest software for the
//! simulated cores of the RTOSUnit reproduction:
//!
//! * [`Reg`] — the 32 general-purpose registers with ABI names,
//! * [`Instr`] — a typed representation of every RV32IM_Zicsr instruction
//!   plus the six RTOSUnit custom instructions of the paper's Table 1,
//! * [`decode()`](decode::decode)/[`encode()`](encode::encode) — lossless conversion between [`Instr`] and the
//!   32-bit machine encoding,
//! * [`Asm`] — a small assembler with labels, fixups and the usual
//!   pseudo-instructions (`li`, `la`, `call`, `ret`, …),
//! * [`disasm`] — a disassembler used by the WCET reports and for debugging.
//!
//! # Example
//!
//! ```
//! use rvsim_isa::{Asm, Reg};
//!
//! # fn main() -> Result<(), rvsim_isa::AsmError> {
//! let mut a = Asm::new(0x8000_0000);
//! a.label("loop");
//! a.addi(Reg::A0, Reg::A0, 1);
//! a.j("loop");
//! let prog = a.finish()?;
//! assert_eq!(prog.words.len(), 2);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod csr;
pub mod custom;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod instr;
pub mod progen;
pub mod reg;
pub mod rng;
pub mod uop;

pub use asm::{Asm, AsmError, Program, SymbolTable};
pub use custom::CustomOp;
pub use decode::{decode, DecodeError};
pub use disasm::disassemble;
pub use encode::encode;
pub use instr::{AluOp, BranchOp, CsrOp, Instr, LoadOp, MulDivOp, StoreOp};
pub use progen::{GenConfig, GenOp, ProgramSpec};
pub use reg::Reg;
pub use rng::Rng64;
pub use uop::{Uop, UopSrc};
