//! Micro-op representation for pre-decoded basic blocks.
//!
//! A [`Uop`] is an architectural micro-operation with everything a block
//! executor wants resolved up front: register indices extracted from the
//! encoding, immediates widened and folded, and every PC-relative value
//! (branch targets, fall-through addresses, `auipc` results, link values)
//! pre-computed from the micro-op's address. Timing is deliberately *not*
//! part of the representation — a cycle model replays its own latencies
//! from the op class, so the same `Uop` serves any engine.
//!
//! [`lower`] converts one [`Instr`] at a known PC; [`fuse`] detects the
//! classic macro-op fusion pairs (`lui+addi`, `auipc+jalr`,
//! `slt/sltu+beqz/bnez`) and emits a single fused micro-op whose
//! architectural effect is exactly the two constituents in order.

use crate::instr::{AluOp, BranchOp, CsrOp, Instr, LoadOp, MulDivOp, StoreOp};
use crate::reg::Reg;

/// Second operand of a fused compare: a register or an inlined immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UopSrc {
    /// Read the register at execution time.
    Reg(Reg),
    /// Already-widened immediate.
    Imm(u32),
}

/// One architectural micro-op. System-level instructions (`mret`, `wfi`,
/// `ecall`/`ebreak`, fences, custom coprocessor ops) have no micro-op
/// form: they terminate block construction and execute on the interpreter
/// path. CSR accesses lower to [`Uop::Csr`]; one that could write the
/// interrupt-gate CSRs (`mstatus`/`mie`, which can unmask a pending
/// interrupt) must be a *barrier* — the block ends at the access and the
/// executor returns to its interrupt-gate check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uop {
    /// `rd = op(rs1, rs2)`.
    AluRR {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// `rd = op(rs1, imm)` (immediate pre-widened).
    AluRI {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: u32,
    },
    /// `rd = value` — `lui`, and `auipc` with the PC already added.
    MovImm { rd: Reg, value: u32 },
    /// `rd = op(rs1, rs2)` through the multiplier/divider.
    MulDiv {
        op: MulDivOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Load at `rs1 + offset` (offset pre-widened, wrapping add).
    Load {
        op: LoadOp,
        rd: Reg,
        rs1: Reg,
        offset: u32,
    },
    /// Store `rs2` at `rs1 + offset`.
    Store {
        op: StoreOp,
        rs1: Reg,
        rs2: Reg,
        offset: u32,
    },
    /// Conditional branch with both successor addresses pre-computed.
    Branch {
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        taken_pc: u32,
        fall_pc: u32,
    },
    /// `jal`: target and link value are static.
    Jal {
        link: Reg,
        link_value: u32,
        target: u32,
    },
    /// `jalr`: target is `(rs1 + offset) & !1`, computed at execution.
    Jalr {
        link: Reg,
        link_value: u32,
        rs1: Reg,
        offset: u32,
    },
    /// Fused `lui rd_hi, hi` + `addi rd, rd_hi, lo`: writes `rd_hi = hi`
    /// then `rd = value` (`value = hi + lo`), preserving both
    /// architectural writes in order.
    LoadImm {
        rd_hi: Reg,
        hi: u32,
        rd: Reg,
        value: u32,
    },
    /// Fused `auipc rd1, hi` + `jalr link, lo(rd1)`: the target is static
    /// (`(pc + hi + lo) & !1`). Writes `rd1 = pcrel` then `link =
    /// link_value`, in order.
    AuipcJalr {
        rd1: Reg,
        pcrel: u32,
        link: Reg,
        link_value: u32,
        target: u32,
    },
    /// CSR access: reads `csr` into `rd` and applies the op's
    /// read-modify-write. `src` is a register number for the register
    /// forms and the zero-extended 5-bit immediate for the `i` forms.
    /// When the access could write an interrupt-gate CSR it must be the
    /// last micro-op of its block (a barrier).
    Csr {
        op: CsrOp,
        rd: Reg,
        csr: u16,
        src: u8,
    },
    /// Fused `slt/sltu rd, ...` + `beq/bne rd, x0, off`: computes the
    /// comparison, writes `rd`, and branches on the result.
    /// `branch_if_nonzero` is true for `bne` (branch when the comparison
    /// held), false for `beq`.
    CmpBranch {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        src2: UopSrc,
        branch_if_nonzero: bool,
        taken_pc: u32,
        fall_pc: u32,
    },
}

impl Uop {
    /// Whether this micro-op ends a basic block (changes control flow).
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Uop::Branch { .. }
                | Uop::Jal { .. }
                | Uop::Jalr { .. }
                | Uop::AuipcJalr { .. }
                | Uop::CmpBranch { .. }
        )
    }

    /// Number of guest instructions this micro-op retires (2 for fused).
    pub fn instr_count(&self) -> u32 {
        match self {
            Uop::LoadImm { .. } | Uop::AuipcJalr { .. } | Uop::CmpBranch { .. } => 2,
            _ => 1,
        }
    }
}

/// Lowers one instruction at `pc` to a micro-op. Returns `None` for
/// system-level instructions, which have no block representation. CSR
/// accesses do lower, but a [`Uop::Csr`] that could write an
/// interrupt-gate CSR is a barrier: block builders must terminate the
/// block at it.
pub fn lower(instr: &Instr, pc: u32) -> Option<Uop> {
    Some(match *instr {
        Instr::Lui { rd, imm } => Uop::MovImm { rd, value: imm },
        Instr::Auipc { rd, imm } => Uop::MovImm {
            rd,
            value: pc.wrapping_add(imm),
        },
        Instr::Jal { rd, offset } => Uop::Jal {
            link: rd,
            link_value: pc.wrapping_add(4),
            target: pc.wrapping_add(offset as u32),
        },
        Instr::Jalr { rd, rs1, offset } => Uop::Jalr {
            link: rd,
            link_value: pc.wrapping_add(4),
            rs1,
            offset: offset as u32,
        },
        Instr::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => Uop::Branch {
            op,
            rs1,
            rs2,
            taken_pc: pc.wrapping_add(offset as u32),
            fall_pc: pc.wrapping_add(4),
        },
        Instr::Load {
            op,
            rd,
            rs1,
            offset,
        } => Uop::Load {
            op,
            rd,
            rs1,
            offset: offset as u32,
        },
        Instr::Store {
            op,
            rs1,
            rs2,
            offset,
        } => Uop::Store {
            op,
            rs1,
            rs2,
            offset: offset as u32,
        },
        Instr::OpImm { op, rd, rs1, imm } => Uop::AluRI {
            op,
            rd,
            rs1,
            imm: imm as u32,
        },
        Instr::Op { op, rd, rs1, rs2 } => Uop::AluRR { op, rd, rs1, rs2 },
        Instr::MulDiv { op, rd, rs1, rs2 } => Uop::MulDiv { op, rd, rs1, rs2 },
        Instr::Csr { op, rd, csr, src } => Uop::Csr { op, rd, csr, src },
        Instr::Mret
        | Instr::Wfi
        | Instr::Ecall
        | Instr::Ebreak
        | Instr::Fence
        | Instr::Custom { .. } => return None,
    })
}

/// Detects a fusible macro-op pair: `first` at `pc`, `second` at `pc + 4`.
/// Returns the fused micro-op, or `None` when the pair does not match one
/// of the supported patterns:
///
/// * `lui rd_hi, hi` + `addi rd, rd_hi, lo` (immediate materialisation),
/// * `auipc rd1, hi` + `jalr rd2, lo(rd1)` (PC-relative call),
/// * `slt/sltu/slti/sltiu rd, ...` + `beq/bne rd, x0, off` (compare-and-
///   branch).
///
/// The producing destination must not be `x0` (an `x0` write vanishes, so
/// the consumer would read zero — not the produced value — and the fusion
/// would be architecturally wrong).
pub fn fuse(first: &Instr, second: &Instr, pc: u32) -> Option<Uop> {
    match (*first, *second) {
        (
            Instr::Lui { rd: rd_hi, imm: hi },
            Instr::OpImm {
                op: AluOp::Add,
                rd,
                rs1,
                imm,
            },
        ) if rd_hi != Reg::Zero && rs1 == rd_hi => Some(Uop::LoadImm {
            rd_hi,
            hi,
            rd,
            value: hi.wrapping_add(imm as u32),
        }),
        (
            Instr::Auipc { rd: rd1, imm: hi },
            Instr::Jalr {
                rd: link,
                rs1,
                offset,
            },
        ) if rd1 != Reg::Zero && rs1 == rd1 => {
            let pcrel = pc.wrapping_add(hi);
            Some(Uop::AuipcJalr {
                rd1,
                pcrel,
                link,
                link_value: pc.wrapping_add(8),
                target: pcrel.wrapping_add(offset as u32) & !1,
            })
        }
        (cmp, branch) => {
            let (op, rd, rs1, src2) = match cmp {
                Instr::Op {
                    op: op @ (AluOp::Slt | AluOp::Sltu),
                    rd,
                    rs1,
                    rs2,
                } => (op, rd, rs1, UopSrc::Reg(rs2)),
                Instr::OpImm {
                    op: op @ (AluOp::Slt | AluOp::Sltu),
                    rd,
                    rs1,
                    imm,
                } => (op, rd, rs1, UopSrc::Imm(imm as u32)),
                _ => return None,
            };
            let (bop, brs1, brs2, offset) = match branch {
                Instr::Branch {
                    op: op @ (BranchOp::Eq | BranchOp::Ne),
                    rs1,
                    rs2,
                    offset,
                } => (op, rs1, rs2, offset),
                _ => return None,
            };
            if rd == Reg::Zero || brs1 != rd || brs2 != Reg::Zero {
                return None;
            }
            let branch_pc = pc.wrapping_add(4);
            Some(Uop::CmpBranch {
                op,
                rd,
                rs1,
                src2,
                branch_if_nonzero: bop == BranchOp::Ne,
                taken_pc: branch_pc.wrapping_add(offset as u32),
                fall_pc: branch_pc.wrapping_add(4),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowers_pc_relative_ops_with_static_values() {
        let u = lower(
            &Instr::Auipc {
                rd: Reg::T0,
                imm: 0x1000,
            },
            0x200,
        )
        .unwrap();
        assert_eq!(
            u,
            Uop::MovImm {
                rd: Reg::T0,
                value: 0x1200
            }
        );
        let u = lower(
            &Instr::Branch {
                op: BranchOp::Ne,
                rs1: Reg::A0,
                rs2: Reg::Zero,
                offset: -8,
            },
            0x100,
        )
        .unwrap();
        assert_eq!(
            u,
            Uop::Branch {
                op: BranchOp::Ne,
                rs1: Reg::A0,
                rs2: Reg::Zero,
                taken_pc: 0xF8,
                fall_pc: 0x104
            }
        );
        assert!(lower(&Instr::Mret, 0).is_none());
        assert!(lower(&Instr::Fence, 0).is_none());
    }

    #[test]
    fn fuses_lui_addi() {
        let lui = Instr::Lui {
            rd: Reg::T0,
            imm: 0x12345 << 12,
        };
        let addi = Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::T0,
            rs1: Reg::T0,
            imm: 0x678,
        };
        assert_eq!(
            fuse(&lui, &addi, 0x40),
            Some(Uop::LoadImm {
                rd_hi: Reg::T0,
                hi: 0x12345 << 12,
                rd: Reg::T0,
                value: (0x12345 << 12) + 0x678,
            })
        );
        // Different destination register still fuses (both writes kept).
        let addi2 = Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::T0,
            imm: -4,
        };
        assert_eq!(
            fuse(&lui, &addi2, 0x40),
            Some(Uop::LoadImm {
                rd_hi: Reg::T0,
                hi: 0x12345 << 12,
                rd: Reg::A0,
                value: (0x12345u32 << 12).wrapping_sub(4),
            })
        );
        // addi reading a different register: no fusion.
        let unrelated = Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            imm: 1,
        };
        assert_eq!(fuse(&lui, &unrelated, 0x40), None);
        // lui to x0 produces zero, not `hi`: must not fuse.
        let lui_x0 = Instr::Lui {
            rd: Reg::Zero,
            imm: 0x1000,
        };
        assert_eq!(
            fuse(
                &lui_x0,
                &Instr::OpImm {
                    op: AluOp::Add,
                    rd: Reg::A0,
                    rs1: Reg::Zero,
                    imm: 1
                },
                0
            ),
            None
        );
    }

    #[test]
    fn fuses_auipc_jalr_with_static_target() {
        let auipc = Instr::Auipc {
            rd: Reg::T1,
            imm: 0x2000,
        };
        let jalr = Instr::Jalr {
            rd: Reg::Ra,
            rs1: Reg::T1,
            offset: 0x31,
        };
        let u = fuse(&auipc, &jalr, 0x100).unwrap();
        assert_eq!(
            u,
            Uop::AuipcJalr {
                rd1: Reg::T1,
                pcrel: 0x2100,
                link: Reg::Ra,
                link_value: 0x108,
                target: 0x2130, // low bit cleared
            }
        );
        assert!(u.is_terminator());
        assert_eq!(u.instr_count(), 2);
    }

    #[test]
    fn fuses_cmp_branch_forms() {
        let slt = Instr::Op {
            op: AluOp::Slt,
            rd: Reg::T2,
            rs1: Reg::A0,
            rs2: Reg::A1,
        };
        let bnez = Instr::Branch {
            op: BranchOp::Ne,
            rs1: Reg::T2,
            rs2: Reg::Zero,
            offset: 0x20,
        };
        assert_eq!(
            fuse(&slt, &bnez, 0x400),
            Some(Uop::CmpBranch {
                op: AluOp::Slt,
                rd: Reg::T2,
                rs1: Reg::A0,
                src2: UopSrc::Reg(Reg::A1),
                branch_if_nonzero: true,
                taken_pc: 0x424,
                fall_pc: 0x408,
            })
        );
        let sltiu = Instr::OpImm {
            op: AluOp::Sltu,
            rd: Reg::T2,
            rs1: Reg::A0,
            imm: 7,
        };
        let beqz = Instr::Branch {
            op: BranchOp::Eq,
            rs1: Reg::T2,
            rs2: Reg::Zero,
            offset: -12,
        };
        let u = fuse(&sltiu, &beqz, 0x400).unwrap();
        assert_eq!(
            u,
            Uop::CmpBranch {
                op: AluOp::Sltu,
                rd: Reg::T2,
                rs1: Reg::A0,
                src2: UopSrc::Imm(7),
                branch_if_nonzero: false,
                taken_pc: 0x3F8,
                fall_pc: 0x408,
            }
        );
        // Branch comparing against a non-zero register: no fusion.
        let bne_reg = Instr::Branch {
            op: BranchOp::Ne,
            rs1: Reg::T2,
            rs2: Reg::A3,
            offset: 8,
        };
        assert_eq!(fuse(&slt, &bne_reg, 0), None);
        // Branch reading a different register than the comparison wrote.
        let bne_other = Instr::Branch {
            op: BranchOp::Ne,
            rs1: Reg::A4,
            rs2: Reg::Zero,
            offset: 8,
        };
        assert_eq!(fuse(&slt, &bne_other, 0), None);
    }
}
