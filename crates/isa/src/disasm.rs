//! Disassembler — renders [`Instr`] as conventional assembly text.
//!
//! Used by the WCET reports and by simulator traces.

use crate::csr::csr_name;
use crate::instr::{AluOp, BranchOp, CsrOp, Instr, LoadOp, MulDivOp, StoreOp};

fn alu_name(op: AluOp, imm: bool) -> &'static str {
    match (op, imm) {
        (AluOp::Add, false) => "add",
        (AluOp::Add, true) => "addi",
        (AluOp::Sub, _) => "sub",
        (AluOp::Sll, false) => "sll",
        (AluOp::Sll, true) => "slli",
        (AluOp::Slt, false) => "slt",
        (AluOp::Slt, true) => "slti",
        (AluOp::Sltu, false) => "sltu",
        (AluOp::Sltu, true) => "sltiu",
        (AluOp::Xor, false) => "xor",
        (AluOp::Xor, true) => "xori",
        (AluOp::Srl, false) => "srl",
        (AluOp::Srl, true) => "srli",
        (AluOp::Sra, false) => "sra",
        (AluOp::Sra, true) => "srai",
        (AluOp::Or, false) => "or",
        (AluOp::Or, true) => "ori",
        (AluOp::And, false) => "and",
        (AluOp::And, true) => "andi",
    }
}

/// Renders `instr` located at `pc` (used to print absolute branch targets).
///
/// ```
/// use rvsim_isa::{disassemble, Instr, Reg, AluOp};
/// let i = Instr::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::Sp, imm: -16 };
/// assert_eq!(disassemble(&i, 0), "addi a0, sp, -16");
/// ```
pub fn disassemble(instr: &Instr, pc: u32) -> String {
    match *instr {
        Instr::Lui { rd, imm } => format!("lui {rd}, {:#x}", imm >> 12),
        Instr::Auipc { rd, imm } => format!("auipc {rd}, {:#x}", imm >> 12),
        Instr::Jal { rd, offset } => {
            let target = pc.wrapping_add(offset as u32);
            format!("jal {rd}, {target:#x}")
        }
        Instr::Jalr { rd, rs1, offset } => format!("jalr {rd}, {offset}({rs1})"),
        Instr::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let name = match op {
                BranchOp::Eq => "beq",
                BranchOp::Ne => "bne",
                BranchOp::Lt => "blt",
                BranchOp::Ge => "bge",
                BranchOp::Ltu => "bltu",
                BranchOp::Geu => "bgeu",
            };
            let target = pc.wrapping_add(offset as u32);
            format!("{name} {rs1}, {rs2}, {target:#x}")
        }
        Instr::Load {
            op,
            rd,
            rs1,
            offset,
        } => {
            let name = match op {
                LoadOp::Lb => "lb",
                LoadOp::Lh => "lh",
                LoadOp::Lw => "lw",
                LoadOp::Lbu => "lbu",
                LoadOp::Lhu => "lhu",
            };
            format!("{name} {rd}, {offset}({rs1})")
        }
        Instr::Store {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let name = match op {
                StoreOp::Sb => "sb",
                StoreOp::Sh => "sh",
                StoreOp::Sw => "sw",
            };
            format!("{name} {rs2}, {offset}({rs1})")
        }
        Instr::OpImm { op, rd, rs1, imm } => {
            format!("{} {rd}, {rs1}, {imm}", alu_name(op, true))
        }
        Instr::Op { op, rd, rs1, rs2 } => {
            format!("{} {rd}, {rs1}, {rs2}", alu_name(op, false))
        }
        Instr::MulDiv { op, rd, rs1, rs2 } => {
            let name = match op {
                MulDivOp::Mul => "mul",
                MulDivOp::Mulh => "mulh",
                MulDivOp::Mulhsu => "mulhsu",
                MulDivOp::Mulhu => "mulhu",
                MulDivOp::Div => "div",
                MulDivOp::Divu => "divu",
                MulDivOp::Rem => "rem",
                MulDivOp::Remu => "remu",
            };
            format!("{name} {rd}, {rs1}, {rs2}")
        }
        Instr::Csr { op, rd, csr, src } => {
            let name = match op {
                CsrOp::Rw => "csrrw",
                CsrOp::Rs => "csrrs",
                CsrOp::Rc => "csrrc",
                CsrOp::Rwi => "csrrwi",
                CsrOp::Rsi => "csrrsi",
                CsrOp::Rci => "csrrci",
            };
            let csr_s = csr_name(csr)
                .map(str::to_string)
                .unwrap_or_else(|| format!("{csr:#x}"));
            if op.is_immediate() {
                format!("{name} {rd}, {csr_s}, {src}")
            } else {
                format!(
                    "{name} {rd}, {csr_s}, {}",
                    crate::reg::Reg::from_number(src)
                )
            }
        }
        Instr::Mret => "mret".to_string(),
        Instr::Wfi => "wfi".to_string(),
        Instr::Ecall => "ecall".to_string(),
        Instr::Ebreak => "ebreak".to_string(),
        Instr::Fence => "fence".to_string(),
        Instr::Custom { op, rd, rs1, rs2 } => {
            if op.writes_rd() {
                format!("{op} {rd}")
            } else {
                format!("{op} {rs1}, {rs2}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::custom::CustomOp;
    use crate::reg::Reg;

    #[test]
    fn renders_branch_target_absolute() {
        let b = Instr::Branch {
            op: BranchOp::Ne,
            rs1: Reg::A0,
            rs2: Reg::Zero,
            offset: -8,
        };
        assert_eq!(disassemble(&b, 0x100), "bne a0, zero, 0xf8");
    }

    #[test]
    fn renders_custom() {
        let c = Instr::Custom {
            op: CustomOp::GetHwSched,
            rd: Reg::A0,
            rs1: Reg::Zero,
            rs2: Reg::Zero,
        };
        assert_eq!(disassemble(&c, 0), "get_hw_sched a0");
        let s = Instr::Custom {
            op: CustomOp::AddReady,
            rd: Reg::Zero,
            rs1: Reg::A0,
            rs2: Reg::A1,
        };
        assert_eq!(disassemble(&s, 0), "add_ready a0, a1");
    }

    #[test]
    fn renders_csr_by_name() {
        let c = Instr::Csr {
            op: CsrOp::Rw,
            rd: Reg::Zero,
            csr: crate::csr::MEPC,
            src: 10,
        };
        assert_eq!(disassemble(&c, 0), "csrrw zero, mepc, a0");
    }
}
