//! Typed representation of RV32IM_Zicsr instructions.

use crate::custom::CustomOp;
use crate::reg::Reg;

/// ALU operation used by both register-register and register-immediate forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Addition (`add`/`addi`); `sub` in register-register form only.
    Add,
    /// Subtraction (register-register only).
    Sub,
    /// Logical left shift.
    Sll,
    /// Signed set-less-than.
    Slt,
    /// Unsigned set-less-than.
    Sltu,
    /// Bitwise exclusive or.
    Xor,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
}

/// M-extension multiply/divide operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulDivOp {
    /// Low 32 bits of the product.
    Mul,
    /// High 32 bits of the signed×signed product.
    Mulh,
    /// High 32 bits of the signed×unsigned product.
    Mulhsu,
    /// High 32 bits of the unsigned×unsigned product.
    Mulhu,
    /// Signed division.
    Div,
    /// Unsigned division.
    Divu,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    Remu,
}

/// Conditional branch comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if signed less-than.
    Lt,
    /// Branch if signed greater-or-equal.
    Ge,
    /// Branch if unsigned less-than.
    Ltu,
    /// Branch if unsigned greater-or-equal.
    Geu,
}

/// Load width/signedness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LoadOp {
    /// Load sign-extended byte.
    Lb,
    /// Load sign-extended half-word.
    Lh,
    /// Load word.
    Lw,
    /// Load zero-extended byte.
    Lbu,
    /// Load zero-extended half-word.
    Lhu,
}

/// Store width.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StoreOp {
    /// Store byte.
    Sb,
    /// Store half-word.
    Sh,
    /// Store word.
    Sw,
}

/// Zicsr operation. The `*i` forms use a 5-bit zero-extended immediate in
/// place of `rs1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsrOp {
    /// Atomic read/write.
    Rw,
    /// Atomic read and set bits.
    Rs,
    /// Atomic read and clear bits.
    Rc,
    /// Immediate read/write.
    Rwi,
    /// Immediate read and set bits.
    Rsi,
    /// Immediate read and clear bits.
    Rci,
}

impl CsrOp {
    /// Whether the source operand is the 5-bit immediate form.
    pub fn is_immediate(self) -> bool {
        matches!(self, CsrOp::Rwi | CsrOp::Rsi | CsrOp::Rci)
    }
}

/// A decoded RV32IM_Zicsr (+ RTOSUnit custom) instruction.
///
/// Immediates are stored in their *architectural* form: already
/// sign-extended (branch/jump/load/store offsets, I-immediates) or already
/// shifted into the upper bits (`lui`/`auipc`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Load upper immediate. `imm` holds the final value (`imm20 << 12`).
    Lui { rd: Reg, imm: u32 },
    /// Add upper immediate to PC. `imm` holds `imm20 << 12`.
    Auipc { rd: Reg, imm: u32 },
    /// Jump and link; `offset` is relative to the instruction address.
    Jal { rd: Reg, offset: i32 },
    /// Indirect jump and link.
    Jalr { rd: Reg, rs1: Reg, offset: i32 },
    /// Conditional branch; `offset` is relative to the instruction address.
    Branch {
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    /// Memory load.
    Load {
        op: LoadOp,
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    /// Memory store.
    Store {
        op: StoreOp,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    /// ALU with immediate (no `Sub`; shifts use the low 5 bits of `imm`).
    OpImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// ALU register-register.
    Op {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// M-extension multiply/divide.
    MulDiv {
        op: MulDivOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Zicsr access. For immediate forms `src` holds the 5-bit immediate,
    /// otherwise the source register number.
    Csr {
        op: CsrOp,
        rd: Reg,
        csr: u16,
        src: u8,
    },
    /// Return from machine trap.
    Mret,
    /// Wait for interrupt.
    Wfi,
    /// Environment call.
    Ecall,
    /// Breakpoint.
    Ebreak,
    /// Memory fence (a timing no-op in this model).
    Fence,
    /// RTOSUnit custom instruction (paper Table 1).
    Custom {
        op: CustomOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
}

impl Instr {
    /// The destination register, if the instruction writes one
    /// (writes to `x0` are reported as `None`).
    pub fn rd(&self) -> Option<Reg> {
        let rd = match *self {
            Instr::Lui { rd, .. }
            | Instr::Auipc { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::Jalr { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::OpImm { rd, .. }
            | Instr::Op { rd, .. }
            | Instr::MulDiv { rd, .. }
            | Instr::Csr { rd, .. } => rd,
            Instr::Custom { op, rd, .. } if op.writes_rd() => rd,
            _ => return None,
        };
        (rd != Reg::Zero).then_some(rd)
    }

    /// Source registers read by the instruction (up to two).
    pub fn sources(&self) -> [Option<Reg>; 2] {
        match *self {
            Instr::Jalr { rs1, .. } | Instr::Load { rs1, .. } | Instr::OpImm { rs1, .. } => {
                [Some(rs1), None]
            }
            Instr::Branch { rs1, rs2, .. }
            | Instr::Store { rs1, rs2, .. }
            | Instr::Op { rs1, rs2, .. }
            | Instr::MulDiv { rs1, rs2, .. }
            | Instr::Custom { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Instr::Csr { op, src, .. } if !op.is_immediate() => [Some(Reg::from_number(src)), None],
            _ => [None, None],
        }
    }

    /// Whether this is a control-flow instruction (branch, jump, `mret`).
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Branch { .. } | Instr::Mret
        )
    }

    /// Whether this instruction accesses data memory.
    pub fn is_mem(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rd_of_x0_is_none() {
        let i = Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::Zero,
            rs1: Reg::A0,
            imm: 1,
        };
        assert_eq!(i.rd(), None);
    }

    #[test]
    fn custom_rd_only_for_get_hw_sched() {
        let get = Instr::Custom {
            op: CustomOp::GetHwSched,
            rd: Reg::A0,
            rs1: Reg::Zero,
            rs2: Reg::Zero,
        };
        assert_eq!(get.rd(), Some(Reg::A0));
        let set = Instr::Custom {
            op: CustomOp::SetContextId,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::Zero,
        };
        assert_eq!(set.rd(), None);
    }

    #[test]
    fn sources_of_store() {
        let s = Instr::Store {
            op: StoreOp::Sw,
            rs1: Reg::Sp,
            rs2: Reg::A0,
            offset: 4,
        };
        assert_eq!(s.sources(), [Some(Reg::Sp), Some(Reg::A0)]);
    }

    #[test]
    fn control_flow_classification() {
        assert!(Instr::Mret.is_control_flow());
        assert!(Instr::Jal {
            rd: Reg::Zero,
            offset: 8
        }
        .is_control_flow());
        assert!(!Instr::Fence.is_control_flow());
    }
}
