//! Instruction encoding: [`Instr`] → 32-bit machine word.

use crate::instr::{AluOp, BranchOp, CsrOp, Instr, LoadOp, MulDivOp, StoreOp};
use crate::reg::Reg;

const OPC_LUI: u32 = 0b0110111;
const OPC_AUIPC: u32 = 0b0010111;
const OPC_JAL: u32 = 0b1101111;
const OPC_JALR: u32 = 0b1100111;
const OPC_BRANCH: u32 = 0b1100011;
const OPC_LOAD: u32 = 0b0000011;
const OPC_STORE: u32 = 0b0100011;
const OPC_OP_IMM: u32 = 0b0010011;
const OPC_OP: u32 = 0b0110011;
const OPC_SYSTEM: u32 = 0b1110011;
/// The *custom-0* major opcode used by all RTOSUnit instructions.
pub const OPC_CUSTOM0: u32 = 0b0001011;

fn r_type(opcode: u32, rd: Reg, funct3: u32, rs1: Reg, rs2: Reg, funct7: u32) -> u32 {
    opcode
        | (u32::from(rd.number()) << 7)
        | (funct3 << 12)
        | (u32::from(rs1.number()) << 15)
        | (u32::from(rs2.number()) << 20)
        | (funct7 << 25)
}

fn i_type(opcode: u32, rd: Reg, funct3: u32, rs1: Reg, imm: i32) -> u32 {
    debug_assert!(
        (-2048..=2047).contains(&imm),
        "I-immediate out of range: {imm}"
    );
    opcode
        | (u32::from(rd.number()) << 7)
        | (funct3 << 12)
        | (u32::from(rs1.number()) << 15)
        | ((imm as u32 & 0xfff) << 20)
}

fn s_type(opcode: u32, funct3: u32, rs1: Reg, rs2: Reg, imm: i32) -> u32 {
    debug_assert!(
        (-2048..=2047).contains(&imm),
        "S-immediate out of range: {imm}"
    );
    let imm = imm as u32;
    opcode
        | ((imm & 0x1f) << 7)
        | (funct3 << 12)
        | (u32::from(rs1.number()) << 15)
        | (u32::from(rs2.number()) << 20)
        | ((imm >> 5 & 0x7f) << 25)
}

fn b_type(funct3: u32, rs1: Reg, rs2: Reg, offset: i32) -> u32 {
    debug_assert!(
        (-4096..=4095).contains(&offset) && offset % 2 == 0,
        "B-offset out of range or misaligned: {offset}"
    );
    let o = offset as u32;
    OPC_BRANCH
        | ((o >> 11 & 1) << 7)
        | ((o >> 1 & 0xf) << 8)
        | (funct3 << 12)
        | (u32::from(rs1.number()) << 15)
        | (u32::from(rs2.number()) << 20)
        | ((o >> 5 & 0x3f) << 25)
        | ((o >> 12 & 1) << 31)
}

fn j_type(rd: Reg, offset: i32) -> u32 {
    debug_assert!(
        (-(1 << 20)..(1 << 20)).contains(&offset) && offset % 2 == 0,
        "J-offset out of range or misaligned: {offset}"
    );
    let o = offset as u32;
    OPC_JAL
        | (u32::from(rd.number()) << 7)
        | ((o >> 12 & 0xff) << 12)
        | ((o >> 11 & 1) << 20)
        | ((o >> 1 & 0x3ff) << 21)
        | ((o >> 20 & 1) << 31)
}

fn alu_funct3(op: AluOp) -> u32 {
    match op {
        AluOp::Add | AluOp::Sub => 0b000,
        AluOp::Sll => 0b001,
        AluOp::Slt => 0b010,
        AluOp::Sltu => 0b011,
        AluOp::Xor => 0b100,
        AluOp::Srl | AluOp::Sra => 0b101,
        AluOp::Or => 0b110,
        AluOp::And => 0b111,
    }
}

fn muldiv_funct3(op: MulDivOp) -> u32 {
    match op {
        MulDivOp::Mul => 0b000,
        MulDivOp::Mulh => 0b001,
        MulDivOp::Mulhsu => 0b010,
        MulDivOp::Mulhu => 0b011,
        MulDivOp::Div => 0b100,
        MulDivOp::Divu => 0b101,
        MulDivOp::Rem => 0b110,
        MulDivOp::Remu => 0b111,
    }
}

fn branch_funct3(op: BranchOp) -> u32 {
    match op {
        BranchOp::Eq => 0b000,
        BranchOp::Ne => 0b001,
        BranchOp::Lt => 0b100,
        BranchOp::Ge => 0b101,
        BranchOp::Ltu => 0b110,
        BranchOp::Geu => 0b111,
    }
}

fn load_funct3(op: LoadOp) -> u32 {
    match op {
        LoadOp::Lb => 0b000,
        LoadOp::Lh => 0b001,
        LoadOp::Lw => 0b010,
        LoadOp::Lbu => 0b100,
        LoadOp::Lhu => 0b101,
    }
}

fn store_funct3(op: StoreOp) -> u32 {
    match op {
        StoreOp::Sb => 0b000,
        StoreOp::Sh => 0b001,
        StoreOp::Sw => 0b010,
    }
}

fn csr_funct3(op: CsrOp) -> u32 {
    match op {
        CsrOp::Rw => 0b001,
        CsrOp::Rs => 0b010,
        CsrOp::Rc => 0b011,
        CsrOp::Rwi => 0b101,
        CsrOp::Rsi => 0b110,
        CsrOp::Rci => 0b111,
    }
}

/// Encodes an instruction into its 32-bit machine representation.
///
/// # Panics
///
/// In debug builds, panics if an immediate is out of range for its
/// encoding (the assembler validates ranges before calling this).
///
/// ```
/// use rvsim_isa::{encode, decode, Instr, Reg, AluOp};
/// let i = Instr::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A1, imm: -7 };
/// assert_eq!(decode(encode(&i)).unwrap(), i);
/// ```
pub fn encode(instr: &Instr) -> u32 {
    match *instr {
        Instr::Lui { rd, imm } => OPC_LUI | (u32::from(rd.number()) << 7) | (imm & 0xfffff000),
        Instr::Auipc { rd, imm } => OPC_AUIPC | (u32::from(rd.number()) << 7) | (imm & 0xfffff000),
        Instr::Jal { rd, offset } => j_type(rd, offset),
        Instr::Jalr { rd, rs1, offset } => i_type(OPC_JALR, rd, 0, rs1, offset),
        Instr::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => b_type(branch_funct3(op), rs1, rs2, offset),
        Instr::Load {
            op,
            rd,
            rs1,
            offset,
        } => i_type(OPC_LOAD, rd, load_funct3(op), rs1, offset),
        Instr::Store {
            op,
            rs1,
            rs2,
            offset,
        } => s_type(OPC_STORE, store_funct3(op), rs1, rs2, offset),
        Instr::OpImm { op, rd, rs1, imm } => {
            debug_assert!(op != AluOp::Sub, "subi does not exist; use addi with -imm");
            match op {
                AluOp::Sll | AluOp::Srl => {
                    debug_assert!((0..32).contains(&imm), "shift amount out of range");
                    i_type(OPC_OP_IMM, rd, alu_funct3(op), rs1, imm & 0x1f)
                }
                AluOp::Sra => {
                    debug_assert!((0..32).contains(&imm), "shift amount out of range");
                    i_type(OPC_OP_IMM, rd, alu_funct3(op), rs1, (imm & 0x1f) | 0x400)
                }
                _ => i_type(OPC_OP_IMM, rd, alu_funct3(op), rs1, imm),
            }
        }
        Instr::Op { op, rd, rs1, rs2 } => {
            let funct7 = match op {
                AluOp::Sub | AluOp::Sra => 0x20,
                _ => 0x00,
            };
            r_type(OPC_OP, rd, alu_funct3(op), rs1, rs2, funct7)
        }
        Instr::MulDiv { op, rd, rs1, rs2 } => r_type(OPC_OP, rd, muldiv_funct3(op), rs1, rs2, 0x01),
        Instr::Csr { op, rd, csr, src } => {
            OPC_SYSTEM
                | (u32::from(rd.number()) << 7)
                | (csr_funct3(op) << 12)
                | (u32::from(src & 0x1f) << 15)
                | (u32::from(csr) << 20)
        }
        Instr::Mret => 0x3020_0073,
        Instr::Wfi => 0x1050_0073,
        Instr::Ecall => 0x0000_0073,
        Instr::Ebreak => 0x0010_0073,
        Instr::Fence => 0x0000_000f,
        Instr::Custom { op, rd, rs1, rs2 } => r_type(OPC_CUSTOM0, rd, 0, rs1, rs2, op.funct7()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::custom::CustomOp;

    #[test]
    fn known_encodings() {
        // addi a0, a0, 1  => 0x00150513
        let addi = Instr::OpImm {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A0,
            imm: 1,
        };
        assert_eq!(encode(&addi), 0x0015_0513);
        // add a0, a1, a2 => 0x00c58533
        let add = Instr::Op {
            op: AluOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(encode(&add), 0x00c5_8533);
        // lw a0, 8(sp) => 0x00812503
        let lw = Instr::Load {
            op: LoadOp::Lw,
            rd: Reg::A0,
            rs1: Reg::Sp,
            offset: 8,
        };
        assert_eq!(encode(&lw), 0x0081_2503);
        // sw a0, 8(sp) => 0x00a12423
        let sw = Instr::Store {
            op: StoreOp::Sw,
            rs1: Reg::Sp,
            rs2: Reg::A0,
            offset: 8,
        };
        assert_eq!(encode(&sw), 0x00a1_2423);
        // jal ra, +8 => 0x008000ef
        let jal = Instr::Jal {
            rd: Reg::Ra,
            offset: 8,
        };
        assert_eq!(encode(&jal), 0x0080_00ef);
        // mret
        assert_eq!(encode(&Instr::Mret), 0x3020_0073);
        // mul a0, a1, a2 => 0x02c58533
        let mul = Instr::MulDiv {
            op: MulDivOp::Mul,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Reg::A2,
        };
        assert_eq!(encode(&mul), 0x02c5_8533);
    }

    #[test]
    fn custom_opcode_space() {
        for op in CustomOp::ALL {
            let w = encode(&Instr::Custom {
                op,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2,
            });
            assert_eq!(w & 0x7f, OPC_CUSTOM0);
            assert_eq!(w >> 25, op.funct7());
        }
    }

    #[test]
    fn negative_branch_offset() {
        let b = Instr::Branch {
            op: BranchOp::Ne,
            rs1: Reg::A0,
            rs2: Reg::Zero,
            offset: -8,
        };
        let w = encode(&b);
        assert_eq!(w & 0x7f, OPC_BRANCH);
        assert_eq!(crate::decode::decode(w).unwrap(), b);
    }
}
