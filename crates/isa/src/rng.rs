//! A small deterministic PRNG for the differential-fuzzing harness.
//!
//! The verification substrate (`rvsim-check`) must run in an offline build
//! with no `rand` dependency, and every generated program or schedule must
//! be exactly reproducible from a single `u64` seed recorded in replay
//! artifacts. SplitMix64 fits: tiny, fast, full 64-bit state, and its
//! output sequence is fixed by construction (the constants below are the
//! reference ones from Steele et al., "Fast splittable pseudorandom number
//! generators").

/// A SplitMix64 generator. The stream is a pure function of the seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator with the given seed. Equal seeds produce equal
    /// streams forever.
    pub fn new(seed: u64) -> Rng64 {
        Rng64 { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32 pseudo-random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value in `0..bound` (`bound` must be non-zero). The modulo
    /// bias is below 2⁻³² for every bound this codebase uses.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "Rng64::below(0)");
        self.next_u64() % bound
    }

    /// A uniform `usize` index in `0..bound`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// A uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Splits off an independent generator (for sub-streams that must not
    /// perturb the parent's sequence).
    pub fn split(&mut self) -> Rng64 {
        Rng64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_streams() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn reference_vector() {
        // First outputs of SplitMix64 with seed 0 (reference constants).
        let mut r = Rng64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = Rng64::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..50 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng64::new(9);
        assert!(!(0..100).any(|_| r.chance(0)));
        assert!((0..100).all(|_| r.chance(100)));
    }

    #[test]
    fn split_streams_diverge_from_parent() {
        let mut a = Rng64::new(1);
        let mut child = a.split();
        assert_ne!(a.next_u64(), child.next_u64());
    }
}
