//! Property tests: every constructible instruction encodes and decodes
//! losslessly, and decode never panics on arbitrary words.

#![cfg(feature = "proptest")]
// Default-off: requires the external `proptest` crate (network). See the
// crate's Cargo.toml for how to enable.

use proptest::prelude::*;
use rvsim_isa::{
    decode, encode, AluOp, BranchOp, CsrOp, CustomOp, Instr, LoadOp, MulDivOp, Reg, StoreOp,
};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg::from_number)
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
    ]
}

fn arb_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (arb_reg(), 0u32..(1 << 20)).prop_map(|(rd, i)| Instr::Lui { rd, imm: i << 12 }),
        (arb_reg(), 0u32..(1 << 20)).prop_map(|(rd, i)| Instr::Auipc { rd, imm: i << 12 }),
        (arb_reg(), -(1i32 << 19)..(1 << 19)).prop_map(|(rd, o)| Instr::Jal { rd, offset: o * 2 }),
        (arb_reg(), arb_reg(), -2048i32..2048).prop_map(|(rd, rs1, o)| Instr::Jalr {
            rd,
            rs1,
            offset: o
        }),
        (
            prop_oneof![
                Just(BranchOp::Eq),
                Just(BranchOp::Ne),
                Just(BranchOp::Lt),
                Just(BranchOp::Ge),
                Just(BranchOp::Ltu),
                Just(BranchOp::Geu)
            ],
            arb_reg(),
            arb_reg(),
            -2048i32..2048
        )
            .prop_map(|(op, rs1, rs2, o)| Instr::Branch {
                op,
                rs1,
                rs2,
                offset: o * 2
            }),
        (
            prop_oneof![
                Just(LoadOp::Lb),
                Just(LoadOp::Lh),
                Just(LoadOp::Lw),
                Just(LoadOp::Lbu),
                Just(LoadOp::Lhu)
            ],
            arb_reg(),
            arb_reg(),
            -2048i32..2048
        )
            .prop_map(|(op, rd, rs1, o)| Instr::Load {
                op,
                rd,
                rs1,
                offset: o
            }),
        (
            prop_oneof![Just(StoreOp::Sb), Just(StoreOp::Sh), Just(StoreOp::Sw)],
            arb_reg(),
            arb_reg(),
            -2048i32..2048
        )
            .prop_map(|(op, rs1, rs2, o)| Instr::Store {
                op,
                rs1,
                rs2,
                offset: o
            }),
        (arb_alu(), arb_reg(), arb_reg(), -2048i32..2048).prop_map(|(op, rd, rs1, imm)| {
            let imm = match op {
                AluOp::Sll | AluOp::Srl | AluOp::Sra => imm.rem_euclid(32),
                _ => imm,
            };
            Instr::OpImm { op, rd, rs1, imm }
        }),
        (
            prop_oneof![arb_alu(), Just(AluOp::Sub)],
            arb_reg(),
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::Op { op, rd, rs1, rs2 }),
        (
            prop_oneof![
                Just(MulDivOp::Mul),
                Just(MulDivOp::Mulh),
                Just(MulDivOp::Mulhsu),
                Just(MulDivOp::Mulhu),
                Just(MulDivOp::Div),
                Just(MulDivOp::Divu),
                Just(MulDivOp::Rem),
                Just(MulDivOp::Remu)
            ],
            arb_reg(),
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::MulDiv { op, rd, rs1, rs2 }),
        (
            prop_oneof![
                Just(CsrOp::Rw),
                Just(CsrOp::Rs),
                Just(CsrOp::Rc),
                Just(CsrOp::Rwi),
                Just(CsrOp::Rsi),
                Just(CsrOp::Rci)
            ],
            arb_reg(),
            0u16..4096,
            0u8..32
        )
            .prop_map(|(op, rd, csr, src)| Instr::Csr { op, rd, csr, src }),
        Just(Instr::Mret),
        Just(Instr::Wfi),
        Just(Instr::Ecall),
        Just(Instr::Ebreak),
        (
            prop_oneof![
                Just(CustomOp::AddReady),
                Just(CustomOp::AddDelay),
                Just(CustomOp::RmTask),
                Just(CustomOp::SetContextId),
                Just(CustomOp::GetHwSched),
                Just(CustomOp::SwitchRf)
            ],
            arb_reg(),
            arb_reg(),
            arb_reg()
        )
            .prop_map(|(op, rd, rs1, rs2)| Instr::Custom { op, rd, rs1, rs2 }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(instr in arb_instr()) {
        let word = encode(&instr);
        let back = decode(word).expect("decode of encoded instruction");
        prop_assert_eq!(back, instr);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word);
    }

    #[test]
    fn decode_encode_is_identity_when_valid(word in any::<u32>()) {
        if let Ok(instr) = decode(word) {
            // Fence ignores fm/pred/succ bits in this model; skip exact
            // word equality there, but the instruction must be stable.
            if !matches!(instr, Instr::Fence) {
                prop_assert_eq!(decode(encode(&instr)).unwrap(), instr);
            }
        }
    }

    #[test]
    fn disassemble_never_panics(instr in arb_instr()) {
        let _ = rvsim_isa::disassemble(&instr, 0x8000_0000);
    }
}
