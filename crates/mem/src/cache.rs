//! Set-associative cache timing model.
//!
//! The model tracks tags, valid and dirty bits — not data (data always
//! lives in the backing [`Mem`](crate::Mem), which is updated synchronously
//! by the simulator). Its job is to produce *timing outcomes* (hit, miss,
//! dirty eviction) plus the occupancy of the downstream bus, which is what
//! creates the residual context-switch jitter the paper observes on CVA6
//! and NaxRiscv (§6.1).

use rvsim_snapshot::{self as snap, Json, SnapError};

/// Write policy of the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Writes go to memory immediately (CVA6, §5.2). Write misses do not
    /// allocate.
    WriteThrough,
    /// Writes dirty the line; dirty lines are written back on eviction
    /// (NaxRiscv, §5.3). Write misses allocate.
    WriteBack,
}

/// Static cache geometry and latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: u32,
    /// Associativity.
    pub ways: u32,
    /// Line size in 32-bit words (power of two).
    pub line_words: u32,
    /// Write policy.
    pub policy: WritePolicy,
    /// Cycles for a hit.
    pub hit_latency: u32,
    /// Cycles to fetch a line from the backing store on a miss.
    pub miss_penalty: u32,
}

impl CacheConfig {
    /// A small write-through data cache as used by the CVA6 model.
    pub fn cva6_data() -> CacheConfig {
        CacheConfig {
            sets: 64,
            ways: 4,
            line_words: 4,
            policy: WritePolicy::WriteThrough,
            hit_latency: 1,
            miss_penalty: 6,
        }
    }

    /// A write-back data cache in front of high-latency memory, as used by
    /// the NaxRiscv model. 64-byte lines: the 16 words that CV32RT's
    /// dedicated port bypasses fit in a single line (§6).
    pub fn naxriscv_data() -> CacheConfig {
        CacheConfig {
            sets: 64,
            ways: 4,
            line_words: 16,
            policy: WritePolicy::WriteBack,
            hit_latency: 1,
            miss_penalty: 20,
        }
    }
}

/// Timing outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Whether a dirty line had to be written back first.
    pub writeback: bool,
    /// Total latency in cycles for this access.
    pub latency: u32,
    /// Cycles the downstream bus is occupied by this access (refill and/or
    /// write-through/write-back traffic).
    pub bus_cycles: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    valid: bool,
    dirty: bool,
    tag: u32,
    /// LRU stamp; higher = more recently used.
    lru: u64,
}

/// Cache state. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    lines: Vec<Line>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `line_words` is not a power of two, or if any
    /// geometry parameter is zero.
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(cfg.sets.is_power_of_two(), "sets must be a power of two");
        assert!(
            cfg.line_words.is_power_of_two(),
            "line_words must be a power of two"
        );
        assert!(cfg.ways > 0, "ways must be non-zero");
        Cache {
            cfg,
            lines: vec![Line::default(); (cfg.sets * cfg.ways) as usize],
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// `(hits, misses)` counters since construction.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn line_bytes(&self) -> u32 {
        self.cfg.line_words * 4
    }

    fn set_and_tag(&self, addr: u32) -> (u32, u32) {
        let line_addr = addr / self.line_bytes();
        (line_addr % self.cfg.sets, line_addr / self.cfg.sets)
    }

    fn set_slice(&mut self, set: u32) -> &mut [Line] {
        let start = (set * self.cfg.ways) as usize;
        &mut self.lines[start..start + self.cfg.ways as usize]
    }

    /// Performs one access and returns its timing outcome, updating tags,
    /// valid/dirty bits and LRU state.
    pub fn access(&mut self, addr: u32, is_write: bool) -> CacheOutcome {
        self.tick += 1;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(addr);
        let cfg = self.cfg;

        if let Some(line) = self
            .set_slice(set)
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            line.lru = tick;
            let (latency, bus_cycles) = match (cfg.policy, is_write) {
                // Write-through: the write still occupies the bus.
                (WritePolicy::WriteThrough, true) => (cfg.hit_latency, 1),
                _ => {
                    if is_write {
                        line.dirty = true;
                    }
                    (cfg.hit_latency, 0)
                }
            };
            self.hits += 1;
            return CacheOutcome {
                hit: true,
                writeback: false,
                latency,
                bus_cycles,
            };
        }

        self.misses += 1;
        // Write-through, no-allocate on write miss: just push to memory.
        if cfg.policy == WritePolicy::WriteThrough && is_write {
            return CacheOutcome {
                hit: false,
                writeback: false,
                latency: cfg.hit_latency + 1,
                bus_cycles: 1,
            };
        }

        // Allocate: pick the LRU victim.
        let victim = self
            .set_slice(set)
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru } else { 0 })
            .expect("ways > 0");
        let writeback = victim.valid && victim.dirty;
        victim.valid = true;
        victim.dirty = is_write && cfg.policy == WritePolicy::WriteBack;
        victim.tag = tag;
        victim.lru = tick;

        let wb_cycles = if writeback { cfg.line_words } else { 0 };
        CacheOutcome {
            hit: false,
            writeback,
            latency: cfg.hit_latency + cfg.miss_penalty + wb_cycles,
            bus_cycles: cfg.line_words + wb_cycles,
        }
    }

    /// Invalidates the line containing `addr` (used by the CV32RT
    /// comparison model, which bypasses the cache with a dedicated port and
    /// must invalidate the stale line, §6).
    ///
    /// Returns `true` if a valid line was dropped.
    pub fn invalidate_line(&mut self, addr: u32) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        for line in self.set_slice(set) {
            if line.valid && line.tag == tag {
                line.valid = false;
                line.dirty = false;
                return true;
            }
        }
        false
    }

    /// Invalidates everything (no write-back; the simulator keeps data in
    /// RAM synchronously, so this is purely a timing-state reset).
    pub fn invalidate_all(&mut self) {
        for line in &mut self.lines {
            *line = Line::default();
        }
    }

    /// Serializes geometry, tag/valid/dirty/LRU state and counters for a
    /// machine-state snapshot.
    pub fn to_snap(&self) -> Json {
        let mut lines = Vec::with_capacity(self.lines.len() * 4);
        for l in &self.lines {
            lines.push(Json::UInt(u64::from(l.valid)));
            lines.push(Json::UInt(u64::from(l.dirty)));
            lines.push(Json::UInt(u64::from(l.tag)));
            lines.push(Json::UInt(l.lru));
        }
        Json::object()
            .with("sets", self.cfg.sets)
            .with("ways", self.cfg.ways)
            .with("line_words", self.cfg.line_words)
            .with(
                "policy",
                match self.cfg.policy {
                    WritePolicy::WriteThrough => "write_through",
                    WritePolicy::WriteBack => "write_back",
                },
            )
            .with("hit_latency", self.cfg.hit_latency)
            .with("miss_penalty", self.cfg.miss_penalty)
            .with("tick", self.tick)
            .with("hits", self.hits)
            .with("misses", self.misses)
            .with("lines", Json::Array(lines))
    }

    /// Rebuilds a cache from [`to_snap`](Self::to_snap) output.
    ///
    /// # Errors
    ///
    /// Fails on missing fields, an unknown policy, or a line-array length
    /// mismatch.
    pub fn from_snap(value: &Json) -> Result<Cache, SnapError> {
        let policy = match snap::get_str(value, "policy")? {
            "write_through" => WritePolicy::WriteThrough,
            "write_back" => WritePolicy::WriteBack,
            other => return Err(SnapError::new(format!("cache: unknown policy `{other}`"))),
        };
        let cfg = CacheConfig {
            sets: snap::get_u32(value, "sets")?,
            ways: snap::get_u32(value, "ways")?,
            line_words: snap::get_u32(value, "line_words")?,
            policy,
            hit_latency: snap::get_u32(value, "hit_latency")?,
            miss_penalty: snap::get_u32(value, "miss_penalty")?,
        };
        let mut cache = Cache::new(cfg);
        let flat = snap::get_array(value, "lines")?;
        if flat.len() != cache.lines.len() * 4 {
            return Err(SnapError::new(format!(
                "cache: {} line fields, expected {}",
                flat.len(),
                cache.lines.len() * 4
            )));
        }
        for (line, chunk) in cache.lines.iter_mut().zip(flat.chunks_exact(4)) {
            let read = |j: &Json, what: &str| {
                j.as_u64()
                    .ok_or_else(|| SnapError::new(format!("cache line {what}: expected integer")))
            };
            line.valid = read(&chunk[0], "valid")? != 0;
            line.dirty = read(&chunk[1], "dirty")? != 0;
            line.tag = u32::try_from(read(&chunk[2], "tag")?)
                .map_err(|_| SnapError::new("cache line tag: exceeds u32"))?;
            line.lru = read(&chunk[3], "lru")?;
        }
        cache.tick = snap::get_u64(value, "tick")?;
        cache.hits = snap::get_u64(value, "hits")?;
        cache.misses = snap::get_u64(value, "misses")?;
        Ok(cache)
    }

    /// Whether the line containing `addr` is currently resident.
    pub fn probe(&self, addr: u32) -> bool {
        let (set, tag) = {
            let line_addr = addr / self.line_bytes();
            (line_addr % self.cfg.sets, line_addr / self.cfg.sets)
        };
        let start = (set * self.cfg.ways) as usize;
        self.lines[start..start + self.cfg.ways as usize]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(policy: WritePolicy) -> Cache {
        Cache::new(CacheConfig {
            sets: 2,
            ways: 2,
            line_words: 4,
            policy,
            hit_latency: 1,
            miss_penalty: 10,
        })
    }

    #[test]
    fn read_miss_then_hit() {
        let mut c = tiny(WritePolicy::WriteBack);
        let miss = c.access(0x100, false);
        assert!(!miss.hit);
        assert_eq!(miss.latency, 11);
        let hit = c.access(0x104, false); // same 16-byte line
        assert!(hit.hit);
        assert_eq!(hit.latency, 1);
    }

    #[test]
    fn write_back_dirty_eviction() {
        let mut c = tiny(WritePolicy::WriteBack);
        // Set 0 lines are at line addresses even; with 2 sets × 16B lines,
        // addresses 0x00, 0x20, 0x40 all map to set 0.
        c.access(0x00, true); // allocate + dirty
        c.access(0x20, false); // allocate second way
        let out = c.access(0x40, false); // evicts the dirty line
        assert!(!out.hit);
        assert!(out.writeback);
        assert_eq!(out.latency, 1 + 10 + 4);
    }

    #[test]
    fn write_through_write_miss_does_not_allocate() {
        let mut c = tiny(WritePolicy::WriteThrough);
        let w = c.access(0x100, true);
        assert!(!w.hit);
        assert!(!c.probe(0x100));
        assert_eq!(w.bus_cycles, 1);
        // A read fills the line; a subsequent write hit still uses the bus.
        c.access(0x100, false);
        let w2 = c.access(0x100, true);
        assert!(w2.hit);
        assert_eq!(w2.bus_cycles, 1);
    }

    #[test]
    fn invalidate_line_drops_residency() {
        let mut c = tiny(WritePolicy::WriteBack);
        c.access(0x80, false);
        assert!(c.probe(0x80));
        assert!(c.invalidate_line(0x80));
        assert!(!c.probe(0x80));
        assert!(!c.invalidate_line(0x80));
    }

    #[test]
    fn lru_replacement_prefers_oldest() {
        let mut c = tiny(WritePolicy::WriteBack);
        c.access(0x00, false);
        c.access(0x20, false);
        c.access(0x00, false); // refresh line 0x00
        c.access(0x40, false); // should evict 0x20
        assert!(c.probe(0x00));
        assert!(!c.probe(0x20));
        assert!(c.probe(0x40));
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = tiny(WritePolicy::WriteBack);
        c.access(0x00, false);
        c.access(0x00, false);
        c.access(0x00, false);
        assert_eq!(c.stats(), (2, 1));
    }
}
