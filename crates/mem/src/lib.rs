//! Memory system for the RTOSUnit simulator.
//!
//! The simulated platforms follow the paper's setup (§6.1): tightly coupled
//! SRAM for the microcontroller-class core, and cached memory for the
//! larger cores. This crate provides:
//!
//! * [`Mem`] — a flat word-organised RAM with byte/half/word access,
//! * [`Cache`] — a configurable set-associative cache model supporting the
//!   write-through (CVA6) and write-back (NaxRiscv) policies of §5,
//! * [`Arbiter`] — the per-cycle data-port arbitration of §4.2: the
//!   processor has priority and the RTOSUnit uses idle cycles.
//!
//! Timing is expressed in cycles and consumed by the core models in
//! `rvsim-cores`; this crate itself is purely structural.

pub mod arbiter;
pub mod cache;
pub mod ram;

pub use arbiter::{Arbiter, BusArbiter, BusMasterStats, PortClient};
pub use cache::{Cache, CacheConfig, CacheOutcome, WritePolicy};
pub use ram::{AccessSize, Mem};
