//! Per-cycle data-port arbitration (paper §4.2, optimisation (2)).
//!
//! The RTOSUnit shares a single memory port with the processor. The
//! processor always has priority; the unit only makes progress in
//! dead/idle cycles. The [`Arbiter`] keeps the bookkeeping honest and
//! gathers occupancy statistics used by the ablation benches.

use rvsim_snapshot::{self as snap, Json, SnapError};

/// Who may use the shared data port in a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortClient {
    /// The processor core (always wins arbitration).
    Core,
    /// The RTOSUnit FSMs (store/restore/preload).
    Unit,
}

/// Single-port arbiter with fixed core-priority.
///
/// Usage per simulated cycle:
/// 1. the core model calls [`Arbiter::core_request`] if it needs the port,
/// 2. the unit calls [`Arbiter::unit_try_acquire`] — granted only when the
///    core did not claim the cycle,
/// 3. the system calls [`Arbiter::end_cycle`].
///
/// ```
/// use rvsim_mem::{Arbiter, PortClient};
/// let mut arb = Arbiter::new();
/// arb.core_request();
/// assert!(!arb.unit_try_acquire());
/// arb.end_cycle();
/// assert!(arb.unit_try_acquire());
/// assert_eq!(arb.grant(), Some(PortClient::Unit));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Arbiter {
    grant: Option<PortClient>,
    cycles: u64,
    core_cycles: u64,
    unit_cycles: u64,
}

impl Arbiter {
    /// Creates an idle arbiter.
    pub fn new() -> Arbiter {
        Arbiter::default()
    }

    /// Claims the current cycle for the core.
    ///
    /// # Panics
    ///
    /// Panics if the unit already holds the grant this cycle — the system
    /// must always offer the cycle to the core first.
    pub fn core_request(&mut self) {
        assert_ne!(
            self.grant,
            Some(PortClient::Unit),
            "core requested the port after it was granted to the unit"
        );
        self.grant = Some(PortClient::Core);
    }

    /// Attempts to claim the current cycle for the unit; succeeds only when
    /// the core left the cycle idle.
    pub fn unit_try_acquire(&mut self) -> bool {
        if self.grant.is_none() {
            self.grant = Some(PortClient::Unit);
            true
        } else {
            self.grant == Some(PortClient::Unit)
        }
    }

    /// Current grant holder, if any.
    pub fn grant(&self) -> Option<PortClient> {
        self.grant
    }

    /// Finishes the cycle and updates occupancy statistics.
    pub fn end_cycle(&mut self) {
        self.cycles += 1;
        match self.grant {
            Some(PortClient::Core) => self.core_cycles += 1,
            Some(PortClient::Unit) => self.unit_cycles += 1,
            None => {}
        }
        self.grant = None;
    }

    /// Accounts for `n` consecutive cycles in which neither client touched
    /// the port — the bulk equivalent of `n` grant-free [`end_cycle`]
    /// calls, used by batched execution to skip quiescent stretches.
    ///
    /// # Panics
    ///
    /// Panics if a grant is open: the current cycle must be closed with
    /// [`end_cycle`] before idle cycles can be skipped.
    ///
    /// [`end_cycle`]: Self::end_cycle
    pub fn skip_idle_cycles(&mut self, n: u64) {
        assert_eq!(self.grant, None, "skip_idle_cycles with an open grant");
        self.cycles += n;
    }

    /// `(total, core, unit)` cycle counts since construction.
    pub fn occupancy(&self) -> (u64, u64, u64) {
        (self.cycles, self.core_cycles, self.unit_cycles)
    }

    /// Fraction of cycles in which the port was idle (neither client).
    pub fn idle_fraction(&self) -> f64 {
        if self.cycles == 0 {
            return 1.0;
        }
        1.0 - (self.core_cycles + self.unit_cycles) as f64 / self.cycles as f64
    }

    /// Serializes occupancy counters and the (normally `None` between
    /// cycles) open grant for a machine-state snapshot.
    pub fn to_snap(&self) -> Json {
        Json::object()
            .with(
                "grant",
                match self.grant {
                    None => "none",
                    Some(PortClient::Core) => "core",
                    Some(PortClient::Unit) => "unit",
                },
            )
            .with("cycles", self.cycles)
            .with("core_cycles", self.core_cycles)
            .with("unit_cycles", self.unit_cycles)
    }

    /// Rebuilds an arbiter from [`to_snap`](Self::to_snap) output.
    ///
    /// # Errors
    ///
    /// Fails on missing fields or an unknown grant holder.
    pub fn from_snap(value: &Json) -> Result<Arbiter, SnapError> {
        let grant = match snap::get_str(value, "grant")? {
            "none" => None,
            "core" => Some(PortClient::Core),
            "unit" => Some(PortClient::Unit),
            other => return Err(SnapError::new(format!("arbiter: unknown grant `{other}`"))),
        };
        Ok(Arbiter {
            grant,
            cycles: snap::get_u64(value, "cycles")?,
            core_cycles: snap::get_u64(value, "core_cycles")?,
            unit_cycles: snap::get_u64(value, "unit_cycles")?,
        })
    }
}

/// Per-master statistics of a [`BusArbiter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusMasterStats {
    /// Transactions granted to this master.
    pub grants: u64,
    /// Total cycles this master spent waiting for the bus.
    pub wait_cycles: u64,
    /// Longest single wait, in cycles.
    pub max_wait: u64,
}

/// Multi-master shared-bus arbiter for the SMP composition: N harts'
/// memory ports funnel into one backing store.
///
/// Timing-only model. Each hart calls [`acquire`](Self::acquire) at the
/// simulated time its access issues; the arbiter serves transactions in
/// **arrival order** (FIFO), with the bus parked on the last owner so a
/// lone master never waits. Because every master has at most one
/// transaction outstanding (harts stall on their own accesses), arrival
/// order gives a hard fairness bound: a request waits behind at most one
/// in-flight transaction per *other* master, i.e. no master ever waits
/// more than `(N - 1) × max_beats` cycles.
///
/// ```
/// use rvsim_mem::BusArbiter;
/// let mut bus = BusArbiter::new(2);
/// assert_eq!(bus.acquire(0, 100, 4), 0); // idle bus: immediate grant
/// assert_eq!(bus.acquire(1, 101, 4), 3); // busy until 104
/// assert_eq!(bus.acquire(0, 120, 1), 0); // long idle: no wait
/// ```
#[derive(Debug, Clone)]
pub struct BusArbiter {
    free_at: u64,
    owner: Option<usize>,
    stats: Vec<BusMasterStats>,
}

impl BusArbiter {
    /// Creates an idle bus shared by `masters` harts.
    pub fn new(masters: usize) -> BusArbiter {
        BusArbiter {
            free_at: 0,
            owner: None,
            stats: vec![BusMasterStats::default(); masters],
        }
    }

    /// Number of masters sharing the bus.
    pub fn masters(&self) -> usize {
        self.stats.len()
    }

    /// Requests a `beats`-cycle transaction for `master` at time `now`,
    /// returning the wait (in cycles) before the grant. `now` values must
    /// be non-decreasing across calls — the simulation issues requests in
    /// arrival order.
    ///
    /// The bus is *parked*: a master that already owns the bus re-acquires
    /// it without waiting, so a single master always sees zero wait.
    pub fn acquire(&mut self, master: usize, now: u64, beats: u32) -> u64 {
        let wait = if self.owner == Some(master) {
            0
        } else {
            self.free_at.saturating_sub(now)
        };
        let start = now + wait;
        self.free_at = self.free_at.max(start) + u64::from(beats);
        self.owner = Some(master);
        let s = &mut self.stats[master];
        s.grants += 1;
        s.wait_cycles += wait;
        s.max_wait = s.max_wait.max(wait);
        wait
    }

    /// Statistics for one master.
    pub fn master_stats(&self, master: usize) -> BusMasterStats {
        self.stats[master]
    }

    /// Statistics for all masters, in hart order.
    pub fn all_stats(&self) -> &[BusMasterStats] {
        &self.stats
    }

    /// Serializes the bus-timing state and per-master statistics for a
    /// machine-state snapshot.
    pub fn to_snap(&self) -> Json {
        let mut stats = Vec::with_capacity(self.stats.len() * 3);
        for s in &self.stats {
            stats.push(Json::UInt(s.grants));
            stats.push(Json::UInt(s.wait_cycles));
            stats.push(Json::UInt(s.max_wait));
        }
        Json::object()
            .with("free_at", self.free_at)
            .with(
                "owner",
                match self.owner {
                    // Owner is a master index; -1 marks "unparked".
                    None => Json::Int(-1),
                    Some(m) => Json::UInt(m as u64),
                },
            )
            .with("masters", self.stats.len())
            .with("stats", Json::Array(stats))
    }

    /// Rebuilds a bus arbiter from [`to_snap`](Self::to_snap) output.
    ///
    /// # Errors
    ///
    /// Fails on missing fields or a stats-array length mismatch.
    pub fn from_snap(value: &Json) -> Result<BusArbiter, SnapError> {
        let masters = snap::get_usize(value, "masters")?;
        let owner = match snap::field(value, "owner")? {
            Json::Int(-1) => None,
            j => Some(
                j.as_u64()
                    .and_then(|m| usize::try_from(m).ok())
                    .filter(|&m| m < masters)
                    .ok_or_else(|| SnapError::new("bus: owner out of range"))?,
            ),
        };
        let flat = snap::get_array(value, "stats")?;
        if flat.len() != masters * 3 {
            return Err(SnapError::new(format!(
                "bus: {} stat fields, expected {}",
                flat.len(),
                masters * 3
            )));
        }
        let mut stats = Vec::with_capacity(masters);
        for chunk in flat.chunks_exact(3) {
            let read = |j: &Json| {
                j.as_u64()
                    .ok_or_else(|| SnapError::new("bus stats: expected integer"))
            };
            stats.push(BusMasterStats {
                grants: read(&chunk[0])?,
                wait_cycles: read(&chunk[1])?,
                max_wait: read(&chunk[2])?,
            });
        }
        Ok(BusArbiter {
            free_at: snap::get_u64(value, "free_at")?,
            owner,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_has_priority() {
        let mut arb = Arbiter::new();
        arb.core_request();
        assert!(!arb.unit_try_acquire());
        assert_eq!(arb.grant(), Some(PortClient::Core));
        arb.end_cycle();
        assert_eq!(arb.grant(), None);
    }

    #[test]
    fn unit_steals_idle_cycles() {
        let mut arb = Arbiter::new();
        assert!(arb.unit_try_acquire());
        // Idempotent within the cycle.
        assert!(arb.unit_try_acquire());
        arb.end_cycle();
        assert_eq!(arb.occupancy(), (1, 0, 1));
    }

    #[test]
    #[should_panic(expected = "after it was granted")]
    fn core_after_unit_is_a_bug() {
        let mut arb = Arbiter::new();
        arb.unit_try_acquire();
        arb.core_request();
    }

    #[test]
    fn skipped_idle_cycles_count_toward_occupancy() {
        let mut arb = Arbiter::new();
        arb.core_request();
        arb.end_cycle();
        arb.skip_idle_cycles(3);
        assert_eq!(arb.occupancy(), (4, 1, 0));
        assert!((arb.idle_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn idle_fraction_counts_unused_cycles() {
        let mut arb = Arbiter::new();
        for i in 0..10 {
            if i % 2 == 0 {
                arb.core_request();
            }
            arb.end_cycle();
        }
        assert!((arb.idle_fraction() - 0.5).abs() < 1e-9);
    }

    /// Drives `n` masters that each re-issue a `beats`-cycle transaction
    /// the moment their previous one completes (≤ 1 outstanding each,
    /// like a stalling hart), for `horizon` cycles.
    fn pounding_masters(n: usize, beats: u32, horizon: u64) -> BusArbiter {
        let mut bus = BusArbiter::new(n);
        let mut ready = vec![0u64; n];
        for t in 0..horizon {
            for (m, r) in ready.iter_mut().enumerate() {
                if *r <= t {
                    let wait = bus.acquire(m, t, beats);
                    *r = t + wait + u64::from(beats);
                }
            }
        }
        bus
    }

    #[test]
    fn lone_master_never_waits() {
        let mut bus = BusArbiter::new(1);
        // Back-to-back, gapped, and bursty issue patterns.
        for (now, beats) in [(0, 4), (4, 4), (5, 1), (100, 8), (101, 1)] {
            assert_eq!(bus.acquire(0, now, beats), 0, "at cycle {now}");
        }
        let s = bus.master_stats(0);
        assert_eq!((s.grants, s.wait_cycles, s.max_wait), (5, 0, 0));
    }

    #[test]
    fn two_contending_masters_stay_within_the_round_robin_bound() {
        let beats = 4u32;
        let bus = pounding_masters(2, beats, 10_000);
        for m in 0..2 {
            let s = bus.master_stats(m);
            assert!(s.grants > 1_000, "master {m}: only {} grants", s.grants);
            assert!(
                s.max_wait <= u64::from(beats),
                "master {m} waited {} > (N-1)×beats = {beats}",
                s.max_wait
            );
        }
        // Saturated symmetric masters share the bandwidth evenly.
        let g0 = bus.master_stats(0).grants as i64;
        let g1 = bus.master_stats(1).grants as i64;
        assert!((g0 - g1).abs() <= 1, "grants diverged: {g0} vs {g1}");
    }

    #[test]
    fn four_contending_masters_stay_within_the_round_robin_bound() {
        let beats = 4u32;
        let bus = pounding_masters(4, beats, 10_000);
        let bound = u64::from(beats) * 3;
        let grants: Vec<u64> = (0..4).map(|m| bus.master_stats(m).grants).collect();
        for m in 0..4 {
            let s = bus.master_stats(m);
            assert!(s.grants > 500, "master {m}: only {} grants", s.grants);
            assert!(
                s.max_wait <= bound,
                "master {m} waited {} > (N-1)×beats = {bound}",
                s.max_wait
            );
        }
        let (min, max) = (grants.iter().min().unwrap(), grants.iter().max().unwrap());
        assert!(max - min <= 1, "grants diverged: {grants:?}");
    }

    #[test]
    fn sporadic_master_is_not_starved_by_a_hammering_one() {
        let mut bus = BusArbiter::new(2);
        let mut hammer_ready = 0u64;
        for t in 0..1_000u64 {
            if hammer_ready <= t {
                let wait = bus.acquire(0, t, 1);
                hammer_ready = t + wait + 1;
            }
            if t % 10 == 5 {
                bus.acquire(1, t, 1);
            }
        }
        let s = bus.master_stats(1);
        assert_eq!(s.grants, 100);
        assert!(s.max_wait <= 1, "sporadic master starved: {}", s.max_wait);
    }
}
