//! Per-cycle data-port arbitration (paper §4.2, optimisation (2)).
//!
//! The RTOSUnit shares a single memory port with the processor. The
//! processor always has priority; the unit only makes progress in
//! dead/idle cycles. The [`Arbiter`] keeps the bookkeeping honest and
//! gathers occupancy statistics used by the ablation benches.

/// Who may use the shared data port in a given cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortClient {
    /// The processor core (always wins arbitration).
    Core,
    /// The RTOSUnit FSMs (store/restore/preload).
    Unit,
}

/// Single-port arbiter with fixed core-priority.
///
/// Usage per simulated cycle:
/// 1. the core model calls [`Arbiter::core_request`] if it needs the port,
/// 2. the unit calls [`Arbiter::unit_try_acquire`] — granted only when the
///    core did not claim the cycle,
/// 3. the system calls [`Arbiter::end_cycle`].
///
/// ```
/// use rvsim_mem::{Arbiter, PortClient};
/// let mut arb = Arbiter::new();
/// arb.core_request();
/// assert!(!arb.unit_try_acquire());
/// arb.end_cycle();
/// assert!(arb.unit_try_acquire());
/// assert_eq!(arb.grant(), Some(PortClient::Unit));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Arbiter {
    grant: Option<PortClient>,
    cycles: u64,
    core_cycles: u64,
    unit_cycles: u64,
}

impl Arbiter {
    /// Creates an idle arbiter.
    pub fn new() -> Arbiter {
        Arbiter::default()
    }

    /// Claims the current cycle for the core.
    ///
    /// # Panics
    ///
    /// Panics if the unit already holds the grant this cycle — the system
    /// must always offer the cycle to the core first.
    pub fn core_request(&mut self) {
        assert_ne!(
            self.grant,
            Some(PortClient::Unit),
            "core requested the port after it was granted to the unit"
        );
        self.grant = Some(PortClient::Core);
    }

    /// Attempts to claim the current cycle for the unit; succeeds only when
    /// the core left the cycle idle.
    pub fn unit_try_acquire(&mut self) -> bool {
        if self.grant.is_none() {
            self.grant = Some(PortClient::Unit);
            true
        } else {
            self.grant == Some(PortClient::Unit)
        }
    }

    /// Current grant holder, if any.
    pub fn grant(&self) -> Option<PortClient> {
        self.grant
    }

    /// Finishes the cycle and updates occupancy statistics.
    pub fn end_cycle(&mut self) {
        self.cycles += 1;
        match self.grant {
            Some(PortClient::Core) => self.core_cycles += 1,
            Some(PortClient::Unit) => self.unit_cycles += 1,
            None => {}
        }
        self.grant = None;
    }

    /// Accounts for `n` consecutive cycles in which neither client touched
    /// the port — the bulk equivalent of `n` grant-free [`end_cycle`]
    /// calls, used by batched execution to skip quiescent stretches.
    ///
    /// # Panics
    ///
    /// Panics if a grant is open: the current cycle must be closed with
    /// [`end_cycle`] before idle cycles can be skipped.
    ///
    /// [`end_cycle`]: Self::end_cycle
    pub fn skip_idle_cycles(&mut self, n: u64) {
        assert_eq!(self.grant, None, "skip_idle_cycles with an open grant");
        self.cycles += n;
    }

    /// `(total, core, unit)` cycle counts since construction.
    pub fn occupancy(&self) -> (u64, u64, u64) {
        (self.cycles, self.core_cycles, self.unit_cycles)
    }

    /// Fraction of cycles in which the port was idle (neither client).
    pub fn idle_fraction(&self) -> f64 {
        if self.cycles == 0 {
            return 1.0;
        }
        1.0 - (self.core_cycles + self.unit_cycles) as f64 / self.cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_has_priority() {
        let mut arb = Arbiter::new();
        arb.core_request();
        assert!(!arb.unit_try_acquire());
        assert_eq!(arb.grant(), Some(PortClient::Core));
        arb.end_cycle();
        assert_eq!(arb.grant(), None);
    }

    #[test]
    fn unit_steals_idle_cycles() {
        let mut arb = Arbiter::new();
        assert!(arb.unit_try_acquire());
        // Idempotent within the cycle.
        assert!(arb.unit_try_acquire());
        arb.end_cycle();
        assert_eq!(arb.occupancy(), (1, 0, 1));
    }

    #[test]
    #[should_panic(expected = "after it was granted")]
    fn core_after_unit_is_a_bug() {
        let mut arb = Arbiter::new();
        arb.unit_try_acquire();
        arb.core_request();
    }

    #[test]
    fn skipped_idle_cycles_count_toward_occupancy() {
        let mut arb = Arbiter::new();
        arb.core_request();
        arb.end_cycle();
        arb.skip_idle_cycles(3);
        assert_eq!(arb.occupancy(), (4, 1, 0));
        assert!((arb.idle_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn idle_fraction_counts_unused_cycles() {
        let mut arb = Arbiter::new();
        for i in 0..10 {
            if i % 2 == 0 {
                arb.core_request();
            }
            arb.end_cycle();
        }
        assert!((arb.idle_fraction() - 0.5).abs() < 1e-9);
    }
}
