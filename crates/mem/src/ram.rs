//! Flat word-organised RAM.

use rvsim_snapshot::{self as snap, Json, SnapError};
use std::fmt;

/// Width of a single memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessSize {
    /// 8-bit access.
    Byte,
    /// 16-bit access.
    Half,
    /// 32-bit access.
    Word,
}

impl AccessSize {
    /// Number of bytes transferred.
    pub fn bytes(self) -> u32 {
        match self {
            AccessSize::Byte => 1,
            AccessSize::Half => 2,
            AccessSize::Word => 4,
        }
    }
}

/// A contiguous block of RAM starting at `base`.
///
/// Addresses are byte addresses; the backing store is word-organised.
/// Sub-word accesses must be naturally aligned (the RV32 cores in this
/// model do not generate misaligned accesses).
///
/// ```
/// use rvsim_mem::{Mem, AccessSize};
/// let mut m = Mem::new(0x2000_0000, 4096);
/// m.write(0x2000_0010, AccessSize::Word, 0xdead_beef);
/// assert_eq!(m.read(0x2000_0010, AccessSize::Word), 0xdead_beef);
/// assert_eq!(m.read(0x2000_0012, AccessSize::Half), 0xdead);
/// ```
#[derive(Clone)]
pub struct Mem {
    base: u32,
    words: Vec<u32>,
}

impl fmt::Debug for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mem")
            .field("base", &format_args!("{:#010x}", self.base))
            .field("size_bytes", &(self.words.len() * 4))
            .finish()
    }
}

impl Mem {
    /// Creates a zero-initialised RAM of `size_bytes` (rounded up to a
    /// word) at byte address `base`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not word-aligned.
    pub fn new(base: u32, size_bytes: u32) -> Mem {
        assert_eq!(base % 4, 0, "base must be word-aligned");
        Mem {
            base,
            words: vec![0; size_bytes.div_ceil(4) as usize],
        }
    }

    /// First byte address served by this RAM.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// One past the last byte address served by this RAM.
    pub fn end(&self) -> u32 {
        self.base + (self.words.len() as u32) * 4
    }

    /// Whether `addr` falls inside this RAM.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && addr < self.end()
    }

    fn index(&self, addr: u32) -> usize {
        assert!(
            self.contains(addr),
            "address {addr:#010x} outside RAM [{:#010x}, {:#010x})",
            self.base,
            self.end()
        );
        ((addr - self.base) / 4) as usize
    }

    /// Reads raw (zero-extended) bits of the given width.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or misaligned access — in this simulator a
    /// wild guest access is a test failure, not a recoverable condition.
    pub fn read(&self, addr: u32, size: AccessSize) -> u32 {
        let word = self.words[self.index(addr)];
        match size {
            AccessSize::Word => {
                assert_eq!(addr % 4, 0, "misaligned word read at {addr:#010x}");
                word
            }
            AccessSize::Half => {
                assert_eq!(addr % 2, 0, "misaligned half read at {addr:#010x}");
                (word >> ((addr % 4) * 8)) & 0xffff
            }
            AccessSize::Byte => (word >> ((addr % 4) * 8)) & 0xff,
        }
    }

    /// Writes the low bits of `value` at the given width.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or misaligned access.
    pub fn write(&mut self, addr: u32, size: AccessSize, value: u32) {
        let idx = self.index(addr);
        let word = &mut self.words[idx];
        match size {
            AccessSize::Word => {
                assert_eq!(addr % 4, 0, "misaligned word write at {addr:#010x}");
                *word = value;
            }
            AccessSize::Half => {
                assert_eq!(addr % 2, 0, "misaligned half write at {addr:#010x}");
                let shift = (addr % 4) * 8;
                *word = (*word & !(0xffff << shift)) | ((value & 0xffff) << shift);
            }
            AccessSize::Byte => {
                let shift = (addr % 4) * 8;
                *word = (*word & !(0xff << shift)) | ((value & 0xff) << shift);
            }
        }
    }

    /// Convenience word read (word-aligned `addr`).
    pub fn read_word(&self, addr: u32) -> u32 {
        self.read(addr, AccessSize::Word)
    }

    /// Convenience word write (word-aligned `addr`).
    pub fn write_word(&mut self, addr: u32, value: u32) {
        self.write(addr, AccessSize::Word, value);
    }

    /// Copies a slice of words into memory starting at `addr`.
    pub fn load_words(&mut self, addr: u32, words: &[u32]) {
        for (i, w) in words.iter().enumerate() {
            self.write_word(addr + (i as u32) * 4, *w);
        }
    }

    /// Serializes base, size and contents (run-length encoded) for a
    /// machine-state snapshot.
    pub fn to_snap(&self) -> Json {
        Json::object()
            .with("base", self.base)
            .with("len_words", self.words.len())
            .with("words", snap::words_to_json(&self.words))
    }

    /// Rebuilds a RAM from [`to_snap`](Self::to_snap) output.
    ///
    /// # Errors
    ///
    /// Fails on missing fields or a contents/length mismatch.
    pub fn from_snap(value: &Json) -> Result<Mem, SnapError> {
        let base = snap::get_u32(value, "base")?;
        let len = snap::get_usize(value, "len_words")?;
        let words = snap::words_from_json(snap::field(value, "words")?, len)?;
        Ok(Mem { base, words })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_lanes() {
        let mut m = Mem::new(0, 16);
        m.write_word(4, 0x1122_3344);
        assert_eq!(m.read(4, AccessSize::Byte), 0x44);
        assert_eq!(m.read(5, AccessSize::Byte), 0x33);
        assert_eq!(m.read(6, AccessSize::Byte), 0x22);
        assert_eq!(m.read(7, AccessSize::Byte), 0x11);
        m.write(5, AccessSize::Byte, 0xAA);
        assert_eq!(m.read_word(4), 0x1122_AA44);
    }

    #[test]
    fn half_lanes() {
        let mut m = Mem::new(0, 16);
        m.write(8, AccessSize::Half, 0xBEEF);
        m.write(10, AccessSize::Half, 0xDEAD);
        assert_eq!(m.read_word(8), 0xDEAD_BEEF);
    }

    #[test]
    fn load_words_bulk() {
        let mut m = Mem::new(0x100, 64);
        m.load_words(0x104, &[1, 2, 3]);
        assert_eq!(m.read_word(0x104), 1);
        assert_eq!(m.read_word(0x10c), 3);
    }

    #[test]
    #[should_panic(expected = "outside RAM")]
    fn out_of_range_panics() {
        let m = Mem::new(0x100, 16);
        m.read_word(0x200);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_word_panics() {
        let m = Mem::new(0, 16);
        m.read(2, AccessSize::Word);
    }
}
