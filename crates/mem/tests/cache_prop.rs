//! Property tests for the cache model against a reference residency
//! simulator, plus arbiter accounting invariants.

#![cfg(feature = "proptest")]
// Default-off: requires the external `proptest` crate (network). See the
// crate's Cargo.toml for how to enable.

use proptest::prelude::*;
use rvsim_mem::{Arbiter, Cache, CacheConfig, WritePolicy};
use std::collections::HashMap;

/// Reference model: per-set LRU lists of line addresses.
#[derive(Debug)]
struct RefCache {
    cfg: CacheConfig,
    sets: HashMap<u32, Vec<(u32, bool)>>, // set -> MRU-last [(tag, dirty)]
}

impl RefCache {
    fn new(cfg: CacheConfig) -> RefCache {
        RefCache {
            cfg,
            sets: HashMap::new(),
        }
    }

    fn set_and_tag(&self, addr: u32) -> (u32, u32) {
        let line = addr / (self.cfg.line_words * 4);
        (line % self.cfg.sets, line / self.cfg.sets)
    }

    /// Returns (hit, writeback_happened).
    fn access(&mut self, addr: u32, write: bool) -> (bool, bool) {
        let (set, tag) = self.set_and_tag(addr);
        let ways = self.sets.entry(set).or_default();
        if let Some(pos) = ways.iter().position(|&(t, _)| t == tag) {
            let (t, mut d) = ways.remove(pos);
            if write && self.cfg.policy == WritePolicy::WriteBack {
                d = true;
            }
            ways.push((t, d));
            return (true, false);
        }
        if self.cfg.policy == WritePolicy::WriteThrough && write {
            return (false, false); // no allocate
        }
        let mut wb = false;
        if ways.len() == self.cfg.ways as usize {
            let (_, dirty) = ways.remove(0); // LRU first
            wb = dirty;
        }
        ways.push((tag, write && self.cfg.policy == WritePolicy::WriteBack));
        (false, wb)
    }

    fn resident(&self, addr: u32) -> bool {
        let (set, tag) = self.set_and_tag(addr);
        self.sets
            .get(&set)
            .is_some_and(|ways| ways.iter().any(|&(t, _)| t == tag))
    }
}

fn arb_cfg() -> impl Strategy<Value = CacheConfig> {
    (
        prop_oneof![Just(2u32), Just(4), Just(8)],
        1u32..4,
        prop_oneof![Just(4u32), Just(8), Just(16)],
        prop_oneof![
            Just(WritePolicy::WriteThrough),
            Just(WritePolicy::WriteBack)
        ],
    )
        .prop_map(|(sets, ways, line_words, policy)| CacheConfig {
            sets,
            ways,
            line_words,
            policy,
            hit_latency: 1,
            miss_penalty: 10,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cache_matches_reference_residency(
        cfg in arb_cfg(),
        accesses in proptest::collection::vec((0u32..4096, any::<bool>()), 1..200),
    ) {
        let mut cache = Cache::new(cfg);
        let mut reference = RefCache::new(cfg);
        for (addr, write) in accesses {
            let addr = addr & !3;
            let out = cache.access(addr, write);
            let (hit, wb) = reference.access(addr, write);
            prop_assert_eq!(out.hit, hit, "hit/miss diverged at {:#x}", addr);
            prop_assert_eq!(out.writeback, wb, "writeback diverged at {:#x}", addr);
            prop_assert_eq!(cache.probe(addr), reference.resident(addr));
        }
    }

    #[test]
    fn invalidate_always_clears_residency(
        cfg in arb_cfg(),
        warm in proptest::collection::vec(0u32..4096, 1..50),
        victim in 0u32..4096,
    ) {
        let mut cache = Cache::new(cfg);
        for a in warm {
            cache.access(a & !3, false);
        }
        cache.invalidate_line(victim & !3);
        prop_assert!(!cache.probe(victim & !3));
    }

    #[test]
    fn latency_is_consistent_with_hit_flag(
        cfg in arb_cfg(),
        accesses in proptest::collection::vec((0u32..4096, any::<bool>()), 1..100),
    ) {
        let mut cache = Cache::new(cfg);
        for (addr, write) in accesses {
            let out = cache.access(addr & !3, write);
            if out.hit {
                prop_assert_eq!(out.latency, cfg.hit_latency);
            } else if !(write && cfg.policy == WritePolicy::WriteThrough) {
                prop_assert!(out.latency >= cfg.hit_latency + cfg.miss_penalty);
            }
            if out.writeback {
                prop_assert!(out.bus_cycles >= cfg.line_words);
            }
        }
    }

    #[test]
    fn arbiter_occupancy_adds_up(pattern in proptest::collection::vec(0u8..3, 1..300)) {
        let mut arb = Arbiter::new();
        let mut core = 0u64;
        let mut unit = 0u64;
        for p in &pattern {
            match p {
                0 => {}
                1 => {
                    arb.core_request();
                    core += 1;
                }
                _ => {
                    if arb.unit_try_acquire() {
                        unit += 1;
                    }
                }
            }
            arb.end_cycle();
        }
        let (total, c, u) = arb.occupancy();
        prop_assert_eq!(total, pattern.len() as u64);
        prop_assert_eq!(c, core);
        prop_assert_eq!(u, unit);
        prop_assert!(arb.idle_fraction() >= 0.0 && arb.idle_fraction() <= 1.0);
    }
}
