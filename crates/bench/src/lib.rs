//! Shared helpers for the figure-regeneration binaries.
//!
//! Each binary regenerates one table/figure of the paper; see the
//! per-experiment index in `DESIGN.md` and the recorded results in
//! `EXPERIMENTS.md`.

pub mod chrome_trace;
pub mod harness;

use rtosunit::Preset;

/// Writes `content` to `results/<name>` (best effort) and echoes it to
/// stdout, so figure data survives the run.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let _ = std::fs::write(dir.join(name), content);
    }
}

/// The paper's qualitative expectations for a figure, printed alongside
/// measured data so a reader can judge the reproduction at a glance.
pub fn paper_note(lines: &[&str]) -> String {
    let mut s = String::from("\n# Paper expectations (shape targets):\n");
    for l in lines {
        s.push_str(&format!("#   {l}\n"));
    }
    s
}

/// Presets of the latency evaluation in Fig. 9 order.
pub fn latency_presets() -> Vec<Preset> {
    Preset::LATENCY_SET.to_vec()
}

/// Worker-thread count for campaign execution: the host's available
/// parallelism (the artifact is worker-count independent, so this only
/// affects wall-clock time).
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}
