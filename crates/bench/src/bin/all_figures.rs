//! Runs every figure/table regeneration in sequence (Fig. 9–13 plus the
//! §6.2 WCET table). Results are echoed and stored under `results/`.

use std::process::Command;

fn main() {
    let bins = [
        "fig9",
        "wcet_table",
        "fig10_area",
        "fig11_fmax",
        "fig12_scaling",
        "fig13_power",
    ];
    let me = std::env::current_exe().expect("current exe path");
    let dir = me.parent().expect("bin dir");
    for bin in bins {
        println!("==== {bin} ====");
        let status = Command::new(dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
}
