//! Regenerates the §6.2 WCET table (the "x" marks of Fig. 9):
//! worst-case context-switch latency per configuration on CV32E40P.

use rvsim_wcet::wcet_table;

fn main() {
    let mut out = String::new();
    out.push_str("## CV32E40P worst-case context-switch latency (static analysis)\n\n");
    out.push_str(&format!(
        "{:<10} {:>10} {:>12} {:>10} {:>8}\n",
        "config", "sw_cycles", "fsm_stalls", "WCET", "paths"
    ));
    for r in wcet_table() {
        out.push_str(&format!(
            "{:<10} {:>10} {:>12} {:>10} {:>8}\n",
            r.preset.label(),
            r.software_cycles,
            r.fsm_stall_cycles,
            r.total_cycles,
            r.paths
        ));
    }
    out.push_str(&rtosunit_bench::paper_note(&[
        "paper (real FreeRTOS, so software paths are heavier than freertos-lite):",
        "vanilla 1649, SL 1442, T 202, SLT 70 cycles",
        "shape: SLT << T << SL < vanilla; SLT bounded by the 62-cycle FSM drain",
    ]));
    rtosunit_bench::emit("wcet_table.txt", &out);
}
