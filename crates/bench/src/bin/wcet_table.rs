//! Regenerates the §6.2 WCET table (the "x" marks of Fig. 9):
//! worst-case context-switch latency per configuration on CV32E40P.
//!
//! Each configuration's static analysis is an analytic campaign run, so
//! `results/wcet_table.json` carries the same rows machine-readably.

use rtosbench::{CampaignSpec, Json, RunSpec, WorkloadSpec};
use rtosunit::Preset;
use rvsim_cores::CoreKind;
use rvsim_wcet::wcet_table;

fn wcet_row(_param: u32, _core: CoreKind, preset: Preset) -> Json {
    let r = wcet_table()
        .into_iter()
        .find(|r| r.preset == preset)
        .expect("analysed preset");
    Json::object()
        .with("software_cycles", r.software_cycles)
        .with("fsm_stall_cycles", r.fsm_stall_cycles)
        .with("total_cycles", r.total_cycles)
        .with("paths", r.paths)
}

fn spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new("wcet_table");
    for r in wcet_table() {
        spec.runs.push(RunSpec::new(
            CoreKind::Cv32e40p,
            r.preset,
            WorkloadSpec::Analytic {
                name: "wcet",
                param: 0,
                eval: wcet_row,
            },
        ));
    }
    spec
}

fn main() {
    let campaign = spec().run(rtosunit_bench::default_workers());
    let mut out = String::new();
    out.push_str("## CV32E40P worst-case context-switch latency (static analysis)\n\n");
    out.push_str(&format!(
        "{:<10} {:>10} {:>12} {:>10} {:>8}\n",
        "config", "sw_cycles", "fsm_stalls", "WCET", "paths"
    ));
    for r in wcet_table() {
        out.push_str(&format!(
            "{:<10} {:>10} {:>12} {:>10} {:>8}\n",
            r.preset.label(),
            r.software_cycles,
            r.fsm_stall_cycles,
            r.total_cycles,
            r.paths
        ));
    }
    out.push_str(&rtosunit_bench::paper_note(&[
        "paper (real FreeRTOS, so software paths are heavier than freertos-lite):",
        "vanilla 1649, SL 1442, T 202, SLT 70 cycles",
        "shape: SLT << T << SL < vanilla; SLT bounded by the 62-cycle FSM drain",
    ]));
    rtosunit_bench::emit("wcet_table.txt", &out);

    match campaign.write_json("results") {
        Ok(path) => println!("# campaign artifact: {}", path.display()),
        Err(e) => eprintln!("# campaign artifact not written: {e}"),
    }
}
