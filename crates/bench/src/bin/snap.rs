//! `snap` — system snapshot, fork, and resume from the command line.
//!
//! Verbs:
//!
//! * `snap save <core> <preset> <workload> <cycle> <out.json>` — boot the
//!   suite workload on `(core, preset)`, run to the given cycle, and
//!   write the sealed `rtosunit-snapshot-v1` document.
//! * `snap info <in.json>` — verify the envelope (schema + FNV-1a digest)
//!   and print the snapshot's self-description.
//! * `snap resume <in.json> <cycles>` — restore and run a further budget;
//!   prints the final cycle, retirement count, recorded episodes, and the
//!   state digest (deterministic: two resumes print the same line).
//! * `snap fork <in.json> <k> <cycles>` — restore `k` copies, each under
//!   a different seed-derived external-interrupt plan, and run them; the
//!   per-fork digests show the divergence, and fork 0 is re-executed to
//!   prove each plan is itself deterministic.
//! * `snap roundtrip <core> <preset> <workload> <cycle> <cycles>` — the
//!   CI smoke: run cold to `cycle + cycles`, and separately
//!   save-at-`cycle` → restore → run `cycles`; byte-diffs the two final
//!   sealed snapshots and exits non-zero on any mismatch.
//!
//! Cores are named `cv32e40p` / `cva6` / `naxriscv`; presets use their
//! lowercase tags (`vanilla`, `slt`, ...); workloads are the suite names
//! (`pingpong_semaphore`, ...).

use rtosbench::{workloads, RunSpec, WorkloadSpec};
use rtosunit::{Preset, System};
use rvsim_cores::CoreKind;
use rvsim_snapshot as snap;
use std::process::ExitCode;

fn parse_core(s: &str) -> Result<CoreKind, String> {
    match s {
        "cv32e40p" => Ok(CoreKind::Cv32e40p),
        "cva6" => Ok(CoreKind::Cva6),
        "naxriscv" => Ok(CoreKind::NaxRiscv),
        _ => Err(format!("unknown core `{s}` (cv32e40p|cva6|naxriscv)")),
    }
}

fn parse_preset(s: &str) -> Result<Preset, String> {
    Preset::from_tag(s).ok_or_else(|| format!("unknown preset tag `{s}`"))
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("bad {what} `{s}`"))
}

/// Boots `(core, preset, workload)` with no external interrupts and runs
/// to `cycle`, returning the sealed snapshot document.
fn boot(core: CoreKind, preset: Preset, workload: &str, cycle: u64) -> Result<snap::Json, String> {
    let w = workloads::by_name(workload)
        .ok_or_else(|| format!("unknown suite workload `{workload}`"))?;
    RunSpec::new(core, preset, WorkloadSpec::Suite(w)).boot_snapshot(cycle)
}

fn load(path: &str) -> Result<snap::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    snap::open(&text).map_err(|e| format!("{path}: {e}"))
}

/// One line summarising a system's externally observable progress plus
/// the FNV-1a digest of its full state payload.
fn summary(sys: &System) -> String {
    let state = sys.state_snap().render();
    format!(
        "cycle {:>9}  retired {:>9}  episodes {:>4}  halted {:<5}  state {:#018x}",
        sys.platform.cycle(),
        sys.core.retired(),
        sys.records().len(),
        sys.halted(),
        snap::fnv1a(state.as_bytes())
    )
}

/// A seed-derived divergent interrupt plan: `n` external interrupts at
/// xorshift-spaced cycles after `from`.
fn divergent_irqs(sys: &mut System, seed: u64, from: u64, span: u64, n: usize) {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for _ in 0..n {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        sys.schedule_external_irq(from + 1 + x % span.max(1));
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args {
        [v, core, preset, workload, cycle, out] if v == "save" => {
            let doc = boot(
                parse_core(core)?,
                parse_preset(preset)?,
                workload,
                parse_u64(cycle, "cycle")?,
            )?;
            std::fs::write(out, doc.render()).map_err(|e| format!("{out}: {e}"))?;
            println!("saved {workload} on {core}/{preset} at cycle {cycle} -> {out}");
            Ok(())
        }
        [v, path] if v == "info" => {
            let state = load(path)?;
            let sys = System::from_state_snap(&state).map_err(|e| e.to_string())?;
            println!(
                "schema {}  core {}  preset {}",
                snap::SCHEMA,
                sys.kind().name(),
                sys.preset().tag()
            );
            println!("{}", summary(&sys));
            Ok(())
        }
        [v, path, cycles] if v == "resume" => {
            let state = load(path)?;
            let mut sys = System::from_state_snap(&state).map_err(|e| e.to_string())?;
            sys.run(parse_u64(cycles, "cycle budget")?);
            println!("{}", summary(&sys));
            Ok(())
        }
        [v, path, k, cycles] if v == "fork" => {
            let state = load(path)?;
            let k = parse_u64(k, "fork count")? as usize;
            let budget = parse_u64(cycles, "cycle budget")?;
            let fork = |seed: u64| -> Result<System, String> {
                let mut sys = System::from_state_snap(&state).map_err(|e| e.to_string())?;
                let from = sys.platform.cycle();
                divergent_irqs(&mut sys, seed, from, budget / 2, 8);
                sys.run(budget);
                Ok(sys)
            };
            let mut first = String::new();
            for seed in 0..k as u64 {
                let line = summary(&fork(seed)?);
                println!("fork {seed:>2}  {line}");
                if seed == 0 {
                    first = line;
                }
            }
            // Each plan must itself be deterministic: re-running fork 0
            // from the same snapshot reproduces it bit-for-bit.
            if k > 0 && summary(&fork(0)?) != first {
                return Err("fork 0 re-execution diverged — snapshot restore is broken".into());
            }
            println!("fork 0 re-executed identically ({k} forks deterministic)");
            Ok(())
        }
        [v, core, preset, workload, cycle, cycles] if v == "roundtrip" => {
            let core = parse_core(core)?;
            let preset = parse_preset(preset)?;
            let cycle = parse_u64(cycle, "cycle")?;
            let budget = parse_u64(cycles, "cycle budget")?;
            let cold_doc = boot(core, preset, workload, cycle + budget)?;
            let warm_doc = boot(core, preset, workload, cycle)?;
            let state = snap::open(&warm_doc.render()).map_err(|e| e.to_string())?;
            let mut warm = System::from_state_snap(&state).map_err(|e| e.to_string())?;
            warm.run(budget);
            let resumed = warm.snapshot().render();
            if cold_doc.render() != resumed {
                return Err(format!(
                    "restored run diverged from the uninterrupted one at cycle {}",
                    cycle + budget
                ));
            }
            println!(
                "roundtrip ok: {workload} on {}/{} — save at {cycle}, resume {budget} \
                 cycles, snapshots byte-identical",
                core.name(),
                preset.tag()
            );
            Ok(())
        }
        _ => Err(
            "usage: snap save <core> <preset> <workload> <cycle> <out.json>\n\
                  \x20      snap info <in.json>\n\
                  \x20      snap resume <in.json> <cycles>\n\
                  \x20      snap fork <in.json> <k> <cycles>\n\
                  \x20      snap roundtrip <core> <preset> <workload> <cycle> <cycles>"
                .into(),
        ),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("snap: {e}");
            ExitCode::FAILURE
        }
    }
}
