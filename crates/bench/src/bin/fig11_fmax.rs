//! Regenerates Figure 11: achievable maximum frequency per core ×
//! configuration.

use asic_model::fmax_report;
use rtosunit::Preset;
use rvsim_cores::CoreKind;

fn main() {
    let mut out = String::new();
    for core in CoreKind::ALL {
        out.push_str(&format!("## {core}: f_max (MHz)\n\n"));
        out.push_str(&format!(
            "{:<10} {:>10} {:>8}\n",
            "config", "fmax_MHz", "drop"
        ));
        for preset in Preset::ASIC_SET {
            let r = fmax_report(core, preset);
            out.push_str(&format!(
                "{:<10} {:>10.0} {:>7.1}%\n",
                preset.label(),
                r.fmax_mhz,
                r.drop * 100.0
            ));
        }
        out.push('\n');
    }
    out.push_str(&rtosunit_bench::paper_note(&[
        "CV32E40P: ~-15% across configurations except CV32RT; still well above embedded targets",
        "CVA6: ~-8% across configurations",
        "NaxRiscv: stable, except SPLIT -4%",
    ]));
    rtosunit_bench::emit("fig11_fmax.txt", &out);
}
