//! Differential fuzzing front-end (DESIGN.md §9).
//!
//! Drives the `rvsim-check` harness from the command line:
//!
//! * `checkfuzz fuzz [--secs N] [--start-seed S] [--blocks] [--snap]` —
//!   time-boxed fuzz loop alternating golden-model lockstep episodes and
//!   scheduler-oracle scenarios across all cores and ISR variants. With
//!   `--blocks` the lockstep episodes drive the engine through the block
//!   translation cache (batched `run_until`) instead of per-cycle
//!   stepping; with `--snap` each episode round-trips the engine through
//!   the snapshot codec at pseudo-random retire points mid-run, so any
//!   state the codec fails to carry diverges from the golden model.
//!   Both modes are recorded in the replay artifact, so shrink and
//!   replay reproduce under the same engine path. Failures are shrunk
//!   to minimal counterexamples and written to `results/repro/*.json`;
//!   the exit code is non-zero if anything failed.
//! * `checkfuzz replay <path>...` — re-runs replay artifacts
//!   byte-for-byte; exit code is non-zero if any still fails.
//! * `checkfuzz selftest` — injects a known executor bug (flipped `sltu`
//!   carry in the golden model), verifies the lockstep harness catches
//!   it, shrinks it, round-trips the artifact through disk and replays
//!   it. Guards the guard.
//! * `checkfuzz travel [--cycles N] [--interval N]` — time-travel
//!   self-check: runs generated kernel scenarios forward under periodic
//!   auto-checkpoints, rewinds to intermediate cycles (restore nearest
//!   checkpoint + deterministic re-execution) and byte-compares every
//!   rewound state snapshot against a cold run stopped at that cycle.
//!
//! The nightly CI job runs `fuzz` with a fresh start seed and uploads
//! `results/repro/` so failures arrive as self-contained repro files.

use rtosbench::json::Json;
use rtosunit::Preset;
use rvsim_check::scenario::ORACLE_PRESETS;
use rvsim_check::{artifact, episode_for_seed, run_episode, run_scenario, scenario_for_seed};
use rvsim_check::{shrink_episode, shrink_scenario, travel_selfcheck, Fault};
use rvsim_cores::CoreKind;
use rvsim_isa::progen::GenConfig;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const REPRO_DIR: &str = "results/repro";

fn usage() -> ! {
    eprintln!(
        "usage: checkfuzz fuzz [--secs N] [--start-seed S] [--blocks] [--snap]\n       \
         checkfuzz replay <path>...\n       \
         checkfuzz selftest\n       \
         checkfuzz travel [--cycles N] [--interval N]"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("fuzz") => cmd_fuzz(&args[1..]),
        Some("replay") if args.len() > 1 => cmd_replay(&args[1..]),
        Some("selftest") => cmd_selftest(),
        Some("travel") => cmd_travel(&args[1..]),
        _ => usage(),
    };
    std::process::exit(code);
}

fn parse_flag(args: &[String], flag: &str) -> Option<u64> {
    let i = args.iter().position(|a| a == flag)?;
    let v = args.get(i + 1).unwrap_or_else(|| usage());
    Some(v.parse().unwrap_or_else(|_| usage()))
}

fn write_artifact(name: &str, doc: &Json) -> PathBuf {
    let dir = Path::new(REPRO_DIR);
    std::fs::create_dir_all(dir).expect("create results/repro");
    let path = dir.join(name);
    std::fs::write(&path, doc.render()).expect("write artifact");
    path
}

/// One fuzz iteration: even seeds run a lockstep episode (core rotating),
/// odd seeds run an oracle scenario (core x preset rotating). Returns the
/// artifact name written on failure.
fn fuzz_one(seed: u64, blocks: bool, snap: bool) -> Option<String> {
    let core = CoreKind::ALL[(seed / 2 % 3) as usize];
    if seed.is_multiple_of(2) {
        let cfg = GenConfig {
            len: 256,
            ..GenConfig::default()
        };
        let mut ep = episode_for_seed(core, seed, cfg);
        ep.blocks = blocks;
        ep.snap = snap;
        let mismatch = run_episode(&ep).err()?;
        let mode = match (blocks, snap) {
            (true, true) => " blocks+snap",
            (true, false) => " blocks",
            (false, true) => " snap",
            (false, false) => "",
        };
        eprintln!("lockstep{mode} FAIL core={core} seed={seed}: {mismatch}");
        // `EpisodeSpec::blocks`/`snap` ride along through the shrink (the
        // predicate is `run_episode`, which dispatches on them) and into
        // the artifact, so the repro replays under the same engine path.
        let small = shrink_episode(&ep);
        let m = run_episode(&small).expect_err("shrunk episode still fails");
        let name = format!(
            "lockstep{}_{core}_{seed}.json",
            mode.replace([' ', '+'], "_")
        );
        write_artifact(&name, &artifact::lockstep_to_json(&small, seed, &m));
        Some(name)
    } else {
        let preset = ORACLE_PRESETS[(seed / 6 % 6) as usize];
        let spec = scenario_for_seed(core, preset, seed);
        let violation = run_scenario(&spec).err()?;
        eprintln!("oracle FAIL {preset} core={core} seed={seed}: {violation}");
        let small = shrink_scenario(&spec);
        let v = run_scenario(&small).expect_err("shrunk scenario still fails");
        let name = format!(
            "oracle_{}_{core}_{seed}.json",
            artifact::preset_name(preset)
        );
        write_artifact(&name, &artifact::oracle_to_json(&small, seed, &v));
        Some(name)
    }
}

fn cmd_fuzz(args: &[String]) -> i32 {
    let secs = parse_flag(args, "--secs").unwrap_or(60);
    let start = parse_flag(args, "--start-seed").unwrap_or(0);
    let blocks = args.iter().any(|a| a == "--blocks");
    let snap = args.iter().any(|a| a == "--snap");
    let deadline = Instant::now() + Duration::from_secs(secs);
    let mut seed = start;
    let mut failures = Vec::new();
    let mut runs = 0u64;
    while Instant::now() < deadline && failures.len() < 20 {
        if let Some(name) = fuzz_one(seed, blocks, snap) {
            failures.push(name);
        }
        runs += 1;
        seed += 1;
    }
    let mut modes = String::new();
    if blocks {
        modes.push_str(" [blocks]");
    }
    if snap {
        modes.push_str(" [snap]");
    }
    println!(
        "checkfuzz: {runs} runs, seeds {start}..{seed}, {} failure(s){modes}",
        failures.len(),
    );
    for f in &failures {
        println!("  {REPRO_DIR}/{f}");
    }
    i32::from(!failures.is_empty())
}

/// Re-runs one artifact; `Ok(true)` means it reproduced (still fails).
fn replay_file(path: &str) -> Result<bool, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("{path}: bad JSON: {e:?}"))?;
    match doc.get("kind").and_then(Json::as_str) {
        Some("lockstep") => {
            let ep = artifact::lockstep_from_json(&doc)
                .ok_or_else(|| format!("{path}: malformed lockstep artifact"))?;
            match run_episode(&ep) {
                Err(m) => {
                    println!("{path}: reproduced: {m}");
                    Ok(true)
                }
                Ok(stats) => {
                    println!("{path}: clean ({} retires)", stats.retired);
                    Ok(false)
                }
            }
        }
        Some("oracle") => {
            let spec = artifact::oracle_from_json(&doc)
                .ok_or_else(|| format!("{path}: malformed oracle artifact"))?;
            match run_scenario(&spec) {
                Err(v) => {
                    println!("{path}: reproduced: {v}");
                    Ok(true)
                }
                Ok(stats) => {
                    println!("{path}: clean ({} scheds)", stats.scheds);
                    Ok(false)
                }
            }
        }
        k => Err(format!("{path}: unknown artifact kind {k:?}")),
    }
}

fn cmd_replay(paths: &[String]) -> i32 {
    let mut reproduced = false;
    for p in paths {
        match replay_file(p) {
            Ok(r) => reproduced |= r,
            Err(e) => {
                eprintln!("{e}");
                return 2;
            }
        }
    }
    i32::from(reproduced)
}

/// End-to-end harness self-check with an injected golden-model bug.
fn cmd_selftest() -> i32 {
    let cfg = GenConfig {
        len: 256,
        ..GenConfig::default()
    };
    // The flipped-sltu golden model must diverge on some early seed.
    let Some((ep, mismatch)) = (0..32).find_map(|seed| {
        let mut ep = episode_for_seed(CoreKind::Cv32e40p, seed, cfg);
        ep.fault = Some(Fault::GoldenSltuFlip);
        run_episode(&ep).err().map(|m| (ep, m))
    }) else {
        eprintln!("selftest FAIL: injected sltu flip was never caught");
        return 1;
    };
    println!("selftest: injected fault caught ({mismatch})");

    let small = shrink_episode(&ep);
    let m = match run_episode(&small) {
        Err(m) => m,
        Ok(_) => {
            eprintln!("selftest FAIL: shrunk episode no longer fails");
            return 1;
        }
    };
    println!(
        "selftest: shrunk {} -> {} ops",
        ep.spec.ops.len(),
        small.spec.ops.len()
    );

    let path = write_artifact(
        "selftest_sltu.json",
        &artifact::lockstep_to_json(&small, 0, &m),
    );
    match replay_file(&path.display().to_string()) {
        Ok(true) => {
            println!("selftest: artifact replayed from disk, PASS");
            0
        }
        Ok(false) => {
            eprintln!("selftest FAIL: replayed artifact did not reproduce");
            1
        }
        Err(e) => {
            eprintln!("selftest FAIL: {e}");
            1
        }
    }
}

/// Time-travel self-check across a small (core, preset) matrix: every
/// rewound state snapshot must render byte-identically to a cold run
/// stopped at the same cycle.
fn cmd_travel(args: &[String]) -> i32 {
    let cycles = parse_flag(args, "--cycles").unwrap_or(120_000);
    let interval = parse_flag(args, "--interval").unwrap_or(cycles / 6).max(1);
    let matrix = [
        (CoreKind::Cv32e40p, Preset::Vanilla),
        (CoreKind::Cva6, Preset::Slt),
        (CoreKind::NaxRiscv, Preset::Split),
    ];
    let mut failed = false;
    for (core, preset) in matrix {
        for seed in [1, 2] {
            match travel_selfcheck(core, preset, seed, cycles, interval) {
                Ok(r) => println!(
                    "travel OK core={core} preset={} seed={seed}: {} checkpoints, \
                     {} rewinds verified, final cycle {}",
                    artifact::preset_name(preset),
                    r.checkpoints,
                    r.rewinds,
                    r.final_cycle
                ),
                Err(e) => {
                    eprintln!(
                        "travel FAIL core={core} preset={} seed={seed}: {e}",
                        artifact::preset_name(preset)
                    );
                    failed = true;
                }
            }
        }
    }
    i32::from(failed)
}
