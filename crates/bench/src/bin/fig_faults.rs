//! Fault-vulnerability figure: what a soft error does to each ISR
//! variant.
//!
//! A seeded fault campaign ([`rvsim_check::run_fault_campaign`]) injects
//! register, CSR, memory, cache, bus and interrupt upsets into the same
//! protected kernel scenario on every core × {vanilla, SLT, SDLOT} cell
//! and classifies each run on the detection lattice (DESIGN.md §12):
//! masked, caught by a guest self-check (canary / watchdog / checksum),
//! caught by the host scheduler oracle, silent corruption, or a crash.
//! The per-cell tallies compare how the hardware-assisted ISR variants
//! shift the vulnerability profile: the shorter the software switch
//! path, the less architectural state a stray bit flip can land in.
//!
//! `--quick` shrinks the plan count for CI smoke runs. The
//! machine-readable artifact lands in `results/fig_faults.json`
//! (`results/fig_faults_quick.json` with `--quick`).

use rtosbench::Json;
use rtosunit::Preset;
use rvsim_check::{run_fault_campaign, FaultCampaign, FaultOutcome};
use rvsim_cores::CoreKind;

/// ISR variants compared: full-software baseline, the paper's all-round
/// configuration, and the deepest hardware-assisted variant the
/// scheduling oracle models.
const PRESETS: [Preset; 3] = [Preset::Vanilla, Preset::Slt, Preset::Sdlot];

/// Scenario seed every cell shares, so tallies differ only by
/// configuration.
const SCENARIO_SEED: u64 = 1;

/// Faults per plan (each plan is one classified run).
const FAULTS_PER_RUN: usize = 2;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let fault_seeds: u64 = if quick { 8 } else { 64 };
    // Crashed runs are a *classification*, not an error: silence the
    // default panic hook so `catch_unwind` inside the campaign does not
    // spray backtraces over the report.
    std::panic::set_hook(Box::new(|_| {}));
    let campaign = run_fault_campaign(
        &CoreKind::ALL,
        &PRESETS,
        SCENARIO_SEED,
        fault_seeds,
        FAULTS_PER_RUN,
    );
    let _ = std::panic::take_hook();

    let mut out = String::new();
    out.push_str("# Fault-injection vulnerability by ISR variant\n");
    out.push_str(&format!(
        "# ({} plans x {} faults per (core, preset) cell, scenario seed {})\n\n",
        fault_seeds, FAULTS_PER_RUN, SCENARIO_SEED
    ));
    out.push_str("| core | preset | ");
    for o in FaultOutcome::ALL {
        out.push_str(&format!("{} | ", o.name()));
    }
    out.push_str("detected % |\n|---|---|");
    out.push_str(&"---|".repeat(FaultOutcome::ALL.len() + 1));
    out.push('\n');
    for core in CoreKind::ALL {
        for preset in PRESETS {
            let cell: Vec<_> = campaign
                .runs
                .iter()
                .filter(|r| r.core == core && r.preset == preset)
                .collect();
            out.push_str(&format!("| {} | {} | ", core.name(), preset.label()));
            let mut detected = 0usize;
            for o in FaultOutcome::ALL {
                let n = cell.iter().filter(|r| r.report.outcome == o).count();
                if o.is_detected() {
                    detected += n;
                }
                out.push_str(&format!("{n} | "));
            }
            let pct = 100.0 * detected as f64 / cell.len().max(1) as f64;
            out.push_str(&format!("{pct:.1} |\n"));
        }
    }
    out.push('\n');
    out.push_str(&rtosunit_bench::paper_note(&[
        "every run is classified -- crashes are caught and counted, never lost",
        "guest self-checks (canary/watchdog/checksum) and the host oracle split the detected mass",
        "silent corruption is only visible to the differential layer; its share is the residual risk",
    ]));
    rtosunit_bench::emit(
        if quick {
            "fig_faults_quick.txt"
        } else {
            "fig_faults.txt"
        },
        &out,
    );

    let name = if quick {
        "fig_faults_quick"
    } else {
        "fig_faults"
    };
    match write_artifact(name, &campaign, fault_seeds) {
        Ok(path) => println!("# campaign artifact: {path}"),
        Err(e) => eprintln!("# campaign artifact not written: {e}"),
    }
    match quarantine_crashes(name, &campaign) {
        Ok(0) => {}
        Ok(n) => println!("# {n} crashed runs quarantined under results/quarantine/"),
        Err(e) => eprintln!("# quarantine not written: {e}"),
    }
    println!(
        "# fig_faults: {} runs classified ({} cells)",
        campaign.runs.len(),
        CoreKind::ALL.len() * PRESETS.len()
    );
}

/// Writes one standalone replay artifact per crashed run into
/// `results/quarantine/` — the scenario seeds plus the exact fault
/// events, so the crash re-runs without the generator (and shrinks via
/// [`rvsim_check::shrink_fault_events`]). Returns the number written.
fn quarantine_crashes(name: &str, campaign: &FaultCampaign) -> std::io::Result<usize> {
    let crashed: Vec<_> = campaign
        .runs
        .iter()
        .filter(|r| r.report.outcome == FaultOutcome::Crashed)
        .collect();
    if crashed.is_empty() {
        return Ok(0);
    }
    std::fs::create_dir_all("results/quarantine")?;
    for r in &crashed {
        let doc = Json::object()
            .with("schema", "rtosunit-fault-quarantine-v1")
            .with("campaign", name)
            .with("core", r.core.name())
            .with("preset", r.preset.label())
            .with("scenario_seed", r.scenario_seed)
            .with("fault_seed", r.fault_seed)
            .with(
                "events",
                r.events
                    .iter()
                    .map(|e| {
                        Json::object()
                            .with("at_cycle", e.at_cycle)
                            .with("kind", e.kind.name())
                            .with("code", e.kind.code())
                    })
                    .collect::<Vec<_>>(),
            )
            .with("detail", r.report.detail.as_str());
        let path = format!(
            "results/quarantine/{name}_{}_{}_s{}_f{}.json",
            r.core.name(),
            r.preset.label().trim_matches(|c| c == '(' || c == ')'),
            r.scenario_seed,
            r.fault_seed
        );
        std::fs::write(path, doc.render())?;
    }
    Ok(crashed.len())
}

/// Renders the campaign as `results/<name>.json`: the per-cell tallies
/// plus one replayable record per run (seeds and explicit events, so a
/// verdict can be re-derived without the generator).
fn write_artifact(
    name: &str,
    campaign: &FaultCampaign,
    fault_seeds: u64,
) -> std::io::Result<String> {
    let mut cells = Vec::new();
    for core in CoreKind::ALL {
        for preset in PRESETS {
            let mut tally = Json::object();
            for (o, n) in campaign.tally_for(core, preset) {
                tally.push(o.name(), n);
            }
            cells.push(
                Json::object()
                    .with("core", core.name())
                    .with("preset", preset.label())
                    .with("tally", tally),
            );
        }
    }
    let runs = campaign
        .runs
        .iter()
        .map(|r| {
            Json::object()
                .with("core", r.core.name())
                .with("preset", r.preset.label())
                .with("scenario_seed", r.scenario_seed)
                .with("fault_seed", r.fault_seed)
                .with(
                    "events",
                    r.events
                        .iter()
                        .map(|e| {
                            Json::object()
                                .with("at_cycle", e.at_cycle)
                                .with("kind", e.kind.name())
                                .with("code", e.kind.code())
                        })
                        .collect::<Vec<_>>(),
                )
                .with("outcome", r.report.outcome.name())
                .with("detail", r.report.detail.as_str())
        })
        .collect::<Vec<_>>();
    let doc = Json::object()
        .with("schema", "rtosunit-faultcamp-v1")
        .with("campaign", name)
        .with("scenario_seed", SCENARIO_SEED)
        .with("fault_seeds", fault_seeds)
        .with("faults_per_run", FAULTS_PER_RUN as u64)
        .with("cells", cells)
        .with("runs", runs);
    std::fs::create_dir_all("results")?;
    let path = format!("results/{name}.json");
    std::fs::write(&path, doc.render())?;
    Ok(path)
}
