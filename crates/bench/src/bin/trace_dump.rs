//! Dumps one fully-instrumented run as Chrome trace-event JSON.
//!
//! The run uses a phase-instrumented kernel (`build_traced`) on a cached
//! core with event tracing enabled, so the trace carries the complete
//! observability vocabulary: interrupt edges, ISR entries, kernel phase
//! marks, `mret`s and cache activity. The artifact lands in
//! `results/trace_dump.json`; open it at <https://ui.perfetto.dev> (or
//! `chrome://tracing`) — see the Perfetto recipe in `EXPERIMENTS.md`.
//!
//! A second pass traces a two-hart SMP run (a receiver blocking on a
//! semaphore that a sender on the other hart posts via IPI) and writes
//! the per-hart-track export to `results/trace_dump_smp.json`.
//!
//! The binary re-parses its own output and asserts the required event
//! kinds are present, so CI can use it as a smoke test.
//!
//! Usage: `trace_dump [workload]` (default: `delay_periodic`, a
//! timer-driven workload).

use freertos_lite::SmpKernelBuilder;
use rtosbench::json::Json;
use rtosbench::workloads;
use rtosunit::waterfall;
use rtosunit::{Preset, SmpSystem, System};
use rtosunit_bench::chrome_trace::{chrome_trace, chrome_trace_smp, validate};
use rvsim_cores::CoreKind;

/// Cycle budget: enough for dozens of timer-driven episodes while the
/// artifact stays a few hundred kilobytes.
const RUN_CYCLES: u64 = 60_000;

/// Event-ring capacity: comfortably above the event rate of the run so
/// nothing is dropped.
const TRACE_CAPACITY: usize = 1_000_000;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "delay_periodic".to_string());
    let workload = workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload `{name}` (see workloads::ALL)"));
    // A cached core so the trace shows cache hit/miss events; (SLT) so
    // unit traffic shows up too.
    let core = CoreKind::Cva6;
    let preset = Preset::Slt;

    let image = workloads::build_traced(&workload, preset).expect("workload builds");
    let mut sys = System::new(core, preset);
    image.install(&mut sys);
    sys.enable_tracing(TRACE_CAPACITY);
    if workload.ext_irq_interval > 0 {
        let mut at = workload.ext_irq_interval;
        while at < RUN_CYCLES {
            sys.schedule_external_irq(at);
            at += workload.ext_irq_interval;
        }
    }
    sys.run(RUN_CYCLES);

    let trace = sys.platform.take_trace().expect("tracing was enabled");
    let episodes = waterfall::decompose(sys.records(), &sys.platform.mmio.trace_marks);
    let label = format!("{}/{}/{}", core.name(), preset.label(), workload.name);
    let doc = chrome_trace(&label, &trace, &episodes);
    let rendered = doc.render();

    // Self-validation: the artifact must be well-formed JSON and carry
    // the full event vocabulary (CI smoke-tests exactly this).
    let parsed = Json::parse(&rendered).expect("emitted trace is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array present");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    for required in [
        "irq_raised",
        "isr_entry",
        "save_done",
        "sched_done",
        "mret",
        "cache",
    ] {
        assert!(
            names.contains(&required),
            "trace is missing `{required}` events"
        );
    }
    // Structural invariants of the emitted JSON: timestamps monotone per
    // track, phase widths tiling every episode slice exactly.
    if let Err(e) = validate(&parsed) {
        panic!("trace self-validation failed: {e}");
    }

    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("results dir");
    let path = dir.join("trace_dump.json");
    std::fs::write(&path, &rendered).expect("write artifact");

    println!("# trace: {label}, {} cycles", RUN_CYCLES);
    println!(
        "# {} events ({} dropped), {} episodes, {} bytes -> {}",
        events.len(),
        trace.dropped(),
        episodes.len(),
        rendered.len(),
        path.display()
    );
    println!("# open in https://ui.perfetto.dev (or chrome://tracing)");
    print!("{}", waterfall::render(&episodes));

    dump_smp(core, preset, dir);
}

/// Traces a two-hart IPI ping — `rx` blocks on `inbox` on hart 0 while
/// `tx` on hart 1 posts it over the mailbox — and writes the per-hart
/// Perfetto export, re-parsing it to assert both harts' tracks carry
/// the cross-core vocabulary.
fn dump_smp(core: CoreKind, preset: Preset, dir: &std::path::Path) {
    const HARTS: usize = 2;
    let mut b = SmpKernelBuilder::new(preset, HARTS);
    b.tick_period(2_000);
    b.semaphore("inbox", 0);
    b.task_on("rx", 4, 0b01, |t| {
        for _ in 0..8 {
            t.sem_take("inbox");
            t.busy_work(20);
        }
        t.halt();
    });
    // The body loops forever (bodies auto-wrap in an endless loop).
    b.task_on("tx", 3, 0b10, |t| {
        t.busy_work(30);
        t.ipi_give(0, "inbox");
        t.delay(1); // throttle: an unthrottled IPI flood can livelock the peer
    });
    let image = b.build().expect("SMP workload builds");

    let mut smp = SmpSystem::new(core, preset, HARTS);
    image.install(&mut smp);
    for h in 0..HARTS {
        smp.hart_mut(h).enable_tracing(TRACE_CAPACITY);
    }
    smp.run(RUN_CYCLES);

    let per_hart: Vec<_> = (0..HARTS)
        .map(|h| {
            let sys = smp.hart_mut(h);
            let trace = sys.platform.take_trace().expect("tracing was enabled");
            let episodes = waterfall::decompose(sys.records(), &sys.platform.mmio.trace_marks);
            (trace, episodes)
        })
        .collect();
    let label = format!(
        "{}/{}/ipi_pingpong/{}harts",
        core.name(),
        preset.label(),
        HARTS
    );
    let rendered = chrome_trace_smp(&label, &per_hart).render();

    let parsed = Json::parse(&rendered).expect("emitted SMP trace is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array present");
    let track_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str)
        })
        .collect();
    for h in 0..HARTS {
        for track in ["episodes", "phases", "events"] {
            let want = format!("hart{h} {track}");
            assert!(
                track_names.contains(&want.as_str()),
                "SMP trace is missing the `{want}` track"
            );
        }
    }
    if let Err(e) = validate(&parsed) {
        panic!("SMP trace self-validation failed: {e}");
    }
    // Both harts must have taken interrupts (hart 0: the IPI wakeups,
    // hart 1: at least the timer ticks driving `delay`).
    for (h, (trace, episodes)) in per_hart.iter().enumerate() {
        assert!(trace.iter().count() > 0, "hart {h} recorded no events");
        assert!(!episodes.is_empty(), "hart {h} recorded no switch episodes");
    }

    let path = dir.join("trace_dump_smp.json");
    std::fs::write(&path, &rendered).expect("write SMP artifact");
    println!(
        "# smp trace: {label}, {} events, {} + {} episodes, {} bytes -> {}",
        events.len(),
        per_hart[0].1.len(),
        per_hart[1].1.len(),
        rendered.len(),
        path.display()
    );
}
