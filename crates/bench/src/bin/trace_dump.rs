//! Dumps one fully-instrumented run as Chrome trace-event JSON.
//!
//! The run uses a phase-instrumented kernel (`build_traced`) on a cached
//! core with event tracing enabled, so the trace carries the complete
//! observability vocabulary: interrupt edges, ISR entries, kernel phase
//! marks, `mret`s and cache activity. The artifact lands in
//! `results/trace_dump.json`; open it at <https://ui.perfetto.dev> (or
//! `chrome://tracing`) — see the Perfetto recipe in `EXPERIMENTS.md`.
//!
//! The binary re-parses its own output and asserts the required event
//! kinds are present, so CI can use it as a smoke test.
//!
//! Usage: `trace_dump [workload]` (default: `delay_periodic`, a
//! timer-driven workload).

use rtosbench::json::Json;
use rtosbench::workloads;
use rtosunit::waterfall;
use rtosunit::{Preset, System};
use rtosunit_bench::chrome_trace::chrome_trace;
use rvsim_cores::CoreKind;

/// Cycle budget: enough for dozens of timer-driven episodes while the
/// artifact stays a few hundred kilobytes.
const RUN_CYCLES: u64 = 60_000;

/// Event-ring capacity: comfortably above the event rate of the run so
/// nothing is dropped.
const TRACE_CAPACITY: usize = 1_000_000;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "delay_periodic".to_string());
    let workload = workloads::by_name(&name)
        .unwrap_or_else(|| panic!("unknown workload `{name}` (see workloads::ALL)"));
    // A cached core so the trace shows cache hit/miss events; (SLT) so
    // unit traffic shows up too.
    let core = CoreKind::Cva6;
    let preset = Preset::Slt;

    let image = workloads::build_traced(&workload, preset).expect("workload builds");
    let mut sys = System::new(core, preset);
    image.install(&mut sys);
    sys.enable_tracing(TRACE_CAPACITY);
    if workload.ext_irq_interval > 0 {
        let mut at = workload.ext_irq_interval;
        while at < RUN_CYCLES {
            sys.schedule_external_irq(at);
            at += workload.ext_irq_interval;
        }
    }
    sys.run(RUN_CYCLES);

    let trace = sys.platform.take_trace().expect("tracing was enabled");
    let episodes = waterfall::decompose(sys.records(), &sys.platform.mmio.trace_marks);
    let label = format!("{}/{}/{}", core.name(), preset.label(), workload.name);
    let doc = chrome_trace(&label, &trace, &episodes);
    let rendered = doc.render();

    // Self-validation: the artifact must be well-formed JSON and carry
    // the full event vocabulary (CI smoke-tests exactly this).
    let parsed = Json::parse(&rendered).expect("emitted trace is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array present");
    let names: Vec<&str> = events
        .iter()
        .filter_map(|e| e.get("name").and_then(Json::as_str))
        .collect();
    for required in [
        "irq_raised",
        "isr_entry",
        "save_done",
        "sched_done",
        "mret",
        "cache",
    ] {
        assert!(
            names.contains(&required),
            "trace is missing `{required}` events"
        );
    }

    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("results dir");
    let path = dir.join("trace_dump.json");
    std::fs::write(&path, &rendered).expect("write artifact");

    println!("# trace: {label}, {} cycles", RUN_CYCLES);
    println!(
        "# {} events ({} dropped), {} episodes, {} bytes -> {}",
        events.len(),
        trace.dropped(),
        episodes.len(),
        rendered.len(),
        path.display()
    );
    println!("# open in https://ui.perfetto.dev (or chrome://tracing)");
    print!("{}", waterfall::render(&episodes));
}
