//! Tail-latency figure: the open-loop bursty-arrival sweep.
//!
//! Mean switch latency (Fig. 9) hides exactly what a real-time system
//! cares about — the tail. This figure drives the deferred-interrupt
//! workload with a Markov-modulated *open-loop* arrival process
//! ([`rtosbench::tail`]): interrupts land on a precomputed schedule
//! whether or not the guest has finished the previous switch, so
//! queueing delay during bursts shows up in the distribution instead of
//! being coordinated away. Per `(preset, arrival rate)` cell the v3
//! campaign telemetry reports exact p50/p99/p99.9/p99.99 and the SLO
//! miss rate against a fixed latency budget.
//!
//! `--quick` shrinks the cycle budget for CI smoke runs (the same spec
//! shape, so the committed perf baseline stays comparable). `--blocks`
//! executes every run through the block translation cache — simulated
//! metrics and the artifact are identical to the interpreted run (the
//! CI smoke pass relies on this), only host time changes. The
//! machine-readable artifact lands in `results/fig_tail.json`
//! (`results/fig_tail_quick.json` with `--quick`).

use rtosbench::tail::{self, SLO_CYCLES};
use rtosunit::hist::REPORTED_PERCENTILES;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let blocks = std::env::args().any(|a| a == "--blocks");
    let mut spec = tail::tail_spec(quick);
    for run in &mut spec.runs {
        run.blocks = blocks;
    }
    spec = spec.with_progress();
    let campaign = spec.run(rtosunit_bench::default_workers());

    let mut out = String::new();
    out.push_str("# Tail switch latency under open-loop bursty arrivals\n");
    out.push_str(&format!(
        "# (CV32E40P, deferred interrupt handling; SLO budget = {SLO_CYCLES} cycles)\n\n"
    ));
    out.push_str("| preset | mean gap | switches | p50 | p90 | p99 | p99.9 | p99.99 | max | SLO miss rate |\n");
    out.push_str("|---|---|---|---|---|---|---|---|---|---|\n");
    let mut broken: Vec<String> = campaign
        .failures
        .iter()
        .map(|f| format!("run `{}` failed ({}): {}", f.label, f.kind.name(), f.detail))
        .collect();
    for o in &campaign.outcomes {
        let Some(sim) = o.sim.as_ref() else {
            broken.push(format!("run `{}` produced no simulation outcome", o.label));
            continue;
        };
        let m = &sim.metrics;
        let pcts: Vec<String> = REPORTED_PERCENTILES
            .iter()
            .map(|(_, p)| match m.latency.percentile(*p) {
                Some(v) => v.to_string(),
                None => "-".to_string(),
            })
            .collect();
        let Some(slo) = m.slo else {
            broken.push(format!("run `{}` tracked no SLO budget", o.label));
            continue;
        };
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {:.4} |\n",
            o.preset.label(),
            o.param,
            m.latency.count(),
            pcts.join(" | "),
            m.latency.max().map_or("-".to_string(), |v| v.to_string()),
            slo.miss_rate(),
        ));
    }
    out.push('\n');
    out.push_str(&rtosunit_bench::paper_note(&[
        "open-loop arrivals keep bursts on schedule, so queue delay lands in the tail instead of being coordinated away",
        "the gap sweep pushes the system toward saturation; p99.9 separates presets long before the mean moves",
        "hardware-assisted presets cut the SLO miss rate by shortening every switch the burst stacks up",
    ]));
    rtosunit_bench::emit(
        if quick {
            "fig_tail_quick.txt"
        } else {
            "fig_tail.txt"
        },
        &out,
    );

    match campaign.write_json("results") {
        Ok(path) => println!("# campaign artifact: {}", path.display()),
        Err(e) => eprintln!("# campaign artifact not written: {e}"),
    }
    println!("# {}", campaign.throughput_summary());
    // Partial results are still emitted above; a broken cell fails the
    // invocation so CI (and the perf-regression gate reading the
    // artifact) cannot mistake a half-empty figure for a healthy one.
    if !broken.is_empty() {
        for b in &broken {
            eprintln!("fig_tail: {b}");
        }
        std::process::exit(1);
    }
}
