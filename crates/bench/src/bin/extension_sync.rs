//! Evaluation of the §7-extension hardware synchronisation primitives:
//! (SLT) with software semaphores vs (SLT+HS) with `SEM_TAKE`/`SEM_GIVE`
//! in hardware. Not a paper figure — the paper names this as future work.

use freertos_lite::KernelBuilder;
use rtosunit::{Preset, System};
use rvsim_cores::CoreKind;

fn handoffs(kind: CoreKind, preset: Preset) -> (usize, f64) {
    let mut k = KernelBuilder::new(preset);
    k.semaphore("ping", 0);
    k.semaphore("pong", 0);
    k.task("producer", 5, |t| {
        t.trace_mark(1);
        t.compute(5);
        t.sem_give("ping");
        t.sem_take("pong");
    });
    k.task("consumer", 5, |t| {
        t.sem_take("ping");
        t.compute(5);
        t.sem_give("pong");
    });
    let img = k.build().expect("builds");
    let mut sys = System::new(kind, preset);
    img.install(&mut sys);
    sys.run(400_000);
    let n = sys.platform.mmio.trace_marks.len();
    let mean = sys.latency_stats().map(|s| s.mean).unwrap_or(0.0);
    (n, mean)
}

fn main() {
    let mut out = String::new();
    out.push_str("## Extension: hardware synchronisation primitives (paper §7 future work)\n\n");
    out.push_str(&format!(
        "{:<10} {:<10} {:>14} {:>16}\n",
        "core", "config", "handoffs/400k", "switch µ (cyc)"
    ));
    for kind in CoreKind::ALL {
        for preset in [Preset::Slt, Preset::SltHs] {
            let (n, mean) = handoffs(kind, preset);
            out.push_str(&format!(
                "{:<10} {:<10} {:>14} {:>16.1}\n",
                kind.name(),
                preset.label(),
                n,
                mean
            ));
        }
    }
    out.push_str("\nHardware take/give removes the software event-list walks from the\n");
    out.push_str("syscall path, raising handoff throughput at equal switch latency —\n");
    out.push_str("the offloading §7 anticipates for coordination-intensive workloads.\n");
    rtosunit_bench::emit("extension_sync.txt", &out);
}
