//! Evaluation of the §7-extension hardware synchronisation primitives:
//! (SLT) with software semaphores vs (SLT+HS) with `SEM_TAKE`/`SEM_GIVE`
//! in hardware. Not a paper figure — the paper names this as future work.
//!
//! Declared as a [`CampaignSpec`] over a custom ping-pong kernel; the
//! handoff count comes from guest trace marks, so the runs keep every
//! episode ([`FilterPolicy::All`]).

use freertos_lite::{GuestImage, KernelBuilder, KernelError};
use rtosbench::{CampaignSpec, FilterPolicy, RunSpec, WorkloadSpec};
use rtosunit::Preset;
use rvsim_cores::CoreKind;

fn pingpong_kernel(_param: u32, preset: Preset) -> Result<GuestImage, KernelError> {
    let mut k = KernelBuilder::new(preset);
    k.semaphore("ping", 0);
    k.semaphore("pong", 0);
    k.task("producer", 5, |t| {
        t.trace_mark(1);
        t.compute(5);
        t.sem_give("ping");
        t.sem_take("pong");
    });
    k.task("consumer", 5, |t| {
        t.sem_take("ping");
        t.compute(5);
        t.sem_give("pong");
    });
    k.build()
}

fn spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new("extension_sync");
    for kind in CoreKind::ALL {
        for preset in [Preset::Slt, Preset::SltHs] {
            let mut run = RunSpec::new(
                kind,
                preset,
                WorkloadSpec::Custom {
                    name: "sync_pingpong",
                    param: 0,
                    build: pingpong_kernel,
                    run_cycles: 400_000,
                    ext_irq_interval: 0,
                },
            );
            run.filter = FilterPolicy::All;
            spec.runs.push(run);
        }
    }
    spec
}

fn main() {
    let campaign = spec().run(rtosunit_bench::default_workers());
    let mut out = String::new();
    out.push_str("## Extension: hardware synchronisation primitives (paper §7 future work)\n\n");
    out.push_str(&format!(
        "{:<10} {:<10} {:>14} {:>16}\n",
        "core", "config", "handoffs/400k", "switch µ (cyc)"
    ));
    for o in &campaign.outcomes {
        let sim = o.sim.as_ref().expect("simulated run");
        let mean = sim.stats().map(|s| s.mean).unwrap_or(0.0);
        out.push_str(&format!(
            "{:<10} {:<10} {:>14} {:>16.1}\n",
            o.core.name(),
            o.preset.label(),
            sim.trace_marks.len(),
            mean
        ));
    }
    out.push_str("\nHardware take/give removes the software event-list walks from the\n");
    out.push_str("syscall path, raising handoff throughput at equal switch latency —\n");
    out.push_str("the offloading §7 anticipates for coordination-intensive workloads.\n");
    rtosunit_bench::emit("extension_sync.txt", &out);

    match campaign.write_json("results") {
        Ok(path) => println!("# campaign artifact: {}", path.display()),
        Err(e) => eprintln!("# campaign artifact not written: {e}"),
    }
    println!("# {}", campaign.throughput_summary());
}
