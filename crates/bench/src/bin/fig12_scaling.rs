//! Regenerates Figure 12: ASIC area of the scheduling-only (T)
//! configuration on CV32E40P as the hardware list length grows.

use asic_model::scaling::FIG12_LENGTHS;
use asic_model::scaling_sweep;

fn main() {
    let mut out = String::new();
    out.push_str("## CV32E40P (T): area vs scheduler list length\n\n");
    out.push_str(&format!("{:>6} {:>12} {:>10}\n", "slots", "total_um2", "overhead"));
    for p in scaling_sweep(&FIG12_LENGTHS) {
        out.push_str(&format!(
            "{:>6} {:>12.0} {:>9.1}%\n",
            p.list_len,
            p.total_um2,
            p.overhead * 100.0
        ));
    }
    out.push_str(&rtosunit_bench::paper_note(&[
        "area increases approximately linearly with list length",
        "reaching ~14% overhead at 64 slots; small sizes within tool noise",
    ]));
    rtosunit_bench::emit("fig12_scaling.txt", &out);
}
