//! Regenerates Figure 12: ASIC area of the scheduling-only (T)
//! configuration on CV32E40P as the hardware list length grows.
//!
//! The sweep is declared as analytic campaign runs (no simulation), so
//! the data also lands in `results/fig12_scaling.json` in the same
//! artifact format as the simulated figures.

use asic_model::scaling::FIG12_LENGTHS;
use asic_model::scaling_sweep;
use rtosbench::{CampaignSpec, Json, RunSpec, WorkloadSpec};
use rtosunit::Preset;
use rvsim_cores::CoreKind;

fn area_point(len: u32, _core: CoreKind, _preset: Preset) -> Json {
    let p = scaling_sweep(&[len as usize]).remove(0);
    Json::object()
        .with("list_len", p.list_len)
        .with("total_um2", p.total_um2)
        .with("overhead", p.overhead)
}

fn spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new("fig12_scaling");
    for &len in &FIG12_LENGTHS {
        let mut run = RunSpec::new(
            CoreKind::Cv32e40p,
            Preset::T,
            WorkloadSpec::Analytic {
                name: "area_scaling",
                param: len as u32,
                eval: area_point,
            },
        );
        run.label = Some(format!("area/slots_{len}"));
        spec.runs.push(run);
    }
    spec
}

fn main() {
    let campaign = spec().run(rtosunit_bench::default_workers());
    let mut out = String::new();
    out.push_str("## CV32E40P (T): area vs scheduler list length\n\n");
    out.push_str(&format!(
        "{:>6} {:>12} {:>10}\n",
        "slots", "total_um2", "overhead"
    ));
    for p in scaling_sweep(&FIG12_LENGTHS) {
        out.push_str(&format!(
            "{:>6} {:>12.0} {:>9.1}%\n",
            p.list_len,
            p.total_um2,
            p.overhead * 100.0
        ));
    }
    out.push_str(&rtosunit_bench::paper_note(&[
        "area increases approximately linearly with list length",
        "reaching ~14% overhead at 64 slots; small sizes within tool noise",
    ]));
    rtosunit_bench::emit("fig12_scaling.txt", &out);

    match campaign.write_json("results") {
        Ok(path) => println!("# campaign artifact: {}", path.display()),
        Err(e) => eprintln!("# campaign artifact not written: {e}"),
    }
}
