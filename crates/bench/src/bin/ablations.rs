//! Ablation studies for the design decisions called out in `DESIGN.md`:
//!
//! 1. **ctxQueue depth** (paper §5.3): the paper evaluated different
//!    queue sizes and found eight entries Pareto-optimal — smaller
//!    queues hurt context-switch latency, larger ones add area for no
//!    performance gain.
//! 2. **Arbitration level** (paper §5): LSU-level arbitration lets the
//!    unit share the cache (lower mean latency with warm contexts, more
//!    hit/miss variability); bus-level arbitration bypasses the cache
//!    (more predictable, slower on a high-latency memory core).
//! 3. **Delay-list cost**: tick-switch latency vs periodic task count.
//!
//! All three studies are declared in one [`CampaignSpec`] (custom guest
//! kernels, config overrides, non-standard episode filters) and executed
//! in parallel; `results/ablations.json` holds the machine-readable data.

use freertos_lite::{GuestImage, KernelBuilder, KernelError};
use rtosbench::{
    workloads, CampaignSpec, ConfigOverride, FilterPolicy, RunSpec, SimOutcome, WorkloadSpec,
};
use rtosunit::layout::DMEM_BASE;
use rtosunit::Preset;
use rvsim_cores::CoreKind;
use rvsim_isa::Reg;

/// Builds a cache-thrashing workload: each task streams over a 24 KiB
/// buffer between yields, evicting the other tasks' context lines, so
/// context restores actually miss and the ctxQueue's pipelining matters.
fn thrash_kernel(_depth: u32, preset: Preset) -> Result<GuestImage, KernelError> {
    let mut k = KernelBuilder::new(preset);
    k.tick_period(6000);
    for name in ["ta", "tb", "tc"] {
        k.task(name, 4, |t| {
            let loop_l = t.fresh_label("stream");
            let a = t.asm_mut();
            a.li(Reg::S4, (DMEM_BASE + 0x4_0000) as i32);
            a.li(Reg::S5, (DMEM_BASE + 0x4_0000 + 24 * 1024) as i32);
            a.label(&loop_l);
            a.lw(Reg::S6, 0, Reg::S4);
            a.addi(Reg::S4, Reg::S4, 64);
            a.blt(Reg::S4, Reg::S5, &loop_l);
            t.yield_now();
        });
    }
    k.build()
}

/// All tasks sleep on short periods, so every timer tick walks the
/// delay list and wakes tasks — the task-count-dependent kernel path
/// (the paper's WCET scenario assumes 8 such tasks, §6.2).
fn tick_kernel(n: u32, preset: Preset) -> Result<GuestImage, KernelError> {
    let mut k = KernelBuilder::new(preset);
    k.tick_period(2500);
    k.hw_list_len(16);
    for i in 0..n as usize {
        let period = (i % 3 + 1) as u32;
        k.task(&format!("t{i}"), ((i % 6) + 1) as u8, move |t| {
            t.compute(6);
            t.delay(period);
        });
    }
    k.build()
}

const DEPTHS: [usize; 5] = [1, 2, 4, 8, 16];
const TASK_COUNTS: [u32; 5] = [2, 4, 8, 12, 15];

fn spec() -> CampaignSpec {
    let mut spec = CampaignSpec::new("ablations");
    for depth in DEPTHS {
        let mut run = RunSpec::new(
            CoreKind::NaxRiscv,
            Preset::Slt,
            WorkloadSpec::Custom {
                name: "ctx_thrash",
                param: depth as u32,
                build: thrash_kernel,
                run_cycles: 500_000,
                ext_irq_interval: 0,
            },
        );
        run.label = Some(format!("ctx_queue/depth_{depth}"));
        run.overrides.push(ConfigOverride::CtxQueueDepth(depth));
        run.filter = FilterPolicy::WarmupOnly;
        spec.runs.push(run);
    }
    let w = workloads::by_name("roundrobin_yield").expect("exists");
    for (label, shares) in [("arbitration/bus", false), ("arbitration/lsu", true)] {
        let mut run = RunSpec::new(CoreKind::Cva6, Preset::Slt, WorkloadSpec::Suite(w));
        run.label = Some(label.to_string());
        run.overrides.push(ConfigOverride::UnitArbitration(shares));
        spec.runs.push(run);
    }
    for n in TASK_COUNTS {
        for preset in [Preset::Vanilla, Preset::T] {
            let mut run = RunSpec::new(
                CoreKind::Cv32e40p,
                preset,
                WorkloadSpec::Custom {
                    name: "tick_periodic",
                    param: n,
                    build: tick_kernel,
                    run_cycles: 400_000,
                    ext_irq_interval: 0,
                },
            );
            run.label = Some(format!("tick/{}/tasks_{n}", preset.label()));
            run.overrides.push(ConfigOverride::UnitListLen(16));
            run.filter = FilterPolicy::WarmupTimerTicks;
            spec.runs.push(run);
        }
    }
    spec
}

fn main() {
    let campaign = spec().run(rtosunit_bench::default_workers());
    let sim = |label: &str| -> &SimOutcome {
        campaign
            .find(label)
            .and_then(|o| o.sim.as_ref())
            .expect("ablation run is in the spec")
    };

    let mut out = String::new();
    out.push_str("## Ablation 1: ctxQueue depth (NaxRiscv, SLT, cache-thrashing tasks)\n\n");
    out.push_str(&format!(
        "{:>6} {:>8} {:>8} {:>8} {:>12}\n",
        "depth", "mean", "max", "jitter", "queue_stalls"
    ));
    for depth in DEPTHS {
        let r = sim(&format!("ctx_queue/depth_{depth}"));
        let s = r.stats().expect("switches");
        out.push_str(&format!(
            "{:>6} {:>8.1} {:>8} {:>8} {:>12}\n",
            depth,
            s.mean,
            s.max,
            s.jitter(),
            r.ctx_queue.map(|(_, st)| st).unwrap_or(0)
        ));
    }
    out.push_str(
        "\n(§5.3: the paper finds 8 entries Pareto-optimal. Our thrashing setup\n\
         misses on every line, so capacity beyond 8 still helps a little; with\n\
         the paper's workloads a 31-word context produces only 2-3 outstanding\n\
         misses and the curve saturates at 8 — visible in the collapsing\n\
         queue-full stall counts.)\n\n",
    );

    out.push_str("## Ablation 2: arbitration level (CVA6, SLT)\n\n");
    out.push_str(&format!(
        "{:<22} {:>8} {:>8} {:>8}\n",
        "arbitration", "mean", "max", "jitter"
    ));
    for (label, key) in [
        ("bus (bypass cache)", "arbitration/bus"),
        ("LSU (share cache)", "arbitration/lsu"),
    ] {
        let s = sim(key).stats().expect("switches");
        out.push_str(&format!(
            "{:<22} {:>8.1} {:>8} {:>8}\n",
            label,
            s.mean,
            s.max,
            s.jitter()
        ));
    }
    out.push_str("\n(§5: sharing the cache trades predictability for mean latency.)\n\n");

    out.push_str("## Ablation 3: tick-switch latency vs periodic task count (CV32E40P)\n\n");
    out.push_str(&format!(
        "{:>6} {:>16} {:>16}\n",
        "tasks", "(vanilla) tick µ", "(T) tick µ"
    ));
    for n in TASK_COUNTS {
        let mean = |preset: Preset| {
            sim(&format!("tick/{}/tasks_{n}", preset.label()))
                .stats()
                .expect("tick switches")
                .mean
        };
        out.push_str(&format!(
            "{:>6} {:>16.1} {:>16.1}\n",
            n,
            mean(Preset::Vanilla),
            mean(Preset::T)
        ));
    }
    out.push_str(
        "\n(Software tick handling walks the delay list and re-inserts every\n\
         woken task, so the cost grows with the periodic task count; the\n\
         hardware delay list handles expiry in parallel — §4.4/§6.2.)\n",
    );
    rtosunit_bench::emit("ablations.txt", &out);

    match campaign.write_json("results") {
        Ok(path) => println!("# campaign artifact: {}", path.display()),
        Err(e) => eprintln!("# campaign artifact not written: {e}"),
    }
    println!("# {}", campaign.throughput_summary());
}
