//! Ablation studies for the design decisions called out in `DESIGN.md`:
//!
//! 1. **ctxQueue depth** (paper §5.3): the paper evaluated different
//!    queue sizes and found eight entries Pareto-optimal — smaller
//!    queues hurt context-switch latency, larger ones add area for no
//!    performance gain.
//! 2. **Arbitration level** (paper §5): LSU-level arbitration lets the
//!    unit share the cache (lower mean latency with warm contexts, more
//!    hit/miss variability); bus-level arbitration bypasses the cache
//!    (more predictable, slower on a high-latency memory core).

use freertos_lite::KernelBuilder;
use rtosbench::{run_workload_with, workloads};
use rtosunit::layout::DMEM_BASE;
use rtosunit::{LatencyStats, Preset, System};
use rvsim_cores::CoreKind;
use rvsim_isa::Reg;

/// Builds a cache-thrashing workload: each task streams over a 24 KiB
/// buffer between yields, evicting the other tasks' context lines, so
/// context restores actually miss and the ctxQueue's pipelining matters.
fn thrash_run(configure: impl FnOnce(&mut System)) -> (LatencyStats, Option<(u64, u64)>) {
    let mut k = KernelBuilder::new(Preset::Slt);
    k.tick_period(6000);
    for name in ["ta", "tb", "tc"] {
        k.task(name, 4, |t| {
            let loop_l = t.fresh_label("stream");
            let a = t.asm_mut();
            a.li(Reg::S4, (DMEM_BASE + 0x4_0000) as i32);
            a.li(Reg::S5, (DMEM_BASE + 0x4_0000 + 24 * 1024) as i32);
            a.label(&loop_l);
            a.lw(Reg::S6, 0, Reg::S4);
            a.addi(Reg::S4, Reg::S4, 64);
            a.blt(Reg::S4, Reg::S5, &loop_l);
            t.yield_now();
        });
    }
    let image = k.build().expect("builds");
    let mut sys = System::new(CoreKind::NaxRiscv, Preset::Slt);
    configure(&mut sys);
    image.install(&mut sys);
    sys.run(500_000);
    let lat: Vec<u64> = sys.records().iter().skip(4).map(|r| r.latency()).collect();
    (
        LatencyStats::from_latencies(&lat).expect("switches"),
        sys.platform.ctx_queue_stats(),
    )
}

fn main() {
    let mut out = String::new();
    let w = workloads::by_name("roundrobin_yield").expect("exists");

    out.push_str("## Ablation 1: ctxQueue depth (NaxRiscv, SLT, cache-thrashing tasks)\n\n");
    out.push_str(&format!(
        "{:>6} {:>8} {:>8} {:>8} {:>12}\n",
        "depth", "mean", "max", "jitter", "queue_stalls"
    ));
    for depth in [1usize, 2, 4, 8, 16] {
        let (s, q) = thrash_run(|sys| sys.platform.set_ctx_queue_depth(depth));
        out.push_str(&format!(
            "{:>6} {:>8.1} {:>8} {:>8} {:>12}\n",
            depth,
            s.mean,
            s.max,
            s.jitter(),
            q.map(|(_, st)| st).unwrap_or(0)
        ));
    }
    out.push_str(
        "\n(§5.3: the paper finds 8 entries Pareto-optimal. Our thrashing setup\n\
         misses on every line, so capacity beyond 8 still helps a little; with\n\
         the paper's workloads a 31-word context produces only 2-3 outstanding\n\
         misses and the curve saturates at 8 — visible in the collapsing\n\
         queue-full stall counts.)\n\n",
    );

    out.push_str("## Ablation 2: arbitration level (CVA6, SLT)\n\n");
    out.push_str(&format!("{:<22} {:>8} {:>8} {:>8}\n", "arbitration", "mean", "max", "jitter"));
    for (label, shares) in [("bus (bypass cache)", false), ("LSU (share cache)", true)] {
        let r = run_workload_with(CoreKind::Cva6, Preset::Slt, &w, |sys| {
            sys.platform.set_unit_arbitration(shares);
        });
        let s = r.stats().expect("switches");
        out.push_str(&format!(
            "{:<22} {:>8.1} {:>8} {:>8}\n",
            label,
            s.mean,
            s.max,
            s.jitter()
        ));
    }
    out.push_str("\n(§5: sharing the cache trades predictability for mean latency.)\n\n");

    // ---- Ablation 3: delay-list cost vs task count ----------------------
    // All tasks sleep on short periods, so every timer tick walks the
    // delay list and wakes tasks — the task-count-dependent kernel path
    // (the paper's WCET scenario assumes 8 such tasks, §6.2).
    out.push_str("## Ablation 3: tick-switch latency vs periodic task count (CV32E40P)\n\n");
    out.push_str(&format!(
        "{:>6} {:>16} {:>16}\n",
        "tasks", "(vanilla) tick µ", "(T) tick µ"
    ));
    for n in [2usize, 4, 8, 12, 15] {
        let mean = |preset: Preset| {
            let mut k = KernelBuilder::new(preset);
            k.tick_period(2500);
            k.hw_list_len(16);
            for i in 0..n {
                let period = (i % 3 + 1) as u32;
                k.task(&format!("t{i}"), ((i % 6) + 1) as u8, move |t| {
                    t.compute(6);
                    t.delay(period);
                });
            }
            let img = k.build().expect("builds");
            let mut sys = System::new(CoreKind::Cv32e40p, preset);
            if preset.has_sched() {
                sys.set_unit_list_len(16);
            }
            img.install(&mut sys);
            sys.run(400_000);
            let lat: Vec<u64> = sys
                .records()
                .iter()
                .skip(4)
                .filter(|r| r.cause == rvsim_isa::csr::CAUSE_TIMER)
                .map(|r| r.latency())
                .collect();
            LatencyStats::from_latencies(&lat).expect("tick switches").mean
        };
        out.push_str(&format!(
            "{:>6} {:>16.1} {:>16.1}\n",
            n,
            mean(Preset::Vanilla),
            mean(Preset::T)
        ));
    }
    out.push_str(
        "\n(Software tick handling walks the delay list and re-inserts every\n\
         woken task, so the cost grows with the periodic task count; the\n\
         hardware delay list handles expiry in parallel — §4.4/§6.2.)\n",
    );
    rtosunit_bench::emit("ablations.txt", &out);
}
