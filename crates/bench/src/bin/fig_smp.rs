//! SMP contention sweep: context-switch latency vs. core count on the
//! shared memory bus.
//!
//! For every core model and a software-heavy vs. hardware-heavy preset
//! pair, the ping-pong semaphore workload runs on hart 0 of a 1-, 2- and
//! 4-hart [`SmpSystem`](rtosunit::SmpSystem) while the remaining harts
//! pound the shared bus with load/store traffic. Mean latency and jitter
//! per hart count — plus the arbiter's wait-cycle telemetry — quantify
//! how much of the switch path is exposed to bus arbitration, and how
//! much of that exposure the hardware-assisted presets hide (their
//! context traffic moves to the RTOSUnit's dedicated SRAM ports).
//!
//! The machine-readable campaign artifact lands in `results/fig_smp.json`.

use rtosbench::{workloads, CampaignSpec, Json, RunSpec, WorkloadSpec};
use rtosunit::Preset;
use rvsim_check::{run_smp_scenario, smp_scenario_for_seed};
use rvsim_cores::CoreKind;

/// Hart counts of the sweep (1 = the uncontended baseline).
const HART_COUNTS: [usize; 3] = [1, 2, 4];

/// Presets compared: full-software vs. the paper's all-round
/// hardware-assisted configuration.
const PRESETS: [Preset; 2] = [Preset::Vanilla, Preset::Slt];

fn main() {
    let w = workloads::by_name("pingpong_semaphore").expect("suite workload exists");
    let mut spec = CampaignSpec::new("fig_smp")
        .with_telemetry()
        .with_progress();
    for core in CoreKind::ALL {
        for preset in PRESETS {
            for harts in HART_COUNTS {
                spec.runs
                    .push(RunSpec::new(core, preset, WorkloadSpec::Suite(w)).with_harts(harts));
            }
        }
    }
    let mut campaign = spec.run(rtosunit_bench::default_workers());
    let bus = bus_section(&campaign);
    campaign.attach_section("verification", verification_section());
    campaign.attach_section("bus_contention", bus);

    let mut out = String::new();
    out.push_str("# Switch latency vs. cores contending on the shared bus\n");
    out.push_str("# (pingpong_semaphore on hart 0; other harts pound memory)\n\n");
    for core in CoreKind::ALL {
        out.push_str(&format!(
            "## {core}\n| preset | harts | mean | max | jitter | bus wait (hart 0) |\n|---|---|---|---|---|---|\n"
        ));
        for preset in PRESETS {
            let mut base_mean = None;
            for harts in HART_COUNTS {
                let o = campaign
                    .outcomes
                    .iter()
                    .find(|o| o.core == core && o.preset == preset && o.harts == harts)
                    .expect("matrix covers every (core, preset, harts)");
                let sim = o.sim.as_ref().expect("simulated run");
                let s = sim.stats().expect("switches measured");
                let wait = sim.bus.as_ref().map_or(0, |b| b[0].wait_cycles);
                let slowdown = match base_mean {
                    None => {
                        base_mean = Some(s.mean);
                        String::new()
                    }
                    Some(b) if b > 0.0 => format!(" ({:+.1}%)", (s.mean / b - 1.0) * 100.0),
                    Some(_) => String::new(),
                };
                out.push_str(&format!(
                    "| {} | {harts} | {:.1}{slowdown} | {} | {} | {wait} |\n",
                    preset.label(),
                    s.mean,
                    s.max,
                    s.jitter(),
                ));
            }
        }
        out.push('\n');
    }
    out.push_str(&rtosunit_bench::paper_note(&[
        "1 hart reproduces the single-core baseline exactly (lone master never waits)",
        "software-heavy presets expose the most bus wait: every save/restore word arbitrates",
        "hardware-assisted (SLT) context traffic uses the unit's SRAM ports, shrinking the contention delta",
    ]));
    rtosunit_bench::emit("fig_smp.txt", &out);

    match campaign.write_json("results") {
        Ok(path) => println!("# campaign artifact: {}", path.display()),
        Err(e) => eprintln!("# campaign artifact not written: {e}"),
    }
    println!("# {}", campaign.throughput_summary());
}

/// Runs the SMP scheduler oracle on a representative configuration per
/// hart count and exports its coverage counters — the artifact carries
/// its own verification context next to the measured latencies.
fn verification_section() -> Json {
    let mut section = Json::object();
    for harts in HART_COUNTS.iter().filter(|&&h| h > 1) {
        let scenario = smp_scenario_for_seed(CoreKind::Cv32e40p, Preset::Slt, *harts, 7);
        let entry = match run_smp_scenario(&scenario) {
            Ok(stats) => {
                let mut j = Json::object().with("pass", true);
                for (name, value) in stats.named() {
                    j.push(name, value);
                }
                j
            }
            Err(v) => Json::object()
                .with("pass", false)
                .with("violation", v.to_string()),
        };
        section.push(&format!("oracle_{harts}harts"), entry);
    }
    section
}

/// Aggregates every SMP run's per-hart [`BusMasterStats`] into one
/// contention summary: grants and wait cycles summed per hart index,
/// worst-case single wait across the whole campaign.
fn bus_section(campaign: &rtosbench::Campaign) -> Json {
    let max_harts = HART_COUNTS.iter().copied().max().unwrap_or(1);
    let mut grants = vec![0u64; max_harts];
    let mut waits = vec![0u64; max_harts];
    let mut max_wait = vec![0u64; max_harts];
    for sim in campaign.outcomes.iter().filter_map(|o| o.sim.as_ref()) {
        if let Some(bus) = &sim.bus {
            for (h, m) in bus.iter().enumerate() {
                grants[h] += m.grants;
                waits[h] += m.wait_cycles;
                max_wait[h] = max_wait[h].max(m.max_wait);
            }
        }
    }
    Json::object().with(
        "per_hart",
        (0..max_harts)
            .map(|h| {
                Json::object()
                    .with("hart", h)
                    .with("grants", grants[h])
                    .with("wait_cycles", waits[h])
                    .with("max_wait", max_wait[h])
            })
            .collect::<Vec<_>>(),
    )
}
