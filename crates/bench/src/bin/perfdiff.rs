//! Compares two campaign/bench JSON artifacts — the CI regression gate.
//!
//! ```text
//! perfdiff <baseline.json> <current.json> [--tolerance 0.10]
//!          [--no-throughput] [--relative] [--json]
//! ```
//!
//! Exit status: 0 when the gate passes, 1 on a regression or a missing
//! baseline run, 2 on usage/IO/parse errors. `--no-throughput` restricts
//! the diff to deterministic simulated-cycle metrics (the mode used
//! against committed baselines); `--relative` normalises host-dependent
//! throughput by each artifact's geometric mean so a uniformly slower
//! CI machine doesn't trip the gate. `--json` replaces the table with a
//! machine-readable `rtosunit-perfdiff-v1` report.

use rtosbench::{compare, DiffOptions, Json};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: perfdiff <baseline.json> <current.json> \
         [--tolerance FRACTION] [--no-throughput] [--relative] [--json]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut opts = DiffOptions::default();
    let mut as_json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                let Some(t) = args.get(i).and_then(|s| s.parse::<f64>().ok()) else {
                    return usage();
                };
                if !(t.is_finite() && t >= 0.0) {
                    return usage();
                }
                opts.tolerance = t;
            }
            "--no-throughput" => opts.check_throughput = false,
            "--relative" => opts.relative = true,
            "--json" => as_json = true,
            flag if flag.starts_with("--") => return usage(),
            path => paths.push(path.to_string()),
        }
        i += 1;
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        return usage();
    };

    let load = |path: &str| -> Result<Json, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
        Json::parse(&text).map_err(|e| format!("`{path}`: {e}"))
    };
    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("perfdiff: {e}");
            return ExitCode::from(2);
        }
    };

    match compare(&baseline, &current, &opts) {
        Ok(report) => {
            if as_json {
                print!("{}", report.to_json().render());
            } else {
                print!("{}", report.human());
            }
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("perfdiff: {e}");
            ExitCode::from(2)
        }
    }
}
