//! Regenerates Figure 13: average power for the mutex workload at
//! 500 MHz, per core × configuration (activity from actual simulation).

use asic_model::power_report;
use rtosunit::Preset;
use rvsim_cores::CoreKind;

fn main() {
    let mut out = String::new();
    for core in CoreKind::ALL {
        out.push_str(&format!(
            "## {core}: average power, mutex_workload @ 500 MHz (mW)\n\n"
        ));
        out.push_str(&format!(
            "{:<10} {:>8} {:>9} {:>9} {:>8} {:>8}\n",
            "config", "static", "core_dyn", "unit_dyn", "total", "vs_van"
        ));
        let base = power_report(core, Preset::Vanilla).total_mw();
        for preset in Preset::ASIC_SET {
            let r = power_report(core, preset);
            out.push_str(&format!(
                "{:<10} {:>8.2} {:>9.2} {:>9.2} {:>8.2} {:>+7.0}%\n",
                preset.label(),
                r.static_mw,
                r.core_dynamic_mw,
                r.unit_dynamic_mw,
                r.total_mw(),
                (r.total_mw() / base - 1.0) * 100.0
            ));
        }
        out.push('\n');
    }
    out.push_str(&rtosunit_bench::paper_note(&[
        "strong area-power correlation (static power dominates at 22 nm)",
        "CV32E40P: up to +72% relative (SPLIT highest); absolute increases small",
        "CVA6: up to +33%; (S) power close to (CV32RT) with much better latency",
        "NaxRiscv: up to +13% (excluding CV32RT, which is highest there); (T) < 2 mW extra",
    ]));
    rtosunit_bench::emit("fig13_power.txt", &out);
}
