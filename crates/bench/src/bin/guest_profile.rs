//! Cycle-attributed guest PC profile of a workload run — flamegraph
//! input plus the ranked hot-block report.
//!
//! ```text
//! guest_profile [WORKLOAD] [--core NAME] [--preset LABEL] [--harts N] [--blocks]
//! ```
//!
//! Runs the workload with the [`PcProfile`](rvsim_cores::PcProfile)
//! enabled (attribution is issue-time exact — batched and stepwise runs
//! produce bit-identical profiles), then emits:
//!
//! * `results/flamegraph.folded` — folded-stack lines, one per basic
//!   block, ready for `flamegraph.pl` / speedscope / inferno;
//! * `results/guest_profile.txt` — the ranked hot-block table that
//!   seeded the translation-cache work (ROADMAP item 1).
//!
//! With `--blocks` the run executes through the block translation cache
//! (simulated timing and the profile are bit-identical either way) and
//! the hot-block table gains per-block cache columns: dispatches, hit
//! rate, fused macro-ops and retranslations. Single-hart only — the SMP
//! path steps per-cycle, where the cache is inert.
//!
//! With `--harts N` (N > 1) the workload runs on hart 0 of an
//! [`SmpSystem`](rtosunit::SmpSystem) while the other harts pound the
//! shared bus; every hart is profiled, and the folded output keeps one
//! root per hart so the flamegraph shows per-hart attribution
//! side by side.

use rtosbench::workloads;
use rtosunit::{Preset, SmpSystem, System};
use rvsim_cores::{hot_block_report, hot_block_report_with_blocks, CoreKind, PcProfile};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: guest_profile [WORKLOAD] [--core NAME] [--preset LABEL] [--harts N] [--blocks]"
    );
    eprintln!(
        "  workloads: {}",
        names(workloads::ALL.iter().map(|w| w.name))
    );
    eprintln!(
        "  cores:     {}",
        names(CoreKind::ALL.iter().map(|c| c.name()))
    );
    eprintln!(
        "  presets:   {}",
        Preset::LATENCY_SET
            .iter()
            .map(|p| plain_label(*p))
            .collect::<Vec<_>>()
            .join(", ")
    );
    ExitCode::from(2)
}

/// Preset label without the paper's parentheses, e.g. `(SLT)` → `SLT` —
/// friendlier on a command line.
fn plain_label(p: Preset) -> String {
    p.label().trim_matches(['(', ')']).to_string()
}

fn names<'a>(it: impl Iterator<Item = &'a str>) -> String {
    it.collect::<Vec<_>>().join(", ")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload = "interrupt_latency".to_string();
    let mut core = CoreKind::Cv32e40p;
    let mut preset = Preset::Slt;
    let mut harts = 1usize;
    let mut blocks = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--blocks" => blocks = true,
            "--core" => {
                i += 1;
                let Some(c) = args
                    .get(i)
                    .and_then(|n| CoreKind::ALL.into_iter().find(|c| c.name() == n))
                else {
                    return usage();
                };
                core = c;
            }
            "--preset" => {
                i += 1;
                let Some(p) = args.get(i).and_then(|n| {
                    Preset::LATENCY_SET
                        .into_iter()
                        .find(|p| plain_label(*p).eq_ignore_ascii_case(n))
                }) else {
                    return usage();
                };
                preset = p;
            }
            "--harts" => {
                i += 1;
                let Some(h) = args.get(i).and_then(|s| s.parse::<usize>().ok()) else {
                    return usage();
                };
                if h == 0 {
                    return usage();
                }
                harts = h;
            }
            flag if flag.starts_with("--") => return usage(),
            name => workload = name.to_string(),
        }
        i += 1;
    }
    let Some(w) = workloads::by_name(&workload) else {
        eprintln!("guest_profile: unknown workload `{workload}`");
        return usage();
    };
    let image = workloads::build(&w, preset).expect("workload builds");

    let mut folded = String::new();
    let mut report = format!(
        "# Guest PC profile: {workload} on {core}/{} ({} harts)\n\n",
        preset.label(),
        harts
    );
    if harts == 1 {
        let mut sys = System::new(core, preset);
        image.install(&mut sys);
        sys.set_profiling(true);
        sys.set_block_cache(blocks);
        if w.ext_irq_interval > 0 {
            let mut at = w.ext_irq_interval;
            while at < w.run_cycles {
                sys.schedule_external_irq(at);
                at += w.ext_irq_interval;
            }
        }
        sys.run(w.run_cycles);
        let profile = sys.take_profile().expect("profiling was enabled");
        append_hart(&mut folded, &mut report, &mut sys, &profile, 0, blocks);
    } else {
        if blocks {
            eprintln!("guest_profile: --blocks is single-hart only (SMP steps per-cycle)");
            return usage();
        }
        let mut smp = SmpSystem::new(core, preset, harts);
        image.install(smp.hart_mut(0));
        let pounder = contention_echo();
        for h in 1..harts {
            smp.load_program(h, &pounder);
        }
        smp.set_profiling(true);
        smp.run(w.run_cycles);
        let profiles = smp.take_profiles();
        for (h, profile) in profiles.iter().enumerate() {
            let profile = profile.as_ref().expect("profiling was enabled");
            append_hart(&mut folded, &mut report, smp.hart_mut(h), profile, h, false);
        }
    }

    let dir = std::path::Path::new("results");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("guest_profile: cannot create results/: {e}");
        return ExitCode::from(2);
    }
    let folded_path = dir.join("flamegraph.folded");
    let report_path = dir.join("guest_profile.txt");
    if let Err(e) =
        std::fs::write(&folded_path, &folded).and_then(|()| std::fs::write(&report_path, &report))
    {
        eprintln!("guest_profile: write failed: {e}");
        return ExitCode::from(2);
    }
    print!("{report}");
    println!("# folded stacks: {}", folded_path.display());
    println!("# hot-block report: {}", report_path.display());
    ExitCode::SUCCESS
}

/// Appends one hart's folded stacks and hot-block table — with the
/// per-block translation-cache columns when the cache was enabled.
fn append_hart(
    folded: &mut String,
    report: &mut String,
    sys: &mut System,
    profile: &PcProfile,
    hart: usize,
    block_cache: bool,
) {
    let root = format!("hart{hart}");
    folded.push_str(&sys.core.folded_profile(profile, &root));
    let blocks = sys.core.hot_blocks(profile);
    report.push_str(&format!("## {root}\n\n"));
    if block_cache {
        report.push_str(&hot_block_report_with_blocks(
            profile,
            &blocks,
            10,
            |start, end| sys.core.block_stats_in(start, end),
        ));
    } else {
        report.push_str(&hot_block_report(profile, &blocks, 10));
    }
    report.push('\n');
}

/// The same cache-defeating pounder the campaign layer uses for its SMP
/// contention axis (private DMEM walk, pure shared-bus pressure).
fn contention_echo() -> rvsim_isa::Program {
    use rvsim_isa::{Asm, Reg};
    let mut a = Asm::new(rtosunit::layout::IMEM_BASE);
    a.li(Reg::T4, 4096);
    a.label("pound");
    a.li(Reg::T2, rtosunit::layout::DMEM_BASE as i32);
    a.li(Reg::T1, 8);
    a.label("slot");
    a.sw(Reg::T3, 0, Reg::T2);
    a.lw(Reg::T3, 4, Reg::T2);
    a.add(Reg::T2, Reg::T2, Reg::T4);
    a.addi(Reg::T1, Reg::T1, -1);
    a.bne(Reg::T1, Reg::Zero, "slot");
    a.j("pound");
    a.finish().expect("contention program assembles")
}
