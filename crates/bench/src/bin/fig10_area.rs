//! Regenerates Figure 10: normalized ASIC area per core × configuration,
//! with absolute totals, from the structural cost model.

use asic_model::area_report;
use rtosunit::Preset;
use rvsim_cores::CoreKind;

fn main() {
    let mut out = String::new();
    for core in CoreKind::ALL {
        out.push_str(&format!("## {core}: area (µm², 22 nm-class model)\n\n"));
        out.push_str(&format!(
            "{:<10} {:>12} {:>12} {:>10}\n",
            "config", "total_um2", "added_um2", "overhead"
        ));
        for preset in Preset::ASIC_SET {
            let r = area_report(core, preset);
            out.push_str(&format!(
                "{:<10} {:>12.0} {:>12.0} {:>9.1}%\n",
                preset.label(),
                r.total_um2(),
                r.added_um2(),
                r.overhead() * 100.0
            ));
        }
        out.push('\n');
        // Itemised components of the full configuration.
        let split = area_report(core, Preset::Split);
        out.push_str(&format!("components of {} (SPLIT):\n", core));
        for (name, a) in &split.components {
            out.push_str(&format!("  {name:<38} {a:>8.0} µm²\n"));
        }
        out.push('\n');
    }
    out.push_str(&rtosunit_bench::paper_note(&[
        "CV32E40P: S +21.9%, CV32RT +21.2%, T ~0 (tool noise), ST +33%, SLT ~+31..33%, SPLIT +44%",
        "CVA6: S +3..5%, CV32RT +2%, advanced configs up to +8%, SPLIT +14%",
        "NaxRiscv: S +15%, CV32RT +19% (16 extra read ports), accel ~+13%, SPLIT ~+15%",
        "dirty bits within EDA heuristics noise on every core",
    ]));
    rtosunit_bench::emit("fig10_area.txt", &out);
}
