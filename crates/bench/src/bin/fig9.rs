//! Regenerates Figure 9: context-switch latency (mean µ) and jitter (Δ)
//! for every core × configuration over the RTOSBench-style suite.

use rtosbench::{report, run_suite, run_workload, workloads};
use rtosunit::trace;
use rvsim_cores::CoreKind;

fn main() {
    let mut out = String::new();
    for core in CoreKind::ALL {
        let rows: Vec<_> = rtosunit_bench::latency_presets()
            .into_iter()
            .map(|p| run_suite(core, p))
            .collect();
        out.push_str(&report::fig9_table(core.name(), &rows));
        out.push('\n');
        for r in &rows {
            out.push_str(&report::workload_breakdown(r));
        }
        // Per-cause breakdown for the paper's all-round configuration:
        // the cause-dispatch paths differ in length, which is where the
        // residual (SLT) jitter lives.
        let w = workloads::by_name("interrupt_latency").expect("exists");
        let slt = run_workload(core, rtosunit::Preset::Slt, &w);
        out.push_str(&format!("### {core} (SLT) per-cause (interrupt_latency)\n"));
        out.push_str(&trace::summary_table(&slt.records));
        out.push('\n');
    }
    out.push_str(&rtosunit_bench::paper_note(&[
        "CV32RT: mean -3%..-12% vs vanilla; jitter comparable",
        "S: mean -17%..-27%",
        "T: mean -23% (CV32E40P), -29% (CVA6), -9% (NaxRiscv); CV32E40P jitter 188 -> 16",
        "SLT: zero jitter on CV32E40P (latency 70); jitter -88% on CVA6/NaxRiscv",
        "SDLO ~ SL (sw scheduling dominates); SDLOT adds jitter, some cases < 50 cycles",
        "SPLIT: lowest mean (bimodal: correct preloads save up to 31 cycles vs SLT)",
    ]));
    rtosunit_bench::emit("fig9.txt", &out);
}
