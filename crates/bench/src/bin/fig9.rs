//! Regenerates Figure 9: context-switch latency (mean µ) and jitter (Δ)
//! for every core × configuration over the RTOSBench-style suite.
//!
//! The full `cores × presets × workloads` matrix is declared as one
//! [`CampaignSpec`] and executed in parallel; the human-readable tables
//! are derived from the in-memory outcomes and the machine-readable
//! artifact lands in `results/fig9.json`.
//!
//! `--quick` restricts the matrix to one core (CI smoke; artifact
//! `results/fig9_quick.json` so the full figure is never clobbered).
//! `--blocks` executes every run through the block translation cache —
//! the tables and artifact must come out identical (host-side speedup
//! only), which is exactly what the CI smoke pass checks.

use rtosbench::{report, workloads, Campaign, CampaignSpec, Fig9Row};
use rtosunit::{trace, LatencyStats, Preset};
use rvsim_cores::CoreKind;

/// Pools a `(core, preset)` row from the campaign's per-workload
/// outcomes, exactly as the sequential `run_suite` does.
fn pool_row(campaign: &Campaign, core: CoreKind, preset: Preset) -> Fig9Row {
    let mut pooled = Vec::new();
    let mut per_workload = Vec::new();
    for w in workloads::ALL {
        let label = format!("{}/{}/{}", core.name(), preset.label(), w.name);
        let sim = campaign
            .find(&label)
            .and_then(|o| o.sim.as_ref())
            .expect("matrix covers every (core, preset, workload)");
        if let Some(s) = sim.stats() {
            per_workload.push((w.name, s));
        }
        pooled.extend_from_slice(&sim.latencies);
    }
    let stats = LatencyStats::from_latencies(&pooled).expect("suite produced no context switches");
    Fig9Row {
        core,
        preset,
        stats,
        per_workload,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let blocks = std::env::args().any(|a| a == "--blocks");
    let presets = rtosunit_bench::latency_presets();
    let cores: &[CoreKind] = if quick {
        &CoreKind::ALL[..1]
    } else {
        &CoreKind::ALL
    };
    let name = if quick { "fig9_quick" } else { "fig9" };
    let mut spec = CampaignSpec::matrix(name, cores, &presets, &workloads::ALL);
    for run in &mut spec.runs {
        run.blocks = blocks;
    }
    let campaign = spec.run(rtosunit_bench::default_workers());

    let mut out = String::new();
    for &core in cores {
        let rows: Vec<_> = presets
            .iter()
            .map(|&p| pool_row(&campaign, core, p))
            .collect();
        out.push_str(&report::fig9_table(core.name(), &rows));
        out.push('\n');
        for r in &rows {
            out.push_str(&report::workload_breakdown(r));
        }
        // Per-cause breakdown for the paper's all-round configuration:
        // the cause-dispatch paths differ in length, which is where the
        // residual (SLT) jitter lives.
        let label = format!("{}/{}/interrupt_latency", core.name(), Preset::Slt.label());
        let slt = campaign
            .find(&label)
            .and_then(|o| o.sim.as_ref())
            .expect("SLT interrupt_latency is in the matrix");
        out.push_str(&format!("### {core} (SLT) per-cause (interrupt_latency)\n"));
        out.push_str(&trace::summary_table(&slt.records));
        out.push('\n');
    }
    out.push_str(&rtosunit_bench::paper_note(&[
        "CV32RT: mean -3%..-12% vs vanilla; jitter comparable",
        "S: mean -17%..-27%",
        "T: mean -23% (CV32E40P), -29% (CVA6), -9% (NaxRiscv); CV32E40P jitter 188 -> 16",
        "SLT: zero jitter on CV32E40P (latency 70); jitter -88% on CVA6/NaxRiscv",
        "SDLO ~ SL (sw scheduling dominates); SDLOT adds jitter, some cases < 50 cycles",
        "SPLIT: lowest mean (bimodal: correct preloads save up to 31 cycles vs SLT)",
    ]));
    rtosunit_bench::emit(if quick { "fig9_quick.txt" } else { "fig9.txt" }, &out);

    match campaign.write_json("results") {
        Ok(path) => println!("# campaign artifact: {}", path.display()),
        Err(e) => eprintln!("# campaign artifact not written: {e}"),
    }
    println!("# {}", campaign.throughput_summary());
}
