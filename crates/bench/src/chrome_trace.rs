//! Chrome trace-event JSON export — load the output in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing` to see switch
//! episodes, ISR phases and microarchitectural events on one timeline.
//!
//! The converter maps one simulated cycle to one microsecond of trace
//! time (Perfetto has no "cycles" unit; the scale is irrelevant for
//! inspection). Three tracks are emitted:
//!
//! * `episodes` — one complete (`"X"`) slice per switch episode,
//!   trigger→`mret`, named by interrupt cause,
//! * `phases` — nested slices for the non-empty waterfall phases
//!   (entry/save/sched/restore),
//! * `events` — instant (`"i"`) markers for the typed [`TraceEvent`]s,
//!   plus counter (`"C"`) series for cache hit/miss and unit traffic.
//!
//! [`chrome_trace_smp`] emits the same three tracks **per hart** of an
//! SMP run (`hart0 episodes`, `hart0 phases`, … with disjoint thread
//! ids and per-hart counter names), so cross-core cause/effect — an IPI
//! sent on one hart waking a task on another — reads off one timeline.

use rtosbench::json::Json;
use rtosunit::waterfall::{EpisodeWaterfall, PHASE_NAMES};
use rtosunit::{EventTrace, TraceEvent};
use rvsim_isa::csr;

/// Process id used for every emitted event (one simulated system).
const PID: u64 = 1;
/// Track of whole switch episodes.
const TID_EPISODES: u64 = 1;
/// Track of waterfall phases.
const TID_PHASES: u64 = 2;
/// Track of instant events.
const TID_EVENTS: u64 = 3;

fn base(name: &str, ph: &str, tid: u64, ts: u64) -> Json {
    Json::object()
        .with("name", name)
        .with("ph", ph)
        .with("pid", PID)
        .with("tid", tid)
        .with("ts", ts)
}

fn complete(name: &str, tid: u64, ts: u64, dur: u64) -> Json {
    base(name, "X", tid, ts).with("dur", dur)
}

fn instant(name: &str, tid: u64, ts: u64) -> Json {
    base(name, "i", tid, ts).with("s", "t")
}

fn thread_name(tid: u64, name: &str) -> Json {
    Json::object()
        .with("name", "thread_name")
        .with("ph", "M")
        .with("pid", PID)
        .with("tid", tid)
        .with("args", Json::object().with("name", name))
}

fn cause_name(cause: u32) -> &'static str {
    match cause {
        csr::CAUSE_SOFTWARE => "switch (software)",
        csr::CAUSE_TIMER => "switch (timer)",
        csr::CAUSE_EXTERNAL => "switch (external)",
        _ => "switch (other)",
    }
}

/// Converts one traced run into a Chrome trace-event document.
///
/// `label` names the process in the viewer (e.g. `cva6/SLT/workload`).
/// Ring-buffer truncation is surfaced as `otherData.dropped_events`.
pub fn chrome_trace(label: &str, trace: &EventTrace, episodes: &[EpisodeWaterfall]) -> Json {
    let mut events = vec![Json::object()
        .with("name", "process_name")
        .with("ph", "M")
        .with("pid", PID)
        .with("args", Json::object().with("name", label))];
    emit_hart(&mut events, "", 0, trace, episodes);
    let dropped = trace.dropped();
    document(label, events, dropped, None)
}

/// Converts one traced SMP run — one `(trace, episodes)` pair per hart —
/// into a single Chrome trace-event document with per-hart thread
/// tracks (`hartN episodes` / `hartN phases` / `hartN events`), so all
/// harts line up on one Perfetto timeline.
pub fn chrome_trace_smp(label: &str, harts: &[(EventTrace, Vec<EpisodeWaterfall>)]) -> Json {
    let mut events = vec![Json::object()
        .with("name", "process_name")
        .with("ph", "M")
        .with("pid", PID)
        .with("args", Json::object().with("name", label))];
    let mut dropped = 0;
    for (h, (trace, episodes)) in harts.iter().enumerate() {
        emit_hart(
            &mut events,
            &format!("hart{h} "),
            (h as u64) * 3,
            trace,
            episodes,
        );
        dropped += trace.dropped();
    }
    document(label, events, dropped, Some(harts.len()))
}

fn document(label: &str, events: Vec<Json>, dropped: u64, harts: Option<usize>) -> Json {
    let mut other = Json::object()
        .with("schema", "rtosunit-chrome-trace-v1")
        .with("label", label)
        .with("cycles_per_us", 1u64)
        .with("dropped_events", dropped);
    if let Some(n) = harts {
        other.push("harts", n);
    }
    Json::object()
        .with("traceEvents", Json::Array(events))
        .with("displayTimeUnit", "ns")
        .with("otherData", other)
}

/// Emits one hart's three tracks. `prefix` is empty for the single-core
/// export (keeping its historical track and counter names) and
/// `"hartN "` for SMP exports; `tid_base` keeps per-hart thread ids
/// disjoint.
fn emit_hart(
    events: &mut Vec<Json>,
    prefix: &str,
    tid_base: u64,
    trace: &EventTrace,
    episodes: &[EpisodeWaterfall],
) {
    events.push(thread_name(
        tid_base + TID_EPISODES,
        &format!("{prefix}episodes"),
    ));
    events.push(thread_name(
        tid_base + TID_PHASES,
        &format!("{prefix}phases"),
    ));
    events.push(thread_name(
        tid_base + TID_EVENTS,
        &format!("{prefix}events"),
    ));

    for e in episodes {
        let b = e.boundaries();
        events.push(
            complete(
                cause_name(e.record.cause),
                tid_base + TID_EPISODES,
                b[0],
                e.record.latency(),
            )
            .with(
                "args",
                Json::object()
                    .with("cause", e.record.cause)
                    .with("latency", e.record.latency()),
            ),
        );
        for (i, name) in PHASE_NAMES.iter().enumerate() {
            if e.phases[i] > 0 {
                events.push(complete(name, tid_base + TID_PHASES, b[i], e.phases[i]));
            }
        }
    }

    let tid = tid_base + TID_EVENTS;
    let (mut hits, mut misses) = (0u64, 0u64);
    let (mut stores, mut loads) = (0u64, 0u64);
    for (cycle, ev) in trace.iter() {
        match ev {
            TraceEvent::IrqRaised { cause } => events.push(
                instant("irq_raised", tid, cycle).with("args", Json::object().with("cause", cause)),
            ),
            TraceEvent::IsrEntry { cause } => events.push(
                instant("isr_entry", tid, cycle).with("args", Json::object().with("cause", cause)),
            ),
            TraceEvent::Phase(code) => events.push(instant(code.name(), tid, cycle)),
            TraceEvent::MretRetired => events.push(instant("mret", tid, cycle)),
            TraceEvent::GuestMark { value } => events.push(
                instant("guest_mark", tid, cycle).with("args", Json::object().with("value", value)),
            ),
            TraceEvent::Halted => events.push(instant("halted", tid, cycle)),
            TraceEvent::CacheAccess { hit, .. } => {
                if hit {
                    hits += 1;
                } else {
                    misses += 1;
                }
                events.push(base(&format!("{prefix}cache"), "C", 0, cycle).with(
                    "args",
                    Json::object().with("hits", hits).with("misses", misses),
                ));
            }
            TraceEvent::UnitOp { write } => {
                if write {
                    stores += 1;
                } else {
                    loads += 1;
                }
                events.push(base(&format!("{prefix}unit_words"), "C", 0, cycle).with(
                    "args",
                    Json::object().with("stores", stores).with("loads", loads),
                ));
            }
            TraceEvent::FaultInjected { code } => events.push(
                instant("fault_injected", tid, cycle).with(
                    "args",
                    Json::object()
                        .with("code", code)
                        .with("kind", rvsim_cores::fault_code_name(code)),
                ),
            ),
            TraceEvent::FaultDetected { detector } => events.push(
                instant("fault_detected", tid, cycle).with(
                    "args",
                    Json::object()
                        .with("detector", detector)
                        .with("name", rtosunit::events::detector_name(detector)),
                ),
            ),
        }
    }
}

/// Structural self-validation of an emitted trace document, run by the
/// `trace_dump` smoke test on its own output:
///
/// 1. **Timestamps are monotone per track** — within each `(pid, tid)`
///    track (and each named counter series, which share tid 0 across
///    harts), `ts` never goes backwards in emission order, so Perfetto's
///    slice nesting is well-defined.
/// 2. **Phase widths tile every episode** — for each episode slice, the
///    phase slices on its companion `phases` track that start inside it
///    sum exactly to the episode's duration: the emitted JSON itself
///    upholds the waterfall invariant, not just the in-memory episodes
///    it was rendered from.
///
/// # Errors
///
/// Returns a description of the first violated invariant (event index,
/// track and values) — the callers `assert!` on it.
pub fn validate(doc: &Json) -> Result<(), String> {
    use std::collections::HashMap;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .ok_or_else(|| "document has no traceEvents array".to_string())?;
    let mut last_ts: HashMap<(u64, u64, String), u64> = HashMap::new();
    let mut episodes: Vec<(u64, u64, u64)> = Vec::new();
    let mut phases: HashMap<u64, Vec<(u64, u64)>> = HashMap::new();
    for (i, e) in events.iter().enumerate() {
        let ph = e.get("ph").and_then(Json::as_str).unwrap_or("");
        if ph == "M" {
            continue; // metadata carries no timestamp
        }
        let pid = e.get("pid").and_then(Json::as_u64).unwrap_or(0);
        let tid = e.get("tid").and_then(Json::as_u64).unwrap_or(0);
        let ts = e
            .get("ts")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i} (ph `{ph}`) has no integer ts"))?;
        // Counter series share tid 0 across harts; their name is the track.
        let series = if ph == "C" {
            e.get("name")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string()
        } else {
            String::new()
        };
        let key = (pid, tid, series);
        if let Some(&prev) = last_ts.get(&key) {
            if ts < prev {
                return Err(format!(
                    "event {i}: ts {ts} goes backwards on track pid {pid} tid {tid} (previous {prev})"
                ));
            }
        }
        last_ts.insert(key, ts);
        if ph == "X" {
            let dur = e
                .get("dur")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("event {i}: complete slice without dur"))?;
            // Track layout: tid_base = 3·hart, episodes = base+1, phases
            // = base+2 — so the residue mod 3 identifies the track kind.
            if tid % 3 == TID_EPISODES {
                episodes.push((tid, ts, dur));
            } else if tid % 3 == TID_PHASES {
                phases.entry(tid).or_default().push((ts, dur));
            }
        }
    }
    if episodes.is_empty() {
        return Err("trace contains no switch-episode slices".to_string());
    }
    for (tid, ts, latency) in episodes {
        let sum: u64 = phases
            .get(&(tid + 1))
            .map(|v| {
                v.iter()
                    .filter(|(pts, _)| *pts >= ts && *pts < ts + latency.max(1))
                    .map(|(_, dur)| dur)
                    .sum()
            })
            .unwrap_or(0);
        if sum != latency {
            return Err(format!(
                "episode at ts {ts} (tid {tid}): phase widths sum to {sum}, episode latency is {latency}"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtosunit::waterfall::decompose;
    use rtosunit::{PhaseCode, SwitchRecord, TraceMark, TraceSink};

    fn sample() -> (EventTrace, Vec<EpisodeWaterfall>) {
        let mut t = EventTrace::new(64);
        t.record(
            100,
            TraceEvent::IrqRaised {
                cause: csr::CAUSE_TIMER,
            },
        );
        t.record(
            110,
            TraceEvent::IsrEntry {
                cause: csr::CAUSE_TIMER,
            },
        );
        t.record(
            115,
            TraceEvent::CacheAccess {
                hit: false,
                write: false,
            },
        );
        t.record(140, TraceEvent::Phase(PhaseCode::SaveDone));
        t.record(170, TraceEvent::Phase(PhaseCode::SchedDone));
        t.record(200, TraceEvent::MretRetired);
        t.record(210, TraceEvent::UnitOp { write: true });
        let records = [SwitchRecord {
            trigger_cycle: 100,
            entry_cycle: 110,
            mret_cycle: 200,
            cause: csr::CAUSE_TIMER,
        }];
        let marks = [
            TraceMark {
                cycle: 140,
                code: PhaseCode::SaveDone.encode(),
            },
            TraceMark {
                cycle: 170,
                code: PhaseCode::SchedDone.encode(),
            },
        ];
        (t, decompose(&records, &marks))
    }

    #[test]
    fn document_is_valid_json_with_all_tracks() {
        let (trace, episodes) = sample();
        let doc = chrome_trace("test", &trace, &episodes);
        let parsed = Json::parse(&doc.render()).expect("emitted JSON parses");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        for required in [
            "irq_raised",
            "isr_entry",
            "save_done",
            "sched_done",
            "mret",
            "cache",
            "unit_words",
            "switch (timer)",
            "entry",
            "save",
            "sched",
            "restore",
        ] {
            assert!(names.contains(&required), "missing `{required}`: {names:?}");
        }
        // Every phase slice must carry a duration and land inside the
        // episode span.
        for e in events {
            if e.get("ph").and_then(Json::as_str) == Some("X") {
                assert!(e.get("dur").and_then(Json::as_u64).is_some());
            }
        }
    }

    #[test]
    fn smp_document_has_per_hart_tracks() {
        let (t0, e0) = sample();
        let (t1, e1) = sample();
        let doc = chrome_trace_smp("smp-test", &[(t0, e0), (t1, e1)]);
        let parsed = Json::parse(&doc.render()).expect("emitted JSON parses");
        assert_eq!(
            parsed
                .get("otherData")
                .and_then(|o| o.get("harts"))
                .and_then(Json::as_u64),
            Some(2)
        );
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_array)
            .expect("traceEvents array");
        let track_names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("name").and_then(Json::as_str) == Some("thread_name"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
            })
            .collect();
        for required in [
            "hart0 episodes",
            "hart0 phases",
            "hart0 events",
            "hart1 episodes",
            "hart1 phases",
            "hart1 events",
        ] {
            assert!(
                track_names.contains(&required),
                "missing track `{required}`: {track_names:?}"
            );
        }
        // Hart 1's slices land on its own thread ids, and its counters
        // carry a hart-qualified name so Perfetto keeps the series apart.
        let names: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("name").and_then(Json::as_str))
            .collect();
        assert!(names.contains(&"hart0 cache"), "{names:?}");
        assert!(names.contains(&"hart1 unit_words"), "{names:?}");
        assert!(events.iter().any(|e| {
            e.get("tid").and_then(Json::as_u64) == Some(3 + TID_EPISODES)
                && e.get("ph").and_then(Json::as_str) == Some("X")
        }));
    }

    #[test]
    fn validate_accepts_emitted_documents_and_rejects_tampering() {
        let (trace, episodes) = sample();
        let doc = chrome_trace("test", &trace, &episodes);
        validate(&doc).expect("single-core document validates");
        let (t0, e0) = sample();
        let (t1, e1) = sample();
        let smp = chrome_trace_smp("smp-test", &[(t0, e0), (t1, e1)]);
        validate(&smp).expect("SMP document validates");

        // Shrink one phase slice: the tiling invariant must trip.
        let mut broken = doc.clone();
        if let Some(Json::Array(events)) = broken_events(&mut broken) {
            let phase = events
                .iter_mut()
                .find(|e| {
                    e.get("tid").and_then(Json::as_u64) == Some(TID_PHASES)
                        && e.get("ph").and_then(Json::as_str) == Some("X")
                })
                .expect("a phase slice exists");
            set_key(phase, "dur", Json::UInt(1));
        }
        let err = validate(&broken).expect_err("tampered dur must fail");
        assert!(err.contains("phase widths sum"), "{err}");

        // Rewind one event's timestamp: monotonicity must trip.
        let mut rewound = chrome_trace("test", &sample().0, &sample().1);
        if let Some(Json::Array(events)) = broken_events(&mut rewound) {
            let last_instant = events
                .iter_mut()
                .rev()
                .find(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
                .expect("an instant event exists");
            set_key(last_instant, "ts", Json::UInt(0));
        }
        let err = validate(&rewound).expect_err("rewound ts must fail");
        assert!(err.contains("goes backwards"), "{err}");
    }

    /// Mutable access to a document's `traceEvents` array.
    fn broken_events(doc: &mut Json) -> Option<&mut Json> {
        match doc {
            Json::Object(pairs) => pairs
                .iter_mut()
                .find(|(k, _)| k == "traceEvents")
                .map(|(_, v)| v),
            _ => None,
        }
    }

    /// Overwrites `key` in an event object.
    fn set_key(event: &mut Json, key: &str, value: Json) {
        if let Json::Object(pairs) = event {
            for (k, v) in pairs.iter_mut() {
                if k == key {
                    *v = value;
                    return;
                }
            }
        }
        panic!("event has no `{key}` field");
    }

    #[test]
    fn phase_slices_tile_the_episode() {
        let (trace, episodes) = sample();
        let doc = chrome_trace("test", &trace, &episodes);
        let rendered = doc.render();
        let parsed = Json::parse(&rendered).expect("parses");
        let events = parsed.get("traceEvents").and_then(Json::as_array).unwrap();
        let phase_dur: u64 = events
            .iter()
            .filter(|e| {
                e.get("tid").and_then(Json::as_u64) == Some(TID_PHASES)
                    && e.get("ph").and_then(Json::as_str) == Some("X")
            })
            .filter_map(|e| e.get("dur").and_then(Json::as_u64))
            .sum();
        assert_eq!(phase_dur, episodes[0].record.latency());
    }
}
