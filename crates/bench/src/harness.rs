//! A minimal, dependency-free benchmark harness.
//!
//! Replaces the Criterion benches so the suite builds fully offline: each
//! `benches/*.rs` target (`harness = false`) builds a [`Bench`] group,
//! measures named closures with auto-calibrated iteration counts, prints a
//! table, and writes a machine-readable `results/BENCH_<group>.json`
//! through the campaign layer's [`Json`] writer — the same artifact format
//! the figure campaigns use, so BENCH trajectories and figure data are
//! consumed identically.

use rtosbench::Json;
use std::hint::black_box;
use std::time::Instant;

/// Target host time per measurement once calibrated.
const TARGET_NANOS: u128 = 200_000_000;
/// Iteration bounds after calibration.
const MIN_ITERS: u64 = 3;
const MAX_ITERS: u64 = 100_000;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name within the group.
    pub name: String,
    /// Iterations measured (after calibration).
    pub iters: u64,
    /// Total measured host nanoseconds.
    pub total_nanos: u128,
    /// Derived nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Optional throughput: `(units per iteration, unit name)` — e.g.
    /// simulated cycles, instructions.
    pub throughput: Option<(f64, &'static str)>,
}

impl Measurement {
    /// Units per second, when a throughput was declared.
    pub fn per_second(&self) -> Option<f64> {
        let (units, _) = self.throughput?;
        if self.total_nanos == 0 {
            return None;
        }
        Some(units * self.iters as f64 / (self.total_nanos as f64 / 1e9))
    }
}

/// A named group of benchmarks; construct, `measure`, then [`finish`](Bench::finish).
pub struct Bench {
    group: &'static str,
    measurements: Vec<Measurement>,
}

impl Bench {
    /// Creates an empty group.
    pub fn new(group: &'static str) -> Bench {
        Bench {
            group,
            measurements: Vec::new(),
        }
    }

    /// Measures `f`, auto-calibrating the iteration count toward
    /// ~0.2 s of host time (bounded to `[3, 100 000]` iterations).
    pub fn measure<T>(&mut self, name: impl Into<String>, f: impl FnMut() -> T) {
        self.measure_with_throughput(name, None, f);
    }

    /// As [`measure`](Self::measure), declaring that each iteration
    /// processes `units` of `unit` (e.g. simulated cycles) so the report
    /// includes a rate.
    pub fn throughput<T>(
        &mut self,
        name: impl Into<String>,
        units: f64,
        unit: &'static str,
        f: impl FnMut() -> T,
    ) {
        self.measure_with_throughput(name, Some((units, unit)), f);
    }

    fn measure_with_throughput<T>(
        &mut self,
        name: impl Into<String>,
        throughput: Option<(f64, &'static str)>,
        mut f: impl FnMut() -> T,
    ) {
        // Calibration: one untimed warm-up run sizes the measured batch.
        let warmup = Instant::now();
        black_box(f());
        let once = warmup.elapsed().as_nanos().max(1);
        let iters = u64::try_from(TARGET_NANOS / once)
            .unwrap_or(MAX_ITERS)
            .clamp(MIN_ITERS, MAX_ITERS);

        let started = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total_nanos = started.elapsed().as_nanos();
        self.measurements.push(Measurement {
            name: name.into(),
            iters,
            total_nanos,
            ns_per_iter: total_nanos as f64 / iters as f64,
            throughput,
        });
    }

    /// Records an externally measured result (used when the benchmark
    /// body manages its own timing, e.g. a whole campaign run).
    pub fn record(
        &mut self,
        name: impl Into<String>,
        total_nanos: u128,
        throughput: Option<(f64, &'static str)>,
    ) {
        self.measurements.push(Measurement {
            name: name.into(),
            iters: 1,
            total_nanos,
            ns_per_iter: total_nanos as f64,
            throughput,
        });
    }

    /// The measurements so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Prints the group table and writes `results/BENCH_<group>.json`.
    pub fn finish(self) {
        let mut table = format!("## BENCH {}\n\n", self.group);
        table.push_str(&format!(
            "{:<40} {:>10} {:>14} {:>16}\n",
            "name", "iters", "ns/iter", "throughput"
        ));
        for m in &self.measurements {
            let rate = match (m.per_second(), m.throughput) {
                (Some(r), Some((_, unit))) => format!("{:.2} M{unit}/s", r / 1e6),
                _ => "-".to_string(),
            };
            table.push_str(&format!(
                "{:<40} {:>10} {:>14.1} {:>16}\n",
                m.name, m.iters, m.ns_per_iter, rate
            ));
        }
        println!("{table}");

        let runs: Vec<Json> = self
            .measurements
            .iter()
            .map(|m| {
                let mut j = Json::object()
                    .with("name", m.name.as_str())
                    .with("iters", m.iters)
                    .with("total_nanos", m.total_nanos as u64)
                    .with("ns_per_iter", m.ns_per_iter);
                match (m.per_second(), m.throughput) {
                    (Some(r), Some((units, unit))) => {
                        j.push("unit", unit);
                        j.push("units_per_iter", units);
                        j.push("units_per_second", r);
                    }
                    _ => {
                        j.push("unit", Json::Null);
                        j.push("units_per_iter", Json::Null);
                        j.push("units_per_second", Json::Null);
                    }
                }
                j
            })
            .collect();
        let doc = Json::object()
            .with("schema", "rtosunit-bench-v1")
            .with("group", self.group)
            .with("benchmarks", runs);
        // `cargo bench` runs bench binaries from the package directory;
        // anchor the artifact to the workspace's `results/` regardless.
        let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
        if std::fs::create_dir_all(&dir).is_ok() {
            let _ = std::fs::write(dir.join(format!("BENCH_{}.json", self.group)), doc.render());
        }
    }
}
