//! Store/restore FSM micro-benchmark: simulated drain of a full context
//! through the shared port under different processor loads (ablation for
//! §4.2's idle-cycle stealing).

use rtosunit::layout::DMEM_BASE;
use rtosunit::{Platform, Preset, RtosUnit, RtosUnitConfig};
use rtosunit_bench::harness::Bench;
use rvsim_cores::{ArchState, Coprocessor, CoreKind, DataBus};
use rvsim_mem::AccessSize;

/// Simulates one interrupt entry plus a full store drain while the core
/// issues a data access every `core_every` cycles. Returns drained cycles.
fn drain_cycles(core_every: u64) -> u64 {
    let mut unit = RtosUnit::new(RtosUnitConfig::from_preset(Preset::S).expect("S"));
    let mut state = ArchState::new(0);
    let mut platform = Platform::new(CoreKind::Cv32e40p, 10_000);
    unit.on_interrupt_entry(&mut state, rvsim_isa::csr::CAUSE_TIMER);
    let mut cycles = 0;
    while unit.store_busy() {
        platform.begin_cycle();
        cycles += 1;
        if core_every > 0 && cycles % core_every == 0 {
            platform.core_access(DMEM_BASE, AccessSize::Word, Some(0));
        }
        unit.step(&mut state, &mut platform);
        assert!(cycles < 10_000);
    }
    cycles
}

fn main() {
    let mut bench = Bench::new("context_fsm");
    for (label, every) in [
        ("idle_port", 0u64),
        ("core_every_4", 4),
        ("core_every_2", 2),
    ] {
        bench.measure(format!("store_drain/{label}"), || drain_cycles(every));
    }
    bench.finish();
}
