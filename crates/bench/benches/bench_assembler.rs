//! Assembler / kernel-generation throughput: building the full guest
//! image for the heaviest configurations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use freertos_lite::KernelBuilder;
use rtosunit::Preset;
use std::hint::black_box;

fn build_image(preset: Preset) -> usize {
    let mut k = KernelBuilder::new(preset);
    k.semaphore("a", 0);
    k.semaphore("b", 1);
    for i in 0..5 {
        k.task(&format!("t{i}"), (i % 7 + 1) as u8, move |t| {
            t.compute(20);
            t.sem_take("a");
            t.sem_give("b");
            t.delay(2);
        });
    }
    k.build().expect("builds").text_words()
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_build");
    for preset in [Preset::Vanilla, Preset::Slt, Preset::Split] {
        g.bench_with_input(
            BenchmarkId::new("image", preset.label()),
            &preset,
            |b, &p| b.iter(|| black_box(build_image(p))),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
