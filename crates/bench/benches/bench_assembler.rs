//! Assembler / kernel-generation throughput: building the full guest
//! image for the heaviest configurations.

use freertos_lite::KernelBuilder;
use rtosunit::Preset;
use rtosunit_bench::harness::Bench;

fn build_image(preset: Preset) -> usize {
    let mut k = KernelBuilder::new(preset);
    k.semaphore("a", 0);
    k.semaphore("b", 1);
    for i in 0..5 {
        k.task(&format!("t{i}"), (i % 7 + 1) as u8, move |t| {
            t.compute(20);
            t.sem_take("a");
            t.sem_give("b");
            t.delay(2);
        });
    }
    k.build().expect("builds").text_words()
}

fn main() {
    let mut bench = Bench::new("assembler");
    for preset in [Preset::Vanilla, Preset::Slt, Preset::Split] {
        bench.measure(format!("image/{}", preset.label()), || build_image(preset));
    }
    bench.finish();
}
