//! Micro-benchmarks of the hardware scheduler model: insertion, rotation
//! and tick handling across list lengths (motivates the paper's remark
//! that larger lists may need faster sorting, §4.4).

use rtosunit::HwScheduler;
use rtosunit_bench::harness::Bench;
use std::hint::black_box;

fn main() {
    let mut bench = Bench::new("scheduler_hw");
    for len in [8usize, 16, 64] {
        bench.measure(format!("add_pop_cycle/{len}"), || {
            let mut s = HwScheduler::new(len);
            for i in 0..len {
                s.add_ready(i as u8, (i % 8) as u8);
            }
            for _ in 0..len {
                black_box(s.pop_rotate());
            }
        });
        bench.measure(format!("tick_with_delays/{len}"), || {
            let mut s = HwScheduler::new(len);
            for i in 0..len {
                s.add_delay(i as u8, (i % 8) as u8, (i as u32 % 4) + 1);
            }
            for _ in 0..5 {
                black_box(s.tick());
            }
        });
    }
    bench.finish();
}
