//! Micro-benchmarks of the hardware scheduler model: insertion, rotation
//! and tick handling across list lengths (motivates the paper's remark
//! that larger lists may need faster sorting, §4.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtosunit::HwScheduler;
use std::hint::black_box;

fn bench_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("hw_scheduler");
    for len in [8usize, 16, 64] {
        g.bench_with_input(BenchmarkId::new("add_pop_cycle", len), &len, |b, &len| {
            b.iter(|| {
                let mut s = HwScheduler::new(len);
                for i in 0..len {
                    s.add_ready(i as u8, (i % 8) as u8);
                }
                for _ in 0..len {
                    black_box(s.pop_rotate());
                }
            });
        });
        g.bench_with_input(BenchmarkId::new("tick_with_delays", len), &len, |b, &len| {
            b.iter(|| {
                let mut s = HwScheduler::new(len);
                for i in 0..len {
                    s.add_delay(i as u8, (i % 8) as u8, (i as u32 % 4) + 1);
                }
                for _ in 0..5 {
                    black_box(s.tick());
                }
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
