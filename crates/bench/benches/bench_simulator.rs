//! Simulator throughput: host time to execute a fixed guest workload on
//! each core timing model.

use rtosunit::{Preset, System};
use rtosunit_bench::harness::Bench;
use rvsim_cores::CoreKind;
use rvsim_isa::{Asm, Reg};

fn loop_program() -> rvsim_isa::Program {
    let mut a = Asm::new(rtosunit::layout::IMEM_BASE);
    a.li(Reg::T0, 20_000);
    a.li(Reg::T1, 0);
    a.label("l");
    a.add(Reg::T1, Reg::T1, Reg::T0);
    a.xori(Reg::T2, Reg::T1, 0x55);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "l");
    a.ebreak();
    a.finish().expect("assembles")
}

fn run_loop(kind: CoreKind, prog: &rvsim_isa::Program) -> (u64, u64) {
    let mut sys = System::new(kind, Preset::Vanilla);
    sys.load_program(prog);
    sys.run(1_000_000);
    (sys.platform.cycle(), sys.core.retired())
}

fn main() {
    let prog = loop_program();
    let mut bench = Bench::new("simulator");
    for kind in CoreKind::ALL {
        // Probe once for the exact simulated-cycle count so the report
        // carries simulated cycles/second per core model.
        let (cycles, _) = run_loop(kind, &prog);
        bench.throughput(
            format!("run_loop/{}", kind.name()),
            cycles as f64,
            "cycles",
            || run_loop(kind, &prog),
        );
    }
    bench.finish();
}
