//! Simulator throughput: host time to execute a fixed guest workload on
//! each core timing model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rtosunit::{Preset, System};
use rvsim_cores::CoreKind;
use rvsim_isa::{Asm, Reg};
use std::hint::black_box;

fn loop_program() -> rvsim_isa::Program {
    let mut a = Asm::new(rtosunit::layout::IMEM_BASE);
    a.li(Reg::T0, 20_000);
    a.li(Reg::T1, 0);
    a.label("l");
    a.add(Reg::T1, Reg::T1, Reg::T0);
    a.xori(Reg::T2, Reg::T1, 0x55);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "l");
    a.ebreak();
    a.finish().expect("assembles")
}

fn bench_cores(c: &mut Criterion) {
    let prog = loop_program();
    let mut g = c.benchmark_group("simulator_throughput");
    g.throughput(Throughput::Elements(80_000)); // ~4 instrs × 20k iters
    for kind in CoreKind::ALL {
        g.bench_with_input(BenchmarkId::new("run_loop", kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                let mut sys = System::new(kind, Preset::Vanilla);
                sys.load_program(&prog);
                sys.run(1_000_000);
                black_box(sys.core.retired())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cores);
criterion_main!(benches);
