//! Campaign-layer throughput: the Fig. 9 matrix (cores × latency presets
//! × suite workloads) executed four ways —
//!
//! 1. the seed's configuration: cycle-by-cycle stepping, one worker;
//! 2. batched `run_until` stepping, one worker (batching speedup alone);
//! 3. batched stepping across all host cores (batching × parallelism);
//! 4. batched stepping through the block translation cache, one worker
//!    (`fig9_blockcache`: the translated fast path's speedup over plain
//!    batched interpretation).
//!
//! All four artifacts must render identically (the determinism
//! guarantee); the simulated-cycles-per-second figures quantify the
//! speedups and land in `results/BENCH_campaign.json`. Each variant
//! runs [`REPS`] times with per-cell minimum host times kept, so the
//! reported ratios compare the least-disturbed run of every cell.

use rtosbench::{workloads, Campaign, CampaignSpec};
use rtosunit_bench::harness::Bench;
use rvsim_cores::CoreKind;

/// Boot-prefix length for the warm-start variant, in cycles. Short of
/// every suite workload's first external-interrupt injection (the
/// earliest is `interrupt_latency` at 9973), as the forking contract
/// requires.
const BOOT_PREFIX: u64 = 8_000;

/// Geometric-mean per-cell speedup of `fast` over `base`: the two
/// campaigns ran the identical matrix (and simulated identical cycles in
/// every cell — the determinism guarantee), so each cell's
/// simulated-cycles/s ratio reduces to its host-time ratio.
fn geomean_speedup(base: &Campaign, fast: &Campaign) -> f64 {
    let mut log_sum = 0.0f64;
    let mut n = 0u32;
    for (b, f) in base.outcomes.iter().zip(&fast.outcomes) {
        assert_eq!(b.label, f.label, "matrix cells out of order");
        if b.host_nanos == 0 || f.host_nanos == 0 {
            continue;
        }
        log_sum += (b.host_nanos as f64 / f.host_nanos as f64).ln();
        n += 1;
    }
    (log_sum / f64::from(n.max(1))).exp()
}

fn fig9_spec(stepwise: bool, blocks: bool) -> CampaignSpec {
    let presets = rtosunit_bench::latency_presets();
    let mut spec = CampaignSpec::matrix("bench_fig9", &CoreKind::ALL, &presets, &workloads::ALL);
    for run in &mut spec.runs {
        run.stepwise = stepwise;
        run.blocks = blocks;
    }
    spec
}

/// Repetitions per campaign variant. Each cell keeps its *minimum* host
/// time across repetitions — the run least disturbed by the host
/// scheduler — which is what the speedup ratios should compare.
const REPS: usize = 3;

/// Runs the matrix `REPS` times and merges per-cell (and aggregate)
/// minimum host times. Simulated results are deterministic, so the
/// repetitions differ only in host timing.
fn run_best(spec: impl Fn() -> CampaignSpec, workers: usize) -> Campaign {
    let mut best = spec().run(workers);
    for _ in 1..REPS {
        let next = spec().run(workers);
        for (b, n) in best.outcomes.iter_mut().zip(&next.outcomes) {
            assert_eq!(b.label, n.label, "matrix cells out of order");
            b.host_nanos = b.host_nanos.min(n.host_nanos);
        }
        best.host_nanos = best.host_nanos.min(next.host_nanos);
    }
    best
}

fn main() {
    let workers = rtosunit_bench::default_workers();
    let mut bench = Bench::new("campaign");

    let baseline = run_best(|| fig9_spec(true, false), 1);
    bench.record(
        "fig9_matrix/stepwise_sequential",
        u128::from(baseline.host_nanos),
        Some((baseline.simulated_cycles() as f64, "cycles")),
    );

    let batched_seq = run_best(|| fig9_spec(false, false), 1);
    bench.record(
        "fig9_matrix/batched_sequential",
        u128::from(batched_seq.host_nanos),
        Some((batched_seq.simulated_cycles() as f64, "cycles")),
    );

    let batched_par = run_best(|| fig9_spec(false, false), workers);
    // A stable record name (no worker count) so perfdiff can match it
    // against a baseline captured on a host with a different core count.
    println!("batched_parallel uses {workers} workers");
    bench.record(
        "fig9_matrix/batched_parallel",
        u128::from(batched_par.host_nanos),
        Some((batched_par.simulated_cycles() as f64, "cycles")),
    );

    let blockcache = run_best(|| fig9_spec(false, true), 1);
    bench.record(
        "fig9_matrix/fig9_blockcache",
        u128::from(blockcache.host_nanos),
        Some((blockcache.simulated_cycles() as f64, "cycles")),
    );

    // Warm-start variant: boot every matrix cell ONCE into a post-boot
    // snapshot, then fork each of the `REPS` repetitions from it — the
    // repetitions stop paying the boot prefix entirely.
    let warm_template = {
        let mut spec = fig9_spec(false, false);
        spec.runs = spec
            .runs
            .into_iter()
            .map(|run| {
                let doc = run
                    .boot_snapshot(BOOT_PREFIX)
                    .expect("boot prefix simulates");
                run.from_snapshot(&doc).expect("fork from boot snapshot")
            })
            .collect();
        spec
    };
    let cells = warm_template.runs.len() as u64;
    let warm = run_best(|| warm_template.clone(), 1);
    bench.record(
        "fig9_matrix/warm_start",
        u128::from(warm.host_nanos),
        Some((warm.simulated_cycles() as f64, "cycles")),
    );
    println!(
        "warm start: {BOOT_PREFIX}-cycle boot prefix snapshotted once per cell and forked \
         {REPS}x — {} boot cycles eliminated per campaign pass, {} across all repetitions",
        cells * BOOT_PREFIX,
        cells * BOOT_PREFIX * (REPS as u64 - 1),
    );

    assert_eq!(
        baseline.to_json().render(),
        batched_par.to_json().render(),
        "batched parallel execution must reproduce the stepwise artifact"
    );
    assert_eq!(
        baseline.to_json().render(),
        blockcache.to_json().render(),
        "block-cache execution must reproduce the stepwise artifact"
    );
    assert_eq!(
        baseline.to_json().render(),
        warm.to_json().render(),
        "warm-started execution must reproduce the cold-boot artifact"
    );

    let base_rate = baseline.cycles_per_second();
    println!(
        "speedup over stepwise sequential: batched x{:.2}, batched+{}w x{:.2}, blocks x{:.2}",
        batched_seq.cycles_per_second() / base_rate,
        workers,
        batched_par.cycles_per_second() / base_rate,
        blockcache.cycles_per_second() / base_rate
    );
    // The tentpole's self-reported headline: per-cell geomean speedup of
    // the translated fast path over the seed's stepwise configuration
    // (the baseline every prior speedup in this series is quoted against)
    // and over plain batched interpretation.
    println!(
        "blockcache geomean speedup per matrix cell: x{:.2} over stepwise, x{:.2} over batched",
        geomean_speedup(&baseline, &blockcache),
        geomean_speedup(&batched_seq, &blockcache),
    );
    bench.finish();
}
