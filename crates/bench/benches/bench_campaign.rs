//! Campaign-layer throughput: the Fig. 9 matrix (cores × latency presets
//! × suite workloads) executed three ways —
//!
//! 1. the seed's configuration: cycle-by-cycle stepping, one worker;
//! 2. batched `run_until` stepping, one worker (batching speedup alone);
//! 3. batched stepping across all host cores (batching × parallelism).
//!
//! The three artifacts must render identically (the determinism
//! guarantee); the simulated-cycles-per-second figures quantify the
//! speedup and land in `results/BENCH_campaign.json`.

use rtosbench::{workloads, CampaignSpec};
use rtosunit_bench::harness::Bench;
use rvsim_cores::CoreKind;

fn fig9_spec(stepwise: bool) -> CampaignSpec {
    let presets = rtosunit_bench::latency_presets();
    let mut spec = CampaignSpec::matrix("bench_fig9", &CoreKind::ALL, &presets, &workloads::ALL);
    for run in &mut spec.runs {
        run.stepwise = stepwise;
    }
    spec
}

fn main() {
    let workers = rtosunit_bench::default_workers();
    let mut bench = Bench::new("campaign");

    let baseline = fig9_spec(true).run(1);
    bench.record(
        "fig9_matrix/stepwise_sequential",
        u128::from(baseline.host_nanos),
        Some((baseline.simulated_cycles() as f64, "cycles")),
    );

    let batched_seq = fig9_spec(false).run(1);
    bench.record(
        "fig9_matrix/batched_sequential",
        u128::from(batched_seq.host_nanos),
        Some((batched_seq.simulated_cycles() as f64, "cycles")),
    );

    let batched_par = fig9_spec(false).run(workers);
    // A stable record name (no worker count) so perfdiff can match it
    // against a baseline captured on a host with a different core count.
    println!("batched_parallel uses {workers} workers");
    bench.record(
        "fig9_matrix/batched_parallel",
        u128::from(batched_par.host_nanos),
        Some((batched_par.simulated_cycles() as f64, "cycles")),
    );

    assert_eq!(
        baseline.to_json().render(),
        batched_par.to_json().render(),
        "batched parallel execution must reproduce the stepwise artifact"
    );

    let base_rate = baseline.cycles_per_second();
    println!(
        "speedup over stepwise sequential: batched x{:.2}, batched+{}w x{:.2}",
        batched_seq.cycles_per_second() / base_rate,
        workers,
        batched_par.cycles_per_second() / base_rate
    );
    bench.finish();
}
