//! End-to-end workload runs (host time for one full RTOSBench-style run).

use rtosbench::{run_workload, workloads};
use rtosunit::Preset;
use rtosunit_bench::harness::Bench;
use rvsim_cores::CoreKind;

fn main() {
    let w = workloads::by_name("pingpong_semaphore").expect("exists");
    let mut bench = Bench::new("workloads");
    for preset in [Preset::Vanilla, Preset::Slt] {
        let cycles = run_workload(CoreKind::Cv32e40p, preset, &w).cycles;
        bench.throughput(
            format!("pingpong_cv32e40p/{}", preset.label()),
            cycles as f64,
            "cycles",
            || run_workload(CoreKind::Cv32e40p, preset, &w).latencies.len(),
        );
    }
    bench.finish();
}
