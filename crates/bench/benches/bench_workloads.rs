//! End-to-end workload runs (host time for one full RTOSBench-style run).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rtosbench::{run_workload, workloads};
use rtosunit::Preset;
use rvsim_cores::CoreKind;
use std::hint::black_box;

fn bench_runs(c: &mut Criterion) {
    let w = workloads::by_name("pingpong_semaphore").expect("exists");
    let mut g = c.benchmark_group("workload_run");
    g.sample_size(10);
    for preset in [Preset::Vanilla, Preset::Slt] {
        g.bench_with_input(
            BenchmarkId::new("pingpong_cv32e40p", preset.label()),
            &preset,
            |b, &p| b.iter(|| black_box(run_workload(CoreKind::Cv32e40p, p, &w).latencies.len())),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_runs);
criterion_main!(benches);
