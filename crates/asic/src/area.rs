//! Area model (paper Fig. 10).

use crate::calibration::{base_area_um2, blocks, core_factors};
use rtosunit::{Preset, RtosUnitConfig};
use rvsim_cores::CoreKind;

/// Itemised area estimate for one `(core, configuration)` pair.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaReport {
    /// Core model.
    pub core: CoreKind,
    /// Configuration.
    pub preset: Preset,
    /// Base core area (µm²).
    pub base_um2: f64,
    /// `(block name, area µm²)` of every added component.
    pub components: Vec<(&'static str, f64)>,
}

impl AreaReport {
    /// Total added area (µm²).
    pub fn added_um2(&self) -> f64 {
        self.components.iter().map(|(_, a)| a).sum()
    }

    /// Total area (µm²).
    pub fn total_um2(&self) -> f64 {
        self.base_um2 + self.added_um2()
    }

    /// Relative overhead w.r.t. the unmodified core (Fig. 10's y-axis).
    pub fn overhead(&self) -> f64 {
        self.added_um2() / self.base_um2
    }
}

/// Computes the component inventory of `preset` on `core` with the
/// default 8-slot lists.
pub fn area_report(core: CoreKind, preset: Preset) -> AreaReport {
    area_report_with_lists(core, preset, 8)
}

/// As [`area_report`], with an explicit hardware list length (Fig. 12).
pub fn area_report_with_lists(core: CoreKind, preset: Preset, list_len: usize) -> AreaReport {
    let f = core_factors(core);
    let mut components: Vec<(&'static str, f64)> = Vec::new();
    match RtosUnitConfig::from_preset(preset) {
        None => {
            if preset == Preset::Cv32rt {
                components.push((
                    "cv32rt snapshot bank + dedicated port",
                    blocks::CV32RT * f.cv32rt,
                ));
            }
        }
        Some(cfg) => {
            if cfg.store {
                components.push(("alternate register bank", blocks::ALT_RF * f.rf));
                components.push(("sparse RF mux", blocks::SPARSE_MUX * f.rf));
                components.push(("store FSM", blocks::STORE_FSM * f.fsm));
                if !cfg.load {
                    components.push((
                        "SWITCH_RF hazard logic",
                        blocks::SWITCH_RF_HAZARD * f.hazard,
                    ));
                    if cfg.sched {
                        // Stalls actually observed only in (ST)/(SDT), §5.
                        components.push((
                            "SWITCH_RF deep stall logic",
                            blocks::SWITCH_RF_HAZARD_HEAVY * f.hazard_heavy,
                        ));
                    }
                }
            }
            if cfg.load {
                components.push(("restore FSM + mret stall", blocks::RESTORE_FSM * f.fsm));
            }
            if cfg.dirty_bits {
                components.push(("dirty bits", blocks::DIRTY_BITS));
            }
            if cfg.sched {
                components.push(("scheduler control", blocks::SCHED_CTRL * f.sched));
                components.push((
                    "ready+delay list slots",
                    blocks::LIST_SLOT_PAIR * f.sched * list_len as f64,
                ));
            }
            if cfg.preload {
                components.push((
                    "preload buffer + lockstep swap",
                    blocks::PRELOAD * f.preload,
                ));
            }
            if cfg.hw_sync {
                components.push(("hw semaphore unit (extension)", blocks::SEM_UNIT * f.sched));
            }
        }
    }
    AreaReport {
        core,
        preset,
        base_um2: base_area_um2(core),
        components,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn overhead(core: CoreKind, preset: Preset) -> f64 {
        area_report(core, preset).overhead()
    }

    #[test]
    fn cv32e40p_matches_quoted_percentages() {
        // §6.3 quotes: S +21.9 %, CV32RT +21.2 %, T ≈ 0, ST +33 %,
        // SLT ≈ +31..33 %, SPLIT +44 %.
        let s = overhead(CoreKind::Cv32e40p, Preset::S);
        assert!((0.19..=0.24).contains(&s), "S: {s}");
        let rt = overhead(CoreKind::Cv32e40p, Preset::Cv32rt);
        assert!((0.19..=0.23).contains(&rt), "CV32RT: {rt}");
        let t = overhead(CoreKind::Cv32e40p, Preset::T);
        assert!(t < 0.04, "T must be near-free: {t}");
        let st = overhead(CoreKind::Cv32e40p, Preset::St);
        assert!((0.30..=0.36).contains(&st), "ST: {st}");
        let slt = overhead(CoreKind::Cv32e40p, Preset::Slt);
        assert!((0.28..=0.34).contains(&slt), "SLT: {slt}");
        let split = overhead(CoreKind::Cv32e40p, Preset::Split);
        assert!((0.41..=0.47).contains(&split), "SPLIT: {split}");
    }

    #[test]
    fn cva6_matches_quoted_percentages() {
        let s = overhead(CoreKind::Cva6, Preset::S);
        assert!((0.03..=0.05).contains(&s), "S: {s}");
        let rt = overhead(CoreKind::Cva6, Preset::Cv32rt);
        assert!((0.015..=0.03).contains(&rt), "CV32RT: {rt}");
        let split = overhead(CoreKind::Cva6, Preset::Split);
        assert!((0.10..=0.16).contains(&split), "SPLIT: {split}");
    }

    #[test]
    fn naxriscv_matches_quoted_percentages() {
        let s = overhead(CoreKind::NaxRiscv, Preset::S);
        assert!((0.13..=0.17).contains(&s), "S: {s}");
        let rt = overhead(CoreKind::NaxRiscv, Preset::Cv32rt);
        assert!((0.17..=0.21).contains(&rt), "CV32RT: {rt}");
        // CV32RT exceeds even SPLIT on NaxRiscv (§6.3).
        let split = overhead(CoreKind::NaxRiscv, Preset::Split);
        assert!(rt > split, "CV32RT ({rt}) must exceed SPLIT ({split})");
    }

    #[test]
    fn dirty_bits_within_noise() {
        let s = overhead(CoreKind::Cv32e40p, Preset::S);
        let sd = overhead(CoreKind::Cv32e40p, Preset::Sd);
        assert!((sd - s).abs() < 0.01, "D must be within tool noise");
    }

    #[test]
    fn hazard_ordering_on_cva6() {
        // §6.3: (S)/(ST) exceed the corresponding (SL)/(SLT) on CVA6.
        let st = overhead(CoreKind::Cva6, Preset::St);
        let slt = overhead(CoreKind::Cva6, Preset::Slt);
        assert!(st > slt, "ST ({st}) must exceed SLT ({slt}) on CVA6");
        // NaxRiscv shows the opposite for S vs SL... S carries the very
        // expensive reschedule-based SWITCH_RF handling.
        let s_nax = overhead(CoreKind::NaxRiscv, Preset::S);
        let sl_nax = overhead(CoreKind::NaxRiscv, Preset::Sl);
        assert!(
            s_nax > sl_nax,
            "S ({s_nax}) must exceed SL ({sl_nax}) on NaxRiscv"
        );
    }

    #[test]
    fn vanilla_adds_nothing() {
        for k in CoreKind::ALL {
            assert_eq!(area_report(k, Preset::Vanilla).added_um2(), 0.0);
        }
    }
}
