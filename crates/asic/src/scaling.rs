//! List-length area scaling (paper Fig. 12).
//!
//! The paper synthesises CV32E40P with scheduling-only (T) hardware while
//! sweeping the ready/delay list length, observing approximately linear
//! growth that reaches +14 % at 64 slots.

use crate::area::area_report_with_lists;
use rtosunit::Preset;
use rvsim_cores::CoreKind;

/// One point of the Fig. 12 sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Slots in each hardware list (0 = unmodified core).
    pub list_len: usize,
    /// Absolute area (µm²).
    pub total_um2: f64,
    /// Overhead w.r.t. the unmodified core.
    pub overhead: f64,
}

/// Sweeps the (T) configuration on CV32E40P across list lengths.
pub fn scaling_sweep(lengths: &[usize]) -> Vec<ScalingPoint> {
    lengths
        .iter()
        .map(|&n| {
            if n == 0 {
                let base = crate::calibration::base_area_um2(CoreKind::Cv32e40p);
                return ScalingPoint {
                    list_len: 0,
                    total_um2: base,
                    overhead: 0.0,
                };
            }
            let r = area_report_with_lists(CoreKind::Cv32e40p, Preset::T, n);
            ScalingPoint {
                list_len: n,
                total_um2: r.total_um2(),
                overhead: r.overhead(),
            }
        })
        .collect()
}

/// The lengths the figure uses.
pub const FIG12_LENGTHS: [usize; 7] = [0, 2, 4, 8, 16, 32, 64];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_is_linear_in_slots() {
        let pts = scaling_sweep(&[8, 16, 32, 64]);
        let slope1 = (pts[1].total_um2 - pts[0].total_um2) / 8.0;
        let slope2 = (pts[3].total_um2 - pts[2].total_um2) / 32.0;
        assert!((slope1 - slope2).abs() < 1e-6, "area must scale linearly");
    }

    #[test]
    fn sixty_four_slots_cost_about_14_percent() {
        let pts = scaling_sweep(&[64]);
        assert!(
            (0.12..=0.16).contains(&pts[0].overhead),
            "64 slots: {:.3}",
            pts[0].overhead
        );
    }

    #[test]
    fn zero_slots_is_the_unmodified_core() {
        let pts = scaling_sweep(&[0]);
        assert_eq!(pts[0].overhead, 0.0);
    }
}
