//! Structural ASIC cost model for the RTOSUnit (paper §6.3).
//!
//! The paper implements all configurations down to chip layout in a
//! commercial 22 nm flow and reports area (Fig. 10), maximum frequency
//! (Fig. 11), list-length area scaling (Fig. 12) and average power for
//! the `mutex_workload` at 500 MHz (Fig. 13). Without a PDK and EDA
//! tools, this crate substitutes a **component-level structural model**:
//!
//! * every configuration is decomposed into the hardware blocks the paper
//!   describes (alternate register file + sparse MUX, store/restore FSMs,
//!   `SWITCH_RF` hazard logic, scheduler list slots, preload buffer,
//!   CV32RT snapshot bank + dedicated port),
//! * each block has an area cost and per-core integration multipliers
//!   ([`calibration`]) calibrated against the paper's reported relative
//!   overheads,
//! * static power follows area (the paper stresses the strong
//!   area↔power correlation at 22 nm); dynamic power is driven by
//!   *activity counters from actual simulation* of the mutex workload.
//!
//! The shape claims this reproduces: which configurations are near-free
//! (T), which are moderate (S/SL/SLT), which are expensive (SPLIT,
//! CV32RT-on-NaxRiscv), and the linear list-length scaling of Fig. 12.

pub mod area;
pub mod calibration;
pub mod fmax;
pub mod power;
pub mod scaling;

pub use area::{area_report, AreaReport};
pub use fmax::{fmax_report, FmaxReport};
pub use power::{power_report, PowerReport};
pub use scaling::{scaling_sweep, ScalingPoint};
