//! Power model (paper Fig. 13).
//!
//! The paper derives average power from gate-level simulation of the
//! `mutex_workload` at 500 MHz. This model substitutes: static power
//! proportional to the modelled area (the dominant term at 22 nm, §6.3),
//! plus dynamic power driven by **activity counters from an actual
//! simulation run** of the same workload — retired instructions,
//! data-port cycles, and RTOSUnit/CV32RT word transfers.

use crate::area::area_report;
use crate::calibration::{
    instr_energy_pj, CLOCK_MW_PER_UM2, DEDICATED_WORD_ENERGY_PJ, PORT_ENERGY_PJ, POWER_FREQ_MHZ,
    STATIC_MW_PER_UM2, UNIT_WORD_ENERGY_PJ,
};
use rtosbench::{run_workload, workloads};
use rtosunit::Preset;
use rvsim_cores::CoreKind;

/// Power estimate for one `(core, configuration)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Core model.
    pub core: CoreKind,
    /// Configuration.
    pub preset: Preset,
    /// Static (leakage) power, mW.
    pub static_mw: f64,
    /// Core dynamic power, mW.
    pub core_dynamic_mw: f64,
    /// RTOSUnit / CV32RT dynamic power, mW.
    pub unit_dynamic_mw: f64,
}

impl PowerReport {
    /// Total average power (mW) over the workload.
    pub fn total_mw(&self) -> f64 {
        self.static_mw + self.core_dynamic_mw + self.unit_dynamic_mw
    }
}

/// Runs `mutex_workload` on the pair and derives average power at the
/// paper's 500 MHz operating point.
pub fn power_report(core: CoreKind, preset: Preset) -> PowerReport {
    let w = workloads::by_name("mutex_workload").expect("mutex workload exists");
    let r = run_workload(core, preset, &w);
    let cycles = r.cycles as f64;
    let f_hz = POWER_FREQ_MHZ * 1e6;
    let pj_to_mw = |events: f64, energy_pj: f64| {
        // events/cycle × f [1/s] × E [pJ] → mW
        (events / cycles) * f_hz * energy_pj * 1e-9
    };

    let area = area_report(core, preset);
    let static_mw = area.total_um2() * STATIC_MW_PER_UM2;
    let core_dynamic_mw = pj_to_mw(r.retired as f64, instr_energy_pj(core))
        + pj_to_mw(r.port.1 as f64, PORT_ENERGY_PJ);

    let mut unit_words = 0.0;
    let mut dedicated_words = 0.0;
    if let Some(u) = r.unit {
        unit_words = (u.store_words + u.load_words + u.preload_words) as f64;
    }
    if let Some(rt) = r.cv32rt {
        dedicated_words = rt.snapshot_words as f64;
    }
    let unit_dynamic_mw = pj_to_mw(unit_words, UNIT_WORD_ENERGY_PJ)
        + pj_to_mw(dedicated_words, DEDICATED_WORD_ENERGY_PJ)
        + area.added_um2() * CLOCK_MW_PER_UM2;

    PowerReport {
        core,
        preset,
        static_mw,
        core_dynamic_mw,
        unit_dynamic_mw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_power_tracks_area() {
        let v = power_report(CoreKind::Cv32e40p, Preset::Vanilla);
        let split = power_report(CoreKind::Cv32e40p, Preset::Split);
        assert!(split.static_mw > v.static_mw);
        assert!(split.total_mw() > v.total_mw());
    }

    #[test]
    fn t_is_the_cheapest_addition_on_naxriscv() {
        // §6.3: on NaxRiscv the scheduling-only configuration costs less
        // than 2 mW extra.
        let v = power_report(CoreKind::NaxRiscv, Preset::Vanilla);
        let t = power_report(CoreKind::NaxRiscv, Preset::T);
        let extra = t.total_mw() - v.total_mw();
        assert!(
            (0.0..2.0).contains(&extra),
            "T extra on NaxRiscv: {extra} mW"
        );
    }

    #[test]
    fn cv32rt_is_the_most_power_hungry_on_naxriscv() {
        let rt = power_report(CoreKind::NaxRiscv, Preset::Cv32rt).total_mw();
        for p in [Preset::S, Preset::Slt, Preset::Split] {
            let other = power_report(CoreKind::NaxRiscv, p).total_mw();
            assert!(rt > other, "CV32RT ({rt:.2}) must exceed {p} ({other:.2})");
        }
    }
}
