//! Maximum-frequency model (paper Fig. 11).
//!
//! The unit's timing cost appears as negative setup slack on the register
//! file read path (the sparse MUX) and, for preloading on the
//! out-of-order core, on the lockstep swap network.

use crate::calibration::{base_fmax_mhz, fmax_unit_penalty, FMAX_SPLIT_NAX_PENALTY};
use rtosunit::Preset;
use rvsim_cores::CoreKind;

/// f_max estimate for one `(core, configuration)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FmaxReport {
    /// Core model.
    pub core: CoreKind,
    /// Configuration.
    pub preset: Preset,
    /// Achievable maximum frequency (MHz).
    pub fmax_mhz: f64,
    /// Relative drop w.r.t. the unmodified core.
    pub drop: f64,
}

/// Computes the f_max estimate.
pub fn fmax_report(core: CoreKind, preset: Preset) -> FmaxReport {
    let base = base_fmax_mhz(core);
    let drop = match preset {
        Preset::Vanilla => 0.0,
        // CV32RT's snapshot uses a dedicated port off the critical path;
        // the paper shows no meaningful drop for it on CV32E40P.
        Preset::Cv32rt => match core {
            CoreKind::Cva6 => fmax_unit_penalty(core),
            _ => 0.0,
        },
        Preset::Split if core == CoreKind::NaxRiscv => FMAX_SPLIT_NAX_PENALTY,
        _ => fmax_unit_penalty(core),
    };
    FmaxReport {
        core,
        preset,
        fmax_mhz: base * (1.0 - drop),
        drop,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drops_match_fig11() {
        // CV32E40P: ~15 % for all unit configurations, none for CV32RT.
        let slt = fmax_report(CoreKind::Cv32e40p, Preset::Slt);
        assert!((slt.drop - 0.15).abs() < 1e-9);
        let rt = fmax_report(CoreKind::Cv32e40p, Preset::Cv32rt);
        assert_eq!(rt.drop, 0.0);
        // CVA6: ~8 % across configurations.
        assert!((fmax_report(CoreKind::Cva6, Preset::S).drop - 0.08).abs() < 1e-9);
        // NaxRiscv: stable except SPLIT (−4 %).
        assert_eq!(fmax_report(CoreKind::NaxRiscv, Preset::Slt).drop, 0.0);
        assert!((fmax_report(CoreKind::NaxRiscv, Preset::Split).drop - 0.04).abs() < 1e-9);
    }

    #[test]
    fn frequencies_stay_practical() {
        // §6.3: all configurations remain well above typical embedded
        // operating frequencies (hundreds of MHz).
        for core in CoreKind::ALL {
            for preset in Preset::ASIC_SET {
                let f = fmax_report(core, preset).fmax_mhz;
                assert!(f > 500.0, "{core} {preset}: {f} MHz");
            }
        }
    }
}
