//! Calibration constants of the structural cost model.
//!
//! The component inventory (which block exists in which configuration) is
//! taken directly from the paper's §4/§5; the absolute sizes below are
//! free parameters calibrated so the model reproduces the paper's
//! *reported relative overheads*:
//!
//! | quantity | paper | where |
//! |---|---|---|
//! | CV32E40P (S) area | +21.9 % | §6.3 |
//! | CV32E40P (CV32RT) area | +21.2 % | §6.3 |
//! | CV32E40P (T) area | ≈ 0 (tool noise) | §6.3 |
//! | CV32E40P (ST) area | +33 % | §6.3 |
//! | CV32E40P (SLT) area | ≈ +31..33 % | §6.3/§7 |
//! | CV32E40P (SPLIT) area | +44 % | §6.3 |
//! | CVA6 (S) area | +3..5 %, (CV32RT) +2 %, (SPLIT) +14 % | §6.3 |
//! | NaxRiscv (S) +15 %, (CV32RT) +19 %, SLT ≈ +13 %, SPLIT ≈ +15 % | §6.3 |
//! | (T) list scaling | linear, +14 % at 64 slots | Fig. 12 |
//! | f_max drops | CV32E40P −15 %, CVA6 −8 %, NaxRiscv ≈ 0 (SPLIT −4 %) | Fig. 11 |
//!
//! Everything is in µm² (22 nm-class standard-cell densities), MHz, mW.

use rvsim_cores::CoreKind;

/// Base core area in µm², excluding cache SRAM macros (the paper excludes
/// those for NaxRiscv to keep the comparison fair).
pub fn base_area_um2(kind: CoreKind) -> f64 {
    match kind {
        CoreKind::Cv32e40p => 25_000.0,
        CoreKind::Cva6 => 137_000.0,
        CoreKind::NaxRiscv => 77_000.0,
    }
}

/// Base maximum frequency in MHz at the 22 nm node.
pub fn base_fmax_mhz(kind: CoreKind) -> f64 {
    match kind {
        CoreKind::Cv32e40p => 1_250.0,
        CoreKind::Cva6 => 1_700.0,
        CoreKind::NaxRiscv => 1_050.0,
    }
}

/// Component base areas (µm², CV32E40P reference implementation).
pub mod blocks {
    /// Alternate 29×32-bit register bank (§4.2).
    pub const ALT_RF: f64 = 3_800.0;
    /// Sparse MUX structure in front of RF1 (§4.2 (1)).
    pub const SPARSE_MUX: f64 = 500.0;
    /// Store FSM + address generation (§4.2).
    pub const STORE_FSM: f64 = 250.0;
    /// Restore FSM plus the `mret` stall path (§4.3).
    pub const RESTORE_FSM: f64 = 1_900.0;
    /// `SWITCH_RF` hazard handling, needed whenever storing is present
    /// without hardware loading (§5).
    pub const SWITCH_RF_HAZARD: f64 = 900.0;
    /// Extra stall depth needed when `SWITCH_RF` meets hardware
    /// scheduling — the paper observed real stalls only in (ST)/(SDT).
    pub const SWITCH_RF_HAZARD_HEAVY: f64 = 1_500.0;
    /// Dirty-bit tracking (§4.5) — within tool noise in the paper.
    pub const DIRTY_BITS: f64 = 150.0;
    /// Scheduler control FSM (§4.4).
    pub const SCHED_CTRL: f64 = 200.0;
    /// One ready+delay slot pair (entry registers + compare-swap share),
    /// the slope of Fig. 12.
    pub const LIST_SLOT_PAIR: f64 = 55.0;
    /// 31-word preload buffer + lockstep swap network (§4.7).
    pub const PRELOAD: f64 = 3_250.0;
    /// CV32RT: 16-register snapshot bank + dedicated memory port.
    pub const CV32RT: f64 = 5_300.0;
    /// Hardware semaphore unit (§7-extension): 8 counters + wait slots.
    pub const SEM_UNIT: f64 = 1_100.0;
}

/// Per-core integration multipliers (routing congestion, register
/// renaming duplication, port replication — §5/§6.3).
#[derive(Debug, Clone, Copy)]
pub struct CoreFactors {
    /// Register-file duplication and MUXing (NaxRiscv also duplicates the
    /// renaming translation logic, §5.3).
    pub rf: f64,
    /// Context FSMs.
    pub fsm: f64,
    /// `SWITCH_RF` hazard logic (pipeline rescheduling replaces it on
    /// NaxRiscv — expensive there, §5.3/§6.3).
    pub hazard: f64,
    /// Deep-stall logic for `SWITCH_RF` meeting hardware scheduling
    /// ((ST)/(SDT)); on NaxRiscv the existing reschedule mechanism covers
    /// it, so the addition is small there (§5.3).
    pub hazard_heavy: f64,
    /// Hardware scheduler.
    pub sched: f64,
    /// Preload buffer.
    pub preload: f64,
    /// CV32RT comparison design (NaxRiscv needs 16 extra read ports on
    /// the renamed register file, §6.3).
    pub cv32rt: f64,
}

/// The multipliers for each core.
pub fn core_factors(kind: CoreKind) -> CoreFactors {
    match kind {
        CoreKind::Cv32e40p => CoreFactors {
            rf: 1.0,
            fsm: 1.0,
            hazard: 1.0,
            hazard_heavy: 1.0,
            sched: 1.0,
            preload: 1.0,
            cv32rt: 1.0,
        },
        CoreKind::Cva6 => CoreFactors {
            rf: 1.0,
            fsm: 1.0,
            hazard: 1.3,
            hazard_heavy: 1.3,
            sched: 1.3,
            preload: 3.0,
            cv32rt: 0.53,
        },
        CoreKind::NaxRiscv => CoreFactors {
            rf: 1.74,
            fsm: 1.2,
            hazard: 4.2,
            hazard_heavy: 0.3,
            sched: 1.5,
            preload: 0.2,
            cv32rt: 3.0,
        },
    }
}

/// f_max penalty (fraction) for attaching a full RTOSUnit (Fig. 11).
pub fn fmax_unit_penalty(kind: CoreKind) -> f64 {
    match kind {
        CoreKind::Cv32e40p => 0.15,
        CoreKind::Cva6 => 0.08,
        CoreKind::NaxRiscv => 0.0,
    }
}

/// Extra f_max penalty of the preload datapath on NaxRiscv (Fig. 11).
pub const FMAX_SPLIT_NAX_PENALTY: f64 = 0.04;

/// Static power density: mW per µm² at nominal voltage (the 22 nm node's
/// strong area↔power correlation, §6.3).
pub const STATIC_MW_PER_UM2: f64 = 8.0e-5;

/// Clock-tree and idle-toggle power of *added* unit logic, mW per µm² at
/// the 500 MHz operating point (the duplicated register bank and the
/// preload buffer are clocked even when the FSMs are idle).
pub const CLOCK_MW_PER_UM2: f64 = 9.0e-5;

/// Dynamic energy per retired instruction (mJ · 10⁻⁹ = pJ), per core.
pub fn instr_energy_pj(kind: CoreKind) -> f64 {
    match kind {
        CoreKind::Cv32e40p => 1.6,
        CoreKind::Cva6 => 6.5,
        CoreKind::NaxRiscv => 11.0,
    }
}

/// Dynamic energy per data-port access (pJ).
pub const PORT_ENERGY_PJ: f64 = 1.2;
/// Dynamic energy per RTOSUnit context word moved (pJ).
pub const UNIT_WORD_ENERGY_PJ: f64 = 1.4;
/// Dynamic energy per CV32RT dedicated-port word (pJ) — a second port is
/// less efficient than stealing idle cycles on the existing one.
pub const DEDICATED_WORD_ENERGY_PJ: f64 = 2.2;

/// The power-analysis operating point (Fig. 13).
pub const POWER_FREQ_MHZ: f64 = 500.0;
