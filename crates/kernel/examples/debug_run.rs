//! Ad-hoc debugging harness for kernel bring-up (not part of the test
//! suite). Run with: cargo run -p freertos-lite --example debug_run <preset>

use freertos_lite::KernelBuilder;
use rtosunit::layout::DMEM_BASE;
use rtosunit::{Preset, System};
use rvsim_cores::CoreKind;
use rvsim_isa::Reg;

const SCRATCH: u32 = DMEM_BASE + 0x800;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "SL".into());
    let preset = match arg.as_str() {
        "vanilla" => Preset::Vanilla,
        "CV32RT" => Preset::Cv32rt,
        "S" => Preset::S,
        "SL" => Preset::Sl,
        "T" => Preset::T,
        "ST" => Preset::St,
        "SLT" => Preset::Slt,
        "SDLO" => Preset::Sdlo,
        "SDLOT" => Preset::Sdlot,
        "SPLIT" => Preset::Split,
        other => panic!("unknown preset {other}"),
    };
    let mut k = KernelBuilder::new(preset);
    k.tick_period(3000);
    k.task("a", 5, |t| {
        let a = t.asm_mut();
        a.li(Reg::S2, SCRATCH as i32);
        a.lw(Reg::S3, 0, Reg::S2);
        a.addi(Reg::S3, Reg::S3, 1);
        a.sw(Reg::S3, 0, Reg::S2);
        t.yield_now();
    });
    k.task("b", 5, |t| {
        let a = t.asm_mut();
        a.li(Reg::S2, (SCRATCH + 4) as i32);
        a.lw(Reg::S3, 0, Reg::S2);
        a.addi(Reg::S3, Reg::S3, 1);
        a.sw(Reg::S3, 0, Reg::S2);
        t.yield_now();
    });
    let img = k.build().expect("builds");
    println!("text words: {}", img.text_words());
    for (name, addr) in [
        ("_task_a", img.program.symbols.get("task_a").unwrap_or(0)),
        ("_task_b", img.program.symbols.get("task_b").unwrap_or(0)),
        ("isr", img.program.symbols.get("isr").unwrap_or(0)),
    ] {
        println!("{name}: {addr:#x}");
    }
    let mut sys = System::new(CoreKind::Cv32e40p, preset);
    img.install(&mut sys);
    for step in 0..30_000 {
        sys.step();
        if sys.halted() {
            println!("HALTED at cycle {step}");
            break;
        }
    }
    println!("cycle: {}", sys.platform.cycle());
    println!("pc: {:#010x}", sys.core.state.pc);
    println!("records: {}", sys.records().len());
    println!(
        "a={} b={}",
        sys.platform.dmem.read_word(SCRATCH),
        sys.platform.dmem.read_word(SCRATCH + 4)
    );
    if let Some(u) = sys.unit_stats() {
        println!("unit: {u:?}");
    }
    println!("recent pcs:");
    let pcs: Vec<_> = sys.core.recent_pcs().collect();
    for (cyc, pc) in pcs {
        let dis = sys.core.disassemble_at(pc).unwrap_or_default();
        println!("  {cyc:>8}  {pc:#010x}  {dis}");
    }
    for r in sys.records().iter().take(10) {
        println!(
            "switch: cause={:#x} trigger={} entry={} mret={} lat={}",
            r.cause,
            r.trigger_cycle,
            r.entry_cycle,
            r.mret_cycle,
            r.latency()
        );
    }
}
