//! Kernel self-protection emitters (fault detection inside the guest).
//!
//! The fault-injection campaign (rvsim-check's `faultcamp`) needs a
//! guest that can *notice* corruption, not just a host oracle judging it
//! from outside. This module emits three detection layers as real RV32
//! code, so their overhead shows up in the measured switch latency like
//! any other kernel work:
//!
//! * **Stack canaries** — [`CANARY_MAGIC`] is planted at the base word of
//!   every task stack at build time; the protected ISR re-checks all of
//!   them on every context switch.
//! * **Guest watchdog** — every timer tick bumps the [`WATCHDOG`] counter;
//!   the idle loop pets it back to zero. Crossing [`WATCHDOG_LIMIT`]
//!   means idle was starved: the system is wedged or a task ran away.
//! * **TCB checksum** — the static TCB fields (id, priority) are folded
//!   into an XOR checksum at build time ([`tcb_checksum`]); the ISR
//!   recomputes and compares it each switch.
//!
//! Every detection announces itself with a fault-detection mark
//! (`rtosunit::events::fault_mark`) on the TRACE register *before*
//! responding, so the host classifier sees the hit even when the
//! response is a halt. The response is the **graceful-degradation
//! policy**: a clobbered canary either kills the corrupted task and
//! reschedules ([`ProtectSpec::kill`]) or halts; watchdog and checksum
//! hits always halt (there is no single task to blame).
//!
//! All of this is strictly opt-in (`KernelBuilder::protect`): the
//! unprotected ISR byte streams are unchanged, keeping the headline
//! latency figures and the campaign digest pins intact.

use crate::emit::LabelGen;
use crate::klayout::{tcb, KernelLayout, CANARY_MAGIC, STACK_BYTES, WATCHDOG_LIMIT};
use rtosunit::events::{
    fault_mark, DETECT_CANARY, DETECT_CHECKSUM, DETECT_TASK_KILLED, DETECT_WATCHDOG,
};
use rtosunit::layout::{MMIO_HALT, MMIO_TRACE};
use rvsim_isa::{Asm, Reg};

/// Self-protection configuration carried by the ISR spec. `None` (the
/// default) emits no protection code at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtectSpec {
    /// Number of tasks in the image (canary/checksum loop bounds).
    pub n_tasks: usize,
    /// Degradation policy for a clobbered canary: `true` kills the
    /// corrupted task (removes it from its ready queue, restores the
    /// canary and reschedules), `false` halts. Killing requires the
    /// software ready queues, so hardware-scheduled presets always halt.
    pub kill: bool,
}

/// Emits one fault-detection mark (a single TRACE store). Clobbers
/// `t5`, `t6` — deliberately disjoint from the `t0`–`t4` working set of
/// the surrounding check loops.
fn emit_detect_mark(a: &mut Asm, detector: u32) {
    a.li(Reg::T5, MMIO_TRACE as i32);
    a.li(Reg::T6, fault_mark(detector) as i32);
    a.sw(Reg::T6, 0, Reg::T5);
}

/// Emits the fail-stop response: halt the platform, then spin (the store
/// raises attention, so the run loop exits on the next check; the spin
/// keeps the core from executing corrupted state meanwhile).
fn emit_halt_spin(a: &mut Asm, lg: &mut LabelGen) {
    let spin = lg.fresh("prot_spin");
    a.li(Reg::T5, MMIO_HALT as i32);
    a.sw(Reg::Zero, 0, Reg::T5);
    a.label(&spin);
    a.j(&spin);
}

/// Removes the TCB in `tcb_reg` from its priority's ready queue **if
/// present** — unlike [`crate::emit::ready_remove`], absence is not a
/// precondition: the kill path may target a task that is blocked on a
/// semaphore or the delay list, in which case this is a no-op.
///
/// Clobbers `t0`–`t3`. `tcb_reg` must not be one of those.
pub fn ready_remove_safe(a: &mut Asm, lg: &mut LabelGen, tcb_reg: Reg) {
    debug_assert!(![Reg::T0, Reg::T1, Reg::T2, Reg::T3].contains(&tcb_reg));
    let scan = lg.fresh("rrs_scan");
    let found = lg.fresh("rrs_found");
    let is_head = lg.fresh("rrs_head");
    let done = lg.fresh("rrs_done");
    a.lw(Reg::T0, tcb::PRIO, tcb_reg);
    a.slli(Reg::T0, Reg::T0, 2);
    a.li(Reg::T1, KernelLayout::READY_HEAD as i32);
    a.add(Reg::T1, Reg::T1, Reg::T0); // &head[prio]
    a.lw(Reg::T2, 0, Reg::T1); // cur = head
    a.beqz(Reg::T2, &done); // empty queue: nothing to remove
    a.beq(Reg::T2, tcb_reg, &is_head);
    a.label(&scan);
    a.lw(Reg::T3, tcb::NEXT, Reg::T2);
    a.beqz(Reg::T3, &done); // end of list: not present
    a.beq(Reg::T3, tcb_reg, &found);
    a.mv(Reg::T2, Reg::T3);
    a.j(&scan);
    a.label(&found);
    // prev (t2).next = tcb.next
    a.lw(Reg::T3, tcb::NEXT, tcb_reg);
    a.sw(Reg::T3, tcb::NEXT, Reg::T2);
    a.bnez(Reg::T3, &done);
    // Removed the tail: tail = prev.
    a.addi(Reg::T1, Reg::T1, 32);
    a.sw(Reg::T2, 0, Reg::T1);
    a.j(&done);
    a.label(&is_head);
    a.lw(Reg::T3, tcb::NEXT, tcb_reg);
    a.sw(Reg::T3, 0, Reg::T1); // head = next
    a.bnez(Reg::T3, &done);
    a.addi(Reg::T1, Reg::T1, 32);
    a.sw(Reg::Zero, 0, Reg::T1); // queue empty: tail = 0
    a.label(&done);
}

/// Emits the watchdog bump-and-check for the ISR's timer branch: the
/// counter is incremented each tick and compared (unsigned, so a flipped
/// high bit also trips it) against [`WATCHDOG_LIMIT`]. Expiry announces
/// [`DETECT_WATCHDOG`] and halts — a starved idle loop means the system
/// is wedged, there is nothing sensible to reschedule.
///
/// Clobbers `t0`–`t2` (and `t5`/`t6` on the expiry path).
pub fn emit_watchdog_check(a: &mut Asm, lg: &mut LabelGen) {
    let ok = lg.fresh("wdg_ok");
    a.li(Reg::T0, KernelLayout::WATCHDOG as i32);
    a.lw(Reg::T1, 0, Reg::T0);
    a.addi(Reg::T1, Reg::T1, 1);
    a.sw(Reg::T1, 0, Reg::T0);
    a.li(Reg::T2, WATCHDOG_LIMIT as i32);
    a.bltu(Reg::T1, Reg::T2, &ok);
    emit_detect_mark(a, DETECT_WATCHDOG);
    emit_halt_spin(a, lg);
    a.label(&ok);
}

/// Emits the watchdog pet (counter back to zero) — placed in the idle
/// loop, which only runs when every other task is blocked. Clobbers `t0`.
pub fn emit_watchdog_pet(a: &mut Asm) {
    a.li(Reg::T0, KernelLayout::WATCHDOG as i32);
    a.sw(Reg::Zero, 0, Reg::T0);
}

/// Emits the per-switch integrity sweep for the ISR's scheduling path:
/// all `n_tasks` stack canaries, then the TCB checksum. Runs before the
/// scheduler selects, so the kill path can pull a corrupted task out of
/// its ready queue in time.
///
/// Clobbers `t0`–`t6` and (on the kill path) `a1` — all dead at the top
/// of the scheduling path.
pub fn emit_integrity_checks(a: &mut Asm, lg: &mut LabelGen, spec: &ProtectSpec) {
    // --- canaries -----------------------------------------------------
    let scan = lg.fresh("can_scan");
    let bad = lg.fresh("can_bad");
    let ok = lg.fresh("can_ok");
    a.li(Reg::T0, 0); // i
    a.li(Reg::T1, spec.n_tasks as i32);
    a.li(Reg::T2, KernelLayout::STACKS as i32); // canary_addr(0)
    a.li(Reg::T3, CANARY_MAGIC as i32);
    a.label(&scan);
    a.lw(Reg::T4, 0, Reg::T2);
    a.bne(Reg::T4, Reg::T3, &bad);
    a.addi(Reg::T0, Reg::T0, 1);
    a.addi(Reg::T2, Reg::T2, STACK_BYTES as i32);
    a.blt(Reg::T0, Reg::T1, &scan);
    a.j(&ok);
    a.label(&bad);
    // t0 = corrupted task id, t2 = its canary address.
    emit_detect_mark(a, DETECT_CANARY);
    if spec.kill {
        // Graceful degradation: restore the canary (so the next switch
        // does not re-trip on the same word), pull the task out of its
        // ready queue and let the scheduler pick a survivor. A victim
        // parked on the delay or an event list can still wake later —
        // the kill is best-effort containment, not full teardown.
        a.sw(Reg::T3, 0, Reg::T2);
        a.slli(Reg::T4, Reg::T0, 2);
        a.li(Reg::T5, KernelLayout::LOOKUP as i32);
        a.add(Reg::T4, Reg::T4, Reg::T5);
        a.lw(Reg::A1, 0, Reg::T4); // victim TCB
        ready_remove_safe(a, lg, Reg::A1);
        emit_detect_mark(a, DETECT_TASK_KILLED);
    } else {
        emit_halt_spin(a, lg);
    }
    a.label(&ok);

    // --- TCB checksum -------------------------------------------------
    let csum = lg.fresh("ck_scan");
    let ck_ok = lg.fresh("ck_ok");
    a.li(Reg::T0, 0); // i
    a.li(Reg::T1, spec.n_tasks as i32);
    a.li(Reg::T2, KernelLayout::LOOKUP as i32);
    a.li(Reg::T3, 0x5EED_0001u32 as i32); // seed (see klayout::tcb_checksum)
    a.label(&csum);
    a.lw(Reg::T4, 0, Reg::T2); // TCB pointer
    a.lw(Reg::T5, tcb::ID, Reg::T4);
    a.xor(Reg::T3, Reg::T3, Reg::T5);
    a.lw(Reg::T5, tcb::PRIO, Reg::T4);
    a.slli(Reg::T5, Reg::T5, 8);
    a.xor(Reg::T3, Reg::T3, Reg::T5);
    a.addi(Reg::T0, Reg::T0, 1);
    a.addi(Reg::T2, Reg::T2, 4);
    a.blt(Reg::T0, Reg::T1, &csum);
    a.li(Reg::T4, KernelLayout::TCB_CHECKSUM as i32);
    a.lw(Reg::T4, 0, Reg::T4);
    a.beq(Reg::T3, Reg::T4, &ck_ok);
    emit_detect_mark(a, DETECT_CHECKSUM);
    emit_halt_spin(a, lg);
    a.label(&ck_ok);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::klayout::tcb_checksum;

    #[test]
    fn emitters_assemble() {
        let mut a = Asm::new(0);
        let mut lg = LabelGen::new();
        emit_integrity_checks(
            &mut a,
            &mut lg,
            &ProtectSpec {
                n_tasks: 3,
                kill: true,
            },
        );
        emit_watchdog_check(&mut a, &mut lg);
        emit_watchdog_pet(&mut a);
        ready_remove_safe(&mut a, &mut lg, Reg::A1);
        a.ebreak();
        let p = a.finish().expect("protection emitters assemble");
        assert!(p.words.len() > 40);
    }

    #[test]
    fn halt_policy_is_smaller_than_kill() {
        let len = |kill: bool| {
            let mut a = Asm::new(0);
            let mut lg = LabelGen::new();
            emit_integrity_checks(&mut a, &mut lg, &ProtectSpec { n_tasks: 4, kill });
            a.ebreak();
            a.finish().expect("assembles").words.len()
        };
        assert!(len(false) < len(true));
    }

    #[test]
    fn checksum_matches_host_function() {
        // The emitted loop folds id ^ (prio << 8) over the lookup table
        // with the same seed the host-side function uses; pin the host
        // value so the two cannot drift silently.
        assert_eq!(tcb_checksum(&[]), 0x5EED_0001);
        assert_eq!(tcb_checksum(&[0]), 0x5EED_0001);
        assert_eq!(tcb_checksum(&[5]), 0x5EED_0001 ^ 0x500);
        assert_eq!(tcb_checksum(&[3, 1]), 0x5EED_0001 ^ 0x300 ^ 1 ^ 0x100);
    }
}
