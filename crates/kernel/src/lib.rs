//! **freertos-lite** — a FreeRTOS-workalike guest kernel emitted as real
//! RV32 machine code for the RTOSUnit simulator.
//!
//! The paper evaluates the RTOSUnit with FreeRTOS (§3): per-priority ready
//! lists with round-robin time slicing, a sorted delay list, event lists
//! for synchronisation primitives, TCBs and a `currentTCB` global. This
//! crate generates that kernel — boot code, per-configuration ISRs,
//! task-level syscalls (`yield`, `delay`, semaphore/mutex take/give) and
//! task bodies — via the `rvsim-isa` assembler, plus the initial data
//! image (TCBs, stacks, lists, saved contexts).
//!
//! One kernel image is produced per [`Preset`](rtosunit::Preset): the ISR
//! shrinks exactly as Fig. 4 of the paper describes — from the full
//! software save/schedule/restore of **(vanilla)** down to "update
//! `currentTCB`" for **(SLT)**.
//!
//! # Example
//!
//! ```
//! use freertos_lite::KernelBuilder;
//! use rtosunit::{Preset, System};
//! use rvsim_cores::CoreKind;
//!
//! let mut k = KernelBuilder::new(Preset::Slt);
//! k.task("a", 5, |t| {
//!     t.yield_now();
//! });
//! k.task("b", 5, |t| {
//!     t.yield_now();
//! });
//! let image = k.build().expect("kernel builds");
//! let mut sys = System::new(CoreKind::Cv32e40p, Preset::Slt);
//! image.install(&mut sys);
//! sys.run(100_000);
//! assert!(sys.records().len() > 10); // context switches happened
//! ```

pub mod builder;
pub mod emit;
pub mod isr;
pub mod klayout;
pub mod probe;
pub mod protect;
pub mod smp;
pub mod syscalls;

pub use builder::{GuestImage, KernelBuilder, KernelError, TaskCtx};
pub use klayout::KernelLayout;
pub use protect::ProtectSpec;
pub use smp::{SmpImage, SmpKernelBuilder};
