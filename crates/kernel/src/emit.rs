//! Inline code emitters for the kernel's list operations.
//!
//! The ISR is generated as straight-line code (like real FreeRTOS port
//! assembly): every list operation is expanded inline rather than called,
//! which keeps the register discipline simple and makes the WCET analysis
//! of `rvsim-wcet` tractable. Each emitter documents the registers it
//! clobbers.

use crate::klayout::{sem, tcb, KernelLayout};
use rvsim_isa::{Asm, Reg};

/// Generates unique label names for inline expansions.
#[derive(Debug, Default)]
pub struct LabelGen {
    n: u64,
}

impl LabelGen {
    /// Creates a generator.
    pub fn new() -> LabelGen {
        LabelGen::default()
    }

    /// Returns a fresh label with the given stem.
    pub fn fresh(&mut self, stem: &str) -> String {
        self.n += 1;
        format!(".{stem}_{}", self.n)
    }
}

/// Disables machine interrupts (`csrrci mstatus, MIE`).
pub fn disable_irq(a: &mut Asm) {
    a.disable_interrupts();
}

/// Enables machine interrupts (`csrrsi mstatus, MIE`).
pub fn enable_irq(a: &mut Asm) {
    a.enable_interrupts();
}

/// Triggers a voluntary yield by raising the software interrupt
/// (paper Fig. 2 (c)). Clobbers `t0`, `t1`.
pub fn trigger_yield(a: &mut Asm) {
    a.li(Reg::T0, rtosunit::layout::MMIO_MSIP as i32);
    a.li(Reg::T1, 1);
    a.sw(Reg::T1, 0, Reg::T0);
}

/// Appends the TCB in `tcb_reg` to the tail of its priority's ready queue.
///
/// Clobbers `t0`, `t1`, `t2`. `tcb_reg` must not be one of those.
pub fn ready_push_back(a: &mut Asm, lg: &mut LabelGen, tcb_reg: Reg) {
    debug_assert!(![Reg::T0, Reg::T1, Reg::T2].contains(&tcb_reg));
    let nonempty = lg.fresh("rpb_nonempty");
    let done = lg.fresh("rpb_done");
    a.lw(Reg::T0, tcb::PRIO, tcb_reg);
    a.slli(Reg::T0, Reg::T0, 2);
    a.li(Reg::T1, KernelLayout::READY_HEAD as i32);
    a.add(Reg::T1, Reg::T1, Reg::T0); // &head[prio]
    a.sw(Reg::Zero, tcb::NEXT, tcb_reg);
    a.lw(Reg::T2, 0, Reg::T1);
    a.bnez(Reg::T2, &nonempty);
    // Empty queue: head = tail = tcb.
    a.sw(tcb_reg, 0, Reg::T1);
    a.addi(Reg::T1, Reg::T1, 32); // &tail[prio]
    a.sw(tcb_reg, 0, Reg::T1);
    a.j(&done);
    a.label(&nonempty);
    a.addi(Reg::T1, Reg::T1, 32); // &tail[prio]
    a.lw(Reg::T2, 0, Reg::T1);
    a.sw(tcb_reg, tcb::NEXT, Reg::T2); // tail.next = tcb
    a.sw(tcb_reg, 0, Reg::T1); // tail = tcb
    a.label(&done);
}

/// Removes the TCB in `tcb_reg` from its priority's ready queue. The TCB
/// **must** be present (blocking paths only run for the current task,
/// which is always in the ready list).
///
/// Clobbers `t0`, `t1`, `t2`, `t3`.
pub fn ready_remove(a: &mut Asm, lg: &mut LabelGen, tcb_reg: Reg) {
    debug_assert!(![Reg::T0, Reg::T1, Reg::T2, Reg::T3].contains(&tcb_reg));
    let scan = lg.fresh("rrm_scan");
    let found = lg.fresh("rrm_found");
    let is_head = lg.fresh("rrm_head");
    let done = lg.fresh("rrm_done");
    a.lw(Reg::T0, tcb::PRIO, tcb_reg);
    a.slli(Reg::T0, Reg::T0, 2);
    a.li(Reg::T1, KernelLayout::READY_HEAD as i32);
    a.add(Reg::T1, Reg::T1, Reg::T0); // &head[prio]
    a.lw(Reg::T2, 0, Reg::T1); // cur = head
    a.beq(Reg::T2, tcb_reg, &is_head);
    a.label(&scan);
    a.lw(Reg::T3, tcb::NEXT, Reg::T2);
    a.beq(Reg::T3, tcb_reg, &found);
    a.mv(Reg::T2, Reg::T3);
    a.j(&scan);
    a.label(&found);
    // prev (t2).next = tcb.next
    a.lw(Reg::T3, tcb::NEXT, tcb_reg);
    a.sw(Reg::T3, tcb::NEXT, Reg::T2);
    a.bnez(Reg::T3, &done);
    // Removed the tail: tail = prev.
    a.addi(Reg::T1, Reg::T1, 32);
    a.sw(Reg::T2, 0, Reg::T1);
    a.j(&done);
    a.label(&is_head);
    a.lw(Reg::T3, tcb::NEXT, tcb_reg);
    a.sw(Reg::T3, 0, Reg::T1); // head = next
    a.bnez(Reg::T3, &done);
    a.addi(Reg::T1, Reg::T1, 32);
    a.sw(Reg::Zero, 0, Reg::T1); // queue empty: tail = 0
    a.label(&done);
}

/// FreeRTOS scheduling (paper Fig. 2): selects the highest-priority ready
/// task into `a0` and rotates it to the tail of its class (round robin).
///
/// Clobbers `t0`–`t4`, `a0`. Falls into `ebreak` if every queue is empty
/// (the idle task must always be ready).
pub fn sched_select(a: &mut Asm, lg: &mut LabelGen) {
    let scan = lg.fresh("sel_scan");
    let got = lg.fresh("sel_got");
    let rotate = lg.fresh("sel_rotate");
    let done = lg.fresh("sel_done");
    a.li(Reg::T0, (crate::klayout::NUM_PRIOS as i32) - 1);
    a.li(Reg::T1, KernelLayout::READY_HEAD as i32);
    a.label(&scan);
    a.slli(Reg::T2, Reg::T0, 2);
    a.add(Reg::T2, Reg::T1, Reg::T2); // &head[p]
    a.lw(Reg::A0, 0, Reg::T2);
    a.bnez(Reg::A0, &got);
    a.addi(Reg::T0, Reg::T0, -1);
    a.bge(Reg::T0, Reg::Zero, &scan);
    a.ebreak(); // unreachable: idle task is always ready
    a.label(&got);
    a.lw(Reg::T3, tcb::NEXT, Reg::A0);
    a.bnez(Reg::T3, &rotate);
    a.j(&done); // single entry: no rotation needed
    a.label(&rotate);
    a.sw(Reg::T3, 0, Reg::T2); // head = next
    a.addi(Reg::T2, Reg::T2, 32); // &tail[p]
    a.lw(Reg::T4, 0, Reg::T2);
    a.sw(Reg::A0, tcb::NEXT, Reg::T4); // tail.next = selected
    a.sw(Reg::A0, 0, Reg::T2); // tail = selected
    a.sw(Reg::Zero, tcb::NEXT, Reg::A0);
    a.label(&done);
}

/// Inserts the TCB in `a1` into the delay list, sorted by the wake tick in
/// `t5` (ascending; FIFO among equal ticks).
///
/// Clobbers `t0`–`t4`. Inputs: `a1` = TCB, `t5` = absolute wake tick.
pub fn delay_insert(a: &mut Asm, lg: &mut LabelGen) {
    let front = lg.fresh("dli_front");
    let scan = lg.fresh("dli_scan");
    let between = lg.fresh("dli_between");
    let done = lg.fresh("dli_done");
    a.sw(Reg::T5, tcb::WAKE_TICK, Reg::A1);
    a.li(Reg::T0, KernelLayout::DELAY_HEAD as i32);
    a.lw(Reg::T1, 0, Reg::T0); // cur = head
    a.beqz(Reg::T1, &front);
    a.lw(Reg::T2, tcb::WAKE_TICK, Reg::T1);
    a.bltu(Reg::T5, Reg::T2, &front);
    a.label(&scan);
    a.lw(Reg::T3, tcb::NEXT, Reg::T1); // next
    a.beqz(Reg::T3, &between); // append at end (next = 0)
    a.lw(Reg::T2, tcb::WAKE_TICK, Reg::T3);
    a.bltu(Reg::T5, Reg::T2, &between);
    a.mv(Reg::T1, Reg::T3);
    a.j(&scan);
    a.label(&between);
    // insert a1 after t1
    a.sw(Reg::T3, tcb::NEXT, Reg::A1);
    a.sw(Reg::A1, tcb::NEXT, Reg::T1);
    a.j(&done);
    a.label(&front);
    a.lw(Reg::T3, 0, Reg::T0);
    a.sw(Reg::T3, tcb::NEXT, Reg::A1);
    a.sw(Reg::A1, 0, Reg::T0);
    a.label(&done);
}

/// Software tick handler (paper Fig. 2 (f)/(g)): increments `TICK_COUNT`
/// and moves every expired task from the delay list to its ready queue.
///
/// Clobbers `t0`–`t5`, `a0`, `s0`, `s1` (the caller must have saved or
/// banked them).
pub fn delay_tick(a: &mut Asm, lg: &mut LabelGen) {
    let scan = lg.fresh("dtk_scan");
    let done = lg.fresh("dtk_done");
    a.li(Reg::T0, KernelLayout::TICK_COUNT as i32);
    a.lw(Reg::S0, 0, Reg::T0);
    a.addi(Reg::S0, Reg::S0, 1);
    a.sw(Reg::S0, 0, Reg::T0);
    a.li(Reg::S1, KernelLayout::DELAY_HEAD as i32);
    a.label(&scan);
    a.lw(Reg::A0, 0, Reg::S1); // head
    a.beqz(Reg::A0, &done);
    a.lw(Reg::T4, tcb::WAKE_TICK, Reg::A0);
    a.bltu(Reg::S0, Reg::T4, &done); // head wakes later: stop
    a.lw(Reg::T5, tcb::NEXT, Reg::A0);
    a.sw(Reg::T5, 0, Reg::S1); // pop head
    ready_push_back(a, lg, Reg::A0);
    a.j(&scan);
    a.label(&done);
}

/// Inserts the TCB in `a1` into the wait list of the semaphore whose
/// address is in `sem_reg`, sorted by priority descending (FreeRTOS event
/// lists are priority-ordered).
///
/// Clobbers `t0`–`t3`. `sem_reg` must not be `t0`–`t3` or `a1`.
pub fn event_insert(a: &mut Asm, lg: &mut LabelGen, sem_reg: Reg) {
    debug_assert!(![Reg::T0, Reg::T1, Reg::T2, Reg::T3, Reg::A1].contains(&sem_reg));
    let front = lg.fresh("evi_front");
    let scan = lg.fresh("evi_scan");
    let between = lg.fresh("evi_between");
    let done = lg.fresh("evi_done");
    a.lw(Reg::T0, tcb::PRIO, Reg::A1); // our prio
    a.lw(Reg::T1, sem::WAIT_HEAD, sem_reg);
    a.beqz(Reg::T1, &front);
    a.lw(Reg::T2, tcb::PRIO, Reg::T1);
    a.blt(Reg::T2, Reg::T0, &front); // head prio < ours: take the front
    a.label(&scan);
    a.lw(Reg::T3, tcb::NEXT, Reg::T1);
    a.beqz(Reg::T3, &between);
    a.lw(Reg::T2, tcb::PRIO, Reg::T3);
    a.blt(Reg::T2, Reg::T0, &between);
    a.mv(Reg::T1, Reg::T3);
    a.j(&scan);
    a.label(&between);
    a.sw(Reg::T3, tcb::NEXT, Reg::A1);
    a.sw(Reg::A1, tcb::NEXT, Reg::T1);
    a.j(&done);
    a.label(&front);
    a.lw(Reg::T3, sem::WAIT_HEAD, sem_reg);
    a.sw(Reg::T3, tcb::NEXT, Reg::A1);
    a.sw(Reg::A1, sem::WAIT_HEAD, sem_reg);
    a.label(&done);
}

/// Pops the highest-priority waiter of the semaphore whose address is in
/// `sem_reg` into `a1` (0 when the wait list is empty).
///
/// Clobbers `t0`. `sem_reg` must not be `t0` or `a1`.
pub fn event_pop(a: &mut Asm, lg: &mut LabelGen, sem_reg: Reg) {
    debug_assert!(![Reg::T0, Reg::A1].contains(&sem_reg));
    let done = lg.fresh("evp_done");
    a.lw(Reg::A1, sem::WAIT_HEAD, sem_reg);
    a.beqz(Reg::A1, &done);
    a.lw(Reg::T0, tcb::NEXT, Reg::A1);
    a.sw(Reg::T0, sem::WAIT_HEAD, sem_reg);
    a.label(&done);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique() {
        let mut lg = LabelGen::new();
        let a = lg.fresh("x");
        let b = lg.fresh("x");
        assert_ne!(a, b);
    }

    #[test]
    fn emitters_assemble() {
        // Every emitter must produce internally consistent labels.
        let mut a = Asm::new(0);
        let mut lg = LabelGen::new();
        ready_push_back(&mut a, &mut lg, Reg::A0);
        ready_remove(&mut a, &mut lg, Reg::A0);
        sched_select(&mut a, &mut lg);
        delay_insert(&mut a, &mut lg);
        delay_tick(&mut a, &mut lg);
        event_insert(&mut a, &mut lg, Reg::S0);
        event_pop(&mut a, &mut lg, Reg::S0);
        trigger_yield(&mut a);
        a.ebreak();
        let p = a.finish().expect("all emitters assemble");
        assert!(p.words.len() > 60);
    }
}
