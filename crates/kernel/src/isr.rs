//! Per-configuration ISR generation (paper Fig. 4).
//!
//! One ISR is emitted per [`Preset`]; the amount of software shrinks as
//! features move to hardware:
//!
//! * **(vanilla)**, **(T)**, **(CV32RT)** — full software context save to
//!   the task stack, software (or hardware) scheduling, software restore;
//! * **(S)**-family — register-bank entry (no save code), scheduling,
//!   `SET_CONTEXT_ID`, `SWITCH_RF`, software restore from the fixed
//!   context region;
//! * **(SL)**-family — as above but the restore happens in hardware and
//!   the ISR ends directly in `mret`;
//! * **(SLT)/(SPLIT)** — the ISR reduces to "update `currentTCB`"
//!   (Fig. 4 (g)).

use crate::emit::{self, LabelGen};
use crate::klayout::{tcb, KernelLayout, FRAME_BYTES};
use crate::probe;
use crate::protect::{self, ProtectSpec};
use rtosunit::layout::{
    ctx_index_of, ctx_reg, CTX_MEPC_IDX, CTX_MSTATUS_IDX, CTX_REGION_BASE, CTX_SHIFT, MMIO_EXT_ACK,
    MMIO_IPI_RECV, MMIO_MSIP, MMIO_MTIME, MMIO_MTIMECMP, MMIO_TRACE,
};
use rtosunit::{PhaseCode, Preset};
use rvsim_isa::{csr, Asm, Reg};

/// Static description of the ISR to generate.
#[derive(Debug, Clone, Copy)]
pub struct IsrSpec {
    /// The configuration being built.
    pub preset: Preset,
    /// Timer tick period in cycles (for the software re-arm path).
    pub tick_period: u32,
    /// Address (or hardware id, with the §7 extension) of the semaphore
    /// given on external interrupts, if any.
    pub ext_sem_addr: Option<u32>,
    /// Emit typed [`PhaseCode`] marks at the ISR's save/schedule phase
    /// boundaries (for latency-waterfall analysis). The marks are extra
    /// stores and *change the measured latency*, so they default off and
    /// must stay off for headline measurements.
    pub trace_phases: bool,
    /// Emit scheduler-oracle probes ([`crate::probe`]): the selected task
    /// id after every `currentTCB` update and the outcome of the deferred
    /// external-interrupt give. Like phase marks, these perturb latency
    /// and default off.
    pub probe: bool,
    /// Drain the IPI mailbox (`MMIO_IPI_RECV`) in the software-interrupt
    /// branch: each popped code `c` gives semaphore `c - 1` with the same
    /// wake path as the deferred external give. Off for single-hart
    /// images, where the drain would be dead code on the yield path.
    pub ipi: bool,
    /// Self-protection ([`crate::protect`]): per-switch canary and TCB
    /// checksum sweeps plus the tick watchdog. The checks are real
    /// kernel work and *change the measured latency*, so they default
    /// off ([`None`]) and the unprotected byte streams are unchanged.
    pub protect: Option<ProtectSpec>,
}

impl IsrSpec {
    fn banked(&self) -> bool {
        self.preset.has_store()
    }

    fn hw_load(&self) -> bool {
        self.preset.has_load()
    }

    fn hw_sched(&self) -> bool {
        self.preset.has_sched()
    }

    fn cv32rt(&self) -> bool {
        self.preset == Preset::Cv32rt
    }

    fn hw_sync(&self) -> bool {
        rtosunit::RtosUnitConfig::from_preset(self.preset).is_some_and(|c| c.hw_sync)
    }
}

/// Frame byte offset of context word `w` (`0..=30`; 29 = mstatus,
/// 30 = mepc). CV32RT uses a rearranged 128-byte frame: the 15
/// software-saved words sit in the low half and the 16 hardware-written
/// snapshot words occupy a single 64-byte-aligned block (§6).
pub fn frame_word_off(w: usize, cv32rt: bool) -> i32 {
    if !cv32rt {
        return (w as i32) * 4;
    }
    match w {
        0..=12 => (w as i32) * 4,
        CTX_MSTATUS_IDX => 52,
        CTX_MEPC_IDX => 56,
        _ => (crate::klayout::CV32RT_HW_BLOCK_OFF as i32) + ((w - 13) as i32) * 4,
    }
}

/// Frame size in bytes for the given save style.
pub fn frame_bytes(cv32rt: bool) -> u32 {
    if cv32rt {
        crate::klayout::CV32RT_FRAME_BYTES
    } else {
        FRAME_BYTES
    }
}

/// Emits the software context save to the stack frame (vanilla-style).
/// For CV32RT the 16 snapshot registers (context words 13..=28) are saved
/// by hardware through the dedicated port and skipped here.
fn emit_save_frame(a: &mut Asm, cv32rt: bool) {
    let size = frame_bytes(cv32rt) as i32;
    a.addi(Reg::Sp, Reg::Sp, -size);
    let limit = if cv32rt { 13 } else { 29 };
    for w in 0..limit {
        let r = ctx_reg(w);
        if r == Reg::Sp {
            continue; // stored below, after t0 is free
        }
        a.sw(r, frame_word_off(w, cv32rt), Reg::Sp);
    }
    // Original sp = sp + frame size (t0's old value is already saved).
    a.addi(Reg::T0, Reg::Sp, size);
    a.sw(
        Reg::T0,
        frame_word_off(ctx_index_of(Reg::Sp), cv32rt),
        Reg::Sp,
    );
    a.csrr(Reg::T0, csr::MSTATUS);
    a.sw(Reg::T0, frame_word_off(CTX_MSTATUS_IDX, cv32rt), Reg::Sp);
    a.csrr(Reg::T0, csr::MEPC);
    a.sw(Reg::T0, frame_word_off(CTX_MEPC_IDX, cv32rt), Reg::Sp);
    // currentTCB->saved_sp = sp (Fig. 4 (b)).
    a.li(Reg::T1, KernelLayout::CURRENT_TCB as i32);
    a.lw(Reg::T1, 0, Reg::T1);
    a.sw(Reg::Sp, tcb::SAVED_SP, Reg::T1);
}

/// Emits the software restore from the stack frame of the TCB in `a0`.
fn emit_restore_frame(a: &mut Asm, cv32rt: bool) {
    a.lw(Reg::Sp, tcb::SAVED_SP, Reg::A0);
    a.lw(Reg::T0, frame_word_off(CTX_MSTATUS_IDX, cv32rt), Reg::Sp);
    a.csrw(csr::MSTATUS, Reg::T0);
    a.lw(Reg::T0, frame_word_off(CTX_MEPC_IDX, cv32rt), Reg::Sp);
    a.csrw(csr::MEPC, Reg::T0);
    for w in 0..29 {
        let r = ctx_reg(w);
        if r == Reg::Sp {
            continue;
        }
        a.lw(r, frame_word_off(w, cv32rt), Reg::Sp);
    }
    a.lw(
        Reg::Sp,
        frame_word_off(ctx_index_of(Reg::Sp), cv32rt),
        Reg::Sp,
    );
}

/// Emits the software restore from the fixed context region, entered on
/// the application bank right after `SWITCH_RF` ((S)/(ST) family). The
/// next task's id was parked in the `NEXT_ID` global beforehand.
fn emit_restore_ctx_region(a: &mut Asm) {
    a.li(Reg::T0, KernelLayout::NEXT_ID as i32);
    a.lw(Reg::T0, 0, Reg::T0);
    a.slli(Reg::T0, Reg::T0, CTX_SHIFT as i32);
    a.li(Reg::T1, CTX_REGION_BASE as i32);
    a.add(Reg::T1, Reg::T1, Reg::T0); // context base of the next task
    a.lw(Reg::T0, frame_word_off(CTX_MSTATUS_IDX, false), Reg::T1);
    a.csrw(csr::MSTATUS, Reg::T0);
    a.lw(Reg::T0, frame_word_off(CTX_MEPC_IDX, false), Reg::T1);
    a.csrw(csr::MEPC, Reg::T0);
    let t1_word = ctx_index_of(Reg::T1);
    for w in 0..29 {
        if w == t1_word {
            continue; // base register: restored last
        }
        a.lw(ctx_reg(w), frame_word_off(w, false), Reg::T1);
    }
    a.lw(Reg::T1, frame_word_off(t1_word, false), Reg::T1);
}

/// Emits a typed phase mark: one store of the encoded [`PhaseCode`] to
/// the TRACE register. Clobbers `t0`/`t1`, so call only where both are
/// dead (right after the save frame, or after `currentTCB` is stored).
fn emit_phase_mark(a: &mut Asm, code: PhaseCode) {
    a.li(Reg::T0, MMIO_TRACE as i32);
    a.li(Reg::T1, code.encode() as i32);
    a.sw(Reg::T1, 0, Reg::T0);
}

/// Emits an ISR-context semaphore give for the operand already in `a2`
/// (control-block address, or hardware id with the §7 extension): bump
/// the count, pop the highest-priority waiter into `a1` and move it back
/// to the ready list. Shared by the deferred external-interrupt give and
/// the IPI drain loop. Clobbers `t0`–`t2`, `a1`.
fn emit_isr_give(a: &mut Asm, lg: &mut LabelGen, spec: &IsrSpec) {
    if spec.hw_sync() {
        // §7 extension: a single custom instruction gives the
        // semaphore and wakes the waiter entirely in hardware.
        a.hw_sem_give(Reg::Zero, Reg::A2);
        return;
    }
    let done = lg.fresh("isr_give_done");
    a.lw(Reg::T0, crate::klayout::sem::COUNT, Reg::A2);
    a.addi(Reg::T0, Reg::T0, 1);
    a.sw(Reg::T0, crate::klayout::sem::COUNT, Reg::A2);
    emit::event_pop(a, lg, Reg::A2); // a1 = waiter or 0
    if spec.probe {
        // Announce the give's outcome while still atomic with it
        // (the ISR runs with interrupts disabled throughout).
        let woke = lg.fresh("isr_probe_woke");
        let probed = lg.fresh("isr_probe_done");
        a.bnez(Reg::A1, &woke);
        probe::emit_probe(a, probe::Probe::IsrGiveNoWake);
        a.j(&probed);
        a.label(&woke);
        probe::emit_probe_id(a, probe::Probe::IsrGiveWoke { id: 0 }.encode(), Reg::A1);
        a.label(&probed);
    }
    a.beqz(Reg::A1, &done);
    if spec.hw_sched() {
        a.lw(Reg::T0, tcb::ID, Reg::A1);
        a.lw(Reg::T1, tcb::PRIO, Reg::A1);
        a.add_ready(Reg::T0, Reg::T1);
    } else {
        emit::ready_push_back(a, lg, Reg::A1);
    }
    a.label(&done);
}

/// Emits the complete ISR at label `isr`.
///
/// Register discipline: in non-banked configurations everything is saved
/// to the frame first, so the body may clobber freely; in banked
/// configurations the ISR runs on the fresh ISR bank.
pub fn gen_isr(a: &mut Asm, lg: &mut LabelGen, spec: &IsrSpec) {
    let l_timer = lg.fresh("isr_timer");
    let l_sw = lg.fresh("isr_sw");
    let l_sched = lg.fresh("isr_sched");

    a.label("isr");
    if !spec.banked() {
        emit_save_frame(a, spec.cv32rt());
    }
    // Banked configurations save in hardware, so their save phase is
    // zero-width: the mark lands right at ISR entry.
    if spec.trace_phases {
        emit_phase_mark(a, PhaseCode::SaveDone);
    }

    // Cause dispatch (Fig. 2: time slice (a), voluntary yield (c), or an
    // external event for deferred handling).
    a.csrr(Reg::T0, csr::MCAUSE);
    a.andi(Reg::T0, Reg::T0, 0x3f);
    a.li(Reg::T1, 7);
    a.beq(Reg::T0, Reg::T1, &l_timer);
    a.li(Reg::T1, 3);
    a.beq(Reg::T0, Reg::T1, &l_sw);

    // --- external interrupt: acknowledge, then give the bound semaphore
    // (deferred interrupt handling, §1).
    a.li(Reg::T0, MMIO_EXT_ACK as i32);
    a.sw(Reg::Zero, 0, Reg::T0);
    if let Some(sem) = spec.ext_sem_addr {
        // Semaphore give from the ISR: bump the count, wake the
        // highest-priority waiter (it re-takes the count on retry).
        a.li(Reg::A2, sem as i32);
        emit_isr_give(a, lg, spec);
    }
    a.j(&l_sched);

    // --- timer tick: in software configurations walk the delay list and
    // re-arm the comparator; with (T) both moved to hardware (§4.4).
    a.label(&l_timer);
    if spec.protect.is_some() {
        protect::emit_watchdog_check(a, lg);
    }
    if !spec.hw_sched() {
        emit::delay_tick(a, lg);
        a.li(Reg::T0, MMIO_MTIME as i32);
        a.lw(Reg::T1, 0, Reg::T0);
        a.li(Reg::T2, spec.tick_period as i32);
        a.add(Reg::T1, Reg::T1, Reg::T2);
        a.li(Reg::T0, MMIO_MTIMECMP as i32);
        a.sw(Reg::T1, 0, Reg::T0);
    }
    a.j(&l_sched);

    // --- software interrupt (voluntary yield, or an IPI): clear the line.
    a.label(&l_sw);
    a.li(Reg::T0, MMIO_MSIP as i32);
    a.sw(Reg::Zero, 0, Reg::T0);
    if spec.ipi {
        // Drain the IPI mailbox: each code `c` gives semaphore `c - 1`
        // (cross-hart wakeup). A code arriving after the final 0 read
        // keeps `mip.MSIP` asserted, so the ISR re-enters after `mret`
        // and no wakeup is lost.
        let drain = lg.fresh("isr_ipi_drain");
        let drained = lg.fresh("isr_ipi_drained");
        a.label(&drain);
        a.li(Reg::T0, MMIO_IPI_RECV as i32);
        a.lw(Reg::A2, 0, Reg::T0); // a2 = code, or 0 when empty
        a.beqz(Reg::A2, &drained);
        if spec.probe {
            // Announce the pop with the code as payload (computed store:
            // base-with-code-0 plus the live code).
            a.li(Reg::T0, probe::Probe::IpiRecv { code: 0 }.encode() as i32);
            a.add(Reg::T1, Reg::T0, Reg::A2);
            a.li(Reg::T0, MMIO_TRACE as i32);
            a.sw(Reg::T1, 0, Reg::T0);
        }
        a.addi(Reg::A2, Reg::A2, -1); // semaphore index
        if !spec.hw_sync() {
            // index -> control-block address; with §7 the hardware id
            // in a2 is already the operand.
            a.slli(
                Reg::A2,
                Reg::A2,
                crate::klayout::SEM_BYTES.trailing_zeros() as i32,
            );
            a.li(Reg::T0, KernelLayout::SEMS as i32);
            a.add(Reg::A2, Reg::A2, Reg::T0);
        }
        emit_isr_give(a, lg, spec);
        a.j(&drain);
        a.label(&drained);
    }
    // fall through

    // --- scheduling: select the next task into a0 (TCB pointer).
    a.label(&l_sched);
    if let Some(p) = &spec.protect {
        protect::emit_integrity_checks(a, lg, p);
    }
    if spec.hw_sched() {
        a.get_hw_sched(Reg::A0);
        a.slli(Reg::T0, Reg::A0, 2);
        a.li(Reg::T1, KernelLayout::LOOKUP as i32);
        a.add(Reg::T0, Reg::T1, Reg::T0);
        a.lw(Reg::A0, 0, Reg::T0); // id -> TCB (software lookup table, §4.4)
    } else {
        emit::sched_select(a, lg);
    }
    a.li(Reg::T1, KernelLayout::CURRENT_TCB as i32);
    a.sw(Reg::A0, 0, Reg::T1);
    if spec.probe {
        // The oracle's core check: which task won this scheduling event.
        probe::emit_probe_id(a, probe::Probe::Sched { id: 0 }.encode(), Reg::A0);
    }
    if spec.trace_phases {
        emit_phase_mark(a, PhaseCode::SchedDone);
    }

    // --- context-switch tail.
    if spec.banked() && spec.hw_load() {
        // (SL)/(SLT)/(SPLIT): announce the next task (unless GET_HW_SCHED
        // already did) and return; mret stalls until the restore FSM is
        // done and switches banks automatically (§4.3).
        if !spec.hw_sched() {
            a.lw(Reg::T2, tcb::ID, Reg::A0);
            a.set_context_id(Reg::T2);
        }
        a.mret();
    } else if spec.banked() {
        // (S)/(ST) family: park the id, switch back to the application
        // bank (stalls while storing is in flight, §4.2) and restore in
        // software from the fixed context region.
        a.lw(Reg::T2, tcb::ID, Reg::A0);
        a.li(Reg::T3, KernelLayout::NEXT_ID as i32);
        a.sw(Reg::T2, 0, Reg::T3);
        if !spec.hw_sched() {
            a.set_context_id(Reg::T2);
        }
        a.switch_rf();
        emit_restore_ctx_region(a);
        a.mret();
    } else {
        // (vanilla)/(T)/(CV32RT): full software restore from the frame.
        emit_restore_frame(a, spec.cv32rt());
        a.mret();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(p: Preset) -> IsrSpec {
        IsrSpec {
            preset: p,
            tick_period: 2000,
            ext_sem_addr: Some(KernelLayout::SEMS),
            trace_phases: false,
            probe: false,
            ipi: false,
            protect: None,
        }
    }

    fn isr_len(p: Preset) -> usize {
        let mut a = Asm::new(0);
        let mut lg = LabelGen::new();
        gen_isr(&mut a, &mut lg, &spec(p));
        a.ebreak();
        a.finish().expect("ISR assembles").words.len()
    }

    #[test]
    fn all_isrs_assemble() {
        for p in Preset::LATENCY_SET {
            assert!(isr_len(p) > 5, "{p} ISR too small");
        }
    }

    #[test]
    fn isr_shrinks_as_features_move_to_hardware() {
        // Fig. 4: the software ISR shortens with more offloading.
        let vanilla = isr_len(Preset::Vanilla);
        let t = isr_len(Preset::T);
        let s = isr_len(Preset::S);
        let sl = isr_len(Preset::Sl);
        let slt = isr_len(Preset::Slt);
        assert!(t < vanilla, "(T) removes tick + scheduler scan");
        assert!(s < vanilla, "(S) removes the save path");
        assert!(sl < s, "(SL) removes the restore path");
        assert!(slt < sl, "(SLT) is minimal");
        assert!(slt < 40, "(SLT) ISR must be tiny, got {slt} instructions");
    }

    #[test]
    fn phase_marks_are_opt_in_and_grow_the_isr() {
        for p in [Preset::Vanilla, Preset::Slt] {
            let plain = isr_len(p);
            let mut a = Asm::new(0);
            let mut lg = LabelGen::new();
            let mut s = spec(p);
            s.trace_phases = true;
            gen_isr(&mut a, &mut lg, &s);
            a.ebreak();
            let traced = a.finish().expect("ISR assembles").words.len();
            assert!(traced > plain, "{p}: marks must add instructions");
            // Each mark is li/li/sw; both `li`s expand to lui+addi for
            // the MMIO address and the tagged phase code, so two marks
            // cost at most 10 instructions.
            assert!(traced <= plain + 10, "{p}: marks must stay cheap");
        }
    }

    #[test]
    fn ipi_drain_is_opt_in() {
        for p in [Preset::Vanilla, Preset::Slt, Preset::SltHs] {
            let plain = isr_len(p);
            let mut a = Asm::new(0);
            let mut lg = LabelGen::new();
            let mut s = spec(p);
            s.ipi = true;
            gen_isr(&mut a, &mut lg, &s);
            a.ebreak();
            let with_ipi = a.finish().expect("ISR assembles").words.len();
            assert!(with_ipi > plain, "{p}: the drain loop adds instructions");
        }
    }

    #[test]
    fn protection_is_opt_in_and_grows_the_isr() {
        for p in [Preset::Vanilla, Preset::Slt] {
            let plain = isr_len(p);
            let mut a = Asm::new(0);
            let mut lg = LabelGen::new();
            let mut s = spec(p);
            s.protect = Some(ProtectSpec {
                n_tasks: 3,
                kill: p == Preset::Vanilla,
            });
            gen_isr(&mut a, &mut lg, &s);
            a.ebreak();
            let protected = a.finish().expect("ISR assembles").words.len();
            // The sweeps are substantial real work — the whole point is
            // that protection overhead shows in the measured latency.
            assert!(protected > plain + 20, "{p}: checks must add code");
        }
    }

    #[test]
    fn cv32rt_saves_fewer_words_than_vanilla() {
        let vanilla = isr_len(Preset::Vanilla);
        let cv32rt = isr_len(Preset::Cv32rt);
        // 16 stores are done by hardware.
        assert!(cv32rt + 10 <= vanilla);
    }
}
