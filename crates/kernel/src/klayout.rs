//! Host-side data layout of the guest kernel.
//!
//! All kernel data lives in DMEM at fixed, host-computed addresses so both
//! the assembly generators and the initial-data writer agree on them.

use rtosunit::layout::DMEM_BASE;

/// Number of priority levels (FreeRTOS `configMAX_PRIORITIES`).
pub const NUM_PRIOS: usize = 8;
/// Maximum number of tasks the lookup table supports.
pub const MAX_TASKS: usize = 16;
/// Bytes reserved per task stack.
pub const STACK_BYTES: u32 = 1024;
/// Size of one TCB in bytes.
pub const TCB_BYTES: u32 = 32;
/// Size of one semaphore control block in bytes.
pub const SEM_BYTES: u32 = 8;
/// Size of a saved context frame on the stack in bytes (31 words).
pub const FRAME_BYTES: u32 = 124;

/// CV32RT frame size: 128 bytes, 64-byte aligned (stack tops are 1 KiB
/// aligned), so the 16 hardware-written words occupy exactly one cache
/// line (paper §6: "the single cache line containing the bypassed 16
/// words").
pub const CV32RT_FRAME_BYTES: u32 = 128;
/// Frame offset of the first hardware-written (snapshot) word.
pub const CV32RT_HW_BLOCK_OFF: u32 = 64;

/// CV32RT frame offset of software-saved context word `w`
/// (`w` indexes the 13 low registers, then `mstatus`, `mepc`).
pub fn cv32rt_sw_off(slot: usize) -> i32 {
    debug_assert!(slot < 16);
    (slot as i32) * 4
}

/// TCB field offsets (bytes).
pub mod tcb {
    /// Saved stack pointer (top of the saved context frame).
    pub const SAVED_SP: i32 = 0;
    /// Task id (index into context region and lookup table).
    pub const ID: i32 = 4;
    /// Priority (0 = lowest / idle).
    pub const PRIO: i32 = 8;
    /// Generic list link (ready, delay or event list).
    pub const NEXT: i32 = 12;
    /// Absolute tick at which a delayed task wakes.
    pub const WAKE_TICK: i32 = 16;
}

/// Semaphore field offsets (bytes).
pub mod sem {
    /// Available count.
    pub const COUNT: i32 = 0;
    /// Head of the priority-sorted wait list.
    pub const WAIT_HEAD: i32 = 4;
}

/// Magic word planted at the *base* (lowest address) of every task stack
/// when self-protection is on. A stack overflow or an injected upset
/// clobbers it; the protected ISR checks all canaries on every switch.
pub const CANARY_MAGIC: u32 = 0xC0DE_FA11;

/// Ticks the watchdog counter may reach before the protected ISR
/// declares the idle task starved (idle pets the counter back to zero).
pub const WATCHDOG_LIMIT: u32 = 64;

/// Address of task `i`'s stack canary word (the stack grows down from
/// `stack_top(i)`, so the base word is the last to be overwritten).
pub fn canary_addr(i: usize) -> u32 {
    KernelLayout::STACKS + (i as u32) * STACK_BYTES
}

/// The build-time XOR checksum over the static fields of `n` TCBs with
/// the given priorities: `xor_i(id ^ (prio << 8))`, seeded with a
/// non-zero constant so an all-zero memory image never verifies.
pub fn tcb_checksum(prios: &[u32]) -> u32 {
    let mut x = 0x5EED_0001u32;
    for (id, &prio) in prios.iter().enumerate() {
        x ^= (id as u32) ^ (prio << 8);
    }
    x
}

/// Kernel global variables (absolute addresses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelLayout {
    /// Number of tasks (including the idle task).
    pub n_tasks: usize,
    /// Number of semaphores.
    pub n_sems: usize,
}

impl KernelLayout {
    /// Base of the kernel-global block.
    pub const GLOBALS: u32 = DMEM_BASE;
    /// `currentTCB` (paper §3).
    pub const CURRENT_TCB: u32 = Self::GLOBALS;
    /// Kernel tick counter.
    pub const TICK_COUNT: u32 = Self::GLOBALS + 4;
    /// Scratch slot carrying the next task id across `SWITCH_RF`.
    pub const NEXT_ID: u32 = Self::GLOBALS + 8;
    /// `READY_HEAD[prio]`, `NUM_PRIOS` words.
    pub const READY_HEAD: u32 = Self::GLOBALS + 12;
    /// `READY_TAIL[prio]`; kept exactly 32 bytes after the heads so the
    /// generated code can reach the tail with a single `addi`.
    pub const READY_TAIL: u32 = Self::READY_HEAD + (NUM_PRIOS as u32) * 4;
    /// Head of the sorted delay list.
    pub const DELAY_HEAD: u32 = Self::READY_TAIL + (NUM_PRIOS as u32) * 4;
    /// Task-id → TCB-pointer lookup table (paper §4.4), `MAX_TASKS` words.
    pub const LOOKUP: u32 = Self::DELAY_HEAD + 4;
    /// Guest watchdog counter: bumped by every timer tick, zeroed
    /// ("petted") by the idle loop. Crossing [`WATCHDOG_LIMIT`] in the
    /// ISR means idle was starved — the system is wedged or runaway.
    pub const WATCHDOG: u32 = Self::LOOKUP + (MAX_TASKS as u32) * 4;
    /// Expected XOR checksum over the static TCB fields (id, priority),
    /// written at build time and recomputed by the protected ISR.
    pub const TCB_CHECKSUM: u32 = Self::WATCHDOG + 4;
    /// Base of the semaphore control blocks.
    pub const SEMS: u32 = Self::GLOBALS + 0x100;
    /// Base of the TCB array.
    pub const TCBS: u32 = Self::GLOBALS + 0x200;
    /// Base of the task stacks.
    pub const STACKS: u32 = Self::GLOBALS + 0x1000;

    /// Creates the layout for the given object counts.
    ///
    /// # Panics
    ///
    /// Panics if the counts exceed the static capacity.
    pub fn new(n_tasks: usize, n_sems: usize) -> KernelLayout {
        assert!(
            n_tasks <= MAX_TASKS,
            "too many tasks ({n_tasks} > {MAX_TASKS})"
        );
        assert!(
            (n_sems as u32) * SEM_BYTES <= Self::TCBS - Self::SEMS,
            "too many semaphores"
        );
        KernelLayout { n_tasks, n_sems }
    }

    /// Address of task `i`'s TCB.
    pub fn tcb_addr(&self, i: usize) -> u32 {
        assert!(i < self.n_tasks);
        Self::TCBS + (i as u32) * TCB_BYTES
    }

    /// Initial stack top (highest address, exclusive) of task `i`.
    pub fn stack_top(&self, i: usize) -> u32 {
        assert!(i < self.n_tasks);
        Self::STACKS + ((i as u32) + 1) * STACK_BYTES
    }

    /// Address of semaphore `j`'s control block.
    pub fn sem_addr(&self, j: usize) -> u32 {
        assert!(j < self.n_sems);
        Self::SEMS + (j as u32) * SEM_BYTES
    }

    /// Address of the `READY_HEAD[prio]` slot.
    pub fn ready_head_addr(prio: usize) -> u32 {
        assert!(prio < NUM_PRIOS);
        Self::READY_HEAD + (prio as u32) * 4
    }

    /// Address of the `LOOKUP[id]` slot.
    pub fn lookup_addr(id: usize) -> u32 {
        assert!(id < MAX_TASKS);
        Self::LOOKUP + (id as u32) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtosunit::layout::{CTX_REGION_BASE, DMEM_SIZE};

    #[test]
    fn tail_is_one_addi_from_head() {
        assert_eq!(KernelLayout::READY_TAIL - KernelLayout::READY_HEAD, 32);
    }

    #[test]
    fn regions_do_not_overlap() {
        let l = KernelLayout::new(MAX_TASKS, 8);
        const { assert!(KernelLayout::TCB_CHECKSUM + 4 <= KernelLayout::SEMS) };
        assert!(l.sem_addr(7) + SEM_BYTES <= KernelLayout::TCBS);
        assert!(l.tcb_addr(MAX_TASKS - 1) + TCB_BYTES <= KernelLayout::STACKS);
        // Stacks must stay clear of the fixed context region.
        assert!(l.stack_top(MAX_TASKS - 1) <= CTX_REGION_BASE);
        assert!(l.stack_top(MAX_TASKS - 1) <= DMEM_BASE + DMEM_SIZE);
    }

    #[test]
    fn frame_holds_31_words() {
        assert_eq!(FRAME_BYTES, (rtosunit::layout::CTX_WORDS as u32) * 4);
    }

    #[test]
    #[should_panic(expected = "too many tasks")]
    fn task_capacity_enforced() {
        KernelLayout::new(MAX_TASKS + 1, 0);
    }
}
