//! SMP kernel composition: one `freertos-lite` image per hart, with
//! placement-time task affinity and IPI-driven cross-hart wakeups.
//!
//! The SMP platform keeps DMEM banks private and shares only the bus
//! *timing* (see `rtosunit::smp`), so TCBs and stacks cannot move between
//! harts at runtime. The kernel therefore follows the partitioned-
//! scheduler model, like FreeRTOS-SMP with `configTASK_AFFINITY` pinned:
//! each task is assigned to one hart at build time, chosen from its
//! affinity mask by a least-loaded placement pass, and every hart runs
//! its own ready lists, idle task and ISR. Cross-hart synchronisation
//! travels as IPIs: [`TaskCtx::ipi_give`](crate::TaskCtx::ipi_give) rings
//! the target's doorbell, and the target ISR's drain loop performs the
//! give against its local semaphore — the scheduler oracle checks that no
//! such wakeup is ever lost.

use crate::builder::{GuestImage, KernelBuilder, KernelError, TaskCtx};
use rtosunit::{Preset, SmpSystem};

type TaskBody = Box<dyn FnOnce(&mut TaskCtx)>;

struct SmpTaskSpec {
    name: String,
    prio: u8,
    affinity: u32,
    body: TaskBody,
}

/// Builds one [`GuestImage`] per hart from a single task/semaphore
/// declaration set.
///
/// Semaphores are declared once and materialise on *every* hart at the
/// same index, so an IPI code (`index + 1`) resolves to the matching
/// control block wherever it lands.
///
/// # Example
///
/// ```
/// use freertos_lite::SmpKernelBuilder;
/// use rtosunit::{Preset, SmpSystem};
/// use rvsim_cores::CoreKind;
///
/// let mut b = SmpKernelBuilder::new(Preset::Vanilla, 2);
/// b.semaphore("inbox", 0);
/// b.task_on("rx", 3, 0b01, |t| {
///     t.sem_take("inbox");
///     t.halt();
/// });
/// b.task_on("tx", 3, 0b10, |t| {
///     t.busy_work(50);
///     t.ipi_give(0, "inbox");
///     t.delay(5); // throttle: an unthrottled IPI flood can livelock the peer
/// });
/// let image = b.build().expect("SMP kernel builds");
/// let mut smp = SmpSystem::new(CoreKind::Cv32e40p, Preset::Vanilla, 2);
/// image.install(&mut smp);
/// smp.run(200_000);
/// assert!(smp.halted()); // the IPI woke `rx`
/// ```
pub struct SmpKernelBuilder {
    preset: Preset,
    harts: usize,
    tick_period: u32,
    probe: bool,
    sems: Vec<(String, u32)>,
    tasks: Vec<SmpTaskSpec>,
    ext_irq: Option<(usize, String)>,
}

impl SmpKernelBuilder {
    /// Creates a builder for `harts` harts running `preset`.
    pub fn new(preset: Preset, harts: usize) -> SmpKernelBuilder {
        assert!(harts >= 1, "an SMP kernel needs at least one hart");
        SmpKernelBuilder {
            preset,
            harts,
            tick_period: rtosunit::system::DEFAULT_TICK_PERIOD,
            probe: false,
            sems: Vec::new(),
            tasks: Vec::new(),
            ext_irq: None,
        }
    }

    /// Sets the timer-tick period (cycles) used by every hart.
    pub fn tick_period(&mut self, cycles: u32) -> &mut Self {
        self.tick_period = cycles;
        self
    }

    /// Instruments every hart's kernel with scheduler-oracle probes (see
    /// [`KernelBuilder::probe`]).
    pub fn probe(&mut self, on: bool) -> &mut Self {
        self.probe = on;
        self
    }

    /// Declares a counting semaphore, present on every hart at the same
    /// index.
    pub fn semaphore(&mut self, name: &str, initial: u32) -> &mut Self {
        self.sems.push((name.to_string(), initial));
        self
    }

    /// Declares a task runnable on any hart (affinity mask 0 = don't
    /// care); placement picks the least-loaded hart.
    pub fn task(
        &mut self,
        name: &str,
        prio: u8,
        body: impl FnOnce(&mut TaskCtx) + 'static,
    ) -> &mut Self {
        self.task_on(name, prio, 0, body)
    }

    /// Declares a task with an affinity mask: bit `h` set allows hart
    /// `h`. Mask 0 means any hart.
    pub fn task_on(
        &mut self,
        name: &str,
        prio: u8,
        affinity: u32,
        body: impl FnOnce(&mut TaskCtx) + 'static,
    ) -> &mut Self {
        self.tasks.push(SmpTaskSpec {
            name: name.to_string(),
            prio,
            affinity,
            body: Box::new(body),
        });
        self
    }

    /// Binds the external interrupt line of `hart` to `sem_give(name)`
    /// inside that hart's ISR (deferred interrupt handling).
    pub fn ext_irq_gives_on(&mut self, hart: usize, name: &str) -> &mut Self {
        self.ext_irq = Some((hart, name.to_string()));
        self
    }

    /// Places every task and assembles one kernel image per hart.
    ///
    /// Placement walks tasks in declaration order and pins each to the
    /// allowed hart with the fewest tasks so far (lowest hart id on
    /// ties), so affinity-free workloads spread evenly.
    ///
    /// # Errors
    ///
    /// [`KernelError::BadAffinity`] when a mask selects no hart of this
    /// system, plus everything [`KernelBuilder::build`] reports.
    pub fn build(self) -> Result<SmpImage, KernelError> {
        let all: u32 = if self.harts >= 32 {
            u32::MAX
        } else {
            (1u32 << self.harts) - 1
        };
        let mut loads = vec![0usize; self.harts];
        let mut placement: Vec<(String, usize)> = Vec::with_capacity(self.tasks.len());
        let mut per_hart: Vec<Vec<SmpTaskSpec>> = (0..self.harts).map(|_| Vec::new()).collect();
        for t in self.tasks {
            let allowed = if t.affinity == 0 {
                all
            } else {
                t.affinity & all
            };
            if allowed == 0 {
                return Err(KernelError::BadAffinity(t.name, t.affinity));
            }
            let hart = (0..self.harts)
                .filter(|&h| allowed & (1 << h) != 0)
                .min_by_key(|&h| loads[h])
                .expect("allowed mask is non-empty");
            loads[hart] += 1;
            placement.push((t.name.clone(), hart));
            per_hart[hart].push(t);
        }

        let mut harts = Vec::with_capacity(self.harts);
        for (h, tasks) in per_hart.into_iter().enumerate() {
            let mut k = KernelBuilder::new(self.preset);
            k.tick_period(self.tick_period).probe(self.probe).ipi(true);
            for (name, initial) in &self.sems {
                k.semaphore(name, *initial);
            }
            if let Some((eh, name)) = &self.ext_irq {
                if *eh == h {
                    k.ext_irq_gives(name);
                }
            }
            if tasks.is_empty() {
                // Every image needs one user task; a hart left without
                // work parks like a second idle task.
                k.task("parked", 1, |t| {
                    t.asm_mut().wfi();
                });
            }
            for t in tasks {
                k.task(&t.name, t.prio, t.body);
            }
            harts.push(k.build()?);
        }
        Ok(SmpImage { harts, placement })
    }
}

/// One bootable image per hart, plus where each declared task landed.
#[derive(Debug, Clone)]
pub struct SmpImage {
    /// Per-hart guest images, index = hart id.
    pub harts: Vec<GuestImage>,
    /// `(task name, hart)` in declaration order (idle/parked tasks are
    /// per-image implementation details and not listed).
    pub placement: Vec<(String, usize)>,
}

impl SmpImage {
    /// Installs every hart's image into the matching hart of `smp`.
    ///
    /// # Panics
    ///
    /// Panics when the hart counts differ or a preset mismatches.
    pub fn install(&self, smp: &mut SmpSystem) {
        assert_eq!(
            smp.harts(),
            self.harts.len(),
            "image built for {} harts, system has {}",
            self.harts.len(),
            smp.harts()
        );
        for (h, image) in self.harts.iter().enumerate() {
            image.install(smp.hart_mut(h));
        }
    }

    /// The hart the named task was placed on.
    pub fn hart_of(&self, task: &str) -> Option<usize> {
        self.placement
            .iter()
            .find(|(n, _)| n == task)
            .map(|&(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtosunit::system::RunExit;
    use rvsim_cores::CoreKind;
    use rvsim_isa::csr;

    #[test]
    fn affinity_free_tasks_spread_evenly() {
        let mut b = SmpKernelBuilder::new(Preset::Vanilla, 4);
        for i in 0..8 {
            b.task(&format!("t{i}"), 1, |t| t.yield_now());
        }
        let img = b.build().expect("builds");
        for h in 0..4 {
            let on_h = img.placement.iter().filter(|&&(_, p)| p == h).count();
            assert_eq!(on_h, 2, "hart {h} should carry exactly 2 of 8 tasks");
        }
    }

    #[test]
    fn affinity_masks_pin_and_validate() {
        let mut b = SmpKernelBuilder::new(Preset::Vanilla, 2);
        b.task_on("pinned", 1, 0b10, |t| t.yield_now());
        let img = b.build().expect("builds");
        assert_eq!(img.hart_of("pinned"), Some(1));

        let mut bad = SmpKernelBuilder::new(Preset::Vanilla, 2);
        bad.task_on("oops", 1, 0b100, |t| t.yield_now());
        assert!(matches!(
            bad.build(),
            Err(KernelError::BadAffinity(_, 0b100))
        ));
    }

    #[test]
    fn cross_hart_ipi_wakes_a_blocked_task() {
        let mut b = SmpKernelBuilder::new(Preset::Vanilla, 2);
        b.semaphore("inbox", 0);
        b.task_on("rx", 3, 0b01, |t| {
            t.sem_take("inbox");
            t.halt();
        });
        b.task_on("tx", 3, 0b10, |t| {
            t.busy_work(50);
            t.ipi_give(0, "inbox");
            // Throttle between sends: task bodies loop forever, and an
            // unthrottled IPI flood saturates the receiver's ISR (each
            // episode outlasts the send period), starving the woken task
            // of cycles — exactly the livelock real cores exhibit.
            t.delay(5);
        });
        let img = b.build().expect("builds");
        assert_eq!(img.hart_of("rx"), Some(0));
        assert_eq!(img.hart_of("tx"), Some(1));

        let mut smp = SmpSystem::new(CoreKind::Cv32e40p, Preset::Vanilla, 2);
        img.install(&mut smp);
        assert_eq!(
            smp.run(400_000),
            RunExit::Halted,
            "rx never woke: the IPI give was lost"
        );
        let shared = smp.shared();
        let shared = shared.borrow();
        let (sent, recvd) = shared.ipi_counts(0);
        assert!(sent >= 1, "tx sent at least one IPI");
        assert_eq!(
            sent,
            recvd + shared.mailbox_depth(0) as u64,
            "IPI conservation: every send is drained or still queued"
        );
        // The wakeup arrived through a software-interrupt episode.
        assert!(smp
            .hart(0)
            .records()
            .iter()
            .any(|r| r.cause == csr::CAUSE_SOFTWARE));
    }

    #[test]
    fn every_preset_builds_a_two_hart_image() {
        for p in Preset::LATENCY_SET {
            let mut b = SmpKernelBuilder::new(p, 2);
            b.semaphore("s", 0);
            b.task_on("a", 2, 0b01, |t| {
                t.sem_take("s");
                t.yield_now();
            });
            b.task_on("b", 2, 0b10, |t| {
                t.ipi_give(0, "s");
                t.delay(1);
            });
            let img = b.build().unwrap_or_else(|e| panic!("{p}: {e}"));
            assert_eq!(img.harts.len(), 2);
        }
    }
}
