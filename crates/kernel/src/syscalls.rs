//! Task-level kernel services: `yield`, `delay`, semaphore take/give.
//!
//! These are real subroutines called from task bodies (via `jal ra`).
//! They follow the standard ABI for saved registers, run their critical
//! sections with interrupts disabled, and defer the actual switch to the
//! ISR by raising the software interrupt (paper Fig. 2 (c)).

use crate::emit::{self, LabelGen};
use crate::klayout::{sem, tcb, KernelLayout};
use crate::probe::{self, Probe};
use rtosunit::{Preset, RtosUnitConfig};
use rvsim_isa::{Asm, Reg};

fn hw_sync(preset: Preset) -> bool {
    RtosUnitConfig::from_preset(preset).is_some_and(|c| c.hw_sync)
}

/// Emits every syscall for the given configuration. Labels:
/// `k_yield`, `k_delay`, `k_sem_take`, `k_sem_give`.
///
/// With `probes` the software paths announce each list/count transition
/// from inside its IRQ-disabled critical section (see [`crate::probe`]);
/// the hardware-synchronisation paths (§7) are unprobed.
pub fn gen_syscalls(a: &mut Asm, lg: &mut LabelGen, preset: Preset, probes: bool) {
    gen_yield(a);
    gen_delay(a, lg, preset, probes);
    gen_sem_take(a, lg, preset, probes);
    gen_sem_give(a, lg, preset, probes);
}

/// `k_yield`: voluntary yield. Clobbers `t0`, `t1`.
fn gen_yield(a: &mut Asm) {
    a.label("k_yield");
    emit::trigger_yield(a);
    a.ret();
}

/// `k_delay(a0 = ticks)`: blocks the current task for `ticks` timer ticks
/// (`vTaskDelay`). Clobbers caller-saved registers.
fn gen_delay(a: &mut Asm, lg: &mut LabelGen, preset: Preset, probes: bool) {
    a.label("k_delay");
    a.addi(Reg::Sp, Reg::Sp, -4);
    a.sw(Reg::Ra, 0, Reg::Sp);
    emit::disable_irq(a);
    a.li(Reg::T0, KernelLayout::CURRENT_TCB as i32);
    a.lw(Reg::A1, 0, Reg::T0); // a1 = self
    if preset.has_sched() {
        // Hardware path: RM_TASK + ADD_DELAY (§4.4). ADD_DELAY applies to
        // the currently running task, so only priority and duration are
        // passed (Fig. 5 (d)).
        a.lw(Reg::T0, tcb::ID, Reg::A1);
        a.rm_task(Reg::T0);
        a.lw(Reg::T1, tcb::PRIO, Reg::A1);
        a.add_delay(Reg::T1, Reg::A0);
    } else {
        // Software path: leave the ready list, sorted-insert into the
        // delay list (Fig. 2 (f)).
        a.li(Reg::T0, KernelLayout::TICK_COUNT as i32);
        a.lw(Reg::T5, 0, Reg::T0);
        a.add(Reg::T5, Reg::T5, Reg::A0); // wake tick
        emit::ready_remove(a, lg, Reg::A1);
        emit::delay_insert(a, lg);
    }
    if probes {
        probe::emit_probe(a, Probe::DelayDone);
    }
    emit::trigger_yield(a);
    emit::enable_irq(a); // the pending yield is taken right here
    a.lw(Reg::Ra, 0, Reg::Sp);
    a.addi(Reg::Sp, Reg::Sp, 4);
    a.ret();
}

/// `k_sem_take(a0 = semaphore address, or hardware id with the §7
/// extension)`: P operation, blocking.
fn gen_sem_take(a: &mut Asm, lg: &mut LabelGen, preset: Preset, probes: bool) {
    if hw_sync(preset) {
        // Hardware path: one custom instruction; on a blocking take the
        // unit removes us from the ready list and queues us on the
        // semaphore, and SEM_GIVE hands the token over directly — after
        // the yield returns, the token is ours.
        let got = lg.fresh("take_hw_got");
        a.label("k_sem_take");
        emit::disable_irq(a);
        a.li(Reg::T1, KernelLayout::CURRENT_TCB as i32);
        a.lw(Reg::T1, 0, Reg::T1);
        a.lw(Reg::T1, tcb::PRIO, Reg::T1);
        a.hw_sem_take(Reg::T0, Reg::A0, Reg::T1);
        a.bnez(Reg::T0, &got);
        emit::trigger_yield(a);
        emit::enable_irq(a);
        a.ret(); // resumed ⇒ direct hand-off granted
        a.label(&got);
        emit::enable_irq(a);
        a.ret();
        return;
    }
    let retry = lg.fresh("take_retry");
    let block = lg.fresh("take_block");
    a.label("k_sem_take");
    a.addi(Reg::Sp, Reg::Sp, -8);
    a.sw(Reg::Ra, 0, Reg::Sp);
    a.sw(Reg::S0, 4, Reg::Sp);
    a.mv(Reg::S0, Reg::A0);
    a.label(&retry);
    emit::disable_irq(a);
    a.lw(Reg::T0, sem::COUNT, Reg::S0);
    a.beqz(Reg::T0, &block);
    a.addi(Reg::T0, Reg::T0, -1);
    a.sw(Reg::T0, sem::COUNT, Reg::S0);
    if probes {
        probe::emit_probe(a, Probe::TakeOk);
    }
    emit::enable_irq(a);
    a.lw(Reg::Ra, 0, Reg::Sp);
    a.lw(Reg::S0, 4, Reg::Sp);
    a.addi(Reg::Sp, Reg::Sp, 8);
    a.ret();
    a.label(&block);
    // Leave the ready list and join the semaphore's priority-ordered
    // event list (Fig. 2 (d)), then yield and retry once woken (e).
    a.li(Reg::T0, KernelLayout::CURRENT_TCB as i32);
    a.lw(Reg::A1, 0, Reg::T0);
    if preset.has_sched() {
        a.lw(Reg::T0, tcb::ID, Reg::A1);
        a.rm_task(Reg::T0);
    } else {
        emit::ready_remove(a, lg, Reg::A1);
    }
    emit::event_insert(a, lg, Reg::S0);
    if probes {
        probe::emit_probe(a, Probe::TakeBlock);
    }
    emit::trigger_yield(a);
    emit::enable_irq(a);
    a.j(&retry);
}

/// `k_sem_give(a0 = semaphore address, or hardware id with the §7
/// extension)`: V operation. Wakes the highest-priority waiter and yields
/// if that waiter outranks the caller.
fn gen_sem_give(a: &mut Asm, lg: &mut LabelGen, preset: Preset, probes: bool) {
    if hw_sync(preset) {
        let done = lg.fresh("give_hw_done");
        a.label("k_sem_give");
        emit::disable_irq(a);
        a.hw_sem_give(Reg::T0, Reg::A0); // t0 = woken priority + 1, or 0
        a.li(Reg::T1, KernelLayout::CURRENT_TCB as i32);
        a.lw(Reg::T1, 0, Reg::T1);
        a.lw(Reg::T1, tcb::PRIO, Reg::T1);
        a.addi(Reg::T1, Reg::T1, 1);
        a.bge(Reg::T1, Reg::T0, &done); // our prio >= woken prio: no yield
        emit::trigger_yield(a);
        a.label(&done);
        emit::enable_irq(a);
        a.ret();
        return;
    }
    let no_waiter = lg.fresh("give_nowaiter");
    let out = lg.fresh("give_out");
    a.label("k_sem_give");
    a.addi(Reg::Sp, Reg::Sp, -8);
    a.sw(Reg::Ra, 0, Reg::Sp);
    a.sw(Reg::S0, 4, Reg::Sp);
    a.mv(Reg::S0, Reg::A0);
    emit::disable_irq(a);
    a.lw(Reg::T0, sem::COUNT, Reg::S0);
    a.addi(Reg::T0, Reg::T0, 1);
    a.sw(Reg::T0, sem::COUNT, Reg::S0);
    emit::event_pop(a, lg, Reg::S0); // a1 = waiter or 0
    if probes {
        // Outcome probe, still under the disabled-IRQ window so it is
        // atomic with the count bump and the pop above.
        let woke = lg.fresh("give_probe_woke");
        let probed = lg.fresh("give_probe_done");
        a.bnez(Reg::A1, &woke);
        probe::emit_probe(a, Probe::GiveNoWake);
        a.j(&probed);
        a.label(&woke);
        probe::emit_probe_id(a, Probe::GiveWoke { id: 0 }.encode(), Reg::A1);
        a.label(&probed);
    }
    a.beqz(Reg::A1, &no_waiter);
    if preset.has_sched() {
        a.lw(Reg::T0, tcb::ID, Reg::A1);
        a.lw(Reg::T1, tcb::PRIO, Reg::A1);
        a.add_ready(Reg::T0, Reg::T1);
    } else {
        emit::ready_push_back(a, lg, Reg::A1);
    }
    // Preempt immediately if the waiter has higher priority.
    a.lw(Reg::T0, tcb::PRIO, Reg::A1);
    a.li(Reg::T1, KernelLayout::CURRENT_TCB as i32);
    a.lw(Reg::T1, 0, Reg::T1);
    a.lw(Reg::T1, tcb::PRIO, Reg::T1);
    a.bge(Reg::T1, Reg::T0, &no_waiter);
    emit::trigger_yield(a);
    a.label(&no_waiter);
    emit::enable_irq(a);
    a.label(&out);
    let _ = &out;
    a.lw(Reg::Ra, 0, Reg::Sp);
    a.lw(Reg::S0, 4, Reg::Sp);
    a.addi(Reg::Sp, Reg::Sp, 8);
    a.ret();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syscalls_assemble_for_all_presets() {
        for p in Preset::LATENCY_SET {
            let mut a = Asm::new(0);
            let mut lg = LabelGen::new();
            gen_syscalls(&mut a, &mut lg, p, false);
            a.ebreak();
            let prog = a.finish().expect("syscalls assemble");
            assert!(prog.symbols.get("k_yield").is_some());
            assert!(prog.symbols.get("k_delay").is_some());
            assert!(prog.symbols.get("k_sem_take").is_some());
            assert!(prog.symbols.get("k_sem_give").is_some());
        }
    }

    #[test]
    fn hw_path_is_shorter_than_sw_path() {
        let len = |p: Preset| {
            let mut a = Asm::new(0);
            let mut lg = LabelGen::new();
            gen_syscalls(&mut a, &mut lg, p, false);
            a.finish().expect("assembles").words.len()
        };
        assert!(len(Preset::Slt) < len(Preset::Vanilla));
    }

    #[test]
    fn probes_are_opt_in_and_grow_the_sw_paths() {
        let len = |p: Preset, probes: bool| {
            let mut a = Asm::new(0);
            let mut lg = LabelGen::new();
            gen_syscalls(&mut a, &mut lg, p, probes);
            a.finish().expect("assembles").words.len()
        };
        for p in [Preset::Vanilla, Preset::Slt] {
            assert!(len(p, true) > len(p, false), "{p}: probes add stores");
        }
        // The §7 hardware take/give paths carry no probes; only the delay
        // path (shared with every preset) grows.
        let delta = len(Preset::SltHs, true) - len(Preset::SltHs, false);
        assert!(delta <= 5, "hw-sync take/give must stay unprobed");
    }
}
