//! The kernel builder: declares tasks and semaphores, emits the guest
//! image (text + initial data) for a given RTOSUnit preset.

use crate::emit::{self, LabelGen};
use crate::isr::{gen_isr, IsrSpec};
use crate::klayout::{canary_addr, tcb, tcb_checksum, KernelLayout, CANARY_MAGIC, NUM_PRIOS};
use crate::probe::{self, Probe};
use crate::protect::{self, ProtectSpec};
use crate::syscalls::gen_syscalls;
use rtosunit::layout::{
    ctx_index_of, ctx_word_addr, CTX_MEPC_IDX, CTX_MSTATUS_IDX, IMEM_BASE, MMIO_CONSOLE, MMIO_HALT,
    MMIO_IPI_SEND, MMIO_TRACE,
};
use rtosunit::{Preset, System};
use rvsim_isa::{csr, Asm, AsmError, Program, Reg};
use std::collections::HashMap;
use std::fmt;

/// Initial `mstatus` of a not-yet-run task: MPIE set so `mret` enables
/// interrupts, MPP = machine mode.
const INITIAL_MSTATUS: u32 = csr::MSTATUS_MPIE | csr::MSTATUS_MPP;

/// Kernel-construction errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// Assembly failed (label problems, range overflows).
    Asm(AsmError),
    /// Two tasks or semaphores share a name.
    DuplicateName(String),
    /// Task priority outside `1..NUM_PRIOS` (0 is reserved for idle).
    BadPriority(String, u8),
    /// More tasks than the hardware lists / lookup table support.
    TooManyTasks(usize),
    /// No user task was declared.
    NoTasks,
    /// An SMP task's affinity mask selects no hart of the system.
    BadAffinity(String, u32),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Asm(e) => write!(f, "assembly failed: {e}"),
            KernelError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            KernelError::BadPriority(n, p) => {
                write!(
                    f,
                    "task `{n}` has priority {p}; expected 1..={}",
                    NUM_PRIOS - 1
                )
            }
            KernelError::TooManyTasks(n) => write!(f, "{n} tasks exceed the capacity"),
            KernelError::NoTasks => write!(f, "at least one task is required"),
            KernelError::BadAffinity(n, m) => {
                write!(f, "task `{n}` affinity {m:#x} selects no hart")
            }
        }
    }
}

impl std::error::Error for KernelError {}

impl From<AsmError> for KernelError {
    fn from(e: AsmError) -> Self {
        KernelError::Asm(e)
    }
}

/// Handle passed to task-body closures; wraps the assembler with kernel
/// services. Bodies are automatically wrapped in an endless loop (FreeRTOS
/// tasks never return).
pub struct TaskCtx<'a> {
    asm: &'a mut Asm,
    lg: &'a mut LabelGen,
    layout: KernelLayout,
    sem_map: &'a HashMap<String, usize>,
    hw_sync: bool,
    probe: bool,
}

impl TaskCtx<'_> {
    /// Voluntarily yields the processor (software interrupt).
    pub fn yield_now(&mut self) {
        self.asm.call("k_yield");
    }

    /// Blocks for `ticks` timer ticks (`vTaskDelay`).
    pub fn delay(&mut self, ticks: u32) {
        self.asm.li(Reg::A0, ticks as i32);
        self.asm.call("k_delay");
    }

    fn sem_a0(&mut self, name: &str) {
        let idx = *self
            .sem_map
            .get(name)
            .unwrap_or_else(|| panic!("unknown semaphore `{name}` — declare it before build"));
        // With the §7 hardware-synchronisation extension semaphores are
        // addressed by hardware id, otherwise by control-block address.
        if self.hw_sync {
            self.asm.li(Reg::A0, idx as i32);
        } else {
            self.asm.li(Reg::A0, self.layout.sem_addr(idx) as i32);
        }
    }

    /// Takes (P) the named semaphore, blocking while unavailable.
    pub fn sem_take(&mut self, name: &str) {
        self.sem_a0(name);
        self.asm.call("k_sem_take");
    }

    /// Gives (V) the named semaphore, waking the highest-priority waiter.
    pub fn sem_give(&mut self, name: &str) {
        self.sem_a0(name);
        self.asm.call("k_sem_give");
    }

    /// Gives (V) the named semaphore *on another hart*: writes
    /// `(target_hart << 8) | (sem index + 1)` to the IPI doorbell, which
    /// raises the target's software interrupt; the target's ISR drains
    /// the mailbox and performs the give locally (the image must be built
    /// with [`KernelBuilder::ipi`] enabled on the receiving hart).
    ///
    /// The semaphore index is resolved against *this* image's
    /// declaration order — SMP images built by one
    /// [`SmpKernelBuilder`](crate::SmpKernelBuilder) share it.
    pub fn ipi_give(&mut self, target_hart: u32, name: &str) {
        let idx = *self
            .sem_map
            .get(name)
            .unwrap_or_else(|| panic!("unknown semaphore `{name}` — declare it before build"));
        let code = idx as u32 + 1;
        emit::disable_irq(self.asm);
        self.asm.li(Reg::T0, MMIO_IPI_SEND as i32);
        self.asm.li(Reg::T1, ((target_hart << 8) | code) as i32);
        self.asm.sw(Reg::T1, 0, Reg::T0);
        if self.probe {
            // Announced after the doorbell write but still inside the
            // IRQ-off window, so the trace orders the send before any
            // local consequence of it — and a checker that stops the run
            // when no IPI is queued can never separate a queued send from
            // its probe.
            probe::emit_probe(
                self.asm,
                Probe::IpiSend {
                    target: target_hart,
                    code,
                },
            );
        }
        emit::enable_irq(self.asm);
    }

    /// Locks a mutex (a semaphore created with count 1).
    pub fn mutex_lock(&mut self, name: &str) {
        self.sem_take(name);
    }

    /// Unlocks a mutex.
    pub fn mutex_unlock(&mut self, name: &str) {
        self.sem_give(name);
    }

    /// Writes a trace marker (collected by the platform with its cycle).
    pub fn trace_mark(&mut self, value: u32) {
        self.asm.li(Reg::T0, MMIO_TRACE as i32);
        self.asm.li(Reg::T1, value as i32);
        self.asm.sw(Reg::T1, 0, Reg::T0);
    }

    /// Writes `value` to the debug console.
    pub fn console(&mut self, value: u32) {
        self.asm.li(Reg::T0, MMIO_CONSOLE as i32);
        self.asm.li(Reg::T1, value as i32);
        self.asm.sw(Reg::T1, 0, Reg::T0);
    }

    /// Stops the simulation.
    pub fn halt(&mut self) {
        self.asm.li(Reg::T0, MMIO_HALT as i32);
        self.asm.sw(Reg::Zero, 0, Reg::T0);
    }

    /// Burns roughly `iters` loop iterations of CPU time.
    pub fn busy_work(&mut self, iters: u32) {
        let l = self.lg.fresh("busy");
        self.asm.li(Reg::T0, iters as i32);
        self.asm.label(&l);
        self.asm.addi(Reg::T0, Reg::T0, -1);
        self.asm.bnez(Reg::T0, &l);
    }

    /// A compute kernel that exercises a realistic register working set
    /// (about a dozen registers dirtied per pass) for `iters` iterations.
    /// Used by the benchmark workloads so dirty-bit configurations (§4.5)
    /// see representative store traffic.
    pub fn compute(&mut self, iters: u32) {
        let l = self.lg.fresh("comp");
        let a = &mut *self.asm;
        a.li(Reg::T0, iters as i32);
        a.li(Reg::S2, 0x13);
        a.li(Reg::S3, 7);
        a.li(Reg::S7, 0x5a5a);
        a.label(&l);
        a.add(Reg::S4, Reg::S2, Reg::S3);
        a.xor(Reg::S5, Reg::S4, Reg::S7);
        a.slli(Reg::S6, Reg::S5, 1);
        a.add(Reg::A2, Reg::S6, Reg::S4);
        a.srli(Reg::A3, Reg::A2, 2);
        a.add(Reg::A4, Reg::A3, Reg::S5);
        a.sub(Reg::S8, Reg::A4, Reg::S2);
        a.or(Reg::S9, Reg::S8, Reg::S3);
        a.add(Reg::S2, Reg::S3, Reg::A3);
        a.addi(Reg::S3, Reg::S3, 3);
        a.addi(Reg::T0, Reg::T0, -1);
        a.bnez(Reg::T0, &l);
    }

    /// A fresh local label for hand-written control flow.
    pub fn fresh_label(&mut self, stem: &str) -> String {
        self.lg.fresh(stem)
    }

    /// Raw access to the assembler for custom task code.
    pub fn asm_mut(&mut self) -> &mut Asm {
        self.asm
    }
}

type TaskBody = Box<dyn FnOnce(&mut TaskCtx)>;

struct TaskSpec {
    name: String,
    prio: u8,
    body: TaskBody,
}

/// Builds one guest kernel image for a preset. See the
/// [crate-level example](crate).
pub struct KernelBuilder {
    preset: Preset,
    tick_period: u32,
    hw_list_len: usize,
    tasks: Vec<TaskSpec>,
    sems: Vec<(String, u32)>,
    ext_sem: Option<String>,
    trace_phases: bool,
    probe: bool,
    ipi: bool,
    protect: bool,
    protect_kill: bool,
}

impl KernelBuilder {
    /// Creates a builder for `preset` with the default tick period.
    pub fn new(preset: Preset) -> KernelBuilder {
        KernelBuilder {
            preset,
            tick_period: rtosunit::system::DEFAULT_TICK_PERIOD,
            hw_list_len: 8,
            tasks: Vec::new(),
            sems: Vec::new(),
            ext_sem: None,
            trace_phases: false,
            probe: false,
            ipi: false,
            protect: false,
            protect_kill: true,
        }
    }

    /// Enables kernel self-protection ([`crate::protect`]): stack
    /// canaries checked on every switch, the tick watchdog the idle loop
    /// must pet, and the TCB checksum self-check. Real extra kernel work
    /// — perturbs latency, so it defaults off.
    pub fn protect(&mut self, on: bool) -> &mut Self {
        self.protect = on;
        self
    }

    /// Degradation policy for a clobbered canary (with
    /// [`protect`](Self::protect) on): `true` (the default) kills the
    /// corrupted task and reschedules; `false` halts. Hardware-scheduled
    /// presets always halt — their ready lists cannot be edited from
    /// software.
    pub fn protect_kill(&mut self, kill: bool) -> &mut Self {
        self.protect_kill = kill;
        self
    }

    /// Enables the ISR's IPI drain loop (SMP images): software interrupts
    /// also empty the hart's `MMIO_IPI_RECV` mailbox, giving semaphore
    /// `code - 1` per popped code. Single-hart images leave this off.
    pub fn ipi(&mut self, on: bool) -> &mut Self {
        self.ipi = on;
        self
    }

    /// Instruments the ISR with typed phase marks at its save/schedule
    /// boundaries (see [`rtosunit::PhaseCode`]). The extra stores change
    /// the measured switch latency, so this defaults off and is meant for
    /// waterfall analysis runs, not headline measurements.
    pub fn trace_phases(&mut self, on: bool) -> &mut Self {
        self.trace_phases = on;
        self
    }

    /// Instruments the kernel with scheduler-oracle probes (see
    /// [`crate::probe`]): every scheduler decision and every semaphore /
    /// delay-list transition is announced on the TRACE register from
    /// inside its critical section. Perturbs latency; keep off for
    /// measurements.
    pub fn probe(&mut self, on: bool) -> &mut Self {
        self.probe = on;
        self
    }

    /// Sets the hardware list capacity the kernel may assume (must match
    /// the attached unit's `list_len`; default 8). Bounds the task count
    /// in hardware-scheduled configurations.
    pub fn hw_list_len(&mut self, len: usize) -> &mut Self {
        self.hw_list_len = len;
        self
    }

    /// Sets the timer-tick period in cycles.
    pub fn tick_period(&mut self, cycles: u32) -> &mut Self {
        self.tick_period = cycles;
        self
    }

    /// Declares a task. The first declared task runs at boot. `prio` must
    /// be `1..NUM_PRIOS` (0 is the idle task). The body is wrapped in an
    /// endless loop.
    pub fn task(
        &mut self,
        name: &str,
        prio: u8,
        body: impl FnOnce(&mut TaskCtx) + 'static,
    ) -> &mut Self {
        self.tasks.push(TaskSpec {
            name: name.to_string(),
            prio,
            body: Box::new(body),
        });
        self
    }

    /// Declares a counting semaphore with an initial count.
    pub fn semaphore(&mut self, name: &str, initial: u32) -> &mut Self {
        self.sems.push((name.to_string(), initial));
        self
    }

    /// Declares a mutex (semaphore with count 1).
    pub fn mutex(&mut self, name: &str) -> &mut Self {
        self.semaphore(name, 1)
    }

    /// Binds the external interrupt to `sem_give(name)` inside the ISR
    /// (deferred interrupt handling).
    pub fn ext_irq_gives(&mut self, name: &str) -> &mut Self {
        self.ext_sem = Some(name.to_string());
        self
    }

    /// Assembles the kernel and computes the initial data image.
    ///
    /// # Errors
    ///
    /// Returns a [`KernelError`] for invalid declarations or assembly
    /// failures.
    pub fn build(mut self) -> Result<GuestImage, KernelError> {
        if self.tasks.is_empty() {
            return Err(KernelError::NoTasks);
        }
        for t in &self.tasks {
            if t.prio == 0 || t.prio as usize >= NUM_PRIOS {
                return Err(KernelError::BadPriority(t.name.clone(), t.prio));
            }
        }
        // The idle task: lowest priority, always ready, parks in wfi.
        // With self-protection on it also pets the watchdog each pass —
        // idle running at all is the liveness signal being monitored.
        let pet_watchdog = self.protect;
        self.tasks.push(TaskSpec {
            name: "idle".to_string(),
            prio: 0,
            body: Box::new(move |t: &mut TaskCtx| {
                if pet_watchdog {
                    protect::emit_watchdog_pet(t.asm_mut());
                }
                t.asm_mut().wfi();
            }),
        });

        let n = self.tasks.len();
        {
            let mut names: Vec<&str> = self
                .tasks
                .iter()
                .map(|t| t.name.as_str())
                .chain(self.sems.iter().map(|(s, _)| s.as_str()))
                .collect();
            names.sort_unstable();
            for w in names.windows(2) {
                if w[0] == w[1] {
                    return Err(KernelError::DuplicateName(w[0].to_string()));
                }
            }
        }
        if n > crate::klayout::MAX_TASKS || (self.preset.has_sched() && n > self.hw_list_len) {
            return Err(KernelError::TooManyTasks(n));
        }

        let layout = KernelLayout::new(n, self.sems.len());
        let sem_map: HashMap<String, usize> = self
            .sems
            .iter()
            .enumerate()
            .map(|(i, (s, _))| (s.clone(), i))
            .collect();
        let hw_sync = rtosunit::RtosUnitConfig::from_preset(self.preset).is_some_and(|c| c.hw_sync);
        let ext_sem_addr = match &self.ext_sem {
            Some(name) => {
                let idx = *sem_map.get(name).ok_or_else(|| {
                    KernelError::DuplicateName(format!("unknown ext-irq semaphore {name}"))
                })?;
                Some(if hw_sync {
                    idx as u32
                } else {
                    layout.sem_addr(idx)
                })
            }
            None => None,
        };

        let mut a = Asm::new(IMEM_BASE);
        let mut lg = LabelGen::new();

        // ---- boot ----------------------------------------------------
        a.li(Reg::Sp, layout.stack_top(0) as i32);
        a.la(Reg::T0, "isr");
        a.csrw(csr::MTVEC, Reg::T0);
        if self.preset.has_sched() {
            // Populate the hardware ready list; the boot task goes last so
            // it sits behind its priority peers, like a just-selected task.
            for i in (1..n).chain([0]) {
                a.li(Reg::T0, i as i32);
                a.li(Reg::T1, self.tasks[i].prio as i32);
                a.add_ready(Reg::T0, Reg::T1);
            }
        }
        if self.preset.has_store() {
            // Tell the unit which context chunk the boot task owns.
            a.li(Reg::T0, 0);
            a.set_context_id(Reg::T0);
        }
        if hw_sync {
            // Prime the hardware semaphore counters with their initial
            // counts (one SEM_GIVE per unit of count).
            for (j, (_, initial)) in self.sems.iter().enumerate() {
                for _ in 0..*initial {
                    a.li(Reg::T0, j as i32);
                    a.hw_sem_give(Reg::Zero, Reg::T0);
                }
            }
        }
        a.li(
            Reg::T0,
            (csr::MIP_MTIP | csr::MIP_MSIP | csr::MIP_MEIP) as i32,
        );
        a.csrw(csr::MIE, Reg::T0);
        a.enable_interrupts();
        a.j(&format!("task_{}", self.tasks[0].name));

        // ---- kernel --------------------------------------------------
        gen_isr(
            &mut a,
            &mut lg,
            &IsrSpec {
                preset: self.preset,
                tick_period: self.tick_period,
                ext_sem_addr,
                trace_phases: self.trace_phases,
                probe: self.probe,
                ipi: self.ipi,
                protect: self.protect.then_some(ProtectSpec {
                    n_tasks: n,
                    kill: self.protect_kill && !self.preset.has_sched(),
                }),
            },
        );
        gen_syscalls(&mut a, &mut lg, self.preset, self.probe);

        // ---- task bodies ----------------------------------------------
        let specs = std::mem::take(&mut self.tasks);
        let mut task_names = Vec::with_capacity(n);
        for spec in specs {
            let label = format!("task_{}", spec.name);
            a.label(&label);
            let mut ctx = TaskCtx {
                asm: &mut a,
                lg: &mut lg,
                layout,
                sem_map: &sem_map,
                hw_sync,
                probe: self.probe,
            };
            (spec.body)(&mut ctx);
            a.j(&label);
            task_names.push((spec.name, spec.prio));
        }

        let program = a.finish()?;

        // ---- initial data image ---------------------------------------
        let mut data: Vec<(u32, u32)> = Vec::new();
        data.push((KernelLayout::CURRENT_TCB, layout.tcb_addr(0)));
        for (i, (name, prio)) in task_names.iter().enumerate() {
            let tcb_addr = layout.tcb_addr(i);
            data.push((KernelLayout::lookup_addr(i), tcb_addr));
            data.push((tcb_addr.wrapping_add(tcb::ID as u32), i as u32));
            data.push((tcb_addr.wrapping_add(tcb::PRIO as u32), u32::from(*prio)));
            if i == 0 {
                continue; // the boot task is live, no saved context
            }
            let entry = program.symbols.addr(&format!("task_{name}"));
            let stack_top = layout.stack_top(i);
            if self.preset.has_store() {
                // Fixed context region (§4.2 (3)).
                let id = i as u32;
                data.push((ctx_word_addr(id, ctx_index_of(Reg::Sp)), stack_top));
                data.push((ctx_word_addr(id, CTX_MSTATUS_IDX), INITIAL_MSTATUS));
                data.push((ctx_word_addr(id, CTX_MEPC_IDX), entry));
            } else {
                // Stack-resident frame (Fig. 4 (a)); CV32RT uses its
                // rearranged 128-byte frame.
                let cv32rt = self.preset == Preset::Cv32rt;
                let frame = stack_top - crate::isr::frame_bytes(cv32rt);
                let off = |w: usize| crate::isr::frame_word_off(w, cv32rt) as u32;
                data.push((tcb_addr.wrapping_add(tcb::SAVED_SP as u32), frame));
                data.push((frame + off(ctx_index_of(Reg::Sp)), stack_top));
                data.push((frame + off(CTX_MSTATUS_IDX), INITIAL_MSTATUS));
                data.push((frame + off(CTX_MEPC_IDX), entry));
            }
        }
        if !self.preset.has_sched() {
            // Software ready queues: ids ascending per priority, with the
            // boot task moved behind its peers (it is "running").
            for prio in 0..NUM_PRIOS {
                let mut ids: Vec<usize> = (0..n)
                    .filter(|&i| task_names[i].1 as usize == prio)
                    .collect();
                if let Some(pos) = ids.iter().position(|&i| i == 0) {
                    let id0 = ids.remove(pos);
                    ids.push(id0);
                }
                if ids.is_empty() {
                    continue;
                }
                data.push((KernelLayout::ready_head_addr(prio), layout.tcb_addr(ids[0])));
                data.push((
                    KernelLayout::READY_TAIL + (prio as u32) * 4,
                    layout.tcb_addr(*ids.last().expect("non-empty")),
                ));
                for w in ids.windows(2) {
                    data.push((
                        layout.tcb_addr(w[0]).wrapping_add(tcb::NEXT as u32),
                        layout.tcb_addr(w[1]),
                    ));
                }
            }
        }
        if !hw_sync {
            for (j, (_, initial)) in self.sems.iter().enumerate() {
                if *initial != 0 {
                    data.push((layout.sem_addr(j), *initial));
                }
            }
        }
        if self.protect {
            // Plant the canaries and the expected TCB checksum; the
            // watchdog counter starts at DMEM's zero default.
            for i in 0..n {
                data.push((canary_addr(i), CANARY_MAGIC));
            }
            let prios: Vec<u32> = task_names.iter().map(|(_, p)| u32::from(*p)).collect();
            data.push((KernelLayout::TCB_CHECKSUM, tcb_checksum(&prios)));
        }

        Ok(GuestImage {
            program,
            data,
            preset: self.preset,
            layout,
            tick_period: self.tick_period,
            task_names,
            sem_names: self.sems.iter().map(|(s, _)| s.clone()).collect(),
        })
    }
}

/// A bootable guest image: program text plus initial data words.
#[derive(Debug, Clone)]
pub struct GuestImage {
    /// The assembled kernel + tasks.
    pub program: Program,
    /// `(address, value)` pairs to write into DMEM before boot.
    pub data: Vec<(u32, u32)>,
    /// The preset the image was built for.
    pub preset: Preset,
    /// The data layout used.
    pub layout: KernelLayout,
    /// Timer tick period in cycles.
    pub tick_period: u32,
    /// `(name, priority)` per task id (the idle task is last).
    pub task_names: Vec<(String, u8)>,
    /// Semaphore names in declaration order.
    pub sem_names: Vec<String>,
}

impl GuestImage {
    /// Installs the image into a [`System`] (text, data, tick period).
    ///
    /// # Panics
    ///
    /// Panics if the system was built for a different preset.
    pub fn install(&self, sys: &mut System) {
        assert_eq!(
            sys.preset(),
            self.preset,
            "image built for {} but system runs {}",
            self.preset,
            sys.preset()
        );
        sys.load_program(&self.program);
        for (addr, value) in &self.data {
            sys.platform.dmem.write_word(*addr, *value);
        }
        sys.set_timer_period(self.tick_period);
    }

    /// Task id of the named task.
    pub fn task_id(&self, name: &str) -> Option<usize> {
        self.task_names.iter().position(|(n, _)| n == name)
    }

    /// Total instruction count of the image (diagnostics).
    pub fn text_words(&self) -> usize {
        self.program.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_vanilla_two_tasks() {
        let mut k = KernelBuilder::new(Preset::Vanilla);
        k.task("a", 5, |t| t.yield_now());
        k.task("b", 5, |t| t.yield_now());
        let img = k.build().expect("builds");
        assert_eq!(img.task_names.len(), 3); // a, b, idle
        assert_eq!(img.task_id("idle"), Some(2));
        assert!(img.text_words() > 100);
    }

    #[test]
    fn idle_priority_is_reserved() {
        let mut k = KernelBuilder::new(Preset::Vanilla);
        k.task("bad", 0, |_| {});
        assert!(matches!(k.build(), Err(KernelError::BadPriority(_, 0))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut k = KernelBuilder::new(Preset::Vanilla);
        k.task("x", 1, |_| {});
        k.task("x", 2, |_| {});
        assert!(matches!(k.build(), Err(KernelError::DuplicateName(_))));
    }

    #[test]
    fn hw_sched_task_capacity() {
        let mut k = KernelBuilder::new(Preset::Slt);
        for i in 0..8 {
            k.task(&format!("t{i}"), 1, |_| {});
        }
        // 8 user tasks + idle = 9 > 8 hardware slots.
        assert!(matches!(k.build(), Err(KernelError::TooManyTasks(9))));
    }

    #[test]
    fn no_tasks_is_an_error() {
        assert!(matches!(
            KernelBuilder::new(Preset::Vanilla).build(),
            Err(KernelError::NoTasks)
        ));
    }

    #[test]
    fn images_differ_by_preset() {
        let build = |p: Preset| {
            let mut k = KernelBuilder::new(p);
            k.task("a", 5, |t| t.yield_now());
            k.task("b", 5, |t| t.yield_now());
            k.build().expect("builds").text_words()
        };
        // More hardware offloading = less software.
        assert!(build(Preset::Slt) < build(Preset::Vanilla));
    }
}
