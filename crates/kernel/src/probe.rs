//! Scheduler-oracle probe marks.
//!
//! The differential oracle (`rvsim-check`) validates kernel scheduling
//! against a host-side model of the ready/delay/event lists. For the model
//! to be *exact* rather than heuristic, every scheduler-relevant state
//! change must appear in the event trace atomically with the change
//! itself. These probes are single stores to the TRACE MMIO register
//! emitted *inside* the kernel's IRQ-disabled critical sections, so no
//! interrupt can slip between the list operation and its announcement:
//! the trace becomes a faithful serialization of kernel state evolution.
//!
//! Like the latency-waterfall phase marks ([`rtosunit::PhaseCode`]), the
//! probes are extra instructions that change measured latencies, so they
//! are strictly opt-in ([`KernelBuilder::probe`](crate::KernelBuilder))
//! and must stay off for headline measurements.
//!
//! # Encoding
//!
//! A probe value is `PROBE_BASE | (kind << 16) | payload` with
//! `PROBE_BASE = 0x6B00_0000` (`'k'` for kernel). The payload is a task id
//! for the kinds that carry one, zero otherwise. Task-loop marks used by
//! the oracle's generated scenarios live at `TASK_MARK_BASE = 0x6C00_0000`
//! with payload `task_id << 8 | step`. Neither range intersects the
//! phase-mark tag `0x5048_xxxx` or small benchmark marks.

use crate::klayout::tcb;
use rtosunit::layout::MMIO_TRACE;
use rvsim_isa::{Asm, Reg};

/// High byte tagging a TRACE write as a scheduler probe.
pub const PROBE_BASE: u32 = 0x6B00_0000;

/// High byte tagging a TRACE write as a scenario task-loop mark
/// (`TASK_MARK_BASE | task_id << 8 | step`).
pub const TASK_MARK_BASE: u32 = 0x6C00_0000;

/// Mask selecting the tag byte of a TRACE value.
pub const MARK_TAG_MASK: u32 = 0xff00_0000;

/// Mask selecting the kind field of a probe value.
const KIND_MASK: u32 = 0x00ff_0000;

/// One decoded scheduler probe. The `id` payloads are task ids (the
/// kernel's TCB `ID` field, i.e. declaration order with idle last).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// A task's `sem_take` succeeded: the count was decremented.
    TakeOk,
    /// A task's `sem_take` blocked: it left the ready list and joined the
    /// semaphore's priority-ordered event list.
    TakeBlock,
    /// A task's `sem_give` found no waiter: the count was incremented.
    GiveNoWake,
    /// A task's `sem_give` woke the highest-priority waiter `id` (count
    /// incremented, waiter moved back to the ready list to retry).
    GiveWoke {
        /// Task id of the woken waiter.
        id: u32,
    },
    /// A task registered itself on the delay list (`k_delay`), leaving
    /// the ready list.
    DelayDone,
    /// The ISR's deferred external-interrupt give found no waiter.
    IsrGiveNoWake,
    /// The ISR's deferred external-interrupt give woke waiter `id`.
    IsrGiveWoke {
        /// Task id of the woken waiter.
        id: u32,
    },
    /// The scheduler selected task `id` and stored its TCB to
    /// `currentTCB`; the context-switch tail follows.
    Sched {
        /// Task id of the selected task.
        id: u32,
    },
    /// A task posted an inter-processor give: `code` (semaphore index + 1)
    /// was written to `MMIO_IPI_SEND` addressed at hart `target`.
    IpiSend {
        /// Destination hart id.
        target: u32,
        /// IPI code (`semaphore index + 1`; 0 never travels).
        code: u32,
    },
    /// The ISR's IPI drain loop popped `code` from this hart's mailbox and
    /// gave the corresponding semaphore (an `IsrGive*` probe follows).
    IpiRecv {
        /// IPI code (`semaphore index + 1`).
        code: u32,
    },
}

const KIND_TAKE_OK: u32 = 1;
const KIND_TAKE_BLOCK: u32 = 2;
const KIND_GIVE_NOWAKE: u32 = 3;
const KIND_GIVE_WOKE: u32 = 4;
const KIND_DELAY_DONE: u32 = 5;
const KIND_ISR_GIVE_NOWAKE: u32 = 6;
const KIND_ISR_GIVE_WOKE: u32 = 7;
const KIND_SCHED: u32 = 8;
const KIND_IPI_SEND: u32 = 9;
const KIND_IPI_RECV: u32 = 10;

impl Probe {
    /// The TRACE-register encoding of this probe.
    pub fn encode(self) -> u32 {
        let (kind, payload) = match self {
            Probe::TakeOk => (KIND_TAKE_OK, 0),
            Probe::TakeBlock => (KIND_TAKE_BLOCK, 0),
            Probe::GiveNoWake => (KIND_GIVE_NOWAKE, 0),
            Probe::GiveWoke { id } => (KIND_GIVE_WOKE, id),
            Probe::DelayDone => (KIND_DELAY_DONE, 0),
            Probe::IsrGiveNoWake => (KIND_ISR_GIVE_NOWAKE, 0),
            Probe::IsrGiveWoke { id } => (KIND_ISR_GIVE_WOKE, id),
            Probe::Sched { id } => (KIND_SCHED, id),
            Probe::IpiSend { target, code } => {
                debug_assert!(target < 0x100 && code < 0x100);
                (KIND_IPI_SEND, (target << 8) | code)
            }
            Probe::IpiRecv { code } => {
                debug_assert!(code < 0x100);
                (KIND_IPI_RECV, code)
            }
        };
        PROBE_BASE | (kind << 16) | payload
    }

    /// Decodes a TRACE value; `None` for non-probe marks.
    pub fn decode(value: u32) -> Option<Probe> {
        if value & MARK_TAG_MASK != PROBE_BASE {
            return None;
        }
        let id = value & 0xffff;
        match (value & KIND_MASK) >> 16 {
            KIND_TAKE_OK => Some(Probe::TakeOk),
            KIND_TAKE_BLOCK => Some(Probe::TakeBlock),
            KIND_GIVE_NOWAKE => Some(Probe::GiveNoWake),
            KIND_GIVE_WOKE => Some(Probe::GiveWoke { id }),
            KIND_DELAY_DONE => Some(Probe::DelayDone),
            KIND_ISR_GIVE_NOWAKE => Some(Probe::IsrGiveNoWake),
            KIND_ISR_GIVE_WOKE => Some(Probe::IsrGiveWoke { id }),
            KIND_SCHED => Some(Probe::Sched { id }),
            KIND_IPI_SEND => Some(Probe::IpiSend {
                target: (id >> 8) & 0xff,
                code: id & 0xff,
            }),
            KIND_IPI_RECV => Some(Probe::IpiRecv { code: id & 0xff }),
            _ => None,
        }
    }
}

/// Encodes a scenario task-loop mark (`task` iteration reached `step`).
pub fn task_mark(task: u32, step: u32) -> u32 {
    debug_assert!(task < 0x100 && step < 0x100);
    TASK_MARK_BASE | (task << 8) | step
}

/// Decodes a task-loop mark back into `(task, step)`.
pub fn decode_task_mark(value: u32) -> Option<(u32, u32)> {
    if value & MARK_TAG_MASK != TASK_MARK_BASE {
        return None;
    }
    Some(((value >> 8) & 0xff, value & 0xff))
}

/// Emits a fixed-value probe store. Clobbers `t0`, `t1`; call only inside
/// an IRQ-disabled section where both are dead.
pub fn emit_probe(a: &mut Asm, probe: Probe) {
    a.li(Reg::T0, MMIO_TRACE as i32);
    a.li(Reg::T1, probe.encode() as i32);
    a.sw(Reg::T1, 0, Reg::T0);
}

/// Emits a probe whose id payload is read from the TCB pointed to by
/// `tcb_reg` (must not be `t0`/`t1`). `base` is the encoding of the probe
/// with id 0. Clobbers `t0`, `t1`.
pub fn emit_probe_id(a: &mut Asm, base: u32, tcb_reg: Reg) {
    debug_assert!(![Reg::T0, Reg::T1].contains(&tcb_reg));
    a.lw(Reg::T1, tcb::ID, tcb_reg);
    a.li(Reg::T0, base as i32);
    a.add(Reg::T1, Reg::T1, Reg::T0);
    a.li(Reg::T0, MMIO_TRACE as i32);
    a.sw(Reg::T1, 0, Reg::T0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtosunit::PhaseCode;

    #[test]
    fn probes_roundtrip() {
        let all = [
            Probe::TakeOk,
            Probe::TakeBlock,
            Probe::GiveNoWake,
            Probe::GiveWoke { id: 5 },
            Probe::DelayDone,
            Probe::IsrGiveNoWake,
            Probe::IsrGiveWoke { id: 0 },
            Probe::Sched { id: 15 },
            Probe::IpiSend { target: 3, code: 2 },
            Probe::IpiRecv { code: 1 },
        ];
        for p in all {
            assert_eq!(Probe::decode(p.encode()), Some(p));
        }
    }

    #[test]
    fn probe_ranges_do_not_collide() {
        for p in [Probe::TakeOk, Probe::Sched { id: 3 }] {
            assert_eq!(PhaseCode::decode(p.encode()), None);
            assert_eq!(decode_task_mark(p.encode()), None);
        }
        let m = task_mark(2, 7);
        assert_eq!(decode_task_mark(m), Some((2, 7)));
        assert_eq!(Probe::decode(m), None);
        assert_eq!(PhaseCode::decode(m), None);
        // Phase marks are neither probes nor task marks.
        assert_eq!(Probe::decode(PhaseCode::SaveDone.encode()), None);
        assert_eq!(decode_task_mark(PhaseCode::SaveDone.encode()), None);
    }

    #[test]
    fn id_payload_extraction() {
        let v = Probe::Sched { id: 9 }.encode();
        assert_eq!(v, 0x6B08_0009);
        assert_eq!(Probe::decode(v), Some(Probe::Sched { id: 9 }));
    }
}
