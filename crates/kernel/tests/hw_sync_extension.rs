//! End-to-end tests of the §7-extension hardware synchronisation
//! primitives (`SEM_TAKE`/`SEM_GIVE`): semantics must match the software
//! semaphores, and syscall overhead must shrink.

use freertos_lite::KernelBuilder;
use rtosunit::{Preset, System};
use rvsim_cores::CoreKind;

fn pingpong(preset: Preset, cycles: u64) -> System {
    let mut k = KernelBuilder::new(preset);
    k.semaphore("ping", 0);
    k.semaphore("pong", 0);
    k.task("producer", 5, |t| {
        t.trace_mark(1);
        t.sem_give("ping");
        t.sem_take("pong");
    });
    k.task("consumer", 5, |t| {
        t.sem_take("ping");
        t.trace_mark(2);
        t.sem_give("pong");
    });
    let img = k.build().expect("kernel builds");
    let mut sys = System::new(CoreKind::Cv32e40p, preset);
    img.install(&mut sys);
    sys.run(cycles);
    sys
}

#[test]
fn hw_semaphores_preserve_pingpong_semantics() {
    let sys = pingpong(Preset::SltHs, 300_000);
    let marks: Vec<u32> = sys
        .platform
        .mmio
        .trace_marks
        .iter()
        .map(|m| m.code)
        .collect();
    assert!(marks.len() > 20, "only {} handoffs", marks.len());
    for w in marks.windows(2) {
        assert_ne!(w[0], w[1], "handoffs must alternate strictly: {marks:?}");
    }
    let stats = sys.unit_stats().expect("unit attached");
    assert!(stats.sem_takes + stats.sem_blocks > 10, "{stats:?}");
    assert!(stats.sem_gives > 10, "{stats:?}");
}

#[test]
fn hw_semaphores_increase_throughput_over_slt() {
    // Same workload, same cycle budget: the hardware path eliminates the
    // software event-list manipulation, so more handoffs complete.
    let sw = pingpong(Preset::Slt, 300_000)
        .platform
        .mmio
        .trace_marks
        .len();
    let hw = pingpong(Preset::SltHs, 300_000)
        .platform
        .mmio
        .trace_marks
        .len();
    assert!(
        hw as f64 > sw as f64 * 1.05,
        "hardware semaphores should raise throughput: sw={sw} hw={hw}"
    );
}

#[test]
fn hw_mutex_provides_mutual_exclusion() {
    use rvsim_isa::Reg;
    const SCRATCH: u32 = rtosunit::layout::DMEM_BASE + 0x800;
    let mut k = KernelBuilder::new(Preset::SltHs);
    k.mutex("m");
    let body = |t: &mut freertos_lite::TaskCtx<'_>| {
        t.mutex_lock("m");
        let a = t.asm_mut();
        a.li(Reg::S2, SCRATCH as i32);
        a.lw(Reg::S3, 0, Reg::S2);
        t.yield_now();
        let a = t.asm_mut();
        a.addi(Reg::S3, Reg::S3, 1);
        a.sw(Reg::S3, 0, Reg::S2);
        t.mutex_unlock("m");
    };
    k.task("w1", 5, body);
    k.task("w2", 5, body);
    let img = k.build().expect("builds");
    let mut sys = System::new(CoreKind::Cv32e40p, Preset::SltHs);
    img.install(&mut sys);
    sys.run(300_000);
    let count = sys.platform.dmem.read_word(SCRATCH);
    assert!(count > 20, "workers stalled: {count}");
}

#[test]
fn hw_give_from_isr_wakes_handler() {
    let mut k = KernelBuilder::new(Preset::SltHs);
    k.semaphore("event", 0);
    k.ext_irq_gives("event");
    k.task("handler", 7, |t| {
        t.sem_take("event");
        t.trace_mark(0xE1);
    });
    k.task("background", 2, |t| {
        t.busy_work(50);
    });
    let img = k.build().expect("builds");
    let mut sys = System::new(CoreKind::Cv32e40p, Preset::SltHs);
    img.install(&mut sys);
    sys.schedule_external_irq(20_000);
    sys.run(60_000);
    let hit = sys
        .platform
        .mmio
        .trace_marks
        .iter()
        .find(|m| m.code == 0xE1)
        .expect("handler never ran");
    assert!(
        hit.cycle >= 20_000 && hit.cycle < 24_000,
        "handler at {}",
        hit.cycle
    );
}

#[test]
fn priority_handoff_prefers_highest_waiter() {
    // Three takers of different priorities block; a giver releases three
    // tokens; the wake order must be priority-descending.
    let mut k = KernelBuilder::new(Preset::SltHs);
    k.semaphore("res", 0);
    for (name, prio, mark) in [("lo", 3u8, 3u32), ("mid", 4, 4), ("hi", 5, 5)] {
        k.task(name, prio, move |t| {
            t.sem_take("res");
            t.trace_mark(mark);
            t.delay(50); // park afterwards
        });
    }
    k.task("giver", 2, |t| {
        t.delay(2); // let every taker block first
        t.sem_give("res");
        t.sem_give("res");
        t.sem_give("res");
        t.delay(50);
    });
    let img = k.build().expect("builds");
    let mut sys = System::new(CoreKind::Cv32e40p, Preset::SltHs);
    img.install(&mut sys);
    sys.run(80_000);
    let marks: Vec<u32> = sys
        .platform
        .mmio
        .trace_marks
        .iter()
        .map(|m| m.code)
        .filter(|v| (3..=5).contains(v))
        .take(3)
        .collect();
    assert_eq!(marks, [5, 4, 3], "wake order must follow priority");
}
