//! End-to-end guest-kernel tests: every ISR variant on every core must
//! schedule correctly, keep semaphore semantics, and wake delayed tasks.

use freertos_lite::KernelBuilder;
use rtosunit::layout::DMEM_BASE;
use rtosunit::{Preset, System};
use rvsim_cores::CoreKind;
use rvsim_isa::Reg;

/// Free scratch region for test counters (between the TCB array and the
/// task stacks).
const SCRATCH: u32 = DMEM_BASE + 0x800;

fn counter_task(ctx: &mut freertos_lite::TaskCtx<'_>, addr: u32) {
    let a = ctx.asm_mut();
    a.li(Reg::S2, addr as i32);
    a.lw(Reg::S3, 0, Reg::S2);
    a.addi(Reg::S3, Reg::S3, 1);
    a.sw(Reg::S3, 0, Reg::S2);
    ctx.yield_now();
}

/// Two equal-priority tasks that increment private counters and yield.
fn run_yield_pair(kind: CoreKind, preset: Preset, cycles: u64) -> (System, u32, u32) {
    let mut k = KernelBuilder::new(preset);
    k.tick_period(3000);
    k.task("a", 5, |t| counter_task(t, SCRATCH));
    k.task("b", 5, |t| counter_task(t, SCRATCH + 4));
    let img = k.build().expect("kernel builds");
    let mut sys = System::new(kind, preset);
    img.install(&mut sys);
    sys.run(cycles);
    let ca = sys.platform.dmem.read_word(SCRATCH);
    let cb = sys.platform.dmem.read_word(SCRATCH + 4);
    (sys, ca, cb)
}

#[test]
fn yield_pair_makes_progress_on_every_preset_and_core() {
    for kind in CoreKind::ALL {
        for preset in Preset::LATENCY_SET {
            let (sys, ca, cb) = run_yield_pair(kind, preset, 300_000);
            assert!(
                ca > 20 && cb > 20,
                "{kind} {preset}: counters stalled (a={ca}, b={cb})"
            );
            // Round-robin fairness between equal priorities.
            let ratio = ca as f64 / cb as f64;
            assert!(
                (0.5..=2.0).contains(&ratio),
                "{kind} {preset}: unfair scheduling a={ca} b={cb}"
            );
            assert!(
                sys.records().len() > 40,
                "{kind} {preset}: too few context switches ({})",
                sys.records().len()
            );
        }
    }
}

#[test]
fn semaphore_ping_pong_alternates_strictly() {
    for preset in [
        Preset::Vanilla,
        Preset::S,
        Preset::Sl,
        Preset::T,
        Preset::Slt,
        Preset::Split,
    ] {
        let mut k = KernelBuilder::new(preset);
        k.semaphore("ping", 0);
        k.semaphore("pong", 0);
        k.task("producer", 5, |t| {
            t.trace_mark(1);
            t.sem_give("ping");
            t.sem_take("pong");
        });
        k.task("consumer", 5, |t| {
            t.sem_take("ping");
            t.trace_mark(2);
            t.sem_give("pong");
        });
        let img = k.build().expect("builds");
        let mut sys = System::new(CoreKind::Cv32e40p, preset);
        img.install(&mut sys);
        sys.run(400_000);
        let marks: Vec<u32> = sys
            .platform
            .mmio
            .trace_marks
            .iter()
            .map(|m| m.code)
            .collect();
        assert!(marks.len() >= 10, "{preset}: only {} marks", marks.len());
        for (i, w) in marks.windows(2).enumerate() {
            assert_ne!(
                w[0], w[1],
                "{preset}: marks not alternating at {i}: {marks:?}"
            );
        }
        assert_eq!(marks[0], 1, "{preset}: producer must mark first");
    }
}

#[test]
fn delayed_task_wakes_after_its_ticks() {
    for preset in [Preset::Vanilla, Preset::T, Preset::Slt] {
        let tick = 1000u32;
        let mut k = KernelBuilder::new(preset);
        k.tick_period(tick);
        k.task("sleeper", 5, |t| {
            t.trace_mark(0xD0);
            t.delay(3);
            t.trace_mark(0xD1);
        });
        let img = k.build().expect("builds");
        let mut sys = System::new(CoreKind::Cv32e40p, preset);
        img.install(&mut sys);
        sys.run(40_000);
        let marks = &sys.platform.mmio.trace_marks;
        let d0 = marks.iter().find(|m| m.code == 0xD0).expect("slept").cycle;
        let d1 = marks
            .iter()
            .find(|m| m.code == 0xD1)
            .unwrap_or_else(|| panic!("{preset}: sleeper never woke; marks: {marks:?}"))
            .cycle;
        let slept = d1 - d0;
        // Three ticks of 1000 cycles, modulo phase: between 2 and 4 ticks.
        assert!(
            (2000..4500).contains(&slept),
            "{preset}: slept {slept} cycles, expected ≈3000"
        );
    }
}

#[test]
fn external_interrupt_defers_to_handler_task() {
    for preset in [Preset::Vanilla, Preset::Slt] {
        let mut k = KernelBuilder::new(preset);
        k.semaphore("event", 0);
        k.ext_irq_gives("event");
        // High-priority handler task blocks on the event semaphore.
        k.task("handler", 7, |t| {
            t.sem_take("event");
            t.trace_mark(0xE1);
        });
        // Background task spins.
        k.task("background", 2, |t| {
            t.busy_work(50);
        });
        let img = k.build().expect("builds");
        let mut sys = System::new(CoreKind::Cv32e40p, preset);
        img.install(&mut sys);
        sys.schedule_external_irq(20_000);
        sys.run(60_000);
        let hit = sys
            .platform
            .mmio
            .trace_marks
            .iter()
            .find(|m| m.code == 0xE1)
            .unwrap_or_else(|| panic!("{preset}: handler never ran"));
        assert!(
            hit.cycle >= 20_000 && hit.cycle < 25_000,
            "{preset}: handler latency too large (ran at {})",
            hit.cycle
        );
        // The deferred switch must be recorded as an external episode.
        assert!(sys
            .records()
            .iter()
            .any(|r| r.cause == rvsim_isa::csr::CAUSE_EXTERNAL));
    }
}

#[test]
fn priorities_starve_lower_tasks() {
    let mut k = KernelBuilder::new(Preset::Vanilla);
    k.task("high", 6, |t| counter_task(t, SCRATCH));
    k.task("low", 2, |t| counter_task(t, SCRATCH + 4));
    let img = k.build().expect("builds");
    let mut sys = System::new(CoreKind::Cv32e40p, Preset::Vanilla);
    img.install(&mut sys);
    sys.run(200_000);
    let high = sys.platform.dmem.read_word(SCRATCH);
    let low = sys.platform.dmem.read_word(SCRATCH + 4);
    assert!(
        high > 50,
        "high-priority task must run constantly (ran {high})"
    );
    assert_eq!(
        low, 0,
        "low-priority task must never run while high yields+runs"
    );
}

#[test]
fn mutex_provides_mutual_exclusion() {
    // Two tasks increment a shared counter under a mutex; a third value
    // checks for lost updates by re-reading after a yield inside the
    // critical section.
    let mut k = KernelBuilder::new(Preset::Slt);
    k.mutex("m");
    let body = |t: &mut freertos_lite::TaskCtx<'_>| {
        t.mutex_lock("m");
        let a = t.asm_mut();
        a.li(Reg::S2, SCRATCH as i32);
        a.lw(Reg::S3, 0, Reg::S2);
        t.yield_now(); // try to provoke interleaving inside the section
        let a = t.asm_mut();
        a.addi(Reg::S3, Reg::S3, 1);
        a.sw(Reg::S3, 0, Reg::S2);
        t.mutex_unlock("m");
    };
    k.task("w1", 5, body);
    k.task("w2", 5, body);
    let img = k.build().expect("builds");
    let mut sys = System::new(CoreKind::Cv32e40p, Preset::Slt);
    img.install(&mut sys);
    sys.run(400_000);
    let count = sys.platform.dmem.read_word(SCRATCH);
    assert!(count > 20, "workers stalled: {count}");
    // Count lock/unlock pairs via the semaphore count: must be 1 when no
    // one holds the mutex. (The run stops mid-flight, so just sanity-check
    // the counter kept increasing monotonically — lost updates would show
    // as a lower count than switch records imply; here we assert progress.)
}

#[test]
fn unit_stats_reflect_configuration() {
    let (sys, _, _) = run_yield_pair(CoreKind::Cv32e40p, Preset::Slt, 150_000);
    let stats = sys.unit_stats().expect("SLT has a unit");
    assert!(stats.interrupts > 10);
    assert!(stats.store_words > 0, "store FSM must run");
    assert!(stats.load_words > 0, "restore FSM must run");

    let (sys_s, _, _) = run_yield_pair(CoreKind::Cv32e40p, Preset::S, 150_000);
    let s = sys_s.unit_stats().expect("S has a unit");
    assert!(s.store_words > 0);
    assert_eq!(s.load_words, 0, "(S) restores in software");

    let (sys_v, _, _) = run_yield_pair(CoreKind::Cv32e40p, Preset::Vanilla, 150_000);
    assert!(sys_v.unit_stats().is_none());
}

#[test]
fn split_preloader_hits_on_pingpong() {
    // Give the preloader idle time to fill its 31-word buffer between
    // switches (tasks that yield back-to-back never leave the port idle
    // long enough — exactly the misprediction/incomplete case of §4.7).
    let mut k = KernelBuilder::new(Preset::Split);
    k.tick_period(5000);
    k.task("a", 5, |t| {
        t.busy_work(150);
        t.yield_now();
    });
    k.task("b", 5, |t| {
        t.busy_work(150);
        t.yield_now();
    });
    let img = k.build().expect("builds");
    let mut sys = System::new(CoreKind::Cv32e40p, Preset::Split);
    img.install(&mut sys);
    sys.run(400_000);
    let stats = sys.unit_stats().expect("SPLIT has a unit");
    assert!(
        stats.preload_hits + stats.preload_misses + stats.omitted_loads > 10,
        "preloader never consulted: {stats:?}"
    );
    assert!(
        stats.preload_hits > 0,
        "alternating yield pair should be predictable: {stats:?}"
    );
}

#[test]
fn slt_has_zero_jitter_on_deterministic_core_yields() {
    // On the deterministic CV32E40P, (SLT) voluntary-yield switches must
    // all take exactly the same number of cycles (the paper's headline
    // zero-jitter result).
    let (sys, _, _) = run_yield_pair(CoreKind::Cv32e40p, Preset::Slt, 300_000);
    let lat: Vec<u64> = sys
        .records()
        .iter()
        .filter(|r| r.cause == rvsim_isa::csr::CAUSE_SOFTWARE)
        .skip(2) // warm-up switches may differ (initial contexts)
        .map(|r| r.latency())
        .collect();
    assert!(lat.len() > 20);
    let min = lat.iter().min().expect("some");
    let max = lat.iter().max().expect("some");
    assert!(
        max - min <= 2,
        "SLT yield jitter on CV32E40P should be ~0, got {min}..{max}"
    );
}
