//! Differential tests for the kernel's inline list operations: random
//! operation sequences are emitted as real RV32 code, executed on the
//! CV32E40P engine, and the resulting in-memory lists are compared
//! against a host-side reference model.

#![cfg(feature = "proptest")]
// Default-off: requires the external `proptest` crate (network). See the
// crate's Cargo.toml for how to enable.

use freertos_lite::emit::{self, LabelGen};
use freertos_lite::klayout::{sem, tcb, KernelLayout, NUM_PRIOS};
use proptest::prelude::*;
use rvsim_cores::engine::{BusResponse, DataBus};
use rvsim_cores::{make_engine, CoreKind, NullCoprocessor};
use rvsim_isa::{Asm, Reg};
use rvsim_mem::{AccessSize, Mem};

const N_TASKS: usize = 8;

struct SramBus {
    mem: Mem,
}

impl DataBus for SramBus {
    fn core_access(&mut self, addr: u32, size: AccessSize, write: Option<u32>) -> BusResponse {
        match write {
            Some(v) => {
                self.mem.write(addr, size, v);
                BusResponse {
                    data: 0,
                    extra_latency: 0,
                }
            }
            None => BusResponse {
                data: self.mem.read(addr, size),
                extra_latency: 1,
            },
        }
    }

    fn unit_access(&mut self, _addr: u32, _write: Option<u32>) -> Option<u32> {
        None
    }
}

/// Host-side reference of the kernel's list state.
#[derive(Debug, Clone, Default)]
struct RefState {
    /// Ready queue (task indices) per priority.
    ready: Vec<Vec<usize>>,
    /// Delay list: (task, wake_tick), sorted by wake then FIFO.
    delay: Vec<(usize, u32)>,
    /// Event wait list of the single semaphore: priority-desc, FIFO ties.
    waiters: Vec<usize>,
    tick: u32,
    prio: [u8; N_TASKS],
}

impl RefState {
    fn sched_select(&mut self) -> usize {
        for p in (0..NUM_PRIOS).rev() {
            if let Some(&head) = self.ready[p].first() {
                if self.ready[p].len() > 1 {
                    self.ready[p].remove(0);
                    self.ready[p].push(head);
                }
                return head;
            }
        }
        panic!("reference: all queues empty");
    }

    fn delay_tick(&mut self) {
        self.tick += 1;
        let tick = self.tick;
        let mut i = 0;
        while i < self.delay.len() {
            if self.delay[i].1 <= tick {
                let (t, _) = self.delay.remove(i);
                self.ready[self.prio[t] as usize].push(t);
            } else {
                i += 1;
            }
        }
    }

    fn delay_insert(&mut self, t: usize, wake: u32) {
        let pos = self
            .delay
            .iter()
            .position(|&(_, w)| wake < w)
            .unwrap_or(self.delay.len());
        self.delay.insert(pos, (t, wake));
    }

    fn event_insert(&mut self, t: usize) {
        let pos = self
            .waiters
            .iter()
            .position(|&o| self.prio[o] < self.prio[t])
            .unwrap_or(self.waiters.len());
        self.waiters.insert(pos, t);
    }

    fn event_pop(&mut self) -> Option<usize> {
        if self.waiters.is_empty() {
            None
        } else {
            Some(self.waiters.remove(0))
        }
    }
}

#[derive(Debug, Clone)]
enum ListOp {
    PushBack(usize),
    Remove(usize),
    SchedSelect,
    DelayInsert(usize, u32),
    DelayTick,
    EventInsert(usize),
    EventPop,
}

fn arb_op() -> impl Strategy<Value = ListOp> {
    prop_oneof![
        (0..N_TASKS).prop_map(ListOp::PushBack),
        (0..N_TASKS).prop_map(ListOp::Remove),
        Just(ListOp::SchedSelect),
        (0..N_TASKS, 1u32..6).prop_map(|(t, d)| ListOp::DelayInsert(t, d)),
        Just(ListOp::DelayTick),
        (0..N_TASKS).prop_map(ListOp::EventInsert),
        Just(ListOp::EventPop),
    ]
}

/// Where is task `t` right now? (At most one list at a time.)
#[derive(Debug, Clone, Copy, PartialEq)]
enum Where {
    Free,
    Ready,
    Delayed,
    Waiting,
}

#[allow(clippy::needless_range_loop)]
fn run_sequence(prios: &[u8; N_TASKS], ops: &[ListOp]) -> Result<(), TestCaseError> {
    let layout = KernelLayout::new(N_TASKS, 1);
    let mut reference = RefState {
        ready: vec![Vec::new(); NUM_PRIOS],
        prio: *prios,
        ..Default::default()
    };
    let mut place = [Where::Free; N_TASKS];

    // Emit the valid subset of the sequence, mirroring it on the
    // reference model.
    let mut a = Asm::new(0);
    let mut lg = LabelGen::new();
    let tcb_addr = |t: usize| layout.tcb_addr(t) as i32;
    let sem_addr = layout.sem_addr(0) as i32;
    let mut emitted = 0;
    for op in ops {
        match *op {
            ListOp::PushBack(t) if place[t] == Where::Free => {
                a.li(Reg::A0, tcb_addr(t));
                emit::ready_push_back(&mut a, &mut lg, Reg::A0);
                reference.ready[prios[t] as usize].push(t);
                place[t] = Where::Ready;
            }
            ListOp::Remove(t) if place[t] == Where::Ready => {
                a.li(Reg::A0, tcb_addr(t));
                emit::ready_remove(&mut a, &mut lg, Reg::A0);
                reference.ready[prios[t] as usize].retain(|&x| x != t);
                place[t] = Where::Free;
            }
            ListOp::SchedSelect if place.contains(&Where::Ready) => {
                a.li(Reg::A0, 0);
                emit::sched_select(&mut a, &mut lg);
                // Record which TCB the guest selected for later checking.
                a.li(Reg::T6, (layout.sem_addr(0) + 64) as i32);
                a.sw(Reg::A0, 0, Reg::T6);
                let _ = reference.sched_select();
            }
            ListOp::DelayInsert(t, d) if place[t] == Where::Free => {
                let wake = reference.tick + d;
                a.li(Reg::A1, tcb_addr(t));
                a.li(Reg::T5, wake as i32);
                emit::delay_insert(&mut a, &mut lg);
                reference.delay_insert(t, wake);
                place[t] = Where::Delayed;
            }
            ListOp::DelayTick => {
                emit::delay_tick(&mut a, &mut lg);
                reference.delay_tick();
                for t in 0..N_TASKS {
                    if place[t] == Where::Delayed && !reference.delay.iter().any(|&(x, _)| x == t) {
                        place[t] = Where::Ready;
                    }
                }
            }
            ListOp::EventInsert(t) if place[t] == Where::Free => {
                a.li(Reg::S0, sem_addr);
                a.li(Reg::A1, tcb_addr(t));
                emit::event_insert(&mut a, &mut lg, Reg::S0);
                reference.event_insert(t);
                place[t] = Where::Waiting;
            }
            ListOp::EventPop => {
                a.li(Reg::S0, sem_addr);
                emit::event_pop(&mut a, &mut lg, Reg::S0);
                if let Some(t) = reference.event_pop() {
                    place[t] = Where::Free;
                }
            }
            _ => continue, // invalid in current state: skip
        }
        emitted += 1;
    }
    a.ebreak();
    if emitted == 0 {
        return Ok(());
    }
    let prog = a.finish().expect("sequence assembles");

    // Prepare guest memory: TCBs only (lists start empty).
    let mut bus = SramBus {
        mem: Mem::new(rtosunit::layout::DMEM_BASE, 0x1_0000),
    };
    for t in 0..N_TASKS {
        let addr = layout.tcb_addr(t);
        bus.mem
            .write_word(addr.wrapping_add(tcb::ID as u32), t as u32);
        bus.mem
            .write_word(addr.wrapping_add(tcb::PRIO as u32), u32::from(prios[t]));
    }

    let mut engine = make_engine(CoreKind::Cv32e40p, 0, 0x4_0000);
    engine.load_program(&prog);
    engine.run_with(&mut bus, &mut NullCoprocessor, 10_000_000, |_, _| {});
    prop_assert!(engine.halted(), "guest list code did not halt");

    // Reconstruct the guest's lists from memory and compare.
    let read_chain = |head: u32| -> Result<Vec<usize>, TestCaseError> {
        let mut out = Vec::new();
        let mut cur = head;
        while cur != 0 {
            let id = bus.mem.read_word(cur.wrapping_add(tcb::ID as u32)) as usize;
            out.push(id);
            cur = bus.mem.read_word(cur.wrapping_add(tcb::NEXT as u32));
            prop_assert!(out.len() <= N_TASKS, "cycle in a guest list");
        }
        Ok(out)
    };
    for p in 0..NUM_PRIOS {
        let head = bus.mem.read_word(KernelLayout::ready_head_addr(p));
        let got = read_chain(head)?;
        prop_assert_eq!(
            &got,
            &reference.ready[p],
            "ready[{}] diverged (guest vs reference)",
            p
        );
        // Tail pointer must match the last element.
        let tail = bus.mem.read_word(KernelLayout::READY_TAIL + (p as u32) * 4);
        let want_tail = reference.ready[p]
            .last()
            .map(|&t| layout.tcb_addr(t))
            .unwrap_or_default();
        if !reference.ready[p].is_empty() {
            prop_assert_eq!(tail, want_tail, "ready tail[{}] diverged", p);
        }
    }
    let delay_got = read_chain(bus.mem.read_word(KernelLayout::DELAY_HEAD))?;
    let delay_want: Vec<usize> = reference.delay.iter().map(|&(t, _)| t).collect();
    prop_assert_eq!(delay_got, delay_want, "delay list diverged");
    let wait_got = read_chain(
        bus.mem
            .read_word(layout.sem_addr(0).wrapping_add(sem::WAIT_HEAD as u32)),
    )?;
    prop_assert_eq!(wait_got, reference.waiters.clone(), "event list diverged");
    let tick = bus.mem.read_word(KernelLayout::TICK_COUNT);
    prop_assert_eq!(tick, reference.tick, "tick counter diverged");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn emitted_list_code_matches_reference(
        prios in proptest::array::uniform8(0u8..8),
        ops in proptest::collection::vec(arb_op(), 1..40),
    ) {
        run_sequence(&prios, &ops)?;
    }
}
