//! Differential test for the batched execution path.
//!
//! `System::run` burns through quiescent stretches with the engine's
//! `run_until`; `System::run_stepwise` is the cycle-by-cycle reference.
//! The two must be cycle-exact: identical switch episodes (trigger, entry
//! and `mret` timestamps), cycle counts, retirement counts and port
//! occupancy, for every core model and unit preset — including the
//! presets with background FSM activity (preloading, hardware
//! scheduling, CV32RT snapshots) where batching must correctly fall back
//! to per-cycle stepping.

use rtosbench::workloads;
use rtosunit::{Preset, System};
use rvsim_cores::{CoreKind, FaultEvent, FaultKind, FaultPlan};
use rvsim_isa::Reg;

/// A tame deterministic fault plan scaled to the workload's run length:
/// one of each benign kind, none of which can wedge the guest (they
/// perturb timing and values, not control flow).
fn tame_plan(run_cycles: u64) -> FaultPlan {
    let at = |f: u64| run_cycles * f / 10;
    FaultPlan::new(vec![
        FaultEvent {
            at_cycle: at(1),
            kind: FaultKind::SpuriousIpi,
        },
        FaultEvent {
            at_cycle: at(2),
            kind: FaultKind::MemFlip {
                addr: rtosunit::layout::DMEM_BASE + 4, // kernel tick count
                bit: 1,
            },
        },
        FaultEvent {
            at_cycle: at(3),
            kind: FaultKind::SpuriousIrq,
        },
        FaultEvent {
            at_cycle: at(4),
            kind: FaultKind::CacheUpset {
                addr: rtosunit::layout::DMEM_BASE,
            },
        },
        FaultEvent {
            at_cycle: at(5),
            kind: FaultKind::RegFlip {
                reg: Reg::S3,
                bit: 0,
            },
        },
        FaultEvent {
            at_cycle: at(6),
            kind: FaultKind::BusError,
        },
        FaultEvent {
            at_cycle: at(7),
            kind: FaultKind::DelayIrq { delay: 64 },
        },
    ])
}

fn run_one(
    core: CoreKind,
    preset: Preset,
    workload: &str,
    stepwise: bool,
    faulted: bool,
    blocks: bool,
) -> System {
    let w = workloads::by_name(workload).expect("workload exists");
    let image = workloads::build(&w, preset).expect("workload builds");
    let mut sys = System::new(core, preset);
    image.install(&mut sys);
    if faulted {
        sys.attach_fault_plan(tame_plan(w.run_cycles));
    }
    // Profile every run: the per-PC cycle attribution must be path-exact
    // too (asserted below), and enabling it must not perturb any of the
    // other equivalences.
    sys.set_profiling(true);
    if blocks {
        sys.set_block_cache(true);
    }
    if w.ext_irq_interval > 0 {
        let mut at = w.ext_irq_interval;
        while at < w.run_cycles {
            sys.schedule_external_irq(at);
            at += w.ext_irq_interval;
        }
    }
    if stepwise {
        sys.run_stepwise(w.run_cycles);
    } else {
        sys.run(w.run_cycles);
    }
    sys
}

fn assert_equivalent_inner(
    core: CoreKind,
    preset: Preset,
    workload: &str,
    faulted: bool,
    blocks: bool,
) {
    // The block translation cache only ever accelerates the batched
    // path; the stepwise reference always interprets per cycle.
    let mut fast = run_one(core, preset, workload, false, faulted, blocks);
    let mut slow = run_one(core, preset, workload, true, faulted, false);
    let ctx = format!("{core:?}/{preset}/{workload}/faulted={faulted}/blocks={blocks}");
    assert_eq!(
        fast.take_profile(),
        slow.take_profile(),
        "{ctx}: guest PC profiles diverged"
    );
    assert_eq!(
        fast.records(),
        slow.records(),
        "{ctx}: switch episodes diverged"
    );
    assert_eq!(
        fast.platform.cycle(),
        slow.platform.cycle(),
        "{ctx}: cycle counts diverged"
    );
    assert_eq!(
        fast.core.retired(),
        slow.core.retired(),
        "{ctx}: retirement diverged"
    );
    assert_eq!(
        fast.platform.port_occupancy(),
        slow.platform.port_occupancy(),
        "{ctx}: port occupancy diverged"
    );
    assert_eq!(
        fast.platform.mmio.trace_marks, slow.platform.mmio.trace_marks,
        "{ctx}: trace marks diverged"
    );
    assert_eq!(
        fast.unit_stats(),
        slow.unit_stats(),
        "{ctx}: unit counters diverged"
    );
    // With the block cache on, every architectural counter still matches
    // the per-cycle reference exactly; only the fast path's own
    // bookkeeping trio (block_hits/block_builds/fused_ops) is nonzero.
    assert_eq!(
        fast.core.counters().without_block_stats(),
        slow.core.counters().without_block_stats(),
        "{ctx}: core activity counters diverged"
    );
    if blocks {
        assert!(
            fast.core.counters().block_hits > 0,
            "{ctx}: block cache never engaged"
        );
    } else {
        assert_eq!(
            fast.core.counters(),
            slow.core.counters(),
            "{ctx}: block bookkeeping counters moved without the cache"
        );
    }
    assert_eq!(
        fast.faults_applied(),
        slow.faults_applied(),
        "{ctx}: applied fault counts diverged"
    );
    if faulted {
        assert!(fast.faults_applied() > 0, "{ctx}: plan never fired");
    }
}

fn assert_equivalent(core: CoreKind, preset: Preset, workload: &str) {
    assert_equivalent_inner(core, preset, workload, false, false);
}

#[test]
fn batched_run_matches_stepwise_across_the_latency_matrix() {
    // Workloads chosen to cover the interrupt sources: voluntary yields
    // (MSIP), periodic ticks (MTIP) and external IRQs (MEIP).
    for core in CoreKind::ALL {
        for preset in [
            Preset::Vanilla,
            Preset::Cv32rt,
            Preset::S,
            Preset::Slt,
            Preset::Split,
        ] {
            for workload in ["roundrobin_yield", "delay_periodic", "interrupt_latency"] {
                assert_equivalent(core, preset, workload);
            }
        }
    }
}

#[test]
fn batched_run_matches_stepwise_for_remaining_presets() {
    for preset in [
        Preset::Sl,
        Preset::T,
        Preset::St,
        Preset::Sdlo,
        Preset::Sdlot,
        Preset::SltHs,
    ] {
        assert_equivalent(CoreKind::Cv32e40p, preset, "pingpong_semaphore");
        assert_equivalent(CoreKind::NaxRiscv, preset, "priority_chain");
    }
}

#[test]
fn batched_run_matches_stepwise_with_a_fault_plan() {
    // Injection must not break the batching contract: the quiescent
    // horizon stops short of every planned fault, so batched and
    // stepwise runs stay bit-identical *with faults firing*.
    for core in CoreKind::ALL {
        for preset in [Preset::Vanilla, Preset::Slt] {
            for workload in ["delay_periodic", "interrupt_latency"] {
                assert_equivalent_inner(core, preset, workload, true, false);
            }
        }
    }
}

#[test]
fn blocks_enabled_run_matches_stepwise_across_the_latency_matrix() {
    for core in CoreKind::ALL {
        for preset in [Preset::Vanilla, Preset::Cv32rt, Preset::Slt, Preset::Split] {
            for workload in ["roundrobin_yield", "delay_periodic", "interrupt_latency"] {
                assert_equivalent_inner(core, preset, workload, false, true);
            }
        }
    }
}

#[test]
fn blocks_enabled_run_matches_stepwise_for_remaining_presets() {
    for preset in [
        Preset::Sl,
        Preset::T,
        Preset::St,
        Preset::Sdlo,
        Preset::Sdlot,
        Preset::SltHs,
    ] {
        assert_equivalent_inner(
            CoreKind::Cv32e40p,
            preset,
            "pingpong_semaphore",
            false,
            true,
        );
        assert_equivalent_inner(CoreKind::NaxRiscv, preset, "priority_chain", false, true);
    }
}

#[test]
fn blocks_enabled_run_matches_stepwise_with_a_fault_plan() {
    // Faults perturb registers, memory, IRQ lines and the cache while
    // blocks are live; the quiescent horizon still stops short of every
    // planned fault, so the translated path stays bit-identical too.
    for core in CoreKind::ALL {
        for preset in [Preset::Vanilla, Preset::Slt] {
            for workload in ["delay_periodic", "interrupt_latency"] {
                assert_equivalent_inner(core, preset, workload, true, true);
            }
        }
    }
}
