//! Suite-level consistency tests: the Fig. 9 aggregation must faithfully
//! pool the per-workload runs, and the newer workloads must exercise the
//! kernel paths they claim to.

use rtosbench::{run_workload, workloads, Fig9Row};
use rtosunit::{LatencyStats, Preset};
use rvsim_cores::CoreKind;

fn short(w: &workloads::Workload) -> workloads::Workload {
    let mut w = *w;
    w.run_cycles = 150_000;
    w
}

#[test]
fn queue_burst_exercises_counting_semantics() {
    let w = short(&workloads::by_name("queue_burst").expect("exists"));
    let r = run_workload(CoreKind::Cv32e40p, Preset::Slt, &w);
    assert!(r.latencies.len() > 20, "bursts must produce switches");
    // The flow-control semaphore bounds the queue: the run must not
    // deadlock (progress implies takes and gives kept pairing up).
    assert!(r.retired > 10_000);
}

#[test]
fn priority_chain_produces_back_to_back_preemptions() {
    let w = short(&workloads::by_name("priority_chain").expect("exists"));
    let r = run_workload(CoreKind::Cv32e40p, Preset::Vanilla, &w);
    // Each chain round is low→mid→high→(unwind): several voluntary
    // switches per round, all software-caused.
    let yields = r
        .records
        .iter()
        .filter(|rec| rec.cause == rvsim_isa::csr::CAUSE_SOFTWARE)
        .count();
    assert!(
        yields > 20,
        "the chain must preempt repeatedly, got {yields}"
    );
}

#[test]
fn pooled_stats_match_manual_pooling() {
    // Rebuild a Fig9Row by hand from per-workload runs and compare.
    let core = CoreKind::Cv32e40p;
    let preset = Preset::T;
    let mut pooled = Vec::new();
    for w in workloads::ALL {
        pooled.extend(run_workload(core, preset, &w).latencies);
    }
    let manual = LatencyStats::from_latencies(&pooled).expect("latencies");
    let row = rtosbench::run_suite(core, preset);
    assert_eq!(row.stats.count, manual.count);
    assert_eq!(row.stats.min, manual.min);
    assert_eq!(row.stats.max, manual.max);
    assert!((row.stats.mean - manual.mean).abs() < 1e-9);
}

#[test]
fn report_tables_render_all_rows() {
    let rows: Vec<Fig9Row> = [Preset::Vanilla, Preset::Slt]
        .into_iter()
        .map(|p| rtosbench::run_suite(CoreKind::Cv32e40p, p))
        .collect();
    let table = rtosbench::report::fig9_table("CV32E40P", &rows);
    assert!(table.contains("(vanilla)"));
    assert!(table.contains("(SLT)"));
    let breakdown = rtosbench::report::workload_breakdown(&rows[0]);
    for w in workloads::ALL {
        assert!(
            breakdown.contains(w.name),
            "missing {} in breakdown",
            w.name
        );
    }
}

#[test]
fn records_and_latencies_stay_in_sync() {
    let w = short(&workloads::by_name("mutex_workload").expect("exists"));
    let r = run_workload(CoreKind::Cva6, Preset::Sl, &w);
    assert_eq!(r.records.len(), r.latencies.len());
    for (rec, lat) in r.records.iter().zip(&r.latencies) {
        assert_eq!(rec.latency(), *lat);
    }
}
