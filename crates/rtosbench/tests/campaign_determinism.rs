//! Regression test for the campaign determinism guarantee: the same
//! `CampaignSpec` executed with 1 worker and with N workers must produce
//! byte-identical aggregated JSON, regardless of completion order.

use freertos_lite::{GuestImage, KernelBuilder, KernelError};
use rtosbench::{
    workloads, CampaignSpec, ConfigOverride, FilterPolicy, Json, RunSpec, WorkloadSpec,
};
use rtosunit::Preset;
use rvsim_cores::CoreKind;

fn pingpong_kernel(_param: u32, preset: Preset) -> Result<GuestImage, KernelError> {
    let mut k = KernelBuilder::new(preset);
    k.semaphore("ping", 0);
    k.semaphore("pong", 0);
    k.task("producer", 5, |t| {
        t.compute(5);
        t.sem_give("ping");
        t.sem_take("pong");
    });
    k.task("consumer", 5, |t| {
        t.sem_take("ping");
        t.sem_give("pong");
    });
    k.build()
}

/// A mixed-shape campaign: suite runs, a custom kernel with an override,
/// and an analytic row — everything the figure binaries use.
fn mixed_spec() -> CampaignSpec {
    let mut spec = CampaignSpec::matrix(
        "determinism_mixed",
        &[CoreKind::Cv32e40p, CoreKind::NaxRiscv],
        &[Preset::Vanilla, Preset::Slt],
        &[
            workloads::by_name("pingpong_semaphore").expect("exists"),
            workloads::by_name("interrupt_latency").expect("exists"),
        ],
    );
    let mut custom = RunSpec::new(
        CoreKind::NaxRiscv,
        Preset::Slt,
        WorkloadSpec::Custom {
            name: "pingpong_custom",
            param: 0,
            build: pingpong_kernel,
            run_cycles: 200_000,
            ext_irq_interval: 0,
        },
    );
    custom.overrides.push(ConfigOverride::CtxQueueDepth(4));
    custom.filter = FilterPolicy::WarmupOnly;
    spec.runs.push(custom);
    spec.runs.push(RunSpec::new(
        CoreKind::Cv32e40p,
        Preset::T,
        WorkloadSpec::Analytic {
            name: "toy_model",
            param: 16,
            eval: |p, _, _| Json::object().with("doubled", u64::from(p) * 2),
        },
    ));
    spec
}

#[test]
fn one_worker_and_many_workers_render_identical_json() {
    let spec = mixed_spec();
    let one = spec.run(1).to_json().render();
    let many = spec.run(8).to_json().render();
    assert_eq!(one, many, "campaign JSON must not depend on worker count");
    // And re-running with the same spec is fully reproducible.
    let again = spec.run(8).to_json().render();
    assert_eq!(many, again);
}

#[test]
fn artifact_excludes_host_dependent_fields() {
    let spec = mixed_spec();
    let campaign = spec.run(4);
    assert!(campaign.host_nanos > 0, "wall clock is tracked on the side");
    let rendered = campaign.to_json().render();
    assert!(
        !rendered.contains("nanos"),
        "host time must stay out of the artifact"
    );
    assert!(
        !rendered.contains("worker"),
        "worker count must stay out of the artifact"
    );
    assert!(rendered.starts_with('{') && rendered.ends_with("}\n"));
}
