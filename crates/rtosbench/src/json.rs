//! A minimal, dependency-free JSON value builder and serializer.
//!
//! Campaign artifacts (`results/*.json`) and BENCH reports are written
//! through this module so the whole experiment stack stays offline-friendly
//! (no serde). Serialization is deterministic: object keys keep insertion
//! order, floats use Rust's shortest round-trip formatting, and the writer
//! emits a stable two-space-indented layout — byte-identical output for
//! equal values, which the campaign determinism tests rely on.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (no hashing) so output
/// is reproducible.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers are kept exact (no float round-trip).
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for an empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends a key/value pair; panics if `self` is not an object.
    /// Returns `self` for chaining.
    pub fn with(mut self, key: &str, value: impl Into<Json>) -> Json {
        self.push(key, value);
        self
    }

    /// Appends a key/value pair in place; panics if `self` is not an object.
    pub fn push(&mut self, key: &str, value: impl Into<Json>) {
        match self {
            Json::Object(pairs) => pairs.push((key.to_string(), value.into())),
            _ => panic!("Json::push on non-object"),
        }
    }

    /// Whether this value renders without internal line breaks.
    fn is_scalar(&self) -> bool {
        !matches!(self, Json::Array(_) | Json::Object(_))
    }

    /// Renders with a trailing newline, two-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(f) => write_f64(out, *f),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Scalar-only arrays (e.g. latency vectors with thousands
                // of entries) render on one line to keep artifacts compact.
                if items.iter().all(Json::is_scalar) {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, depth);
                    }
                    out.push(']');
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// JSON has no NaN/Infinity; they serialize as `null`. Finite floats use
/// Rust's shortest round-trip `Display`, forced to keep a decimal point so
/// they stay float-typed for consumers.
fn write_f64(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}
impl From<u32> for Json {
    fn from(u: u32) -> Json {
        Json::UInt(u64::from(u))
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}
impl From<f64> for Json {
    fn from(f: f64) -> Json {
        Json::Float(f)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}
impl From<&[u64]> for Json {
    fn from(v: &[u64]) -> Json {
        Json::Array(v.iter().map(|&u| Json::UInt(u)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::object()
            .with("name", "fig9")
            .with("ok", true)
            .with("count", 3u64)
            .with("mean", 70.25)
            .with("tags", Json::Array(vec![Json::Int(1), Json::Null]));
        let s = j.render();
        assert!(s.contains("\"name\": \"fig9\""));
        assert!(s.contains("\"mean\": 70.25"));
        assert!(s.ends_with("}\n"));
        assert!(s.contains("null"));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        let mut s = String::new();
        write_f64(&mut s, 70.0);
        assert_eq!(s, "70.0");
        s.clear();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn strings_are_escaped() {
        let mut s = String::new();
        write_escaped(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn rendering_is_deterministic() {
        let build = || {
            Json::object()
                .with("rows", Json::Array(vec![Json::UInt(1), Json::UInt(2)]))
                .with("empty", Json::object())
                .with("none", Json::Array(vec![]))
        };
        assert_eq!(build().render(), build().render());
    }
}
