//! The open-loop tail-latency workload (`fig_tail`).
//!
//! Closed-loop benchmarks (fixed interrupt intervals, tasks that wait for
//! their own completions) suffer *coordinated omission*: when a switch
//! runs long, the next stimulus silently waits for it, so the measured
//! distribution under-reports exactly the latencies a deadline analysis
//! cares about. This module drives the deferred-interrupt-handling
//! workload with an **open-loop bursty arrival process** instead: the
//! arrival cycles are computed up front from a Markov-modulated process
//! and injected on schedule whether or not the guest has caught up, so
//! queueing delay lands in the measured distribution where it belongs.
//!
//! Everything is a plain `fn` (no captured state), so the spec slots into
//! [`WorkloadSpec::OpenLoop`](crate::campaign::WorkloadSpec::OpenLoop)
//! and stays `Send + Sync` for the campaign executor — and fully
//! deterministic: the arrival list is a pure function of
//! `(mean_gap, run_cycles)` via the in-tree [`Rng64`].

use crate::campaign::{CampaignSpec, FilterPolicy, RunSpec, WorkloadSpec};
use freertos_lite::{GuestImage, KernelBuilder, KernelError};
use rtosunit::Preset;
use rvsim_cores::CoreKind;
use rvsim_isa::rng::Rng64;

/// Cycle budget of one full-scale tail run.
pub const RUN_CYCLES: u64 = 2_000_000;

/// Cycle budget of one quick (CI smoke) tail run.
pub const QUICK_RUN_CYCLES: u64 = 400_000;

/// SLO latency budget (cycles) for the tail figure: generous against the
/// hardware-assisted presets' typical switch cost, tight against vanilla
/// worst cases — so the miss-rate column separates the configurations.
pub const SLO_CYCLES: u64 = 400;

/// Mean inter-arrival gaps (cycles) swept by the figure, densest where
/// the system approaches saturation.
pub const MEAN_GAPS: [u32; 3] = [4000, 1500, 700];

/// Markov-modulated bursty arrival schedule: a two-state process that
/// alternates geometric-dwell *calm* stretches (gaps around `mean_gap`)
/// and *burst* stretches (gaps around `mean_gap / 8`, minimum 20
/// cycles). Gaps are drawn uniformly in ±50% of the state mean, so
/// arrivals drift across timer-tick phases instead of locking to them.
///
/// Deterministic: the schedule is a pure function of the arguments, so
/// campaign artifacts built from it are byte-stable across runs, hosts
/// and worker counts.
pub fn bursty_arrivals(mean_gap: u32, run_cycles: u64) -> Vec<u64> {
    let mean_gap = u64::from(mean_gap.max(2));
    // Seed from the parameters so different sweep points decorrelate.
    let mut rng = Rng64::new(0x7a11_0000 ^ (mean_gap << 16) ^ run_cycles);
    let mut arrivals = Vec::new();
    let mut at = 0u64;
    let mut bursting = false;
    loop {
        let state_mean = if bursting {
            (mean_gap / 8).max(20)
        } else {
            mean_gap
        };
        // Uniform in [mean/2, 3*mean/2) — mean preserved, phase drifting.
        let gap = state_mean / 2 + rng.below(state_mean.max(1));
        at += gap.max(1);
        if at >= run_cycles {
            break;
        }
        arrivals.push(at);
        // Geometric dwell: ~12 arrivals per calm stretch, ~8 per burst.
        if bursting {
            if rng.chance(12) {
                bursting = false;
            }
        } else if rng.chance(8) {
            bursting = true;
        }
    }
    arrivals
}

/// Builds the tail guest image: the deferred-interrupt-handling pattern
/// (external IRQ gives a semaphore, a high-priority handler takes it)
/// over a compute-heavy background task, like the suite's
/// `interrupt_latency` — the workload whose latency distribution the
/// open-loop arrivals stress. `_mean_gap` is unused: the kernel does not
/// depend on the arrival process.
///
/// # Errors
///
/// Propagates kernel-construction errors (none occur for this shipped
/// workload).
pub fn build_tail_workload(_mean_gap: u32, preset: Preset) -> Result<GuestImage, KernelError> {
    let mut k = KernelBuilder::new(preset);
    k.tick_period(6000);
    k.semaphore("event", 0);
    k.ext_irq_gives("event");
    k.task("handler", 7, |t| {
        t.sem_take("event");
        t.compute(5);
    });
    k.task("background", 2, |t| {
        t.compute(25);
        t.yield_now();
    });
    k.build()
}

/// The `fig_tail` campaign: the open-loop bursty workload swept over
/// arrival rates × presets on CV32E40P, with telemetry (schema v3) and
/// the [`SLO_CYCLES`] budget — the artifact carries exact p50/p99/p99.9/
/// p99.99 and SLO miss rates per cell. Warmup-only filtering keeps the
/// queue-delayed episodes the closed-loop filter would drop.
///
/// `quick` shrinks the cycle budget for CI smoke runs; both shapes share
/// this one definition so the committed perf baseline and the figure
/// always measure the same campaign.
pub fn tail_spec(quick: bool) -> CampaignSpec {
    let run_cycles = if quick { QUICK_RUN_CYCLES } else { RUN_CYCLES };
    let mut spec = CampaignSpec::new(if quick { "fig_tail_quick" } else { "fig_tail" })
        .with_telemetry()
        .with_slo(SLO_CYCLES);
    for preset in [Preset::Vanilla, Preset::S, Preset::Slt] {
        for mean_gap in MEAN_GAPS {
            let mut run = RunSpec::new(
                CoreKind::Cv32e40p,
                preset,
                WorkloadSpec::OpenLoop {
                    name: "tail_bursty",
                    param: mean_gap,
                    build: build_tail_workload,
                    run_cycles,
                    arrivals: bursty_arrivals,
                },
            );
            run.filter = FilterPolicy::WarmupOnly;
            spec = spec.with(run);
        }
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_deterministic_sorted_and_bounded() {
        let a = bursty_arrivals(1500, 300_000);
        let b = bursty_arrivals(1500, 300_000);
        assert_eq!(a, b, "arrival schedule must be reproducible");
        assert!(!a.is_empty());
        assert!(a.windows(2).all(|w| w[0] < w[1]), "arrivals must ascend");
        assert!(*a.last().unwrap() < 300_000);
        // The mean gap lands near the requested one (bursts pull it down).
        let span = a.last().unwrap() - a[0];
        let mean = span / (a.len() as u64 - 1);
        assert!(
            (300..=1800).contains(&mean),
            "mean inter-arrival gap {mean} implausible for 1500"
        );
    }

    #[test]
    fn different_params_give_different_schedules() {
        assert_ne!(
            bursty_arrivals(700, 100_000),
            bursty_arrivals(4000, 100_000)
        );
        let fast = bursty_arrivals(700, 100_000).len();
        let slow = bursty_arrivals(4000, 100_000).len();
        assert!(fast > 2 * slow, "rate sweep must change arrival counts");
    }

    #[test]
    fn tail_workload_builds_for_the_swept_presets() {
        for preset in [Preset::Vanilla, Preset::S, Preset::Slt] {
            build_tail_workload(1500, preset).expect("tail workload builds");
        }
    }

    #[test]
    fn quick_tail_campaign_reports_percentiles_and_slo_misses() {
        let mut spec = tail_spec(true);
        // One cell is enough for the smoke assertion.
        spec.runs.truncate(1);
        let c = spec.run(1);
        let sim = c.outcomes[0].sim.as_ref().expect("sim");
        assert!(sim.metrics.latency.count() > 0, "no switches measured");
        assert_eq!(
            sim.metrics.latency.count(),
            sim.latencies.len() as u64,
            "histogram must see every filtered episode"
        );
        let slo = sim.metrics.slo.expect("slo configured campaign-wide");
        assert_eq!(slo.threshold, SLO_CYCLES);
        assert_eq!(slo.total, sim.metrics.latency.count());
        let rendered = c.to_json().render();
        for key in ["\"p50\"", "\"p99\"", "\"p99.9\"", "\"p99.99\"", "miss_rate"] {
            assert!(rendered.contains(key), "artifact missing `{key}`");
        }
        assert!(rendered.contains("\"schema\": \"rtosunit-campaign-v3\""));
    }
}
