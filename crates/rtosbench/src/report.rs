//! Plain-text tables for the benchmark binaries.

use crate::runner::Fig9Row;

/// Formats one pooled Fig. 9 table for a core, one row per preset.
pub fn fig9_table(core_name: &str, rows: &[Fig9Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "## {core_name}: context-switch latency (cycles)\n\n"
    ));
    out.push_str(&format!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>9} {:>9}\n",
        "config", "mean", "min", "max", "jitter", "vs_van_µ", "vs_van_Δ"
    ));
    let vanilla = rows
        .iter()
        .find(|r| r.preset == rtosunit::Preset::Vanilla)
        .map(|r| (r.mean(), r.jitter()));
    for r in rows {
        let (dmu, ddelta) = match vanilla {
            Some((vm, vj)) if vm > 0.0 => (
                format!("{:+.0}%", (r.mean() / vm - 1.0) * 100.0),
                if vj > 0 {
                    format!("{:+.0}%", (r.jitter() as f64 / vj as f64 - 1.0) * 100.0)
                } else {
                    "-".to_string()
                },
            ),
            _ => ("-".to_string(), "-".to_string()),
        };
        out.push_str(&format!(
            "{:<10} {:>8.1} {:>8} {:>8} {:>8} {:>9} {:>9}\n",
            r.preset.label(),
            r.mean(),
            r.stats.min,
            r.stats.max,
            r.jitter(),
            dmu,
            ddelta
        ));
    }
    out
}

/// Formats the per-workload breakdown of one row.
pub fn workload_breakdown(row: &Fig9Row) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "### {} {} per-workload\n",
        row.core,
        row.preset.label()
    ));
    for (name, s) in &row.per_workload {
        out.push_str(&format!(
            "  {:<22} µ={:>7.1}  min={:>5}  max={:>5}  Δ={:>5}  n={}\n",
            name,
            s.mean,
            s.min,
            s.max,
            s.jitter(),
            s.count
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtosunit::{LatencyStats, Preset};
    use rvsim_cores::CoreKind;

    fn row(preset: Preset, mean: f64, min: u64, max: u64) -> Fig9Row {
        Fig9Row {
            core: CoreKind::Cv32e40p,
            preset,
            stats: LatencyStats {
                count: 10,
                min,
                max,
                mean,
            },
            per_workload: vec![],
        }
    }

    #[test]
    fn table_contains_relative_columns() {
        let rows = vec![
            row(Preset::Vanilla, 200.0, 150, 340),
            row(Preset::Slt, 70.0, 70, 70),
        ];
        let t = fig9_table("CV32E40P", &rows);
        assert!(t.contains("(vanilla)"));
        assert!(t.contains("(SLT)"));
        assert!(t.contains("-65%"), "relative mean missing:\n{t}");
    }

    #[test]
    fn breakdown_lists_workloads() {
        let mut r = row(Preset::T, 100.0, 90, 120);
        r.per_workload.push((
            "pingpong_semaphore",
            LatencyStats {
                count: 5,
                min: 90,
                max: 120,
                mean: 100.0,
            },
        ));
        let b = workload_breakdown(&r);
        assert!(b.contains("pingpong_semaphore"));
    }
}
