//! RTOSBench-style workloads and the latency measurement runner (§6.1).
//!
//! The paper evaluates context-switch latency with "20 iterations of all
//! tests provided by the RISC-V port of RTOSBench". This crate provides
//! five workloads exercising the same kernel paths:
//!
//! | Workload | Kernel path exercised |
//! |---|---|
//! | [`pingpong_semaphore`](workloads::ALL) | semaphore handoff, voluntary yields |
//! | `roundrobin_yield` | time slicing across equal priorities |
//! | `mutex_workload` | lock contention (also drives the power model, Fig. 13) |
//! | `delay_periodic` | delay-list insertion/expiry on timer ticks |
//! | `interrupt_latency` | deferred external-interrupt handling (§1) |
//!
//! The [`runner`] executes a workload on a `(core, preset)` pair, collects
//! the [`SwitchRecord`](rtosunit::SwitchRecord)s, and aggregates the
//! mean/min/max/jitter rows of Fig. 9.

pub mod campaign;
pub mod perfdiff;
pub mod report;
pub mod runner;
pub mod tail;
pub mod workloads;

pub use campaign::{
    Campaign, CampaignSpec, ConfigOverride, FailureKind, FilterPolicy, RunFailure, RunOutcome,
    RunSpec, SimOutcome, WarmStart, WorkloadSpec,
};
pub use perfdiff::{compare, DiffOptions, DiffReport, MetricDelta};
pub use runner::{run_suite, run_workload, run_workload_with, Fig9Row, RunResult};
pub use rvsim_snapshot::json;
pub use rvsim_snapshot::Json;
pub use workloads::{Workload, ALL as WORKLOADS};
