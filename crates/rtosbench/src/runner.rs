//! Executes workloads and aggregates the Fig. 9 rows.

use crate::workloads::{self, Workload};
use rtosunit::cv32rt::Cv32rtStats;
use rtosunit::{LatencyStats, Preset, SwitchRecord, System, UnitStats};
use rvsim_cores::CoreKind;

/// Switches skipped at the start of each run (cold contexts).
const WARMUP_SWITCHES: usize = 4;

/// Maximum trigger-to-entry wait for an episode to count as a measured
/// context switch. Interrupts that fire while the kernel is inside a
/// critical section (or another ISR) wait for it to end; such episodes
/// measure section length, not switch latency — RTOSBench arranges its
/// triggers so the switch is taken promptly from task code. The bound is
/// the pipeline-flush latency plus a small allowance for retiring the
/// current instruction (and, for voluntary yields, the interrupt-enable
/// that follows the MSIP write).
fn entry_threshold(core: CoreKind) -> u64 {
    u64::from(core.timing().irq_entry_latency) + 8
}

/// Result of one `(core, preset, workload)` run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Core model.
    pub core: CoreKind,
    /// Unit configuration.
    pub preset: Preset,
    /// Workload name.
    pub workload: &'static str,
    /// Context-switch latencies after warm-up, in cycles.
    pub latencies: Vec<u64>,
    /// The filtered switch episodes behind `latencies` (for per-cause
    /// breakdowns via [`rtosunit::trace`]).
    pub records: Vec<SwitchRecord>,
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// RTOSUnit activity counters, if a unit was attached.
    pub unit: Option<UnitStats>,
    /// CV32RT activity counters, if the comparison unit was attached.
    pub cv32rt: Option<Cv32rtStats>,
    /// Data-port occupancy `(total, core, unit)` cycles.
    pub port: (u64, u64, u64),
}

impl RunResult {
    /// Latency statistics of this run.
    pub fn stats(&self) -> Option<LatencyStats> {
        LatencyStats::from_latencies(&self.latencies)
    }
}

/// Runs one workload on one `(core, preset)` pair.
///
/// # Panics
///
/// Panics if the workload fails to build (a bug in the suite itself).
pub fn run_workload(core: CoreKind, preset: Preset, workload: &Workload) -> RunResult {
    run_workload_with(core, preset, workload, |_| {})
}

/// As [`run_workload`], with a hook to reconfigure the freshly built
/// [`System`] before the guest boots (used by the ablation studies to
/// change the ctxQueue depth or the arbitration level).
pub fn run_workload_with(
    core: CoreKind,
    preset: Preset,
    workload: &Workload,
    configure: impl FnOnce(&mut System),
) -> RunResult {
    let image = workloads::build(workload, preset).expect("workload builds");
    let mut sys = System::new(core, preset);
    configure(&mut sys);
    image.install(&mut sys);
    if workload.ext_irq_interval > 0 {
        let mut at = workload.ext_irq_interval;
        while at < workload.run_cycles {
            sys.schedule_external_irq(at);
            at += workload.ext_irq_interval;
        }
    }
    sys.run(workload.run_cycles);
    let threshold = entry_threshold(core);
    let records: Vec<SwitchRecord> = sys
        .records()
        .iter()
        .skip(WARMUP_SWITCHES)
        .filter(|r| r.entry_latency() <= threshold)
        .copied()
        .collect();
    let latencies: Vec<u64> = records.iter().map(SwitchRecord::latency).collect();
    RunResult {
        core,
        preset,
        workload: workload.name,
        latencies,
        records,
        cycles: sys.platform.cycle(),
        retired: sys.core.retired(),
        unit: sys.unit_stats(),
        cv32rt: sys.cv32rt_unit().map(|u| u.stats),
        port: sys.platform.port_occupancy(),
    }
}

/// One row of the Fig. 9 aggregation: all workloads pooled for a
/// `(core, preset)` pair.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Core model.
    pub core: CoreKind,
    /// Unit configuration.
    pub preset: Preset,
    /// Pooled statistics (µ, min, max; Δ = jitter).
    pub stats: LatencyStats,
    /// Per-workload statistics in suite order.
    pub per_workload: Vec<(&'static str, LatencyStats)>,
}

impl Fig9Row {
    /// Mean latency (µ).
    pub fn mean(&self) -> f64 {
        self.stats.mean
    }

    /// Jitter (Δ = max − min).
    pub fn jitter(&self) -> u64 {
        self.stats.jitter()
    }
}

/// Runs the full suite for one `(core, preset)` pair and pools the
/// latencies across workloads, as Fig. 9 does.
pub fn run_suite(core: CoreKind, preset: Preset) -> Fig9Row {
    let mut pooled = Vec::new();
    let mut per_workload = Vec::new();
    for w in workloads::ALL {
        let r = run_workload(core, preset, &w);
        if let Some(s) = r.stats() {
            per_workload.push((w.name, s));
        }
        pooled.extend(r.latencies);
    }
    let stats = LatencyStats::from_latencies(&pooled)
        .expect("suite produced no context switches");
    Fig9Row { core, preset, stats, per_workload }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::ALL;

    #[test]
    fn every_workload_produces_switches_on_vanilla() {
        for w in ALL {
            let r = run_workload(CoreKind::Cv32e40p, Preset::Vanilla, &w);
            assert!(
                r.latencies.len() >= 20,
                "{}: only {} switches (paper needs 20 iterations)",
                w.name,
                r.latencies.len()
            );
        }
    }

    #[test]
    fn slt_beats_vanilla_on_mean_latency() {
        let w = crate::workloads::by_name("roundrobin_yield").expect("exists");
        let v = run_workload(CoreKind::Cv32e40p, Preset::Vanilla, &w);
        let s = run_workload(CoreKind::Cv32e40p, Preset::Slt, &w);
        let vm = v.stats().expect("switches").mean;
        let sm = s.stats().expect("switches").mean;
        assert!(
            sm < vm * 0.6,
            "SLT ({sm:.0}) should be well below vanilla ({vm:.0})"
        );
    }

    #[test]
    fn unit_port_usage_only_with_unit() {
        let w = crate::workloads::by_name("pingpong_semaphore").expect("exists");
        let v = run_workload(CoreKind::Cv32e40p, Preset::Vanilla, &w);
        assert_eq!(v.port.2, 0, "vanilla has no unit traffic");
        let s = run_workload(CoreKind::Cv32e40p, Preset::Slt, &w);
        assert!(s.port.2 > 0, "SLT unit must use idle cycles");
    }
}
