//! Executes workloads and aggregates the Fig. 9 rows.

use crate::workloads::{self, Workload};
use rtosunit::cv32rt::Cv32rtStats;
use rtosunit::{LatencyStats, Preset, SwitchRecord, System, UnitStats};
use rvsim_cores::CoreKind;

/// Switches skipped at the start of each run (cold contexts).
pub const WARMUP_SWITCHES: usize = 4;

/// Maximum trigger-to-entry wait for an episode to count as a measured
/// context switch. Interrupts that fire while the kernel is inside a
/// critical section (or another ISR) wait for it to end; such episodes
/// measure section length, not switch latency — RTOSBench arranges its
/// triggers so the switch is taken promptly from task code. The bound is
/// the pipeline-flush latency plus a small allowance for retiring the
/// current instruction (and, for voluntary yields, the interrupt-enable
/// that follows the MSIP write).
pub fn entry_threshold(core: CoreKind) -> u64 {
    u64::from(core.timing().irq_entry_latency) + 8
}

/// Applies the episode filtering shared by every measurement path: drop
/// [`WARMUP_SWITCHES`] cold switches, then drop episodes whose
/// trigger-to-entry wait exceeds [`entry_threshold`] (critical-section
/// delays measure section length, not switch latency).
pub fn filter_episodes(core: CoreKind, records: &[SwitchRecord]) -> Vec<SwitchRecord> {
    let threshold = entry_threshold(core);
    records
        .iter()
        .skip(WARMUP_SWITCHES)
        .filter(|r| r.entry_latency() <= threshold)
        .copied()
        .collect()
}

/// Result of one `(core, preset, workload)` run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Core model.
    pub core: CoreKind,
    /// Unit configuration.
    pub preset: Preset,
    /// Workload name.
    pub workload: &'static str,
    /// Context-switch latencies after warm-up, in cycles.
    pub latencies: Vec<u64>,
    /// The filtered switch episodes behind `latencies` (for per-cause
    /// breakdowns via [`rtosunit::trace`]).
    pub records: Vec<SwitchRecord>,
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions retired.
    pub retired: u64,
    /// RTOSUnit activity counters, if a unit was attached.
    pub unit: Option<UnitStats>,
    /// CV32RT activity counters, if the comparison unit was attached.
    pub cv32rt: Option<Cv32rtStats>,
    /// Data-port occupancy `(total, core, unit)` cycles.
    pub port: (u64, u64, u64),
}

impl RunResult {
    /// Latency statistics of this run.
    pub fn stats(&self) -> Option<LatencyStats> {
        LatencyStats::from_latencies(&self.latencies)
    }
}

/// Runs one workload on one `(core, preset)` pair.
///
/// # Panics
///
/// Panics if the workload fails to build (a bug in the suite itself).
pub fn run_workload(core: CoreKind, preset: Preset, workload: &Workload) -> RunResult {
    run_workload_with(core, preset, workload, |_| {})
}

/// As [`run_workload`], with a hook to reconfigure the freshly built
/// [`System`] before the guest boots (used by the ablation studies to
/// change the ctxQueue depth or the arbitration level).
pub fn run_workload_with(
    core: CoreKind,
    preset: Preset,
    workload: &Workload,
    configure: impl FnOnce(&mut System),
) -> RunResult {
    let image = workloads::build(workload, preset).expect("workload builds");
    let mut sys = System::new(core, preset);
    configure(&mut sys);
    image.install(&mut sys);
    if workload.ext_irq_interval > 0 {
        let mut at = workload.ext_irq_interval;
        while at < workload.run_cycles {
            sys.schedule_external_irq(at);
            at += workload.ext_irq_interval;
        }
    }
    sys.run(workload.run_cycles);
    let records = filter_episodes(core, sys.records());
    let latencies: Vec<u64> = records.iter().map(SwitchRecord::latency).collect();
    RunResult {
        core,
        preset,
        workload: workload.name,
        latencies,
        records,
        cycles: sys.platform.cycle(),
        retired: sys.core.retired(),
        unit: sys.unit_stats(),
        cv32rt: sys.cv32rt_unit().map(|u| u.stats),
        port: sys.platform.port_occupancy(),
    }
}

/// One row of the Fig. 9 aggregation: all workloads pooled for a
/// `(core, preset)` pair.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Core model.
    pub core: CoreKind,
    /// Unit configuration.
    pub preset: Preset,
    /// Pooled statistics (µ, min, max; Δ = jitter).
    pub stats: LatencyStats,
    /// Per-workload statistics in suite order.
    pub per_workload: Vec<(&'static str, LatencyStats)>,
}

impl Fig9Row {
    /// Mean latency (µ).
    pub fn mean(&self) -> f64 {
        self.stats.mean
    }

    /// Jitter (Δ = max − min).
    pub fn jitter(&self) -> u64 {
        self.stats.jitter()
    }
}

/// Runs the full suite for one `(core, preset)` pair and pools the
/// latencies across workloads, as Fig. 9 does.
pub fn run_suite(core: CoreKind, preset: Preset) -> Fig9Row {
    let mut pooled = Vec::new();
    let mut per_workload = Vec::new();
    for w in workloads::ALL {
        let r = run_workload(core, preset, &w);
        if let Some(s) = r.stats() {
            per_workload.push((w.name, s));
        }
        pooled.extend(r.latencies);
    }
    let stats = LatencyStats::from_latencies(&pooled).expect("suite produced no context switches");
    Fig9Row {
        core,
        preset,
        stats,
        per_workload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::ALL;

    fn record(trigger: u64, entry: u64, mret: u64) -> SwitchRecord {
        SwitchRecord {
            trigger_cycle: trigger,
            entry_cycle: entry,
            mret_cycle: mret,
            cause: rvsim_isa::csr::CAUSE_TIMER,
        }
    }

    #[test]
    fn filtering_drops_warmup_switches() {
        // Ten prompt episodes; the first WARMUP_SWITCHES are cold and must
        // not contribute latencies even though they pass the threshold.
        let records: Vec<SwitchRecord> = (0..10)
            .map(|i| {
                let t = 1_000 * (i as u64 + 1);
                record(t, t + 4, t + 80)
            })
            .collect();
        let kept = filter_episodes(CoreKind::Cv32e40p, &records);
        assert_eq!(kept.len(), 10 - WARMUP_SWITCHES);
        assert_eq!(kept[0], records[WARMUP_SWITCHES]);
    }

    #[test]
    fn filtering_drops_critical_section_delayed_episodes() {
        let threshold = entry_threshold(CoreKind::Cv32e40p);
        let mut records = Vec::new();
        // Warm-up padding.
        for i in 0..WARMUP_SWITCHES as u64 {
            let t = 500 * (i + 1);
            records.push(record(t, t + 1, t + 50));
        }
        // A prompt switch, an episode delayed past the threshold (the
        // interrupt waited out a critical section), and one exactly at
        // the threshold (still counted).
        records.push(record(10_000, 10_000 + threshold - 2, 10_100));
        records.push(record(20_000, 20_000 + threshold + 30, 20_200));
        records.push(record(30_000, 30_000 + threshold, 30_100));
        let kept = filter_episodes(CoreKind::Cv32e40p, &records);
        let triggers: Vec<u64> = kept.iter().map(|r| r.trigger_cycle).collect();
        assert_eq!(
            triggers,
            vec![10_000, 30_000],
            "delayed episode must be dropped"
        );
    }

    #[test]
    fn entry_threshold_scales_with_core_entry_latency() {
        for core in CoreKind::ALL {
            assert_eq!(
                entry_threshold(core),
                u64::from(core.timing().irq_entry_latency) + 8
            );
        }
    }

    #[test]
    fn every_workload_produces_switches_on_vanilla() {
        for w in ALL {
            let r = run_workload(CoreKind::Cv32e40p, Preset::Vanilla, &w);
            assert!(
                r.latencies.len() >= 20,
                "{}: only {} switches (paper needs 20 iterations)",
                w.name,
                r.latencies.len()
            );
        }
    }

    #[test]
    fn slt_beats_vanilla_on_mean_latency() {
        let w = crate::workloads::by_name("roundrobin_yield").expect("exists");
        let v = run_workload(CoreKind::Cv32e40p, Preset::Vanilla, &w);
        let s = run_workload(CoreKind::Cv32e40p, Preset::Slt, &w);
        let vm = v.stats().expect("switches").mean;
        let sm = s.stats().expect("switches").mean;
        assert!(
            sm < vm * 0.6,
            "SLT ({sm:.0}) should be well below vanilla ({vm:.0})"
        );
    }

    #[test]
    fn unit_port_usage_only_with_unit() {
        let w = crate::workloads::by_name("pingpong_semaphore").expect("exists");
        let v = run_workload(CoreKind::Cv32e40p, Preset::Vanilla, &w);
        assert_eq!(v.port.2, 0, "vanilla has no unit traffic");
        let s = run_workload(CoreKind::Cv32e40p, Preset::Slt, &w);
        assert!(s.port.2 > 0, "SLT unit must use idle cycles");
    }
}
