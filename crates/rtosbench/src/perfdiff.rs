//! Artifact-level performance comparison — the CI regression gate.
//!
//! [`compare`] diffs two machine-readable artifacts produced by this
//! repo — campaign JSON (`rtosunit-campaign-v1`/`v3`) or benchmark JSON
//! (`rtosunit-bench-v1`) — and reports per-metric deltas against a
//! configurable tolerance. Runs are matched by label (campaigns) or
//! benchmark name (bench groups), so reordering never produces spurious
//! diffs; baseline runs missing from the current artifact fail the gate
//! (a silently dropped benchmark is a regression too).
//!
//! Metrics split into two classes:
//!
//! * **Deterministic** (simulated-cycle latencies: mean, max,
//!   percentiles, SLO miss rate) — identical on every host, so the gate
//!   can run with a near-zero tolerance against a committed baseline.
//! * **Host** (`units_per_second`, `ns_per_iter`, campaign throughput) —
//!   machine-dependent. [`DiffOptions::relative`] normalises each value
//!   by the geometric mean of its metric across the same artifact, so
//!   the gate tracks *relative* shifts (one benchmark regressing against
//!   its siblings) and stays meaningful when the baseline was recorded
//!   on different hardware. [`DiffOptions::check_throughput`] = `false`
//!   skips host metrics entirely (the deterministic-latency gate).

use crate::json::Json;

/// Gate configuration.
#[derive(Debug, Clone, Copy)]
pub struct DiffOptions {
    /// Allowed fractional change for the worse before a metric counts as
    /// a regression (0.10 = 10%).
    pub tolerance: f64,
    /// Compare host-dependent metrics (wall-clock throughput). Disable
    /// for a deterministic gate on committed baselines.
    pub check_throughput: bool,
    /// Normalise host metrics by the geometric mean of the same metric
    /// within each artifact before diffing (cross-machine comparisons).
    pub relative: bool,
}

impl Default for DiffOptions {
    fn default() -> DiffOptions {
        DiffOptions {
            tolerance: 0.10,
            check_throughput: true,
            relative: false,
        }
    }
}

/// Whether a bigger value is better or worse for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    LowerIsBetter,
    HigherIsBetter,
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Run label (campaign) or benchmark name (bench group).
    pub run: String,
    /// Metric name (`mean`, `p99`, `units_per_second`, ...).
    pub metric: String,
    /// Baseline value (after optional normalisation).
    pub baseline: f64,
    /// Current value (after optional normalisation).
    pub current: f64,
    /// Signed fractional change *for the worse*: positive means the
    /// current artifact regressed (slower / higher latency), negative
    /// means it improved.
    pub worse: f64,
    /// `worse > tolerance`.
    pub regression: bool,
}

/// The full comparison result.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Every matched metric, in baseline order.
    pub deltas: Vec<MetricDelta>,
    /// Baseline runs absent from the current artifact (gate failure).
    pub missing: Vec<String>,
    /// Current runs absent from the baseline (informational).
    pub added: Vec<String>,
    /// The tolerance the deltas were judged against.
    pub tolerance: f64,
}

impl DiffReport {
    /// Metrics that regressed beyond the tolerance.
    pub fn regressions(&self) -> impl Iterator<Item = &MetricDelta> {
        self.deltas.iter().filter(|d| d.regression)
    }

    /// Gate verdict: no regressions and no baseline run went missing.
    pub fn passed(&self) -> bool {
        self.missing.is_empty() && self.regressions().next().is_none()
    }

    /// Human-readable table (stdout of the `perfdiff` bin).
    pub fn human(&self) -> String {
        let mut out = format!(
            "{:<44} {:<18} {:>14} {:>14} {:>9}\n",
            "run", "metric", "baseline", "current", "delta"
        );
        for d in &self.deltas {
            out.push_str(&format!(
                "{:<44} {:<18} {:>14.3} {:>14.3} {:>+8.2}%{}\n",
                d.run,
                d.metric,
                d.baseline,
                d.current,
                d.worse * 100.0,
                if d.regression { "  REGRESSION" } else { "" },
            ));
        }
        for m in &self.missing {
            out.push_str(&format!("MISSING from current artifact: {m}\n"));
        }
        for a in &self.added {
            out.push_str(&format!("new in current artifact: {a}\n"));
        }
        out.push_str(&format!(
            "verdict: {} ({} metrics, {} regressions beyond {:.1}%, {} missing)\n",
            if self.passed() { "PASS" } else { "FAIL" },
            self.deltas.len(),
            self.regressions().count(),
            self.tolerance * 100.0,
            self.missing.len(),
        ));
        out
    }

    /// Machine-readable report (`--json` output of the `perfdiff` bin).
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("schema", "rtosunit-perfdiff-v1")
            .with("pass", self.passed())
            .with("tolerance", self.tolerance)
            .with(
                "deltas",
                self.deltas
                    .iter()
                    .map(|d| {
                        Json::object()
                            .with("run", d.run.as_str())
                            .with("metric", d.metric.as_str())
                            .with("baseline", d.baseline)
                            .with("current", d.current)
                            .with("worse", d.worse)
                            .with("regression", d.regression)
                    })
                    .collect::<Vec<_>>(),
            )
            .with(
                "missing",
                self.missing
                    .iter()
                    .map(|m| Json::Str(m.clone()))
                    .collect::<Vec<_>>(),
            )
            .with(
                "added",
                self.added
                    .iter()
                    .map(|a| Json::Str(a.clone()))
                    .collect::<Vec<_>>(),
            )
    }
}

/// One extracted `(run, metric)` measurement.
struct Row {
    run: String,
    metric: &'static str,
    direction: Direction,
    host: bool,
    value: f64,
}

/// Compares two artifacts. Both must be the same *kind* (campaign or
/// bench); campaign schema versions may differ — v1 baselines gate v3
/// artifacts on their shared metrics.
///
/// # Errors
///
/// Returns a message when either document lacks a recognised `schema`
/// or the kinds differ.
pub fn compare(baseline: &Json, current: &Json, opts: &DiffOptions) -> Result<DiffReport, String> {
    let bk = artifact_kind(baseline)?;
    let ck = artifact_kind(current)?;
    if bk != ck {
        return Err(format!(
            "artifact kinds differ: baseline is {bk}, current is {ck}"
        ));
    }
    let mut base_rows = extract(baseline, bk);
    let mut cur_rows = extract(current, ck);
    if !opts.check_throughput {
        base_rows.retain(|r| !r.host);
        cur_rows.retain(|r| !r.host);
    } else if opts.relative {
        normalise(&mut base_rows);
        normalise(&mut cur_rows);
    }

    let mut deltas = Vec::new();
    let mut missing = Vec::new();
    for b in &base_rows {
        match cur_rows
            .iter()
            .find(|c| c.run == b.run && c.metric == b.metric)
        {
            Some(c) => {
                let worse = worse_fraction(b, c.value);
                deltas.push(MetricDelta {
                    run: b.run.clone(),
                    metric: b.metric.to_string(),
                    baseline: b.value,
                    current: c.value,
                    worse,
                    regression: worse > opts.tolerance,
                });
            }
            None => missing.push(format!("{} :: {}", b.run, b.metric)),
        }
    }
    let added = cur_rows
        .iter()
        .filter(|c| {
            !base_rows
                .iter()
                .any(|b| b.run == c.run && b.metric == c.metric)
        })
        .map(|c| format!("{} :: {}", c.run, c.metric))
        .collect();
    Ok(DiffReport {
        deltas,
        missing,
        added,
        tolerance: opts.tolerance,
    })
}

/// Signed fractional change for the worse, guarding zero baselines (a
/// zero→zero metric is unchanged; zero→nonzero latency is judged
/// against a baseline of 1 to stay finite).
fn worse_fraction(b: &Row, current: f64) -> f64 {
    let base = if b.value == 0.0 { 1.0 } else { b.value };
    match b.direction {
        Direction::LowerIsBetter => (current - b.value) / base,
        Direction::HigherIsBetter => (b.value - current) / base,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Campaign,
    Bench,
}

impl std::fmt::Display for Kind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Kind::Campaign => "campaign",
            Kind::Bench => "bench",
        })
    }
}

fn artifact_kind(doc: &Json) -> Result<Kind, String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s.starts_with("rtosunit-campaign-") => Ok(Kind::Campaign),
        Some(s) if s.starts_with("rtosunit-bench-") => Ok(Kind::Bench),
        Some(s) => Err(format!("unrecognised artifact schema `{s}`")),
        None => Err("document carries no `schema` field".to_string()),
    }
}

fn extract(doc: &Json, kind: Kind) -> Vec<Row> {
    match kind {
        Kind::Campaign => extract_campaign(doc),
        Kind::Bench => extract_bench(doc),
    }
}

fn extract_campaign(doc: &Json) -> Vec<Row> {
    let mut rows = Vec::new();
    let runs = doc.get("runs").and_then(Json::as_array).unwrap_or(&[]);
    let mut total_cycles = 0.0;
    for run in runs {
        let Some(label) = run.get("label").and_then(Json::as_str) else {
            continue;
        };
        let Some(sim) = run.get("sim").filter(|s| !matches!(s, Json::Null)) else {
            continue;
        };
        if let Some(c) = sim.get("cycles").and_then(Json::as_f64) {
            total_cycles += c;
        }
        let mut det = |metric: &'static str, value: Option<f64>| {
            if let Some(v) = value {
                rows.push(Row {
                    run: label.to_string(),
                    metric,
                    direction: Direction::LowerIsBetter,
                    host: false,
                    value: v,
                });
            }
        };
        det("mean", sim.get("mean").and_then(Json::as_f64));
        det("max", sim.get("max").and_then(Json::as_f64));
        // v3 telemetry: percentiles and the SLO miss rate.
        let pcts = sim
            .get("latency_hist")
            .and_then(|h| h.get("latency"))
            .and_then(|l| l.get("percentiles"));
        if let Some(Json::Object(pairs)) = pcts {
            for (name, v) in pairs {
                if let (Some(v), Some(name)) = (v.as_f64(), percentile_name(name)) {
                    det(name, Some(v));
                }
            }
        }
        det(
            "slo_miss_rate",
            sim.get("latency_hist")
                .and_then(|h| h.get("slo"))
                .and_then(|s| s.get("miss_rate"))
                .and_then(Json::as_f64),
        );
    }
    // Host throughput: simulated cycles per host second, v3 docs only.
    if let Some(nanos) = doc.get("host_nanos").and_then(Json::as_f64) {
        if nanos > 0.0 && total_cycles > 0.0 {
            rows.push(Row {
                run: "<campaign>".to_string(),
                metric: "cycles_per_second",
                direction: Direction::HigherIsBetter,
                host: true,
                value: total_cycles / (nanos / 1e9),
            });
        }
    }
    rows
}

/// Interns a percentile key to the static names [`MetricDelta`] uses —
/// unknown keys are skipped rather than invented.
fn percentile_name(name: &str) -> Option<&'static str> {
    rtosunit::hist::REPORTED_PERCENTILES
        .iter()
        .map(|(n, _)| *n)
        .find(|n| *n == name)
}

fn extract_bench(doc: &Json) -> Vec<Row> {
    let mut rows = Vec::new();
    let benches = doc
        .get("benchmarks")
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    for b in benches {
        let Some(name) = b.get("name").and_then(Json::as_str) else {
            continue;
        };
        if let Some(rate) = b.get("units_per_second").and_then(Json::as_f64) {
            rows.push(Row {
                run: name.to_string(),
                metric: "units_per_second",
                direction: Direction::HigherIsBetter,
                host: true,
                value: rate,
            });
        } else if let Some(ns) = b.get("ns_per_iter").and_then(Json::as_f64) {
            rows.push(Row {
                run: name.to_string(),
                metric: "ns_per_iter",
                direction: Direction::LowerIsBetter,
                host: true,
                value: ns,
            });
        }
    }
    rows
}

/// Divides each host metric by the geometric mean of the same metric
/// across the artifact, making the values host-speed-invariant ratios.
fn normalise(rows: &mut [Row]) {
    let metrics: Vec<&'static str> = {
        let mut m: Vec<&'static str> = rows.iter().filter(|r| r.host).map(|r| r.metric).collect();
        m.dedup();
        m
    };
    for metric in metrics {
        let logs: Vec<f64> = rows
            .iter()
            .filter(|r| r.host && r.metric == metric && r.value > 0.0)
            .map(|r| r.value.ln())
            .collect();
        if logs.is_empty() {
            continue;
        }
        let geomean = (logs.iter().sum::<f64>() / logs.len() as f64).exp();
        for r in rows
            .iter_mut()
            .filter(|r| r.host && r.metric == metric && r.value > 0.0)
        {
            r.value /= geomean;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campaign_doc(mean: f64, max: u64) -> Json {
        Json::object()
            .with("schema", "rtosunit-campaign-v1")
            .with("campaign", "t")
            .with(
                "runs",
                vec![Json::object().with("label", "a/b/c").with(
                    "sim",
                    Json::object()
                        .with("cycles", 1000u64)
                        .with("mean", mean)
                        .with("max", max),
                )],
            )
    }

    fn bench_doc(rates: &[(&str, f64)]) -> Json {
        Json::object()
            .with("schema", "rtosunit-bench-v1")
            .with("group", "g")
            .with(
                "benchmarks",
                rates
                    .iter()
                    .map(|(name, r)| {
                        Json::object()
                            .with("name", *name)
                            .with("ns_per_iter", 10.0)
                            .with("units_per_second", *r)
                    })
                    .collect::<Vec<_>>(),
            )
    }

    #[test]
    fn identical_campaigns_pass() {
        let r = compare(
            &campaign_doc(70.0, 90),
            &campaign_doc(70.0, 90),
            &DiffOptions::default(),
        )
        .expect("compare");
        assert!(r.passed());
        assert_eq!(r.deltas.len(), 2);
        assert!(r.deltas.iter().all(|d| d.worse == 0.0));
    }

    #[test]
    fn latency_increase_beyond_tolerance_fails() {
        let r = compare(
            &campaign_doc(70.0, 90),
            &campaign_doc(80.0, 90),
            &DiffOptions {
                tolerance: 0.10,
                ..DiffOptions::default()
            },
        )
        .expect("compare");
        assert!(!r.passed());
        let reg: Vec<_> = r.regressions().collect();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].metric, "mean");
        // A latency *decrease* is an improvement, never a regression.
        let better = compare(
            &campaign_doc(70.0, 90),
            &campaign_doc(40.0, 50),
            &DiffOptions::default(),
        )
        .expect("compare");
        assert!(better.passed());
        assert!(better.deltas.iter().all(|d| d.worse < 0.0));
    }

    #[test]
    fn missing_baseline_run_fails_the_gate() {
        let mut cur = campaign_doc(70.0, 90);
        if let Json::Object(pairs) = &mut cur {
            pairs.retain(|(k, _)| k != "runs");
        }
        cur.push("runs", Vec::<Json>::new());
        let r = compare(&campaign_doc(70.0, 90), &cur, &DiffOptions::default()).expect("compare");
        assert!(!r.passed());
        assert_eq!(r.missing.len(), 2);
    }

    #[test]
    fn throughput_drop_is_a_regression_and_relative_mode_ignores_uniform_slowdowns() {
        let base = bench_doc(&[("x", 100.0), ("y", 200.0)]);
        // One benchmark slows 40%: absolute and relative both fail.
        let skewed = bench_doc(&[("x", 60.0), ("y", 200.0)]);
        for relative in [false, true] {
            let r = compare(
                &base,
                &skewed,
                &DiffOptions {
                    relative,
                    ..DiffOptions::default()
                },
            )
            .expect("compare");
            assert!(!r.passed(), "relative={relative} must catch the skew");
        }
        // The whole host is 40% slower: absolute fails, relative passes.
        let uniform = bench_doc(&[("x", 60.0), ("y", 120.0)]);
        let abs = compare(&base, &uniform, &DiffOptions::default()).expect("compare");
        assert!(!abs.passed());
        let rel = compare(
            &base,
            &uniform,
            &DiffOptions {
                relative: true,
                ..DiffOptions::default()
            },
        )
        .expect("compare");
        assert!(rel.passed(), "uniform slowdown is host speed, not code");
    }

    #[test]
    fn deterministic_gate_skips_host_metrics() {
        let base = bench_doc(&[("x", 100.0)]);
        let slow = bench_doc(&[("x", 10.0)]);
        let r = compare(
            &base,
            &slow,
            &DiffOptions {
                check_throughput: false,
                ..DiffOptions::default()
            },
        )
        .expect("compare");
        assert!(r.passed());
        assert!(r.deltas.is_empty());
    }

    #[test]
    fn mismatched_kinds_are_an_error() {
        let e = compare(
            &campaign_doc(1.0, 1),
            &bench_doc(&[("x", 1.0)]),
            &DiffOptions::default(),
        )
        .expect_err("kinds differ");
        assert!(e.contains("kinds differ"), "{e}");
    }

    #[test]
    fn report_renders_human_and_json() {
        let r = compare(
            &campaign_doc(70.0, 90),
            &campaign_doc(80.0, 90),
            &DiffOptions::default(),
        )
        .expect("compare");
        let human = r.human();
        assert!(human.contains("REGRESSION"));
        assert!(human.contains("verdict: FAIL"));
        let j = r.to_json().render();
        assert!(j.contains("\"pass\": false"));
        assert!(Json::parse(&j).is_ok());
    }
}
